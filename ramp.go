// Package ramp is the public API of RAMP-Scale, a reproduction of
// "The Impact of Technology Scaling on Lifetime Reliability" (Srinivasan,
// Adve, Bose, Rivers — DSN 2004).
//
// The library models the lifetime reliability of a POWER4-like out-of-order
// processor across CMOS technology generations (180nm → 65nm). It couples:
//
//   - a trace-driven timing simulator producing per-structure activity
//     factors and IPC for 16 SPEC2K-like synthetic workloads,
//   - a PowerTimer-like power model (dynamic with realistic clock gating,
//     plus temperature-dependent leakage),
//   - a HotSpot-like lumped-RC thermal model with the paper's two-pass
//     heat-sink initialisation, and
//   - the RAMP failure models — electromigration, stress migration,
//     gate-oxide breakdown (TDDB), and thermal cycling — combined with the
//     sum-of-failure-rates model and the paper's scaling extensions.
//
// # Quickstart
//
//	runner, err := ramp.New()
//	if err != nil { ... }
//	res, err := runner.Study(context.Background(), ramp.DefaultConfig(),
//		ramp.Profiles(), ramp.Technologies())
//	if err != nil { ... }
//	for ti := range res.Techs {
//		fmt.Printf("%s: avg FIT %.0f\n", res.Techs[ti].Name,
//			res.SuiteAverageFIT(ti, 0))
//	}
//
// A Runner fixes the execution policy once — parallelism, progress,
// metrics, and the content-addressed stage cache that makes repeated
// studies incremental (ramp.WithCache) — and its StreamStudy method
// yields per-cell results while the study is still running.
//
// See the examples directory for complete programs, and DESIGN.md for the
// system inventory and the experiment index.
package ramp

import (
	"context"
	"io"

	"github.com/ramp-sim/ramp/internal/aging"
	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/cycles"
	"github.com/ramp-sim/ramp/internal/drm"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/multicore"
	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/report"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/scenario"
	"github.com/ramp-sim/ramp/internal/sched"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/stats"
	"github.com/ramp-sim/ramp/internal/trace"
	"github.com/ramp-sim/ramp/internal/workload"
)

// Core result and configuration types, re-exported for API stability.
type (
	// Config parameterises a study: machine, power, thermal, and
	// reliability constants, trace length, and calibration policy.
	Config = sim.Config
	// StudyResult is the complete output of RunStudy.
	StudyResult = sim.StudyResult
	// AppRun is one application evaluated at one technology point.
	AppRun = sim.AppRun
	// ActivityTrace is the timing-simulation output for one application.
	ActivityTrace = sim.ActivityTrace
	// StudyOptions tunes study execution (parallelism bound, progress
	// callback) without affecting numerics.
	StudyOptions = sim.StudyOptions
	// StudyProgress is one task-completion event of a running study.
	StudyProgress = sched.Progress
	// WorstCase is the worst-case ("max") operating-point evaluation.
	WorstCase = sim.WorstCase
	// Fidelity selects the speed/accuracy trade of a study (nil/zero
	// means exact); see FidelityExact, FidelityAdaptive, FidelityPhase.
	Fidelity = sim.Fidelity
	// FidelityMode names one fidelity level.
	FidelityMode = sim.FidelityMode
	// Technology is one Table 4 technology generation/operating point.
	Technology = scaling.Technology
	// Profile is one synthetic SPEC2K-like benchmark description.
	Profile = workload.Profile
	// Suite distinguishes SpecInt from SpecFP benchmarks.
	Suite = workload.Suite
	// Breakdown is a per-structure, per-mechanism FIT decomposition.
	Breakdown = core.Breakdown
	// Constants are the per-mechanism proportionality constants from
	// reliability qualification.
	Constants = core.Constants
	// Mechanism identifies one intrinsic failure mechanism.
	//
	// Deprecated: Mechanism indexes only the paper's four fixed-slot
	// mechanisms. Registry-selected mechanisms are addressed by canonical
	// name (MechanismInfo.Name); use the Mech* name constants instead.
	Mechanism = core.Mechanism
	// MechanismParams bundles the failure-model constants.
	MechanismParams = core.Params
	// MechanismModel is one pluggable failure mechanism behind the
	// registry: a raw instantaneous rate with technology-scaling and
	// qualification-calibration hooks.
	MechanismModel = core.MechanismModel
	// MechanismInfo describes one registered mechanism for discovery.
	MechanismInfo = core.MechanismInfo
	// MechanismSet is a resolved, ordered mechanism selection.
	MechanismSet = core.MechanismSet
	// MachineConfig describes the simulated processor (Table 2).
	MachineConfig = microarch.Config
	// StructureID names one of the 7 modeled microarchitectural
	// structures.
	StructureID = microarch.StructureID
	// Table is a renderable result table (text or CSV).
	Table = report.Table
	// Chart renders numeric series as an ASCII line chart.
	Chart = report.Chart
	// ChartSeries is one named line of a chart.
	ChartSeries = report.Series
	// Headline holds the paper's quoted summary numbers computed from a
	// study.
	Headline = report.Headline

	// Lifetime-distribution extension (relaxing SOFR's constant-rate
	// assumption, §2).

	// Distribution models a lifetime distribution parameterised by mean.
	Distribution = core.Distribution
	// Exponential is the SOFR constant-rate assumption.
	Exponential = core.Exponential
	// Weibull models wear-out with a growing hazard rate (Shape > 1).
	Weibull = core.Weibull
	// Lognormal is the classical electromigration lifetime distribution.
	Lognormal = core.Lognormal
	// LifetimeModel assigns a distribution to each failure mechanism.
	LifetimeModel = core.LifetimeModel
	// LifetimeEstimate summarises a Monte Carlo lifetime experiment.
	LifetimeEstimate = core.LifetimeEstimate
	// MCConfig parameterises a Monte Carlo lifetime study: replica count,
	// lifetime model, percentile set, CI level, and root seed.
	MCConfig = sim.MCConfig
	// MCResult is the complete output of Runner.MCStudy: one summarised
	// lifetime distribution per (application × technology) cell.
	MCResult = sim.MCResult
	// MCCell is one cell's Monte Carlo lifetime summary.
	MCCell = sim.MCCell
	// MCPercentile is one estimated lifetime percentile with its
	// confidence interval.
	MCPercentile = sim.MCPercentile
	// MCEvent is one incremental estimate of a running Monte Carlo study.
	MCEvent = sim.MCEvent
	// Interval is a two-sided confidence interval (years).
	Interval = stats.Interval

	// Dynamic reliability management (the paper's §5.2 response).

	// DRMPolicy configures the dynamic reliability controller.
	DRMPolicy = drm.Policy
	// DRMResult summarises a DRM-managed run.
	DRMResult = drm.Result
	// OperatingPoint is one rung of a DVS ladder.
	OperatingPoint = drm.OperatingPoint
	// RemapAdvice is the per-technology derating requirement for a FIT
	// budget.
	RemapAdvice = drm.RemapAdvice

	// Chip-multiprocessor extension.

	// CMPConfig parameterises a tiled multi-core evaluation.
	CMPConfig = multicore.Config
	// CMPDRMConfig attaches per-core dynamic reliability management to a
	// CMP evaluation.
	CMPDRMConfig = multicore.DRMConfig
	// CMPResult is a whole-chip multi-core evaluation.
	CMPResult = multicore.Result
	// CMPCoreResult summarises one core of a multi-core evaluation.
	CMPCoreResult = multicore.CoreResult

	// Small-thermal-cycle analysis (the §2 open problem, measured).

	// ThermalCycle is one rainflow-counted temperature cycle.
	ThermalCycle = cycles.Cycle
	// CycleParams configures the small-cycle damage index.
	CycleParams = cycles.Params
	// CycleSummary aggregates a rainflow analysis.
	CycleSummary = cycles.Summary

	// Duty-schedule aging projection (Miner's rule).

	// AgingPhase is one recurring segment of a daily duty schedule.
	AgingPhase = aging.Phase
	// AgingSchedule is a repeating daily duty cycle.
	AgingSchedule = aging.Schedule
	// AgingProjection is the lifetime forecast for a schedule.
	AgingProjection = aging.Projection
	// AgingWhatIf ranks per-phase mitigations by lifetime gained.
	AgingWhatIf = aging.WhatIfResult

	// Scenario is a JSON experiment specification: workloads, technology
	// points, trace length, and model overrides.
	Scenario = scenario.Spec
	// ScenarioOverrides are the supported model modifications.
	ScenarioOverrides = scenario.Overrides

	// Execution tracing (Runner option WithTracer).

	// Tracer creates spans around pipeline stages and fans the completed
	// spans out to a SpanSink. Install one on a Runner with WithTracer.
	Tracer = obs.Tracer
	// Span is one timed operation of a traced study (a pipeline stage, a
	// grid cell, a cache lookup), with its parent link and attributes.
	Span = obs.Span
	// SpanAttr is one key/value annotation on a span.
	SpanAttr = obs.Attr
	// SpanSink receives completed spans; implement it to stream spans into
	// a custom backend.
	SpanSink = obs.SpanSink
	// TraceCollector is a SpanSink buffering completed spans in memory for
	// export (e.g. via WriteChromeTrace).
	TraceCollector = obs.Collector

	// Trace interchange ("bring your own trace").

	// Instruction is one decoded instruction of a trace.
	Instruction = trace.Instruction
	// InstructionClass is the functional class of an instruction.
	InstructionClass = trace.Class
	// Stream produces instructions one at a time (io.EOF at end).
	Stream = trace.Stream
	// TraceReader decodes the binary trace file format as a Stream.
	TraceReader = trace.Reader
	// TraceWriter serialises instructions to the binary trace format.
	TraceWriter = trace.Writer
	// SamplerConfig parameterises systematic trace sampling (§4.5).
	SamplerConfig = trace.SamplerConfig
	// SystematicSampler filters a Stream down to periodic windows.
	SystematicSampler = trace.SystematicSampler
)

// Failure mechanisms (paper §2).
const (
	EM   = core.EM
	SM   = core.SM
	TDDB = core.TDDB
	TC   = core.TC
	// NumMechanisms is the number of modeled failure mechanisms.
	NumMechanisms = core.NumMechanisms
)

// Canonical mechanism names accepted by Config.Mechanisms,
// WithMechanisms, and the server's mechanism selection. The paper's four
// (em/sm/tc/tddb) are the default set; nbti, hci, and tc-rainflow are
// post-2004 registry additions.
const (
	MechEM         = core.MechEM
	MechSM         = core.MechSM
	MechTDDB       = core.MechTDDB
	MechTC         = core.MechTC
	MechNBTI       = core.MechNBTI
	MechHCI        = core.MechHCI
	MechTCRainflow = core.MechTCRainflow
)

// RegisteredMechanisms returns discovery metadata for every failure
// mechanism in the registry, sorted by name: the paper's four plus any
// additions, with parameter descriptions and default-set membership.
func RegisteredMechanisms() []MechanismInfo { return core.RegisteredMechanisms() }

// DefaultMechanismNames returns the canonical names of the paper's four
// mechanisms — the set evaluated when a Config names none.
func DefaultMechanismNames() []string { return core.DefaultMechanismNames() }

// CanonicalMechanismNames canonicalises a mechanism-name list —
// lower-cased, de-aliased, sorted, de-duplicated, nil for the default
// set — rejecting unknown names. Use it to validate flag or API input
// before building a Config.
func CanonicalMechanismNames(names []string) ([]string, error) {
	return core.CanonicalMechanismNames(names)
}

// RegisterMechanism adds a custom failure-mechanism model to the process
// registry under its canonical name, making it selectable by every
// Config.Mechanisms list. Registration is global and must happen before
// studies run (typically from an init function); registering a name twice
// is an error.
func RegisterMechanism(m MechanismModel) error { return core.RegisterMechanism(m) }

// Benchmark suites.
const (
	SuiteInt = workload.SuiteInt
	SuiteFP  = workload.SuiteFP
)

// Fidelity modes: exact is the bit-identical full pipeline; adaptive
// phase-compresses the thermal transient under an error bound; phase adds
// systematic trace sampling on top. Non-exact modes are content-addressed
// into every stage and result cache key, so results from different modes
// never mix.
const (
	FidelityExact    = sim.FidelityExact
	FidelityAdaptive = sim.FidelityAdaptive
	FidelityPhase    = sim.FidelityPhase
)

// ParseFidelityMode validates a fidelity-mode name from a flag or API
// request; it returns nil (meaning exact) for "" and "exact" so
// exact-mode configs keep their pre-fidelity cache keys.
func ParseFidelityMode(mode string) (*Fidelity, error) { return sim.ParseFidelityMode(mode) }

// DefaultConfig returns the paper's experimental setup (Table 2 machine,
// calibrated 180nm power model, HotSpot-like package, RAMP constants).
func DefaultConfig() Config { return sim.DefaultConfig() }

// Profiles returns the 16 SPEC2K benchmark profiles of Table 3 (8 SpecFP
// followed by 8 SpecInt).
func Profiles() []Profile { return workload.Profiles() }

// ProfileByName returns one benchmark profile.
func ProfileByName(name string) (Profile, error) { return workload.ByName(name) }

// Technologies returns the five Table 4 technology points in scaling
// order: 180nm, 130nm, 90nm, 65nm (0.9V), 65nm (1.0V).
func Technologies() []Technology { return scaling.Generations() }

// TechnologyByName returns one technology point by its figure label.
func TechnologyByName(name string) (Technology, error) { return scaling.ByName(name) }

// BaseTechnology returns the 180nm calibration anchor.
func BaseTechnology() Technology { return scaling.Base() }

// ReferenceConstants returns the qualification constants solved with the
// default configuration (suite-average 1000 FIT per mechanism at 180nm).
// Use them to convert a single application's raw breakdown into absolute
// FIT values without re-running the full study; re-calibrate through
// RunStudy when any model parameter changes.
func ReferenceConstants() Constants { return core.ReferenceConstants() }

// RunStudy executes the complete scaling study: timing simulation per
// profile, reliability qualification at 180nm, evaluation at every
// technology point, and the worst-case analysis. The first technology must
// be 180nm.
//
// Deprecated: use ramp.New followed by Runner.Study, which adds
// cancellation, an execution policy, and stage caching. RunStudy remains a
// thin, supported wrapper.
func RunStudy(cfg Config, profiles []Profile, techs []Technology) (*StudyResult, error) {
	return sim.RunStudy(cfg, profiles, techs)
}

// RunStudyContext is RunStudy with cancellation, a bounded worker pool,
// and progress reporting. The study executes as a dependency graph —
// timing(profile) → base(profile) → scaled(profile, tech) — so each
// profile's scaled evaluations start as soon as its own base calibration
// finishes. Results are bit-identical at every parallelism level.
//
// Deprecated: use ramp.New with WithParallelism/WithProgress/WithMetrics/
// WithCache followed by Runner.Study; StudyOptions is the internal
// carrier of the same knobs. RunStudyContext remains a thin, supported
// wrapper.
func RunStudyContext(ctx context.Context, cfg Config, profiles []Profile,
	techs []Technology, opts StudyOptions) (*StudyResult, error) {
	return sim.RunStudyContext(ctx, cfg, profiles, techs, opts)
}

// RunTiming executes only the timing stage for one profile; the returned
// trace can be evaluated at several technology points with EvaluateTech.
func RunTiming(cfg Config, prof Profile) (*ActivityTrace, error) {
	return sim.RunTiming(cfg, prof)
}

// RunTimingContext is RunTiming with cancellation.
func RunTimingContext(ctx context.Context, cfg Config, prof Profile) (*ActivityTrace, error) {
	return sim.RunTimingContext(ctx, cfg, prof)
}

// RunTimings executes the timing stage for several profiles on a bounded
// worker pool, returning traces in input order.
func RunTimings(ctx context.Context, cfg Config, profiles []Profile,
	opts StudyOptions) ([]*ActivityTrace, error) {
	return sim.RunTimings(ctx, cfg, profiles, opts)
}

// RunTimingStream executes the timing stage over an arbitrary instruction
// stream — a trace file (NewTraceReader), a sampled stream
// (NewSystematicSampler), or a custom Stream. prof supplies the workload
// identity for reporting.
func RunTimingStream(cfg Config, prof Profile, stream Stream) (*ActivityTrace, error) {
	return sim.RunTimingStream(cfg, prof, stream)
}

// NewTracer builds a span tracer fanning completed spans out to sink.
func NewTracer(sink SpanSink) *Tracer { return obs.NewTracer(sink) }

// NewTraceCollector returns a SpanSink retaining at most max completed
// spans in completion order (0 = unbounded).
func NewTraceCollector(max int) *TraceCollector { return obs.NewCollector(max) }

// WriteChromeTrace serialises spans as a Chrome trace-event JSON document,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []*Span) error { return obs.WriteChromeTrace(w, spans) }

// NewTraceReader opens a binary trace file stream.
func NewTraceReader(r io.Reader) (*TraceReader, error) { return trace.NewReader(r) }

// NewTraceWriter creates a binary trace file writer.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) { return trace.NewWriter(w) }

// NewSystematicSampler wraps a stream with the §4.5 systematic-sampling
// methodology: one window of WindowInstrs kept out of every PeriodInstrs.
func NewSystematicSampler(src Stream, cfg SamplerConfig) (*SystematicSampler, error) {
	return trace.NewSystematicSampler(src, cfg)
}

// NewWorkloadStream builds the synthetic instruction generator for a
// profile, producing n instructions (n <= 0 for unbounded).
func NewWorkloadStream(prof Profile, n int64) (Stream, error) {
	return workload.New(prof, n)
}

// EvaluateTech evaluates one activity trace at one technology point.
// sinkTempTargetK > 0 holds the heat-sink temperature at that value by
// scaling the sink resistance (the paper's §4.3 methodology);
// appPowerScale is a per-application dynamic-power calibration factor
// (use 1 to disable).
func EvaluateTech(cfg Config, tr *ActivityTrace, tech Technology,
	sinkTempTargetK, appPowerScale float64) (AppRun, error) {
	return sim.EvaluateTech(cfg, tr, tech, sinkTempTargetK, appPowerScale)
}

// EvaluateTechContext is EvaluateTech with cancellation. Evaluations only
// read the trace, so any number may share one ActivityTrace concurrently.
func EvaluateTechContext(ctx context.Context, cfg Config, tr *ActivityTrace, tech Technology,
	sinkTempTargetK, appPowerScale float64) (AppRun, error) {
	return sim.EvaluateTechContext(ctx, cfg, tr, tech, sinkTempTargetK, appPowerScale)
}

// Report builders for the paper's artifacts.

// Table1 returns the qualitative scaling-impact summary (paper Table 1).
func Table1() *Table { return report.Table1() }

// Table1Quantified evaluates the Table 1 sensitivities numerically at a
// reference temperature: FIT multipliers per +10K, per +5% voltage, and
// for the full 180nm→65nm feature-size scaling.
func Table1Quantified(params MechanismParams, refTempK float64) (*Table, error) {
	return report.Table1Quantified(params, refTempK)
}

// Table2 returns the base-processor configuration (paper Table 2).
func Table2(cfg MachineConfig) *Table { return report.Table2(cfg) }

// Table3 returns per-application IPC and 180nm power (paper Table 3).
func Table3(res *StudyResult) (*Table, error) { return report.Table3(res) }

// Table4 returns the scaled technology parameters with measured powers
// (paper Table 4).
func Table4(res *StudyResult) (*Table, error) { return report.Table4(res) }

// Figure2 returns the max-structure-temperature series (paper Figure 2).
func Figure2(res *StudyResult, suite Suite) (*Table, error) { return report.Figure2(res, suite) }

// Figure3 returns the total-FIT series with the worst-case curve (paper
// Figure 3).
func Figure3(res *StudyResult, suite Suite) (*Table, error) { return report.Figure3(res, suite) }

// Figure4 returns the suite-average per-mechanism FIT series (paper
// Figure 4).
func Figure4(res *StudyResult, suite Suite) (*Table, error) { return report.Figure4(res, suite) }

// Figure5 returns one mechanism's per-application FIT series (paper
// Figure 5).
func Figure5(res *StudyResult, suite Suite, m Mechanism) (*Table, error) {
	return report.Figure5(res, suite, m)
}

// ComputeHeadline derives the paper's quoted summary numbers (§1.3, §5)
// from a full study.
func ComputeHeadline(res *StudyResult) (*Headline, error) { return report.ComputeHeadline(res) }

// StructureBreakdown returns the per-structure FIT decomposition of one
// application at one technology index — which microarchitectural units
// dominate the failure rate.
func StructureBreakdown(res *StudyResult, ti int, app string) (*Table, error) {
	return report.StructureBreakdown(res, ti, app)
}

// MechanismCurves tabulates each mechanism's relative FIT over a
// temperature sweep at a technology point, normalised at the first
// temperature.
func MechanismCurves(params MechanismParams, tech Technology, tempsK []float64) (*Table, error) {
	return report.MechanismCurves(params, tech, tempsK)
}

// ChartFromTable converts a figure table (label column plus one value
// column per technology) into an ASCII chart.
func ChartFromTable(t *Table) (*Chart, error) { return report.ChartFromTable(t) }

// WriteJSON encodes a study result as an indented JSON document from
// which every figure can be regenerated externally.
func WriteJSON(w io.Writer, res *StudyResult) error { return report.WriteJSON(w, res) }

// SOFRLifetimes returns the SOFR assumption: exponential lifetimes for
// every mechanism.
func SOFRLifetimes() LifetimeModel { return core.SOFRLifetimes() }

// WearOutLifetimes returns a JEDEC-flavoured wear-out assignment:
// lognormal EM, Weibull SM/TC/TDDB.
func WearOutLifetimes() LifetimeModel { return core.WearOutLifetimes() }

// MonteCarloLifetime estimates the processor lifetime distribution for a
// calibrated breakdown under per-mechanism lifetime distributions,
// quantifying the error of the SOFR constant-rate assumption (§2).
//
// Deprecated: use Runner.MCStudy, which samples the whole study grid in
// parallel with per-replica seeded streams and confidence intervals. This
// shim forwards to the same serial sampler and remains numerically stable
// for a pinned seed.
func MonteCarloLifetime(b Breakdown, model LifetimeModel, samples int, seed int64) (LifetimeEstimate, error) {
	return core.MonteCarloLifetime(b, model, samples, seed)
}

// Rainflow counts the thermal cycles in a temperature series (ASTM
// E1049). Record a series with Config.RecordThermalTrace.
func Rainflow(series []float64) []ThermalCycle { return cycles.Rainflow(series) }

// AnalyzeCycles runs rainflow counting over a temperature series spanning
// durationSeconds and returns the small-cycle damage summary.
func AnalyzeCycles(series []float64, durationSeconds float64, p CycleParams) (CycleSummary, error) {
	return cycles.Analyze(series, durationSeconds, p)
}

// DefaultCycleParams returns the package Coffin-Manson exponent with a
// 0.1K noise floor.
func DefaultCycleParams() CycleParams { return cycles.DefaultParams() }

// LoadScenario parses a JSON experiment specification.
func LoadScenario(r io.Reader) (Scenario, error) { return scenario.Load(r) }

// LoadScenarioFile loads a JSON experiment specification from a file.
func LoadScenarioFile(path string) (Scenario, error) { return scenario.LoadFile(path) }

// ProjectAging computes the Miner's-rule lifetime forecast for a daily
// duty schedule of calibrated failure rates.
func ProjectAging(s AgingSchedule) (AgingProjection, error) { return aging.Project(s) }

// AgingMitigations ranks the schedule's phases by lifetime gained when
// each phase's failure rate is scaled by factor (e.g. 0.5).
func AgingMitigations(s AgingSchedule, factor float64) ([]AgingWhatIf, error) {
	return aging.WhatIf(s, factor)
}

// DefaultLadder returns a five-rung DVS ladder topping out at the
// technology's nominal qualification point.
func DefaultLadder(tech Technology) []OperatingPoint { return drm.DefaultLadder(tech) }

// RunDRM executes a DRM-managed evaluation of an activity trace: a
// feedback controller walks the DVS ladder each epoch so the cumulative
// failure rate tracks the qualified budget.
func RunDRM(cfg Config, tr *ActivityTrace, tech Technology, consts Constants,
	pol DRMPolicy, sinkTempTargetK, appPowerScale float64) (DRMResult, error) {
	return drm.Run(cfg, tr, tech, consts, pol, sinkTempTargetK, appPowerScale)
}

// AdviseRemap reports, per technology point, the fastest below-nominal
// DVS operating point at which the workload stays within the FIT budget —
// the derating schedule behind the paper's "single design, multiple
// remaps" warning.
func AdviseRemap(cfg Config, tr *ActivityTrace, techs []Technology, consts Constants,
	budgetFIT, sinkTempTargetK, appPowerScale float64) ([]RemapAdvice, error) {
	return drm.AdviseRemap(cfg, tr, techs, consts, budgetFIT, sinkTempTargetK, appPowerScale)
}

// EvaluateCMP runs a tiled chip-multiprocessor evaluation: traces[i]
// starts on core i; with cfg.MigrateIntervals > 0 the assignment rotates
// periodically (activity migration). appPowerScales may be nil.
func EvaluateCMP(cfg CMPConfig, traces []*ActivityTrace, tech Technology,
	sinkTempTargetK float64, appPowerScales []float64) (CMPResult, error) {
	return multicore.Evaluate(cfg, traces, tech, sinkTempTargetK, appPowerScales)
}

// EvaluateCMPContext is EvaluateCMP with cancellation.
func EvaluateCMPContext(ctx context.Context, cfg CMPConfig, traces []*ActivityTrace, tech Technology,
	sinkTempTargetK float64, appPowerScales []float64) (CMPResult, error) {
	return multicore.EvaluateContext(ctx, cfg, traces, tech, sinkTempTargetK, appPowerScales)
}
