package ramp_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	ramp "github.com/ramp-sim/ramp"
)

func runnerTestInputs(t *testing.T) (ramp.Config, []ramp.Profile, []ramp.Technology) {
	t.Helper()
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 40_000
	return cfg, ramp.Profiles()[:2], ramp.Technologies()[:2]
}

// TestRunnerStudyMatchesDeprecatedAPI: the facade must be a pure
// re-packaging — Runner.Study and the deprecated RunStudyContext produce
// deeply equal results.
func TestRunnerStudyMatchesDeprecatedAPI(t *testing.T) {
	cfg, profiles, techs := runnerTestInputs(t)
	runner, err := ramp.New(ramp.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := runner.Study(context.Background(), cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ramp.RunStudyContext(context.Background(), cfg, profiles, techs,
		ramp.StudyOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("Runner.Study differs from RunStudyContext")
	}
}

// TestRunnerOptions exercises every functional option together, plus
// option-error propagation from an invalid cache configuration.
func TestRunnerOptions(t *testing.T) {
	cfg, profiles, techs := runnerTestInputs(t)
	var progressed atomic.Int64
	counters := &ramp.MetricsCounters{}
	runner, err := ramp.New(
		ramp.WithParallelism(2),
		ramp.WithProgress(func(ramp.StudyProgress) { progressed.Add(1) }),
		ramp.WithMetrics(counters),
		ramp.WithCache(ramp.CacheOptions{MaxEntries: 32, Dir: t.TempDir()}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := runner.CacheStats(); !ok {
		t.Fatal("WithCache did not attach a cache")
	}
	if _, err := runner.Study(context.Background(), cfg, profiles, techs); err != nil {
		t.Fatal(err)
	}
	if progressed.Load() == 0 {
		t.Errorf("WithProgress callback never fired")
	}
	if counters.Completed() == 0 {
		t.Errorf("WithMetrics recorder observed no completed tasks")
	}
	stats, ok := runner.CacheStats()
	if !ok || stats.Timing.Puts == 0 {
		t.Errorf("study did not populate the stage cache: %+v", stats)
	}

	// A cacheless runner reports no stats.
	bare, err := ramp.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := bare.CacheStats(); ok {
		t.Errorf("cacheless runner claims cache stats")
	}

	// Option errors abort construction.
	if _, err := ramp.New(ramp.WithCache(ramp.CacheOptions{Dir: "\x00bad"})); err == nil {
		t.Errorf("invalid cache dir did not fail New")
	}
}

// TestRunnerTimingCached: repeated Runner.Timing through a cache returns
// the identical artifact without re-simulating.
func TestRunnerTimingCached(t *testing.T) {
	cfg, profiles, _ := runnerTestInputs(t)
	runner, err := ramp.New(ramp.WithCache(ramp.CacheOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	first, err := runner.Timing(context.Background(), cfg, profiles[0])
	if err != nil {
		t.Fatal(err)
	}
	second, err := runner.Timing(context.Background(), cfg, profiles[0])
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("second Timing call was not served from the cache")
	}
}

// TestRunnerStreamStudyOrdering: the stream must deliver the first cell
// event strictly before the terminal event, cover the whole grid, and end
// with exactly one terminal event carrying the same result a blocking
// Study produces.
func TestRunnerStreamStudyOrdering(t *testing.T) {
	cfg, profiles, techs := runnerTestInputs(t)
	runner, err := ramp.New(ramp.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	events, err := runner.StreamStudy(context.Background(), cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	var apps, terminals int
	var res *ramp.StudyResult
	for ev := range events {
		switch {
		case ev.App != nil:
			if terminals != 0 {
				t.Errorf("cell event after the terminal event")
			}
			apps++
			if ev.Source == "" {
				t.Errorf("cell event without provenance")
			}
		default:
			terminals++
			if ev.Err != nil {
				t.Fatalf("stream failed: %v", ev.Err)
			}
			res = ev.Result
		}
	}
	want := len(profiles) * len(techs)
	if apps != want {
		t.Errorf("streamed %d cell events, want %d", apps, want)
	}
	if terminals != 1 {
		t.Fatalf("got %d terminal events, want 1", terminals)
	}
	blocking, err := runner.Study(context.Background(), cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(blocking, res) {
		t.Errorf("streamed terminal result differs from blocking Study")
	}
}

// TestRunnerStreamStudyCancel: cancelling mid-stream closes the channel
// after a terminal event carrying ctx.Err(), and a cached re-run still
// produces correct numbers (the cache holds only complete artifacts).
func TestRunnerStreamStudyCancel(t *testing.T) {
	cfg, profiles, techs := runnerTestInputs(t)
	runner, err := ramp.New(ramp.WithParallelism(2), ramp.WithCache(ramp.CacheOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events, err := runner.StreamStudy(ctx, cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for ev := range events {
		if ev.App != nil {
			cancel() // first cell: abort the rest of the grid
			continue
		}
		sawErr = ev.Err
	}
	if sawErr == nil {
		// The terminal event may be dropped when the consumer raced the
		// cancellation; the channel closing is the load-bearing part.
		t.Log("terminal event dropped on cancellation (allowed)")
	} else if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("terminal error = %v, want context.Canceled", sawErr)
	}

	resumed, err := runner.Study(context.Background(), cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	reference, err := ramp.RunStudyContext(context.Background(), cfg, profiles, techs,
		ramp.StudyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reference, resumed) {
		t.Errorf("post-cancel cached study differs from a clean run")
	}
}

// TestRunnerStreamStudyBadConfig: an invalid config fails fast, before any
// channel is returned.
func TestRunnerStreamStudyBadConfig(t *testing.T) {
	runner, err := ramp.New()
	if err != nil {
		t.Fatal(err)
	}
	bad := ramp.DefaultConfig()
	bad.Instructions = -1
	if _, err := runner.StreamStudy(context.Background(), bad,
		ramp.Profiles()[:1], ramp.Technologies()[:1]); err == nil {
		t.Errorf("StreamStudy accepted an invalid config")
	}
}

// TestRunnerWithTracer: a Runner-attached tracer must capture the study's
// span tree — one study root, one cell span per (profile × technology) —
// and an untraced Runner must record nothing.
func TestRunnerWithTracer(t *testing.T) {
	cfg, profiles, techs := runnerTestInputs(t)
	collector := ramp.NewTraceCollector(0)
	runner, err := ramp.New(
		ramp.WithParallelism(2),
		ramp.WithTracer(ramp.NewTracer(collector)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Study(context.Background(), cfg, profiles, techs); err != nil {
		t.Fatal(err)
	}
	spans := collector.Spans()
	var study, cells int
	for _, sp := range spans {
		switch sp.Name {
		case "sim.study":
			study++
		case "sim.cell":
			cells++
		}
	}
	if study != 1 {
		t.Errorf("study spans = %d, want 1", study)
	}
	if want := len(profiles) * len(techs); cells != want {
		t.Errorf("cell spans = %d, want %d", cells, want)
	}

	// The trace export must serialise the collected spans.
	var buf strings.Builder
	if err := ramp.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Errorf("chrome trace missing traceEvents array: %q", buf.String()[:80])
	}

	// StreamStudy flows through the same tracer.
	before := len(spans)
	events, err := runner.StreamStudy(context.Background(), cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	for range events {
	}
	if after := len(collector.Spans()); after <= before {
		t.Errorf("StreamStudy added no spans (%d -> %d)", before, after)
	}
}

// TestRunnerMCStudy: the Monte Carlo facade samples the whole grid,
// produces parallelism-invariant summaries, and streams incremental
// estimates through onEvent.
func TestRunnerMCStudy(t *testing.T) {
	cfg, profiles, techs := runnerTestInputs(t)
	mcfg := ramp.MCConfig{Samples: 2000, Seed: 41, Percentiles: []float64{5, 50, 95}}

	runner1, err := ramp.New(ramp.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	var finals atomic.Int64
	got, err := runner1.MCStudy(context.Background(), cfg, profiles, techs, mcfg,
		func(ev ramp.MCEvent) {
			if ev.Final {
				finals.Add(1)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	want := len(profiles) * len(techs)
	if len(got.Cells) != want || got.TotalReplicas != want*2000 {
		t.Fatalf("cells = %d, replicas = %d", len(got.Cells), got.TotalReplicas)
	}
	if int(finals.Load()) != want {
		t.Errorf("final events = %d, want %d", finals.Load(), want)
	}
	for _, c := range got.Cells {
		if !(c.MeanYears > 0) || !(c.FITTotal > 0) || len(c.Percentiles) != 3 {
			t.Fatalf("bad cell: %+v", c)
		}
		p50 := c.Percentiles[1]
		if !(p50.CI.Lo <= p50.Years && p50.Years <= p50.CI.Hi) {
			t.Errorf("median %v outside its CI %v", p50.Years, p50.CI)
		}
	}

	runner8, err := ramp.New(ramp.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	again, err := runner8.MCStudy(context.Background(), cfg, profiles, techs, mcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Errorf("MCStudy not parallelism-invariant")
	}
}
