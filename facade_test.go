package ramp_test

import (
	"bytes"
	"strings"
	"testing"

	ramp "github.com/ramp-sim/ramp"
)

// TestFacadeAnalysisHelpers exercises the inexpensive public helpers.
func TestFacadeAnalysisHelpers(t *testing.T) {
	// Mechanism curves and quantified Table 1.
	curves, err := ramp.MechanismCurves(ramp.DefaultConfig().RAMP, ramp.BaseTechnology(),
		[]float64{340, 360, 380})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves.Rows) != 4 {
		t.Fatalf("curves rows = %d", len(curves.Rows))
	}
	if _, err := ramp.Table1Quantified(ramp.DefaultConfig().RAMP, 355); err != nil {
		t.Fatal(err)
	}

	// Charting.
	chart, err := ramp.ChartFromTable(curves)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := chart.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "EM") {
		t.Error("chart legend missing EM")
	}

	// Cycle analysis.
	sum, err := ramp.AnalyzeCycles([]float64{350, 355, 350, 355, 350}, 1, ramp.DefaultCycleParams())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cycles <= 0 {
		t.Error("no cycles counted")
	}

	// Aging.
	proj, err := ramp.ProjectAging(ramp.AgingSchedule{Phases: []ramp.AgingPhase{
		{Name: "on", HoursPerDay: 24, FIT: 4000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if proj.LifetimeYears < 28 || proj.LifetimeYears > 29 {
		t.Errorf("lifetime = %v years", proj.LifetimeYears)
	}
	mitigations, err := ramp.AgingMitigations(ramp.AgingSchedule{Phases: []ramp.AgingPhase{
		{Name: "on", HoursPerDay: 24, FIT: 4000},
	}}, 0.5)
	if err != nil || len(mitigations) != 1 {
		t.Fatalf("mitigations: %v, %v", mitigations, err)
	}

	// Lifetime models.
	if err := ramp.SOFRLifetimes().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ramp.WearOutLifetimes().Validate(); err != nil {
		t.Fatal(err)
	}
	var b ramp.Breakdown
	b.ByStructMech[2][ramp.TDDB] = 4000
	est, err := ramp.MonteCarloLifetime(b, ramp.SOFRLifetimes(), 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.MTTFYears <= 0 {
		t.Error("MC lifetime not positive")
	}

	// Scenario loading.
	spec, err := ramp.LoadScenario(strings.NewReader(`{"name": "facade"}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := spec.Resolve(ramp.DefaultConfig()); err != nil {
		t.Fatal(err)
	}

	// DVS ladder.
	ladder := ramp.DefaultLadder(ramp.BaseTechnology())
	if len(ladder) != 5 {
		t.Fatalf("ladder rungs = %d", len(ladder))
	}
}

// TestFacadeTraceRoundTrip exercises the trace interchange helpers.
func TestFacadeTraceRoundTrip(t *testing.T) {
	prof, err := ramp.ProfileByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := ramp.NewWorkloadStream(prof, 5000)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := ramp.NewSystematicSampler(stream, ramp.SamplerConfig{
		WindowInstrs: 100, PeriodInstrs: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := ramp.NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		in, err := sampler.Next()
		if err != nil {
			break
		}
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := ramp.NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		if _, err := r.Next(); err != nil {
			break
		}
		n++
	}
	if n != 1000 {
		t.Fatalf("round trip decoded %d instructions, want 1000", n)
	}
}

// TestFacadeHeavyPaths exercises the study-backed public functions on a
// minimal study.
func TestFacadeHeavyPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("facade study is slow; skipped with -short")
	}
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 80_000
	profiles := []ramp.Profile{ramp.Profiles()[0], ramp.Profiles()[15]}
	techs := ramp.Technologies()[:2]
	res, err := ramp.RunStudy(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ramp.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty JSON export")
	}
	if _, err := ramp.StructureBreakdown(res, 0, "crafty"); err != nil {
		t.Fatal(err)
	}
	if _, err := ramp.Table3(res); err != nil {
		t.Fatal(err)
	}
	if _, err := ramp.Table4(res); err != nil {
		t.Fatal(err)
	}
	if _, err := ramp.Figure2(res, ramp.SuiteFP); err != nil {
		t.Fatal(err)
	}
	if _, err := ramp.Figure5(res, ramp.SuiteInt, ramp.EM); err != nil {
		t.Fatal(err)
	}

	// DRM, CMP, and remap on the cheapest inputs.
	tr, err := ramp.RunTiming(cfg, profiles[1])
	if err != nil {
		t.Fatal(err)
	}
	tech65, err := ramp.TechnologyByName("65nm (1.0V)")
	if err != nil {
		t.Fatal(err)
	}
	pol := ramp.DRMPolicy{
		Ladder:         ramp.DefaultLadder(tech65),
		BudgetFIT:      1e9,
		EpochIntervals: 20,
		Headroom:       0.9,
	}
	if _, err := ramp.RunDRM(cfg, tr, tech65, ramp.ReferenceConstants(), pol, 0, 1); err != nil {
		t.Fatal(err)
	}
	tr2, err := ramp.RunTiming(cfg, profiles[0])
	if err != nil {
		t.Fatal(err)
	}
	cmp := ramp.CMPConfig{Base: cfg, Cores: 2}
	if _, err := ramp.EvaluateCMP(cmp, []*ramp.ActivityTrace{tr, tr2}, ramp.BaseTechnology(), 341, nil); err != nil {
		t.Fatal(err)
	}
	advice, err := ramp.AdviseRemap(cfg, tr, techs, ramp.ReferenceConstants(), 1e9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !advice[0].FeasibleAtNominal {
		t.Error("huge budget must be feasible at nominal")
	}
	if _, err := ramp.RunTimingStream(cfg, profiles[0], nil); err == nil {
		t.Error("nil stream accepted")
	}
}
