// Benchmarks for the extension subsystems: the Monte Carlo lifetime
// machinery (relaxing SOFR's exponential assumption) and the dynamic
// reliability management controller.
package ramp_test

import (
	"testing"

	ramp "github.com/ramp-sim/ramp"
)

// extensionBreakdown builds one calibrated breakdown for the lifetime
// benchmarks.
func extensionBreakdown(b *testing.B) ramp.Breakdown {
	b.Helper()
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 100_000
	prof, err := ramp.ProfileByName("crafty")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := ramp.RunTiming(cfg, prof)
	if err != nil {
		b.Fatal(err)
	}
	run, err := ramp.EvaluateTech(cfg, tr, ramp.BaseTechnology(), 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	return run.RawFIT.Calibrated(ramp.ReferenceConstants())
}

// BenchmarkExtensionMonteCarloLifetime measures lifetime-sampling
// throughput and reports the wear-out/SOFR MTTF ratio — the §2 assumption
// error the extension quantifies.
func BenchmarkExtensionMonteCarloLifetime(b *testing.B) {
	fit := extensionBreakdown(b)
	model := ramp.WearOutLifetimes()
	b.ResetTimer()
	var last ramp.LifetimeEstimate
	for i := 0; i < b.N; i++ {
		est, err := ramp.MonteCarloLifetime(fit, model, 10_000, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = est
	}
	b.ReportMetric(last.MTTFYears/last.SOFRYears, "x_wearoutVsSOFR")
	b.ReportMetric(float64(10_000*b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkExtensionCMP measures the chip-multiprocessor pipeline and
// reports the activity-migration FIT benefit on a hot+cool pair at 65nm.
func BenchmarkExtensionCMP(b *testing.B) {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 200_000
	tech, err := ramp.TechnologyByName("65nm (1.0V)")
	if err != nil {
		b.Fatal(err)
	}
	var traces []*ramp.ActivityTrace
	for _, app := range []string{"ammp", "crafty"} {
		prof, err := ramp.ProfileByName(app)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := ramp.RunTiming(cfg, prof)
		if err != nil {
			b.Fatal(err)
		}
		traces = append(traces, tr)
	}
	consts := ramp.ReferenceConstants()
	b.ResetTimer()
	var staticFIT, migFIT float64
	for i := 0; i < b.N; i++ {
		sres, err := ramp.EvaluateCMP(ramp.CMPConfig{Base: cfg, Cores: 2}, traces, tech, 341, nil)
		if err != nil {
			b.Fatal(err)
		}
		mres, err := ramp.EvaluateCMP(ramp.CMPConfig{Base: cfg, Cores: 2, MigrateIntervals: 50},
			traces, tech, 341, nil)
		if err != nil {
			b.Fatal(err)
		}
		staticFIT, migFIT = sres.ChipFIT(consts), mres.ChipFIT(consts)
	}
	b.ReportMetric(staticFIT, "FIT_static")
	b.ReportMetric(migFIT, "FIT_migrating")
	b.ReportMetric((1-migFIT/staticFIT)*100, "pct_migrationBenefit")
}

// BenchmarkExtensionDRMController measures the managed-run pipeline and
// reports the frequency each application sustains under a common budget.
func BenchmarkExtensionDRMController(b *testing.B) {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 200_000
	tech, err := ramp.TechnologyByName("65nm (1.0V)")
	if err != nil {
		b.Fatal(err)
	}
	pol := ramp.DRMPolicy{
		Ladder:         ramp.DefaultLadder(tech),
		BudgetFIT:      16_000,
		EpochIntervals: 50,
		Headroom:       0.9,
		StartLevel:     2,
	}
	for _, app := range []string{"ammp", "crafty"} {
		b.Run(app, func(b *testing.B) {
			prof, err := ramp.ProfileByName(app)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := ramp.RunTiming(cfg, prof)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var last ramp.DRMResult
			for i := 0; i < b.N; i++ {
				last, err = ramp.RunDRM(cfg, tr, tech, ramp.ReferenceConstants(), pol, 0, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.AvgFreqGHz, "GHz_sustained")
			b.ReportMetric(last.AvgFIT, "FIT_managed")
		})
	}
}
