package ramp_test

import (
	"os"
	"path/filepath"
	"testing"

	ramp "github.com/ramp-sim/ramp"
)

// TestShippedScenariosLoadAndResolve guards the scenario files in
// scenarios/: each must parse, validate, and resolve against the default
// configuration.
func TestShippedScenariosLoadAndResolve(t *testing.T) {
	entries, err := os.ReadDir("scenarios")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no shipped scenarios found")
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			spec, err := ramp.LoadScenarioFile(filepath.Join("scenarios", e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if spec.Name == "" || spec.Description == "" {
				t.Error("shipped scenarios need a name and a description")
			}
			cfg, profiles, techs, err := spec.Resolve(ramp.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(profiles) == 0 || len(techs) == 0 {
				t.Fatal("scenario resolves to an empty study")
			}
			if techs[0].Name != "180nm" {
				t.Fatal("resolved technologies must start with the calibration anchor")
			}
		})
	}
}
