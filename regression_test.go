package ramp_test

import (
	"testing"

	ramp "github.com/ramp-sim/ramp"
)

// TestPaperShapeRegression is the repository's reproduction contract: a
// full-suite study must keep producing the paper's qualitative results
// (DESIGN.md §4 "shape targets"). Bounds are deliberately loose — they
// guard the science, not the third digit.
func TestPaperShapeRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite study is slow; skipped with -short")
	}
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 300_000
	res, err := ramp.RunStudy(cfg, ramp.Profiles(), ramp.Technologies())
	if err != nil {
		t.Fatal(err)
	}
	h, err := ramp.ComputeHeadline(res)
	if err != nil {
		t.Fatal(err)
	}

	// Headline: total FIT increase at 65nm (1.0V) near the paper's 316%.
	if inc := h.TotalIncreasePct["all"]; inc < 200 || inc > 450 {
		t.Errorf("total FIT increase = %.0f%%, want within [200, 450] around the paper's 316%%", inc)
	}
	// Temperature rise toward the paper's 15 K.
	if h.TempRiseK < 7 || h.TempRiseK > 22 {
		t.Errorf("max-temp rise = %.1f K, want within [7, 22] around the paper's 15 K", h.TempRiseK)
	}

	// Mechanism ordering at 65nm (1.0V): TDDB steepest, then EM, with SM
	// and TC far behind (§5.3, Conclusions).
	tddb := h.MechIncreasePct[ramp.TDDB][1]
	em := h.MechIncreasePct[ramp.EM][1]
	sm := h.MechIncreasePct[ramp.SM][1]
	tc := h.MechIncreasePct[ramp.TC][1]
	if !(tddb > em && em > sm && em > tc) {
		t.Errorf("mechanism ordering broken: TDDB %.0f%% EM %.0f%% SM %.0f%% TC %.0f%%",
			tddb, em, sm, tc)
	}
	if tddb < 400 {
		t.Errorf("TDDB increase = %.0f%%, implausibly small vs the paper's 667-812%%", tddb)
	}
	if sm > 200 || tc > 200 {
		t.Errorf("SM/TC increases (%.0f%%, %.0f%%) should stay far below EM/TDDB", sm, tc)
	}

	// The voltage split: 65nm (1.0V) must be far worse than 65nm (0.9V)
	// (§5.2 "maintaining a constant voltage from 90nm to 65nm leads to a
	// large rise in FIT values").
	var i09, i10 int
	for ti, tech := range res.Techs {
		switch tech.Name {
		case "65nm (0.9V)":
			i09 = ti
		case "65nm (1.0V)":
			i10 = ti
		}
	}
	f09, f10 := res.SuiteAverageFIT(i09, 0), res.SuiteAverageFIT(i10, 0)
	if f10 < 1.4*f09 {
		t.Errorf("65nm voltage split too small: 1.0V %.0f vs 0.9V %.0f", f10, f09)
	}

	// Monotone growth of the suite average across the five points.
	prev := 0.0
	for ti := range res.Techs {
		avg := res.SuiteAverageFIT(ti, 0)
		if avg <= prev {
			t.Errorf("suite-average FIT not monotone at %s: %.0f after %.0f",
				res.Techs[ti].Name, avg, prev)
		}
		prev = avg
	}

	// SpecInt hotter and less reliable than SpecFP at every point (§5.2).
	for ti := range res.Techs {
		fp := res.SuiteAverageFIT(ti, ramp.SuiteFP)
		intg := res.SuiteAverageFIT(ti, ramp.SuiteInt)
		if intg <= fp {
			t.Errorf("%s: SpecInt avg FIT %.0f not above SpecFP %.0f",
				res.Techs[ti].Name, intg, fp)
		}
	}

	// Worst-case pessimism grows with scaling (§5.2).
	if h.WorstVsAveragePct[1] <= h.WorstVsAveragePct[0] {
		t.Errorf("worst-vs-average gap must widen: %.0f%% → %.0f%%",
			h.WorstVsAveragePct[0], h.WorstVsAveragePct[1])
	}
	if h.WorstVsHighestPct[1] <= h.WorstVsHighestPct[0] {
		t.Errorf("worst-vs-highest gap must widen: %.0f%% → %.0f%%",
			h.WorstVsHighestPct[0], h.WorstVsHighestPct[1])
	}

	// Application FIT spread grows with scaling (§5.2).
	if !(h.FITRange[0] < h.FITRange[1] && h.FITRange[1] < h.FITRange[2]) {
		t.Errorf("FIT ranges must widen: %v", h.FITRange)
	}

	// Qualification invariant: 180nm suite average is 4×1000 FIT.
	if avg := res.SuiteAverageFIT(0, 0); avg < 3999 || avg > 4001 {
		t.Errorf("180nm suite average = %.1f FIT, want 4000 (§4.4)", avg)
	}
}
