// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md §4), plus ablations of the scaling-specific design
// choices. Each experiment benchmark regenerates its artifact from a
// shared study (computed once, outside the timer) and reports the
// headline values of that artifact as benchmark metrics, so
// `go test -bench .` both exercises the pipeline and prints the numbers
// that EXPERIMENTS.md compares against the paper.
package ramp_test

import (
	"fmt"
	"io"
	"sync"
	"testing"

	ramp "github.com/ramp-sim/ramp"
)

// _benchInstructions balances fidelity and runtime for the shared study.
const _benchInstructions = 500_000

var (
	_studyOnce sync.Once
	_study     *ramp.StudyResult
	_studyErr  error
)

// benchStudy runs the full 16-benchmark, 5-technology study once.
func benchStudy(b *testing.B) *ramp.StudyResult {
	b.Helper()
	_studyOnce.Do(func() {
		cfg := ramp.DefaultConfig()
		cfg.Instructions = _benchInstructions
		_study, _studyErr = ramp.RunStudy(cfg, ramp.Profiles(), ramp.Technologies())
	})
	if _studyErr != nil {
		b.Fatal(_studyErr)
	}
	return _study
}

// techMetricName shortens technology names for metric labels.
func techMetricName(name string) string {
	switch name {
	case "65nm (0.9V)":
		return "65nm0.9V"
	case "65nm (1.0V)":
		return "65nm1.0V"
	default:
		return name
	}
}

// BenchmarkTable1Sensitivity exercises the analytic mechanism models
// themselves (Table 1's content): the per-evaluation cost of the four
// failure-rate equations across the operating temperature range.
func BenchmarkTable1Sensitivity(b *testing.B) {
	p := ramp.DefaultConfig().RAMP
	base := ramp.BaseTechnology()
	var sink float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tK := 340 + float64(i%40)
		sink += p.EMRate(0.5, tK, base)
		sink += p.SMRate(tK)
		sink += p.TDDBRate(base.VddV, tK, base)
		sink += p.TCRate(tK)
	}
	if sink == 0 {
		b.Fatal("rates were zero")
	}
}

// BenchmarkTable2BaseMachine measures the Table 2 machine's simulation
// throughput: instructions per second through the full out-of-order
// pipeline model on a representative workload.
func BenchmarkTable2BaseMachine(b *testing.B) {
	cfg := ramp.DefaultConfig()
	prof, err := ramp.ProfileByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Instructions = 200_000
		tr, err := ramp.RunTiming(cfg, prof)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(0)
		b.ReportMetric(float64(tr.Timing.Instructions)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
	}
}

// BenchmarkTable3IPCPower regenerates Table 3: per-application IPC and
// 180nm power. Metrics report the suite averages the paper quotes
// (SpecFP 1.52 IPC / 28.51W; SpecInt 1.79 IPC / 29.66W).
func BenchmarkTable3IPCPower(b *testing.B) {
	res := benchStudy(b)
	for i := 0; i < b.N; i++ {
		t, err := ramp.Table3(res)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.RenderCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range []struct {
		label string
		suite ramp.Suite
	}{{"FP", ramp.SuiteFP}, {"INT", ramp.SuiteInt}} {
		var ipc, pw float64
		var n int
		for _, a := range res.AppsAt(0) {
			if a.Suite != s.suite {
				continue
			}
			ipc += a.IPC
			pw += a.AvgTotalW
			n++
		}
		b.ReportMetric(ipc/float64(n), "IPC_"+s.label)
		b.ReportMetric(pw/float64(n), "W_"+s.label)
	}
}

// BenchmarkTable4ScaledPower regenerates Table 4's measured columns: the
// suite-average total power and relative power density per technology
// (paper: 29.1/19.0/14.7/14.4/16.9 W and 1.0/1.31/2.02/3.09/3.63).
func BenchmarkTable4ScaledPower(b *testing.B) {
	res := benchStudy(b)
	for i := 0; i < b.N; i++ {
		t, err := ramp.Table4(res)
		if err != nil {
			b.Fatal(err)
		}
		if err := t.RenderCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	var basePower float64
	for ti, tech := range res.Techs {
		var sum float64
		apps := res.AppsAt(ti)
		for _, a := range apps {
			sum += a.AvgTotalW
		}
		avg := sum / float64(len(apps))
		if ti == 0 {
			basePower = avg
		}
		b.ReportMetric(avg, "W_"+techMetricName(tech.Name))
		b.ReportMetric((avg/tech.RelArea)/basePower, "relDensity_"+techMetricName(tech.Name))
	}
}

// BenchmarkFigure2Temperature regenerates Figure 2: maximum structure
// temperatures. Metrics report the suite-average max temperature per
// technology and the 180nm→65nm(1.0V) rise (paper: 15 K).
func BenchmarkFigure2Temperature(b *testing.B) {
	res := benchStudy(b)
	for i := 0; i < b.N; i++ {
		for _, suite := range []ramp.Suite{ramp.SuiteFP, ramp.SuiteInt} {
			t, err := ramp.Figure2(res, suite)
			if err != nil {
				b.Fatal(err)
			}
			if err := t.RenderCSV(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
	var rise [2]float64
	for ti, tech := range res.Techs {
		var sum float64
		apps := res.AppsAt(ti)
		for _, a := range apps {
			sum += a.MaxStructTempK
		}
		avg := sum / float64(len(apps))
		b.ReportMetric(avg, "K_"+techMetricName(tech.Name))
		if ti == 0 {
			rise[0] = avg
		}
		if ti == len(res.Techs)-1 {
			rise[1] = avg
		}
	}
	b.ReportMetric(rise[1]-rise[0], "K_rise_180to65")
}

// BenchmarkFigure3TotalFIT regenerates Figure 3: total processor FIT per
// application with the worst-case curve. Metrics report suite-average FIT
// per technology (paper's Figure 3/§5.2 trends).
func BenchmarkFigure3TotalFIT(b *testing.B) {
	res := benchStudy(b)
	for i := 0; i < b.N; i++ {
		for _, suite := range []ramp.Suite{ramp.SuiteFP, ramp.SuiteInt} {
			t, err := ramp.Figure3(res, suite)
			if err != nil {
				b.Fatal(err)
			}
			if err := t.RenderCSV(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
	for ti, tech := range res.Techs {
		b.ReportMetric(res.SuiteAverageFIT(ti, 0), "FIT_"+techMetricName(tech.Name))
		b.ReportMetric(res.WorstFIT(ti).Total(), "FITworst_"+techMetricName(tech.Name))
	}
}

// BenchmarkFigure4Breakdown regenerates Figure 4: per-mechanism average
// FIT. Metrics report each mechanism's 65nm(1.0V)/180nm ratio (paper:
// EM ~4-5.5x, SM ~1.8-2.1x, TDDB ~7.7-9.1x, TC ~1.5-1.7x).
func BenchmarkFigure4Breakdown(b *testing.B) {
	res := benchStudy(b)
	for i := 0; i < b.N; i++ {
		for _, suite := range []ramp.Suite{ramp.SuiteFP, ramp.SuiteInt} {
			t, err := ramp.Figure4(res, suite)
			if err != nil {
				b.Fatal(err)
			}
			if err := t.RenderCSV(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
	m0 := res.SuiteAverageMech(0, 0)
	mN := res.SuiteAverageMech(len(res.Techs)-1, 0)
	for _, m := range []ramp.Mechanism{ramp.EM, ramp.SM, ramp.TDDB, ramp.TC} {
		b.ReportMetric(mN[m]/m0[m], fmt.Sprintf("x_%v_65nm1.0V", m))
	}
}

// BenchmarkFigure5Mechanisms regenerates Figure 5: all eight panels
// (4 mechanisms × 2 suites) with worst-case curves.
func BenchmarkFigure5Mechanisms(b *testing.B) {
	res := benchStudy(b)
	for i := 0; i < b.N; i++ {
		for _, m := range []ramp.Mechanism{ramp.EM, ramp.SM, ramp.TDDB, ramp.TC} {
			for _, suite := range []ramp.Suite{ramp.SuiteFP, ramp.SuiteInt} {
				t, err := ramp.Figure5(res, suite, m)
				if err != nil {
					b.Fatal(err)
				}
				if err := t.RenderCSV(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// Per-mechanism increases at 65nm (0.9V), the paper's §5.3 numbers.
	m0 := res.SuiteAverageMech(0, 0)
	var i09 int
	for ti, tech := range res.Techs {
		if tech.Name == "65nm (0.9V)" {
			i09 = ti
		}
	}
	m9 := res.SuiteAverageMech(i09, 0)
	for _, m := range []ramp.Mechanism{ramp.EM, ramp.SM, ramp.TDDB, ramp.TC} {
		b.ReportMetric(m9[m]/m0[m], fmt.Sprintf("x_%v_65nm0.9V", m))
	}
}

// BenchmarkHeadlineNumbers computes the paper's quoted summary numbers
// (§1.3/§5) and reports them as metrics for EXPERIMENTS.md.
func BenchmarkHeadlineNumbers(b *testing.B) {
	res := benchStudy(b)
	var h *ramp.Headline
	var err error
	for i := 0; i < b.N; i++ {
		h, err = ramp.ComputeHeadline(res)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.TempRiseK, "K_tempRise")
	b.ReportMetric(h.TotalIncreasePct["all"], "pct_totalIncrease")
	b.ReportMetric(h.TotalIncreasePct["SpecFP"], "pct_totalIncreaseFP")
	b.ReportMetric(h.TotalIncreasePct["SpecInt"], "pct_totalIncreaseINT")
	b.ReportMetric(h.WorstVsHighestPct[0], "pct_worstVsHighest180")
	b.ReportMetric(h.WorstVsHighestPct[1], "pct_worstVsHighest65")
	b.ReportMetric(h.WorstVsAveragePct[0], "pct_worstVsAvg180")
	b.ReportMetric(h.WorstVsAveragePct[1], "pct_worstVsAvg65")
	b.ReportMetric(h.FITRange[0], "FITrange_180nm")
	b.ReportMetric(h.FITRange[2], "FITrange_65nm1.0V")
}
