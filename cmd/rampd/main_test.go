package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a concurrency-safe writer for capturing server output
// while runCtx runs on another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startRampd launches runCtx on a random port and returns the base URL
// and the channel carrying its exit error.
func startRampd(t *testing.T, ctx context.Context, out *syncBuffer, extra ...string) (string, chan error) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	done := make(chan error, 1)
	go func() { done <- runCtx(ctx, out, args) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], done
		}
		select {
		case err := <-done:
			t.Fatalf("rampd exited before listening: %v (output %q)", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("rampd never reported its listen address: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// getJSON fetches a URL and decodes the JSON body.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

// TestRampdServesAndDrains is the end-to-end acceptance test: the daemon
// serves /healthz, /v1/profiles, and /metrics; a SIGTERM-equivalent
// cancellation arriving while a study request is in flight drains that
// request to a successful completion before the process exits.
func TestRampdServesAndDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	base, done := startRampd(t, ctx, out, "-n", "300000", "-drain", "60s")

	if code := getJSON(t, base+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	var profiles struct {
		Profiles []struct{ Name string } `json:"profiles"`
	}
	if code := getJSON(t, base+"/v1/profiles", &profiles); code != http.StatusOK {
		t.Fatalf("profiles = %d, want 200", code)
	}
	if len(profiles.Profiles) != 16 {
		t.Fatalf("profiles listed %d benchmarks, want 16", len(profiles.Profiles))
	}

	// Start a study and wait until it is genuinely in flight.
	type result struct {
		code int
		body []byte
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/v1/study?apps=bzip2&techs=130nm")
		if err != nil {
			resc <- result{code: -1, body: []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resc <- result{code: resp.StatusCode, body: b}
	}()
	waitInFlight := time.Now().Add(10 * time.Second)
	for {
		var m struct {
			InFlightHTTP int64 `json:"inflight_http"`
			Studies      int64 `json:"studies_total"`
		}
		getJSON(t, base+"/metrics", &m)
		// The /metrics request itself counts as one in-flight request; a
		// second one is the study.
		if m.Studies >= 1 && m.InFlightHTTP >= 2 {
			break
		}
		select {
		case r := <-resc:
			// The study outran us; the drain below is then trivially
			// satisfied, but the response must still be good.
			if r.code != http.StatusOK {
				t.Fatalf("study finished early with %d: %s", r.code, r.body)
			}
			resc <- r
		default:
		}
		if time.Now().After(waitInFlight) {
			t.Fatal("study never showed up in /metrics")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// SIGTERM (the signal context firing) while the study runs.
	cancel()

	r := <-resc
	if r.code != http.StatusOK {
		t.Fatalf("in-flight study during drain = %d, want 200: %s", r.code, r.body)
	}
	var study struct {
		Meta struct {
			Cache string `json:"cache"`
		} `json:"meta"`
		Study struct {
			Applications []struct {
				App      string  `json:"app"`
				TotalFIT float64 `json:"total_fit"`
			} `json:"applications"`
		} `json:"study"`
	}
	if err := json.Unmarshal(r.body, &study); err != nil {
		t.Fatalf("bad study body: %v", err)
	}
	if study.Meta.Cache != "miss" {
		t.Errorf("drained study cache = %q, want miss", study.Meta.Cache)
	}
	if len(study.Study.Applications) != 2 {
		t.Errorf("drained study has %d app runs, want 2 (bzip2 @ 180nm, 130nm)", len(study.Study.Applications))
	}
	for _, a := range study.Study.Applications {
		if a.TotalFIT <= 0 {
			t.Errorf("%s: total FIT %v not positive", a.App, a.TotalFIT)
		}
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("rampd exit error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rampd did not exit after drain")
	}
	if got := out.String(); !strings.Contains(got, "drained, bye") {
		t.Errorf("drain completion not logged: %q", got)
	}
}

// TestRampdFlagErrors checks flag parsing failures surface as errors.
func TestRampdFlagErrors(t *testing.T) {
	out := &syncBuffer{}
	if err := runCtx(context.Background(), out, []string{"-nonsense"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := runCtx(context.Background(), out, []string{"-addr", "256.256.256.256:99999"}); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// TestRampdRestartInProcess runs a second daemon in the same test binary.
// runCtx publishes metrics under the fixed expvar name "rampd", so this
// exercises the duplicate-safe publication path: a second instance must
// take over the name, not panic.
func TestRampdRestartInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a real server")
	}
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	base, done := startRampd(t, ctx, out, "-n", "1000")
	if code := getJSON(t, base+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("exit error: %v", err)
	}
}

var pprofRE = regexp.MustCompile(`pprof on (\S+)`)

// TestRampdPprofListener: -pprof-addr serves the profiler index on its own
// socket, and the public API listener does not expose /debug/pprof.
func TestRampdPprofListener(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a real server")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	base, done := startRampd(t, ctx, out, "-n", "1000", "-pprof-addr", "127.0.0.1:0")

	m := pprofRE.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("pprof address not reported: %q", out.String())
	}
	resp, err := http.Get("http://" + m[1] + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index = %d, want 200", resp.StatusCode)
	}

	apiResp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	apiResp.Body.Close()
	if apiResp.StatusCode == http.StatusOK {
		t.Fatal("public API listener serves /debug/pprof")
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("exit error: %v", err)
	}
}

// TestRampdBadObservabilityFlags: invalid logging flags fail fast.
func TestRampdBadObservabilityFlags(t *testing.T) {
	out := &syncBuffer{}
	if err := runCtx(context.Background(), out, []string{"-log-level", "loud"}); err == nil {
		t.Error("bad -log-level accepted")
	}
	if err := runCtx(context.Background(), out, []string{"-log-format", "yaml"}); err == nil {
		t.Error("bad -log-format accepted")
	}
}
