// Command rampd serves reliability studies over HTTP: the scaling study
// of the paper as a JSON API with result caching, request coalescing, and
// load shedding, so many clients can query (profile × technology)
// lifetime numbers without each paying a cold simulation.
//
// Usage:
//
//	rampd [-addr :8080] [-n 200000] [-max-n 2000000] [-default-fidelity exact]
//	      [-cache-size 64]
//	      [-cache-ttl 1h] [-queue 4] [-timeout 5m] [-drain 30s]
//	      [-parallelism N] [-cache-dir DIR] [-stage-cache 256] [-heartbeat 10s]
//	      [-mc-samples 200000] [-mc-replicas 2000000]
//	      [-batch-queue 256] [-batch-workers 2] [-batch-max-jobs 512]
//	      [-job-retries 3] [-job-backoff 250ms] [-job-ttl 15m]
//	      [-tenant-qps 0] [-tenant-burst 0] [-tenant-inflight 0]
//	      [-ready-high-water N] [-pprof-addr localhost:6060] [-trace-retain 8]
//	      [-ledger-size 512] [-log-level info] [-log-format text]
//
// Endpoints:
//
//	GET/POST /v1/study         full study document  (?apps=a,b&techs=x,y&instructions=n&fidelity=m)
//	GET/POST /v1/study/stream  the same study as NDJSON, one event per
//	                           completed (app × tech) cell, then the document
//	GET/POST /v1/study/mc      Monte Carlo lifetime distributions as NDJSON —
//	                           per-cell percentile/CI estimates, then the result
//	GET/POST /v1/mttf          lifetime summary     (same parameters, same cache)
//	GET      /v1/profiles      the benchmark registry
//	GET      /v1/study/trace   Chrome trace-event JSON of a retained study
//	POST     /v1/batch         submit up to -batch-max-jobs study/MC configs as
//	                           one async batch (X-Tenant selects the quota
//	                           bucket); 202 with batch and job IDs
//	GET      /v1/batch/{id}    per-job state/percent; DELETE cancels the batch
//	GET      /v1/batch/{id}/stream      NDJSON job transitions + heartbeats
//	GET      /v1/batch/{id}/jobs/{job}  finished job's result document
//	GET      /v1/ops/runs      recent run records from the cost ledger — one
//	                           per study/MC/batch-job execution with wall,
//	                           queue, and per-stage CPU cost (?tenant=&key=&
//	                           outcome=&kind=&limit=)
//	GET      /v1/ops/runs/{id} one run record by ledger ID
//	GET      /v1/ops/tail      NDJSON live tail of run records (?replay=N);
//	                           cmd/rampstat renders it in a terminal
//	GET      /healthz          liveness; always 200 while the process serves
//	GET      /readyz           readiness; 503 while draining or while the job
//	                           queue is past -ready-high-water
//	GET      /metrics          request/cache/coalescing/scheduler/stage-cache/job
//	                           counters (?format=prometheus for text exposition)
//
// Structured request logs — one record per request, carrying the
// X-Request-ID echoed in responses — go to stderr (-log-level,
// -log-format). With -pprof-addr the net/http/pprof handlers are served
// on a separate listener, kept off the public API surface; the flag is
// off by default.
//
// Every JSON response carries "schema_version"; errors use the stable
// envelope {"schema_version":1,"error":{"code","message"}}. Studies run
// through a content-addressed stage cache (timing / thermal / reliability
// artifacts), so requests differing only in downstream parameters replay
// the cheap stages; -cache-dir persists those artifacts across restarts.
//
// SIGINT/SIGTERM starts a graceful shutdown: /readyz flips to 503 (liveness
// on /healthz stays 200), the listener stops accepting, in-flight requests
// (and the simulations they wait on) finish within -drain, then the batch
// job queue stops and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"github.com/ramp-sim/ramp/internal/cli"
	"github.com/ramp-sim/ramp/internal/server"
	"github.com/ramp-sim/ramp/internal/sim"
)

func main() {
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	if err := runCtx(ctx, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rampd:", err)
		os.Exit(1)
	}
}

func runCtx(ctx context.Context, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("rampd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address")
	n := fs.Int64("n", 200_000, "default instructions per application per request")
	defaultFidelity := fs.String("default-fidelity", "",
		"fidelity mode for requests that name none: exact, adaptive, or phase (empty = exact)")
	maxN := fs.Int64("max-n", 2_000_000, "per-request instruction cap")
	cacheSize := fs.Int("cache-size", 64, "result cache entries (LRU bound)")
	cacheTTL := fs.Duration("cache-ttl", time.Hour, "result cache TTL (0 = no expiry)")
	queue := fs.Int("queue", 4, "admission bound: concurrent distinct studies before shedding 429s")
	timeout := fs.Duration("timeout", 5*time.Minute, "per-study compute deadline (0 = none)")
	drain := fs.Duration("drain", 30*time.Second, "graceful shutdown drain deadline")
	parallelism := fs.Int("parallelism", 0, "scheduler pool bound per study (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "persist stage artifacts (timing/thermal/fit) under this directory")
	stageCache := fs.Int("stage-cache", 0, "in-memory stage-cache entries per stage (0 = default 256)")
	heartbeat := fs.Duration("heartbeat", 10*time.Second, "idle heartbeat interval on /v1/study/stream")
	mcSamples := fs.Int("mc-samples", 0, "per-cell Monte Carlo replica cap on /v1/study/mc (0 = default 200000)")
	mcReplicas := fs.Int("mc-replicas", 0, "total Monte Carlo replica cap — samples × grid cells (0 = default 2000000)")
	batchQueue := fs.Int("batch-queue", 0, "live batch-job bound across tenants (0 = default 256)")
	batchWorkers := fs.Int("batch-workers", 0, "batch executor pool size (0 = default 2)")
	batchMaxJobs := fs.Int("batch-max-jobs", 0, "configs per POST /v1/batch request (0 = default 512)")
	jobRetries := fs.Int("job-retries", 0, "executions per batch job incl. the first (0 = default 3)")
	jobBackoff := fs.Duration("job-backoff", 0, "delay before a job's first retry, doubling per attempt (0 = default 250ms)")
	jobTTL := fs.Duration("job-ttl", 0, "retention of finished batches for status/result queries (0 = default 15m)")
	tenantQPS := fs.Float64("tenant-qps", 0, "per-tenant batch-job admission rate (0 = unlimited)")
	tenantBurst := fs.Int("tenant-burst", 0, "per-tenant admission burst (0 = derived from -tenant-qps)")
	tenantInflight := fs.Int("tenant-inflight", 0, "per-tenant live batch-job cap (0 = unlimited)")
	readyHighWater := fs.Int("ready-high-water", 0, "queued batch jobs before /readyz reports 503 (0 = 90% of -batch-queue)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
	traceRetain := fs.Int("trace-retain", 0, "completed study traces retained for /v1/study/trace (0 = default 8)")
	ledgerSize := fs.Int("ledger-size", 0, "run records retained by the cost ledger (0 = default 512, negative = disable /v1/ops)")
	logFlags := cli.RegisterLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		return err
	}

	simCfg := sim.DefaultConfig()
	simCfg.Instructions = *n
	fd, err := sim.ParseFidelityMode(*defaultFidelity)
	if err != nil {
		return err
	}
	simCfg.Fidelity = fd
	srv, err := server.New(server.Config{
		Sim:                 simCfg,
		DefaultInstructions: *n,
		MaxInstructions:     *maxN,
		CacheSize:           *cacheSize,
		CacheTTL:            *cacheTTL,
		MaxQueue:            *queue,
		ComputeTimeout:      *timeout,
		Parallelism:         *parallelism,
		CacheDir:            *cacheDir,
		StageCacheEntries:   *stageCache,
		StreamHeartbeat:     *heartbeat,
		MaxMCSamples:        *mcSamples,
		MaxMCReplicas:       *mcReplicas,
		Logger:              logger,
		TraceRetain:         *traceRetain,
		BatchCapacity:       *batchQueue,
		BatchWorkers:        *batchWorkers,
		BatchMaxJobs:        *batchMaxJobs,
		JobMaxAttempts:      *jobRetries,
		JobRetryBackoff:     *jobBackoff,
		JobTTL:              *jobTTL,
		TenantQPS:           *tenantQPS,
		TenantBurst:         *tenantBurst,
		TenantInflight:      *tenantInflight,
		ReadyHighWater:      *readyHighWater,
		LedgerSize:          *ledgerSize,
	})
	if err != nil {
		return err
	}
	srv.Publish("rampd")

	// The profiler listens on its own socket so /debug/pprof never rides
	// the public API address; registration is explicit on a fresh mux —
	// the import's DefaultServeMux side effect is not what is served.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return err
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go psrv.Serve(pln)
		defer psrv.Close()
		fmt.Fprintf(out, "rampd: pprof on %s\n", pln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(out, "rampd: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop advertising health, stop accepting, let
	// in-flight requests and their simulations finish, then cancel the
	// base context in case anything overran the drain deadline.
	fmt.Fprintf(out, "rampd: draining (deadline %s)\n", *drain)
	srv.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = httpSrv.Shutdown(sctx)
	srv.Close()
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	fmt.Fprintln(out, "rampd: drained, bye")
	return nil
}
