// Command tracegen generates synthetic SPEC2K-like instruction traces in
// the binary RAMP trace format, and inspects existing trace files.
//
// Usage:
//
//	tracegen -app gzip -n 1000000 -o gzip.trc    # generate
//	tracegen -app gzip -n 1000000 -o s.trc -sample-window 10000 -sample-period 100000
//	tracegen -inspect gzip.trc                   # summarise a trace file
//	tracegen -list                               # list available benchmarks
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/ramp-sim/ramp/internal/trace"
	"github.com/ramp-sim/ramp/internal/workload"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(w)
	app := fs.String("app", "", "benchmark to generate (see -list)")
	n := fs.Int64("n", 1_000_000, "number of instructions")
	out := fs.String("o", "", "output trace file")
	inspect := fs.String("inspect", "", "trace file to summarise")
	list := fs.Bool("list", false, "list available benchmarks")
	sampleWindow := fs.Int64("sample-window", 0, "systematic sampling: instructions kept per period (paper §4.5)")
	samplePeriod := fs.Int64("sample-period", 0, "systematic sampling: period length in instructions")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *list:
		for _, p := range workload.Profiles() {
			fmt.Fprintf(w, "%-10s %-8v IPC(paper)=%.2f power(paper)=%.2fW\n",
				p.Name, p.Suite, p.TargetIPC, p.TargetPowerW)
		}
		return nil
	case *inspect != "":
		return inspectTrace(w, *inspect)
	case *app != "":
		if *out == "" {
			return errors.New("generation needs -o <file>")
		}
		return generate(w, *app, *n, *out, *sampleWindow, *samplePeriod)
	default:
		return errors.New("pick one of -list, -app, or -inspect")
	}
}

func generate(out io.Writer, app string, n int64, path string, sampleWindow, samplePeriod int64) error {
	prof, err := workload.ByName(app)
	if err != nil {
		return err
	}
	var stream trace.Stream
	gen, err := workload.New(prof, n)
	if err != nil {
		return err
	}
	stream = gen
	if sampleWindow > 0 || samplePeriod > 0 {
		stream, err = trace.NewSystematicSampler(gen, trace.SamplerConfig{
			WindowInstrs: sampleWindow,
			PeriodInstrs: samplePeriod,
		})
		if err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	for {
		in, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if err := w.Write(in); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d instructions to %s\n", w.Count(), path)
	return nil
}

func inspectTrace(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	counts := make(map[trace.Class]int64)
	var total, branches, taken, mem int64
	for {
		in, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		total++
		counts[in.Class]++
		if in.Class == trace.ClassBranch {
			branches++
			if in.Taken {
				taken++
			}
		}
		if in.Class.IsMem() {
			mem++
		}
	}
	fmt.Fprintf(out, "%s: %d instructions\n", path, total)
	for c := trace.ClassIntALU; c.Valid(); c++ {
		if counts[c] == 0 {
			continue
		}
		fmt.Fprintf(out, "  %-8v %9d (%.1f%%)\n", c, counts[c], 100*float64(counts[c])/float64(total))
	}
	if branches > 0 {
		fmt.Fprintf(out, "  taken-branch rate: %.1f%%\n", 100*float64(taken)/float64(branches))
	}
	fmt.Fprintf(out, "  memory operations: %.1f%%\n", 100*float64(mem)/float64(total))
	return nil
}
