package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-list"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, app := range []string{"ammp", "crafty", "gzip", "wupwise"} {
		if !strings.Contains(out, app) {
			t.Errorf("list missing %s", app)
		}
	}
	if n := strings.Count(out, "\n"); n != 16 {
		t.Errorf("list has %d lines, want 16", n)
	}
}

func TestGenerateAndInspectRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gzip.trc")
	var sb strings.Builder
	if err := run(&sb, []string{"-app", "gzip", "-n", "50000", "-o", path}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote 50000 instructions") {
		t.Fatalf("generation output: %s", sb.String())
	}
	sb.Reset()
	if err := run(&sb, []string{"-inspect", path}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"50000 instructions", "int-alu", "load", "branch",
		"taken-branch rate", "memory operations"} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect output missing %q:\n%s", want, out)
		}
	}
}

func TestRejectsBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{}); err == nil {
		t.Error("no action accepted")
	}
	if err := run(&sb, []string{"-app", "gzip"}); err == nil {
		t.Error("generation without -o accepted")
	}
	if err := run(&sb, []string{"-app", "nonexistent", "-o", "x.trc"}); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run(&sb, []string{"-inspect", "/nonexistent/path.trc"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestGenerateSampled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sampled.trc")
	var sb strings.Builder
	err := run(&sb, []string{"-app", "gzip", "-n", "100000", "-o", path,
		"-sample-window", "1000", "-sample-period", "10000"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote 10000 instructions") {
		t.Fatalf("sampled generation output: %s", sb.String())
	}
	if err := run(&sb, []string{"-app", "gzip", "-n", "100", "-o", path,
		"-sample-window", "10", "-sample-period", "5"}); err == nil {
		t.Error("invalid sampling geometry accepted")
	}
}
