package main

import (
	"strings"
	"testing"
	"time"

	"github.com/ramp-sim/ramp/internal/obs"
)

func TestStateWindowEviction(t *testing.T) {
	st := newState(3)
	for i := 1; i <= 5; i++ {
		st.add(obs.RunRecord{ID: uint64(i)})
	}
	if len(st.recent) != 3 {
		t.Fatalf("window = %d records, want 3", len(st.recent))
	}
	for i, want := range []uint64{3, 4, 5} {
		if st.recent[i].ID != want {
			t.Errorf("recent[%d].ID = %d, want %d (oldest first)", i, st.recent[i].ID, want)
		}
	}
}

func TestNumPathDigger(t *testing.T) {
	m := map[string]any{
		"admission_queue_depth": float64(2),
		"jobs":                  map[string]any{"queued": float64(5)},
	}
	if v, ok := num(m, "admission_queue_depth"); !ok || v != 2 {
		t.Errorf("flat path = (%v, %v)", v, ok)
	}
	if v, ok := num(m, "jobs", "queued"); !ok || v != 5 {
		t.Errorf("nested path = (%v, %v)", v, ok)
	}
	if _, ok := num(m, "jobs", "missing"); ok {
		t.Error("missing leaf reported ok")
	}
	if _, ok := num(m, "admission_queue_depth", "deeper"); ok {
		t.Error("descending through a leaf reported ok")
	}
}

func TestShortKey(t *testing.T) {
	if got := short("abc"); got != "abc" {
		t.Errorf("short key mangled: %q", got)
	}
	long := strings.Repeat("f", 64)
	if got := short(long); got != strings.Repeat("f", 20)+"…" {
		t.Errorf("long key = %q", got)
	}
}

// TestRenderFrame pins the frame against a synthetic state: outcome and
// cache tallies, queue/runtime gauges, stage-cache hit rates, and the
// slowest-runs table sorted by wall time.
func TestRenderFrame(t *testing.T) {
	st := newState(10)
	st.ledger = obs.LedgerStats{Appended: 42, Retained: 3, Capacity: 512}
	st.add(obs.RunRecord{ID: 1, Kind: "study", Outcome: obs.RunOK,
		ResultCache: obs.ResultMiss, WallMS: 120.5, CPUMS: 300, Key: strings.Repeat("a", 30),
		Cache: map[string]obs.CacheCost{"fit": {Hits: 3, Misses: 1}}})
	st.add(obs.RunRecord{ID: 2, Kind: "mc", Outcome: obs.RunError,
		ResultCache: obs.ResultMiss, WallMS: 900.25, QueueMS: 10, Key: "k2",
		Cache: map[string]obs.CacheCost{"fit": {Hits: 1, Misses: 3}}})
	st.add(obs.RunRecord{ID: 3, Kind: "study", Outcome: obs.RunOK,
		ResultCache: obs.ResultHit, WallMS: 0.5, Key: "k3"})
	st.gauges = map[string]any{
		"admission_queue_depth": float64(1),
		"admission_capacity":    float64(4),
		"jobs":                  map[string]any{"queued": float64(2), "running": float64(1)},
		"sched":                 map[string]any{"queue_depth": float64(0), "in_flight": float64(3)},
		"runtime": map[string]any{
			"goroutines": float64(12), "heap_bytes": float64(2 << 20),
			"gc_pause_total_seconds": 0.004,
		},
	}

	var b strings.Builder
	render(&b, st, 2, time.Date(2026, 8, 8, 10, 30, 0, 0, time.UTC))
	out := b.String()

	for _, want := range []string{
		"rampd ops — 10:30:00",
		"runs: 42 recorded, 3 in window (ok 2, error 1, cancelled 0, deadline 0)",
		"result cache: hit 1, coalesced 0, miss 2",
		"queues: admission 1/4 · jobs queued 2 running 1 · sched ready 0 in-flight 3",
		"runtime: 12 goroutines · heap 2.0 MiB · gc pause 0.004s total",
		"stage caches: fit 50% (4/8)",
		strings.Repeat("a", 20) + "…",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q\n---\n%s", want, out)
		}
	}

	// Slowest-first table, capped at 2 rows: run 2 (900ms) above run 1
	// (120ms), run 3 cut.
	i2, i1 := strings.Index(out, "\n   2  mc"), strings.Index(out, "\n   1  study")
	if i2 < 0 || i1 < 0 || i2 > i1 {
		t.Errorf("slowest table out of order (i2=%d i1=%d):\n%s", i2, i1, out)
	}
	if strings.Contains(out, "\n   3  study") {
		t.Errorf("table not capped at n=2:\n%s", out)
	}
}

// TestRenderEmptyState: a frame with no data renders headers without
// panicking — the first paint before any event arrives.
func TestRenderEmptyState(t *testing.T) {
	var b strings.Builder
	render(&b, newState(5), 10, time.Now())
	if !strings.Contains(b.String(), "runs: 0 recorded, 0 in window") {
		t.Errorf("empty frame = %q", b.String())
	}
}
