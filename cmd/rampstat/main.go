// Command rampstat is a live terminal view of a running rampd: it tails
// the cost ledger over GET /v1/ops/tail (NDJSON) and polls /metrics,
// rendering queue depth, worker occupancy, stage-cache hit rates, and the
// slowest recent runs — the "what is the service doing right now" answer
// without a metrics stack.
//
// Usage:
//
//	rampstat [-addr http://localhost:8080] [-interval 2s] [-n 10]
//	         [-window 200] [-once] [-no-clear]
//
// -once fetches the current state (GET /v1/ops/runs), renders a single
// frame to stdout, and exits — the scripting/CI mode. Otherwise rampstat
// streams until interrupted, redrawing every -interval and on every run
// completion. -window bounds how many recent records feed the aggregates;
// -n bounds the slowest-runs table.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/ramp-sim/ramp/internal/cli"
	"github.com/ramp-sim/ramp/internal/obs"
)

func main() {
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	if err := run(ctx, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rampstat:", err)
		os.Exit(1)
	}
}

// tailEvent is one line of /v1/ops/tail (a superset of the event shapes:
// meta carries Ledger, run carries Run, heartbeats carry neither).
type tailEvent struct {
	Event  string           `json:"event"`
	Run    obs.RunRecord    `json:"run"`
	Ledger *obs.LedgerStats `json:"ledger"`
}

// state is everything one frame renders: the recent-run window plus the
// latest /metrics snapshot. It is owned by the event loop — no locking.
type state struct {
	window int
	recent []obs.RunRecord // oldest first, bounded by window
	ledger obs.LedgerStats
	gauges map[string]any // decoded /metrics JSON; nil until first poll
}

func newState(window int) *state { return &state{window: window} }

// add appends one run record, evicting the oldest past the window.
func (st *state) add(rec obs.RunRecord) {
	st.recent = append(st.recent, rec)
	if len(st.recent) > st.window {
		st.recent = st.recent[len(st.recent)-st.window:]
	}
}

func run(ctx context.Context, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("rampstat", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "http://localhost:8080", "rampd base URL")
	interval := fs.Duration("interval", 2*time.Second, "redraw and /metrics poll interval")
	slowest := fs.Int("n", 10, "slowest recent runs shown")
	window := fs.Int("window", 200, "recent run records feeding the aggregates")
	once := fs.Bool("once", false, "render one frame from current state and exit")
	noClear := fs.Bool("no-clear", false, "do not clear the terminal between frames")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{}
	st := newState(*window)

	if *once {
		if err := fetchRuns(ctx, client, base, st); err != nil {
			return err
		}
		st.gauges, _ = fetchMetrics(ctx, client, base) // best-effort
		render(out, st, *slowest, time.Now())
		return nil
	}

	// Live mode: one goroutine reads the tail stream, the loop below owns
	// the state and the terminal.
	events := make(chan tailEvent, 64)
	errc := make(chan error, 1)
	go func() { errc <- tailRuns(ctx, client, base, st.window, events) }()

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	st.gauges, _ = fetchMetrics(ctx, client, base)
	draw := func() {
		if !*noClear {
			fmt.Fprint(out, "\033[H\033[2J")
		}
		render(out, st, *slowest, time.Now())
	}
	draw()
	for {
		select {
		case <-ctx.Done():
			return nil
		case err := <-errc:
			if ctx.Err() != nil {
				return nil
			}
			return err
		case ev := <-events:
			switch ev.Event {
			case "run":
				st.add(ev.Run)
				draw()
			case "meta":
				if ev.Ledger != nil {
					st.ledger = *ev.Ledger
				}
			}
		case <-ticker.C:
			if g, err := fetchMetrics(ctx, client, base); err == nil {
				st.gauges = g
			}
			draw()
		}
	}
}

// fetchRuns loads the current ledger contents via GET /v1/ops/runs.
func fetchRuns(ctx context.Context, client *http.Client, base string, st *state) error {
	var body struct {
		Ledger obs.LedgerStats `json:"ledger"`
		Runs   []obs.RunRecord `json:"runs"`
	}
	if err := getJSON(ctx, client, fmt.Sprintf("%s/v1/ops/runs?limit=%d", base, st.window), &body); err != nil {
		return err
	}
	st.ledger = body.Ledger
	for i := len(body.Runs) - 1; i >= 0; i-- { // newest-first → oldest-first
		st.add(body.Runs[i])
	}
	return nil
}

// tailRuns streams GET /v1/ops/tail into the events channel until the
// context ends or the connection drops.
func tailRuns(ctx context.Context, client *http.Client, base string, replay int, events chan<- tailEvent) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/ops/tail?replay=%d", base, replay), nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/ops/tail: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		var ev tailEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate unknown lines; the schema is append-only
		}
		select {
		case events <- ev:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return sc.Err()
}

// getJSON fetches url and decodes the JSON body into v.
func getJSON(ctx context.Context, client *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// fetchMetrics polls the JSON form of /metrics.
func fetchMetrics(ctx context.Context, client *http.Client, base string) (map[string]any, error) {
	var m map[string]any
	if err := getJSON(ctx, client, base+"/metrics", &m); err != nil {
		return nil, err
	}
	return m, nil
}

// num digs a numeric leaf out of decoded JSON by key path.
func num(m map[string]any, path ...string) (float64, bool) {
	cur := any(m)
	for _, k := range path {
		obj, ok := cur.(map[string]any)
		if !ok {
			return 0, false
		}
		cur, ok = obj[k]
		if !ok {
			return 0, false
		}
	}
	f, ok := cur.(float64)
	return f, ok
}

// render writes one frame: ledger totals, queue/worker/runtime gauges,
// cache hit rates over the window, and the slowest recent runs.
func render(w io.Writer, st *state, slowest int, now time.Time) {
	fmt.Fprintf(w, "rampd ops — %s\n", now.Format("15:04:05"))

	// Outcome and result-cache tallies over the window.
	outcomes := map[string]int{}
	results := map[string]int{}
	caches := map[string]obs.CacheCost{}
	for _, r := range st.recent {
		outcomes[r.Outcome]++
		if r.ResultCache != "" {
			results[r.ResultCache]++
		}
		for name, c := range r.Cache {
			agg := caches[name]
			agg.Hits += c.Hits
			agg.Misses += c.Misses
			agg.Puts += c.Puts
			agg.Spills += c.Spills
			caches[name] = agg
		}
	}
	fmt.Fprintf(w, "runs: %d recorded, %d in window (ok %d, error %d, cancelled %d, deadline %d)\n",
		st.ledger.Appended, len(st.recent),
		outcomes[obs.RunOK], outcomes[obs.RunError],
		outcomes[obs.RunCancelled], outcomes[obs.RunDeadline])
	fmt.Fprintf(w, "result cache: hit %d, coalesced %d, miss %d\n",
		results[obs.ResultHit], results[obs.ResultCoalesced], results[obs.ResultMiss])

	if st.gauges != nil {
		admit, _ := num(st.gauges, "admission_queue_depth")
		admitCap, _ := num(st.gauges, "admission_capacity")
		queued, _ := num(st.gauges, "jobs", "queued")
		running, _ := num(st.gauges, "jobs", "running")
		inflight, _ := num(st.gauges, "sched", "in_flight")
		depth, _ := num(st.gauges, "sched", "queue_depth")
		fmt.Fprintf(w, "queues: admission %.0f/%.0f · jobs queued %.0f running %.0f · sched ready %.0f in-flight %.0f\n",
			admit, admitCap, queued, running, depth, inflight)
		if goroutines, ok := num(st.gauges, "runtime", "goroutines"); ok {
			heap, _ := num(st.gauges, "runtime", "heap_bytes")
			gc, _ := num(st.gauges, "runtime", "gc_pause_total_seconds")
			fmt.Fprintf(w, "runtime: %.0f goroutines · heap %.1f MiB · gc pause %.3fs total\n",
				goroutines, heap/(1<<20), gc)
		}
	}

	if len(caches) > 0 {
		names := make([]string, 0, len(caches))
		for name := range caches {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			c := caches[name]
			total := c.Hits + c.Misses
			rate := 0.0
			if total > 0 {
				rate = 100 * float64(c.Hits) / float64(total)
			}
			parts = append(parts, fmt.Sprintf("%s %.0f%% (%d/%d)", name, rate, c.Hits, total))
		}
		fmt.Fprintf(w, "stage caches: %s\n", strings.Join(parts, " · "))
	}

	// Slowest runs in the window, by wall time.
	byWall := append([]obs.RunRecord(nil), st.recent...)
	sort.SliceStable(byWall, func(i, j int) bool { return byWall[i].WallMS > byWall[j].WallMS })
	if len(byWall) > slowest {
		byWall = byWall[:slowest]
	}
	if len(byWall) > 0 {
		fmt.Fprintf(w, "\n%4s  %-12s %-10s %-9s %9s %9s %8s  %s\n",
			"ID", "KIND", "OUTCOME", "CACHE", "WALL ms", "CPU ms", "QUEUE ms", "KEY")
		for _, r := range byWall {
			fmt.Fprintf(w, "%4d  %-12s %-10s %-9s %9.1f %9.1f %8.1f  %s\n",
				r.ID, r.Kind, r.Outcome, r.ResultCache, r.WallMS, r.CPUMS, r.QueueMS, short(r.Key))
		}
	}
}

// short abbreviates a content-address key for table display.
func short(key string) string {
	if len(key) > 20 {
		return key[:20] + "…"
	}
	return key
}
