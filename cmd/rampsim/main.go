// Command rampsim runs the scaling study of the paper — the SPEC2K-like
// workload suite across the Table 4 technology points — and regenerates
// its figures and headline numbers.
//
// Usage:
//
//	rampsim [-n instructions] [-apps ammp,gcc] [-csv] [-figure 2|3|4|5] [-headline] [-all]
//	        [-parallelism N] [-progress] [-cache-dir DIR] [-trace-out study.trace.json]
//	        [-log-level info] [-log-format text]
//
// With -cache-dir the study's stage artifacts (timing, thermal,
// reliability) persist on disk, so a re-run that changes only downstream
// parameters — e.g. a reliability constant via -scenario — replays from
// the cache instead of re-simulating.
//
// With -trace-out the study's span tree — per-stage, per-cell, and
// cache-lookup timings — is written as a Chrome trace-event JSON file;
// open it in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Progress reports (-progress) and diagnostics share one locked stderr
// logger (-log-level, -log-format), so concurrent lines never interleave.
//
// Without -figure/-headline/-all it prints the per-run summary lines.
// Interrupting the process (Ctrl-C) cancels the study promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	ramp "github.com/ramp-sim/ramp"
	"github.com/ramp-sim/ramp/internal/cli"
)

func main() {
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	if err := runCtx(ctx, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rampsim:", err)
		os.Exit(1)
	}
}

// run keeps the historical entry point for tests; it never cancels.
func run(out io.Writer, args []string) error {
	return runCtx(context.Background(), out, args)
}

func runCtx(ctx context.Context, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("rampsim", flag.ContinueOnError)
	fs.SetOutput(out)
	instructions := fs.Int64("n", 2_000_000, "instructions to simulate per application")
	apps := fs.String("apps", "", "comma-separated benchmark subset (default: all 16)")
	fidelity := fs.String("fidelity", "", "fidelity mode: exact (default), adaptive, or phase")
	mechanisms := fs.String("mechanisms", "", "comma-separated failure mechanisms (default em,sm,tc,tddb; e.g. em,sm,tc,tddb,nbti,hci)")
	figure := fs.Int("figure", 0, "print one figure's data series (2, 3, 4, or 5)")
	headline := fs.Bool("headline", false, "print the headline paper-vs-measured comparison")
	all := fs.Bool("all", false, "print every figure and the headline comparison")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	plot := fs.Bool("plot", false, "render figures as ASCII charts instead of tables")
	jsonOut := fs.Bool("json", false, "emit the full study as a JSON document")
	scenarioPath := fs.String("scenario", "", "JSON experiment specification (overrides -n/-apps)")
	parallelism := fs.Int("parallelism", 0, "max concurrent study tasks (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", false, "report per-task study progress on stderr")
	cacheDir := fs.String("cache-dir", "", "persist stage artifacts under this directory for incremental re-runs")
	traceOut := fs.String("trace-out", "", "write the study's spans as Chrome trace-event JSON to this file")
	logFlags := cli.RegisterLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		return err
	}

	cfg := ramp.DefaultConfig()
	cfg.Instructions = *instructions
	profiles, err := selectProfiles(*apps)
	if err != nil {
		return err
	}
	techs := ramp.Technologies()
	if *scenarioPath != "" {
		spec, err := ramp.LoadScenarioFile(*scenarioPath)
		if err != nil {
			return err
		}
		cfg, profiles, techs, err = spec.Resolve(ramp.DefaultConfig())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "scenario: %s\n", spec.Name)
		if spec.Description != "" {
			fmt.Fprintf(out, "  %s\n", spec.Description)
		}
	}
	// The fidelity flag applies after scenario resolution so it also
	// governs scenario runs; empty inherits the scenario/default (exact).
	if *fidelity != "" {
		cfg.Fidelity, err = ramp.ParseFidelityMode(*fidelity)
		if err != nil {
			return err
		}
	}
	// Likewise for the mechanism selection; empty keeps the scenario's (or
	// the paper's default four).
	if *mechanisms != "" {
		cfg.Mechanisms, err = ramp.CanonicalMechanismNames(strings.Split(*mechanisms, ","))
		if err != nil {
			return err
		}
	}
	ropts := []ramp.Option{ramp.WithParallelism(*parallelism)}
	if *progress {
		// Progress goes through the shared logger, not raw stderr, so
		// per-task lines and log records serialise instead of interleaving.
		ropts = append(ropts, ramp.WithProgress(cli.SlogProgress(logger)))
	}
	if *cacheDir != "" {
		ropts = append(ropts, ramp.WithCache(ramp.CacheOptions{Dir: *cacheDir}))
	}
	var collector *ramp.TraceCollector
	if *traceOut != "" {
		collector = ramp.NewTraceCollector(0)
		ropts = append(ropts, ramp.WithTracer(ramp.NewTracer(collector)))
	}
	runner, err := ramp.New(ropts...)
	if err != nil {
		return err
	}
	res, err := runner.Study(ctx, cfg, profiles, techs)
	if err != nil {
		return err
	}
	if collector != nil {
		if err := writeTrace(*traceOut, collector); err != nil {
			return err
		}
		logger.Info("trace written", "path", *traceOut, "spans", len(collector.Spans()))
	}

	render := func(t *ramp.Table) error {
		if *csv {
			return t.RenderCSV(out)
		}
		if *plot {
			if c, err := ramp.ChartFromTable(t); err == nil {
				if err := c.Render(out); err != nil {
					return err
				}
				_, err := fmt.Fprintln(out)
				return err
			}
			// Tables that cannot chart (e.g. the headline) fall through.
		}
		if err := t.Render(out); err != nil {
			return err
		}
		_, err := fmt.Fprintln(out)
		return err
	}

	printFigure := func(n int) error {
		switch n {
		case 2, 3:
			for _, suite := range []ramp.Suite{ramp.SuiteFP, ramp.SuiteInt} {
				var t *ramp.Table
				var err error
				if n == 2 {
					t, err = ramp.Figure2(res, suite)
				} else {
					t, err = ramp.Figure3(res, suite)
				}
				if err != nil {
					return err
				}
				if err := render(t); err != nil {
					return err
				}
			}
		case 4:
			for _, suite := range []ramp.Suite{ramp.SuiteFP, ramp.SuiteInt} {
				t, err := ramp.Figure4(res, suite)
				if err != nil {
					return err
				}
				if err := render(t); err != nil {
					return err
				}
			}
		case 5:
			for _, m := range []ramp.Mechanism{ramp.EM, ramp.SM, ramp.TDDB, ramp.TC} {
				for _, suite := range []ramp.Suite{ramp.SuiteFP, ramp.SuiteInt} {
					t, err := ramp.Figure5(res, suite, m)
					if err != nil {
						return err
					}
					if err := render(t); err != nil {
						return err
					}
				}
			}
		default:
			return fmt.Errorf("unknown figure %d (want 2, 3, 4, or 5)", n)
		}
		return nil
	}

	switch {
	case *jsonOut:
		return ramp.WriteJSON(out, res)
	case *all:
		for _, n := range []int{2, 3, 4, 5} {
			if err := printFigure(n); err != nil {
				return err
			}
		}
		fallthrough
	case *headline:
		h, err := ramp.ComputeHeadline(res)
		if err != nil {
			return err
		}
		return render(h.Render())
	case *figure != 0:
		return printFigure(*figure)
	default:
		return printSummary(out, res)
	}
}

// writeTrace exports the collected spans as a Chrome trace-event file.
func writeTrace(path string, c *ramp.TraceCollector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ramp.WriteChromeTrace(f, c.Spans()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func selectProfiles(apps string) ([]ramp.Profile, error) {
	if apps == "" {
		return ramp.Profiles(), nil
	}
	var out []ramp.Profile
	for _, name := range strings.Split(apps, ",") {
		p, err := ramp.ProfileByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func printSummary(out io.Writer, res *ramp.StudyResult) error {
	for ti, tech := range res.Techs {
		fmt.Fprintf(out, "== %s ==\n", tech.Name)
		for _, a := range res.AppsAt(ti) {
			fit := res.FIT(a)
			mech := fit.ByMechanism()
			fmt.Fprintf(out,
				"  %-9s %-7v IPC=%.2f P=%5.1fW Tmax=%.1fK sink=%.1fK FIT=%6.0f [EM %5.0f SM %5.0f TDDB %5.0f TC %5.0f] MTTF=%.1fy\n",
				a.App, a.Suite, a.IPC, a.AvgTotalW, a.MaxStructTempK, a.SinkTempK,
				fit.Total(), mech[ramp.EM], mech[ramp.SM], mech[ramp.TDDB], mech[ramp.TC],
				fit.MTTFYears())
		}
		wfit := res.WorstFIT(ti)
		fmt.Fprintf(out, "  %-17s FIT=%6.0f\n", "max (worst-case)", wfit.Total())
		avgMech := res.SuiteAverageMech(ti, 0)
		fmt.Fprintf(out, "  suite-avg FIT: all=%.0f FP=%.0f INT=%.0f  [EM %.0f SM %.0f TDDB %.0f TC %.0f]\n",
			res.SuiteAverageFIT(ti, 0),
			res.SuiteAverageFIT(ti, ramp.SuiteFP),
			res.SuiteAverageFIT(ti, ramp.SuiteInt),
			avgMech[ramp.EM], avgMech[ramp.SM], avgMech[ramp.TDDB], avgMech[ramp.TC])
	}
	return nil
}
