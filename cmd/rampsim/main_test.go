package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI study run is slow; skipped with -short")
	}
	var sb strings.Builder
	err := run(&sb, []string{"-n", "100000", "-apps", "ammp,crafty"})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== 180nm ==", "== 65nm (1.0V) ==", "ammp", "crafty",
		"max (worst-case)", "suite-avg FIT"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestRunFigureAndHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI study run is slow; skipped with -short")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-n", "100000", "-apps", "ammp,crafty", "-figure", "4"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TDDB") {
		t.Error("figure 4 output missing mechanism rows")
	}
	sb.Reset()
	if err := run(&sb, []string{"-n", "100000", "-apps", "ammp,crafty", "-headline"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "316%") {
		t.Error("headline output missing paper reference values")
	}
}

func TestRunJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI study run is slow; skipped with -short")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-n", "100000", "-apps", "ammp", "-json"}); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if doc["schema"] != float64(1) {
		t.Errorf("schema = %v", doc["schema"])
	}
}

func TestRunRejectsUnknownInputs(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-apps", "nonexistent"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run(&sb, []string{"-bogusflag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestSelectProfiles(t *testing.T) {
	all, err := selectProfiles("")
	if err != nil || len(all) != 16 {
		t.Fatalf("default selection: %d profiles, err %v", len(all), err)
	}
	two, err := selectProfiles(" gzip , gcc ")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "gzip" || two[1].Name != "gcc" {
		t.Fatalf("subset selection wrong: %+v", two)
	}
}

func TestRunScenarioFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI study run is slow; skipped with -short")
	}
	var sb strings.Builder
	err := run(&sb, []string{"-scenario", "../../scenarios/quick-look.json"})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "scenario: quick-look") {
		t.Error("scenario banner missing")
	}
	if !strings.Contains(out, "== 65nm (1.0V) ==") {
		t.Error("scenario technologies not honoured")
	}
	if strings.Contains(out, "== 130nm ==") {
		t.Error("scenario should exclude 130nm")
	}
	if err := run(&sb, []string{"-scenario", "/nonexistent.json"}); err == nil {
		t.Error("missing scenario file accepted")
	}
}

func TestRunTraceOut(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI study run is slow; skipped with -short")
	}
	path := filepath.Join(t.TempDir(), "study.trace.json")
	var sb strings.Builder
	if err := run(&sb, []string{"-n", "50000", "-apps", "ammp", "-trace-out", path}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" || len(doc.TraceEvents) == 0 {
		t.Fatalf("trace file empty or missing displayTimeUnit: %d events", len(doc.TraceEvents))
	}
	cells := 0
	for _, ev := range doc.TraceEvents {
		if ev.Name == "sim.cell" {
			cells++
			if ev.Args["source"] == "" {
				t.Errorf("cell span without source attr: %v", ev.Args)
			}
		}
	}
	// One app across the five Table 4 technology points.
	if cells != 5 {
		t.Errorf("cell spans = %d, want 5", cells)
	}
}

func TestRunRejectsBadLogFlags(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-log-level", "loud"}); err == nil {
		t.Error("bad -log-level accepted")
	}
	if err := run(&sb, []string{"-log-format", "yaml"}); err == nil {
		t.Error("bad -log-format accepted")
	}
}
