package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// printConstants runs the full default study and prints the solved
// qualification constants for embedding as the reference calibration.
func printConstants(n int64) error {
	cfg := sim.DefaultConfig()
	cfg.Instructions = n
	res, err := sim.RunStudy(cfg, workload.Profiles(), scaling.Generations()[:1])
	if err != nil {
		return err
	}
	for m, k := range res.Constants.K {
		fmt.Printf("K[%d] = %.6e\n", m, k)
	}
	// Also per-app power scales for reference.
	for _, a := range res.AppsAt(0) {
		fmt.Printf("appScale %-9s = %.4f  (power %.2fW)\n", a.App, a.AppPowerScale, a.AvgTotalW)
	}
	return nil
}

func maybePrintConstants() (bool, error) {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	constants := fs.Bool("constants", false, "print reference qualification constants")
	n := fs.Int64("n", 2_000_000, "instructions per app")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return false, err
	}
	if !*constants {
		return false, nil
	}
	return true, printConstants(*n)
}
