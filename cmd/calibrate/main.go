// Command calibrate tunes the synthetic workload profiles so the simulated
// 180nm base machine reproduces the paper's Table 3 IPC operating points.
// It performs a small multiplicative local search per benchmark over the
// ILP, memory-locality, and branch-predictability knobs and prints the
// tuned parameters for transcription into internal/workload/profiles.go.
package main

import (
	"fmt"
	"math"
	"os"

	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/workload"
)

const (
	_instructions = 1_000_000
	_iterations   = 8
)

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func ipcOf(p workload.Profile) (float64, microarch.Result, error) {
	g, err := workload.New(p, _instructions)
	if err != nil {
		return 0, microarch.Result{}, err
	}
	sim, err := microarch.NewSimulator(microarch.DefaultConfig())
	if err != nil {
		return 0, microarch.Result{}, err
	}
	res, err := sim.Run(g)
	if err != nil {
		return 0, microarch.Result{}, err
	}
	return res.IPC(), res, nil
}

func main() {
	if done, err := maybePrintConstants(); done || err != nil {
		if err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, p := range workload.Profiles() {
		best := p
		bestErr := math.Inf(1)
		cur := p
		for it := 0; it < _iterations; it++ {
			ipc, _, err := ipcOf(cur)
			if err != nil {
				return err
			}
			relErr := math.Abs(ipc/p.TargetIPC - 1)
			if relErr < bestErr {
				bestErr = relErr
				best = cur
			}
			if relErr < 0.02 {
				break
			}
			ratio := p.TargetIPC / ipc
			f := clamp(ratio, 0.72, 1.38)
			cur.DepDist = clamp(cur.DepDist*f, 1.2, 14)
			cur.WarmProb = clamp(cur.WarmProb/(f*f), 0.002, 0.4)
			cur.ColdProb = clamp(cur.ColdProb/(f*f), 0.0002, 0.08)
			if ratio > 1 {
				cur.BranchPredictability = clamp(cur.BranchPredictability+(0.995-cur.BranchPredictability)*0.35, 0.5, 0.995)
			} else {
				cur.BranchPredictability = clamp(cur.BranchPredictability-(cur.BranchPredictability-0.85)*0.25, 0.85, 0.995)
			}
			cur.NearDepProb = clamp(cur.NearDepProb/clamp(ratio, 0.9, 1.12), 0.4, 0.92)
		}
		ipc, res, err := ipcOf(best)
		if err != nil {
			return err
		}
		fmt.Printf("// %s: IPC %.3f (target %.2f) bpred=%.3f L1D=%.3f L2=%.3f\n",
			best.Name, ipc, best.TargetIPC, 1-res.MispredictRate(), res.L1DMissRate(), res.L2MissRate())
		fmt.Printf("%s: DepDist: %.2f, NearDepProb: %.2f, WarmProb: %.4f, ColdProb: %.4f, BranchPredictability: %.3f\n\n",
			best.Name, best.DepDist, best.NearDepProb, best.WarmProb, best.ColdProb, best.BranchPredictability)
	}
	return nil
}
