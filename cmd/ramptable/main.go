// Command ramptable prints the paper's tables. Tables 1 and 2 are static
// model descriptions; Tables 3 and 4 require a study run and accept -n to
// size it.
//
// Usage:
//
//	ramptable -table 1|2|3|4 [-n instructions] [-csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	ramp "github.com/ramp-sim/ramp"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ramptable:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("ramptable", flag.ContinueOnError)
	fs.SetOutput(out)
	table := fs.Int("table", 0, "table number to print (1-4)")
	instructions := fs.Int64("n", 2_000_000, "instructions per application (tables 3 and 4)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var t *ramp.Table
	switch *table {
	case 1:
		t = ramp.Table1()
	case 2:
		t = ramp.Table2(ramp.DefaultConfig().Machine)
	case 3, 4:
		cfg := ramp.DefaultConfig()
		cfg.Instructions = *instructions
		techs := ramp.Technologies()
		if *table == 3 {
			// Table 3 only needs the 180nm point.
			techs = techs[:1]
		}
		res, err := ramp.RunStudy(cfg, ramp.Profiles(), techs)
		if err != nil {
			return err
		}
		if *table == 3 {
			t, err = ramp.Table3(res)
		} else {
			t, err = ramp.Table4(res)
		}
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("pick a table with -table 1|2|3|4")
	}
	if *csv {
		return t.RenderCSV(out)
	}
	return t.Render(out)
}
