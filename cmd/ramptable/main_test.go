package main

import (
	"strings"
	"testing"
)

func TestStaticTables(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-table", "1"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TDDB") {
		t.Error("table 1 missing TDDB")
	}
	sb.Reset()
	if err := run(&sb, []string{"-table", "2"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Reorder buffer size") {
		t.Error("table 2 missing ROB row")
	}
}

func TestStaticTableCSV(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-table", "1", "-csv"}); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(sb.String(), "\n", 2)[0]
	if !strings.Contains(first, ",") {
		t.Fatalf("CSV header missing commas: %q", first)
	}
}

func TestStudyTables(t *testing.T) {
	if testing.Short() {
		t.Skip("study tables are slow; skipped with -short")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-table", "3", "-n", "60000"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "crafty") {
		t.Error("table 3 missing benchmarks")
	}
	sb.Reset()
	if err := run(&sb, []string{"-table", "4", "-n", "60000"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "65nm (1.0V)") {
		t.Error("table 4 missing technology rows")
	}
}

func TestRejectsBadTable(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{}); err == nil {
		t.Error("missing table accepted")
	}
	if err := run(&sb, []string{"-table", "9"}); err == nil {
		t.Error("unknown table accepted")
	}
}
