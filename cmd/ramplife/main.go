// Command ramplife drives the library's lifetime extensions: Monte Carlo
// lifetime distributions (relaxing the SOFR constant-rate assumption),
// dynamic reliability management, and chip-multiprocessor evaluation with
// activity migration.
//
// Usage:
//
//	ramplife -mode mc  -app crafty [-tech "65nm (1.0V)"] [-samples 50000]
//	ramplife -mode drm -app crafty [-budget 16000]
//	ramplife -mode cmp -apps ammp,crafty [-migrate 100]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	ramp "github.com/ramp-sim/ramp"
	"github.com/ramp-sim/ramp/internal/cli"
)

func main() {
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	if err := runCtx(ctx, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ramplife:", err)
		os.Exit(1)
	}
}

// run keeps the historical entry point for tests; it never cancels.
func run(out io.Writer, args []string) error {
	return runCtx(context.Background(), out, args)
}

// session bundles the per-invocation execution environment: cancellation,
// the timing parallelism bound, and the optional progress sink.
type session struct {
	ctx  context.Context
	opts ramp.StudyOptions
}

func runCtx(ctx context.Context, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("ramplife", flag.ContinueOnError)
	fs.SetOutput(out)
	mode := fs.String("mode", "", "mc | drm | cmp | schedule | cycles | remap")
	app := fs.String("app", "crafty", "benchmark for mc/drm modes")
	apps := fs.String("apps", "ammp,crafty", "comma-separated benchmarks for cmp mode")
	techName := fs.String("tech", "65nm (1.0V)", "technology point")
	n := fs.Int64("n", 400_000, "instructions per application")
	samples := fs.Int("samples", 50_000, "Monte Carlo trials (mc mode)")
	budget := fs.Float64("budget", 16_000, "FIT budget (drm mode)")
	migrate := fs.Int("migrate", 100, "migration period in µs, 0 = static (cmp mode)")
	parallelism := fs.Int("parallelism", 0, "max concurrent timing runs (0 = GOMAXPROCS)")
	progress := fs.Bool("progress", false, "report per-task progress on stderr")
	mechanisms := fs.String("mechanisms", "", "comma-separated failure mechanisms (default em,sm,tc,tddb)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := ramp.DefaultConfig()
	cfg.Instructions = *n
	if *mechanisms != "" {
		names, err := ramp.CanonicalMechanismNames(strings.Split(*mechanisms, ","))
		if err != nil {
			return err
		}
		cfg.Mechanisms = names
	}
	tech, err := ramp.TechnologyByName(*techName)
	if err != nil {
		return err
	}
	s := session{ctx: ctx, opts: ramp.StudyOptions{Parallelism: *parallelism}}
	if *progress {
		s.opts.OnProgress = cli.StderrProgress()
	}
	switch *mode {
	case "mc":
		return runMC(s, out, cfg, *app, tech, *samples)
	case "drm":
		return runDRM(s, out, cfg, *app, tech, *budget)
	case "cmp":
		return runCMP(s, out, cfg, strings.Split(*apps, ","), tech, *migrate)
	case "schedule":
		return runSchedule(s, out, cfg, *app, tech)
	case "cycles":
		return runCycles(s, out, cfg, *app, tech)
	case "remap":
		return runRemap(s, out, cfg, *app, *budget)
	default:
		return fmt.Errorf("pick a mode with -mode mc|drm|cmp|schedule|cycles|remap")
	}
}

func (s session) timing(cfg ramp.Config, app string) (*ramp.ActivityTrace, error) {
	prof, err := ramp.ProfileByName(strings.TrimSpace(app))
	if err != nil {
		return nil, err
	}
	return ramp.RunTimingContext(s.ctx, cfg, prof)
}

// timings runs the timing stage for several benchmarks on the bounded pool.
func (s session) timings(cfg ramp.Config, apps []string) ([]*ramp.ActivityTrace, error) {
	profiles := make([]ramp.Profile, len(apps))
	for i, a := range apps {
		p, err := ramp.ProfileByName(strings.TrimSpace(a))
		if err != nil {
			return nil, err
		}
		profiles[i] = p
	}
	return ramp.RunTimings(s.ctx, cfg, profiles, s.opts)
}

func runMC(s session, out io.Writer, cfg ramp.Config, app string, tech ramp.Technology, samples int) error {
	prof, err := ramp.ProfileByName(strings.TrimSpace(app))
	if err != nil {
		return err
	}
	techs := []ramp.Technology{ramp.BaseTechnology()}
	if tech.Name != ramp.BaseTechnology().Name {
		techs = append(techs, tech)
	}
	// One runner with an in-memory stage cache: the second model's study
	// replays the first's timing and thermal artifacts.
	opts := []ramp.Option{
		ramp.WithParallelism(s.opts.Parallelism),
		ramp.WithCache(ramp.CacheOptions{}),
	}
	if s.opts.OnProgress != nil {
		opts = append(opts, ramp.WithProgress(s.opts.OnProgress))
	}
	runner, err := ramp.New(opts...)
	if err != nil {
		return err
	}
	t := &ramp.Table{
		Title: fmt.Sprintf("%s @ %s: lifetime distribution (%d trials)", app, tech.Name, samples),
		Header: []string{"model", "MTTF (y)", "median (y)", "5th pct (y)", "95th pct (y)",
			"median 95% CI (y)"},
	}
	for _, m := range []struct{ name, model string }{
		{"exponential (SOFR)", "sofr"},
		{"wear-out", "wearout"},
	} {
		res, err := runner.MCStudy(s.ctx, cfg, []ramp.Profile{prof}, techs, ramp.MCConfig{
			Samples:     samples,
			Model:       m.model,
			Seed:        2004,
			Percentiles: []float64{5, 50, 95},
		}, nil)
		if err != nil {
			return err
		}
		cell, err := mcCellFor(res, prof.Name, tech.Name)
		if err != nil {
			return err
		}
		p5, p50, p95 := cell.Percentiles[0], cell.Percentiles[1], cell.Percentiles[2]
		if err := t.AddRow(m.name,
			fmt.Sprintf("%.1f", cell.MeanYears),
			fmt.Sprintf("%.1f", p50.Years),
			fmt.Sprintf("%.1f", p5.Years),
			fmt.Sprintf("%.1f", p95.Years),
			fmt.Sprintf("[%.1f, %.1f]", p50.CI.Lo, p50.CI.Hi)); err != nil {
			return err
		}
	}
	return t.Render(out)
}

// mcCellFor selects one (application × technology) cell of an MC study.
func mcCellFor(res *ramp.MCResult, app, techName string) (ramp.MCCell, error) {
	for _, c := range res.Cells {
		if c.App == app && c.Tech == techName {
			return c, nil
		}
	}
	return ramp.MCCell{}, fmt.Errorf("no MC cell for %s @ %s", app, techName)
}

func runDRM(s session, out io.Writer, cfg ramp.Config, app string, tech ramp.Technology, budget float64) error {
	tr, err := s.timing(cfg, app)
	if err != nil {
		return err
	}
	pol := ramp.DRMPolicy{
		Ladder:         ramp.DefaultLadder(tech),
		BudgetFIT:      budget,
		EpochIntervals: 50,
		Headroom:       0.9,
		StartLevel:     2,
	}
	res, err := ramp.RunDRM(cfg, tr, tech, ramp.ReferenceConstants(), pol, 0, 1)
	if err != nil {
		return err
	}
	status := "met"
	if !res.MetBudget {
		status = "MISSED"
	}
	fmt.Fprintf(out, "%s @ %s under a %.0f-FIT budget:\n", app, tech.Name, budget)
	fmt.Fprintf(out, "  sustained frequency %.2f GHz  avg FIT %.0f (budget %s)\n",
		res.AvgFreqGHz, res.AvgFIT, status)
	fmt.Fprintf(out, "  ladder switches %d  max temp %.1f K\n", res.Switches, res.MaxStructTempK)
	for level, share := range res.TimeShare {
		if share == 0 {
			continue
		}
		fmt.Fprintf(out, "  level %d: %.0f%% of time\n", level, share*100)
	}
	return nil
}

func runCMP(s session, out io.Writer, cfg ramp.Config, apps []string, tech ramp.Technology, migrate int) error {
	if len(apps) < 2 {
		return fmt.Errorf("cmp mode needs at least 2 apps, got %d", len(apps))
	}
	traces, err := s.timings(cfg, apps)
	if err != nil {
		return err
	}
	mc := ramp.CMPConfig{Base: cfg, Cores: len(apps), MigrateIntervals: migrate}
	res, err := ramp.EvaluateCMPContext(s.ctx, mc, traces, tech, 341, nil)
	if err != nil {
		return err
	}
	consts := ramp.ReferenceConstants()
	fmt.Fprintf(out, "%d-core CMP @ %s (migration every %d µs):\n", len(apps), tech.Name, migrate)
	var spreadLo, spreadHi = math.Inf(1), math.Inf(-1)
	for c := range res.PerCore {
		pc := res.PerCore[c]
		fmt.Fprintf(out, "  core %d: apps %v  power %.1f W  avg-hot %.1f K  Tmax %.1f K\n",
			c, pc.Apps, pc.AvgPowerW, pc.AvgHotTempK, pc.MaxTempK)
		if pc.AvgHotTempK < spreadLo {
			spreadLo = pc.AvgHotTempK
		}
		if pc.AvgHotTempK > spreadHi {
			spreadHi = pc.AvgHotTempK
		}
	}
	fmt.Fprintf(out, "  chip: power %.1f W  Tmax %.1f K  FIT %.0f  temp spread %.1f K  migrations %d\n",
		res.AvgPowerW, res.MaxTempK, res.ChipFIT(consts), spreadHi-spreadLo, res.Migrations)
	return nil
}

// runSchedule projects deployment lifetime under a realistic day/night
// duty cycle: the named workload during the working day, a light load in
// the evening, and near-idle overnight.
func runSchedule(s session, out io.Writer, cfg ramp.Config, app string, tech ramp.Technology) error {
	tr, err := s.timing(cfg, app)
	if err != nil {
		return err
	}
	base, err := ramp.EvaluateTech(cfg, tr, ramp.BaseTechnology(), 0, 1)
	if err != nil {
		return err
	}
	point := base
	if tech.Name != ramp.BaseTechnology().Name {
		point, err = ramp.EvaluateTech(cfg, tr, tech, base.SinkTempK, 1)
		if err != nil {
			return err
		}
	}
	busy := point.RawFIT.Calibrated(ramp.ReferenceConstants()).Total()
	day := ramp.AgingSchedule{Phases: []ramp.AgingPhase{
		{Name: app, HoursPerDay: 9, FIT: busy},
		{Name: "light load", HoursPerDay: 7, FIT: busy * 0.45},
		{Name: "idle", HoursPerDay: 8, FIT: busy * 0.15},
	}}
	proj, err := ramp.ProjectAging(day)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s @ %s daily duty cycle:\n", app, tech.Name)
	for _, p := range day.Phases {
		fmt.Fprintf(out, "  %-11s %4.0f h/day at %6.0f FIT  (%.0f%% of damage)\n",
			p.Name, p.HoursPerDay, p.FIT, proj.DamageShare[p.Name]*100)
	}
	fmt.Fprintf(out, "  effective FIT %.0f -> projected lifetime %.1f years\n",
		proj.EffectiveFIT, proj.LifetimeYears)
	whatIf, err := ramp.AgingMitigations(day, 0.5)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  best mitigation: halve the %q phase rate -> +%.1f years\n",
		whatIf[0].Phase, whatIf[0].GainYears)
	return nil
}

// runCycles measures small thermal cycles — the §2 open problem — by
// recording the hottest structure's temperature trace for the workload
// as-is and for a phased (bursty) variant, and comparing rainflow damage
// indices.
func runCycles(s session, out io.Writer, cfg ramp.Config, app string, tech ramp.Technology) error {
	cfg.RecordThermalTrace = true
	prof, err := ramp.ProfileByName(strings.TrimSpace(app))
	if err != nil {
		return err
	}
	phased := prof
	phased.PhaseInstrs = cfg.Instructions / 20
	phased.PhaseMemScale = 8

	analyse := func(p ramp.Profile) (ramp.CycleSummary, float64, float64, error) {
		tr, err := ramp.RunTimingContext(s.ctx, cfg, p)
		if err != nil {
			return ramp.CycleSummary{}, 0, 0, err
		}
		base, err := ramp.EvaluateTech(cfg, tr, ramp.BaseTechnology(), 0, 1)
		if err != nil {
			return ramp.CycleSummary{}, 0, 0, err
		}
		point := base
		if tech.Name != ramp.BaseTechnology().Name {
			point, err = ramp.EvaluateTech(cfg, tr, tech, base.SinkTempK, 1)
			if err != nil {
				return ramp.CycleSummary{}, 0, 0, err
			}
		}
		params := ramp.DefaultCycleParams()
		params.MinRangeK = 0.01
		durMs := float64(len(point.TempTraceK)) / 1000 // one sample per µs
		sum, err := ramp.AnalyzeCycles(point.TempTraceK, durMs/1000, params)
		return sum, point.MaxStructTempK, durMs, err
	}
	steady, steadyMax, steadyMs, err := analyse(prof)
	if err != nil {
		return err
	}
	bursty, burstyMax, burstyMs, err := analyse(phased)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s @ %s small-thermal-cycle analysis (rainflow):\n", app, tech.Name)
	fmt.Fprintf(out, "  steady : %6.1f cycles/ms  mean swing %.3f K  max %.3f K  Tmax %.1f K  damage index %.3g\n",
		steady.Cycles/steadyMs, steady.MeanRangeK, steady.MaxRangeK, steadyMax, steady.DamageIndex)
	fmt.Fprintf(out, "  phased : %6.1f cycles/ms  mean swing %.3f K  max %.3f K  Tmax %.1f K  damage index %.3g\n",
		bursty.Cycles/burstyMs, bursty.MeanRangeK, bursty.MaxRangeK, burstyMax, bursty.DamageIndex)
	if steady.DamageIndex > 0 {
		fmt.Fprintf(out, "  phase behaviour multiplies the small-cycle damage index by %.1fx\n",
			bursty.DamageIndex/steady.DamageIndex)
	}
	fmt.Fprintln(out, "  (relative index only: the paper notes no validated small-cycle models exist)")
	return nil
}

// runRemap prints the derating schedule: for each technology point, the
// fastest below-nominal operating point that keeps the workload within the
// FIT budget — the cost of remapping one design across generations.
func runRemap(s session, out io.Writer, cfg ramp.Config, app string, budget float64) error {
	tr, err := s.timing(cfg, app)
	if err != nil {
		return err
	}
	advice, err := ramp.AdviseRemap(cfg, tr, ramp.Technologies(),
		ramp.ReferenceConstants(), budget, 0, 1)
	if err != nil {
		return err
	}
	t := &ramp.Table{
		Title:  fmt.Sprintf("Remap derating schedule for %s at a %.0f-FIT budget", app, budget),
		Header: []string{"tech", "nominal FIT", "feasible?", "best point", "FIT", "derate"},
	}
	for _, a := range advice {
		point, fit := "none", "-"
		if a.BestFreqGHz > 0 {
			point = fmt.Sprintf("%.2fV / %.2fGHz", a.BestVddV, a.BestFreqGHz)
			fit = fmt.Sprintf("%.0f", a.BestFIT)
		}
		feasible := "no"
		if a.FeasibleAtNominal {
			feasible = "yes"
		}
		if err := t.AddRow(a.Tech.Name, fmt.Sprintf("%.0f", a.NominalFIT),
			feasible, point, fit, fmt.Sprintf("%.0f%%", a.DeratePct)); err != nil {
			return err
		}
	}
	return t.Render(out)
}
