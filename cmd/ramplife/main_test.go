package main

import (
	"strings"
	"testing"
)

func TestRunModeMC(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI run is slow; skipped with -short")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-mode", "mc", "-app", "gzip", "-n", "100000", "-samples", "2000"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"lifetime distribution", "exponential (SOFR)", "wear-out"} {
		if !strings.Contains(out, want) {
			t.Errorf("mc output missing %q", want)
		}
	}
}

func TestRunModeDRM(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI run is slow; skipped with -short")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-mode", "drm", "-app", "gzip", "-n", "150000"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sustained frequency") {
		t.Errorf("drm output missing summary: %s", sb.String())
	}
}

func TestRunModeCMP(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI run is slow; skipped with -short")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-mode", "cmp", "-apps", "ammp,gzip", "-n", "150000", "-migrate", "50"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "2-core CMP") || !strings.Contains(out, "migrations") {
		t.Errorf("cmp output incomplete: %s", out)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{}); err == nil {
		t.Error("missing mode accepted")
	}
	if err := run(&sb, []string{"-mode", "warp"}); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run(&sb, []string{"-mode", "mc", "-tech", "42nm"}); err == nil {
		t.Error("unknown technology accepted")
	}
	if err := run(&sb, []string{"-mode", "cmp", "-apps", "gzip"}); err == nil {
		t.Error("single-app cmp accepted")
	}
}

func TestRunModeSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI run is slow; skipped with -short")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-mode", "schedule", "-app", "gzip", "-n", "100000"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"daily duty cycle", "projected lifetime", "best mitigation"} {
		if !strings.Contains(out, want) {
			t.Errorf("schedule output missing %q", want)
		}
	}
}

func TestRunModeCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI run is slow; skipped with -short")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-mode", "cycles", "-app", "gzip", "-n", "300000"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"rainflow", "steady", "phased", "damage index"} {
		if !strings.Contains(out, want) {
			t.Errorf("cycles output missing %q", want)
		}
	}
}

func TestRunModeRemap(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI run is slow; skipped with -short")
	}
	var sb strings.Builder
	if err := run(&sb, []string{"-mode", "remap", "-app", "gzip", "-n", "100000", "-budget", "6000"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Remap derating schedule", "180nm", "65nm (1.0V)", "derate"} {
		if !strings.Contains(out, want) {
			t.Errorf("remap output missing %q", want)
		}
	}
}
