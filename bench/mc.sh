#!/bin/sh
# bench/mc.sh — Monte Carlo study throughput, cold vs stage-cache-warm.
#
# Runs one cold Monte Carlo study (full scaling study plus sampling),
# then a second with a different root seed over the now-warm stage cache
# (study replays; only the sampling runs), and writes BENCH_mc.json in
# the repo root with replicas/sec for both and the throughput speedup.
#
# Usage: ./bench/mc.sh [instructions] [samples]   (defaults 400000, 1000)
set -eu

N="${1:-400000}"
SAMPLES="${2:-1000}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cd "$ROOT"
go run ./bench/mc -n "$N" -samples "$SAMPLES" -out "$ROOT/BENCH_mc.json"
