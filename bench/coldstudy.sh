#!/bin/sh
# bench/coldstudy.sh — cold-study latency across fidelity modes.
#
# Runs the same uncached application × technology sweep in exact, adaptive,
# and phase fidelity and writes BENCH_coldstudy.json in the repo root with
# per-mode latency, speedup over exact, and the SOFR-MTTF deviation each
# reduced mode introduces. Phase mode must deliver its speedup within the
# documented accuracy bound; pass extra flags (e.g. -check -min-speedup 4)
# to enforce thresholds.
#
# Usage: ./bench/coldstudy.sh [instructions] [extra coldstudy flags...]
#        (default 2000000)
set -eu

N="${1:-2000000}"
[ "$#" -gt 0 ] && shift
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cd "$ROOT"
go run ./bench/coldstudy -n "$N" -out "$ROOT/BENCH_coldstudy.json" "$@"
