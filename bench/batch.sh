#!/bin/sh
# bench/batch.sh — batch API vs sequential /v1/study wall-clock.
#
# Starts two identically-configured rampd instances (separate caches)
# and runs the same sweep — UNIQUE distinct study configurations, each
# repeated DUP times, UNIQUE×DUP configs total — through both client
# strategies:
#
#   sequential: the naive client; one /v1/study request per config,
#               one after another, against server A
#   batch:      one POST /v1/batch carrying the identical config list,
#               polled to completion, against server B
#
# The batch wins on both axes the subsystem is built for: duplicates
# collapse by content address *before* execution (dedup rate
# (DUP-1)/DUP), and the whole sweep pays one submission instead of
# UNIQUE×DUP request round-trips, with up to WORKERS jobs in flight at
# once. Writes BENCH_batch.json in the repo root with both wall-clocks,
# the speedup, and the server-reported dedup counters. Acceptance: ≥3×
# speedup at 8 workers.
#
# Usage: ./bench/batch.sh [instructions] [unique] [dup] [workers]
set -eu

N="${1:-20000}"
UNIQUE="${2:-12}"
DUP="${3:-8}"
WORKERS="${4:-8}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="$ROOT/BENCH_batch.json"
ADDR="127.0.0.1:18082"
LOG="$(mktemp)"

cd "$ROOT"
go build -o "$ROOT/bench/.rampd" ./cmd/rampd

# Two servers with identical simulation config: one for the sequential
# baseline, one for the batch, so neither warms the other's caches.
start_rampd() {
    "$ROOT/bench/.rampd" -addr "$1" -n "$N" -batch-workers "$WORKERS" \
        -queue "$WORKERS" >>"$LOG" 2>&1 &
    echo $!
}

PID=$(start_rampd "$ADDR")
ADDR2="127.0.0.1:18083"
PID2=$(start_rampd "$ADDR2")
trap 'kill "$PID" "$PID2" 2>/dev/null; wait "$PID" "$PID2" 2>/dev/null || true; rm -f "$ROOT/bench/.rampd" "$LOG"' EXIT

wait_up() {
    i=0
    until curl -fsS "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "rampd on $1 did not come up:"; cat "$LOG"; exit 1; }
        sleep 0.1
    done
}
wait_up "$ADDR"
wait_up "$ADDR2"

# Distinct configs by instruction budget: N, N+1, … N+UNIQUE-1; the
# sweep visits each config DUP times (i % UNIQUE), exactly like the
# batch below.
now_ms() { date +%s%3N; }

TOTAL=$((UNIQUE * DUP))
SEQ_START=$(now_ms)
i=0
while [ "$i" -lt "$TOTAL" ]; do
    curl -fsS -o /dev/null "http://$ADDR/v1/study?apps=bzip2&instructions=$((N + i % UNIQUE))"
    i=$((i + 1))
done
SEQ_MS=$(($(now_ms) - SEQ_START))

# The same UNIQUE configs, each repeated DUP times, as one batch.
JOBS=$(jq -n --argjson n "$N" --argjson unique "$UNIQUE" --argjson dup "$DUP" '
    {jobs: [range($unique * $dup) | {apps: ["bzip2"], instructions: ($n + (. % $unique))}]}')

BATCH_START=$(now_ms)
BATCH_ID=$(curl -fsS -d "$JOBS" "http://$ADDR2/v1/batch" | jq -r .batch_id)
until curl -fsS "http://$ADDR2/v1/batch/$BATCH_ID" | jq -e '.batch.done' >/dev/null; do
    sleep 0.01
done
BATCH_MS=$(($(now_ms) - BATCH_START))

SUBMIT=$(curl -fsS "http://$ADDR2/v1/batch/$BATCH_ID")
METRICS=$(curl -fsS "http://$ADDR2/metrics")

jq -n \
    --argjson n "$N" --argjson unique "$UNIQUE" --argjson dup "$DUP" \
    --argjson workers "$WORKERS" \
    --argjson seq_ms "$SEQ_MS" --argjson batch_ms "$BATCH_MS" \
    --argjson batch "$SUBMIT" --argjson metrics "$METRICS" \
    '{
        benchmark: "rampd /v1/batch vs sequential /v1/study",
        instructions: $n,
        unique_configs: $unique,
        jobs_submitted: ($unique * $dup),
        batch_workers: $workers,
        sequential_s: ($seq_ms / 1000),
        batch_s: ($batch_ms / 1000),
        speedup: (($seq_ms / ($batch_ms + 1)) * 100 | floor / 100),
        dedup_hit_rate: ((($unique * ($dup - 1)) / ($unique * $dup)) * 100 | floor / 100),
        jobs: $metrics.jobs,
        studies_total: $metrics.studies_total
    }' >"$OUT"

echo "wrote $OUT:"
cat "$OUT"
