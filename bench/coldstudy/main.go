// Command coldstudy benchmarks the cold study path across fidelity modes:
// the same application × technology sweep runs uncached in exact, adaptive,
// and phase fidelity, recording wall-clock latency, per-mode speedup over
// exact, and the per-cell SOFR-MTTF deviation each reduced mode introduces.
// This is the end-to-end gate for the fidelity framework — phase mode must
// buy its speedup without drifting past the documented accuracy bound.
//
// With -check the process exits non-zero when phase mode misses the
// -min-speedup floor, any reduced mode exceeds the -max-dev deviation
// bound, or (if -max-exact-ns is set) the exact path's per-instruction
// cost exceeds the ceiling — a coarse, hardware-tolerant latency
// regression gate for CI.
//
// Usage: coldstudy [-n 2000000] [-apps 4] [-out BENCH_coldstudy.json]
//
//	[-check] [-min-speedup 5] [-max-dev 0.01] [-max-exact-ns 0]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	ramp "github.com/ramp-sim/ramp"
)

type modeResult struct {
	Mode    string  `json:"mode"`
	Seconds float64 `json:"seconds"`
	// NsPerInstr is seconds normalised by total simulated-trace length
	// (apps × instructions), a hardware-portable cost figure.
	NsPerInstr float64 `json:"ns_per_instr"`
	Speedup    float64 `json:"speedup_vs_exact"`
	// MaxMTTFDevPct is the worst per-cell SOFR-MTTF deviation from the
	// exact study, in percent, across the full app × tech grid.
	MaxMTTFDevPct  float64 `json:"max_mttf_dev_pct"`
	MeanMTTFDevPct float64 `json:"mean_mttf_dev_pct"`
	// MaxWorstCaseDevPct covers the §5.2 worst-case (max-statistics)
	// entries, which are intrinsically softer under sampling.
	MaxWorstCaseDevPct float64 `json:"max_worstcase_dev_pct"`
	WorstCell          string  `json:"worst_cell,omitempty"`
}

type result struct {
	Instructions int64        `json:"instructions"`
	Apps         int          `json:"apps"`
	Techs        int          `json:"techs"`
	Modes        []modeResult `json:"modes"`
	PhaseSpeedup float64      `json:"phase_speedup"`
	PhaseMaxDev  float64      `json:"phase_max_mttf_dev_pct"`
}

func main() {
	n := flag.Int64("n", 2_000_000, "instructions per application")
	apps := flag.Int("apps", 4, "number of benchmark profiles")
	out := flag.String("out", "BENCH_coldstudy.json", "output JSON path")
	check := flag.Bool("check", false, "exit non-zero on threshold violations")
	minSpeedup := flag.Float64("min-speedup", 5, "with -check: minimum phase-mode cold speedup")
	maxDev := flag.Float64("max-dev", 0.01, "with -check: maximum per-cell SOFR-MTTF deviation (fraction)")
	maxExactNs := flag.Float64("max-exact-ns", 0, "with -check: ceiling on exact-mode ns/instruction (0 disables)")
	flag.Parse()
	if err := run(*n, *apps, *out, *check, *minSpeedup, *maxDev, *maxExactNs); err != nil {
		fmt.Fprintln(os.Stderr, "coldstudy:", err)
		os.Exit(1)
	}
}

func run(n int64, apps int, out string, check bool, minSpeedup, maxDev, maxExactNs float64) error {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = n
	profiles := ramp.Profiles()
	if apps > 0 && apps < len(profiles) {
		profiles = profiles[:apps]
	}
	techs := ramp.Technologies()

	// No cache: every run is a cold study, which is the latency this
	// benchmark exists to measure.
	runner, err := ramp.New()
	if err != nil {
		return err
	}
	ctx := context.Background()

	study := func(fd *ramp.Fidelity) (*ramp.StudyResult, float64, error) {
		c := cfg
		c.Fidelity = fd
		start := time.Now()
		res, err := runner.Study(ctx, c, profiles, techs)
		return res, time.Since(start).Seconds(), err
	}

	fmt.Printf("cold study: %d apps × %d techs, %d instructions\n",
		len(profiles), len(techs), n)
	exact, exactS, err := study(nil)
	if err != nil {
		return err
	}
	totalInstr := float64(n) * float64(len(profiles))
	res := result{Instructions: n, Apps: len(profiles), Techs: len(techs)}
	res.Modes = append(res.Modes, modeResult{
		Mode: "exact", Seconds: exactS,
		NsPerInstr: exactS * 1e9 / totalInstr, Speedup: 1,
	})
	fmt.Printf("exact    %.3fs  (%.0f ns/instr)\n", exactS, exactS*1e9/totalInstr)

	for _, mode := range []ramp.FidelityMode{ramp.FidelityAdaptive, ramp.FidelityPhase} {
		got, secs, err := study(&ramp.Fidelity{Mode: mode})
		if err != nil {
			return fmt.Errorf("%s: %w", mode, err)
		}
		m := modeResult{
			Mode: string(mode), Seconds: secs,
			NsPerInstr: secs * 1e9 / totalInstr,
			Speedup:    exactS / secs,
		}
		var sum float64
		for i := range exact.Apps {
			em := exact.FIT(exact.Apps[i]).MTTFYears()
			gm := got.FIT(got.Apps[i]).MTTFYears()
			dev := math.Abs(gm-em) / em
			sum += dev
			if p := dev * 100; p > m.MaxMTTFDevPct {
				m.MaxMTTFDevPct = p
				m.WorstCell = exact.Apps[i].App + "@" + exact.Apps[i].Tech.Name
			}
		}
		m.MeanMTTFDevPct = 100 * sum / float64(len(exact.Apps))
		for i := range exact.Worst {
			em := exact.WorstFIT(i).MTTFYears()
			gm := got.WorstFIT(i).MTTFYears()
			if p := 100 * math.Abs(gm-em) / em; p > m.MaxWorstCaseDevPct {
				m.MaxWorstCaseDevPct = p
			}
		}
		res.Modes = append(res.Modes, m)
		fmt.Printf("%-8s %.3fs  (%.1fx, max dev %.3f%% at %s)\n",
			m.Mode, secs, m.Speedup, m.MaxMTTFDevPct, m.WorstCell)
		if mode == ramp.FidelityPhase {
			res.PhaseSpeedup = m.Speedup
			res.PhaseMaxDev = m.MaxMTTFDevPct
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("phase speedup %.1fx, max SOFR-MTTF deviation %.3f%% → %s\n",
		res.PhaseSpeedup, res.PhaseMaxDev, out)

	if check {
		var failed bool
		if res.PhaseSpeedup < minSpeedup {
			fmt.Fprintf(os.Stderr, "FAIL: phase speedup %.2fx below %.2fx floor\n",
				res.PhaseSpeedup, minSpeedup)
			failed = true
		}
		for _, m := range res.Modes {
			if m.Mode != "exact" && m.MaxMTTFDevPct > maxDev*100 {
				fmt.Fprintf(os.Stderr, "FAIL: %s max SOFR-MTTF deviation %.3f%% exceeds %.3f%% bound\n",
					m.Mode, m.MaxMTTFDevPct, maxDev*100)
				failed = true
			}
		}
		if maxExactNs > 0 && res.Modes[0].NsPerInstr > maxExactNs {
			fmt.Fprintf(os.Stderr, "FAIL: exact cost %.0f ns/instr exceeds %.0f ceiling\n",
				res.Modes[0].NsPerInstr, maxExactNs)
			failed = true
		}
		if failed {
			return fmt.Errorf("threshold check failed")
		}
		fmt.Println("threshold check passed")
	}
	return nil
}
