#!/bin/sh
# bench/stagecache.sh — cold vs warm sweep latency through the stage cache.
#
# Runs one cold scaling study, then four warm sweeps that change only
# reliability-model constants (EM activation energy, EM current exponent,
# TDDB voltage acceleration, TC Coffin-Manson exponent) against the warm
# cache, and writes BENCH_stagecache.json in the repo root. The warm runs
# skip the timing and thermal stages, so the recorded speedup is the value
# of the incremental-study machinery.
#
# Usage: ./bench/stagecache.sh [instructions]   (default 200000)
set -eu

N="${1:-200000}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cd "$ROOT"
go run ./bench/stagecache -n "$N" -out "$ROOT/BENCH_stagecache.json"
