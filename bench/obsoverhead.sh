#!/bin/sh
# bench/obsoverhead.sh — run-ledger overhead on the warm /v1/study path.
#
# Serves the same result-cached study request through two in-process rampd
# servers (run ledger enabled vs disabled) in interleaved batches and
# writes BENCH_obsoverhead.json in the repo root with per-mode latency
# percentiles and the ledger-on p50 overhead in percent. The observability
# plane must stay invisible on the serving path; pass extra flags (e.g.
# -check -max-overhead-pct 2) to enforce the ceiling.
#
# Usage: ./bench/obsoverhead.sh [instructions] [extra obsoverhead flags...]
#        (default 200000)
set -eu

N="${1:-200000}"
[ "$#" -gt 0 ] && shift
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cd "$ROOT"
go run ./bench/obsoverhead -n "$N" -out "$ROOT/BENCH_obsoverhead.json" "$@"
