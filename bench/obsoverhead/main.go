// Command obsoverhead gates the cost of the observability plane: it
// serves the same warm (result-cached) /v1/study request through two
// in-process rampd servers — one with the run ledger enabled, one with it
// disabled — and compares warm-path latency percentiles. The ledger is
// designed to be invisible on the serving path (one record assembly and
// a bounded ring append per run), and this benchmark is the proof: with
// -check the process exits non-zero when the ledger-on p50 exceeds the
// ledger-off p50 by more than -max-overhead-pct percent.
//
// Requests alternate between the two servers in interleaved batches, so
// CPU-frequency drift and GC phase hit both modes equally — the
// comparison is hardware-tolerant even though the absolute numbers are
// not.
//
// Usage: obsoverhead [-n 200000] [-requests 4000] [-batch 100]
//
//	[-out BENCH_obsoverhead.json] [-check] [-max-overhead-pct 2]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/server"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

type modeStats struct {
	Mode     string  `json:"mode"` // "ledger-off" or "ledger-on"
	Requests int     `json:"requests"`
	P50us    float64 `json:"p50_us"`
	P90us    float64 `json:"p90_us"`
	P99us    float64 `json:"p99_us"`
}

type result struct {
	Instructions int64     `json:"instructions"`
	Requests     int       `json:"requests_per_mode"`
	Off          modeStats `json:"ledger_off"`
	On           modeStats `json:"ledger_on"`
	OverheadPct  float64   `json:"overhead_pct_p50"`
	RunsRecorded uint64    `json:"runs_recorded"`
}

func main() {
	n := flag.Int64("n", 200_000, "instructions per application")
	requests := flag.Int("requests", 4000, "warm requests measured per mode")
	batch := flag.Int("batch", 100, "requests per interleaved batch")
	out := flag.String("out", "BENCH_obsoverhead.json", "output JSON path")
	check := flag.Bool("check", false, "exit non-zero on threshold violation")
	maxOverhead := flag.Float64("max-overhead-pct", 2, "with -check: ceiling on ledger-on p50 overhead in percent")
	flag.Parse()
	if err := run(*n, *requests, *batch, *out, *check, *maxOverhead); err != nil {
		fmt.Fprintln(os.Stderr, "obsoverhead:", err)
		os.Exit(1)
	}
}

// newServer builds one in-process rampd; ledgerSize -1 disables the run
// ledger. Logs go to io.Discard so both modes pay the same logger costs
// they would pay in production (the ledger-on mode additionally formats
// its wide per-run record — that cost is part of what is measured).
func newServer(n int64, ledgerSize int) (*server.Server, error) {
	logger, err := obs.NewLogger(io.Discard, slog.LevelInfo, "text")
	if err != nil {
		return nil, err
	}
	simCfg := sim.DefaultConfig()
	simCfg.Instructions = n
	return server.New(server.Config{
		Sim:                 simCfg,
		DefaultInstructions: n,
		MaxInstructions:     10 * n,
		CacheSize:           64,
		MaxQueue:            4,
		Logger:              logger,
		LedgerSize:          ledgerSize,
	})
}

func run(n int64, requests, batch int, out string, check bool, maxOverhead float64) error {
	app := workload.Profiles()[0].Name
	path := fmt.Sprintf("/v1/study?apps=%s&instructions=%d", app, n)

	off, err := newServer(n, -1)
	if err != nil {
		return err
	}
	defer off.Close()
	on, err := newServer(n, 0)
	if err != nil {
		return err
	}
	defer on.Close()
	offH, onH := off.Handler(), on.Handler()

	// One cold request per server fills its result cache; everything
	// measured after this is the warm path the gate is about.
	for _, h := range []http.Handler{offH, onH} {
		if code := do(h, path); code != http.StatusOK {
			return fmt.Errorf("warmup request failed with status %d", code)
		}
	}

	// Interleave batches, discarding the first per mode (allocator and
	// branch-predictor warmup), until each mode has `requests` samples.
	var offLat, onLat []float64
	keep := false
	for len(offLat) < requests || len(onLat) < requests {
		offLat = measureBatch(offLat, offH, path, batch, keep, requests)
		onLat = measureBatch(onLat, onH, path, batch, keep, requests)
		keep = true
	}

	offStats := summarize("ledger-off", offLat)
	onStats := summarize("ledger-on", onLat)
	overhead := 100 * (onStats.P50us - offStats.P50us) / offStats.P50us

	var recorded uint64
	if lr := do(onH, "/v1/ops/runs?limit=1"); lr != http.StatusOK {
		return fmt.Errorf("/v1/ops/runs returned %d on the ledger-on server", lr)
	}
	recorded = opsAppended(onH)

	res := result{
		Instructions: n,
		Requests:     requests,
		Off:          offStats,
		On:           onStats,
		OverheadPct:  overhead,
		RunsRecorded: recorded,
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("obsoverhead: p50 off %.1fµs on %.1fµs → overhead %.2f%% (%d runs recorded)\n",
		offStats.P50us, onStats.P50us, overhead, recorded)

	if check {
		if recorded == 0 {
			return fmt.Errorf("ledger-on server recorded no runs — the measurement is vacuous")
		}
		if overhead > maxOverhead {
			return fmt.Errorf("ledger overhead %.2f%% exceeds the %.2f%% ceiling", overhead, maxOverhead)
		}
		fmt.Printf("obsoverhead: PASS (ceiling %.2f%%)\n", maxOverhead)
	}
	return nil
}

// do issues one in-process request and returns the status code.
func do(h http.Handler, path string) int {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code
}

// measureBatch issues one batch of warm requests, appending per-request
// latencies (µs) to lat. keep=false runs the batch but discards the
// samples; target caps the total collected.
func measureBatch(lat []float64, h http.Handler, path string, batch int, keep bool, target int) []float64 {
	for i := 0; i < batch; i++ {
		start := time.Now()
		code := do(h, path)
		dur := time.Since(start)
		if code != http.StatusOK {
			continue
		}
		if keep && len(lat) < target {
			lat = append(lat, float64(dur)/float64(time.Microsecond))
		}
	}
	return lat
}

// summarize computes percentile stats over latencies in microseconds.
func summarize(mode string, lat []float64) modeStats {
	sort.Float64s(lat)
	return modeStats{
		Mode:     mode,
		Requests: len(lat),
		P50us:    percentile(lat, 0.50),
		P90us:    percentile(lat, 0.90),
		P99us:    percentile(lat, 0.99),
	}
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// opsAppended reads the ledger's appended counter off /v1/ops/runs,
// proving the ledger-on server actually recorded the measured traffic.
func opsAppended(h http.Handler) uint64 {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/ops/runs?limit=1", nil))
	var body struct {
		Ledger struct {
			Appended uint64 `json:"appended"`
		} `json:"ledger"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		return 0
	}
	return body.Ledger.Appended
}
