#!/bin/sh
# bench/serve.sh — cold vs warm /v1/study latency for rampd.
#
# Starts rampd on an ephemeral port, times one cold request (full
# simulation), the same request again (cache hit), and a distinct request
# issued twice concurrently (coalesced), then writes BENCH_serve.json in
# the repo root.
#
# Usage: ./bench/serve.sh [instructions]   (default 100000)
set -eu

N="${1:-100000}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="$ROOT/BENCH_serve.json"
ADDR="127.0.0.1:18080"
LOG="$(mktemp)"

cd "$ROOT"
go build -o "$ROOT/bench/.rampd" ./cmd/rampd

"$ROOT/bench/.rampd" -addr "$ADDR" -n "$N" >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null; wait "$PID" 2>/dev/null || true; rm -f "$ROOT/bench/.rampd" "$LOG"' EXIT

# Wait for the listener.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "rampd did not come up:"; cat "$LOG"; exit 1; }
    sleep 0.1
done

Q="http://$ADDR/v1/study?apps=bzip2,gcc&techs=130nm,90nm"

# curl's %{time_total} is seconds with microsecond resolution.
COLD=$(curl -fsS -o /dev/null -w '%{time_total}' "$Q")
WARM=$(curl -fsS -o /dev/null -w '%{time_total}' "$Q")

# A distinct study, requested twice at once: the second should coalesce.
Q2="http://$ADDR/v1/study?apps=mesa&techs=90nm"
curl -fsS -o /dev/null "$Q2" &
C1=$!
COAL=$(curl -fsS -o /dev/null -w '%{time_total}' "$Q2")
wait "$C1"

METRICS=$(curl -fsS "http://$ADDR/metrics")

jq -n \
    --arg n "$N" \
    --arg cold "$COLD" \
    --arg warm "$WARM" \
    --arg coal "$COAL" \
    --argjson metrics "$METRICS" \
    '{
        benchmark: "rampd /v1/study cold vs warm",
        instructions: ($n | tonumber),
        cold_s: ($cold | tonumber),
        warm_s: ($warm | tonumber),
        concurrent_duplicate_s: ($coal | tonumber),
        speedup_warm: (($cold | tonumber) / (($warm | tonumber) + 1e-9) | floor),
        cache: $metrics.cache,
        coalesced_total: $metrics.coalesced_total,
        studies_total: $metrics.studies_total
    }' >"$OUT"

echo "wrote $OUT:"
cat "$OUT"
