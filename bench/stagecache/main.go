// Command stagecache benchmarks the incremental-study machinery: one cold
// scaling study populates the stage cache, then a series of warm sweeps —
// each changing only reliability-model constants — replays through it. The
// warm runs skip the timing and thermal stages entirely (only the cheap
// FIT accumulation re-runs), which is the speedup this benchmark records.
//
// Usage: stagecache [-n instructions] [-apps 4] [-out BENCH_stagecache.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	ramp "github.com/ramp-sim/ramp"
)

// warmScenario is one reliability-constants-only variation.
type warmScenario struct {
	name   string
	mutate func(*ramp.Config)
}

var warmScenarios = []warmScenario{
	{"em_activation_energy", func(c *ramp.Config) { c.RAMP.EM.ActivationEnergyEV += 0.05 }},
	{"em_current_exponent", func(c *ramp.Config) { c.RAMP.EM.N += 0.1 }},
	{"tddb_voltage_accel", func(c *ramp.Config) { c.RAMP.TDDB.A += 2 }},
	{"tc_coffin_manson", func(c *ramp.Config) { c.RAMP.TC.Q += 0.15 }},
}

type result struct {
	Instructions int64   `json:"instructions"`
	Apps         int     `json:"apps"`
	Techs        int     `json:"techs"`
	ColdS        float64 `json:"cold_s"`
	Warm         []struct {
		Name    string  `json:"name"`
		Seconds float64 `json:"seconds"`
		Speedup float64 `json:"speedup"`
	} `json:"warm"`
	MinSpeedup float64              `json:"min_speedup"`
	Cache      ramp.StageCacheStats `json:"stage_cache"`
}

func main() {
	n := flag.Int64("n", 200_000, "instructions per application")
	apps := flag.Int("apps", 4, "number of benchmark profiles")
	out := flag.String("out", "BENCH_stagecache.json", "output JSON path")
	flag.Parse()
	if err := run(*n, *apps, *out); err != nil {
		fmt.Fprintln(os.Stderr, "stagecache:", err)
		os.Exit(1)
	}
}

func run(n int64, apps int, out string) error {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = n
	profiles := ramp.Profiles()
	if apps > 0 && apps < len(profiles) {
		profiles = profiles[:apps]
	}
	techs := ramp.Technologies()

	runner, err := ramp.New(ramp.WithCache(ramp.CacheOptions{}))
	if err != nil {
		return err
	}
	ctx := context.Background()

	fmt.Printf("cold: %d apps × %d techs, %d instructions\n", len(profiles), len(techs), n)
	start := time.Now()
	cold, err := runner.Study(ctx, cfg, profiles, techs)
	if err != nil {
		return err
	}
	res := result{Instructions: n, Apps: len(profiles), Techs: len(techs),
		ColdS: time.Since(start).Seconds()}
	fmt.Printf("  %.3fs (suite-avg FIT @%s: %.0f)\n",
		res.ColdS, cold.Techs[0].Name, cold.SuiteAverageFIT(0, 0))

	res.MinSpeedup = -1
	for _, sc := range warmScenarios {
		wcfg := cfg
		sc.mutate(&wcfg)
		start = time.Now()
		if _, err := runner.Study(ctx, wcfg, profiles, techs); err != nil {
			return fmt.Errorf("warm %s: %w", sc.name, err)
		}
		secs := time.Since(start).Seconds()
		speedup := res.ColdS / secs
		fmt.Printf("warm %-22s %.3fs  (%.1fx)\n", sc.name, secs, speedup)
		res.Warm = append(res.Warm, struct {
			Name    string  `json:"name"`
			Seconds float64 `json:"seconds"`
			Speedup float64 `json:"speedup"`
		}{sc.name, secs, speedup})
		if res.MinSpeedup < 0 || speedup < res.MinSpeedup {
			res.MinSpeedup = speedup
		}
	}
	if stats, ok := runner.CacheStats(); ok {
		res.Cache = stats
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("min warm speedup %.1fx → %s\n", res.MinSpeedup, out)
	return nil
}
