// Command mc benchmarks Monte Carlo study throughput through the stage
// cache: one cold run pays the full scaling study (timing, thermal,
// reliability) before sampling, then a warm run with a different root
// seed replays the study from the cache and pays only the sampling. The
// recorded replicas/sec contrast is the value of fanning the replicas
// over cached stages instead of recomputing the grid per experiment.
//
// Usage: mc [-n instructions] [-apps 4] [-samples 1000] [-out BENCH_mc.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	ramp "github.com/ramp-sim/ramp"
)

type result struct {
	Instructions int64 `json:"instructions"`
	Apps         int   `json:"apps"`
	Techs        int   `json:"techs"`
	Samples      int   `json:"samples"`
	Cells        int   `json:"cells"`
	Replicas     int   `json:"replicas"`
	// Cold: fresh stage cache, the study itself dominates.
	ColdS            float64 `json:"cold_s"`
	ColdReplicasPerS float64 `json:"cold_replicas_per_s"`
	// Warm: same runner, different seed — the study replays from cache.
	WarmS            float64 `json:"warm_s"`
	WarmReplicasPerS float64 `json:"warm_replicas_per_s"`
	// Speedup is warm over cold throughput.
	Speedup float64              `json:"speedup"`
	Cache   ramp.StageCacheStats `json:"stage_cache"`
}

func main() {
	n := flag.Int64("n", 400_000, "instructions per application")
	apps := flag.Int("apps", 4, "number of benchmark profiles")
	samples := flag.Int("samples", 1_000, "Monte Carlo replicas per cell")
	out := flag.String("out", "BENCH_mc.json", "output JSON path")
	flag.Parse()
	if err := run(*n, *apps, *samples, *out); err != nil {
		fmt.Fprintln(os.Stderr, "mc:", err)
		os.Exit(1)
	}
}

func run(n int64, apps, samples int, out string) error {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = n
	profiles := ramp.Profiles()
	if apps > 0 && apps < len(profiles) {
		profiles = profiles[:apps]
	}
	techs := ramp.Technologies()

	runner, err := ramp.New(ramp.WithCache(ramp.CacheOptions{}))
	if err != nil {
		return err
	}
	ctx := context.Background()

	res := result{Instructions: n, Apps: len(profiles), Techs: len(techs),
		Samples: samples, Cells: len(profiles) * len(techs)}
	res.Replicas = res.Cells * samples
	mcfg := ramp.MCConfig{Samples: samples, Seed: 2004}

	fmt.Printf("cold: %d cells × %d replicas, %d instructions\n", res.Cells, samples, n)
	start := time.Now()
	cold, err := runner.MCStudy(ctx, cfg, profiles, techs, mcfg, nil)
	if err != nil {
		return err
	}
	res.ColdS = time.Since(start).Seconds()
	res.ColdReplicasPerS = float64(cold.TotalReplicas) / res.ColdS
	fmt.Printf("  %.3fs  (%.0f replicas/s)\n", res.ColdS, res.ColdReplicasPerS)

	// A different seed is a different experiment — a different MC cache key
	// on the server — but the same deterministic study underneath.
	mcfg.Seed = 2024
	start = time.Now()
	warm, err := runner.MCStudy(ctx, cfg, profiles, techs, mcfg, nil)
	if err != nil {
		return err
	}
	res.WarmS = time.Since(start).Seconds()
	res.WarmReplicasPerS = float64(warm.TotalReplicas) / res.WarmS
	res.Speedup = res.WarmReplicasPerS / res.ColdReplicasPerS
	fmt.Printf("warm: %.3fs  (%.0f replicas/s, %.1fx)\n",
		res.WarmS, res.WarmReplicasPerS, res.Speedup)

	if stats, ok := runner.CacheStats(); ok {
		res.Cache = stats
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("warm/cold throughput %.1fx → %s\n", res.Speedup, out)
	return nil
}
