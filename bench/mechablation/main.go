// Command mechablation runs the mechanism-set ablation: the same reduced
// application × technology study under the paper's four mechanisms, then
// with each registry extension (NBTI, HCI, rainflow-TC) added, then with
// all seven, and reports the suite-average SOFR-MTTF at every technology
// node plus each set's delta against the paper-4 baseline.
//
// All sets share one stage cache: the mechanism selection participates
// only in the reliability-stage key, so every study after the first
// replays the timing and thermal artifacts — the ablation costs one cold
// study plus cheap reliability re-accumulations. The report records the
// cache stats to prove it.
//
// With -check the process exits non-zero when an extended set fails to
// lower MTTF at every node (each §4.4-qualified mechanism adds a positive
// calibrated failure rate, so the delta must be strictly negative), or
// when the thermal stage was not reused across sets.
//
// Usage: mechablation [-n 300000] [-apps ammp,mesa,gzip,crafty]
//
//	[-out BENCH_mechablation.json] [-check]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	ramp "github.com/ramp-sim/ramp"
)

type nodeMTTF struct {
	Tech      string  `json:"tech"`
	FIT       float64 `json:"suite_avg_fit"`
	MTTFYears float64 `json:"sofr_mttf_years"`
	// DeltaYears and DeltaPct compare against the paper-4 baseline at the
	// same node; zero for the baseline itself.
	DeltaYears float64 `json:"delta_years_vs_paper4"`
	DeltaPct   float64 `json:"delta_pct_vs_paper4"`
}

type setResult struct {
	Set        string     `json:"set"`
	Mechanisms []string   `json:"mechanisms"`
	Seconds    float64    `json:"seconds"`
	Nodes      []nodeMTTF `json:"nodes"`
}

type result struct {
	Instructions int64       `json:"instructions"`
	Apps         []string    `json:"apps"`
	Sets         []setResult `json:"sets"`
	// ThermalHits counts thermal-stage cache hits across the whole
	// ablation; > 0 proves mechanism sets share upstream artifacts.
	ThermalHits int64 `json:"thermal_cache_hits"`
}

const hoursPerYear = 24 * 365.25

func mttfYears(fit float64) float64 {
	if fit <= 0 {
		return 0
	}
	return 1e9 / fit / hoursPerYear
}

func main() {
	n := flag.Int64("n", 300_000, "instructions per application")
	apps := flag.String("apps", "ammp,mesa,gzip,crafty", "comma-separated benchmark subset")
	out := flag.String("out", "BENCH_mechablation.json", "output JSON path")
	check := flag.Bool("check", false, "exit non-zero unless every extended set lowers MTTF at every node and the thermal stage is reused")
	flag.Parse()

	if err := run(*n, strings.Split(*apps, ","), *out, *check); err != nil {
		fmt.Fprintln(os.Stderr, "mechablation:", err)
		os.Exit(1)
	}
}

func run(n int64, appNames []string, out string, check bool) error {
	profiles := make([]ramp.Profile, 0, len(appNames))
	for _, name := range appNames {
		p, err := ramp.ProfileByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		profiles = append(profiles, p)
	}
	sets := []struct {
		name  string
		mechs []string
	}{
		{"paper4", nil},
		{"plus-nbti", []string{"em", "sm", "tc", "tddb", "nbti"}},
		{"plus-hci", []string{"em", "sm", "tc", "tddb", "hci"}},
		{"plus-tc-rainflow", []string{"em", "sm", "tc", "tddb", "tc-rainflow"}},
		{"all7", []string{"em", "sm", "tc", "tddb", "nbti", "hci", "tc-rainflow"}},
	}

	// One shared stage cache: only the reliability stage re-runs per set.
	runner, err := ramp.New(ramp.WithCache(ramp.CacheOptions{}))
	if err != nil {
		return err
	}
	techs := ramp.Technologies()
	rep := result{Instructions: n, Apps: appNames}
	var baseline []nodeMTTF
	for _, set := range sets {
		cfg := ramp.DefaultConfig()
		cfg.Instructions = n
		cfg.Mechanisms = set.mechs
		start := time.Now()
		res, err := runner.Study(context.Background(), cfg, profiles, techs)
		if err != nil {
			return fmt.Errorf("set %s: %w", set.name, err)
		}
		sr := setResult{
			Set:        set.name,
			Mechanisms: res.MechanismNames(),
			Seconds:    time.Since(start).Seconds(),
		}
		for ti, tech := range res.Techs {
			fit := res.SuiteAverageFIT(ti, 0)
			node := nodeMTTF{Tech: tech.Name, FIT: fit, MTTFYears: mttfYears(fit)}
			if baseline != nil {
				node.DeltaYears = node.MTTFYears - baseline[ti].MTTFYears
				node.DeltaPct = 100 * node.DeltaYears / baseline[ti].MTTFYears
			}
			sr.Nodes = append(sr.Nodes, node)
		}
		if baseline == nil {
			baseline = sr.Nodes
		}
		rep.Sets = append(rep.Sets, sr)
	}
	if stats, ok := runner.CacheStats(); ok {
		rep.ThermalHits = stats.Thermal.MemHits + stats.Thermal.DiskHits
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	for _, sr := range rep.Sets {
		last := sr.Nodes[len(sr.Nodes)-1]
		fmt.Printf("%-16s %d mechanisms  %s MTTF %6.1f y  (delta %+6.1f y, %+5.1f%%)  %.2fs\n",
			sr.Set, len(sr.Mechanisms), last.Tech, last.MTTFYears, last.DeltaYears, last.DeltaPct, sr.Seconds)
	}
	fmt.Printf("thermal cache hits across sets: %d\n", rep.ThermalHits)

	if check {
		for _, sr := range rep.Sets[1:] {
			for _, node := range sr.Nodes {
				if node.DeltaYears >= 0 {
					return fmt.Errorf("set %s @ %s: MTTF delta %+.3f y; an added qualified mechanism must lower MTTF",
						sr.Set, node.Tech, node.DeltaYears)
				}
			}
		}
		if rep.ThermalHits == 0 {
			return fmt.Errorf("no thermal-stage cache hits: mechanism selection leaked into upstream stage keys")
		}
	}
	return nil
}
