#!/bin/sh
# bench/mechablation.sh — mechanism-set ablation report.
#
# Runs the reduced study under the paper's four mechanisms, then with each
# registry extension (NBTI, HCI, rainflow-TC) added, then all seven, and
# writes BENCH_mechablation.json in the repo root with the suite-average
# SOFR-MTTF per technology node and each set's delta against the paper-4
# baseline. All sets share one stage cache, so the ablation costs one cold
# study plus cheap reliability re-accumulations. Pass extra flags (e.g.
# -check) to enforce the delta and cache-reuse gates.
#
# Usage: ./bench/mechablation.sh [instructions] [extra mechablation flags...]
#        (default 300000)
set -eu

N="${1:-300000}"
[ "$#" -gt 0 ] && shift
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cd "$ROOT"
go run ./bench/mechablation -n "$N" -out "$ROOT/BENCH_mechablation.json" "$@"
