// Multicore: extends the paper's single-core analysis to a dual-core die
// at 65nm and demonstrates activity migration — periodically swapping a
// hot and a cool workload between cores (Heo et al., cited by the paper
// for its leakage model) — as a lifetime lever: migration evens the
// per-core temperatures and lowers the whole-chip failure rate at zero
// performance cost.
package main

import (
	"context"
	"fmt"
	"math"
	"os"

	ramp "github.com/ramp-sim/ramp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multicore:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 2_000_000

	var profiles []ramp.Profile
	for _, name := range []string{"ammp", "crafty"} { // coolest + hottest
		prof, err := ramp.ProfileByName(name)
		if err != nil {
			return err
		}
		profiles = append(profiles, prof)
	}
	// Both timing runs execute concurrently on the bounded pool.
	traces, err := ramp.RunTimings(context.Background(), cfg, profiles, ramp.StudyOptions{})
	if err != nil {
		return err
	}
	tech, err := ramp.TechnologyByName("65nm (1.0V)")
	if err != nil {
		return err
	}
	consts := ramp.ReferenceConstants()
	const sinkK = 341 // CMP-class cooling: hold the sink at the usual point

	static := ramp.CMPConfig{Base: cfg, Cores: 2}
	migrating := ramp.CMPConfig{Base: cfg, Cores: 2, MigrateIntervals: 100}

	sres, err := ramp.EvaluateCMP(static, traces, tech, sinkK, nil)
	if err != nil {
		return err
	}
	mres, err := ramp.EvaluateCMP(migrating, traces, tech, sinkK, nil)
	if err != nil {
		return err
	}

	show := func(label string, r ramp.CMPResult) {
		fmt.Printf("%s\n", label)
		for c := range r.PerCore {
			fmt.Printf("  core %d: apps %v power %5.1f W  avg-hot %.1f K  Tmax %.1f K\n",
				c, r.PerCore[c].Apps, r.PerCore[c].AvgPowerW,
				r.PerCore[c].AvgHotTempK, r.PerCore[c].MaxTempK)
		}
		fmt.Printf("  chip: power %.1f W  Tmax %.1f K  FIT %.0f  migrations %d\n\n",
			r.AvgPowerW, r.MaxTempK, r.ChipFIT(consts), r.Migrations)
	}
	show("Static placement (ammp on core 0, crafty on core 1):", sres)
	show("Activity migration (swap every 100 µs):", mres)

	sfit, mfit := sres.ChipFIT(consts), mres.ChipFIT(consts)
	sSpread := math.Abs(sres.PerCore[1].AvgHotTempK - sres.PerCore[0].AvgHotTempK)
	mSpread := math.Abs(mres.PerCore[1].AvgHotTempK - mres.PerCore[0].AvgHotTempK)
	fmt.Printf("Activity migration narrows the core temperature spread from %.1f K to\n", sSpread)
	fmt.Printf("%.1f K and lowers whole-chip FIT by %.1f%%, with no loss of throughput.\n",
		mSpread, (1-mfit/sfit)*100)
	return nil
}
