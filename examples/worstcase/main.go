// Worstcase: quantifies the over-design cost of worst-case reliability
// qualification (paper §5.2). For each technology point it compares the
// worst-case ("max") FIT against the hottest individual application and
// the suite average, showing how the qualification gap widens with
// scaling — the paper's argument for application-aware (dynamic)
// reliability management.
package main

import (
	"fmt"
	"os"

	ramp "github.com/ramp-sim/ramp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "worstcase:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 500_000

	// A representative subset keeps the example fast while preserving the
	// hot/cool spread that drives the worst-case analysis.
	var profiles []ramp.Profile
	for _, name := range []string{"ammp", "applu", "mesa", "apsi", "vpr", "gzip", "gcc", "crafty"} {
		p, err := ramp.ProfileByName(name)
		if err != nil {
			return err
		}
		profiles = append(profiles, p)
	}
	res, err := ramp.RunStudy(cfg, profiles, ramp.Technologies())
	if err != nil {
		return err
	}

	t := &ramp.Table{
		Title: "Worst-case qualification gap by technology (§5.2)",
		Header: []string{"tech", "worst-case FIT", "highest app FIT", "avg app FIT",
			"vs highest", "vs average"},
	}
	for ti, tech := range res.Techs {
		worst := res.WorstFIT(ti).Total()
		_, hi := res.FITRange(ti)
		avg := res.SuiteAverageFIT(ti, 0)
		if err := t.AddRow(tech.Name,
			fmt.Sprintf("%.0f", worst),
			fmt.Sprintf("%.0f", hi),
			fmt.Sprintf("%.0f", avg),
			fmt.Sprintf("+%.0f%%", (worst/hi-1)*100),
			fmt.Sprintf("+%.0f%%", (worst/avg-1)*100)); err != nil {
			return err
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nA processor qualified for worst-case conditions is over-designed by the")
	fmt.Println("'vs average' margin for the average application — and the margin grows")
	fmt.Println("with scaling, motivating application-aware reliability qualification.")
	return nil
}
