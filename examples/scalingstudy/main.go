// Scalingstudy: the paper's central experiment end-to-end. Runs the full
// 16-benchmark suite across all five Table 4 technology points, prints the
// Figure 3/4 data series and the headline paper-vs-measured comparison.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"

	ramp "github.com/ramp-sim/ramp"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "scalingstudy:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 1_000_000

	fmt.Println("Running the scaling study (16 benchmarks x 5 technology points)...")
	// The study runs as a pipelined task graph on a bounded worker pool;
	// the progress callback ticks as each (profile × technology) task
	// lands, and Ctrl-C cancels the remaining work promptly. The stage
	// cache makes an immediate re-run (e.g. after tweaking a reliability
	// constant) nearly instant.
	runner, err := ramp.New(
		ramp.WithProgress(func(p ramp.StudyProgress) {
			fmt.Fprintf(os.Stderr, "\r%3d/%3d tasks", p.Done, p.Total)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}),
		ramp.WithCache(ramp.CacheOptions{}),
	)
	if err != nil {
		return err
	}
	res, err := runner.Study(ctx, cfg, ramp.Profiles(), ramp.Technologies())
	if err != nil {
		return err
	}

	for _, suite := range []ramp.Suite{ramp.SuiteFP, ramp.SuiteInt} {
		fig3, err := ramp.Figure3(res, suite)
		if err != nil {
			return err
		}
		if err := fig3.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		fig4, err := ramp.Figure4(res, suite)
		if err != nil {
			return err
		}
		if err := fig4.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	h, err := ramp.ComputeHeadline(res)
	if err != nil {
		return err
	}
	return h.Render().Render(os.Stdout)
}
