// Scalingstudy: the paper's central experiment end-to-end. Runs the full
// 16-benchmark suite across all five Table 4 technology points, prints the
// Figure 3/4 data series and the headline paper-vs-measured comparison.
package main

import (
	"fmt"
	"os"

	ramp "github.com/ramp-sim/ramp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scalingstudy:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 1_000_000

	fmt.Println("Running the scaling study (16 benchmarks x 5 technology points)...")
	res, err := ramp.RunStudy(cfg, ramp.Profiles(), ramp.Technologies())
	if err != nil {
		return err
	}

	for _, suite := range []ramp.Suite{ramp.SuiteFP, ramp.SuiteInt} {
		fig3, err := ramp.Figure3(res, suite)
		if err != nil {
			return err
		}
		if err := fig3.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		fig4, err := ramp.Figure4(res, suite)
		if err != nil {
			return err
		}
		if err := fig4.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	h, err := ramp.ComputeHeadline(res)
	if err != nil {
		return err
	}
	return h.Render().Render(os.Stdout)
}
