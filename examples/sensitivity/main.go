// Sensitivity: quantifies the paper's Table 1 — how strongly each failure
// mechanism responds to temperature, voltage, and feature size — and then
// sweeps the two calibrated scaling constants (EM geometry exponent, TDDB
// oxide-thinning decade) to show how the 65nm failure-rate projection
// depends on them. This is the ablation story of EXPERIMENTS.md as a
// runnable program.
package main

import (
	"fmt"
	"os"

	ramp "github.com/ramp-sim/ramp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sensitivity:", err)
		os.Exit(1)
	}
}

func run() error {
	params := ramp.DefaultConfig().RAMP

	// Part 1: the quantified Table 1 at a typical operating temperature.
	t1, err := ramp.Table1Quantified(params, 355)
	if err != nil {
		return err
	}
	if err := t1.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	// Part 2: scaling-constant sweeps on a small suite.
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 200_000
	var profiles []ramp.Profile
	for _, name := range []string{"ammp", "gzip", "crafty"} {
		p, err := ramp.ProfileByName(name)
		if err != nil {
			return err
		}
		profiles = append(profiles, p)
	}
	techs := []ramp.Technology{ramp.BaseTechnology()}
	t65, err := ramp.TechnologyByName("65nm (1.0V)")
	if err != nil {
		return err
	}
	techs = append(techs, t65)

	sweep := &ramp.Table{
		Title:  "Scaling-constant sensitivity: 65nm(1.0V)/180nm suite-average FIT ratio",
		Header: []string{"variant", "EM x", "TDDB x", "total x"},
	}
	variants := []struct {
		label string
		tune  func(*ramp.Config)
	}{
		{"defaults (calibrated)", func(c *ramp.Config) {}},
		{"EM geometry off", func(c *ramp.Config) { c.RAMP.EM.GeomExponent = 0 }},
		{"EM geometry paper-literal (κ²)", func(c *ramp.Config) { c.RAMP.EM.GeomExponent = 2.0 }},
		{"TDDB tox factor off", func(c *ramp.Config) { c.RAMP.TDDB.ToxDecadeNm = 1e9 }},
		{"TDDB voltage benefit off", func(c *ramp.Config) { c.RAMP.TDDB.VoltExponent = 0 }},
	}
	for _, v := range variants {
		vcfg := cfg
		v.tune(&vcfg)
		res, err := ramp.RunStudy(vcfg, profiles, techs)
		if err != nil {
			return err
		}
		m0 := res.SuiteAverageMech(0, 0)
		m1 := res.SuiteAverageMech(1, 0)
		if err := sweep.AddRow(v.label,
			fmt.Sprintf("%.2f", m1[ramp.EM]/m0[ramp.EM]),
			fmt.Sprintf("%.2f", m1[ramp.TDDB]/m0[ramp.TDDB]),
			fmt.Sprintf("%.2f", res.SuiteAverageFIT(1, 0)/res.SuiteAverageFIT(0, 0))); err != nil {
			return err
		}
	}
	return sweep.Render(os.Stdout)
}
