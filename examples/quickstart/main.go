// Quickstart: evaluate one benchmark on the base 180nm machine and print
// its failure-rate breakdown, then remap it to 65nm and show the scaling
// penalty. Demonstrates the Runner facade's two-step path (Runner.Timing +
// EvaluateTech) on a single application without running the full study.
package main

import (
	"context"
	"fmt"
	"os"

	ramp "github.com/ramp-sim/ramp"
)

func main() {
	if err := run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 500_000

	runner, err := ramp.New()
	if err != nil {
		return err
	}
	prof, err := ramp.ProfileByName("gzip")
	if err != nil {
		return err
	}
	fmt.Printf("Timing-simulating %s (%v), %d instructions...\n",
		prof.Name, prof.Suite, cfg.Instructions)
	tr, err := runner.Timing(ctx, cfg, prof)
	if err != nil {
		return err
	}
	fmt.Printf("  IPC = %.2f (paper Table 3: %.2f)\n\n", tr.Timing.IPC(), prof.TargetIPC)

	base, err := ramp.EvaluateTech(cfg, tr, ramp.BaseTechnology(), 0, 1)
	if err != nil {
		return err
	}
	tech65, err := ramp.TechnologyByName("65nm (1.0V)")
	if err != nil {
		return err
	}
	// Hold the heat-sink temperature at its 180nm value (paper §4.3).
	run65, err := ramp.EvaluateTech(cfg, tr, tech65, base.SinkTempK, 1)
	if err != nil {
		return err
	}

	// The reference qualification (suite-average 1000 FIT per mechanism at
	// 180nm) converts raw model output into absolute FIT values.
	consts := ramp.ReferenceConstants()
	for _, r := range []ramp.AppRun{base, run65} {
		fit := r.RawFIT.Calibrated(consts)
		mech := fit.ByMechanism()
		fmt.Printf("%s @ %s\n", r.App, r.Tech.Name)
		fmt.Printf("  total power    %.1f W (dynamic %.1f, leakage %.1f)\n",
			r.AvgTotalW, r.AvgDynamicW, r.AvgLeakageW)
		fmt.Printf("  hottest block  %.1f K   heat sink %.1f K\n",
			r.MaxStructTempK, r.SinkTempK)
		fmt.Printf("  FIT            %.0f  [EM %.0f  SM %.0f  TDDB %.0f  TC %.0f]\n",
			fit.Total(), mech[ramp.EM], mech[ramp.SM], mech[ramp.TDDB], mech[ramp.TC])
		fmt.Printf("  MTTF           %.1f years\n\n", fit.MTTFYears())
	}
	r65 := run65.RawFIT.Calibrated(consts).Total()
	r180 := base.RawFIT.Calibrated(consts).Total()
	fmt.Printf("total-FIT ratio 65nm/180nm = %.2fx\n", r65/r180)
	return nil
}
