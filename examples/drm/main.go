// DRM: a dynamic-reliability-management what-if at 65nm, the
// application-aware approach the paper's conclusions motivate (§5.2,
// citing Srinivasan et al. [15]). Reliability is qualified for the
// *expected* workload rather than the worst case; cool applications can
// then run at a higher voltage/frequency operating point while staying
// inside the same FIT budget.
//
// The example sweeps the 65nm supply voltage (with frequency tracking
// voltage) for a cool and a hot benchmark and reports the highest
// operating point each can sustain within a 4x-base FIT budget.
package main

import (
	"fmt"
	"os"

	ramp "github.com/ramp-sim/ramp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drm:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 400_000

	// Qualification study: the suite at 180nm and 65nm (1.0V) fixes the
	// proportionality constants and the FIT budget.
	var profiles []ramp.Profile
	for _, name := range []string{"ammp", "vpr", "mesa", "crafty"} {
		p, err := ramp.ProfileByName(name)
		if err != nil {
			return err
		}
		profiles = append(profiles, p)
	}
	techs := ramp.Technologies()
	res, err := ramp.RunStudy(cfg, profiles, techs)
	if err != nil {
		return err
	}
	// Budget: the suite-average FIT at the 65nm (1.0V) design point.
	i65 := len(techs) - 1
	budget := res.SuiteAverageFIT(i65, 0)
	fmt.Printf("FIT budget (suite average at %s): %.0f\n\n", techs[i65].Name, budget)

	base65, err := ramp.TechnologyByName("65nm (1.0V)")
	if err != nil {
		return err
	}
	for _, name := range []string{"ammp", "crafty"} {
		prof, err := ramp.ProfileByName(name)
		if err != nil {
			return err
		}
		tr, err := ramp.RunTiming(cfg, prof)
		if err != nil {
			return err
		}
		// Sink temperature target from the app's base run in the study.
		var sinkK, appScale float64
		for _, a := range res.AppsAt(0) {
			if a.App == name {
				sinkK, appScale = a.SinkTempK, a.AppPowerScale
			}
		}
		fmt.Printf("%s: voltage/frequency sweep at 65nm\n", name)
		best := -1.0
		for _, vdd := range []float64{0.90, 0.95, 1.00, 1.05, 1.10} {
			tech := base65
			tech.Name = fmt.Sprintf("65nm (%.2fV)", vdd)
			tech.VddV = vdd
			// Frequency tracks voltage around the 2.0GHz/1.0V point.
			tech.FreqGHz = 2.0 * vdd / 1.0
			run, err := ramp.EvaluateTech(cfg, tr, tech, sinkK, appScale)
			if err != nil {
				return err
			}
			fit := 0.0
			for m, k := range res.Constants.K {
				fit += run.RawFIT.ByMechanism()[m] * k
			}
			ok := fit <= budget
			mark := " over budget"
			if ok {
				mark = " OK"
				if tech.FreqGHz > best {
					best = tech.FreqGHz
				}
			}
			fmt.Printf("  %.2f V / %.2f GHz: FIT %6.0f  Tmax %.1f K %s\n",
				vdd, tech.FreqGHz, fit, run.MaxStructTempK, mark)
		}
		if best > 0 {
			fmt.Printf("  -> max sustainable frequency within budget: %.2f GHz\n\n", best)
		} else {
			fmt.Printf("  -> no swept operating point fits the budget\n\n")
		}
	}
	fmt.Println("Cool applications sustain a higher operating point than hot ones at")
	fmt.Println("the same FIT budget - the opportunity dynamic reliability management exploits.")
	fmt.Println()
	return runManaged(cfg, budget, res)
}

// runManaged demonstrates the closed-loop controller: the DVS ladder is
// walked at runtime so each application's cumulative FIT tracks the
// budget, instead of choosing one static point in advance.
func runManaged(cfg ramp.Config, budget float64, res *ramp.StudyResult) error {
	tech65, err := ramp.TechnologyByName("65nm (1.0V)")
	if err != nil {
		return err
	}
	pol := ramp.DRMPolicy{
		Ladder:         ramp.DefaultLadder(tech65),
		BudgetFIT:      budget,
		EpochIntervals: 50,
		Headroom:       0.9,
		StartLevel:     2,
	}
	fmt.Println("Closed-loop DRM at 65nm (1.0V), same FIT budget:")
	for _, name := range []string{"ammp", "crafty"} {
		prof, err := ramp.ProfileByName(name)
		if err != nil {
			return err
		}
		tr, err := ramp.RunTiming(cfg, prof)
		if err != nil {
			return err
		}
		var sinkK, appScale float64
		for _, a := range res.AppsAt(0) {
			if a.App == name {
				sinkK, appScale = a.SinkTempK, a.AppPowerScale
			}
		}
		mr, err := ramp.RunDRM(cfg, tr, tech65, res.Constants, pol, sinkK, appScale)
		if err != nil {
			return err
		}
		met := "met"
		if !mr.MetBudget {
			met = "MISSED"
		}
		fmt.Printf("  %-8s avg freq %.2f GHz  avg FIT %6.0f (budget %s)  switches %d  Tmax %.1f K\n",
			name, mr.AvgFreqGHz, mr.AvgFIT, met, mr.Switches, mr.MaxStructTempK)
	}
	return nil
}
