// Lifetime: quantifies the error of the SOFR constant-failure-rate
// assumption the paper flags in §2 ("This assumption is clearly
// inaccurate — a typical wear-out failure mechanism will have a low
// failure rate at the beginning of the component's lifetime"). The same
// calibrated FIT breakdown is pushed through a Monte Carlo series-system
// lifetime simulation twice: once with exponential (SOFR) marginals and
// once with wear-out distributions (lognormal EM, Weibull SM/TDDB/TC),
// at 180nm and at 65nm (1.0V).
package main

import (
	"fmt"
	"os"

	ramp "github.com/ramp-sim/ramp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lifetime:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 400_000

	prof, err := ramp.ProfileByName("crafty") // the hottest benchmark
	if err != nil {
		return err
	}
	tr, err := ramp.RunTiming(cfg, prof)
	if err != nil {
		return err
	}
	consts := ramp.ReferenceConstants()

	base, err := ramp.EvaluateTech(cfg, tr, ramp.BaseTechnology(), 0, 1)
	if err != nil {
		return err
	}
	tech65, err := ramp.TechnologyByName("65nm (1.0V)")
	if err != nil {
		return err
	}
	run65, err := ramp.EvaluateTech(cfg, tr, tech65, base.SinkTempK, 1)
	if err != nil {
		return err
	}

	const samples = 50_000
	t := &ramp.Table{
		Title: fmt.Sprintf("Processor lifetime for %s (%d Monte Carlo trials)", prof.Name, samples),
		Header: []string{"tech", "model", "SOFR MTTF (y)", "MC MTTF (y)",
			"median (y)", "5th pct (y)", "95th pct (y)"},
	}
	for _, point := range []ramp.AppRun{base, run65} {
		fit := point.RawFIT.Calibrated(consts)
		for _, m := range []struct {
			name  string
			model ramp.LifetimeModel
		}{
			{"exponential (SOFR)", ramp.SOFRLifetimes()},
			{"wear-out", ramp.WearOutLifetimes()},
		} {
			est, err := ramp.MonteCarloLifetime(fit, m.model, samples, 2004)
			if err != nil {
				return err
			}
			if err := t.AddRow(point.Tech.Name, m.name,
				fmt.Sprintf("%.1f", est.SOFRYears),
				fmt.Sprintf("%.1f", est.MTTFYears),
				fmt.Sprintf("%.1f", est.MedianYears),
				fmt.Sprintf("%.1f", est.P5Years),
				fmt.Sprintf("%.1f", est.P95Years)); err != nil {
				return err
			}
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nWith exponential marginals the Monte Carlo mean reproduces the SOFR")
	fmt.Println("analytic MTTF. Under wear-out distributions the expected lifetime is")
	fmt.Println("longer and far more concentrated: SOFR's 5th percentile is ~5% of the")
	fmt.Println("mean, while wear-out parts rarely fail early — the early-life optimism")
	fmt.Println("and late-life pessimism the paper attributes to the SOFR assumption.")
	return nil
}
