// Lifetime: quantifies the error of the SOFR constant-failure-rate
// assumption the paper flags in §2 ("This assumption is clearly
// inaccurate — a typical wear-out failure mechanism will have a low
// failure rate at the beginning of the component's lifetime"). One
// Monte Carlo study per lifetime model samples the (crafty × {180nm,
// 65nm}) grid — exponential (SOFR) marginals versus wear-out
// distributions (lognormal EM, Weibull SM/TDDB/TC) — with percentile
// confidence intervals from the shared statistical estimators.
package main

import (
	"context"
	"fmt"
	"os"

	ramp "github.com/ramp-sim/ramp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lifetime:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := ramp.DefaultConfig()
	cfg.Instructions = 400_000

	prof, err := ramp.ProfileByName("crafty") // the hottest benchmark
	if err != nil {
		return err
	}
	tech65, err := ramp.TechnologyByName("65nm (1.0V)")
	if err != nil {
		return err
	}
	techs := []ramp.Technology{ramp.BaseTechnology(), tech65}

	// One runner with a stage cache: the second model's study replays the
	// first's timing and thermal artifacts, so only the cheap reliability
	// accumulation and the sampling differ between the two passes.
	runner, err := ramp.New(ramp.WithCache(ramp.CacheOptions{}))
	if err != nil {
		return err
	}

	const samples = 50_000
	t := &ramp.Table{
		Title: fmt.Sprintf("Processor lifetime for %s (%d Monte Carlo trials)", prof.Name, samples),
		Header: []string{"tech", "model", "SOFR MTTF (y)", "MC MTTF (y)",
			"median (y)", "5th pct (y)", "95th pct (y)"},
	}
	for _, model := range []struct{ name, id string }{
		{"exponential (SOFR)", "sofr"},
		{"wear-out", "wearout"},
	} {
		res, err := runner.MCStudy(context.Background(), cfg,
			[]ramp.Profile{prof}, techs, ramp.MCConfig{
				Samples:     samples,
				Model:       model.id,
				Seed:        2004,
				Percentiles: []float64{5, 50, 95},
			}, nil)
		if err != nil {
			return err
		}
		for _, cell := range res.Cells {
			p5, p50, p95 := cell.Percentiles[0], cell.Percentiles[1], cell.Percentiles[2]
			if err := t.AddRow(cell.Tech, model.name,
				fmt.Sprintf("%.1f", cell.SOFRYears),
				fmt.Sprintf("%.1f", cell.MeanYears),
				fmt.Sprintf("%.1f", p50.Years),
				fmt.Sprintf("%.1f", p5.Years),
				fmt.Sprintf("%.1f", p95.Years)); err != nil {
				return err
			}
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nWith exponential marginals the Monte Carlo mean reproduces the SOFR")
	fmt.Println("analytic MTTF. Under wear-out distributions the expected lifetime is")
	fmt.Println("longer and far more concentrated: SOFR's 5th percentile is ~5% of the")
	fmt.Println("mean, while wear-out parts rarely fail early — the early-life optimism")
	fmt.Println("and late-life pessimism the paper attributes to the SOFR assumption.")
	return nil
}
