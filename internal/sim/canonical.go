package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/power"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/thermal"
	"github.com/ramp-sim/ramp/internal/workload"
)

// CanonicalJSON encodes v as canonical JSON: object keys sorted
// lexicographically at every nesting level, no insignificant whitespace,
// numbers preserved exactly as encoding/json first rendered them. Two
// values that marshal to the same JSON object — regardless of struct field
// declaration order, or whether one side is a struct and the other a
// decoded map — produce byte-identical output, which makes the encoding
// safe to hash as a cache key.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("sim: canonical: %w", err)
	}
	// Round-trip through the generic form: maps re-marshal with sorted
	// keys, and json.Number keeps each numeric literal's original text so
	// no float precision is disturbed along the way.
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var generic any
	if err := dec.Decode(&generic); err != nil {
		return nil, fmt.Errorf("sim: canonical: %w", err)
	}
	out, err := json.Marshal(generic)
	if err != nil {
		return nil, fmt.Errorf("sim: canonical: %w", err)
	}
	return out, nil
}

// studyRequest is the hashed identity of a study: everything that can
// change its numbers. Serving layers key result caches on StudyKey, so any
// field influencing StudyResult must reach the hash through here.
type studyRequest struct {
	Config   Config               `json:"config"`
	Profiles []workload.Profile   `json:"profiles"`
	Techs    []scaling.Technology `json:"techs"`
}

// StudyKey returns a stable content-addressed key for a study request: the
// hex SHA-256 of the canonical JSON encoding of (Config, profile set,
// technology nodes). Identical inputs always map to the same key across
// processes and releases that keep the field set unchanged; any change to
// an input — an instruction budget, a profile parameter, a technology
// point — changes the key. The mechanism list is canonicalised first, so
// every spelling of one set (any order, any alias, the default four
// written out or omitted) hashes identically.
func StudyKey(cfg Config, profiles []workload.Profile, techs []scaling.Technology) (string, error) {
	cfg, err := canonicalizeConfigMechanisms(cfg)
	if err != nil {
		return "", err
	}
	return hashKey(studyRequest{Config: cfg, Profiles: profiles, Techs: techs})
}

// canonicalizeConfigMechanisms normalises Config.Mechanisms for hashing:
// canonical names, sorted and de-duplicated, nil for the default set.
// Every key derivation that hashes a Config (or its mechanism list) goes
// through this, which is what makes keys order- and alias-insensitive.
func canonicalizeConfigMechanisms(cfg Config) (Config, error) {
	canon, err := core.CanonicalMechanismNames(cfg.Mechanisms)
	if err != nil {
		return Config{}, fmt.Errorf("sim: %w", err)
	}
	cfg.Mechanisms = canon
	return cfg, nil
}

// hashKey is the shared canonical-JSON → hex SHA-256 key derivation.
func hashKey(v any) (string, error) {
	b, err := CanonicalJSON(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Per-stage key derivation. Where StudyKey hashes the entire request —
// so any change invalidates everything — each stage key hashes only the
// inputs that stage actually reads. That is the contract the stage cache
// relies on: a reliability-constant change must leave the timing and
// thermal keys untouched (their artifacts are reusable), while a trace
// length or machine change must invalidate all three.

// timingStageInputs are the fields the timing stage reads: the simulated
// machine, the trace length, and the workload itself. Technology, power,
// thermal, and reliability parameters deliberately do not appear — the
// paper keeps the microarchitecture (and hence the activity behaviour)
// fixed across technology points (§1.3).
// The optional Fidelity block appears only when the mode changes what the
// timing stage simulates (phase-mode systematic sampling); exact and
// adaptive omit it — they run the identical full simulation and share the
// artifact, and omission keeps exact keys byte-identical to pre-fidelity
// releases.
type timingStageInputs struct {
	Machine      microarch.Config      `json:"machine"`
	Instructions int64                 `json:"instructions"`
	Profile      workload.Profile      `json:"profile"`
	Fidelity     *fidelityTimingInputs `json:"fidelity,omitempty"`
}

// TimingKey returns the content-addressed key of the timing stage for one
// profile.
func TimingKey(cfg Config, prof workload.Profile) (string, error) {
	return hashKey(timingStageInputs{
		Machine:      cfg.Machine,
		Instructions: cfg.Instructions,
		Profile:      prof,
		Fidelity:     timingFidelityKeyInputs(cfg.Fidelity),
	})
}

// thermalStageInputs are the fields the power+thermal stage reads on top
// of the timing artifact: the power and thermal constants, the calibration
// policy, the evaluated technology point, and the base (anchor) technology
// — the latter because a scaled cell's sink-temperature target and
// app-power scale are functions of the base cell, which these same inputs
// determine. Config.RAMP deliberately does not appear.
// The optional Fidelity block appears for adaptive and phase modes, which
// replace the per-sample transient with phase-compressed error-bounded
// integration; exact omits it so pre-fidelity keys stay valid.
type thermalStageInputs struct {
	TimingKey string                 `json:"timing_key"`
	Power     power.Params           `json:"power"`
	Thermal   thermal.Params         `json:"thermal"`
	Calibrate bool                   `json:"calibrate_app_power"`
	Base      scaling.Technology     `json:"base"`
	Tech      scaling.Technology     `json:"tech"`
	Fidelity  *fidelityThermalInputs `json:"fidelity,omitempty"`
}

// ThermalKey returns the content-addressed key of the power+thermal stage
// for one (profile × technology) cell.
func ThermalKey(cfg Config, prof workload.Profile, tech scaling.Technology) (string, error) {
	tk, err := TimingKey(cfg, prof)
	if err != nil {
		return "", err
	}
	return hashKey(thermalStageInputs{
		TimingKey: tk,
		Power:     cfg.Power,
		Thermal:   cfg.Thermal,
		Calibrate: cfg.CalibrateAppPower,
		Base:      scaling.Base(),
		Tech:      tech,
		Fidelity:  thermalFidelityKeyInputs(cfg.Fidelity),
	})
}

// fitStageInputs are the fields the reliability stage reads on top of the
// thermal artifact: the RAMP failure-model constants, the mechanism
// selection, and the thermal-trace recording policy (it changes the
// assembled AppRun). QualFITPerMechanism does not appear — qualification
// scales raw FIT at study assembly and never reaches the per-cell
// artifacts. Mechanisms is the canonicalised list, omitted for the
// default set so pre-registry FIT keys stay valid; it appears here and
// not in the timing/thermal inputs because only the reliability stage
// reads it — thermal artifacts are shared across mechanism selections,
// which is what makes mechanism ablations nearly free on a warm cache.
type fitStageInputs struct {
	ThermalKey  string      `json:"thermal_key"`
	RAMP        core.Params `json:"ramp"`
	RecordTrace bool        `json:"record_thermal_trace"`
	Mechanisms  []string    `json:"mechanisms,omitempty"`
}

// fitInputsFor assembles the reliability-stage key inputs for a config,
// canonicalising the mechanism list. Shared by FITKey and cellKeys so the
// two derivations cannot drift.
func fitInputsFor(cfg Config, thermalKey string) (fitStageInputs, error) {
	canon, err := core.CanonicalMechanismNames(cfg.Mechanisms)
	if err != nil {
		return fitStageInputs{}, fmt.Errorf("sim: %w", err)
	}
	return fitStageInputs{
		ThermalKey:  thermalKey,
		RAMP:        cfg.RAMP,
		RecordTrace: cfg.RecordThermalTrace,
		Mechanisms:  canon,
	}, nil
}

// FITKey returns the content-addressed key of the reliability stage for
// one (profile × technology) cell.
func FITKey(cfg Config, prof workload.Profile, tech scaling.Technology) (string, error) {
	tk, err := ThermalKey(cfg, prof, tech)
	if err != nil {
		return "", err
	}
	in, err := fitInputsFor(cfg, tk)
	if err != nil {
		return "", err
	}
	return hashKey(in)
}
