package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/workload"
)

// CanonicalJSON encodes v as canonical JSON: object keys sorted
// lexicographically at every nesting level, no insignificant whitespace,
// numbers preserved exactly as encoding/json first rendered them. Two
// values that marshal to the same JSON object — regardless of struct field
// declaration order, or whether one side is a struct and the other a
// decoded map — produce byte-identical output, which makes the encoding
// safe to hash as a cache key.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("sim: canonical: %w", err)
	}
	// Round-trip through the generic form: maps re-marshal with sorted
	// keys, and json.Number keeps each numeric literal's original text so
	// no float precision is disturbed along the way.
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var generic any
	if err := dec.Decode(&generic); err != nil {
		return nil, fmt.Errorf("sim: canonical: %w", err)
	}
	out, err := json.Marshal(generic)
	if err != nil {
		return nil, fmt.Errorf("sim: canonical: %w", err)
	}
	return out, nil
}

// studyRequest is the hashed identity of a study: everything that can
// change its numbers. Serving layers key result caches on StudyKey, so any
// field influencing StudyResult must reach the hash through here.
type studyRequest struct {
	Config   Config               `json:"config"`
	Profiles []workload.Profile   `json:"profiles"`
	Techs    []scaling.Technology `json:"techs"`
}

// StudyKey returns a stable content-addressed key for a study request: the
// hex SHA-256 of the canonical JSON encoding of (Config, profile set,
// technology nodes). Identical inputs always map to the same key across
// processes and releases that keep the field set unchanged; any change to
// an input — an instruction budget, a profile parameter, a technology
// point — changes the key.
func StudyKey(cfg Config, profiles []workload.Profile, techs []scaling.Technology) (string, error) {
	b, err := CanonicalJSON(studyRequest{Config: cfg, Profiles: profiles, Techs: techs})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
