package sim

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sched"
	"github.com/ramp-sim/ramp/internal/workload"
)

// TestStudyParallelismDeterminism requires that the same study produces a
// byte-identical StudyResult at parallelism 1 and parallelism 8: the
// scheduler may reorder work but never the numbers.
func TestStudyParallelismDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	cfg := testConfig()
	cfg.Instructions = 100_000
	profiles := testProfiles(t)
	techs := scaling.Generations()[:3]

	runAt := func(parallelism int) *StudyResult {
		t.Helper()
		res, err := RunStudyContext(context.Background(), cfg, profiles, techs,
			StudyOptions{Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := runAt(1)
	parallel := runAt(8)

	if !reflect.DeepEqual(serial, parallel) {
		t.Error("StudyResult differs between parallelism 1 and 8")
	}
	b1, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b8) {
		t.Error("serialized StudyResult not byte-identical across parallelism levels")
	}
}

// TestStudyCancellation cancels a study mid-flight and requires a prompt
// context.Canceled return with no goroutines left behind.
func TestStudyCancellation(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 50_000_000 // far more work than the test allows to finish
	profiles := testProfiles(t)
	techs := scaling.Generations()[:2]

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunStudyContext(ctx, cfg, profiles, techs, StudyOptions{Parallelism: 4})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the timing stage get going
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("study did not return promptly after cancellation")
	}

	// Workers unwind asynchronously after Run returns its error; poll
	// briefly instead of asserting an instantaneous count.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after cancellation: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStudyProgressEvents checks that a full study reports exactly one
// completion event per task with consistent totals.
func TestStudyProgressEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	cfg := testConfig()
	cfg.Instructions = 100_000
	profiles := testProfiles(t)[:2]
	techs := scaling.Generations()[:2]

	var mu sync.Mutex
	byStage := map[string]int{}
	events := 0
	_, err := RunStudyContext(context.Background(), cfg, profiles, techs, StudyOptions{
		Parallelism: 2,
		OnProgress: func(p sched.Progress) {
			mu.Lock()
			defer mu.Unlock()
			events++
			byStage[p.Stage]++
			if p.Err != nil {
				t.Errorf("unexpected task failure %s: %v", p.Task, p.Err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, nt := len(profiles), len(techs)
	// timing + base per profile, scaled per (profile × non-base tech),
	// one qualify, one worst per tech.
	want := map[string]int{
		StageTiming:  n,
		StageBase:    n,
		StageScaled:  n * (nt - 1),
		StageQualify: 1,
		StageWorst:   nt,
	}
	total := 0
	for stage, w := range want {
		if byStage[stage] != w {
			t.Errorf("stage %s reported %d events, want %d", stage, byStage[stage], w)
		}
		total += w
	}
	if events != total {
		t.Errorf("got %d progress events, want %d", events, total)
	}
}

// TestEvaluateTechSharedTraceConcurrent stresses concurrent EvaluateTech
// calls over one shared ActivityTrace. The trace is read-only after timing,
// so concurrent evaluations must race-cleanly produce identical results.
// Kept fast enough for -short so `go test -race -short ./...` exercises it.
func TestEvaluateTechSharedTraceConcurrent(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 50_000
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunTiming(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	tech := scaling.Base()

	const workers = 8
	runs := make([]AppRun, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runs[w], errs[w] = EvaluateTech(cfg, tr, tech, 0, 1.0)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !reflect.DeepEqual(runs[w], runs[0]) {
			t.Fatalf("worker %d produced a different AppRun than worker 0", w)
		}
	}
}

// TestRunTimings checks the bounded-pool timing helper returns traces in
// input order, identical to sequential RunTiming.
func TestRunTimings(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 50_000
	profiles := testProfiles(t)[:2]

	got, err := RunTimings(context.Background(), cfg, profiles, StudyOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(profiles) {
		t.Fatalf("got %d traces, want %d", len(got), len(profiles))
	}
	for i, p := range profiles {
		want, err := RunTiming(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("trace %d (%s) differs from sequential RunTiming", i, p.Name)
		}
	}
}

// TestRunTimingCancelled checks that cancellation reaches the innermost
// simulation loop through the trace stream wrapper.
func TestRunTimingCancelled(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 100_000_000
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunTimingContext(ctx, cfg, prof)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timing run did not stop after cancellation")
	}
}
