package sim

import (
	"context"
	"math"
	"reflect"
	"sort"
	"testing"
)

// FuzzMCConfigValidate perturbs the MC request knobs: sample count,
// percentile list, CI level, model name, seed, and batch size.
// Normalize+Validate must never panic and must be deterministic; an
// accepted configuration must survive a small Monte Carlo study and come
// out byte-identical at two parallelism levels — errors allowed, panics
// and nondeterminism not.
func FuzzMCConfigValidate(f *testing.F) {
	f.Add(10000, "wearout", 0.95, int64(2004), 4096, 5.0, 50.0, 95.0)
	f.Add(0, "", 0.0, int64(0), 0, 0.0, 0.0, 0.0)
	f.Add(100, "sofr", 0.99, int64(-1), 7, 50.0, 50.0, 50.0)
	f.Add(512, "exponential", 0.5, int64(42), 1, 0.1, 99.9, 12.5)
	// Hostile numerics: NaN/Inf percentiles and CI levels, out-of-range
	// samples, unknown models, negative batches.
	f.Add(-5, "gamma", math.NaN(), int64(1), -3, math.Inf(1), -2.0, 100.0)
	f.Add(MaxMCSamples+1, "wear-out", 1.0, int64(9), 1024, 0.0, 101.0, math.Inf(-1))
	f.Add(1, "WEAROUT", 1e-9, int64(7), 2, 1e-9, 99.999999, 33.3)

	// deNaN replaces NaN floats with a comparable sentinel so DeepEqual can
	// check determinism on configs carrying hostile numerics.
	deNaN := func(c MCConfig) MCConfig {
		if math.IsNaN(c.CILevel) {
			c.CILevel = -12345
		}
		ps := append([]float64(nil), c.Percentiles...)
		for i, p := range ps {
			if math.IsNaN(p) {
				ps[i] = -12345
			}
		}
		c.Percentiles = ps
		return c
	}

	res := mcStubStudy(1, 1)
	f.Fuzz(func(t *testing.T, samples int, model string, ci float64, seed int64,
		batch int, p1, p2, p3 float64) {
		cfg := MCConfig{
			Samples:     samples,
			Model:       model,
			CILevel:     ci,
			Seed:        seed,
			BatchSize:   batch,
			Percentiles: []float64{p1, p2, p3},
		}
		norm := cfg.Normalized()
		// NaN != NaN under DeepEqual, so compare with NaNs canonicalised.
		if !reflect.DeepEqual(deNaN(norm), deNaN(cfg.Normalized())) {
			t.Fatal("Normalized not deterministic")
		}
		if !reflect.DeepEqual(deNaN(norm), deNaN(norm.Normalized())) {
			t.Fatal("Normalized not idempotent")
		}
		err := norm.Validate()
		if (err == nil) != (norm.Validate() == nil) {
			t.Fatal("Validate not deterministic")
		}
		if err != nil {
			return
		}
		if !sort.Float64sAreSorted(norm.Percentiles) {
			t.Fatalf("accepted percentiles not sorted: %v", norm.Percentiles)
		}
		// Accepted configs that fit a fuzz iteration must run and be
		// parallelism-invariant; larger ones are legal, just slow.
		if norm.Samples > 2048 {
			return
		}
		a, err := MonteCarloStudy(context.Background(), res, norm, MCOptions{Parallelism: 1})
		if err != nil {
			t.Fatalf("accepted config failed to run: %v", err)
		}
		b, err := MonteCarloStudy(context.Background(), res, norm, MCOptions{Parallelism: 8})
		if err != nil {
			t.Fatalf("second run failed: %v", err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("parallelism changed the result")
		}
	})
}
