package sim

import (
	"fmt"

	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/workload"
)

// Batch planning: content-addressing and deduplication for lists of
// study configurations, shared by the batch API (internal/server) and
// the Runner facade. Planning is pure — no simulation work happens here —
// so a serving layer can admit, dedup, and key a whole batch before any
// compute is scheduled.

// Job kinds a batch item can carry.
const (
	// JobStudy is a deterministic scaling study (the /v1/study workload).
	JobStudy = "study"
	// JobMC is a Monte Carlo lifetime study (the /v1/study/mc workload).
	JobMC = "mc"
)

// BatchItem is one resolved study configuration inside a batch: the
// concrete inputs a study or MC run needs, plus the kind discriminator.
type BatchItem struct {
	// Kind is JobStudy or JobMC.
	Kind string
	// Config, Profiles, and Techs are the resolved study inputs.
	Config   Config
	Profiles []workload.Profile
	Techs    []scaling.Technology
	// MC is the normalized sampling configuration; read only when Kind
	// is JobMC.
	MC MCConfig
}

// Key returns the item's content address: StudyKey for a study item,
// MCStudyKey for an MC item. Two items with equal keys compute the same
// result, which is the contract batch deduplication relies on.
func (it BatchItem) Key() (string, error) {
	switch it.Kind {
	case JobStudy:
		return StudyKey(it.Config, it.Profiles, it.Techs)
	case JobMC:
		return MCStudyKey(it.Config, it.MC, it.Profiles, it.Techs)
	default:
		return "", fmt.Errorf("sim: batch: unknown job kind %q", it.Kind)
	}
}

// BatchPlan is the dedup analysis of one batch submission.
type BatchPlan struct {
	// Keys holds each item's content address, in submission order.
	Keys []string
	// First maps each item index to the index of the first item with the
	// same key; First[i] == i marks a unique item.
	First []int
	// Unique lists the indices of the distinct items, in first-seen
	// order. len(Unique) studies must run to serve the whole batch.
	Unique []int
}

// Duplicates returns the number of items deduplicated away within the
// batch.
func (p BatchPlan) Duplicates() int { return len(p.Keys) - len(p.Unique) }

// PlanBatch content-addresses every item and computes the intra-batch
// dedup mapping. It does not consult any cache: cross-batch and in-flight
// deduplication belong to the job queue and the singleflight layer, which
// key on the same hashes.
func PlanBatch(items []BatchItem) (BatchPlan, error) {
	plan := BatchPlan{
		Keys:  make([]string, len(items)),
		First: make([]int, len(items)),
	}
	seen := make(map[string]int, len(items))
	for i, it := range items {
		key, err := it.Key()
		if err != nil {
			return BatchPlan{}, fmt.Errorf("item %d: %w", i, err)
		}
		plan.Keys[i] = key
		if first, ok := seen[key]; ok {
			plan.First[i] = first
			continue
		}
		seen[key] = i
		plan.First[i] = i
		plan.Unique = append(plan.Unique, i)
	}
	return plan, nil
}
