package sim

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/ramp-sim/ramp/internal/scaling"
)

func testStageCache(t *testing.T) *StageCache {
	t.Helper()
	cache, err := NewStageCache(StageCacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return cache
}

// TestStudyCachedMatchesUncached: running through a stage cache must be
// invisible in the numbers — cold-cache, warm-cache, and cacheless runs of
// the same study are deeply equal.
func TestStudyCachedMatchesUncached(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 60_000
	profiles := testProfiles(t)[:2]
	techs := scaling.Generations()[:3]
	ctx := context.Background()

	plain, err := RunStudyContext(ctx, cfg, profiles, techs, StudyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cache := testStageCache(t)
	cold, err := RunStudyContext(ctx, cfg, profiles, techs, StudyOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunStudyContext(ctx, cfg, profiles, techs, StudyOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cold) {
		t.Errorf("cold-cache study differs from cacheless study")
	}
	if !reflect.DeepEqual(plain, warm) {
		t.Errorf("warm-cache study differs from cacheless study")
	}
	st := cache.Stats()
	if st.FIT.MemHits == 0 {
		t.Errorf("warm rerun hit no finished-cell artifacts: %+v", st.FIT)
	}
}

// TestStudyWarmReliabilityChange is the incremental-study contract end to
// end: after a cold run, changing only a reliability constant must (a)
// produce numbers identical to a cold run of the changed config, (b) reuse
// every thermal series (no new thermal puts), and (c) never re-run the
// timing stage (no new timing puts).
func TestStudyWarmReliabilityChange(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 60_000
	profiles := testProfiles(t)[:2]
	techs := scaling.Generations()[:3]
	ctx := context.Background()

	cache := testStageCache(t)
	if _, err := RunStudyContext(ctx, cfg, profiles, techs, StudyOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()

	changed := cfg
	changed.RAMP.EM.ActivationEnergyEV += 0.05

	var sources sync.Map
	warm, err := RunStudyContext(ctx, changed, profiles, techs, StudyOptions{
		Cache: cache,
		OnApp: func(ev AppEvent) {
			sources.Store(ev.Run.App+"@"+ev.Run.Tech.Name, ev.Source)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reference, err := RunStudyContext(ctx, changed, profiles, techs, StudyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reference, warm) {
		t.Errorf("warm run after reliability change differs from cold run of the changed config")
	}

	after := cache.Stats()
	if after.Timing.Puts != before.Timing.Puts {
		t.Errorf("reliability-only change re-ran the timing stage: %d -> %d puts",
			before.Timing.Puts, after.Timing.Puts)
	}
	if after.Thermal.Puts != before.Thermal.Puts {
		t.Errorf("reliability-only change re-ran the thermal stage: %d -> %d puts",
			before.Thermal.Puts, after.Thermal.Puts)
	}
	sources.Range(func(cell, src any) bool {
		if src != CellFromThermalCache {
			t.Errorf("cell %v source = %v, want %v", cell, src, CellFromThermalCache)
		}
		return true
	})
}

// TestStudyCancelledLeavesCacheConsistent cancels a study mid-grid (from
// the first completed-cell callback) and then requires that (a) the
// cancelled run reported ctx.Err(), (b) the cache only holds complete,
// reusable artifacts — proven by a follow-up run through the same cache
// matching a cacheless reference exactly.
func TestStudyCancelledLeavesCacheConsistent(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 60_000
	profiles := testProfiles(t)[:2]
	techs := scaling.Generations()[:3]

	cache := testStageCache(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	_, err := RunStudyContext(ctx, cfg, profiles, techs, StudyOptions{
		Parallelism: 2,
		Cache:       cache,
		OnApp: func(AppEvent) {
			if fired.CompareAndSwap(false, true) {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled study returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled study returned %v, want context.Canceled", err)
	}

	resumed, err := RunStudyContext(context.Background(), cfg, profiles, techs,
		StudyOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	reference, err := RunStudyContext(context.Background(), cfg, profiles, techs, StudyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reference, resumed) {
		t.Errorf("run resumed from a cancelled study's cache differs from a clean run")
	}
}

// TestStudyAppEventsCoverGrid: a full study must emit exactly one OnApp
// event per (profile × technology) cell with a monotonically consistent
// done counter and the advertised total.
func TestStudyAppEventsCoverGrid(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 50_000
	profiles := testProfiles(t)[:2]
	techs := scaling.Generations()[:2]

	var mu sync.Mutex
	seen := map[string]int{}
	var events []AppEvent
	_, err := RunStudyContext(context.Background(), cfg, profiles, techs, StudyOptions{
		OnApp: func(ev AppEvent) {
			mu.Lock()
			defer mu.Unlock()
			seen[ev.Run.App+"@"+ev.Run.Tech.Name]++
			events = append(events, ev)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := len(profiles) * len(techs)
	if len(events) != want {
		t.Fatalf("got %d app events, want %d", len(events), want)
	}
	for cell, n := range seen {
		if n != 1 {
			t.Errorf("cell %s emitted %d times", cell, n)
		}
	}
	for _, ev := range events {
		if ev.CellsTotal != want {
			t.Errorf("event advertises total %d, want %d", ev.CellsTotal, want)
		}
		if ev.CellsDone < 1 || ev.CellsDone > want {
			t.Errorf("event done counter %d out of range [1,%d]", ev.CellsDone, want)
		}
		if ev.Source != CellComputed {
			t.Errorf("cold-cacheless run reported source %q, want %q", ev.Source, CellComputed)
		}
	}
}

// TestRunTimingCachedContext: a second lookup must be served from the
// cache (same pointer), and a nil cache must degrade to a plain run.
func TestRunTimingCachedContext(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 50_000
	prof := testProfiles(t)[0]
	ctx := context.Background()

	cache := testStageCache(t)
	first, err := RunTimingCachedContext(ctx, cfg, prof, cache)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunTimingCachedContext(ctx, cfg, prof, cache)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("second timing lookup was not served from the cache")
	}
	plain, err := RunTimingCachedContext(ctx, cfg, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain == nil || len(plain.Timing.Samples) == 0 {
		t.Errorf("nil-cache timing run produced no samples")
	}
}

// TestStageCacheDiskWarmStart: a fresh StageCache over the same spill
// directory must serve a study without re-running the timing stage.
func TestStageCacheDiskWarmStart(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 50_000
	profiles := testProfiles(t)[:1]
	techs := scaling.Generations()[:2]
	dir := t.TempDir()
	ctx := context.Background()

	cold, err := NewStageCache(StageCacheOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := RunStudyContext(ctx, cfg, profiles, techs, StudyOptions{Cache: cold})
	if err != nil {
		t.Fatal(err)
	}

	warm, err := NewStageCache(StageCacheOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunStudyContext(ctx, cfg, profiles, techs, StudyOptions{Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("disk-warmed study differs from the run that wrote the spill")
	}
	st := warm.Stats()
	if st.Timing.Puts != 0 {
		t.Errorf("disk-warmed run re-ran the timing stage (%d puts)", st.Timing.Puts)
	}
	if st.FIT.DiskHits == 0 {
		t.Errorf("disk-warmed run read no spilled cells: %+v", st.FIT)
	}
}

// TestEvaluateTechSplitIdentity: composing the two stages explicitly must
// equal EvaluateTechContext bit for bit — the staged pipeline is a pure
// refactoring of the historical fused loop.
func TestEvaluateTechSplitIdentity(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 50_000
	prof := testProfiles(t)[0]
	tech := scaling.Generations()[1]
	ctx := context.Background()

	tr, err := RunTimingContext(ctx, cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := EvaluateTechContext(ctx, cfg, tr, tech, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := RunThermalContext(ctx, cfg, tr, tech, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	staged, err := AccumulateFITContext(ctx, cfg, ts, tech)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fused, staged) {
		t.Errorf("staged evaluation differs from fused evaluation")
	}
	if _, err := AccumulateFITContext(ctx, cfg, ts, scaling.Base()); err == nil {
		t.Errorf("accumulating a thermal series at the wrong technology succeeded")
	}
}

// TestStageCacheSharedAcrossProfiles ensures per-profile keys do not
// collide: two different profiles through one cache stay distinct.
func TestStageCacheSharedAcrossProfiles(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 50_000
	profs := testProfiles(t)[:2]
	ctx := context.Background()
	cache := testStageCache(t)

	a, err := RunTimingCachedContext(ctx, cfg, profs[0], cache)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTimingCachedContext(ctx, cfg, profs[1], cache)
	if err != nil {
		t.Fatal(err)
	}
	if a.Profile.Name == b.Profile.Name {
		t.Fatalf("test needs two distinct profiles")
	}
	if a == b {
		t.Errorf("distinct profiles shared one cached trace")
	}
}
