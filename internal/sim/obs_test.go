package sim

import (
	"context"
	"sync"
	"testing"

	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/store"
)

// TestStudySpans runs a small cached study under a tracer and checks the
// span tree: one study root, one cell span per (profile × technology) on
// its own track, pipeline-stage spans beneath them, and cache-lookup spans
// annotated with their result.
func TestStudySpans(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 60_000
	profiles := testProfiles(t)[:2]
	techs := scaling.Generations()[:2]

	col := obs.NewCollector(0)
	ctx := obs.WithTracer(context.Background(), obs.NewTracer(col))
	cache := testStageCache(t)
	if _, err := RunStudyContext(ctx, cfg, profiles, techs, StudyOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}

	spans := col.Spans()
	byName := map[string][]*obs.Span{}
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	if n := len(byName[obs.SpanStudy]); n != 1 {
		t.Fatalf("study spans = %d, want 1", n)
	}
	study := byName[obs.SpanStudy][0]

	wantCells := len(profiles) * len(techs)
	cells := byName[obs.SpanCell]
	if len(cells) != wantCells {
		t.Fatalf("cell spans = %d, want %d", len(cells), wantCells)
	}
	tracks := map[uint64]bool{}
	for _, c := range cells {
		if c.Parent != study.ID {
			t.Errorf("cell span %d is not a child of the study span", c.ID)
		}
		if c.Track == study.Track || tracks[c.Track] {
			t.Errorf("cell span %d does not have its own track", c.ID)
		}
		tracks[c.Track] = true
		attrs := attrMap(c)
		if attrs["app"] == "" || attrs["tech"] == "" || attrs["source"] != CellComputed {
			t.Errorf("cell attrs = %v", attrs)
		}
	}

	// A cold cached study computes every stage once per consumer.
	if n := len(byName[obs.SpanTiming]); n != len(profiles) {
		t.Errorf("timing spans = %d, want %d", n, len(profiles))
	}
	// Base cells may re-run the thermal stage for power-calibration
	// refinement passes, so the thermal span count is a lower bound.
	if n := len(byName[obs.SpanThermal]); n < wantCells {
		t.Errorf("thermal spans = %d, want >= %d", n, wantCells)
	}
	if n := len(byName[obs.SpanFIT]); n != wantCells {
		t.Errorf("fit spans = %d, want %d", n, wantCells)
	}
	for _, sp := range byName[obs.SpanCacheGet] {
		attrs := attrMap(sp)
		if attrs["stage"] == "" || (attrs["result"] != "hit" && attrs["result"] != "miss") {
			t.Errorf("cache get attrs = %v", attrs)
		}
	}
	// Cold run: every fit-cache lookup misses, then every cell puts.
	if n := len(byName[obs.SpanCachePut]); n < wantCells {
		t.Errorf("cache put spans = %d, want >= %d", n, wantCells)
	}
	for _, sp := range spans {
		if sp.End.Before(sp.Start) {
			t.Errorf("span %s ends before it starts", sp.Name)
		}
	}
}

func attrMap(sp *obs.Span) map[string]string {
	m := make(map[string]string)
	for _, a := range sp.Attrs() {
		m[a.Key] = a.Value
	}
	return m
}

// TestStudyUntracedIsSpanFree pins the zero-overhead contract: without a
// tracer in the context, the study must not emit any spans (there is no
// global tracer to leak through).
func TestStudyUntracedIsSpanFree(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 30_000
	profiles := testProfiles(t)[:1]
	techs := scaling.Generations()[:1]
	if _, err := RunStudyContext(context.Background(), cfg, profiles, techs, StudyOptions{}); err != nil {
		t.Fatal(err)
	}
	// Nothing to assert beyond "it ran": the nil-tracer fast path is
	// exercised and the obs package's alloc test pins its cost.
}

// TestStageCacheObserver checks that cache operations flow through
// StageCacheOptions.Observer with the stage name as the store label.
func TestStageCacheObserver(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 60_000
	profiles := testProfiles(t)[:1]
	techs := scaling.Generations()[:2]

	var mu sync.Mutex
	counts := map[string]int{}
	cache, err := NewStageCache(StageCacheOptions{Observer: func(ev store.Event) {
		mu.Lock()
		counts[ev.Store+"/"+ev.Op+"/"+ev.Outcome]++
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := RunStudyContext(ctx, cfg, profiles, techs, StudyOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	nCells := len(profiles) * len(techs)
	for label, want := range map[string]int{
		"timing/put/ok":  len(profiles),
		"thermal/put/ok": nCells,
		"fit/put/ok":     nCells,
		"fit/get/miss":   nCells,
	} {
		if counts[label] != want {
			t.Errorf("%s = %d, want %d (all: %v)", label, counts[label], want, counts)
		}
	}
	if counts["timing/get/hit_mem"]+counts["timing/get/miss"] == 0 {
		t.Errorf("no timing lookups observed: %v", counts)
	}
}
