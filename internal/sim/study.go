package sim

import (
	"fmt"
	"sort"
	"sync"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/workload"
)

// WorstCase is the worst-case ("max") operating-point evaluation of §5.2
// for one technology: the highest per-structure activity factor and
// temperature seen by any application, applied steady-state.
type WorstCase struct {
	Tech scaling.Technology
	// MaxAF and MaxTempK are the suite-wide per-structure maxima.
	MaxAF, MaxTempK [microarch.NumStructures]float64
	// MaxDieAvgTempK is the suite-wide maximum die-average temperature.
	MaxDieAvgTempK float64
	// RawFIT is the worst-case breakdown with unit constants.
	RawFIT core.Breakdown
}

// StudyResult is the full output of a scaling study.
type StudyResult struct {
	// Config echoes the configuration used.
	Config Config
	// Techs lists the technology points evaluated, in input order.
	Techs []scaling.Technology
	// Apps holds one entry per (application × technology), grouped by
	// technology in Techs order, applications in input order.
	Apps []AppRun
	// Worst holds the worst-case evaluation per technology, aligned with
	// Techs.
	Worst []WorstCase
	// Constants is the reliability-qualification calibration solved at
	// the base technology (§4.4).
	Constants core.Constants
}

// FIT returns the calibrated failure-rate breakdown for an application run.
func (r *StudyResult) FIT(a AppRun) core.Breakdown {
	return applyConstants(a.RawFIT, r.Constants)
}

// WorstFIT returns the calibrated worst-case breakdown for a technology
// index.
func (r *StudyResult) WorstFIT(i int) core.Breakdown {
	return applyConstants(r.Worst[i].RawFIT, r.Constants)
}

// AppsAt returns the application runs for one technology index.
func (r *StudyResult) AppsAt(i int) []AppRun {
	var out []AppRun
	for _, a := range r.Apps {
		if a.Tech.Name == r.Techs[i].Name {
			out = append(out, a)
		}
	}
	return out
}

// applyConstants scales a raw breakdown by the per-mechanism calibration.
func applyConstants(b core.Breakdown, c core.Constants) core.Breakdown {
	return b.Calibrated(c)
}

// RunStudy executes the complete study: timing for every profile (in
// parallel), base-technology evaluation (per-application power calibration
// and sink-temperature capture), reliability qualification, then every
// scaled technology point, and the worst-case analysis per technology.
//
// techs must start with the base (180nm) technology.
func RunStudy(cfg Config, profiles []workload.Profile, techs []scaling.Technology) (*StudyResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("sim: no profiles")
	}
	if len(techs) == 0 {
		return nil, fmt.Errorf("sim: no technologies")
	}
	base := scaling.Base()
	if techs[0].Name != base.Name {
		return nil, fmt.Errorf("sim: first technology must be %s (calibration anchor), got %s",
			base.Name, techs[0].Name)
	}

	// ---- Stage 1: timing simulations, in parallel.
	traces := make([]*ActivityTrace, len(profiles))
	errs := make([]error, len(profiles))
	var wg sync.WaitGroup
	for i := range profiles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traces[i], errs[i] = RunTiming(cfg, profiles[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: timing %s: %w", profiles[i].Name, err)
		}
	}

	// ---- Stage 2: base technology — solve per-app power scale and
	// capture per-app sink temperatures.
	baseRuns := make([]AppRun, len(profiles))
	scales := make([]float64, len(profiles))
	for i := range profiles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scale := 1.0
			run, err := EvaluateTech(cfg, traces[i], base, 0, scale)
			if err != nil {
				errs[i] = err
				return
			}
			if cfg.CalibrateAppPower && profiles[i].TargetPowerW > 0 {
				// Two refinement passes: scale dynamic power toward the
				// Table 3 target, letting leakage re-settle each time.
				for pass := 0; pass < 2; pass++ {
					want := profiles[i].TargetPowerW - run.AvgLeakageW
					if want <= 0 || run.AvgDynamicW <= 0 {
						break
					}
					scale *= want / run.AvgDynamicW
					run, err = EvaluateTech(cfg, traces[i], base, 0, scale)
					if err != nil {
						errs[i] = err
						return
					}
				}
			}
			baseRuns[i], scales[i] = run, scale
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: base eval %s: %w", profiles[i].Name, err)
		}
	}

	// ---- Stage 3: reliability qualification at the base point (§4.4).
	var rawAvg [core.NumMechanisms]float64
	for _, run := range baseRuns {
		mech := run.RawFIT.ByMechanism()
		for m := range rawAvg {
			rawAvg[m] += mech[m] / float64(len(baseRuns))
		}
	}
	consts, err := core.Calibrate(rawAvg, cfg.QualFITPerMechanism)
	if err != nil {
		return nil, fmt.Errorf("sim: qualification: %w", err)
	}

	// ---- Stage 4: scaled technology points, holding each application's
	// sink temperature at its base-technology value (§4.3).
	result := &StudyResult{
		Config:    cfg,
		Techs:     techs,
		Constants: consts,
		Apps:      make([]AppRun, 0, len(profiles)*len(techs)),
	}
	result.Apps = append(result.Apps, baseRuns...)
	for _, tech := range techs[1:] {
		runs := make([]AppRun, len(profiles))
		for i := range profiles {
			wg.Add(1)
			go func(i int, tech scaling.Technology) {
				defer wg.Done()
				runs[i], errs[i] = EvaluateTech(cfg, traces[i], tech, baseRuns[i].SinkTempK, scales[i])
			}(i, tech)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("sim: %s @ %s: %w", profiles[i].Name, tech.Name, err)
			}
		}
		result.Apps = append(result.Apps, runs...)
	}

	// ---- Stage 5: worst-case ("max") per technology (§5.2).
	result.Worst = make([]WorstCase, len(techs))
	for ti, tech := range techs {
		wc, err := worstCaseFor(cfg, result.AppsAt(ti), tech)
		if err != nil {
			return nil, err
		}
		result.Worst[ti] = wc
	}
	return result, nil
}

// worstCaseFor evaluates the steady worst-case operating point over a set
// of application runs at one technology: §5.2 computes the worst-case FIT
// from "the highest activity factor (p) and the highest temperature across
// all applications", used for the entire run. (An even more pessimistic
// reading — a steady thermal solve under *sustained* maximum activity —
// roughly doubles the gaps again; see EXPERIMENTS.md for the comparison
// against the paper's reported margins.)
func worstCaseFor(cfg Config, runs []AppRun, tech scaling.Technology) (WorstCase, error) {
	if len(runs) == 0 {
		return WorstCase{}, fmt.Errorf("sim: no runs for worst case at %s", tech.Name)
	}
	wc := WorstCase{Tech: tech}
	for _, run := range runs {
		for b := 0; b < microarch.NumStructures; b++ {
			if run.MaxAF[b] > wc.MaxAF[b] {
				wc.MaxAF[b] = run.MaxAF[b]
			}
			if run.MaxTempK[b] > wc.MaxTempK[b] {
				wc.MaxTempK[b] = run.MaxTempK[b]
			}
		}
		if run.MaxDieAvgTempK > wc.MaxDieAvgTempK {
			wc.MaxDieAvgTempK = run.MaxDieAvgTempK
		}
	}
	fp, err := floorplanFor(tech)
	if err != nil {
		return WorstCase{}, err
	}
	eval, err := core.NewEvaluator(cfg.RAMP, core.UnitConstants(), tech, fp.Areas())
	if err != nil {
		return WorstCase{}, err
	}
	wc.RawFIT = eval.Instant(wc.MaxAF, wc.MaxTempK, tech.VddV, wc.MaxDieAvgTempK)
	return wc, nil
}

// SuiteAverageFIT returns the average calibrated total FIT over the runs
// of one suite (or all runs when suite is 0) at one technology index.
func (r *StudyResult) SuiteAverageFIT(ti int, suite workload.Suite) float64 {
	var sum float64
	var n int
	for _, a := range r.AppsAt(ti) {
		if suite != 0 && a.Suite != suite {
			continue
		}
		sum += r.FIT(a).Total()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SuiteAverageMech returns the suite-average calibrated per-mechanism FIT
// at one technology index.
func (r *StudyResult) SuiteAverageMech(ti int, suite workload.Suite) [core.NumMechanisms]float64 {
	var out [core.NumMechanisms]float64
	var n int
	for _, a := range r.AppsAt(ti) {
		if suite != 0 && a.Suite != suite {
			continue
		}
		mech := r.FIT(a).ByMechanism()
		for m := range out {
			out[m] += mech[m]
		}
		n++
	}
	if n == 0 {
		return out
	}
	for m := range out {
		out[m] /= float64(n)
	}
	return out
}

// FITRange returns the lowest and highest calibrated application total FIT
// at one technology index.
func (r *StudyResult) FITRange(ti int) (lo, hi float64) {
	apps := r.AppsAt(ti)
	if len(apps) == 0 {
		return 0, 0
	}
	totals := make([]float64, len(apps))
	for i, a := range apps {
		totals[i] = r.FIT(a).Total()
	}
	sort.Float64s(totals)
	return totals[0], totals[len(totals)-1]
}
