package sim

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sched"
	"github.com/ramp-sim/ramp/internal/workload"
)

// WorstCase is the worst-case ("max") operating-point evaluation of §5.2
// for one technology: the highest per-structure activity factor and
// temperature seen by any application, applied steady-state.
type WorstCase struct {
	Tech scaling.Technology
	// MaxAF and MaxTempK are the suite-wide per-structure maxima.
	MaxAF, MaxTempK [microarch.NumStructures]float64
	// MaxDieAvgTempK is the suite-wide maximum die-average temperature.
	MaxDieAvgTempK float64
	// RawFIT is the worst-case breakdown with unit constants.
	RawFIT core.Breakdown
}

// StudyResult is the full output of a scaling study.
type StudyResult struct {
	// Config echoes the configuration used.
	Config Config
	// Techs lists the technology points evaluated, in input order.
	Techs []scaling.Technology
	// Apps holds one entry per (application × technology), grouped by
	// technology in Techs order, applications in input order.
	Apps []AppRun
	// Worst holds the worst-case evaluation per technology, aligned with
	// Techs.
	Worst []WorstCase
	// Constants is the reliability-qualification calibration solved at
	// the base technology (§4.4).
	Constants core.Constants
}

// FIT returns the calibrated failure-rate breakdown for an application run.
func (r *StudyResult) FIT(a AppRun) core.Breakdown {
	return applyConstants(a.RawFIT, r.Constants)
}

// WorstFIT returns the calibrated worst-case breakdown for a technology
// index.
func (r *StudyResult) WorstFIT(i int) core.Breakdown {
	return applyConstants(r.Worst[i].RawFIT, r.Constants)
}

// AppsAt returns the application runs for one technology index.
func (r *StudyResult) AppsAt(i int) []AppRun {
	var out []AppRun
	for _, a := range r.Apps {
		if a.Tech.Name == r.Techs[i].Name {
			out = append(out, a)
		}
	}
	return out
}

// applyConstants scales a raw breakdown by the per-mechanism calibration.
func applyConstants(b core.Breakdown, c core.Constants) core.Breakdown {
	return b.Calibrated(c)
}

// Stage labels of the study's task graph, as reported through
// StudyOptions.OnProgress.
const (
	// StageTiming is the per-profile timing simulation.
	StageTiming = "timing"
	// StageBase is the per-profile 180nm evaluation with power calibration.
	StageBase = "base"
	// StageQualify is the single reliability-qualification solve (§4.4).
	StageQualify = "qualify"
	// StageScaled is one (profile × non-base technology) evaluation.
	StageScaled = "scaled"
	// StageWorst is the per-technology worst-case analysis (§5.2).
	StageWorst = "worst"
)

// StudyOptions tunes the execution of a study without affecting its
// numerics: any parallelism — and any stage-cache state — produces
// bit-identical results.
type StudyOptions struct {
	// Parallelism bounds the number of concurrently evaluated tasks;
	// values < 1 default to runtime.GOMAXPROCS(0).
	Parallelism int
	// OnProgress, when non-nil, receives a completion event per finished
	// task. It is called from worker goroutines and must be safe for
	// concurrent use.
	OnProgress func(sched.Progress)
	// Metrics, when non-nil, receives scheduler lifecycle events. A
	// shared *sched.Counters lets a long-lived observer (rampd's /metrics)
	// track queue depth and in-flight tasks across concurrent studies.
	Metrics sched.Recorder
	// Cache, when non-nil, memoises the study's stages content-addressed:
	// timing per profile, thermal series per (profile × technology), and
	// finished AppRuns per (profile × technology × reliability
	// constants). A warm cache turns a sweep that changes only downstream
	// inputs into a replay of the cheap stages; a cancelled study leaves
	// only complete, reusable artifacts behind.
	Cache *StageCache
	// OnApp, when non-nil, receives each completed (profile × technology)
	// cell the moment it lands, long before the whole grid finishes —
	// the streaming hook behind Runner.StreamStudy and rampd's
	// /v1/study/stream. It is called from worker goroutines and must be
	// safe for concurrent use.
	OnApp func(AppEvent)
}

// AppEvent is one completed (profile × technology) cell of a running
// study, delivered through StudyOptions.OnApp as the grid fills in.
type AppEvent struct {
	// Run is the completed cell. Run.RawFIT is uncalibrated: the
	// qualification constants are only known once every base cell has
	// finished, so streaming consumers receive raw breakdowns and apply
	// the Constants from the final StudyResult (or ReferenceConstants).
	Run AppRun
	// Source is the cell's provenance: CellFromFITCache,
	// CellFromThermalCache, or CellComputed.
	Source string
	// CellsDone and CellsTotal count completed and scheduled cells.
	CellsDone, CellsTotal int
}

// RunStudy executes the complete study: timing for every profile,
// base-technology evaluation (per-application power calibration and
// sink-temperature capture), reliability qualification, every scaled
// technology point, and the worst-case analysis per technology.
//
// techs must start with the base (180nm) technology.
func RunStudy(cfg Config, profiles []workload.Profile, techs []scaling.Technology) (*StudyResult, error) {
	return RunStudyContext(context.Background(), cfg, profiles, techs, StudyOptions{})
}

// RunStudyContext is RunStudy with cancellation, bounded parallelism, and
// progress reporting. The study runs as a dependency graph on a worker
// pool: a profile's scaled-technology evaluations start the moment its own
// base calibration finishes instead of waiting for the slowest profile of
// each stage. Cancelling ctx aborts outstanding work promptly and returns
// ctx.Err(); the first task failure cancels the rest of the study.
func RunStudyContext(ctx context.Context, cfg Config, profiles []workload.Profile,
	techs []scaling.Technology, opts StudyOptions) (*StudyResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Canonicalise the mechanism selection up front so every spelling of
	// one set — including any explicit spelling of the default four —
	// produces byte-identical StudyResult documents, not just identical
	// stage keys.
	cfg, err := canonicalizeConfigMechanisms(cfg)
	if err != nil {
		return nil, err
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("sim: no profiles")
	}
	if len(techs) == 0 {
		return nil, fmt.Errorf("sim: no technologies")
	}
	base := scaling.Base()
	if techs[0].Name != base.Name {
		return nil, fmt.Errorf("sim: first technology must be %s (calibration anchor), got %s",
			base.Name, techs[0].Name)
	}

	// The study span roots the trace; each cell detaches onto its own
	// track below it so concurrent cells render as parallel rows.
	ctx, studySpan := obs.StartSpan(ctx, obs.SpanStudy)
	if studySpan != nil {
		studySpan.SetAttr("profiles", strconv.Itoa(len(profiles)))
		studySpan.SetAttr("techs", strconv.Itoa(len(techs)))
		if tc := obs.TraceContextFrom(ctx); tc.Valid() {
			studySpan.SetAttr("trace_id", tc.TraceID)
		}
		defer studySpan.Finish()
	}

	// Task results land in index-addressed slots, so the assembled result
	// is identical for every parallelism level and scheduling order.
	n := len(profiles)
	s := &studyRun{
		cfg:        cfg,
		profiles:   profiles,
		techs:      techs,
		cache:      opts.Cache,
		onApp:      opts.OnApp,
		cellsTotal: n * len(techs),
		traces:     make([]*ActivityTrace, n),
		traceMu:    make([]sync.Mutex, n),
		baseRuns:   make([]AppRun, n),
		scales:     make([]float64, n),
		scaled:     make([][]AppRun, len(techs)), // scaled[ti][i], ti >= 1
	}
	for ti := 1; ti < len(techs); ti++ {
		s.scaled[ti] = make([]AppRun, n)
	}
	worst := make([]WorstCase, len(techs))
	var consts core.Constants

	timingID := func(i int) string { return fmt.Sprintf("%s/%d/%s", StageTiming, i, profiles[i].Name) }
	baseID := func(i int) string { return fmt.Sprintf("%s/%d/%s", StageBase, i, profiles[i].Name) }
	scaledID := func(i, ti int) string {
		return fmt.Sprintf("%s/%d/%s@%s", StageScaled, i, profiles[i].Name, techs[ti].Name)
	}
	baseIDs := make([]string, n)
	for i := range profiles {
		baseIDs[i] = baseID(i)
	}

	g := sched.NewGraph()
	for i := range profiles {
		i := i
		g.MustAdd(sched.Task{
			ID:    timingID(i),
			Stage: StageTiming,
			Run: func(ctx context.Context) error {
				// With a warm stage cache a profile whose every cell is
				// resolvable from downstream artifacts never needs its
				// trace — the most expensive stage is skipped outright.
				if s.cache != nil && !s.profileNeedsTrace(i) {
					return nil
				}
				_, err := s.ensureTrace(ctx, i)
				return err
			},
		})
		g.MustAdd(sched.Task{
			ID:    baseIDs[i],
			Stage: StageBase,
			Deps:  []string{timingID(i)},
			Run: func(ctx context.Context) error {
				run, src, err := s.cellBase(ctx, i)
				if err != nil {
					return fmt.Errorf("sim: base eval %s: %w", profiles[i].Name, err)
				}
				s.baseRuns[i], s.scales[i] = run, run.AppPowerScale
				s.emit(run, src)
				return nil
			},
		})
		for ti := 1; ti < len(techs); ti++ {
			i, ti := i, ti
			tech := techs[ti]
			g.MustAdd(sched.Task{
				ID:    scaledID(i, ti),
				Stage: StageScaled,
				Deps:  []string{baseIDs[i]},
				Run: func(ctx context.Context) error {
					run, src, err := s.cellScaled(ctx, i, ti)
					if err != nil {
						return fmt.Errorf("sim: %s @ %s: %w", profiles[i].Name, tech.Name, err)
					}
					s.scaled[ti][i] = run
					s.emit(run, src)
					return nil
				},
			})
		}
	}

	// Reliability qualification at the base point (§4.4) needs every base
	// run, but nothing downstream waits on it: scaled evaluations proceed
	// concurrently and the constants are only attached at assembly. The
	// solve runs over the configured mechanism set by name; for the
	// default four the per-name accumulation and per-name division are the
	// same operations in the same order as the historical fixed-array
	// solve, so the constants are bit-identical.
	g.MustAdd(sched.Task{
		ID:    StageQualify,
		Stage: StageQualify,
		Deps:  baseIDs,
		Run: func(ctx context.Context) error {
			set, err := cfg.MechanismSet()
			if err != nil {
				return err
			}
			names := set.Names()
			rawAvg := make(map[string]float64, len(names))
			for i := range s.baseRuns {
				mech := s.baseRuns[i].RawFIT.FITByName()
				for _, nm := range names {
					rawAvg[nm] += mech[nm] / float64(n)
				}
			}
			c, err := core.CalibrateSet(names, rawAvg, cfg.QualFITPerMechanism)
			if err != nil {
				return fmt.Errorf("sim: qualification: %w", err)
			}
			consts = c
			return nil
		},
	})

	for ti := range techs {
		ti := ti
		tech := techs[ti]
		deps := baseIDs
		if ti > 0 {
			deps = make([]string, n)
			for i := range profiles {
				deps[i] = scaledID(i, ti)
			}
		}
		g.MustAdd(sched.Task{
			ID:    fmt.Sprintf("%s/%d/%s", StageWorst, ti, tech.Name),
			Stage: StageWorst,
			Deps:  deps,
			Run: func(ctx context.Context) error {
				runs := s.baseRuns
				if ti > 0 {
					runs = s.scaled[ti]
				}
				wc, err := worstCaseFor(cfg, runs, tech)
				if err != nil {
					return err
				}
				worst[ti] = wc
				return nil
			},
		})
	}

	if err := g.Run(ctx, sched.Options{
		Parallelism: opts.Parallelism,
		OnProgress:  opts.OnProgress,
		Metrics:     opts.Metrics,
	}); err != nil {
		return nil, err
	}

	result := &StudyResult{
		Config:    cfg,
		Techs:     techs,
		Constants: consts,
		Apps:      make([]AppRun, 0, n*len(techs)),
		Worst:     worst,
	}
	result.Apps = append(result.Apps, s.baseRuns...)
	for ti := 1; ti < len(techs); ti++ {
		result.Apps = append(result.Apps, s.scaled[ti]...)
	}
	return result, nil
}

// studyRun is the shared mutable state of one executing study: the
// index-addressed result slots the tasks write into, plus the stage-cache
// plumbing and the streaming hook.
type studyRun struct {
	cfg      Config
	profiles []workload.Profile
	techs    []scaling.Technology
	cache    *StageCache
	onApp    func(AppEvent)

	traces  []*ActivityTrace
	traceMu []sync.Mutex // per-profile: serialises lazy trace materialisation

	baseRuns []AppRun
	scales   []float64
	scaled   [][]AppRun // scaled[ti][i], ti >= 1

	cellsDone  atomic.Int64
	cellsTotal int
}

// emit delivers one finished cell to the streaming hook.
func (s *studyRun) emit(run AppRun, src string) {
	done := int(s.cellsDone.Add(1))
	if s.onApp != nil {
		s.onApp(AppEvent{Run: run, Source: src, CellsDone: done, CellsTotal: s.cellsTotal})
	}
}

// ensureTrace returns profile i's activity trace, materialising it at
// most once per study (through the stage cache when one is configured).
// Cell tasks call it lazily, so a cache eviction between planning and
// execution degrades to recomputation, never to an error.
func (s *studyRun) ensureTrace(ctx context.Context, i int) (*ActivityTrace, error) {
	s.traceMu[i].Lock()
	defer s.traceMu[i].Unlock()
	if s.traces[i] != nil {
		return s.traces[i], nil
	}
	tr, err := RunTimingCachedContext(ctx, s.cfg, s.profiles[i], s.cache)
	if err != nil {
		return nil, fmt.Errorf("sim: timing %s: %w", s.profiles[i].Name, err)
	}
	s.traces[i] = tr
	return tr, nil
}

// profileNeedsTrace reports whether any cell of profile i will need the
// activity trace: a cell is trace-free when its finished AppRun or its
// thermal series is already cached. Contains is advisory (an entry can be
// evicted before use); ensureTrace covers the race.
func (s *studyRun) profileNeedsTrace(i int) bool {
	for ti := range s.techs {
		thermalKey, fitKey, err := cellKeys(s.cfg, s.profiles[i], s.techs[ti])
		if err != nil {
			return true // surface the key error on the cell path
		}
		if !s.cache.fit.Contains(fitKey) && !s.cache.thermal.Contains(thermalKey) {
			return true
		}
	}
	return false
}

// cellBase produces profile i's base-technology cell: served from the FIT
// cache, replayed from a cached thermal series, or computed (with the
// per-application power calibration of §4.4) — in that order of
// preference. The returned provenance label feeds AppEvent.Source.
func (s *studyRun) cellBase(ctx context.Context, i int) (AppRun, string, error) {
	base := s.techs[0]
	run, src, err := s.cellCached(ctx, i, base, func(ctx context.Context) (*ThermalSeries, error) {
		tr, err := s.ensureTrace(ctx, i)
		if err != nil {
			return nil, err
		}
		return evaluateBaseThermal(ctx, s.cfg, tr, s.profiles[i])
	})
	return run, src, err
}

// cellScaled produces the (profile i × technology ti) cell, holding the
// heat-sink temperature at the profile's base-technology value (§4.3).
func (s *studyRun) cellScaled(ctx context.Context, i, ti int) (AppRun, string, error) {
	tech := s.techs[ti]
	return s.cellCached(ctx, i, tech, func(ctx context.Context) (*ThermalSeries, error) {
		tr, err := s.ensureTrace(ctx, i)
		if err != nil {
			return nil, err
		}
		return RunThermalContext(ctx, s.cfg, tr, tech, s.baseRuns[i].SinkTempK, s.scales[i])
	})
}

// cellCached implements the per-cell stage waterfall: FIT cache → thermal
// cache + reliability replay → full computation via produce. Artifacts are
// inserted only when complete, so a cancelled cell leaves the cache
// exactly as it found it. The whole waterfall runs inside a sim.cell span
// on its own trace track, annotated with the cell's identity and
// provenance.
func (s *studyRun) cellCached(ctx context.Context, i int, tech scaling.Technology,
	produce func(context.Context) (*ThermalSeries, error)) (AppRun, string, error) {
	ctx, cell := obs.StartTrackSpan(ctx, obs.SpanCell)
	run, src, err := s.cellResolve(ctx, i, tech, produce)
	if cell != nil {
		cell.SetAttr("app", s.profiles[i].Name)
		cell.SetAttr("tech", tech.Name)
		if err != nil {
			cell.SetAttr("error", err.Error())
		} else {
			cell.SetAttr("source", src)
		}
		cell.Finish()
	}
	return run, src, err
}

// cellResolve is cellCached's uninstrumented body.
func (s *studyRun) cellResolve(ctx context.Context, i int, tech scaling.Technology,
	produce func(context.Context) (*ThermalSeries, error)) (AppRun, string, error) {
	var thermalKey, fitKey string
	if s.cache != nil {
		var err error
		thermalKey, fitKey, err = cellKeys(s.cfg, s.profiles[i], tech)
		if err != nil {
			return AppRun{}, "", err
		}
		if run, ok := cacheGet(ctx, s.cache.fit, "fit", fitKey); ok {
			return *run, CellFromFITCache, nil
		}
		if ts, ok := cacheGet(ctx, s.cache.thermal, "thermal", thermalKey); ok {
			run, err := AccumulateFITContext(ctx, s.cfg, ts, tech)
			if err != nil {
				return AppRun{}, "", err
			}
			cachePut(ctx, s.cache.fit, "fit", fitKey, &run)
			return run, CellFromThermalCache, nil
		}
	}
	ts, err := produce(ctx)
	if err != nil {
		return AppRun{}, "", err
	}
	if s.cache != nil {
		cachePut(ctx, s.cache.thermal, "thermal", thermalKey, ts)
	}
	run, err := AccumulateFITContext(ctx, s.cfg, ts, tech)
	if err != nil {
		return AppRun{}, "", err
	}
	if s.cache != nil {
		cachePut(ctx, s.cache.fit, "fit", fitKey, &run)
	}
	return run, CellComputed, nil
}

// RunTimings executes the timing stage for several profiles on a bounded
// worker pool, returning the traces in input order. opts mirrors
// RunStudyContext (progress events carry the StageTiming label).
func RunTimings(ctx context.Context, cfg Config, profiles []workload.Profile,
	opts StudyOptions) ([]*ActivityTrace, error) {
	out := make([]*ActivityTrace, len(profiles))
	err := sched.Map(ctx, len(profiles),
		sched.Options{Parallelism: opts.Parallelism, OnProgress: opts.OnProgress, Metrics: opts.Metrics},
		StageTiming,
		func(ctx context.Context, i int) error {
			tr, err := RunTimingContext(ctx, cfg, profiles[i])
			if err != nil {
				return fmt.Errorf("sim: timing %s: %w", profiles[i].Name, err)
			}
			out[i] = tr
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// evaluateBaseThermal runs one profile's base-technology thermal stage,
// solving the per-application dynamic-power factor toward the Table 3
// target when configured (two refinement passes, letting leakage
// re-settle each time). Calibration needs only the power aggregates, so
// the refinement passes skip the reliability stage entirely; the returned
// series records the solved factor in AppPowerScale.
func evaluateBaseThermal(ctx context.Context, cfg Config, tr *ActivityTrace,
	prof workload.Profile) (*ThermalSeries, error) {
	base := scaling.Base()
	scale := 1.0
	ts, err := RunThermalContext(ctx, cfg, tr, base, 0, scale)
	if err != nil {
		return nil, err
	}
	if cfg.CalibrateAppPower && prof.TargetPowerW > 0 {
		for pass := 0; pass < 2; pass++ {
			want := prof.TargetPowerW - ts.AvgLeakageW
			if want <= 0 || ts.AvgDynamicW <= 0 {
				break
			}
			scale *= want / ts.AvgDynamicW
			ts, err = RunThermalContext(ctx, cfg, tr, base, 0, scale)
			if err != nil {
				return nil, err
			}
		}
	}
	return ts, nil
}

// worstCaseFor evaluates the steady worst-case operating point over a set
// of application runs at one technology: §5.2 computes the worst-case FIT
// from "the highest activity factor (p) and the highest temperature across
// all applications", used for the entire run. (An even more pessimistic
// reading — a steady thermal solve under *sustained* maximum activity —
// roughly doubles the gaps again; see EXPERIMENTS.md for the comparison
// against the paper's reported margins.)
func worstCaseFor(cfg Config, runs []AppRun, tech scaling.Technology) (WorstCase, error) {
	if len(runs) == 0 {
		return WorstCase{}, fmt.Errorf("sim: no runs for worst case at %s", tech.Name)
	}
	wc := WorstCase{Tech: tech}
	for _, run := range runs {
		for b := 0; b < microarch.NumStructures; b++ {
			if run.MaxAF[b] > wc.MaxAF[b] {
				wc.MaxAF[b] = run.MaxAF[b]
			}
			if run.MaxTempK[b] > wc.MaxTempK[b] {
				wc.MaxTempK[b] = run.MaxTempK[b]
			}
		}
		if run.MaxDieAvgTempK > wc.MaxDieAvgTempK {
			wc.MaxDieAvgTempK = run.MaxDieAvgTempK
		}
	}
	fp, err := floorplanFor(tech)
	if err != nil {
		return WorstCase{}, err
	}
	set, err := cfg.MechanismSet()
	if err != nil {
		return WorstCase{}, err
	}
	eval, err := core.NewEvaluatorForSet(cfg.RAMP, core.UnitConstants(), tech, fp.Areas(), set)
	if err != nil {
		return WorstCase{}, err
	}
	// Series-only mechanisms (tc-rainflow) have no instantaneous rate and
	// contribute 0 to the worst-case point by design.
	wc.RawFIT = eval.Instant(wc.MaxAF, wc.MaxTempK, tech.VddV, wc.MaxDieAvgTempK)
	return wc, nil
}

// SuiteAverageFIT returns the average calibrated total FIT over the runs
// of one suite (or all runs when suite is 0) at one technology index.
func (r *StudyResult) SuiteAverageFIT(ti int, suite workload.Suite) float64 {
	var sum float64
	var n int
	for _, a := range r.AppsAt(ti) {
		if suite != 0 && a.Suite != suite {
			continue
		}
		sum += r.FIT(a).Total()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MechanismNames returns the canonical names of the mechanisms the study
// evaluated, in sorted order (the paper's four when none were configured).
func (r *StudyResult) MechanismNames() []string {
	canon, err := core.CanonicalMechanismNames(r.Config.Mechanisms)
	if err != nil || canon == nil {
		return core.DefaultMechanismNames()
	}
	return canon
}

// SuiteAverageMechByName returns the suite-average calibrated
// per-mechanism FIT at one technology index, keyed by canonical mechanism
// name — the primary decomposition view, covering registry-selected
// mechanisms the fixed-array SuiteAverageMech cannot see.
func (r *StudyResult) SuiteAverageMechByName(ti int, suite workload.Suite) map[string]float64 {
	out := make(map[string]float64)
	var n int
	for _, a := range r.AppsAt(ti) {
		if suite != 0 && a.Suite != suite {
			continue
		}
		for name, fit := range r.FIT(a).FITByName() {
			out[name] += fit
		}
		n++
	}
	if n == 0 {
		return out
	}
	for name := range out {
		out[name] /= float64(n)
	}
	return out
}

// SuiteAverageMech returns the suite-average calibrated per-mechanism FIT
// at one technology index.
//
// Deprecated: SuiteAverageMech covers only the paper's four fixed-slot
// mechanisms; registry-selected mechanisms are invisible to it. Use
// SuiteAverageMechByName for the complete decomposition.
func (r *StudyResult) SuiteAverageMech(ti int, suite workload.Suite) [core.NumMechanisms]float64 {
	var out [core.NumMechanisms]float64
	var n int
	for _, a := range r.AppsAt(ti) {
		if suite != 0 && a.Suite != suite {
			continue
		}
		mech := r.FIT(a).ByMechanism()
		for m := range out {
			out[m] += mech[m]
		}
		n++
	}
	if n == 0 {
		return out
	}
	for m := range out {
		out[m] /= float64(n)
	}
	return out
}

// FITRange returns the lowest and highest calibrated application total FIT
// at one technology index.
func (r *StudyResult) FITRange(ti int) (lo, hi float64) {
	apps := r.AppsAt(ti)
	if len(apps) == 0 {
		return 0, 0
	}
	totals := make([]float64, len(apps))
	for i, a := range apps {
		totals[i] = r.FIT(a).Total()
	}
	sort.Float64s(totals)
	return totals[0], totals[len(totals)-1]
}
