package sim

import (
	"context"

	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/store"
	"github.com/ramp-sim/ramp/internal/workload"
)

// StageCacheOptions bounds a StageCache.
type StageCacheOptions struct {
	// MaxEntries bounds each stage's in-memory LRU (default 256 per
	// stage). Thermal artifacts are the largest — roughly 130 bytes per
	// simulated microsecond per cell.
	MaxEntries int
	// Dir, when non-empty, spills encoded artifacts under it
	// (Dir/timing, Dir/thermal, Dir/fit) so later processes start warm.
	Dir string
	// Observer, when non-nil, receives one store.Event per cache
	// operation across all three stage stores; Event.Store carries the
	// stage name ("timing", "thermal", "fit"). It is called from
	// simulation worker goroutines and must be safe for concurrent use.
	Observer func(store.Event)
}

// StageCache is the content-addressed artifact cache of the staged study
// pipeline: one store per stage, keyed by TimingKey / ThermalKey / FITKey.
// A nil *StageCache disables caching everywhere it is accepted.
//
// Consistency is structural: artifacts are only ever inserted complete
// (a cancelled stage returns an error and stores nothing), and a key
// change in any upstream input changes the downstream keys, so stale
// reuse is impossible without hash collision.
type StageCache struct {
	timing  *store.Store[*ActivityTrace]
	thermal *store.Store[*ThermalSeries]
	fit     *store.Store[*AppRun]
}

// NewStageCache builds the three per-stage stores.
func NewStageCache(opts StageCacheOptions) (*StageCache, error) {
	so := store.Options{MaxEntries: opts.MaxEntries, Dir: opts.Dir, Observer: opts.Observer}
	timing, err := store.New("timing", so, store.JSONCodec[*ActivityTrace]())
	if err != nil {
		return nil, err
	}
	thermal, err := store.New("thermal", so, store.JSONCodec[*ThermalSeries]())
	if err != nil {
		return nil, err
	}
	fit, err := store.New("fit", so, store.JSONCodec[*AppRun]())
	if err != nil {
		return nil, err
	}
	return &StageCache{timing: timing, thermal: thermal, fit: fit}, nil
}

// StageCacheStats snapshots all three stores.
type StageCacheStats struct {
	Timing, Thermal, FIT store.Stats
}

// Stats returns a consistent-enough snapshot for observability (each
// store is snapshotted atomically; the three reads are not mutually
// atomic).
func (c *StageCache) Stats() StageCacheStats {
	return StageCacheStats{
		Timing:  c.timing.Stats(),
		Thermal: c.thermal.Stats(),
		FIT:     c.fit.Stats(),
	}
}

// Cell provenance labels reported through StudyOptions.OnApp: how a
// completed (profile × technology) cell was produced.
const (
	// CellFromFITCache means the finished AppRun was served whole.
	CellFromFITCache = "fit-cache"
	// CellFromThermalCache means the thermal series was reused and only
	// the reliability stage ran.
	CellFromThermalCache = "thermal-cache"
	// CellComputed means the thermal (and possibly timing) stage ran.
	CellComputed = "computed"
)

// RunTimingCachedContext is RunTimingContext through a stage cache: a hit
// on the profile's timing key skips the simulation entirely. cache may be
// nil.
func RunTimingCachedContext(ctx context.Context, cfg Config, prof workload.Profile,
	cache *StageCache) (*ActivityTrace, error) {
	ctx, sp := obs.StartSpan(ctx, obs.SpanTiming)
	sp.SetAttr("app", prof.Name)
	defer sp.Finish()
	if cache == nil {
		return RunTimingContext(ctx, cfg, prof)
	}
	key, err := TimingKey(cfg, prof)
	if err != nil {
		return nil, err
	}
	if tr, ok := cacheGet(ctx, cache.timing, StageTiming, key); ok {
		sp.SetAttr("cache", "hit")
		return tr, nil
	}
	sp.SetAttr("cache", "miss")
	tr, err := RunTimingContext(ctx, cfg, prof)
	if err != nil {
		return nil, err
	}
	cachePut(ctx, cache.timing, StageTiming, key, tr)
	return tr, nil
}

// cacheGet wraps one stage-store lookup in a store.get span carrying the
// stage and its hit/miss result.
func cacheGet[T any](ctx context.Context, st *store.Store[T], stage, key string) (T, bool) {
	_, sp := obs.StartSpan(ctx, obs.SpanCacheGet)
	v, ok := st.Get(key)
	if sp != nil {
		sp.SetAttr("stage", stage)
		if ok {
			sp.SetAttr("result", "hit")
		} else {
			sp.SetAttr("result", "miss")
		}
		sp.Finish()
	}
	return v, ok
}

// cachePut wraps one stage-store insert in a store.put span carrying the
// stage and whether the artifact was spilled to disk.
func cachePut[T any](ctx context.Context, st *store.Store[T], stage, key string, v T) {
	_, sp := obs.StartSpan(ctx, obs.SpanCachePut)
	info := st.Put(key, v)
	if sp != nil {
		sp.SetAttr("stage", stage)
		if info.Spilled {
			sp.SetAttr("spilled", "true")
		}
		sp.Finish()
	}
}

// cellKeys derives both per-cell keys once.
func cellKeys(cfg Config, prof workload.Profile, tech scaling.Technology) (thermalKey, fitKey string, err error) {
	thermalKey, err = ThermalKey(cfg, prof, tech)
	if err != nil {
		return "", "", err
	}
	in, err := fitInputsFor(cfg, thermalKey)
	if err != nil {
		return "", "", err
	}
	fitKey, err = hashKey(in)
	return thermalKey, fitKey, err
}
