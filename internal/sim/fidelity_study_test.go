package sim

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/workload"
)

// TestPhaseStudyParallelismDeterminism extends the determinism contract to
// phase mode: sampling and coarse integration are pure functions of the
// inputs, so the scheduler may reorder cells but never change a byte of
// the result.
func TestPhaseStudyParallelismDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	cfg := testConfig()
	cfg.Instructions = 100_000
	cfg.Fidelity = &Fidelity{Mode: FidelityPhase}
	profiles := testProfiles(t)
	techs := scaling.Generations()[:3]

	runAt := func(parallelism int) []byte {
		t.Helper()
		res, err := RunStudyContext(context.Background(), cfg, profiles, techs,
			StudyOptions{Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if string(runAt(1)) != string(runAt(8)) {
		t.Error("phase-mode StudyResult not byte-identical across parallelism levels")
	}
}

// TestPhaseStudyAccuracy is the regression bound behind the fidelity
// framework's accuracy claim: across every built-in profile and every
// Table 4 technology point, the phase-mode calibrated SOFR MTTF stays
// within documented bounds of the exact result. Study self-calibration
// (§4.4) runs independently per fidelity, so the bounds cover the
// end-to-end pipeline — sampling, statistical warming, and coarse
// integration included.
//
// The bounds are the phase-mode error contract at this short trace length
// (200k instructions, where sampling keeps only ~56k):
//
//   - per-cell SOFR MTTF within 3% (measured worst ~1.5%, at the
//     temperature-hypersensitive 65nm point of branchy SPECint profiles);
//   - grid-mean deviation within 1% (measured ~0.5%);
//   - per-tech worst-case (§5.2) MTTF within 6%: the worst case is a
//     maximum statistic, and a sampled trace takes its max over ~10× fewer
//     samples, so it is intrinsically softer than the time-average SOFR
//     numbers.
//
// The headline ≤1% claim is made where phase mode is meant to run — long
// traces on the benchmark application set — and is enforced in CI by
// bench/coldstudy at 2M instructions.
func TestPhaseStudyAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid exact study is slow; skipped with -short")
	}
	cfg := testConfig()
	profiles := workload.Profiles()
	techs := scaling.Generations()

	run := func(fd *Fidelity) *StudyResult {
		t.Helper()
		c := cfg
		c.Fidelity = fd
		res, err := RunStudyContext(context.Background(), c, profiles, techs, StudyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	exact := run(nil)
	phase := run(&Fidelity{Mode: FidelityPhase})

	if len(exact.Apps) != len(phase.Apps) {
		t.Fatalf("grid sizes differ: %d vs %d", len(exact.Apps), len(phase.Apps))
	}
	var worstDev, sumDev float64
	var worstCell string
	for i := range exact.Apps {
		e, p := exact.Apps[i], phase.Apps[i]
		if e.App != p.App || e.Tech.Name != p.Tech.Name {
			t.Fatalf("grid order differs at %d: %s@%s vs %s@%s",
				i, e.App, e.Tech.Name, p.App, p.Tech.Name)
		}
		em := exact.FIT(e).MTTFYears()
		pm := phase.FIT(p).MTTFYears()
		dev := math.Abs(pm-em) / em
		sumDev += dev
		if dev > worstDev {
			worstDev, worstCell = dev, e.App+"@"+e.Tech.Name
		}
	}
	meanDev := sumDev / float64(len(exact.Apps))
	t.Logf("SOFR-MTTF deviation: max %.3f%% at %s, mean %.3f%%",
		100*worstDev, worstCell, 100*meanDev)
	if worstDev > 0.03 {
		t.Errorf("phase-mode SOFR MTTF deviates %.3f%% at %s, bound is 3%%",
			100*worstDev, worstCell)
	}
	if meanDev > 0.01 {
		t.Errorf("phase-mode grid-mean SOFR MTTF deviation %.3f%%, bound is 1%%",
			100*meanDev)
	}

	// The §5.2 worst-case analysis rides the same artifacts but keys on
	// trajectory maxima, which sampling estimates from far fewer points.
	for i := range exact.Worst {
		em := exact.WorstFIT(i).MTTFYears()
		pm := phase.WorstFIT(i).MTTFYears()
		if dev := math.Abs(pm-em) / em; dev > 0.06 {
			t.Errorf("worst-case MTTF deviates %.3f%% at %s, bound is 6%%",
				100*dev, exact.Techs[i].Name)
		}
	}
}
