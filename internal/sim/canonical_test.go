package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/workload"
)

// TestCanonicalJSONFieldOrderStability proves that struct field declaration
// order does not leak into the canonical encoding: two types carrying the
// same JSON object in different field orders encode identically.
func TestCanonicalJSONFieldOrderStability(t *testing.T) {
	type ab struct {
		Alpha float64 `json:"alpha"`
		Beta  string  `json:"beta"`
		Gamma int     `json:"gamma"`
	}
	type ba struct {
		Gamma int     `json:"gamma"`
		Beta  string  `json:"beta"`
		Alpha float64 `json:"alpha"`
	}
	x, err := CanonicalJSON(ab{Alpha: 0.1, Beta: "b", Gamma: 7})
	if err != nil {
		t.Fatal(err)
	}
	y, err := CanonicalJSON(ba{Alpha: 0.1, Beta: "b", Gamma: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(x, y) {
		t.Errorf("field order changed the canonical encoding:\n%s\n%s", x, y)
	}
	// Keys must come out sorted regardless of either declaration order.
	want := `{"alpha":0.1,"beta":"b","gamma":7}`
	if string(x) != want {
		t.Errorf("canonical form = %s, want %s", x, want)
	}
}

// TestCanonicalJSONRoundTripStability checks that decoding a canonical
// encoding into a generic map and re-canonicalising is a fixed point, for
// the real study inputs (Config, Profile, Technology) with their float
// parameters.
func TestCanonicalJSONRoundTripStability(t *testing.T) {
	for _, v := range []any{
		DefaultConfig(),
		workload.Profiles(),
		scaling.Generations(),
	} {
		first, err := CanonicalJSON(v)
		if err != nil {
			t.Fatal(err)
		}
		var generic any
		if err := json.Unmarshal(first, &generic); err != nil {
			t.Fatal(err)
		}
		second, err := CanonicalJSON(generic)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("canonical encoding is not a round-trip fixed point:\n%s\n%s", first, second)
		}
	}
}

// TestStudyKeyStability pins key determinism and input sensitivity.
func TestStudyKeyStability(t *testing.T) {
	cfg := DefaultConfig()
	profiles := workload.Profiles()[:2]
	techs := scaling.Generations()[:2]

	k1, err := StudyKey(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := StudyKey(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("identical requests hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Errorf("key %q is not a hex SHA-256", k1)
	}

	cfg2 := cfg
	cfg2.Instructions++
	kCfg, err := StudyKey(cfg2, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	if kCfg == k1 {
		t.Error("changing Config.Instructions did not change the key")
	}

	kProf, err := StudyKey(cfg, profiles[:1], techs)
	if err != nil {
		t.Fatal(err)
	}
	if kProf == k1 {
		t.Error("changing the profile set did not change the key")
	}

	kTech, err := StudyKey(cfg, profiles, techs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if kTech == k1 {
		t.Error("changing the technology set did not change the key")
	}
}
