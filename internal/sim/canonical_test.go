package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/workload"
)

// TestCanonicalJSONFieldOrderStability proves that struct field declaration
// order does not leak into the canonical encoding: two types carrying the
// same JSON object in different field orders encode identically.
func TestCanonicalJSONFieldOrderStability(t *testing.T) {
	type ab struct {
		Alpha float64 `json:"alpha"`
		Beta  string  `json:"beta"`
		Gamma int     `json:"gamma"`
	}
	type ba struct {
		Gamma int     `json:"gamma"`
		Beta  string  `json:"beta"`
		Alpha float64 `json:"alpha"`
	}
	x, err := CanonicalJSON(ab{Alpha: 0.1, Beta: "b", Gamma: 7})
	if err != nil {
		t.Fatal(err)
	}
	y, err := CanonicalJSON(ba{Alpha: 0.1, Beta: "b", Gamma: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(x, y) {
		t.Errorf("field order changed the canonical encoding:\n%s\n%s", x, y)
	}
	// Keys must come out sorted regardless of either declaration order.
	want := `{"alpha":0.1,"beta":"b","gamma":7}`
	if string(x) != want {
		t.Errorf("canonical form = %s, want %s", x, want)
	}
}

// TestCanonicalJSONRoundTripStability checks that decoding a canonical
// encoding into a generic map and re-canonicalising is a fixed point, for
// the real study inputs (Config, Profile, Technology) with their float
// parameters.
func TestCanonicalJSONRoundTripStability(t *testing.T) {
	for _, v := range []any{
		DefaultConfig(),
		workload.Profiles(),
		scaling.Generations(),
	} {
		first, err := CanonicalJSON(v)
		if err != nil {
			t.Fatal(err)
		}
		var generic any
		if err := json.Unmarshal(first, &generic); err != nil {
			t.Fatal(err)
		}
		second, err := CanonicalJSON(generic)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("canonical encoding is not a round-trip fixed point:\n%s\n%s", first, second)
		}
	}
}

// TestStudyKeyStability pins key determinism and input sensitivity.
func TestStudyKeyStability(t *testing.T) {
	cfg := DefaultConfig()
	profiles := workload.Profiles()[:2]
	techs := scaling.Generations()[:2]

	k1, err := StudyKey(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := StudyKey(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("identical requests hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Errorf("key %q is not a hex SHA-256", k1)
	}

	cfg2 := cfg
	cfg2.Instructions++
	kCfg, err := StudyKey(cfg2, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	if kCfg == k1 {
		t.Error("changing Config.Instructions did not change the key")
	}

	kProf, err := StudyKey(cfg, profiles[:1], techs)
	if err != nil {
		t.Fatal(err)
	}
	if kProf == k1 {
		t.Error("changing the profile set did not change the key")
	}

	kTech, err := StudyKey(cfg, profiles, techs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if kTech == k1 {
		t.Error("changing the technology set did not change the key")
	}
}

// TestStageKeyInvalidation pins the stage-cache contract of the staged
// pipeline: a reliability-only constant change (EM activation energy) must
// leave the timing and thermal stage keys untouched — those artifacts are
// reusable — while invalidating the reliability key and the whole-study
// key; a trace-length change must invalidate every stage.
func TestStageKeyInvalidation(t *testing.T) {
	cfg := DefaultConfig()
	prof := workload.Profiles()[0]
	tech := scaling.Generations()[1]

	keys := func(c Config) (timing, thermal, fit string) {
		var err error
		if timing, err = TimingKey(c, prof); err != nil {
			t.Fatal(err)
		}
		if thermal, err = ThermalKey(c, prof, tech); err != nil {
			t.Fatal(err)
		}
		if fit, err = FITKey(c, prof, tech); err != nil {
			t.Fatal(err)
		}
		return timing, thermal, fit
	}
	baseTiming, baseThermal, baseFIT := keys(cfg)

	// Reliability-only change: EM activation energy.
	em := cfg
	em.RAMP.EM.ActivationEnergyEV += 0.05
	emTiming, emThermal, emFIT := keys(em)
	if emTiming != baseTiming {
		t.Errorf("EM constant change invalidated the timing key")
	}
	if emThermal != baseThermal {
		t.Errorf("EM constant change invalidated the thermal key")
	}
	if emFIT == baseFIT {
		t.Errorf("EM constant change did not invalidate the reliability key")
	}
	k0, err := StudyKey(cfg, []workload.Profile{prof}, scaling.Generations()[:2])
	if err != nil {
		t.Fatal(err)
	}
	k1, err := StudyKey(em, []workload.Profile{prof}, scaling.Generations()[:2])
	if err != nil {
		t.Fatal(err)
	}
	if k0 == k1 {
		t.Errorf("EM constant change did not invalidate the study key")
	}

	// Trace-length change: everything must move.
	longer := cfg
	longer.Instructions *= 2
	lTiming, lThermal, lFIT := keys(longer)
	if lTiming == baseTiming || lThermal == baseThermal || lFIT == baseFIT {
		t.Errorf("trace-length change left a stage key unchanged: timing %v thermal %v fit %v",
			lTiming == baseTiming, lThermal == baseThermal, lFIT == baseFIT)
	}

	// Qualification budget: applied at assembly, part of no per-cell stage.
	qual := cfg
	qual.QualFITPerMechanism *= 2
	qTiming, qThermal, qFIT := keys(qual)
	if qTiming != baseTiming || qThermal != baseThermal || qFIT != baseFIT {
		t.Errorf("qualification budget leaked into a per-cell stage key")
	}
}

// TestStageKeyTechSensitivity: the thermal and reliability keys are
// per-cell, so a different technology point must produce different keys
// while the shared timing key stays put.
func TestStageKeyTechSensitivity(t *testing.T) {
	cfg := DefaultConfig()
	prof := workload.Profiles()[0]
	gens := scaling.Generations()
	th0, err := ThermalKey(cfg, prof, gens[0])
	if err != nil {
		t.Fatal(err)
	}
	th1, err := ThermalKey(cfg, prof, gens[1])
	if err != nil {
		t.Fatal(err)
	}
	if th0 == th1 {
		t.Errorf("thermal key identical across technology points")
	}
	f0, err := FITKey(cfg, prof, gens[0])
	if err != nil {
		t.Fatal(err)
	}
	f1, err := FITKey(cfg, prof, gens[1])
	if err != nil {
		t.Fatal(err)
	}
	if f0 == f1 {
		t.Errorf("reliability key identical across technology points")
	}
}
