package sim

import (
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/workload"
)

// FuzzConfigValidate perturbs the numeric knobs of Config around the
// default machine. Validation must never panic, and a configuration it
// accepts must survive a short timing run — errors allowed, panics not.
func FuzzConfigValidate(f *testing.F) {
	d := DefaultConfig()
	f.Add(d.Instructions, d.QualFITPerMechanism,
		d.Machine.ROBSize, d.Machine.FetchWidth, d.Machine.IssueWidth,
		d.Machine.MemQueueSize, d.Machine.L2Lat)
	f.Add(int64(2000), 1000.0, 64, 4, 6, 16, 12)
	// Hostile numerics: zero/negative sizes, NaN and Inf targets.
	f.Add(int64(0), math.NaN(), 0, -1, 0, -8, 0)
	f.Add(int64(-5), math.Inf(1), 152, 8, 8, 32, 12)
	f.Add(int64(1000), -1000.0, 1, 1, 1, 1, 1)

	f.Fuzz(func(t *testing.T, instructions int64, qualFIT float64,
		robSize, fetchWidth, issueWidth, memQueue, l2Lat int) {
		cfg := DefaultConfig()
		cfg.Instructions = instructions
		cfg.QualFITPerMechanism = qualFIT
		cfg.Machine.ROBSize = robSize
		cfg.Machine.FetchWidth = fetchWidth
		cfg.Machine.IssueWidth = issueWidth
		cfg.Machine.MemQueueSize = memQueue
		cfg.Machine.L2Lat = l2Lat
		if err := cfg.Validate(); err != nil {
			if err2 := cfg.Validate(); err2 == nil {
				t.Fatal("Validate not deterministic: error then nil")
			}
			return
		}
		// Smoke-run accepted configurations that stay small enough for a
		// fuzz iteration; oversized-but-valid machines are legal, just slow.
		if instructions > 5000 || robSize > 4096 || fetchWidth > 64 ||
			issueWidth > 64 || memQueue > 4096 || l2Lat > 1000 {
			return
		}
		prof, err := workload.ByName("gzip")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunTiming(cfg, prof); err != nil {
			t.Fatalf("accepted config failed to simulate: %v", err)
		}
	})
}
