package sim

import (
	"math"
	"strings"
	"testing"

	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/workload"
)

func TestFidelityValidate(t *testing.T) {
	var nilF *Fidelity
	if err := nilF.Validate(); err != nil {
		t.Errorf("nil fidelity (exact) rejected: %v", err)
	}
	valid := []Fidelity{
		{},
		{Mode: FidelityExact},
		{Mode: FidelityAdaptive},
		{Mode: FidelityPhase},
		{Mode: FidelityPhase, PhaseEpsilonAF: 0.1, ThermalTolK: 1,
			SampleWindowInstrs: 1000, SamplePeriodInstrs: 5000},
	}
	for _, f := range valid {
		f := f
		if err := f.Validate(); err != nil {
			t.Errorf("valid fidelity %+v rejected: %v", f, err)
		}
	}
	invalid := []Fidelity{
		{Mode: "fast"},
		{PhaseEpsilonAF: -0.1},
		{PhaseEpsilonAF: 2},
		{PhaseEpsilonAF: math.NaN()},
		{ThermalTolK: -1},
		{ThermalTolK: math.Inf(1)},
		{SampleWindowInstrs: -1},
		{SampleWindowInstrs: 10_000, SamplePeriodInstrs: 5_000},
	}
	for _, f := range invalid {
		f := f
		if err := f.Validate(); err == nil {
			t.Errorf("invalid fidelity %+v accepted", f)
		}
	}

	// Config.Validate must reject a bad fidelity too.
	cfg := DefaultConfig()
	cfg.Fidelity = &Fidelity{Mode: "fast"}
	if err := cfg.Validate(); err == nil {
		t.Error("config with unknown fidelity mode accepted")
	}
}

func TestFidelityNorm(t *testing.T) {
	var nilF *Fidelity
	n := nilF.norm()
	if n.Mode != FidelityExact {
		t.Errorf("nil fidelity normalised to %q, want exact", n.Mode)
	}
	n = (&Fidelity{Mode: FidelityPhase}).norm()
	if n.PhaseEpsilonAF <= 0 || n.ThermalTolK <= 0 ||
		n.SampleWindowInstrs <= 0 || n.SamplePeriodInstrs < n.SampleWindowInstrs {
		t.Errorf("norm left defaults unfilled: %+v", n)
	}
}

func TestParseFidelityMode(t *testing.T) {
	for _, mode := range []string{"", "exact"} {
		f, err := ParseFidelityMode(mode)
		if err != nil || f != nil {
			t.Errorf("ParseFidelityMode(%q) = %v, %v; want nil, nil", mode, f, err)
		}
	}
	f, err := ParseFidelityMode("phase")
	if err != nil || f == nil || f.Mode != FidelityPhase {
		t.Errorf("ParseFidelityMode(phase) = %v, %v", f, err)
	}
	if _, err := ParseFidelityMode("turbo"); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestFidelityKeyInvalidation pins the acceptance contract: fidelity mode
// participates in every stage, study, and MC key, so a cached result from
// one mode can never be served for another. Exact and adaptive share
// timing artifacts deliberately (identical full simulation); every other
// pair of keys differs.
func TestFidelityKeyInvalidation(t *testing.T) {
	prof := workload.Profiles()[0]
	tech := scaling.Generations()[1]
	profiles := workload.Profiles()[:2]
	techs := scaling.Generations()[:2]
	mcfg := MCConfig{}.Normalized()

	type keySet struct{ timing, thermal, fit, study, mc string }
	keys := func(f *Fidelity) keySet {
		cfg := DefaultConfig()
		cfg.Fidelity = f
		var ks keySet
		var err error
		if ks.timing, err = TimingKey(cfg, prof); err != nil {
			t.Fatal(err)
		}
		if ks.thermal, err = ThermalKey(cfg, prof, tech); err != nil {
			t.Fatal(err)
		}
		if ks.fit, err = FITKey(cfg, prof, tech); err != nil {
			t.Fatal(err)
		}
		if ks.study, err = StudyKey(cfg, profiles, techs); err != nil {
			t.Fatal(err)
		}
		if ks.mc, err = MCStudyKey(cfg, mcfg, profiles, techs); err != nil {
			t.Fatal(err)
		}
		return ks
	}

	exact := keys(nil)
	adaptive := keys(&Fidelity{Mode: FidelityAdaptive})
	phase := keys(&Fidelity{Mode: FidelityPhase})

	// Timing: exact and adaptive run the identical full simulation and
	// share the artifact; phase samples the stream, so it must differ.
	if exact.timing != adaptive.timing {
		t.Error("exact and adaptive timing keys differ; they run the same simulation")
	}
	if phase.timing == exact.timing {
		t.Error("phase mode did not invalidate the timing key")
	}

	// Thermal and FIT: all three modes must be distinct.
	for _, pair := range [][2]string{
		{exact.thermal, adaptive.thermal},
		{exact.thermal, phase.thermal},
		{adaptive.thermal, phase.thermal},
		{exact.fit, adaptive.fit},
		{exact.fit, phase.fit},
		{adaptive.fit, phase.fit},
		{exact.study, adaptive.study},
		{exact.study, phase.study},
		{adaptive.study, phase.study},
		{exact.mc, adaptive.mc},
		{exact.mc, phase.mc},
		{adaptive.mc, phase.mc},
	} {
		if pair[0] == pair[1] {
			t.Errorf("fidelity modes share a cache key: %s", pair[0])
		}
	}

	// Tuning participates too: a different sampling geometry or error
	// tolerance is a different computation.
	window := keys(&Fidelity{Mode: FidelityPhase, SampleWindowInstrs: 2_000, SamplePeriodInstrs: 20_000})
	if window.timing == phase.timing || window.thermal == phase.thermal {
		t.Error("sampling geometry change did not invalidate keys")
	}
	tol := keys(&Fidelity{Mode: FidelityAdaptive, ThermalTolK: 0.5})
	if tol.thermal == adaptive.thermal || tol.fit == adaptive.fit {
		t.Error("thermal tolerance change did not invalidate thermal/FIT keys")
	}
	eps := keys(&Fidelity{Mode: FidelityAdaptive, PhaseEpsilonAF: 0.1})
	if eps.thermal == adaptive.thermal {
		t.Error("phase epsilon change did not invalidate the thermal key")
	}
	// ...but tuning that the stage ignores must not churn its key: the
	// timing stage never reads the thermal tolerance.
	if tol.timing != exact.timing {
		t.Error("thermal tolerance change invalidated the timing key")
	}
}

// TestFidelityKeyPrePRCompat pins exact-mode byte compatibility: a nil
// fidelity must marshal to JSON without any fidelity field, so every
// content-addressed key equals what releases predating the field computed.
func TestFidelityKeyPrePRCompat(t *testing.T) {
	cfg := DefaultConfig()
	b, err := CanonicalJSON(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.ToLower(string(b)), "fidelity") {
		t.Errorf("nil fidelity leaked into the canonical config encoding:\n%s", b)
	}
}
