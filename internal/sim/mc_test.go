package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/phys"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/workload"
)

// mcStubStudy fabricates a finished study grid without running the
// simulator: nApps × nTechs cells with distinct positive FIT breakdowns
// under unit calibration constants. MC layers only read Apps, FIT, and the
// cell identities, so this isolates the Monte Carlo machinery.
func mcStubStudy(nApps, nTechs int) *StudyResult {
	res := &StudyResult{Constants: core.UnitConstants()}
	for ti := 0; ti < nTechs; ti++ {
		res.Techs = append(res.Techs, scaling.Technology{Name: fmt.Sprintf("tech%d", ti)})
	}
	for ti := 0; ti < nTechs; ti++ {
		for i := 0; i < nApps; i++ {
			var b core.Breakdown
			b.ByStructMech[0][core.EM] = 500 + 100*float64(i) + 50*float64(ti)
			b.ByStructMech[1][core.TDDB] = 300 + 10*float64(i)
			b.ByStructMech[2][core.TC] = 150
			res.Apps = append(res.Apps, AppRun{
				App:    fmt.Sprintf("app%d", i),
				Suite:  workload.SuiteInt,
				Tech:   res.Techs[ti],
				RawFIT: b,
			})
		}
	}
	return res
}

func TestMCConfigNormalized(t *testing.T) {
	n := MCConfig{}.Normalized()
	if n.Samples != DefaultMCSamples || n.Model != core.ModelWearOut ||
		n.CILevel != 0.95 || n.BatchSize != defaultMCBatch {
		t.Errorf("defaults wrong: %+v", n)
	}
	if !reflect.DeepEqual(n.Percentiles, []float64{5, 50, 95}) {
		t.Errorf("default percentiles = %v", n.Percentiles)
	}
	alias := MCConfig{Model: "wear-out", Percentiles: []float64{95, 5, 50, 5}}.Normalized()
	if alias.Model != core.ModelWearOut {
		t.Errorf("alias model = %q", alias.Model)
	}
	if !reflect.DeepEqual(alias.Percentiles, []float64{5, 50, 95}) {
		t.Errorf("percentiles not sorted+deduped: %v", alias.Percentiles)
	}
	exp := MCConfig{Model: "exponential"}.Normalized()
	if exp.Model != core.ModelSOFR {
		t.Errorf("exponential alias = %q", exp.Model)
	}
	// Normalized is idempotent.
	if !reflect.DeepEqual(alias, alias.Normalized()) {
		t.Error("Normalized not idempotent")
	}
}

func TestMCConfigValidate(t *testing.T) {
	if err := (MCConfig{}).Normalized().Validate(); err != nil {
		t.Fatalf("normalized zero config invalid: %v", err)
	}
	bad := []MCConfig{
		{Samples: -1},
		{Samples: MaxMCSamples + 1},
		{Model: "gamma"},
		{Percentiles: []float64{0}},
		{Percentiles: []float64{100}},
		{Percentiles: []float64{-5}},
		{Percentiles: []float64{math.NaN()}},
		{CILevel: 1.5},
		{CILevel: -0.5},
		{BatchSize: -3},
	}
	for _, c := range bad {
		if err := c.Normalized().Validate(); err == nil {
			t.Errorf("Validate accepted %+v", c)
		}
	}
	long := make([]float64, MaxMCPercentiles+1)
	for i := range long {
		long[i] = float64(i+1) * 99.0 / float64(len(long)+1)
	}
	if err := (MCConfig{Percentiles: long}).Normalized().Validate(); err == nil {
		t.Error("Validate accepted oversized percentile list")
	}
}

func runMC(t *testing.T, res *StudyResult, mcfg MCConfig, opts MCOptions) *MCResult {
	t.Helper()
	out, err := MonteCarloStudy(context.Background(), res, mcfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMonteCarloStudyDeterministicAcrossParallelismAndBatch(t *testing.T) {
	res := mcStubStudy(3, 2)
	base := MCConfig{Samples: 5000, Seed: 42, Model: "wearout"}

	ref := runMC(t, res, base, MCOptions{Parallelism: 1})
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		mcfg MCConfig
		opts MCOptions
	}{
		{"parallelism 8", base, MCOptions{Parallelism: 8}},
		{"batch 7", MCConfig{Samples: 5000, Seed: 42, Model: "wearout", BatchSize: 7}, MCOptions{Parallelism: 8}},
		{"batch 100000", MCConfig{Samples: 5000, Seed: 42, Model: "wearout", BatchSize: 100000}, MCOptions{Parallelism: 8}},
		{"with events", base, MCOptions{Parallelism: 8, OnEvent: func(MCEvent) {}}},
	}
	for _, v := range variants {
		got := runMC(t, res, v.mcfg, v.opts)
		// BatchSize is echoed in MC, so compare everything but the config.
		if !reflect.DeepEqual(ref.Cells, got.Cells) {
			t.Errorf("%s: cells differ from parallelism-1 reference", v.name)
		}
		if v.mcfg.BatchSize == 0 {
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(refJSON) != string(gotJSON) {
				t.Errorf("%s: JSON bytes differ", v.name)
			}
		}
	}
	// A different seed must change the draw.
	other := runMC(t, res, MCConfig{Samples: 5000, Seed: 43, Model: "wearout"}, MCOptions{Parallelism: 4})
	if reflect.DeepEqual(ref.Cells, other.Cells) {
		t.Error("different seed produced identical cells")
	}
}

func TestMonteCarloStudyClosedFormExponential(t *testing.T) {
	// One cell, one positive mechanism, exponential model: the lifetime is
	// exactly exponential with mean 10⁹/FIT hours, so the sample summary
	// must bound the analytic mean and quantiles.
	const fit = 1000.0
	res := &StudyResult{
		Constants: core.UnitConstants(),
		Techs:     []scaling.Technology{{Name: "t"}},
	}
	var b core.Breakdown
	b.ByStructMech[0][core.EM] = fit
	res.Apps = []AppRun{{App: "a", Suite: workload.SuiteInt, Tech: res.Techs[0], RawFIT: b}}

	meanYears := phys.MTTFHoursFromFIT(fit) / phys.HoursPerYear
	out := runMC(t, res, MCConfig{
		Samples: 200_000, Seed: 7, Model: "sofr",
		Percentiles: []float64{10, 50, 90}, CILevel: 0.99,
	}, MCOptions{Parallelism: 4})

	cell := out.Cells[0]
	if cell.MeanCI.Lo > meanYears || cell.MeanCI.Hi < meanYears {
		t.Errorf("mean CI [%v,%v] misses analytic mean %v", cell.MeanCI.Lo, cell.MeanCI.Hi, meanYears)
	}
	if rel := math.Abs(cell.MeanYears-meanYears) / meanYears; rel > 0.01 {
		t.Errorf("mean %v vs analytic %v (rel err %v)", cell.MeanYears, meanYears, rel)
	}
	if math.Abs(cell.SOFRYears-meanYears)/meanYears > 1e-9 {
		t.Errorf("SOFRYears %v != analytic %v", cell.SOFRYears, meanYears)
	}
	exp := core.Exponential{}
	for _, mp := range cell.Percentiles {
		want := exp.Quantile(meanYears, mp.P/100)
		if rel := math.Abs(mp.Years-want) / want; rel > 0.02 {
			t.Errorf("P%v = %v vs analytic %v (rel err %v)", mp.P, mp.Years, want, rel)
		}
		if mp.CI.Lo > want || mp.CI.Hi < want {
			t.Errorf("P%v CI [%v,%v] misses analytic %v", mp.P, mp.CI.Lo, mp.CI.Hi, want)
		}
	}
}

func TestMonteCarloStudyConvergence(t *testing.T) {
	// 16× the replicas must shrink the median's CI width ~4× (1/√n).
	res := mcStubStudy(1, 1)
	width := func(samples int) float64 {
		out := runMC(t, res, MCConfig{Samples: samples, Seed: 11, Percentiles: []float64{50}},
			MCOptions{Parallelism: 4})
		return out.Cells[0].Percentiles[0].CI.Width()
	}
	w1, w2 := width(4000), width(64000)
	ratio := w1 / w2
	if ratio < 2.2 || ratio > 7.5 {
		t.Errorf("median CI width ratio %v outside [2.2,7.5] (w1=%v w2=%v)", ratio, w1, w2)
	}
	// The mean CI obeys exact 1/√n scaling up to sample-std noise.
	meanWidth := func(samples int) float64 {
		out := runMC(t, res, MCConfig{Samples: samples, Seed: 11}, MCOptions{Parallelism: 4})
		return out.Cells[0].MeanCI.Width()
	}
	mRatio := meanWidth(4000) / meanWidth(64000)
	if mRatio < 3.2 || mRatio > 4.8 {
		t.Errorf("mean CI width ratio %v outside [3.2,4.8]", mRatio)
	}
}

func TestMonteCarloStudyEvents(t *testing.T) {
	res := mcStubStudy(2, 2)
	var mu sync.Mutex
	var progress, finals []MCEvent
	out := runMC(t, res, MCConfig{Samples: 2000, Seed: 5, BatchSize: 256}, MCOptions{
		Parallelism: 4,
		OnEvent: func(ev MCEvent) {
			mu.Lock()
			defer mu.Unlock()
			if ev.Final {
				finals = append(finals, ev)
			} else {
				progress = append(progress, ev)
			}
		},
	})
	if len(finals) != len(res.Apps) {
		t.Fatalf("%d final events, want %d", len(finals), len(res.Apps))
	}
	seen := map[int]bool{}
	for _, ev := range finals {
		if seen[ev.CellIndex] {
			t.Errorf("cell %d finalised twice", ev.CellIndex)
		}
		seen[ev.CellIndex] = true
		if !reflect.DeepEqual(ev.Cell, out.Cells[ev.CellIndex]) {
			t.Errorf("final event for cell %d differs from result", ev.CellIndex)
		}
		if ev.CellsTotal != len(res.Apps) {
			t.Errorf("CellsTotal = %d, want %d", ev.CellsTotal, len(res.Apps))
		}
	}
	if len(progress) == 0 {
		t.Error("no incremental estimates for a multi-batch run")
	}
	for _, ev := range progress {
		if ev.Cell.Samples <= 0 || ev.Cell.Samples >= 2000 {
			t.Errorf("progress estimate with %d samples", ev.Cell.Samples)
		}
		if len(ev.Cell.Percentiles) == 0 {
			t.Error("progress estimate without percentiles")
		}
	}
}

func TestMonteCarloStudyCancel(t *testing.T) {
	res := mcStubStudy(2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MonteCarloStudy(ctx, res, MCConfig{Samples: 100000, BatchSize: 64}, MCOptions{Parallelism: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMonteCarloStudyErrors(t *testing.T) {
	if _, err := MonteCarloStudy(context.Background(), nil, MCConfig{}, MCOptions{}); err == nil {
		t.Error("nil study accepted")
	}
	empty := &StudyResult{Constants: core.UnitConstants()}
	if _, err := MonteCarloStudy(context.Background(), empty, MCConfig{}, MCOptions{}); err == nil {
		t.Error("empty grid accepted")
	}
	res := mcStubStudy(1, 1)
	if _, err := MonteCarloStudy(context.Background(), res, MCConfig{Model: "gamma"}, MCOptions{}); err == nil {
		t.Error("unknown model accepted")
	}
	// A cell with no positive rates must fail with the cell's identity.
	zero := mcStubStudy(1, 1)
	zero.Apps[0].RawFIT = core.Breakdown{}
	_, err := MonteCarloStudy(context.Background(), zero, MCConfig{}, MCOptions{})
	if err == nil {
		t.Error("zero-FIT cell accepted")
	}
}

func TestMCStudyKeyStable(t *testing.T) {
	cfg := testConfig()
	profiles := workload.Profiles()[:1]
	techs := []scaling.Technology{scaling.Base()}

	k1, err := MCStudyKey(cfg, MCConfig{Model: "wearout", Percentiles: []float64{5, 50, 95}}, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	// Aliases and permutations normalise onto the same key.
	k2, err := MCStudyKey(cfg, MCConfig{Model: "wear-out", Percentiles: []float64{95, 5, 50}}, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("equivalent MC configs hash differently")
	}
	k3, err := MCStudyKey(cfg, MCConfig{Model: "wearout", Seed: 9}, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Error("different seed did not change the key")
	}
	sk, err := StudyKey(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == sk {
		t.Error("MC key collides with the study key")
	}
}
