package sim

import (
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/workload"
)

// testConfig returns a configuration with a short trace for fast tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Instructions = 200_000
	return cfg
}

// testProfiles returns a small but representative subset: a cool FP
// benchmark, a hot INT benchmark, and a mid-range one.
func testProfiles(t *testing.T) []workload.Profile {
	t.Helper()
	var out []workload.Profile
	for _, name := range []string{"ammp", "gzip", "crafty"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Instructions = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero instructions accepted")
	}
	cfg = DefaultConfig()
	cfg.QualFITPerMechanism = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative qualification FIT accepted")
	}
	cfg = DefaultConfig()
	cfg.Machine.ROBSize = 0
	if err := cfg.Validate(); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestRunTiming(t *testing.T) {
	cfg := testConfig()
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunTiming(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Timing.Instructions != cfg.Instructions {
		t.Fatalf("simulated %d instructions, want %d", tr.Timing.Instructions, cfg.Instructions)
	}
	if len(tr.Timing.Samples) == 0 {
		t.Fatal("no activity samples")
	}
}

func TestEvaluateTechBasics(t *testing.T) {
	cfg := testConfig()
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunTiming(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	run, err := EvaluateTech(cfg, tr, scaling.Base(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if run.App != "gzip" || run.Tech.Name != "180nm" {
		t.Fatalf("identity wrong: %+v", run)
	}
	if run.AvgTotalW < 15 || run.AvgTotalW > 45 {
		t.Errorf("180nm total power = %.1f W, implausible", run.AvgTotalW)
	}
	if run.AvgLeakageW <= 0 || run.AvgDynamicW <= 0 {
		t.Error("power components must be positive")
	}
	// Temperature sanity: ambient < sink < die average ≤ hottest block.
	amb := cfg.Thermal.AmbientK
	if !(run.SinkTempK > amb && run.DieAvgTempK > run.SinkTempK &&
		run.MaxStructTempK >= run.DieAvgTempK) {
		t.Errorf("temperature ordering violated: amb %v sink %v die %v max %v",
			amb, run.SinkTempK, run.DieAvgTempK, run.MaxStructTempK)
	}
	if run.MaxStructTempK < 330 || run.MaxStructTempK > 380 {
		t.Errorf("max temp %.1f K outside plausible 180nm range", run.MaxStructTempK)
	}
	if run.RawFIT.Total() <= 0 {
		t.Error("raw FIT must be positive")
	}
	for b, afMax := range run.MaxAF {
		if afMax < 0 || afMax > 1 {
			t.Errorf("MaxAF[%d] = %v out of range", b, afMax)
		}
	}
}

func TestEvaluateTechSinkTarget(t *testing.T) {
	cfg := testConfig()
	prof, err := workload.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunTiming(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	base, err := EvaluateTech(cfg, tr, scaling.Base(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tech65, err := scaling.ByName("65nm (1.0V)")
	if err != nil {
		t.Fatal(err)
	}
	run65, err := EvaluateTech(cfg, tr, tech65, base.SinkTempK, 1)
	if err != nil {
		t.Fatal(err)
	}
	// §4.3: the sink temperature is held constant per application.
	if math.Abs(run65.SinkTempK-base.SinkTempK) > 0.5 {
		t.Fatalf("sink temp not held: base %.2f vs 65nm %.2f", base.SinkTempK, run65.SinkTempK)
	}
	// §5.1: the hottest structure runs hotter despite lower total power.
	if run65.MaxStructTempK <= base.MaxStructTempK {
		t.Fatalf("65nm max temp %.1f not above 180nm %.1f",
			run65.MaxStructTempK, base.MaxStructTempK)
	}
	if run65.AvgTotalW >= base.AvgTotalW {
		t.Fatalf("65nm total power %.1f not below 180nm %.1f (Table 4)",
			run65.AvgTotalW, base.AvgTotalW)
	}
}

func TestEvaluateTechRejections(t *testing.T) {
	cfg := testConfig()
	if _, err := EvaluateTech(cfg, nil, scaling.Base(), 0, 1); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := EvaluateTech(cfg, &ActivityTrace{}, scaling.Base(), 0, 1); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestRunStudyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	cfg := testConfig()
	profiles := testProfiles(t)
	techs := scaling.Generations()
	res, err := RunStudy(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != len(profiles)*len(techs) {
		t.Fatalf("got %d app runs, want %d", len(res.Apps), len(profiles)*len(techs))
	}
	if len(res.Worst) != len(techs) {
		t.Fatalf("got %d worst-case entries, want %d", len(res.Worst), len(techs))
	}

	// Qualification: suite-average per-mechanism FIT at 180nm must equal
	// the target (§4.4).
	mech := res.SuiteAverageMech(0, 0)
	for m, v := range mech {
		if math.Abs(v-cfg.QualFITPerMechanism) > 1e-6*cfg.QualFITPerMechanism {
			t.Errorf("180nm suite-average %v FIT = %v, want %v",
				core.Mechanism(m), v, cfg.QualFITPerMechanism)
		}
	}
	if got := res.SuiteAverageFIT(0, 0); math.Abs(got-4*cfg.QualFITPerMechanism) > 1e-6 {
		t.Errorf("180nm total suite-average = %v, want %v", got, 4*cfg.QualFITPerMechanism)
	}

	// Headline monotonicity: total FIT rises with scaling (65nm 0.9V may
	// sit below 65nm 1.0V but both above 90nm is not guaranteed for the
	// 0.9V point in general; the paper's Figure 3 shows monotone growth
	// for these curves).
	prevAvg := 0.0
	for ti := range techs {
		avg := res.SuiteAverageFIT(ti, 0)
		if avg <= prevAvg {
			t.Errorf("%s suite-average FIT %v not above previous %v",
				techs[ti].Name, avg, prevAvg)
		}
		prevAvg = avg
	}

	// Worst-case exceeds every individual application at each tech (§5.2).
	for ti := range techs {
		worst := res.WorstFIT(ti).Total()
		for _, a := range res.AppsAt(ti) {
			if fit := res.FIT(a).Total(); fit >= worst {
				t.Errorf("%s: app %s FIT %v not below worst-case %v",
					techs[ti].Name, a.App, fit, worst)
			}
		}
	}

	// The worst-case gap must widen with scaling (§5.2): compare the gap
	// at the base and at 65nm (1.0V), as a fraction of worst-case.
	gap := func(ti int) float64 {
		_, hi := res.FITRange(ti)
		w := res.WorstFIT(ti).Total()
		return (w - hi) / w
	}
	if g0, g4 := gap(0), gap(len(techs)-1); g4 <= g0 {
		t.Errorf("worst-case gap must widen: base %.3f vs 65nm %.3f", g0, g4)
	}

	// Per-application power calibration reproduced Table 3 at 180nm.
	for _, a := range res.AppsAt(0) {
		var want float64
		for _, p := range profiles {
			if p.Name == a.App {
				want = p.TargetPowerW
			}
		}
		if math.Abs(a.AvgTotalW-want) > 0.05*want {
			t.Errorf("%s 180nm power %.2f W, want %.2f ± 5%%", a.App, a.AvgTotalW, want)
		}
	}

	// FIT range across applications widens with scaling (§5.2).
	lo0, hi0 := res.FITRange(0)
	lo4, hi4 := res.FITRange(len(techs) - 1)
	if (hi4 - lo4) <= (hi0 - lo0) {
		t.Errorf("FIT range must widen: base %v vs 65nm %v", hi0-lo0, hi4-lo4)
	}
}

func TestRunStudyRejections(t *testing.T) {
	cfg := testConfig()
	profiles := testProfiles(t)
	if _, err := RunStudy(cfg, nil, scaling.Generations()); err == nil {
		t.Error("no profiles accepted")
	}
	if _, err := RunStudy(cfg, profiles, nil); err == nil {
		t.Error("no technologies accepted")
	}
	// First technology must be the 180nm calibration anchor.
	gens := scaling.Generations()
	if _, err := RunStudy(cfg, profiles, gens[1:]); err == nil {
		t.Error("study without base technology accepted")
	}
}

func TestStudyDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	cfg := testConfig()
	cfg.Instructions = 100_000
	profiles := testProfiles(t)[:2]
	techs := scaling.Generations()[:2]
	r1, err := RunStudy(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunStudy(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Apps {
		f1, f2 := r1.FIT(r1.Apps[i]).Total(), r2.FIT(r2.Apps[i]).Total()
		if f1 != f2 {
			t.Fatalf("run %d FIT differs between identical studies: %v vs %v",
				i, f1, f2)
		}
		if r1.Apps[i].MaxStructTempK != r2.Apps[i].MaxStructTempK {
			t.Fatalf("run %d max temp differs between identical studies", i)
		}
	}
}
