package sim

import (
	"testing"

	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/workload"
)

// batchFixtures builds two distinct study items and one MC item.
func batchFixtures(t *testing.T) (BatchItem, BatchItem, BatchItem) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Instructions = 10_000
	profiles := workload.DefaultRegistry().All()[:2]
	techs := scaling.Generations()[:2]
	study := BatchItem{Kind: JobStudy, Config: cfg, Profiles: profiles, Techs: techs}
	narrower := study
	narrower.Profiles = profiles[:1]
	mc := BatchItem{Kind: JobMC, Config: cfg, Profiles: profiles, Techs: techs,
		MC: MCConfig{Samples: 100}.Normalized()}
	return study, narrower, mc
}

func TestBatchItemKeyMatchesStudyKey(t *testing.T) {
	study, _, mc := batchFixtures(t)
	want, err := StudyKey(study.Config, study.Profiles, study.Techs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := study.Key()
	if err != nil || got != want {
		t.Errorf("study item key = %q (%v), want StudyKey %q", got, err, want)
	}
	mcWant, err := MCStudyKey(mc.Config, mc.MC, mc.Profiles, mc.Techs)
	if err != nil {
		t.Fatal(err)
	}
	mcGot, err := mc.Key()
	if err != nil || mcGot != mcWant {
		t.Errorf("mc item key = %q (%v), want MCStudyKey %q", mcGot, err, mcWant)
	}
	if got == mcGot {
		t.Error("study and MC items over the same grid must key differently")
	}
	if _, err := (BatchItem{Kind: "bogus"}).Key(); err == nil {
		t.Error("unknown kind should fail to key")
	}
}

func TestPlanBatchDedup(t *testing.T) {
	study, narrower, mc := batchFixtures(t)
	items := []BatchItem{study, narrower, study, mc, narrower, study}
	plan, err := PlanBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Keys) != 6 || len(plan.First) != 6 {
		t.Fatalf("plan sized %d/%d, want 6/6", len(plan.Keys), len(plan.First))
	}
	wantFirst := []int{0, 1, 0, 3, 1, 0}
	for i, w := range wantFirst {
		if plan.First[i] != w {
			t.Errorf("First[%d] = %d, want %d", i, plan.First[i], w)
		}
	}
	if len(plan.Unique) != 3 || plan.Unique[0] != 0 || plan.Unique[1] != 1 || plan.Unique[2] != 3 {
		t.Errorf("Unique = %v, want [0 1 3]", plan.Unique)
	}
	if plan.Duplicates() != 3 {
		t.Errorf("Duplicates() = %d, want 3", plan.Duplicates())
	}
}

func TestPlanBatchEmpty(t *testing.T) {
	plan, err := PlanBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Keys) != 0 || plan.Duplicates() != 0 {
		t.Errorf("empty plan = %+v", plan)
	}
}

func TestPlanBatchPropagatesKeyError(t *testing.T) {
	study, _, _ := batchFixtures(t)
	if _, err := PlanBatch([]BatchItem{study, {Kind: "bogus"}}); err == nil {
		t.Fatal("bad item should fail the whole plan")
	}
}
