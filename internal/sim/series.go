package sim

import (
	"context"
	"fmt"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/power"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/stats"
	"github.com/ramp-sim/ramp/internal/thermal"
	"github.com/ramp-sim/ramp/internal/workload"
)

// ThermalInterval is one 1µs-granularity step of the transient thermal
// run: everything the reliability stage needs to evaluate the instant
// failure rates of that interval.
type ThermalInterval struct {
	// DurUS is the interval length in microseconds.
	DurUS float64
	// AF is the per-structure activity factor driving the interval.
	AF [microarch.NumStructures]float64
	// TempK is the per-structure temperature after the thermal step.
	TempK [microarch.NumStructures]float64
	// DieAvgTempK is the area-weighted die temperature of the interval.
	DieAvgTempK float64
}

// ThermalSeries is the power+thermal stage artifact for one
// (application × technology) cell: the full transient temperature series
// plus every run-level aggregate that does not depend on the reliability
// constants. It is deliberately independent of Config.RAMP — the
// reliability stage consumes it, so changing a failure-model constant
// re-runs only the cheap FIT accumulation, never the thermal transient.
type ThermalSeries struct {
	// App and Suite identify the workload; TechName names the technology
	// point (scaling.ByName resolves it back).
	App      string         `json:"app"`
	Suite    workload.Suite `json:"suite"`
	TechName string         `json:"tech"`
	// IPC is the timing result.
	IPC float64 `json:"ipc"`
	// AppPowerScale is the per-application dynamic calibration factor the
	// series was produced with (the solved factor for a calibrated base
	// run).
	AppPowerScale float64 `json:"app_power_scale"`
	// Power and temperature aggregates, as defined on AppRun.
	AvgDynamicW       float64                          `json:"avg_dynamic_w"`
	AvgLeakageW       float64                          `json:"avg_leakage_w"`
	SinkTempK         float64                          `json:"sink_temp_k"`
	DieAvgTempK       float64                          `json:"die_avg_temp_k"`
	AvgMaxStructTempK float64                          `json:"avg_max_struct_temp_k"`
	MaxStructTempK    float64                          `json:"max_struct_temp_k"`
	MaxDieAvgTempK    float64                          `json:"max_die_avg_temp_k"`
	MaxAF             [microarch.NumStructures]float64 `json:"max_af"`
	MaxTempK          [microarch.NumStructures]float64 `json:"max_temp_k"`
	// Intervals is the transient series in time order.
	Intervals []ThermalInterval `json:"intervals"`
}

// RunThermal is RunThermalContext without cancellation.
func RunThermal(cfg Config, tr *ActivityTrace, tech scaling.Technology,
	sinkTempTargetK, appPowerScale float64) (*ThermalSeries, error) {
	return RunThermalContext(context.Background(), cfg, tr, tech, sinkTempTargetK, appPowerScale)
}

// RunThermalContext executes the power+thermal stage for one activity
// trace at one technology point: the §4.3 two-pass methodology (steady
// heat-sink initialisation, then the 1µs transient), producing the
// temperature series the reliability stage consumes. The output depends on
// Config.Machine/Power/Thermal and the inputs — not on Config.RAMP — which
// is what makes the series reusable across reliability-constant sweeps.
func RunThermalContext(ctx context.Context, cfg Config, tr *ActivityTrace, tech scaling.Technology,
	sinkTempTargetK, appPowerScale float64) (*ThermalSeries, error) {
	ctx, sp := obs.StartSpan(ctx, obs.SpanThermal)
	if sp != nil {
		sp.SetAttr("tech", tech.Name)
		if tr != nil {
			sp.SetAttr("app", tr.Profile.Name)
		}
		defer sp.Finish()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if tr == nil || len(tr.Timing.Samples) == 0 {
		return nil, fmt.Errorf("sim: empty activity trace")
	}
	fp, err := floorplanFor(tech)
	if err != nil {
		return nil, err
	}
	pm, err := power.NewModel(cfg.Power, tech, fp.Areas())
	if err != nil {
		return nil, err
	}
	if appPowerScale > 0 && appPowerScale != 1 {
		if err := pm.SetAppScale(appPowerScale); err != nil {
			return nil, err
		}
	} else {
		appPowerScale = 1
	}
	net, err := thermal.NewNetwork(fp, cfg.Thermal)
	if err != nil {
		return nil, err
	}

	// ---- Pass 1 (§4.3): solve the average-power steady state, adjusting
	// the sink resistance to the target sink temperature if requested.
	steady, err := SolveOperatingPoint(pm, net, tr.Timing.AvgAF, sinkTempTargetK)
	if err != nil {
		return nil, fmt.Errorf("sim: %s @ %s: %w", tr.Profile.Name, tech.Name, err)
	}

	// ---- Pass 2: transient run over the activity samples at 1µs
	// granularity, recording the interval series and the power/temperature
	// statistics.
	net.Init(steady)
	ts := &ThermalSeries{
		App:           tr.Profile.Name,
		Suite:         tr.Profile.Suite,
		TechName:      tech.Name,
		IPC:           tr.Timing.IPC(),
		AppPowerScale: appPowerScale,
		Intervals:     make([]ThermalInterval, 0, len(tr.Timing.Samples)),
	}
	var twDyn, twLeak, twSink, twDieAvg, twMaxT stats.TimeWeighted
	for i := range tr.Timing.Samples {
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		s := &tr.Timing.Samples[i]
		dur := float64(s.Cycles) / float64(cfg.Machine.CyclesPerMicrosecond()) // µs
		if dur <= 0 {
			continue
		}
		cur := net.Current()
		dyn := pm.Dynamic(s.AF)
		var blockP [microarch.NumStructures]float64
		var dynSum, leakSum float64
		for b := range blockP {
			leak := pm.LeakageActive(microarch.StructureID(b), cur.Blocks[b], s.AF[b])
			blockP[b] = dyn[b] + leak
			dynSum += dyn[b]
			leakSum += leak
		}
		net.Step(blockP[:], dur*1e-6)
		cur = net.Current()
		dieAvg := net.DieAverage(cur)
		iv := ThermalInterval{DurUS: dur, AF: s.AF, DieAvgTempK: dieAvg}
		copy(iv.TempK[:], cur.Blocks)
		ts.Intervals = append(ts.Intervals, iv)

		// Statistics: time-weighted averages with extrema.
		maxT := cur.MaxBlock()
		twDyn.Add(dynSum, dur)
		twLeak.Add(leakSum, dur)
		twSink.Add(cur.Sink, dur)
		twDieAvg.Add(dieAvg, dur)
		twMaxT.Add(maxT, dur)
		for b := range blockP {
			if s.AF[b] > ts.MaxAF[b] {
				ts.MaxAF[b] = s.AF[b]
			}
			if cur.Blocks[b] > ts.MaxTempK[b] {
				ts.MaxTempK[b] = cur.Blocks[b]
			}
		}
	}
	if twMaxT.TotalTime() == 0 {
		return nil, fmt.Errorf("sim: %s @ %s: no evaluable intervals", tr.Profile.Name, tech.Name)
	}
	ts.AvgDynamicW = twDyn.Mean()
	ts.AvgLeakageW = twLeak.Mean()
	ts.SinkTempK = twSink.Mean()
	ts.DieAvgTempK = twDieAvg.Mean()
	ts.AvgMaxStructTempK = twMaxT.Mean()
	ts.MaxStructTempK = twMaxT.Max()
	ts.MaxDieAvgTempK = twDieAvg.Max()
	return ts, nil
}

// AccumulateFIT is AccumulateFITContext without cancellation.
func AccumulateFIT(cfg Config, ts *ThermalSeries, tech scaling.Technology) (AppRun, error) {
	return AccumulateFITContext(context.Background(), cfg, ts, tech)
}

// AccumulateFITContext executes the reliability stage: it replays a
// thermal series through the RAMP failure models (Config.RAMP with unit
// proportionality constants) and assembles the complete AppRun. tech must
// be the technology point the series was produced at. The stage is orders
// of magnitude cheaper than the timing and thermal stages it consumes,
// which is what makes reliability-constant sweeps nearly free on a warm
// stage cache.
func AccumulateFITContext(ctx context.Context, cfg Config, ts *ThermalSeries,
	tech scaling.Technology) (AppRun, error) {
	_, sp := obs.StartSpan(ctx, obs.SpanFIT)
	if sp != nil {
		sp.SetAttr("tech", tech.Name)
		if ts != nil {
			sp.SetAttr("app", ts.App)
		}
		defer sp.Finish()
	}
	if err := cfg.Validate(); err != nil {
		return AppRun{}, err
	}
	if ts == nil || len(ts.Intervals) == 0 {
		return AppRun{}, fmt.Errorf("sim: empty thermal series")
	}
	if ts.TechName != tech.Name {
		return AppRun{}, fmt.Errorf("sim: thermal series is for %s, not %s", ts.TechName, tech.Name)
	}
	fp, err := floorplanFor(tech)
	if err != nil {
		return AppRun{}, err
	}
	eval, err := core.NewEvaluator(cfg.RAMP, core.UnitConstants(), tech, fp.Areas())
	if err != nil {
		return AppRun{}, err
	}
	run := AppRun{
		App:               ts.App,
		Suite:             ts.Suite,
		Tech:              tech,
		IPC:               ts.IPC,
		AppPowerScale:     ts.AppPowerScale,
		AvgDynamicW:       ts.AvgDynamicW,
		AvgLeakageW:       ts.AvgLeakageW,
		AvgTotalW:         ts.AvgDynamicW + ts.AvgLeakageW,
		SinkTempK:         ts.SinkTempK,
		DieAvgTempK:       ts.DieAvgTempK,
		AvgMaxStructTempK: ts.AvgMaxStructTempK,
		MaxStructTempK:    ts.MaxStructTempK,
		MaxDieAvgTempK:    ts.MaxDieAvgTempK,
		MaxAF:             ts.MaxAF,
		MaxTempK:          ts.MaxTempK,
	}
	for i := range ts.Intervals {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return AppRun{}, err
			}
		}
		iv := &ts.Intervals[i]
		fit := eval.Instant(iv.AF, iv.TempK, tech.VddV, iv.DieAvgTempK)
		eval.Accumulate(fit, iv.DurUS)
		if cfg.RecordThermalTrace {
			maxT := iv.TempK[0]
			for _, t := range iv.TempK[1:] {
				if t > maxT {
					maxT = t
				}
			}
			run.TempTraceK = append(run.TempTraceK, maxT)
		}
	}
	run.RawFIT = eval.Average()
	return run, nil
}
