package sim

import (
	"context"
	"fmt"
	"sync"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/phase"
	"github.com/ramp-sim/ramp/internal/power"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/stats"
	"github.com/ramp-sim/ramp/internal/thermal"
	"github.com/ramp-sim/ramp/internal/workload"
)

// cancelCheckInterval is the cancellation-poll cadence of the tight
// numeric loops: the thermal transient polls ctx.Err() every
// cancelCheckInterval intervals, and the Monte Carlo replica loop every
// cancelCheckInterval replicas. A power of two so the check compiles to a
// mask; 256 iterations is well under a millisecond of work in either
// loop, so cancellation is always observed promptly, at negligible
// steady-state cost.
const cancelCheckInterval = 256

// ThermalInterval is one 1µs-granularity step of the transient thermal
// run: everything the reliability stage needs to evaluate the instant
// failure rates of that interval.
type ThermalInterval struct {
	// DurUS is the interval length in microseconds.
	DurUS float64
	// AF is the per-structure activity factor driving the interval.
	AF [microarch.NumStructures]float64
	// TempK is the per-structure temperature after the thermal step.
	TempK [microarch.NumStructures]float64
	// DieAvgTempK is the area-weighted die temperature of the interval.
	DieAvgTempK float64
}

// ThermalSeries is the power+thermal stage artifact for one
// (application × technology) cell: the full transient temperature series
// plus every run-level aggregate that does not depend on the reliability
// constants. It is deliberately independent of Config.RAMP — the
// reliability stage consumes it, so changing a failure-model constant
// re-runs only the cheap FIT accumulation, never the thermal transient.
type ThermalSeries struct {
	// App and Suite identify the workload; TechName names the technology
	// point (scaling.ByName resolves it back).
	App      string         `json:"app"`
	Suite    workload.Suite `json:"suite"`
	TechName string         `json:"tech"`
	// IPC is the timing result.
	IPC float64 `json:"ipc"`
	// AppPowerScale is the per-application dynamic calibration factor the
	// series was produced with (the solved factor for a calibrated base
	// run).
	AppPowerScale float64 `json:"app_power_scale"`
	// Power and temperature aggregates, as defined on AppRun.
	AvgDynamicW       float64                          `json:"avg_dynamic_w"`
	AvgLeakageW       float64                          `json:"avg_leakage_w"`
	SinkTempK         float64                          `json:"sink_temp_k"`
	DieAvgTempK       float64                          `json:"die_avg_temp_k"`
	AvgMaxStructTempK float64                          `json:"avg_max_struct_temp_k"`
	MaxStructTempK    float64                          `json:"max_struct_temp_k"`
	MaxDieAvgTempK    float64                          `json:"max_die_avg_temp_k"`
	MaxAF             [microarch.NumStructures]float64 `json:"max_af"`
	MaxTempK          [microarch.NumStructures]float64 `json:"max_temp_k"`
	// Intervals is the transient series in time order.
	Intervals []ThermalInterval `json:"intervals"`
}

// RunThermal is RunThermalContext without cancellation.
func RunThermal(cfg Config, tr *ActivityTrace, tech scaling.Technology,
	sinkTempTargetK, appPowerScale float64) (*ThermalSeries, error) {
	return RunThermalContext(context.Background(), cfg, tr, tech, sinkTempTargetK, appPowerScale)
}

// RunThermalContext executes the power+thermal stage for one activity
// trace at one technology point: the §4.3 two-pass methodology (steady
// heat-sink initialisation, then the 1µs transient), producing the
// temperature series the reliability stage consumes. The output depends on
// Config.Machine/Power/Thermal and the inputs — not on Config.RAMP — which
// is what makes the series reusable across reliability-constant sweeps.
func RunThermalContext(ctx context.Context, cfg Config, tr *ActivityTrace, tech scaling.Technology,
	sinkTempTargetK, appPowerScale float64) (*ThermalSeries, error) {
	ctx, sp := obs.StartSpan(ctx, obs.SpanThermal)
	if sp != nil {
		sp.SetAttr("tech", tech.Name)
		if tr != nil {
			sp.SetAttr("app", tr.Profile.Name)
		}
		defer sp.Finish()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if tr == nil || len(tr.Timing.Samples) == 0 {
		return nil, fmt.Errorf("sim: empty activity trace")
	}
	fp, err := floorplanFor(tech)
	if err != nil {
		return nil, err
	}
	pm, err := power.NewModel(cfg.Power, tech, fp.Areas())
	if err != nil {
		return nil, err
	}
	if appPowerScale > 0 && appPowerScale != 1 {
		if err := pm.SetAppScale(appPowerScale); err != nil {
			return nil, err
		}
	} else {
		appPowerScale = 1
	}
	net, err := thermal.NewNetwork(fp, cfg.Thermal)
	if err != nil {
		return nil, err
	}

	// ---- Pass 1 (§4.3): solve the average-power steady state, adjusting
	// the sink resistance to the target sink temperature if requested.
	// Under phase fidelity the activity trace is a sampled stream in which
	// the contiguous head carries ~Period/Window times its true weight, so
	// the raw stream average would skew toward cold-start behaviour; the
	// compressed plan re-expands window durations to the source time base,
	// and its mean restores the true weighting for the steady solve.
	fd := cfg.Fidelity.norm()
	var plan *phase.Plan
	avgAF := tr.Timing.AvgAF
	if fd.Mode != FidelityExact {
		if plan, err = compressPlan(cfg, tr, fd); err != nil {
			return nil, err
		}
		if fd.Mode == FidelityPhase {
			avgAF = plan.MeanAF()
		}
	}
	steady, err := SolveOperatingPoint(pm, net, avgAF, sinkTempTargetK)
	if err != nil {
		return nil, fmt.Errorf("sim: %s @ %s: %w", tr.Profile.Name, tech.Name, err)
	}

	// ---- Pass 2: the transient run, recording the interval series and the
	// power/temperature statistics. Exact fidelity integrates every 1µs
	// activity sample; adaptive and phase fidelity compress the trace into
	// stationary phases first and advance each with error-bounded coarse
	// steps.
	net.Init(steady)
	ts := &ThermalSeries{
		App:           tr.Profile.Name,
		Suite:         tr.Profile.Suite,
		TechName:      tech.Name,
		IPC:           tr.Timing.IPC(),
		AppPowerScale: appPowerScale,
	}
	if fd.Mode == FidelityExact {
		err = runTransientExact(ctx, cfg, net, pm, tr, ts)
	} else {
		err = runTransientPhases(ctx, net, pm, plan, ts, fd)
	}
	if err != nil {
		return nil, err
	}
	if len(ts.Intervals) == 0 {
		return nil, fmt.Errorf("sim: %s @ %s: no evaluable intervals", tr.Profile.Name, tech.Name)
	}
	return ts, nil
}

// transientScratch holds the per-run mutable buffers of the transient
// loops. Runs borrow one from transientPool, so a study sweep reuses the
// same scratch across its (profile × technology) cells instead of
// allocating per cell, and the inner loops themselves stay at zero
// allocations per interval (CI-gated).
type transientScratch struct {
	cur thermal.State
}

var transientPool = sync.Pool{New: func() any { return new(transientScratch) }}

// state returns the scratch temperature state sized for n blocks.
func (s *transientScratch) state(n int) *thermal.State {
	if cap(s.cur.Blocks) < n {
		s.cur.Blocks = make([]float64, n)
	}
	s.cur.Blocks = s.cur.Blocks[:n]
	return &s.cur
}

// runTransientExact is the exact-fidelity transient: forward Euler over
// every 1µs activity sample, bit-identical to the historical pipeline.
// The loop body performs no heap allocation: the temperature snapshot
// lives in pooled scratch (net.CurrentInto), the power vectors are stack
// arrays, and the interval slice is preallocated to the sample count.
func runTransientExact(ctx context.Context, cfg Config, net *thermal.Network, pm *power.Model,
	tr *ActivityTrace, ts *ThermalSeries) error {
	scratch := transientPool.Get().(*transientScratch)
	defer transientPool.Put(scratch)
	cur := scratch.state(net.NumBlocks())
	if ts.Intervals == nil {
		ts.Intervals = make([]ThermalInterval, 0, len(tr.Timing.Samples))
	}
	cyclesPerUS := float64(cfg.Machine.CyclesPerMicrosecond())
	var twDyn, twLeak, twSink, twDieAvg, twMaxT stats.TimeWeighted
	var blockP [microarch.NumStructures]float64
	for i := range tr.Timing.Samples {
		if i&(cancelCheckInterval-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		s := &tr.Timing.Samples[i]
		dur := float64(s.Cycles) / cyclesPerUS // µs
		if dur <= 0 {
			continue
		}
		net.CurrentInto(cur)
		dyn := pm.Dynamic(s.AF)
		var dynSum, leakSum float64
		for b := range blockP {
			leak := pm.LeakageActive(microarch.StructureID(b), cur.Blocks[b], s.AF[b])
			blockP[b] = dyn[b] + leak
			dynSum += dyn[b]
			leakSum += leak
		}
		net.Step(blockP[:], dur*1e-6)
		net.CurrentInto(cur)
		dieAvg := net.DieAverage(*cur)
		iv := ThermalInterval{DurUS: dur, AF: s.AF, DieAvgTempK: dieAvg}
		copy(iv.TempK[:], cur.Blocks)
		ts.Intervals = append(ts.Intervals, iv)

		// Statistics: time-weighted averages with extrema.
		maxT := cur.MaxBlock()
		twDyn.Add(dynSum, dur)
		twLeak.Add(leakSum, dur)
		twSink.Add(cur.Sink, dur)
		twDieAvg.Add(dieAvg, dur)
		twMaxT.Add(maxT, dur)
		for b := range blockP {
			if s.AF[b] > ts.MaxAF[b] {
				ts.MaxAF[b] = s.AF[b]
			}
			if cur.Blocks[b] > ts.MaxTempK[b] {
				ts.MaxTempK[b] = cur.Blocks[b]
			}
		}
	}
	finishTransientStats(ts, &twDyn, &twLeak, &twSink, &twDieAvg, &twMaxT)
	return nil
}

// Adaptive step-size bounds of the coarse integrator, in µs. The step
// starts at the exact loop's 1µs, doubles whenever the embedded error
// estimate sits below a quarter of the tolerance, and halves on
// rejection. The ceiling keeps each step well below the spreader/sink
// time constants; the floor guarantees forward progress even under an
// unreachably tight tolerance.
const (
	initialCoarseStepUS = 1.0
	maxCoarseStepUS     = 512.0
	minCoarseStepUS     = 0.25
)

// compressPlan builds the phase plan for the non-exact transients. Under
// phase fidelity the trace was systematically sampled, so the plan
// re-expands post-head window durations by the period/window ratio —
// behaviour observed through the windows regains the duration weight it
// has in the unsampled stream, while the contiguous head (the cold-start
// transient, simulated in full) keeps weight 1. The head boundary is
// located by accumulating per-sample retired-instruction counts.
func compressPlan(cfg Config, tr *ActivityTrace, fd Fidelity) (*phase.Plan, error) {
	opt := phase.Options{EpsilonAF: fd.PhaseEpsilonAF}
	if fd.Mode == FidelityPhase {
		opt.ExpandFactor = float64(fd.SamplePeriodInstrs) / float64(fd.SampleWindowInstrs)
		opt.ExpandStart = len(tr.Timing.Samples)
		var retired int64
		for i := range tr.Timing.Samples {
			if retired >= fd.SampleHeadInstrs {
				opt.ExpandStart = i
				break
			}
			retired += tr.Timing.Samples[i].Retired
		}
	}
	return phase.Compress(tr.Timing.Samples, cfg.Machine.CyclesPerMicrosecond(), opt)
}

// runTransientPhases is the adaptive/phase-fidelity transient: the
// activity trace is compressed into stationary phases (internal/phase),
// the dynamic-power vector is evaluated once per recurring phase class
// (SimPoint-style memoization), and each phase is advanced with
// error-bounded coarse Heun steps — leakage recomputed from the current
// temperature at every substep, the step size halving whenever the
// embedded local error estimate exceeds the fidelity's ThermalTolK and
// growing when it sits far below. Per-structure MaxAF comes from the raw
// samples via the plan; MaxTempK is tracked across substeps.
func runTransientPhases(ctx context.Context, net *thermal.Network, pm *power.Model,
	plan *phase.Plan, ts *ThermalSeries, fd Fidelity) error {
	scratch := transientPool.Get().(*transientScratch)
	defer transientPool.Put(scratch)
	cur := scratch.state(net.NumBlocks())

	// Class-level memoization: one dynamic-power evaluation per recurring
	// phase class, weighted by occupancy through the phases that share it.
	dynByClass := make([][microarch.NumStructures]float64, len(plan.Classes))
	for ci := range plan.Classes {
		dynByClass[ci] = pm.Dynamic(plan.Classes[ci].AF)
	}
	if ts.Intervals == nil {
		ts.Intervals = make([]ThermalInterval, 0, 4*len(plan.Phases))
	}

	var twDyn, twLeak, twSink, twDieAvg, twMaxT stats.TimeWeighted
	var blockP [microarch.NumStructures]float64
	tol := fd.ThermalTolK
	dtUS := initialCoarseStepUS
	steps := 0
	for pi := range plan.Phases {
		ph := &plan.Phases[pi]
		dyn := &dynByClass[ph.Class]
		remaining := ph.DurUS
		for remaining > 0 {
			if steps&(cancelCheckInterval-1) == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			steps++
			dt := dtUS
			if dt > remaining {
				dt = remaining
			}
			net.CurrentInto(cur)
			var dynSum, leakSum float64
			for b := range blockP {
				leak := pm.LeakageActive(microarch.StructureID(b), cur.Blocks[b], ph.AF[b])
				blockP[b] = dyn[b] + leak
				dynSum += dyn[b]
				leakSum += leak
			}
			errK, applied := net.StepHeunErr(blockP[:], dt*1e-6, tol)
			if !applied {
				if dt > minCoarseStepUS {
					// Reject: halve and retry from the same state.
					dtUS = dt / 2
					continue
				}
				// At the step floor the error bound is unreachable;
				// advance anyway — the floor is 4× finer than the exact
				// loop's own step.
				net.StepHeunErr(blockP[:], dt*1e-6, 0)
			}
			remaining -= dt
			net.CurrentInto(cur)
			dieAvg := net.DieAverage(*cur)
			iv := ThermalInterval{DurUS: dt, AF: ph.AF, DieAvgTempK: dieAvg}
			copy(iv.TempK[:], cur.Blocks)
			ts.Intervals = append(ts.Intervals, iv)

			twDyn.Add(dynSum, dt)
			twLeak.Add(leakSum, dt)
			twSink.Add(cur.Sink, dt)
			twDieAvg.Add(dieAvg, dt)
			twMaxT.Add(cur.MaxBlock(), dt)
			for b := range cur.Blocks {
				if cur.Blocks[b] > ts.MaxTempK[b] {
					ts.MaxTempK[b] = cur.Blocks[b]
				}
			}
			if applied && errK < tol/4 && dtUS < maxCoarseStepUS {
				dtUS *= 2
			}
		}
	}
	// Worst-case analysis (§5.2) reads true per-sample activity maxima,
	// which phase means would understate — the plan preserves them.
	ts.MaxAF = plan.MaxAF
	finishTransientStats(ts, &twDyn, &twLeak, &twSink, &twDieAvg, &twMaxT)
	return nil
}

// finishTransientStats folds the time-weighted accumulators into the
// series aggregates (no-op on an empty run; the caller rejects those).
func finishTransientStats(ts *ThermalSeries, twDyn, twLeak, twSink, twDieAvg, twMaxT *stats.TimeWeighted) {
	if twMaxT.TotalTime() == 0 {
		return
	}
	ts.AvgDynamicW = twDyn.Mean()
	ts.AvgLeakageW = twLeak.Mean()
	ts.SinkTempK = twSink.Mean()
	ts.DieAvgTempK = twDieAvg.Mean()
	ts.AvgMaxStructTempK = twMaxT.Mean()
	ts.MaxStructTempK = twMaxT.Max()
	ts.MaxDieAvgTempK = twDieAvg.Max()
}

// AccumulateFIT is AccumulateFITContext without cancellation.
func AccumulateFIT(cfg Config, ts *ThermalSeries, tech scaling.Technology) (AppRun, error) {
	return AccumulateFITContext(context.Background(), cfg, ts, tech)
}

// AccumulateFITContext executes the reliability stage: it replays a
// thermal series through the RAMP failure models (Config.RAMP with unit
// proportionality constants) and assembles the complete AppRun. tech must
// be the technology point the series was produced at. The stage is orders
// of magnitude cheaper than the timing and thermal stages it consumes,
// which is what makes reliability-constant sweeps nearly free on a warm
// stage cache.
func AccumulateFITContext(ctx context.Context, cfg Config, ts *ThermalSeries,
	tech scaling.Technology) (AppRun, error) {
	_, sp := obs.StartSpan(ctx, obs.SpanFIT)
	if sp != nil {
		sp.SetAttr("tech", tech.Name)
		if ts != nil {
			sp.SetAttr("app", ts.App)
		}
		defer sp.Finish()
	}
	if err := cfg.Validate(); err != nil {
		return AppRun{}, err
	}
	if ts == nil || len(ts.Intervals) == 0 {
		return AppRun{}, fmt.Errorf("sim: empty thermal series")
	}
	if ts.TechName != tech.Name {
		return AppRun{}, fmt.Errorf("sim: thermal series is for %s, not %s", ts.TechName, tech.Name)
	}
	fp, err := floorplanFor(tech)
	if err != nil {
		return AppRun{}, err
	}
	set, err := cfg.MechanismSet()
	if err != nil {
		return AppRun{}, err
	}
	eval, err := core.NewEvaluatorForSet(cfg.RAMP, core.UnitConstants(), tech, fp.Areas(), set)
	if err != nil {
		return AppRun{}, err
	}
	run := AppRun{
		App:               ts.App,
		Suite:             ts.Suite,
		Tech:              tech,
		IPC:               ts.IPC,
		AppPowerScale:     ts.AppPowerScale,
		AvgDynamicW:       ts.AvgDynamicW,
		AvgLeakageW:       ts.AvgLeakageW,
		AvgTotalW:         ts.AvgDynamicW + ts.AvgLeakageW,
		SinkTempK:         ts.SinkTempK,
		DieAvgTempK:       ts.DieAvgTempK,
		AvgMaxStructTempK: ts.AvgMaxStructTempK,
		MaxStructTempK:    ts.MaxStructTempK,
		MaxDieAvgTempK:    ts.MaxDieAvgTempK,
		MaxAF:             ts.MaxAF,
		MaxTempK:          ts.MaxTempK,
	}
	for i := range ts.Intervals {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return AppRun{}, err
			}
		}
		iv := &ts.Intervals[i]
		fit := eval.Instant(iv.AF, iv.TempK, tech.VddV, iv.DieAvgTempK)
		eval.Accumulate(fit, iv.DurUS)
		if cfg.RecordThermalTrace {
			maxT := iv.TempK[0]
			for _, t := range iv.TempK[1:] {
				if t > maxT {
					maxT = t
				}
			}
			run.TempTraceK = append(run.TempTraceK, maxT)
		}
	}
	// Series-defined mechanisms (rainflow-counted thermal cycling) need the
	// whole die-average temperature trace rather than per-sample values:
	// evaluate each once over the run and fold its constant rate into the
	// average. The slices are built only when the selection includes one,
	// so the default four pay nothing here.
	if series := eval.Set().Series(); len(series) > 0 {
		dieAvg := make([]float64, len(ts.Intervals))
		durUS := make([]float64, len(ts.Intervals))
		for i := range ts.Intervals {
			dieAvg[i] = ts.Intervals[i].DieAvgTempK
			durUS[i] = ts.Intervals[i].DurUS
		}
		for _, sm := range series {
			eval.AddConstantRate(sm.Name(), sm.SeriesRate(dieAvg, durUS, cfg.RAMP))
		}
	}
	run.RawFIT = eval.Average()
	return run, nil
}
