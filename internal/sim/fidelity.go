package sim

import (
	"fmt"
	"math"

	"github.com/ramp-sim/ramp/internal/phase"
)

// FidelityMode selects how much of the exact evaluation pipeline a study
// trades for speed. The default (exact) is bit-identical to the historical
// pipeline; the other modes buy cold-study latency with bounded error.
type FidelityMode string

const (
	// FidelityExact runs the full pipeline: every instruction simulated,
	// every 1µs sample integrated individually. Bit-identical to the
	// pre-fidelity pipeline.
	FidelityExact FidelityMode = "exact"
	// FidelityAdaptive keeps the exact timing simulation but
	// phase-compresses the activity trace before thermal integration and
	// advances each stationary phase with error-bounded coarse Heun steps
	// (sub-split whenever the local error estimate exceeds ThermalTolK).
	FidelityAdaptive FidelityMode = "adaptive"
	// FidelityPhase adds systematic trace sampling (§4.5) on top of
	// adaptive: only periodic windows of the instruction stream are
	// simulated and the compressed phases weight by occupancy,
	// SimPoint-style. Fastest, with the largest (still bounded) error.
	FidelityPhase FidelityMode = "phase"
)

// Default tuning for the non-exact modes. The sampling geometry (a 20k
// head plus a 1/10 window ratio) and thermal tolerance are chosen so the
// end-to-end SOFR MTTF stays within 1% of exact across the built-in
// profiles (see BENCH_coldstudy.json and the accuracy regression test).
const (
	// DefaultThermalTolK is the per-coarse-step local temperature error
	// bound of the adaptive integrator, in kelvin.
	DefaultThermalTolK = 0.05
	// DefaultSampleWindowInstrs is the detailed-simulation window length
	// of phase-mode systematic sampling, in instructions. Windows shorter
	// than a few thousand instructions are dominated by the re-sync
	// transient after each statistically warmed gap.
	DefaultSampleWindowInstrs = 10_000
	// DefaultSamplePeriodInstrs is the sampling period: one window is
	// simulated out of every period (ratio 1/10).
	DefaultSamplePeriodInstrs = 100_000
	// DefaultSampleHeadInstrs is the contiguous prefix simulated in full
	// before the window cadence starts. It covers the cold-start
	// transient (compulsory misses, predictor training), which is not
	// stationary behaviour and must carry weight 1 — not the sampled
	// stream's inflated weight — in the time averages downstream.
	DefaultSampleHeadInstrs = 40_000
)

// Fidelity configures the speed/accuracy trade of a study. The zero value
// and a nil pointer both mean exact. It participates in the stage cache
// keys (normalised), so results produced under different fidelity settings
// can never be served for one another.
type Fidelity struct {
	// Mode selects the pipeline variant; empty means FidelityExact.
	Mode FidelityMode `json:"mode,omitempty"`
	// PhaseEpsilonAF is the per-structure activity-factor tolerance of the
	// phase detector (adaptive and phase modes); 0 means
	// phase.DefaultEpsilonAF.
	PhaseEpsilonAF float64 `json:"phase_epsilon_af,omitempty"`
	// ThermalTolK is the local temperature error bound per coarse step of
	// the adaptive integrator, in kelvin; 0 means DefaultThermalTolK.
	ThermalTolK float64 `json:"thermal_tol_k,omitempty"`
	// SampleWindowInstrs, SamplePeriodInstrs, and SampleHeadInstrs
	// configure phase-mode systematic sampling (contiguous head, then one
	// window per period); 0 means the defaults above. Ignored outside
	// phase mode.
	SampleWindowInstrs int64 `json:"sample_window_instrs,omitempty"`
	SamplePeriodInstrs int64 `json:"sample_period_instrs,omitempty"`
	SampleHeadInstrs   int64 `json:"sample_head_instrs,omitempty"`
}

// norm returns the fidelity with every default filled in. A nil receiver
// normalises to exact — callers never need to nil-check.
func (f *Fidelity) norm() Fidelity {
	if f == nil {
		return Fidelity{Mode: FidelityExact}
	}
	out := *f
	if out.Mode == "" {
		out.Mode = FidelityExact
	}
	if out.PhaseEpsilonAF == 0 {
		out.PhaseEpsilonAF = phase.DefaultEpsilonAF
	}
	if out.ThermalTolK == 0 {
		out.ThermalTolK = DefaultThermalTolK
	}
	if out.SampleWindowInstrs == 0 {
		out.SampleWindowInstrs = DefaultSampleWindowInstrs
	}
	if out.SamplePeriodInstrs == 0 {
		out.SamplePeriodInstrs = DefaultSamplePeriodInstrs
	}
	if out.SampleHeadInstrs == 0 {
		out.SampleHeadInstrs = DefaultSampleHeadInstrs
	}
	return out
}

// Validate rejects unknown modes and out-of-range tuning. A nil fidelity
// is valid (exact).
func (f *Fidelity) Validate() error {
	if f == nil {
		return nil
	}
	switch f.Mode {
	case "", FidelityExact, FidelityAdaptive, FidelityPhase:
	default:
		return fmt.Errorf("sim: unknown fidelity mode %q (want exact, adaptive, or phase)", f.Mode)
	}
	if f.PhaseEpsilonAF < 0 || f.PhaseEpsilonAF > 1 || math.IsNaN(f.PhaseEpsilonAF) {
		return fmt.Errorf("sim: fidelity phase epsilon %v outside [0,1]", f.PhaseEpsilonAF)
	}
	if f.ThermalTolK < 0 || math.IsNaN(f.ThermalTolK) || math.IsInf(f.ThermalTolK, 0) {
		return fmt.Errorf("sim: fidelity thermal tolerance %v must be non-negative and finite", f.ThermalTolK)
	}
	if f.SampleWindowInstrs < 0 || f.SamplePeriodInstrs < 0 || f.SampleHeadInstrs < 0 {
		return fmt.Errorf("sim: fidelity sampling window/period/head must be non-negative")
	}
	if f.SampleWindowInstrs > 0 && f.SamplePeriodInstrs > 0 &&
		f.SampleWindowInstrs > f.SamplePeriodInstrs {
		return fmt.Errorf("sim: fidelity sample window %d exceeds period %d",
			f.SampleWindowInstrs, f.SamplePeriodInstrs)
	}
	return nil
}

// ParseFidelityMode validates a mode name from a flag or API request and
// returns nil for exact/empty — keeping exact-mode configs (and hence
// their content-addressed keys) identical to configs that predate the
// fidelity field.
func ParseFidelityMode(mode string) (*Fidelity, error) {
	switch FidelityMode(mode) {
	case "", FidelityExact:
		return nil, nil
	case FidelityAdaptive:
		return &Fidelity{Mode: FidelityAdaptive}, nil
	case FidelityPhase:
		return &Fidelity{Mode: FidelityPhase}, nil
	default:
		return nil, fmt.Errorf("sim: unknown fidelity mode %q (want exact, adaptive, or phase)", mode)
	}
}

// fidelityTimingInputs is the timing stage's view of the fidelity: only
// phase mode changes what the timing stage simulates (systematic
// sampling), so only phase mode contributes these to TimingKey. Exact and
// adaptive deliberately share timing artifacts — they run the identical
// full simulation, so the reuse is sound, not stale.
type fidelityTimingInputs struct {
	Mode               FidelityMode `json:"mode"`
	SampleWindowInstrs int64        `json:"sample_window_instrs"`
	SamplePeriodInstrs int64        `json:"sample_period_instrs"`
	SampleHeadInstrs   int64        `json:"sample_head_instrs"`
}

// fidelityThermalInputs is the thermal stage's view of the fidelity:
// adaptive and phase both replace the per-sample transient with
// phase-compressed error-bounded integration, parameterised by the
// detector epsilon and step tolerance.
type fidelityThermalInputs struct {
	Mode           FidelityMode `json:"mode"`
	PhaseEpsilonAF float64      `json:"phase_epsilon_af"`
	ThermalTolK    float64      `json:"thermal_tol_k"`
}

// timingFidelityKeyInputs returns the TimingKey contribution, nil unless
// the mode changes the timing stage's behaviour.
func timingFidelityKeyInputs(f *Fidelity) *fidelityTimingInputs {
	n := f.norm()
	if n.Mode != FidelityPhase {
		return nil
	}
	return &fidelityTimingInputs{
		Mode:               n.Mode,
		SampleWindowInstrs: n.SampleWindowInstrs,
		SamplePeriodInstrs: n.SamplePeriodInstrs,
		SampleHeadInstrs:   n.SampleHeadInstrs,
	}
}

// thermalFidelityKeyInputs returns the ThermalKey contribution, nil for
// exact so pre-fidelity cache keys remain valid.
func thermalFidelityKeyInputs(f *Fidelity) *fidelityThermalInputs {
	n := f.norm()
	if n.Mode == FidelityExact {
		return nil
	}
	return &fidelityThermalInputs{
		Mode:           n.Mode,
		PhaseEpsilonAF: n.PhaseEpsilonAF,
		ThermalTolK:    n.ThermalTolK,
	}
}
