package sim

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/trace"
	"github.com/ramp-sim/ramp/internal/workload"
)

func TestRunTimingStreamFromTraceFile(t *testing.T) {
	// Generate a trace, serialise it to the binary format, read it back,
	// and verify the timing result matches the direct generator path —
	// the "bring your own trace" workflow.
	cfg := testConfig()
	cfg.Instructions = 100_000
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}

	direct, err := RunTiming(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := workload.New(prof, cfg.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for {
		in, err := gen.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := RunTimingStream(cfg, prof, r)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Timing.IPC() != direct.Timing.IPC() {
		t.Fatalf("file-trace IPC %.4f != direct IPC %.4f",
			fromFile.Timing.IPC(), direct.Timing.IPC())
	}
	if fromFile.Timing.Instructions != direct.Timing.Instructions {
		t.Fatalf("instruction counts differ: %d vs %d",
			fromFile.Timing.Instructions, direct.Timing.Instructions)
	}
}

func TestRunTimingStreamRejectsNil(t *testing.T) {
	cfg := testConfig()
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTimingStream(cfg, prof, nil); err == nil {
		t.Fatal("nil stream accepted")
	}
}

func TestSampledTraceIsRepresentative(t *testing.T) {
	// The paper's §4.5 sampling-validation property: a systematic sample
	// spread across the whole program behaves like any other equal-length
	// view of it. Compare ten 10k-instruction windows drawn from a 1M
	// stream against a contiguous 100k prefix — same simulation budget,
	// so cache/predictor warm-up affects both alike, isolating the
	// sampling effect itself.
	if testing.Short() {
		t.Skip("sampling comparison is slow; skipped with -short")
	}
	cfg := testConfig()
	prof, err := workload.ByName("mesa")
	if err != nil {
		t.Fatal(err)
	}

	cfg.Instructions = 100_000
	contiguous, err := RunTiming(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := workload.New(prof, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := trace.NewSystematicSampler(gen, trace.SamplerConfig{
		WindowInstrs: 10_000,
		PeriodInstrs: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := RunTimingStream(cfg, prof, sampler)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Timing.Instructions != 100_000 {
		t.Fatalf("sampled %d instructions, want 100000", sampled.Timing.Instructions)
	}
	if rel := sampled.Timing.IPC()/contiguous.Timing.IPC() - 1; math.Abs(rel) > 0.10 {
		t.Errorf("sampled IPC %.3f vs contiguous %.3f (%.1f%% off, want ≤ 10%%)",
			sampled.Timing.IPC(), contiguous.Timing.IPC(), rel*100)
	}
	for s := range contiguous.Timing.AvgAF {
		f, g := contiguous.Timing.AvgAF[s], sampled.Timing.AvgAF[s]
		if f < 0.01 {
			continue
		}
		if math.Abs(g/f-1) > 0.15 {
			t.Errorf("structure %d: sampled AF %.4f vs contiguous %.4f", s, g, f)
		}
	}
}
