package sim

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/trace"
	"github.com/ramp-sim/ramp/internal/workload"
)

func TestRunTimingStreamFromTraceFile(t *testing.T) {
	// Generate a trace, serialise it to the binary format, read it back,
	// and verify the timing result matches the direct generator path —
	// the "bring your own trace" workflow.
	cfg := testConfig()
	cfg.Instructions = 100_000
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}

	direct, err := RunTiming(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := workload.New(prof, cfg.Instructions)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for {
		in, err := gen.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := RunTimingStream(cfg, prof, r)
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.Timing.IPC() != direct.Timing.IPC() {
		t.Fatalf("file-trace IPC %.4f != direct IPC %.4f",
			fromFile.Timing.IPC(), direct.Timing.IPC())
	}
	if fromFile.Timing.Instructions != direct.Timing.Instructions {
		t.Fatalf("instruction counts differ: %d vs %d",
			fromFile.Timing.Instructions, direct.Timing.Instructions)
	}
}

func TestRunTimingStreamRejectsNil(t *testing.T) {
	cfg := testConfig()
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTimingStream(cfg, prof, nil); err == nil {
		t.Fatal("nil stream accepted")
	}
}

func TestSampledTraceIsRepresentative(t *testing.T) {
	// The paper's §4.5 sampling-validation property: a systematic sample
	// spread across the whole program, with skipped spans statistically
	// warmed, behaves like the full trace it summarizes. The comparison
	// excludes the cold-start head from both runs — the head region is not
	// stationary, and the study pipeline weights it separately (weight 1
	// via SampleHeadInstrs, re-expanding only post-head windows) — so what
	// is asserted here is that the post-head windows reproduce the full
	// trace's stationary IPC and activity from a tenth of the simulation
	// budget. An unwarmed sampler fails this by a wide margin: frozen
	// caches replay the cold-start bias into every window.
	if testing.Short() {
		t.Skip("sampling comparison is slow; skipped with -short")
	}
	cfg := testConfig()
	prof, err := workload.ByName("mesa")
	if err != nil {
		t.Fatal(err)
	}
	const head = 40_000

	cfg.Instructions = 1_000_000
	full, err := RunTiming(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := workload.New(prof, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := trace.NewSystematicSampler(gen, trace.SamplerConfig{
		WindowInstrs: 10_000,
		PeriodInstrs: 100_000,
		HeadInstrs:   head,
	})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := RunTimingStream(cfg, prof, sampler)
	if err != nil {
		t.Fatal(err)
	}
	// Ten windows fit after the head: one per 100k period over the
	// remaining 960k instructions.
	if got := sampled.Timing.Instructions; got != head+10*10_000 {
		t.Fatalf("sampled %d instructions, want %d", got, head+10*10_000)
	}

	// afterHead aggregates instruction-weighted IPC and duration-weighted
	// AF past the first head retired instructions.
	afterHead := func(r microarch.Result) (ipc float64, af []float64) {
		var retired, cycles, skip int64
		af = make([]float64, len(r.AvgAF))
		for i := range r.Samples {
			s := &r.Samples[i]
			if skip < head {
				skip += s.Retired
				continue
			}
			retired += s.Retired
			cycles += s.Cycles
			for b := range af {
				af[b] += s.AF[b] * float64(s.Cycles)
			}
		}
		for b := range af {
			af[b] /= float64(cycles)
		}
		return float64(retired) / float64(cycles), af
	}
	fullIPC, fullAF := afterHead(full.Timing)
	sampIPC, sampAF := afterHead(sampled.Timing)

	if rel := sampIPC/fullIPC - 1; math.Abs(rel) > 0.05 {
		t.Errorf("sampled stationary IPC %.3f vs full-trace %.3f (%.1f%% off, want ≤ 5%%)",
			sampIPC, fullIPC, rel*100)
	}
	for s := range fullAF {
		f, g := fullAF[s], sampAF[s]
		if f < 0.01 {
			continue
		}
		if math.Abs(g/f-1) > 0.10 {
			t.Errorf("structure %d: sampled stationary AF %.4f vs full-trace %.4f", s, g, f)
		}
	}
}
