package sim

import (
	"slices"
	"strings"
	"testing"

	"github.com/ramp-sim/ramp/internal/core"
)

// FuzzMechanismsCanonical drives arbitrary pairs of comma-separated
// mechanism spellings through canonicalization and the reliability-stage
// key derivation, and checks the two invariants the cache rests on:
//
//  1. Spellings of the SAME set — any order, case, aliasing, duplication —
//     hash to the SAME stage key (no cold cache for a cosmetic change).
//  2. Spellings of DIFFERENT sets NEVER share a stage key (no cross-served
//     results between physics selections).
//
// Canonicalization must also be idempotent and must map the default four
// (in any spelling) to nil, the pre-registry wire form.
func FuzzMechanismsCanonical(f *testing.F) {
	f.Add("em,sm,tc,tddb", "TDDB,sm,em,tc")
	f.Add("", "em,sm,tc,tddb")
	f.Add("em,sm,tc,tddb,nbti", "nbti,em,sm,tc,tddb")
	f.Add("em,nbti,hci", "em,hci")
	f.Add("tc-rainflow", "tc_rainflow")
	f.Add("rainflow,EM", "em,tc-rainflow")
	f.Add("em,em,em", "em")
	f.Add("hci", "nbti")
	f.Add("em,unknown", "em")
	f.Add("em,\x00sm", "sm,,em")

	split := func(s string) []string {
		if s == "" {
			return nil
		}
		return strings.Split(s, ",")
	}
	stageKey := func(t *testing.T, names []string) string {
		t.Helper()
		key, err := hashKey(fitStageInputs{ThermalKey: "fuzz-thermal", Mechanisms: names})
		if err != nil {
			t.Fatalf("hashKey(%v): %v", names, err)
		}
		return key
	}

	f.Fuzz(func(t *testing.T, a, b string) {
		ca, errA := core.CanonicalMechanismNames(split(a))
		cb, errB := core.CanonicalMechanismNames(split(b))
		if errA != nil || errB != nil {
			// Unknown names are rejected before any key is derived; that is
			// the contract, nothing further to check.
			return
		}
		// Idempotence: canonical output canonicalises to itself.
		if again, err := core.CanonicalMechanismNames(ca); err != nil || !slices.Equal(again, ca) {
			t.Fatalf("canonicalization not idempotent: %v -> %v (%v)", ca, again, err)
		}
		// The default four in any spelling collapse to nil — the exact wire
		// form of configurations that predate the registry.
		if slices.Equal(ca, core.DefaultMechanismNames()) {
			t.Fatalf("default set %q canonicalised to explicit names %v; want nil", a, ca)
		}

		ka, kb := stageKey(t, ca), stageKey(t, cb)
		if slices.Equal(ca, cb) != (ka == kb) {
			t.Fatalf("key/set mismatch: %q -> %v (%s) vs %q -> %v (%s)",
				a, ca, ka, b, cb, kb)
		}
	})
}
