// Package sim orchestrates the full evaluation pipeline of the paper
// (§4): the timing simulation of each workload on the base machine
// (activity factors and IPC), then — per technology point — the power
// model, the two-pass thermal methodology of §4.3 (steady-state heat-sink
// initialisation followed by a 1µs-granularity transient run), and the
// RAMP failure-rate accumulation, including the reliability-qualification
// calibration of §4.4 and the worst-case ("max") operating-point analysis
// of §5.2.
package sim

import (
	"context"
	"fmt"
	"math"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/floorplan"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/power"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/thermal"
	"github.com/ramp-sim/ramp/internal/trace"
	"github.com/ramp-sim/ramp/internal/workload"
)

// Config parameterises a study.
type Config struct {
	// Machine is the base 180nm processor (Table 2).
	Machine microarch.Config
	// Power holds the 180nm power calibration.
	Power power.Params
	// Thermal holds the package-stack constants.
	Thermal thermal.Params
	// RAMP holds the failure-mechanism constants.
	RAMP core.Params
	// Instructions is the trace length simulated per application.
	Instructions int64
	// QualFITPerMechanism is the per-mechanism suite-average FIT imposed
	// at reliability qualification (1000 in §4.4, for a 4000-FIT total).
	QualFITPerMechanism float64
	// CalibrateAppPower, when set, solves a per-application dynamic-power
	// factor at 180nm so each benchmark reproduces its Table 3 total
	// power, standing in for PowerTimer's circuit-level fidelity.
	CalibrateAppPower bool
	// RecordThermalTrace, when set, stores each run's per-interval
	// hottest-structure temperature in AppRun.TempTraceK (one sample per
	// 1µs interval) for small-thermal-cycle analysis (internal/cycles).
	RecordThermalTrace bool
	// Fidelity selects the speed/accuracy trade (nil means exact — the
	// bit-identical historical pipeline). A pointer with omitempty keeps
	// exact-mode configs, and hence every content-addressed key derived
	// from them, byte-identical to configs that predate the field.
	Fidelity *Fidelity `json:"Fidelity,omitempty"`
	// Mechanisms names the failure mechanisms evaluated, resolved against
	// the core registry (core.RegisteredMechanisms lists them). Nil or
	// empty means the paper's four (em/sm/tc/tddb) — and, with omitempty,
	// marshals byte-identically to configs that predate mechanism
	// selection, so every content-addressed key of an unspecified request
	// is preserved. Names are canonicalised (lower-cased, de-aliased,
	// sorted, de-duplicated) before any key derivation, so differently
	// ordered spellings of one set share cache entries.
	Mechanisms []string `json:"Mechanisms,omitempty"`
}

// DefaultConfig returns the paper's experimental setup with a trace length
// suitable for interactive runs.
func DefaultConfig() Config {
	return Config{
		Machine:             microarch.DefaultConfig(),
		Power:               power.DefaultParams(),
		Thermal:             thermal.DefaultParams(),
		RAMP:                core.DefaultParams(),
		Instructions:        2_000_000,
		QualFITPerMechanism: 1000,
		CalibrateAppPower:   true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Machine.Validate(); err != nil {
		return fmt.Errorf("sim: machine: %w", err)
	}
	if err := c.Power.Validate(); err != nil {
		return fmt.Errorf("sim: power: %w", err)
	}
	if err := c.Thermal.Validate(); err != nil {
		return fmt.Errorf("sim: thermal: %w", err)
	}
	if err := c.RAMP.Validate(); err != nil {
		return fmt.Errorf("sim: ramp: %w", err)
	}
	if c.Instructions <= 0 {
		return fmt.Errorf("sim: instructions must be positive, got %d", c.Instructions)
	}
	// Inverted comparison so a NaN target (which compares false both ways)
	// is rejected rather than flowing into the calibration solve.
	if !(c.QualFITPerMechanism > 0) || math.IsInf(c.QualFITPerMechanism, 0) {
		return fmt.Errorf("sim: qualification FIT must be positive and finite")
	}
	if err := c.Fidelity.Validate(); err != nil {
		return err
	}
	if _, err := core.CanonicalMechanismNames(c.Mechanisms); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// MechanismSet resolves the configured mechanism selection against the
// registry (the paper's four when Mechanisms is empty).
func (c Config) MechanismSet() (core.MechanismSet, error) {
	set, err := core.ResolveMechanismSet(c.Mechanisms)
	if err != nil {
		return core.MechanismSet{}, fmt.Errorf("sim: %w", err)
	}
	return set, nil
}

// ActivityTrace is the timing-simulation output for one application,
// reused across technology points (the paper keeps the microarchitecture
// and hence the activity behaviour fixed while remapping, §1.3).
type ActivityTrace struct {
	Profile workload.Profile
	Timing  microarch.Result
}

// RunTiming executes the timing stage for one workload profile.
func RunTiming(cfg Config, prof workload.Profile) (*ActivityTrace, error) {
	return RunTimingContext(context.Background(), cfg, prof)
}

// RunTimingContext is RunTiming with cancellation: the simulation aborts
// with ctx.Err() shortly after ctx is cancelled.
//
// Under phase fidelity the generated stream is systematically sampled
// (§4.5): a contiguous head of SampleHeadInstrs covers the cold-start
// transient in full, then one window of SampleWindowInstrs is simulated in
// detail out of every SamplePeriodInstrs, with the generator's O(1) Skip
// jumping the inter-window gaps — the timing stage does ~Window/Period of
// the exact work past the head. Exact and adaptive fidelity simulate the
// full stream.
func RunTimingContext(ctx context.Context, cfg Config, prof workload.Profile) (*ActivityTrace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := workload.New(prof, cfg.Instructions)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", prof.Name, err)
	}
	var stream trace.Stream = gen
	if fd := cfg.Fidelity.norm(); fd.Mode == FidelityPhase {
		sampler, err := trace.NewSystematicSampler(gen, trace.SamplerConfig{
			WindowInstrs: fd.SampleWindowInstrs,
			PeriodInstrs: fd.SamplePeriodInstrs,
			HeadInstrs:   fd.SampleHeadInstrs,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", prof.Name, err)
		}
		stream = sampler
	}
	return RunTimingStreamContext(ctx, cfg, prof, stream)
}

// RunTimingStream executes the timing stage over an arbitrary instruction
// stream — a trace file (trace.NewReader), a sampled stream
// (trace.NewSystematicSampler), or any other trace.Stream. prof supplies
// the workload's identity (name, suite, Table 3 targets) for reporting.
func RunTimingStream(cfg Config, prof workload.Profile, stream trace.Stream) (*ActivityTrace, error) {
	return RunTimingStreamContext(context.Background(), cfg, prof, stream)
}

// RunTimingStreamContext is RunTimingStream with cancellation, polled
// between instructions at a granularity that keeps the overhead invisible.
func RunTimingStreamContext(ctx context.Context, cfg Config, prof workload.Profile,
	stream trace.Stream) (*ActivityTrace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if stream == nil {
		return nil, fmt.Errorf("sim: %s: nil instruction stream", prof.Name)
	}
	ms, err := microarch.NewSimulator(cfg.Machine)
	if err != nil {
		return nil, err
	}
	// A sampling stream that can statistically warm the memory hierarchy
	// across skipped spans gets the simulator's caches to warm into.
	if w, ok := stream.(interface{ SetWarmer(trace.MemWarmer) }); ok {
		w.SetWarmer(ms)
	}
	res, err := ms.Run(&cancellableStream{ctx: ctx, src: stream})
	if err != nil {
		return nil, fmt.Errorf("sim: %s: timing: %w", prof.Name, err)
	}
	if len(res.Samples) == 0 {
		return nil, fmt.Errorf("sim: %s: timing produced no activity samples", prof.Name)
	}
	return &ActivityTrace{Profile: prof, Timing: res}, nil
}

// cancellableStream forwards a trace.Stream, surfacing ctx cancellation as
// a stream error every 4096 instructions. The microarch simulator stops on
// the first stream error, so a cancelled timing run unwinds promptly and
// errors.Is(err, context.Canceled) holds through the wrapping.
type cancellableStream struct {
	ctx context.Context
	src trace.Stream
	n   uint
}

func (s *cancellableStream) Next() (trace.Instruction, error) {
	if s.n&4095 == 0 {
		if err := s.ctx.Err(); err != nil {
			return trace.Instruction{}, err
		}
	}
	s.n++
	return s.src.Next()
}

// AppRun is the evaluation of one application at one technology point. FIT
// values are raw (unit proportionality constants) until scaled by the
// study-level calibration.
type AppRun struct {
	// App and Suite identify the workload.
	App   string
	Suite workload.Suite
	// Tech is the technology point evaluated.
	Tech scaling.Technology
	// IPC is the timing result (technology independent).
	IPC float64
	// AvgDynamicW, AvgLeakageW, AvgTotalW are time-averaged chip powers.
	AvgDynamicW, AvgLeakageW, AvgTotalW float64
	// AppPowerScale is the per-application dynamic calibration factor used.
	AppPowerScale float64
	// MaxStructTempK is the hottest instantaneous structure temperature
	// (Figure 2's quantity).
	MaxStructTempK float64
	// AvgMaxStructTempK is the time-average of the hottest structure.
	AvgMaxStructTempK float64
	// SinkTempK is the time-averaged heat-sink temperature.
	SinkTempK float64
	// DieAvgTempK is the time-averaged area-weighted die temperature.
	DieAvgTempK float64
	// MaxAF and MaxTempK hold per-structure maxima over the run, feeding
	// the worst-case operating-point analysis (§5.2).
	MaxAF, MaxTempK [microarch.NumStructures]float64
	// MaxDieAvgTempK is the maximum instantaneous die-average temperature.
	MaxDieAvgTempK float64
	// RawFIT is the time-averaged failure-rate breakdown with unit
	// proportionality constants.
	RawFIT core.Breakdown
	// TempTraceK holds the per-interval hottest-structure temperature when
	// Config.RecordThermalTrace is set; nil otherwise.
	TempTraceK []float64
}

// EvaluateTech runs the power/thermal/reliability pipeline for one
// activity trace at one technology point.
//
// sinkTempTargetK, when positive, adjusts the heat-sink resistance so the
// steady-state sink temperature matches it (the paper holds each
// application's sink temperature constant across technologies, §4.3).
// appPowerScale is the per-application dynamic-power calibration factor
// (1 to disable).
func EvaluateTech(cfg Config, tr *ActivityTrace, tech scaling.Technology,
	sinkTempTargetK, appPowerScale float64) (AppRun, error) {
	return EvaluateTechContext(context.Background(), cfg, tr, tech, sinkTempTargetK, appPowerScale)
}

// EvaluateTechContext is EvaluateTech with cancellation: the transient loop
// polls ctx every few hundred intervals and aborts with ctx.Err(). The
// evaluation is pure with respect to the trace (the trace is only read), so
// any number of EvaluateTechContext calls may share one ActivityTrace
// concurrently.
//
// Internally the evaluation runs as two explicitly keyed stages — the
// power+thermal transient (RunThermalContext) followed by the reliability
// accumulation (AccumulateFITContext). Composing them here is numerically
// identical to the historical fused loop; the split exists so the stage
// cache can reuse each half independently.
func EvaluateTechContext(ctx context.Context, cfg Config, tr *ActivityTrace, tech scaling.Technology,
	sinkTempTargetK, appPowerScale float64) (AppRun, error) {
	ts, err := RunThermalContext(ctx, cfg, tr, tech, sinkTempTargetK, appPowerScale)
	if err != nil {
		return AppRun{}, err
	}
	return AccumulateFITContext(ctx, cfg, ts, tech)
}

// floorplanFor returns the POWER4 floorplan scaled to a technology point.
func floorplanFor(tech scaling.Technology) (floorplan.Floorplan, error) {
	return floorplan.POWER4().Scaled(tech.RelArea)
}

// SolveOperatingPoint iterates the leakage-temperature fixed point for the
// whole-run average activity, optionally re-solving the sink resistance so
// the steady sink temperature hits the target (pass 1 of the paper's §4.3
// methodology). It leaves the network's sink resistance set and returns
// the steady state. Exposed for alternative evaluation loops such as the
// dynamic reliability manager (internal/drm).
func SolveOperatingPoint(pm *power.Model, net *thermal.Network,
	avgAF [microarch.NumStructures]float64, sinkTempTargetK float64) (thermal.State, error) {
	var temps [microarch.NumStructures]float64
	for i := range temps {
		temps[i] = 355
	}
	var steady thermal.State
	for iter := 0; iter < 60; iter++ {
		blockP, total := pm.Total(avgAF, temps)
		if sinkTempTargetK > 0 {
			r := (sinkTempTargetK - net.Ambient()) / total
			if r <= 0 {
				return thermal.State{}, fmt.Errorf("sink target %vK at/below ambient", sinkTempTargetK)
			}
			if err := net.SetSinkR(r); err != nil {
				return thermal.State{}, err
			}
		}
		next, err := net.SteadyState(blockP[:])
		if err != nil {
			return thermal.State{}, err
		}
		var maxDelta float64
		for i := range temps {
			if !IsReasonableTemp(next.Blocks[i]) {
				return thermal.State{}, fmt.Errorf(
					"thermal runaway at %.0fW: temperature diverged (cooling insufficient "+
						"for this configuration; lower the power or the sink resistance)", total)
			}
			d := math.Abs(next.Blocks[i] - temps[i])
			if d > maxDelta {
				maxDelta = d
			}
			// Damped update for stable convergence of the exponential
			// leakage feedback.
			temps[i] = 0.5*temps[i] + 0.5*next.Blocks[i]
		}
		steady = next
		if maxDelta < 1e-4 {
			return steady, nil
		}
	}
	return steady, fmt.Errorf("operating point did not converge")
}

// IsReasonableTemp rejects non-finite and physically absurd junction
// temperatures (the leakage feedback diverges past ~500K anyway). Shared
// by the CMP solver in internal/multicore.
func IsReasonableTemp(tK float64) bool {
	return !math.IsNaN(tK) && tK > 0 && tK < 1000
}
