package sim

import (
	"context"
	"math"
	"runtime/debug"
	"testing"
	"time"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/power"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/thermal"
	"github.com/ramp-sim/ramp/internal/workload"
)

// transientFixture builds everything RunThermalContext sets up before the
// transient loop, so tests can drive the loop helpers directly.
type transientFixture struct {
	cfg    Config
	tr     *ActivityTrace
	net    *thermal.Network
	pm     *power.Model
	steady thermal.State
}

func newTransientFixture(t testing.TB, instructions int64) *transientFixture {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Instructions = instructions
	prof := workload.Profiles()[0]
	tech := scaling.Base()
	tr, err := RunTimingContext(context.Background(), cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplanFor(tech)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := power.NewModel(cfg.Power, tech, fp.Areas())
	if err != nil {
		t.Fatal(err)
	}
	net, err := thermal.NewNetwork(fp, cfg.Thermal)
	if err != nil {
		t.Fatal(err)
	}
	steady, err := SolveOperatingPoint(pm, net, tr.Timing.AvgAF, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &transientFixture{cfg: cfg, tr: tr, net: net, pm: pm, steady: steady}
}

// TestThermalTransientZeroAlloc pins the exact transient loop at zero
// heap allocations per run once the interval buffer and pooled scratch
// are warm — the CI alloc gate for the thermal stage.
func TestThermalTransientZeroAlloc(t *testing.T) {
	fx := newTransientFixture(t, 100_000)
	ts := &ThermalSeries{Intervals: make([]ThermalInterval, 0, len(fx.tr.Timing.Samples))}
	ctx := context.Background()

	// GC off so the scratch pool cannot be emptied mid-measurement.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(50, func() {
		ts.Intervals = ts.Intervals[:0]
		fx.net.Init(fx.steady)
		if err := runTransientExact(ctx, fx.cfg, fx.net, fx.pm, fx.tr, ts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("exact transient loop allocates %v times per run, want 0", allocs)
	}
}

// TestThermalPhaseTransientSteadyStateAllocs pins the coarse integrator's
// per-substep work as allocation-free too: with the interval buffer and
// class table warm, repeat runs only pay the per-cell phase plan and
// class memoization, never per-substep heap traffic.
func TestThermalPhaseTransientSteadyStateAllocs(t *testing.T) {
	fx := newTransientFixture(t, 100_000)
	fd := (&Fidelity{Mode: FidelityAdaptive}).norm()
	ts := &ThermalSeries{Intervals: make([]ThermalInterval, 0, len(fx.tr.Timing.Samples))}
	ctx := context.Background()

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(50, func() {
		ts.Intervals = ts.Intervals[:0]
		fx.net.Init(fx.steady)
		plan, err := compressPlan(fx.cfg, fx.tr, fd)
		if err != nil {
			t.Fatal(err)
		}
		if err := runTransientPhases(ctx, fx.net, fx.pm, plan, ts, fd); err != nil {
			t.Fatal(err)
		}
	})
	// The phase plan and class table are per-run cell setup (bounded
	// append growth of the phase/class slices plus the class map), not
	// per-substep traffic; per-substep allocation would scale with the
	// hundreds of substeps and blow far past this bound.
	if allocs > 48 {
		t.Errorf("phase transient allocates %v times per run, want only the per-cell plan", allocs)
	}
}

// BenchmarkThermalTransientExact is the CI-greppable form of the alloc
// gate: the obs job asserts its output reports 0 allocs/op.
func BenchmarkThermalTransientExact(b *testing.B) {
	fx := newTransientFixture(b, 100_000)
	ts := &ThermalSeries{Intervals: make([]ThermalInterval, 0, len(fx.tr.Timing.Samples))}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Intervals = ts.Intervals[:0]
		fx.net.Init(fx.steady)
		if err := runTransientExact(ctx, fx.cfg, fx.net, fx.pm, fx.tr, ts); err != nil {
			b.Fatal(err)
		}
	}
}

// countingCtx counts Err() polls and reports cancellation from the Nth
// poll on. The cadence tests assert the loops return context.Canceled
// after exactly that poll — i.e. cancellation is observed at the first
// poll that sees it, within one cancelCheckInterval window.
type countingCtx struct {
	calls, limit int
}

func (c *countingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countingCtx) Done() <-chan struct{}       { return nil }
func (c *countingCtx) Value(key any) any           { return nil }
func (c *countingCtx) Err() error {
	c.calls++
	if c.calls >= c.limit {
		return context.Canceled
	}
	return nil
}

// TestThermalCancellationCadence drives the exact transient loop with a
// context that cancels on its third poll: one pre-loop check plus the
// polls at samples 0 and cancelCheckInterval. The loop must return
// immediately at that poll, having made no further ones.
func TestThermalCancellationCadence(t *testing.T) {
	// Enough instructions that the trace spans several cadence windows.
	fx := newTransientFixture(t, 800_000)
	if n := len(fx.tr.Timing.Samples); n <= 2*cancelCheckInterval {
		t.Fatalf("trace too short to exercise the cadence: %d samples", n)
	}
	cctx := &countingCtx{limit: 2}
	ts := &ThermalSeries{}
	err := runTransientExact(cctx, fx.cfg, fx.net, fx.pm, fx.tr, ts)
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if cctx.calls != cctx.limit {
		t.Errorf("loop polled %d times after cancellation became visible at poll %d",
			cctx.calls, cctx.limit)
	}
	// The poll that observed cancellation was at sample
	// (limit-1)*cancelCheckInterval; at most one window was processed.
	if got := len(ts.Intervals); got > cctx.limit*cancelCheckInterval {
		t.Errorf("%d intervals processed after cancellation; cadence window is %d",
			got, cancelCheckInterval)
	}
}

// TestMCCancellationCadence does the same for the Monte Carlo replica
// loop, which shares cancelCheckInterval.
func TestMCCancellationCadence(t *testing.T) {
	var b core.Breakdown
	for s := range b.ByStructMech {
		for m := range b.ByStructMech[s] {
			b.ByStructMech[s][m] = 100
		}
	}
	sampler, err := core.NewLifetimeSampler(b, core.SOFRLifetimes())
	if err != nil {
		t.Fatal(err)
	}
	rr := core.NewReplicaRand()
	lifetimes := make([]float64, 4*cancelCheckInterval)
	cctx := &countingCtx{limit: 2}
	err = sampleSegment(cctx, rr, sampler, 1, 0, 0, len(lifetimes), lifetimes)
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if cctx.calls != cctx.limit {
		t.Errorf("replica loop polled %d times after cancellation became visible at poll %d",
			cctx.calls, cctx.limit)
	}
	// Replicas past the poll that observed cancellation must be untouched.
	for r := (cctx.limit - 1) * cancelCheckInterval; r < len(lifetimes); r++ {
		if lifetimes[r] != 0 {
			t.Fatalf("replica %d sampled after cancellation", r)
		}
	}
}

// TestAdaptiveTransientTracksExact is a single-cell sanity check that the
// coarse integrator follows the exact trajectory: aggregate temperatures
// within a fraction of a kelvin, far fewer intervals, durations equal.
func TestAdaptiveTransientTracksExact(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Instructions = 200_000
	prof := workload.Profiles()[0]
	tech := scaling.Base()
	tr, err := RunTimingContext(context.Background(), cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := RunThermalContext(context.Background(), cfg, tr, tech, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fidelity = &Fidelity{Mode: FidelityAdaptive}
	adaptive, err := RunThermalContext(context.Background(), cfg, tr, tech, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(exact.AvgMaxStructTempK - adaptive.AvgMaxStructTempK); d > 0.5 {
		t.Errorf("avg hottest-structure temperature off by %.3fK", d)
	}
	if d := math.Abs(exact.DieAvgTempK - adaptive.DieAvgTempK); d > 0.5 {
		t.Errorf("die-average temperature off by %.3fK", d)
	}
	if d := math.Abs(exact.AvgDynamicW - adaptive.AvgDynamicW); d > 0.05*exact.AvgDynamicW {
		t.Errorf("dynamic power off by %.3fW", d)
	}
	var exactDur, adaptiveDur float64
	for i := range exact.Intervals {
		exactDur += exact.Intervals[i].DurUS
	}
	for i := range adaptive.Intervals {
		adaptiveDur += adaptive.Intervals[i].DurUS
	}
	if d := math.Abs(exactDur - adaptiveDur); d > 1e-6*exactDur {
		t.Errorf("durations differ: exact %.3fµs, adaptive %.3fµs", exactDur, adaptiveDur)
	}
	if len(adaptive.Intervals) >= len(exact.Intervals) {
		t.Errorf("adaptive produced %d intervals, exact %d — no compression",
			len(adaptive.Intervals), len(exact.Intervals))
	}
	if adaptive.MaxAF != exact.MaxAF {
		t.Error("adaptive lost the raw per-structure activity maxima")
	}
}
