package sim

import (
	"fmt"
	"sync"
	"testing"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/workload"
)

// benchStudyInputs returns a small study: enough work to measure, small
// enough that `go test -bench` stays tractable.
func benchStudyInputs(b *testing.B) (Config, []workload.Profile, []scaling.Technology) {
	b.Helper()
	cfg := DefaultConfig()
	cfg.Instructions = 100_000
	var profiles []workload.Profile
	for _, name := range []string{"ammp", "gzip", "crafty", "mesa"} {
		p, err := workload.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	return cfg, profiles, scaling.Generations()
}

// BenchmarkRunStudyPipelined measures the dependency-graph scheduler: a
// profile's scaled evaluations start as soon as its own base calibration
// finishes.
func BenchmarkRunStudyPipelined(b *testing.B) {
	cfg, profiles, techs := benchStudyInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunStudy(cfg, profiles, techs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunStudyBarriered measures the previous stage-barriered
// execution (all timing, then all base, then each tech in lockstep),
// preserved below as runStudyBarriered for comparison.
func BenchmarkRunStudyBarriered(b *testing.B) {
	cfg, profiles, techs := benchStudyInputs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runStudyBarriered(cfg, profiles, techs); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBarrieredMatchesPipelined pins the benchmark baseline to the real
// implementation: both execution strategies must produce identical results.
func TestBarrieredMatchesPipelined(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	cfg := testConfig()
	cfg.Instructions = 100_000
	profiles := testProfiles(t)[:2]
	techs := scaling.Generations()[:2]
	want, err := runStudyBarriered(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStudy(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Apps {
		if !got.FIT(got.Apps[i]).Equal(want.FIT(want.Apps[i])) {
			t.Fatalf("app %d FIT differs between pipelined and barriered runs", i)
		}
	}
	for ti := range want.Worst {
		if !got.WorstFIT(ti).Equal(want.WorstFIT(ti)) {
			t.Fatalf("tech %d worst-case FIT differs between pipelined and barriered runs", ti)
		}
	}
}

// runStudyBarriered is the pre-scheduler RunStudy, kept verbatim as the
// benchmark baseline: unbounded goroutines with a barrier between stages.
func runStudyBarriered(cfg Config, profiles []workload.Profile, techs []scaling.Technology) (*StudyResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("sim: no profiles")
	}
	if len(techs) == 0 {
		return nil, fmt.Errorf("sim: no technologies")
	}
	base := scaling.Base()
	if techs[0].Name != base.Name {
		return nil, fmt.Errorf("sim: first technology must be %s (calibration anchor), got %s",
			base.Name, techs[0].Name)
	}

	// ---- Stage 1: timing simulations, in parallel.
	traces := make([]*ActivityTrace, len(profiles))
	errs := make([]error, len(profiles))
	var wg sync.WaitGroup
	for i := range profiles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traces[i], errs[i] = RunTiming(cfg, profiles[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: timing %s: %w", profiles[i].Name, err)
		}
	}

	// ---- Stage 2: base technology — solve per-app power scale and
	// capture per-app sink temperatures.
	baseRuns := make([]AppRun, len(profiles))
	scales := make([]float64, len(profiles))
	for i := range profiles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scale := 1.0
			run, err := EvaluateTech(cfg, traces[i], base, 0, scale)
			if err != nil {
				errs[i] = err
				return
			}
			if cfg.CalibrateAppPower && profiles[i].TargetPowerW > 0 {
				for pass := 0; pass < 2; pass++ {
					want := profiles[i].TargetPowerW - run.AvgLeakageW
					if want <= 0 || run.AvgDynamicW <= 0 {
						break
					}
					scale *= want / run.AvgDynamicW
					run, err = EvaluateTech(cfg, traces[i], base, 0, scale)
					if err != nil {
						errs[i] = err
						return
					}
				}
			}
			baseRuns[i], scales[i] = run, scale
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: base eval %s: %w", profiles[i].Name, err)
		}
	}

	// ---- Stage 3: reliability qualification at the base point (§4.4).
	var rawAvg [core.NumMechanisms]float64
	for _, run := range baseRuns {
		mech := run.RawFIT.ByMechanism()
		for m := range rawAvg {
			rawAvg[m] += mech[m] / float64(len(baseRuns))
		}
	}
	consts, err := core.Calibrate(rawAvg, cfg.QualFITPerMechanism)
	if err != nil {
		return nil, fmt.Errorf("sim: qualification: %w", err)
	}

	// ---- Stage 4: scaled technology points, holding each application's
	// sink temperature at its base-technology value (§4.3).
	result := &StudyResult{
		Config:    cfg,
		Techs:     techs,
		Constants: consts,
		Apps:      make([]AppRun, 0, len(profiles)*len(techs)),
	}
	result.Apps = append(result.Apps, baseRuns...)
	for _, tech := range techs[1:] {
		runs := make([]AppRun, len(profiles))
		for i := range profiles {
			wg.Add(1)
			go func(i int, tech scaling.Technology) {
				defer wg.Done()
				runs[i], errs[i] = EvaluateTech(cfg, traces[i], tech, baseRuns[i].SinkTempK, scales[i])
			}(i, tech)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("sim: %s @ %s: %w", profiles[i].Name, tech.Name, err)
			}
		}
		result.Apps = append(result.Apps, runs...)
	}

	// ---- Stage 5: worst-case ("max") per technology (§5.2).
	result.Worst = make([]WorstCase, len(techs))
	for ti, tech := range techs {
		wc, err := worstCaseFor(cfg, result.AppsAt(ti), tech)
		if err != nil {
			return nil, err
		}
		result.Worst[ti] = wc
	}
	return result, nil
}
