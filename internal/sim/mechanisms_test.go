package sim

import (
	"strings"
	"testing"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/workload"
)

// Golden stage keys captured from the pre-registry implementation (fixed
// four-mechanism arrays, no Mechanisms field anywhere). The registry
// redesign must keep the default mechanism set byte-identical at every
// content-addressed key, or every existing disk cache silently invalidates.
const (
	goldenStudyKey   = "e41ad5058b83171105b1bdc32812e7fe7049a25f9610e6886726b95120fdeb5c"
	goldenTimingKey  = "12acf2de615e811767483a71f7c4cb0c640bc83549a684ebf2471b3172fbbf19"
	goldenThermalKey = "a77dc95cd0aee44792a2f05823157892df6e9191b05b38fc257e4f90c20a8def"
	goldenFITKey     = "595c415d65def1574a58eaa5d1a0ec709c233b592c1f6a9dc23ed759ec094d5f"
	goldenMCStudyKey = "c724f31782f8a86bb64e1e97e6dc2f5ab86ef63248fcb38414b62af44e97f7b9"
)

// TestGoldenKeysDefaultSet pins every stage key of the default study to the
// digests the seed implementation produced before mechanisms became
// selectable.
func TestGoldenKeysDefaultSet(t *testing.T) {
	cfg := DefaultConfig()
	profiles := workload.Profiles()
	techs := scaling.Generations()

	if got, err := StudyKey(cfg, profiles, techs); err != nil || got != goldenStudyKey {
		t.Errorf("StudyKey = %s, %v; want golden %s", got, err, goldenStudyKey)
	}
	if got, err := TimingKey(cfg, profiles[0]); err != nil || got != goldenTimingKey {
		t.Errorf("TimingKey = %s, %v; want golden %s", got, err, goldenTimingKey)
	}
	if got, err := ThermalKey(cfg, profiles[0], techs[1]); err != nil || got != goldenThermalKey {
		t.Errorf("ThermalKey = %s, %v; want golden %s", got, err, goldenThermalKey)
	}
	if got, err := FITKey(cfg, profiles[0], techs[1]); err != nil || got != goldenFITKey {
		t.Errorf("FITKey = %s, %v; want golden %s", got, err, goldenFITKey)
	}
	mcfg := MCConfig{Samples: 1000, Model: "sofr", Seed: 42}
	if got, err := MCStudyKey(cfg, mcfg, profiles, techs); err != nil || got != goldenMCStudyKey {
		t.Errorf("MCStudyKey = %s, %v; want golden %s", got, err, goldenMCStudyKey)
	}
}

// TestDefaultSetSpellingsShareKeys: every spelling of the paper's four
// mechanisms — nil, canonical order, shuffled, upper-cased — canonicalises
// away and hits the golden keys, so pre-registry caches stay warm.
func TestDefaultSetSpellingsShareKeys(t *testing.T) {
	profiles := workload.Profiles()
	techs := scaling.Generations()
	for _, names := range [][]string{
		nil,
		{},
		{"em", "sm", "tc", "tddb"},
		{"TDDB", "tc", "SM", "em"},
		{"sm", "sm", "em", "tc", "tddb", "EM"},
	} {
		cfg := DefaultConfig()
		cfg.Mechanisms = names
		key, err := StudyKey(cfg, profiles, techs)
		if err != nil {
			t.Fatalf("StudyKey(%v): %v", names, err)
		}
		if key != goldenStudyKey {
			t.Errorf("StudyKey(%v) = %s; want golden %s", names, key, goldenStudyKey)
		}
		fk, err := FITKey(cfg, profiles[0], techs[1])
		if err != nil {
			t.Fatalf("FITKey(%v): %v", names, err)
		}
		if fk != goldenFITKey {
			t.Errorf("FITKey(%v) = %s; want golden %s", names, fk, goldenFITKey)
		}
	}
}

// TestExtendedSetsDivergeOnlyDownstream: adding a mechanism must change the
// study and reliability keys (different physics, different results) while
// leaving the timing and thermal keys untouched (same trace, same
// transient), so ablations share the expensive upstream artifacts.
func TestExtendedSetsDivergeOnlyDownstream(t *testing.T) {
	profiles := workload.Profiles()
	techs := scaling.Generations()
	base := DefaultConfig()

	seenStudy := map[string]string{goldenStudyKey: "default"}
	seenFIT := map[string]string{goldenFITKey: "default"}
	for _, names := range [][]string{
		{"em", "sm", "tc", "tddb", "nbti"},
		{"em", "sm", "tc", "tddb", "hci"},
		{"em", "sm", "tc", "tddb", "nbti", "hci"},
		{"em", "sm", "tc", "tddb", "tc-rainflow"},
		{"em", "nbti"},
	} {
		cfg := base
		cfg.Mechanisms = names
		label := strings.Join(names, ",")

		sk, err := StudyKey(cfg, profiles, techs)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seenStudy[sk]; dup {
			t.Errorf("StudyKey collision: %s and %s share %s", label, prev, sk)
		}
		seenStudy[sk] = label

		fk, err := FITKey(cfg, profiles[0], techs[1])
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seenFIT[fk]; dup {
			t.Errorf("FITKey collision: %s and %s share %s", label, prev, fk)
		}
		seenFIT[fk] = label

		// Upstream stages must not see the mechanism selection.
		if tk, err := TimingKey(cfg, profiles[0]); err != nil || tk != goldenTimingKey {
			t.Errorf("TimingKey(%s) = %s, %v; want golden (mechanisms must not leak upstream)", label, tk, err)
		}
		if hk, err := ThermalKey(cfg, profiles[0], techs[1]); err != nil || hk != goldenThermalKey {
			t.Errorf("ThermalKey(%s) = %s, %v; want golden (mechanisms must not leak upstream)", label, hk, err)
		}
	}

	// Unknown names are rejected at the key boundary, before any work runs.
	bad := base
	bad.Mechanisms = []string{"em", "gamma-ray"}
	if _, err := StudyKey(bad, profiles, techs); err == nil {
		t.Error("StudyKey accepted an unregistered mechanism name")
	}
}

// TestStudyResultsByteIdenticalAcrossDefaultSpellings runs the study twice —
// once with Mechanisms nil, once with a shuffled explicit spelling of the
// default four — and requires the canonical JSON of the results to match
// byte for byte.
func TestStudyResultsByteIdenticalAcrossDefaultSpellings(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	cfg := testConfig()
	cfg.Instructions = 100_000
	profiles := testProfiles(t)[:2]
	techs := scaling.Generations()[:2]

	implicit, err := RunStudy(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Mechanisms = []string{"TDDB", "tc", "SM", "em"}
	explicit, err := RunStudy(cfg2, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	a, err := CanonicalJSON(implicit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalJSON(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("explicit default-set spelling changed the study result bytes")
	}
	if names := implicit.MechanismNames(); len(names) != 4 {
		t.Errorf("MechanismNames() = %v; want the default four", names)
	}
}

// TestExtendedMechanismStudy exercises the full pipeline with the three new
// mechanisms enabled: NBTI and HCI accumulate per-structure FIT, the
// rainflow TC model contributes a package-level series term, qualification
// calibrates every selected mechanism to the §4.4 budget, and the §5.2
// worst case excludes the series-only mechanism by design.
func TestExtendedMechanismStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	cfg := testConfig()
	cfg.Instructions = 100_000
	cfg.Mechanisms = []string{"em", "sm", "tc", "tddb", "nbti", "hci", "tc-rainflow"}
	profiles := testProfiles(t)[:2]
	techs := scaling.Generations()[:2]

	res, err := RunStudy(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MechanismNames(); len(got) != 7 {
		t.Fatalf("MechanismNames() = %v; want 7 names", got)
	}

	// Qualification (§4.4) drives the base-point suite average of every
	// selected mechanism to the per-mechanism budget.
	avg := res.SuiteAverageMechByName(0, 0)
	for _, name := range res.MechanismNames() {
		if rel := avg[name]/cfg.QualFITPerMechanism - 1; rel > 1e-9 || rel < -1e-9 {
			t.Errorf("base suite-average FIT for %s = %g; want %g", name, avg[name], cfg.QualFITPerMechanism)
		}
	}

	// Per-app breakdowns carry the new mechanisms under their names.
	for _, a := range res.AppsAt(1) {
		fit := res.FIT(a).FITByName()
		for _, name := range []string{core.MechNBTI, core.MechHCI, core.MechTCRainflow} {
			if fit[name] <= 0 {
				t.Errorf("%s @ tech 1: %s FIT = %g; want > 0", a.App, name, fit[name])
			}
		}
	}

	// The worst case evaluates a synthetic steady state, which has no
	// temperature series: the series-only rainflow mechanism contributes 0.
	worst := res.WorstFIT(1).FITByName()
	if worst[core.MechTCRainflow] != 0 {
		t.Errorf("worst-case tc-rainflow FIT = %g; want 0 (series-only)", worst[core.MechTCRainflow])
	}
	for _, name := range []string{core.MechEM, core.MechNBTI, core.MechHCI} {
		if worst[name] <= 0 {
			t.Errorf("worst-case %s FIT = %g; want > 0", name, worst[name])
		}
	}
}

// TestMCStudyWithExtendedSet: Monte Carlo sampling must handle mechanisms
// beyond the legacy four — SOFR falls back to exponential draws, wear-out
// to Weibull — without disturbing the default-set replica stream.
func TestMCStudyWithExtendedSet(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	cfg := testConfig()
	cfg.Instructions = 100_000
	profiles := testProfiles(t)[:1]
	techs := scaling.Generations()[:2]
	mcfg := MCConfig{Samples: 400, Model: "wearout", Seed: 7}

	for _, names := range [][]string{nil, {"em", "sm", "tc", "tddb", "nbti", "hci"}} {
		c := cfg
		c.Mechanisms = names
		res, err := RunMCStudy(c, mcfg, profiles, techs)
		if err != nil {
			t.Fatalf("RunMCStudy(%v): %v", names, err)
		}
		for _, cell := range res.Cells {
			if cell.MeanYears <= 0 {
				t.Errorf("mechanisms %v: cell %s@%s mean %g years; want > 0",
					names, cell.App, cell.Tech, cell.MeanYears)
			}
		}
	}
}
