package sim

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/obs"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sched"
	"github.com/ramp-sim/ramp/internal/stats"
	"github.com/ramp-sim/ramp/internal/workload"
)

// Monte Carlo lifetime studies. A finished study grid fixes every cell's
// calibrated FIT breakdown; this stage relaxes the SOFR constant-rate
// assumption by drawing thousands of wear-out lifetime replicas per cell
// and reporting percentile + confidence-interval summaries instead of the
// paper's point MTTFs. Replicas are embarrassingly parallel: they fan out
// in batches across the bounded scheduler, and every replica derives its
// own splittable RNG stream from (root seed, cell, replica), so the result
// is byte-identical at any parallelism and any batch size.

// StageMC labels Monte Carlo replica-batch tasks in progress callbacks.
const StageMC = "mc"

// MC study limits enforced by Validate: generous enough for convergence
// studies, small enough that a single request cannot exhaust memory (the
// per-cell replica buffer is Samples × 8 bytes).
const (
	// MaxMCSamples bounds replicas per cell for one MC study.
	MaxMCSamples = 10_000_000
	// MaxMCPercentiles bounds the requested percentile list length.
	MaxMCPercentiles = 64
)

// DefaultMCSamples is the replica count used when MCConfig.Samples is 0.
const DefaultMCSamples = 10_000

// defaultMCBatch is the replica-batch size used when MCConfig.BatchSize is
// 0: large enough that scheduling overhead vanishes against ~100ns/replica
// sampling cost, small enough to keep progress events flowing.
const defaultMCBatch = 4096

// MCConfig parameterises a Monte Carlo lifetime study.
type MCConfig struct {
	// Samples is the number of lifetime replicas per (application ×
	// technology) cell; 0 means DefaultMCSamples.
	Samples int `json:"samples"`
	// Model selects the per-mechanism lifetime model: "sofr" (alias
	// "exponential") or "wearout" (alias "wear-out"); empty means
	// "wearout".
	Model string `json:"model"`
	// Percentiles lists the reported lifetime percentiles in (0,100);
	// empty means {5, 50, 95}. The list is sorted and deduplicated.
	Percentiles []float64 `json:"percentiles"`
	// CILevel is the two-sided confidence level for the mean and
	// percentile intervals, in (0,1); 0 means 0.95.
	CILevel float64 `json:"ci_level"`
	// Seed is the root seed every replica stream derives from. The same
	// seed reproduces the study byte-for-byte at any parallelism.
	Seed int64 `json:"seed"`
	// BatchSize is the number of replicas per scheduled task; 0 means a
	// default tuned for sampling cost. It never affects numerics.
	BatchSize int `json:"batch_size"`
}

// Normalized returns the config with defaults filled in, the model name
// canonicalised, and the percentile list sorted and deduplicated — the
// form Validate checks and MCStudyKey hashes, so equivalent requests share
// one cache entry.
func (m MCConfig) Normalized() MCConfig {
	out := m
	if out.Samples == 0 {
		out.Samples = DefaultMCSamples
	}
	if out.Model == "" {
		out.Model = core.ModelWearOut
	}
	out.Model = core.CanonicalModelName(out.Model)
	if out.CILevel == 0 {
		out.CILevel = 0.95
	}
	if out.BatchSize == 0 {
		out.BatchSize = defaultMCBatch
	}
	if len(m.Percentiles) == 0 {
		out.Percentiles = []float64{5, 50, 95}
	} else {
		ps := append([]float64(nil), m.Percentiles...)
		sort.Float64s(ps)
		dedup := ps[:0]
		for i, p := range ps {
			if i == 0 || p != ps[i-1] {
				dedup = append(dedup, p)
			}
		}
		out.Percentiles = dedup
	}
	return out
}

// Validate checks a normalized config. Call Normalized first; a zero
// Samples or CILevel here is an error, not a default.
func (m MCConfig) Validate() error {
	if m.Samples < 1 {
		return fmt.Errorf("sim: mc: need at least 1 sample, got %d", m.Samples)
	}
	if m.Samples > MaxMCSamples {
		return fmt.Errorf("sim: mc: %d samples exceeds the per-cell limit %d", m.Samples, MaxMCSamples)
	}
	if _, err := core.LifetimeModelByName(m.Model); err != nil {
		return fmt.Errorf("sim: mc: %w", err)
	}
	if len(m.Percentiles) > MaxMCPercentiles {
		return fmt.Errorf("sim: mc: %d percentiles exceeds the limit %d", len(m.Percentiles), MaxMCPercentiles)
	}
	for _, p := range m.Percentiles {
		if !(p > 0 && p < 100) {
			return fmt.Errorf("sim: mc: percentile %v outside (0,100)", p)
		}
	}
	if !(m.CILevel > 0 && m.CILevel < 1) {
		return fmt.Errorf("sim: mc: confidence level %v outside (0,1)", m.CILevel)
	}
	if m.BatchSize < 1 {
		return fmt.Errorf("sim: mc: batch size %d must be positive", m.BatchSize)
	}
	return nil
}

// MCPercentile is one reported lifetime percentile with its
// order-statistic confidence interval.
type MCPercentile struct {
	// P is the percentile in (0,100).
	P float64 `json:"p"`
	// Years is the sample percentile of the replica lifetimes.
	Years float64 `json:"years"`
	// CI is the distribution-free order-statistic confidence interval at
	// the study's CILevel.
	CI stats.Interval `json:"ci"`
}

// MCCell is the Monte Carlo lifetime summary of one (application ×
// technology) cell.
type MCCell struct {
	// App, Suite, and Tech identify the cell; Tech is the technology name.
	App   string `json:"app"`
	Suite string `json:"suite"`
	Tech  string `json:"tech"`
	// FITTotal is the cell's calibrated total failure rate.
	FITTotal float64 `json:"fit_total"`
	// SOFRYears is the analytic series-system MTTF of the same breakdown —
	// the paper's point estimate, for comparison.
	SOFRYears float64 `json:"sofr_years"`
	// MeanYears is the Monte Carlo mean lifetime with its normal-theory
	// confidence interval; StdYears is the sample standard deviation.
	MeanYears float64        `json:"mean_years"`
	MeanCI    stats.Interval `json:"mean_ci"`
	StdYears  float64        `json:"std_years"`
	// Percentiles reports the requested lifetime percentiles in ascending
	// P order.
	Percentiles []MCPercentile `json:"percentiles"`
	// Samples is the number of replicas summarised: the full count on a
	// final cell, the replicas seen so far on a progress estimate.
	Samples int `json:"samples"`
}

// MCResult is the full output of a Monte Carlo lifetime study.
type MCResult struct {
	// MC echoes the normalized configuration used.
	MC MCConfig `json:"mc"`
	// Cells holds one summary per (application × technology), in the same
	// order as the underlying StudyResult.Apps grid.
	Cells []MCCell `json:"cells"`
	// TotalReplicas is len(Cells) × MC.Samples.
	TotalReplicas int `json:"total_replicas"`
}

// MCEvent is one progress or completion event of a running Monte Carlo
// study, delivered through MCOptions.OnEvent from worker goroutines.
type MCEvent struct {
	// Cell is the running estimate (Final false, summarising the replicas
	// drawn so far) or the final summary (Final true) for one grid cell.
	Cell MCCell
	// Final marks the cell as complete.
	Final bool
	// CellIndex locates the cell in the study grid; CellsDone and
	// CellsTotal count completed cells at emission time.
	CellIndex             int
	CellsDone, CellsTotal int
}

// MCOptions tunes the execution of a Monte Carlo study without affecting
// its numerics.
type MCOptions struct {
	// Parallelism bounds concurrently running replica batches; values < 1
	// default to runtime.GOMAXPROCS(0).
	Parallelism int
	// OnProgress, when non-nil, receives a completion event per replica
	// batch (stage StageMC). Called from worker goroutines.
	OnProgress func(sched.Progress)
	// Metrics, when non-nil, receives scheduler lifecycle events.
	Metrics sched.Recorder
	// OnEvent, when non-nil, receives incremental percentile/CI estimates
	// as batches land and a final event per cell. Called from worker
	// goroutines; must be safe for concurrent use. Estimates cost an extra
	// sort per batch, so leave nil when only the final result matters.
	OnEvent func(MCEvent)
}

// mcStudyRequest is the hashed identity of a Monte Carlo study: the
// underlying study identity plus the normalized MC configuration.
type mcStudyRequest struct {
	Study studyRequest `json:"study"`
	MC    MCConfig     `json:"mc"`
}

// MCStudyKey returns a stable content-addressed key for a Monte Carlo
// study request: the hex SHA-256 over the canonical JSON of the study
// identity and the normalized MC config. Alias model names, permuted
// percentile lists, and permuted or aliased mechanism lists hash
// identically.
func MCStudyKey(cfg Config, mcfg MCConfig, profiles []workload.Profile, techs []scaling.Technology) (string, error) {
	cfg, err := canonicalizeConfigMechanisms(cfg)
	if err != nil {
		return "", err
	}
	return hashKey(mcStudyRequest{
		Study: studyRequest{Config: cfg, Profiles: profiles, Techs: techs},
		MC:    mcfg.Normalized(),
	})
}

// mcCellState is the per-cell accumulation of a running MC study. Batch
// tasks write disjoint segments of lifetimes; done and partial are guarded
// by mu. The task that brings done to the full sample count observes every
// earlier segment write (they happened before their done increments under
// the same mutex) and finalises the cell.
type mcCellState struct {
	mu        sync.Mutex
	lifetimes []float64
	done      int
	partial   []float64 // only maintained when progress events are wanted
}

// MonteCarloStudy draws the Monte Carlo lifetime distribution for every
// cell of a finished study. The study grid supplies each cell's calibrated
// FIT breakdown — typically replayed from the stage cache, so replicas pay
// only the sampling cost. Replicas fan out in batches across a bounded
// scheduler; results are byte-identical for any Parallelism and any
// BatchSize because each replica's RNG stream depends only on (Seed, cell,
// replica).
func MonteCarloStudy(ctx context.Context, res *StudyResult, mcfg MCConfig, opts MCOptions) (*MCResult, error) {
	mcfg = mcfg.Normalized()
	if err := mcfg.Validate(); err != nil {
		return nil, err
	}
	model, err := core.LifetimeModelByName(mcfg.Model)
	if err != nil {
		return nil, fmt.Errorf("sim: mc: %w", err)
	}
	if res == nil || len(res.Apps) == 0 {
		return nil, fmt.Errorf("sim: mc: study has no evaluated cells")
	}

	ctx, span := obs.StartSpan(ctx, obs.SpanMC)
	if span != nil {
		span.SetAttr("cells", strconv.Itoa(len(res.Apps)))
		span.SetAttr("samples", strconv.Itoa(mcfg.Samples))
		span.SetAttr("model", mcfg.Model)
		defer span.Finish()
	}

	nCells := len(res.Apps)
	samples := mcfg.Samples
	samplers := make([]*core.LifetimeSampler, nCells)
	breakdowns := make([]core.Breakdown, nCells)
	for i, a := range res.Apps {
		b := res.FIT(a)
		s, err := core.NewLifetimeSampler(b, model)
		if err != nil {
			return nil, fmt.Errorf("sim: mc %s @ %s: %w", a.App, a.Tech.Name, err)
		}
		samplers[i] = s
		breakdowns[i] = b
	}

	cells := make([]mcCellState, nCells)
	for i := range cells {
		cells[i].lifetimes = make([]float64, samples)
	}
	out := make([]MCCell, nCells)
	var cellsDone atomic.Int64

	run := func(ctx context.Context, start, end int) error {
		rr := core.NewReplicaRand()
		for f := start; f < end; {
			ci := f / samples
			r0 := f % samples
			r1 := r0 + (end - f)
			if r1 > samples {
				r1 = samples
			}
			if err := sampleSegment(ctx, rr, samplers[ci], mcfg.Seed, ci, r0, r1, cells[ci].lifetimes); err != nil {
				return err
			}
			finishSegment(res, mcfg, &cells[ci], ci, r0, r1, breakdowns, out, &cellsDone, nCells, opts.OnEvent)
			f += r1 - r0
		}
		return nil
	}
	err = sched.MapChunks(ctx, nCells*samples, mcfg.BatchSize,
		sched.Options{Parallelism: opts.Parallelism, OnProgress: opts.OnProgress, Metrics: opts.Metrics},
		StageMC, run)
	if err != nil {
		return nil, err
	}
	return &MCResult{MC: mcfg, Cells: out, TotalReplicas: nCells * samples}, nil
}

// sampleSegment draws replicas [r0,r1) of cell ci into lifetimes, each
// from its own (seed, cell, replica) stream, under a sim.mc.batch span.
func sampleSegment(ctx context.Context, rr *core.ReplicaRand, sampler *core.LifetimeSampler,
	seed int64, ci, r0, r1 int, lifetimes []float64) error {
	_, span := obs.StartSpan(ctx, obs.SpanMCBatch)
	for r := r0; r < r1; r++ {
		// Same cancellation cadence as the thermal transient loop: a
		// cancelled study stops within one cancelCheckInterval window of
		// replicas.
		if (r-r0)&(cancelCheckInterval-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		rr.Seed(seed, uint64(ci), uint64(r))
		lifetimes[r] = sampler.Sample(rr.Rand())
	}
	if span != nil {
		span.SetAttr("cell", strconv.Itoa(ci))
		span.SetAttr("replicas", strconv.Itoa(r1-r0))
		span.Finish()
	}
	return nil
}

// finishSegment folds a completed segment into the cell's accumulator:
// progress estimates while the cell is filling, the final summary (and its
// event) when the last segment lands.
func finishSegment(res *StudyResult, mcfg MCConfig, c *mcCellState, ci, r0, r1 int,
	breakdowns []core.Breakdown, out []MCCell, cellsDone *atomic.Int64, nCells int,
	onEvent func(MCEvent)) {
	app := res.Apps[ci]
	samples := mcfg.Samples

	c.mu.Lock()
	c.done += r1 - r0
	finished := c.done == samples
	var snapshot []float64
	if onEvent != nil && !finished {
		c.partial = append(c.partial, c.lifetimes[r0:r1]...)
		snapshot = append([]float64(nil), c.partial...)
	}
	if finished {
		c.partial = nil
	}
	c.mu.Unlock()

	if snapshot != nil {
		sort.Float64s(snapshot)
		est := summariseCell(app, breakdowns[ci], snapshot, mcfg)
		onEvent(MCEvent{
			Cell: est, CellIndex: ci,
			CellsDone: int(cellsDone.Load()), CellsTotal: nCells,
		})
	}
	if finished {
		// All segment writes happened before their done-increments under
		// c.mu, so this task sees the complete buffer.
		sort.Float64s(c.lifetimes)
		cell := summariseCell(app, breakdowns[ci], c.lifetimes, mcfg)
		out[ci] = cell
		done := int(cellsDone.Add(1))
		if onEvent != nil {
			onEvent(MCEvent{Cell: cell, Final: true, CellIndex: ci, CellsDone: done, CellsTotal: nCells})
		}
	}
}

// summariseCell computes the percentile + CI summary of one cell from its
// sorted replica lifetimes. The estimator is deterministic: percentiles
// interpolate between closest ranks of the fully sorted sample, percentile
// CIs are distribution-free order statistics, the mean CI is normal
// theory.
func summariseCell(app AppRun, b core.Breakdown, sorted []float64, mcfg MCConfig) MCCell {
	var acc stats.Running
	for _, x := range sorted {
		acc.Add(x)
	}
	cell := MCCell{
		App:       app.App,
		Suite:     app.Suite.String(),
		Tech:      app.Tech.Name,
		FITTotal:  b.Total(),
		SOFRYears: b.MTTFYears(),
		MeanYears: acc.Mean(),
		StdYears:  acc.StdDev(),
		Samples:   len(sorted),
	}
	if iv, err := stats.MeanCI(acc.Mean(), acc.StdDev(), acc.N(), mcfg.CILevel); err == nil {
		cell.MeanCI = iv
	}
	cell.Percentiles = make([]MCPercentile, 0, len(mcfg.Percentiles))
	for _, p := range mcfg.Percentiles {
		years, err := stats.PercentileSorted(sorted, p)
		if err != nil {
			continue
		}
		mp := MCPercentile{P: p, Years: years}
		if iv, err := stats.PercentileCISorted(sorted, p, mcfg.CILevel); err == nil {
			mp.CI = iv
		}
		cell.Percentiles = append(cell.Percentiles, mp)
	}
	return cell
}

// RunMCStudy executes the underlying scaling study and its Monte Carlo
// lifetime stage in one call with default options.
func RunMCStudy(cfg Config, mcfg MCConfig, profiles []workload.Profile,
	techs []scaling.Technology) (*MCResult, error) {
	return RunMCStudyContext(context.Background(), cfg, mcfg, profiles, techs, StudyOptions{}, nil)
}

// RunMCStudyContext executes the underlying scaling study under opts —
// reusing its stage cache, so a warm cache reduces the study to replaying
// cheap artifacts — then fans out the Monte Carlo replicas with the same
// parallelism and metrics plumbing. onEvent, when non-nil, receives
// incremental estimates (see MCOptions.OnEvent).
func RunMCStudyContext(ctx context.Context, cfg Config, mcfg MCConfig,
	profiles []workload.Profile, techs []scaling.Technology,
	opts StudyOptions, onEvent func(MCEvent)) (*MCResult, error) {
	mcfg = mcfg.Normalized()
	if err := mcfg.Validate(); err != nil {
		return nil, err
	}
	res, err := RunStudyContext(ctx, cfg, profiles, techs, opts)
	if err != nil {
		return nil, err
	}
	return MonteCarloStudy(ctx, res, mcfg, MCOptions{
		Parallelism: opts.Parallelism,
		OnProgress:  opts.OnProgress,
		Metrics:     opts.Metrics,
		OnEvent:     onEvent,
	})
}
