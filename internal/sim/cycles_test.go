package sim

import (
	"testing"

	"github.com/ramp-sim/ramp/internal/cycles"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/workload"
)

func TestThermalTraceRecording(t *testing.T) {
	cfg := testConfig()
	cfg.Instructions = 150_000
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunTiming(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	// Off by default.
	off, err := EvaluateTech(cfg, tr, scaling.Base(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if off.TempTraceK != nil {
		t.Fatal("trace recorded without the flag")
	}
	cfg.RecordThermalTrace = true
	on, err := EvaluateTech(cfg, tr, scaling.Base(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(on.TempTraceK) != len(tr.Timing.Samples) {
		t.Fatalf("trace has %d samples, want %d", len(on.TempTraceK), len(tr.Timing.Samples))
	}
	for i, temp := range on.TempTraceK {
		if temp < 320 || temp > 400 {
			t.Fatalf("sample %d: implausible temperature %v", i, temp)
		}
	}
}

func TestPhasedWorkloadProducesMoreSmallCycleDamage(t *testing.T) {
	// The paper's §2 open problem, measured: a workload with program
	// phases (alternating memory/compute behaviour) produces more
	// small-thermal-cycle damage than the same workload without phases.
	if testing.Short() {
		t.Skip("phase comparison is slow; skipped with -short")
	}
	cfg := testConfig()
	cfg.Instructions = 800_000
	cfg.RecordThermalTrace = true

	base, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	phased := base
	phased.PhaseInstrs = 40_000
	phased.PhaseMemScale = 8

	damage := func(p workload.Profile) float64 {
		t.Helper()
		tr, err := RunTiming(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		run, err := EvaluateTech(cfg, tr, scaling.Base(), 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		// One sample per µs.
		dur := float64(len(run.TempTraceK)) * 1e-6
		sum, err := cycles.Analyze(run.TempTraceK, dur, cycles.Params{Q: 2.35, MinRangeK: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		return sum.DamageIndex
	}
	steady := damage(base)
	bursty := damage(phased)
	if bursty <= steady {
		t.Fatalf("phased workload small-cycle damage %.4g not above steady %.4g",
			bursty, steady)
	}
}
