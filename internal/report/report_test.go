package report

import (
	"strconv"
	"strings"
	"testing"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// smallStudy runs a 2-app, 3-tech study once for all report tests.
var _smallStudy *sim.StudyResult

func smallStudy(t *testing.T) *sim.StudyResult {
	t.Helper()
	if _smallStudy != nil {
		return _smallStudy
	}
	cfg := sim.DefaultConfig()
	cfg.Instructions = 150_000
	var profiles []workload.Profile
	for _, name := range []string{"ammp", "crafty"} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	gens := scaling.Generations()
	techs := []scaling.Technology{gens[0], gens[3], gens[4]}
	res, err := sim.RunStudy(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	_smallStudy = res
	return res
}

func TestTableAddRowWidthMismatch(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	if err := tab.AddRow("only-one"); err == nil {
		t.Fatal("short row accepted")
	}
	if err := tab.AddRow("x", "y"); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"name", "value"}}
	if err := tab.AddRow("alpha", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("b", "22222"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "name", "alpha", "22222", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{Header: []string{"name", "note"}}
	if err := tab.AddRow("a", `says "hi", twice`); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "name,note\na,\"says \"\"hi\"\", twice\"\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if got := F(3.14159, 2); got != "3.14" {
		t.Errorf("F = %q", got)
	}
	if got := Pct(4.16); got != "+316%" {
		t.Errorf("Pct(4.16) = %q, want +316%%", got)
	}
	if got := Pct(0.8); got != "-20%" {
		t.Errorf("Pct(0.8) = %q, want -20%%", got)
	}
}

func TestTable1Static(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 4 {
		t.Fatalf("Table 1 has %d rows, want 4 mechanisms", len(tab.Rows))
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, mech := range []string{"EM", "SM", "TDDB", "TC"} {
		if !strings.Contains(sb.String(), mech) {
			t.Errorf("Table 1 missing %s", mech)
		}
	}
}

func TestTable1Quantified(t *testing.T) {
	tab, err := Table1Quantified(core.DefaultParams(), 355)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// EM row: temperature multiplier above 1, feature-size factor above 1.
	if tab.Rows[0][0] != "EM" {
		t.Fatalf("first row = %q", tab.Rows[0][0])
	}
	for _, row := range tab.Rows {
		if row[1] <= "1" && row[1] != "-" {
			t.Errorf("%s: temperature multiplier %q not above 1", row[0], row[1])
		}
	}
	// Only TDDB has voltage and both EM and TDDB have feature-size entries.
	if tab.Rows[1][2] != "-" || tab.Rows[3][2] != "-" {
		t.Error("SM/TC should have no voltage entry")
	}
	if tab.Rows[0][3] == "-" || tab.Rows[2][3] == "-" {
		t.Error("EM/TDDB need feature-size entries")
	}
}

func TestTable2(t *testing.T) {
	tab := Table2(microarch.DefaultConfig())
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1.1 GHz", "81 mm²", "150", "32KB/32KB/2MB", "2/20/102"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table 2 missing %q:\n%s", want, sb.String())
		}
	}
}

func TestTable3And4FromStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	res := smallStudy(t)
	t3, err := Table3(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 2 {
		t.Fatalf("Table 3 rows = %d, want 2 apps", len(t3.Rows))
	}
	t4, err := Table4(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != len(res.Techs) {
		t.Fatalf("Table 4 rows = %d, want %d", len(t4.Rows), len(res.Techs))
	}
	// Relative power density of the base row is 1.00 by construction.
	if t4.Rows[0][len(t4.Header)-1] != "1.00" {
		t.Errorf("base relative power density = %s, want 1.00", t4.Rows[0][len(t4.Header)-1])
	}
}

func TestFiguresFromStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	res := smallStudy(t)

	f2, err := Figure2(res, workload.SuiteFP)
	if err != nil {
		t.Fatal(err)
	}
	// 1 FP app (ammp) + sink row.
	if len(f2.Rows) != 2 {
		t.Fatalf("Figure 2 rows = %d, want 2", len(f2.Rows))
	}
	for _, row := range f2.Rows {
		if len(row) != len(res.Techs)+1 {
			t.Fatalf("Figure 2 row width = %d, want %d", len(row), len(res.Techs)+1)
		}
	}

	f3, err := Figure3(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2 apps + max row.
	if len(f3.Rows) != 3 {
		t.Fatalf("Figure 3 rows = %d, want 3", len(f3.Rows))
	}
	if f3.Rows[2][0] != "max (worst-case)" {
		t.Fatalf("Figure 3 last row = %q, want worst-case", f3.Rows[2][0])
	}

	f4, err := Figure4(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 4 mechanisms + total.
	if len(f4.Rows) != core.NumMechanisms+1 {
		t.Fatalf("Figure 4 rows = %d", len(f4.Rows))
	}

	f5, err := Figure5(res, workload.SuiteInt, core.TDDB)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Rows) != 2 { // crafty + max
		t.Fatalf("Figure 5 rows = %d, want 2", len(f5.Rows))
	}
}

func TestHeadlineFromStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	res := smallStudy(t)
	h, err := ComputeHeadline(res)
	if err != nil {
		t.Fatal(err)
	}
	if h.TempRiseK <= 0 {
		t.Errorf("temperature rise %.1f K must be positive", h.TempRiseK)
	}
	if h.TotalIncreasePct["all"] <= 0 {
		t.Errorf("total FIT increase %.0f%% must be positive", h.TotalIncreasePct["all"])
	}
	for _, m := range core.Mechanisms() {
		inc := h.MechIncreasePct[m]
		if inc[1] <= 0 {
			t.Errorf("%v increase at 65nm(1.0V) = %.0f%%, want positive", m, inc[1])
		}
	}
	// TDDB must show the largest increase at 65nm (1.0V) — the paper's
	// central per-mechanism finding.
	tddb := h.MechIncreasePct[core.TDDB][1]
	for _, m := range []core.Mechanism{core.SM, core.TC} {
		if h.MechIncreasePct[m][1] >= tddb {
			t.Errorf("%v increase %.0f%% not below TDDB %.0f%%", m, h.MechIncreasePct[m][1], tddb)
		}
	}
	tab := h.Render()
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "316%") {
		t.Error("headline table must quote the paper's 316% reference")
	}
}

func TestStructureBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	res := smallStudy(t)
	tab, err := StructureBreakdown(res, 0, "crafty")
	if err != nil {
		t.Fatal(err)
	}
	// 7 structures + total row.
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	if tab.Rows[7][0] != "total" {
		t.Fatalf("last row = %q, want total", tab.Rows[7][0])
	}
	if _, err := StructureBreakdown(res, 0, "nonexistent"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestMechanismCurves(t *testing.T) {
	tab, err := MechanismCurves(core.DefaultParams(), scaling.Base(), []float64{340, 360, 380})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(tab.Header) != 4 {
		t.Fatalf("shape: %d rows × %d cols", len(tab.Rows), len(tab.Header))
	}
	// Normalisation: every first value is 1.00, later ones grow.
	for _, row := range tab.Rows {
		if row[1] != "1.00" {
			t.Errorf("%s not normalised: %v", row[0], row[1])
		}
		mid, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if !(1 < mid && mid < hi) {
			t.Errorf("%s not growing: %v", row[0], row)
		}
	}
	if _, err := MechanismCurves(core.DefaultParams(), scaling.Base(), []float64{350}); err == nil {
		t.Error("single-temperature sweep accepted")
	}
}

func TestHeadlineRequiresKeyTechs(t *testing.T) {
	res := &sim.StudyResult{Techs: scaling.Generations()[:2]}
	if _, err := ComputeHeadline(res); err == nil {
		t.Fatal("headline without 65nm points accepted")
	}
}
