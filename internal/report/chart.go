package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// Chart renders numeric series as an ASCII line chart — a terminal
// approximation of the paper's figures. Each series gets its own marker;
// overlapping points show the later series' marker.
type Chart struct {
	Title string
	// XLabels name the horizontal positions (technology points).
	XLabels []string
	Series  []Series
	// Height is the plot's row count (default 16).
	Height int
}

// _markers are assigned to series in order.
const _markers = "ox*+#@%&=~^"

// Render draws the chart.
func (c *Chart) Render(w io.Writer) error {
	if len(c.Series) == 0 || len(c.XLabels) == 0 {
		return fmt.Errorf("report: chart needs series and x labels")
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.XLabels) {
			return fmt.Errorf("report: series %q has %d values for %d x labels",
				s.Name, len(s.Values), len(c.XLabels))
		}
	}
	height := c.Height
	if height <= 0 {
		height = 16
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}

	// Horizontal layout: each x position gets a fixed-width column.
	colW := 0
	for _, l := range c.XLabels {
		if len(l) > colW {
			colW = len(l)
		}
	}
	colW += 2
	plotW := colW * len(c.XLabels)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", plotW))
	}
	rowOf := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range c.Series {
		marker := _markers[si%len(_markers)]
		for xi, v := range s.Values {
			col := xi*colW + colW/2
			grid[rowOf(v)][col] = marker
		}
	}

	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	yLabel := func(r int) string {
		v := hi - (hi-lo)*float64(r)/float64(height-1)
		return fmt.Sprintf("%10.0f", v)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", 10)
		if r == 0 || r == height-1 || r == height/2 {
			label = yLabel(r)
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 11))
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", plotW))
	b.WriteByte('\n')
	b.WriteString(strings.Repeat(" ", 12))
	for _, l := range c.XLabels {
		b.WriteString(pad(l, colW))
	}
	b.WriteByte('\n')
	// Legend.
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s", _markers[si%len(_markers)], s.Name)
		if (si+1)%4 == 0 {
			b.WriteByte('\n')
		}
	}
	if len(c.Series)%4 != 0 {
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	return s + strings.Repeat(" ", w-len(s))
}

// ChartFromTable converts a figure table (label column + one value column
// per technology) into a chart. Rows whose cells fail to parse are
// skipped.
func ChartFromTable(t *Table) (*Chart, error) {
	if len(t.Header) < 2 {
		return nil, fmt.Errorf("report: table too narrow to chart")
	}
	c := &Chart{Title: t.Title, XLabels: t.Header[1:]}
	for _, row := range t.Rows {
		vals := make([]float64, 0, len(row)-1)
		ok := true
		for _, cell := range row[1:] {
			var v float64
			if _, err := fmt.Sscanf(cell, "%f", &v); err != nil {
				ok = false
				break
			}
			vals = append(vals, v)
		}
		if !ok {
			continue
		}
		c.Series = append(c.Series, Series{Name: row[0], Values: vals})
	}
	if len(c.Series) == 0 {
		return nil, fmt.Errorf("report: no numeric rows to chart")
	}
	return c, nil
}
