package report

import (
	"fmt"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/paperdata"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// Headline collects the paper's quoted summary numbers (§1.3, §5) computed
// from a study result, for side-by-side comparison in EXPERIMENTS.md.
type Headline struct {
	// TempRiseK is the suite-average rise of the hottest-structure
	// temperature from 180nm to 65nm (1.0V) — the paper reports 15 K.
	TempRiseK float64
	// TotalIncreasePct maps suite → percentage FIT increase from 180nm to
	// 65nm (1.0V) — the paper reports 274% (FP), 357% (INT), 316% average.
	TotalIncreasePct map[string]float64
	// MechIncreasePct maps mechanism → [65nm(0.9V), 65nm(1.0V)] average
	// percentage increases from 180nm.
	MechIncreasePct map[core.Mechanism][2]float64
	// WorstVsHighestPct is the worst-case FIT margin over the highest
	// individual application, as a percentage of the highest application
	// FIT, at 180nm and 65nm (1.0V) — the paper reports 25% → 90%.
	WorstVsHighestPct [2]float64
	// WorstVsAveragePct is the worst-case margin over the suite-average
	// FIT at 180nm and 65nm (1.0V) — the paper reports 67% → 206%.
	WorstVsAveragePct [2]float64
	// FITRange is the spread (max−min) of application FIT values at
	// 180nm, 65nm (0.9V), and 65nm (1.0V) — paper: 2479, 5095, 17272.
	FITRange [3]float64
	// FITRangePctOfAvg expresses the same spreads as a percentage of the
	// suite-average FIT — paper: 62%, 72%, 104%.
	FITRangePctOfAvg [3]float64
}

// techIndex finds a technology by name.
func techIndex(res *sim.StudyResult, name string) (int, error) {
	for i, t := range res.Techs {
		if t.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("report: study does not include %q", name)
}

// ComputeHeadline derives the headline numbers from a full study. The
// study must include 180nm, 65nm (0.9V), and 65nm (1.0V).
func ComputeHeadline(res *sim.StudyResult) (*Headline, error) {
	i180, err := techIndex(res, "180nm")
	if err != nil {
		return nil, err
	}
	i09, err := techIndex(res, "65nm (0.9V)")
	if err != nil {
		return nil, err
	}
	i10, err := techIndex(res, "65nm (1.0V)")
	if err != nil {
		return nil, err
	}

	h := &Headline{
		TotalIncreasePct: make(map[string]float64, 3),
		MechIncreasePct:  make(map[core.Mechanism][2]float64, core.NumMechanisms),
	}

	// Temperature rise (suite average of per-app max-structure temps).
	apps180, apps10 := res.AppsAt(i180), res.AppsAt(i10)
	var t180, t10 float64
	for _, a := range apps180 {
		t180 += a.MaxStructTempK
	}
	for _, a := range apps10 {
		t10 += a.MaxStructTempK
	}
	h.TempRiseK = t10/float64(len(apps10)) - t180/float64(len(apps180))

	// Total FIT increases per suite.
	for _, s := range []struct {
		label string
		suite workload.Suite
	}{{"SpecFP", workload.SuiteFP}, {"SpecInt", workload.SuiteInt}, {"all", 0}} {
		base := res.SuiteAverageFIT(i180, s.suite)
		if base <= 0 {
			continue
		}
		h.TotalIncreasePct[s.label] = (res.SuiteAverageFIT(i10, s.suite)/base - 1) * 100
	}

	// Per-mechanism increases (suite-wide averages).
	m180 := res.SuiteAverageMech(i180, 0)
	m09 := res.SuiteAverageMech(i09, 0)
	m10 := res.SuiteAverageMech(i10, 0)
	for _, m := range core.Mechanisms() {
		if m180[m] <= 0 {
			continue
		}
		h.MechIncreasePct[m] = [2]float64{
			(m09[m]/m180[m] - 1) * 100,
			(m10[m]/m180[m] - 1) * 100,
		}
	}

	// Worst-case gaps (§5.2).
	gapVsHighest := func(ti int) float64 {
		_, hi := res.FITRange(ti)
		return (res.WorstFIT(ti).Total()/hi - 1) * 100
	}
	gapVsAverage := func(ti int) float64 {
		return (res.WorstFIT(ti).Total()/res.SuiteAverageFIT(ti, 0) - 1) * 100
	}
	h.WorstVsHighestPct = [2]float64{gapVsHighest(i180), gapVsHighest(i10)}
	h.WorstVsAveragePct = [2]float64{gapVsAverage(i180), gapVsAverage(i10)}

	// FIT ranges (§5.2).
	for k, ti := range []int{i180, i09, i10} {
		lo, hi := res.FITRange(ti)
		h.FITRange[k] = hi - lo
		if avg := res.SuiteAverageFIT(ti, 0); avg > 0 {
			h.FITRangePctOfAvg[k] = (hi - lo) / avg * 100
		}
	}
	return h, nil
}

// Render produces the headline comparison table with the paper's published
// values (internal/paperdata) alongside the measured ones.
func (h *Headline) Render() *Table {
	t := &Table{
		Title:  "Headline results: paper vs. this reproduction",
		Header: []string{"quantity", "paper", "measured"},
	}
	add := func(k, paper, measured string) { _ = t.AddRow(k, paper, measured) }
	add("max-temp rise 180nm→65nm(1.0V)",
		F(paperdata.MaxTempRiseK, 0)+" K", F(h.TempRiseK, 1)+" K")
	add("total FIT increase, SpecFP",
		F(paperdata.TotalIncreaseFPPct, 0)+"%", F(h.TotalIncreasePct["SpecFP"], 0)+"%")
	add("total FIT increase, SpecInt",
		F(paperdata.TotalIncreaseIntPct, 0)+"%", F(h.TotalIncreasePct["SpecInt"], 0)+"%")
	add("total FIT increase, average",
		F(paperdata.TotalIncreaseAvgPct, 0)+"%", F(h.TotalIncreasePct["all"], 0)+"%")
	paperMech := paperdata.MechIncreases()
	for _, m := range core.Mechanisms() {
		inc := h.MechIncreasePct[m]
		pm := paperMech[m]
		add(fmt.Sprintf("%v increase at 65nm(0.9V)", m),
			fmt.Sprintf("%.0f-%.0f%%", pm.At09FP, pm.At09Int), F(inc[0], 0)+"%")
		add(fmt.Sprintf("%v increase at 65nm(1.0V)", m),
			fmt.Sprintf("%.0f-%.0f%%", pm.At10FP, pm.At10Int), F(inc[1], 0)+"%")
	}
	add("worst-case vs highest app, 180nm",
		F(paperdata.WorstVsHighest180Pct, 0)+"%", F(h.WorstVsHighestPct[0], 0)+"%")
	add("worst-case vs highest app, 65nm(1.0V)",
		F(paperdata.WorstVsHighest65Pct, 0)+"%", F(h.WorstVsHighestPct[1], 0)+"%")
	add("worst-case vs average, 180nm",
		F(paperdata.WorstVsAverage180Pct, 0)+"%", F(h.WorstVsAveragePct[0], 0)+"%")
	add("worst-case vs average, 65nm(1.0V)",
		F(paperdata.WorstVsAverage65Pct, 0)+"%", F(h.WorstVsAveragePct[1], 0)+"%")
	ranges := paperdata.FITRanges()
	labels := [3]string{"180nm", "65nm(0.9V)", "65nm(1.0V)"}
	for i, r := range ranges {
		add("FIT range at "+labels[i],
			fmt.Sprintf("%.0f (%.0f%%)", r.Spread, r.PctOfAvg),
			fmt.Sprintf("%s (%s%%)", F(h.FITRange[i], 0), F(h.FITRangePctOfAvg[i], 0)))
	}
	return t
}
