package report

import (
	"fmt"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// techHeader builds the header row: label column then one column per
// technology point.
func techHeader(label string, techs []scaling.Technology) []string {
	h := make([]string, 0, len(techs)+1)
	h = append(h, label)
	for _, t := range techs {
		h = append(h, t.Name)
	}
	return h
}

// suiteApps filters one suite's runs (or all when suite == 0), preserving
// order.
func suiteApps(res *sim.StudyResult, ti int, suite workload.Suite) []sim.AppRun {
	var out []sim.AppRun
	for _, a := range res.AppsAt(ti) {
		if suite == 0 || a.Suite == suite {
			out = append(out, a)
		}
	}
	return out
}

// Figure2 reproduces Figure 2: the maximum temperature reached by any
// structure, per application per technology, plus the suite-average heat
// sink temperature row.
func Figure2(res *sim.StudyResult, suite workload.Suite) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 2 (%v): max structure temperature (K)", suite),
		Header: techHeader("app", res.Techs),
	}
	apps0 := suiteApps(res, 0, suite)
	for _, a0 := range apps0 {
		row := []string{a0.App}
		for ti := range res.Techs {
			for _, a := range suiteApps(res, ti, suite) {
				if a.App == a0.App {
					row = append(row, F(a.MaxStructTempK, 1))
				}
			}
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	// Average heat-sink temperature across the suite's applications
	// (constant with scaling by construction, §4.3).
	sinkRow := []string{"heat sink (avg)"}
	for ti := range res.Techs {
		var sum float64
		apps := suiteApps(res, ti, suite)
		for _, a := range apps {
			sum += a.SinkTempK
		}
		sinkRow = append(sinkRow, F(sum/float64(len(apps)), 1))
	}
	if err := t.AddRow(sinkRow...); err != nil {
		return nil, err
	}
	return t, nil
}

// Figure3 reproduces Figure 3: total processor FIT per application per
// technology, with the worst-case ("max") curve.
func Figure3(res *sim.StudyResult, suite workload.Suite) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 3 (%v): total processor FIT", suite),
		Header: techHeader("app", res.Techs),
	}
	for _, a0 := range suiteApps(res, 0, suite) {
		row := []string{a0.App}
		for ti := range res.Techs {
			for _, a := range suiteApps(res, ti, suite) {
				if a.App == a0.App {
					row = append(row, F(res.FIT(a).Total(), 0))
				}
			}
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	maxRow := []string{"max (worst-case)"}
	for ti := range res.Techs {
		maxRow = append(maxRow, F(res.WorstFIT(ti).Total(), 0))
	}
	if err := t.AddRow(maxRow...); err != nil {
		return nil, err
	}
	return t, nil
}

// Figure4 reproduces Figure 4: suite-average FIT per technology broken
// into the contribution of each failure mechanism.
func Figure4(res *sim.StudyResult, suite workload.Suite) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 4 (%v): average FIT by mechanism", suite),
		Header: techHeader("component", res.Techs),
	}
	for _, m := range core.Mechanisms() {
		row := []string{m.String()}
		for ti := range res.Techs {
			mech := res.SuiteAverageMech(ti, suite)
			row = append(row, F(mech[m], 0))
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	totalRow := []string{"total"}
	for ti := range res.Techs {
		totalRow = append(totalRow, F(res.SuiteAverageFIT(ti, suite), 0))
	}
	if err := t.AddRow(totalRow...); err != nil {
		return nil, err
	}
	return t, nil
}

// Figure5 reproduces one panel of Figure 5: a single mechanism's FIT per
// application per technology, with the worst-case curve.
func Figure5(res *sim.StudyResult, suite workload.Suite, mech core.Mechanism) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 5 (%v, %v): FIT by application", suite, mech),
		Header: techHeader("app", res.Techs),
	}
	for _, a0 := range suiteApps(res, 0, suite) {
		row := []string{a0.App}
		for ti := range res.Techs {
			for _, a := range suiteApps(res, ti, suite) {
				if a.App == a0.App {
					row = append(row, F(res.FIT(a).ByMechanism()[mech], 0))
				}
			}
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	maxRow := []string{"max (worst-case)"}
	for ti := range res.Techs {
		maxRow = append(maxRow, F(res.WorstFIT(ti).ByMechanism()[mech], 0))
	}
	if err := t.AddRow(maxRow...); err != nil {
		return nil, err
	}
	return t, nil
}

// MechanismCurves tabulates each mechanism's relative FIT over a
// temperature sweep at a technology point — the model curves behind the
// paper's Table 1 discussion, normalised to 1.0 at the first temperature.
func MechanismCurves(params core.Params, tech scaling.Technology, tempsK []float64) (*Table, error) {
	if len(tempsK) < 2 {
		return nil, fmt.Errorf("report: need at least 2 temperatures")
	}
	header := make([]string, 0, len(tempsK)+1)
	header = append(header, "mech")
	for _, tk := range tempsK {
		header = append(header, F(tk, 0)+"K")
	}
	t := &Table{
		Title:  fmt.Sprintf("Mechanism FIT vs temperature at %s (normalised)", tech.Name),
		Header: header,
	}
	const af = 0.5
	rate := func(m core.Mechanism, tk float64) float64 {
		switch m {
		case core.EM:
			return params.EMRate(af, tk, tech)
		case core.SM:
			return params.SMRate(tk)
		case core.TDDB:
			return params.TDDBRate(tech.VddV, tk, tech)
		case core.TC:
			return params.TCRate(tk)
		}
		return 0
	}
	for _, m := range core.Mechanisms() {
		base := rate(m, tempsK[0])
		if base <= 0 {
			return nil, fmt.Errorf("report: %v rate is zero at %vK", m, tempsK[0])
		}
		row := make([]string, 0, len(tempsK)+1)
		row = append(row, m.String())
		for _, tk := range tempsK {
			row = append(row, F(rate(m, tk)/base, 2))
		}
		if err := t.AddRow(row...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// StructureBreakdown is an analysis beyond the paper's figures: the
// per-structure FIT decomposition of one application at one technology
// index, showing which microarchitectural units dominate the failure rate.
func StructureBreakdown(res *sim.StudyResult, ti int, app string) (*Table, error) {
	for _, a := range res.AppsAt(ti) {
		if a.App != app {
			continue
		}
		fit := res.FIT(a)
		t := &Table{
			Title:  fmt.Sprintf("Per-structure FIT: %s @ %s", app, res.Techs[ti].Name),
			Header: []string{"structure", "EM", "SM", "TDDB", "TC", "total"},
		}
		for s := 0; s < microarch.NumStructures; s++ {
			row := fit.ByStructMech[s]
			var total float64
			for _, v := range row {
				total += v
			}
			if err := t.AddRow(microarch.StructureID(s).String(),
				F(row[core.EM], 0), F(row[core.SM], 0),
				F(row[core.TDDB], 0), F(row[core.TC], 0), F(total, 0)); err != nil {
				return nil, err
			}
		}
		mech := fit.ByMechanism()
		if err := t.AddRow("total",
			F(mech[core.EM], 0), F(mech[core.SM], 0),
			F(mech[core.TDDB], 0), F(mech[core.TC], 0), F(fit.Total(), 0)); err != nil {
			return nil, err
		}
		return t, nil
	}
	return nil, fmt.Errorf("report: app %q not in study at technology %d", app, ti)
}

// Table1 reproduces Table 1: the qualitative summary of how each scaling
// parameter affects each mechanism's MTTF.
func Table1() *Table {
	t := &Table{
		Title:  "Table 1: impact of scaling on MTTF",
		Header: []string{"mech", "temperature dependence", "voltage dependence", "feature size dependence"},
	}
	// Static content from the paper.
	rows := [][]string{
		{"EM", "e^{Ea/kT}", "-", "w·h (κ²)"},
		{"SM", "|T-T0|^-m · e^{Ea/kT}", "-", "-"},
		{"TDDB", "e^{(X+Y/T+ZT)/kT}", "(1/V)^{a-bT}", "10^{Δtox/0.22}"},
		{"TC", "1/ΔT^q", "-", "-"},
	}
	for _, r := range rows {
		// Static rows match the header width by construction.
		_ = t.AddRow(r...)
	}
	return t
}

// Table1Quantified evaluates Table 1's qualitative sensitivities
// numerically at a reference operating point: each mechanism's FIT
// multiplier for +10K of temperature, +5% of supply voltage, and for the
// full 180nm→65nm feature-size scaling at fixed temperature. This is the
// quantitative teeth behind the paper's summary table.
func Table1Quantified(params core.Params, refTempK float64) (*Table, error) {
	base := scaling.Base()
	tech65, err := scaling.ByName("65nm (1.0V)")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Table 1 (quantified at %.0f K): FIT multipliers", refTempK),
		Header: []string{"mech", "x per +10K", "x per +5% V",
			"x from feature size (180nm→65nm)"},
	}
	const af = 0.5
	tempX := func(m core.Mechanism) float64 {
		switch m {
		case core.EM:
			return params.EMRate(af, refTempK+10, base) / params.EMRate(af, refTempK, base)
		case core.SM:
			return params.SMRate(refTempK+10) / params.SMRate(refTempK)
		case core.TDDB:
			return params.TDDBRate(base.VddV, refTempK+10, base) /
				params.TDDBRate(base.VddV, refTempK, base)
		case core.TC:
			return params.TCRate(refTempK+10) / params.TCRate(refTempK)
		}
		return 0
	}
	voltX := func(m core.Mechanism) string {
		if m != core.TDDB {
			return "-"
		}
		x := params.TDDBRate(base.VddV*1.05, refTempK, base) /
			params.TDDBRate(base.VddV, refTempK, base)
		return F(x, 0)
	}
	featX := func(m core.Mechanism) string {
		switch m {
		case core.EM:
			// Geometry and J_max derate at equal activity and temperature.
			x := params.EMRate(af, refTempK, tech65) / params.EMRate(af, refTempK, base)
			return F(x, 2)
		case core.TDDB:
			return F(params.TDDBTechFactor(tech65), 2)
		default:
			return "-"
		}
	}
	for _, m := range core.Mechanisms() {
		if err := t.AddRow(m.String(), F(tempX(m), 2), voltX(m), featX(m)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Table2 reproduces Table 2: the base 180nm processor configuration.
func Table2(cfg microarch.Config) *Table {
	t := &Table{
		Title:  "Table 2: base 180nm POWER4-like processor",
		Header: []string{"parameter", "value"},
	}
	add := func(k, v string) { _ = t.AddRow(k, v) }
	base := scaling.Base()
	add("Process technology", fmt.Sprintf("%d nm", base.FeatureNm))
	add("Vdd", fmt.Sprintf("%.1f V", base.VddV))
	add("Processor frequency", fmt.Sprintf("%.1f GHz", cfg.FrequencyGHz))
	add("Processor core size", "81 mm² (9mm x 9mm)")
	add("Leakage power density at 383 K", fmt.Sprintf("%.2f W/mm²", base.LeakW383PerMm2))
	add("Fetch rate", fmt.Sprintf("%d per cycle", cfg.FetchWidth))
	add("Retirement rate", fmt.Sprintf("1 dispatch-group (=%d, max)", cfg.RetireWidth))
	add("Functional units", fmt.Sprintf("%d Int, %d FP, %d Load-Store, %d Branch, %d LCR",
		cfg.IntUnits, cfg.FPUnits, cfg.LSUnits, cfg.BranchUnits, cfg.LCRUnits))
	add("Integer FU latencies", fmt.Sprintf("%d/%d/%d add/multiply/divide",
		cfg.IntAddLat, cfg.IntMulLat, cfg.IntDivLat))
	add("FP FU latencies", fmt.Sprintf("%d default, %d divide", cfg.FPLat, cfg.FPDivLat))
	add("Reorder buffer size", fmt.Sprintf("%d", cfg.ROBSize))
	add("Register file size", fmt.Sprintf("%d integer, %d FP", cfg.IntRegs, cfg.FPRegs))
	add("Memory queue size", fmt.Sprintf("%d entries", cfg.MemQueueSize))
	add("L1 D/L1 I/L2 unified", fmt.Sprintf("%dKB/%dKB/%dMB",
		cfg.L1D.SizeBytes>>10, cfg.L1I.SizeBytes>>10, cfg.L2.SizeBytes>>20))
	add("L1 D/L2/Main memory latencies", fmt.Sprintf("%d/%d/%d cycles",
		cfg.L1Lat, cfg.L2Lat, cfg.MemLat))
	return t
}

// Table3 reproduces Table 3: per-application IPC and average total power
// on the 180nm base machine, alongside the paper's published values.
func Table3(res *sim.StudyResult) (*Table, error) {
	t := &Table{
		Title:  "Table 3: IPC and power for the 180nm base processor",
		Header: []string{"app", "suite", "IPC", "paper IPC", "power (W)", "paper power (W)"},
	}
	for _, a := range res.AppsAt(0) {
		prof, err := workload.ByName(a.App)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(a.App, a.Suite.String(),
			F(a.IPC, 2), F(prof.TargetIPC, 2),
			F(a.AvgTotalW, 2), F(prof.TargetPowerW, 2)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Table4 reproduces Table 4: the scaled technology parameters with the
// measured suite-average total power and the relative total power density.
func Table4(res *sim.StudyResult) (*Table, error) {
	t := &Table{
		Title: "Table 4: scaled parameters",
		Header: []string{"tech", "Vdd (V)", "freq (GHz)", "rel cap", "rel area",
			"tox (A)", "Jmax (mA/um2)", "leak (W/mm2)", "avg total power (W)", "rel power density"},
	}
	var basePower float64
	for ti, tech := range res.Techs {
		apps := res.AppsAt(ti)
		var sum float64
		for _, a := range apps {
			sum += a.AvgTotalW
		}
		avg := sum / float64(len(apps))
		if ti == 0 {
			basePower = avg
		}
		relDensity := (avg / tech.RelArea) / basePower
		if err := t.AddRow(tech.Name, F(tech.VddV, 1), F(tech.FreqGHz, 2),
			F(tech.RelCapacitance, 2), F(tech.RelArea, 2),
			F(tech.ToxNm*10, 0), F(tech.JMaxMAum2, 1), F(tech.LeakW383PerMm2, 3),
			F(avg, 1), F(relDensity, 2)); err != nil {
			return nil, err
		}
	}
	return t, nil
}
