package report

import (
	"strings"
	"testing"
)

func demoChart() *Chart {
	return &Chart{
		Title:   "demo",
		XLabels: []string{"180nm", "130nm", "90nm"},
		Series: []Series{
			{Name: "a", Values: []float64{1000, 2000, 4000}},
			{Name: "b", Values: []float64{1500, 1500, 1500}},
		},
	}
}

func TestChartRender(t *testing.T) {
	var sb strings.Builder
	if err := demoChart().Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "180nm", "90nm", "o a", "x b", "4000", "1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Marker counts: three points per series.
	if n := strings.Count(out, "o"); n < 3 {
		t.Errorf("series a has %d markers", n)
	}
}

func TestChartMarkerPositionsMonotone(t *testing.T) {
	var sb strings.Builder
	c := &Chart{
		XLabels: []string{"x0", "x1", "x2"},
		Series:  []Series{{Name: "up", Values: []float64{0, 50, 100}}},
		Height:  11,
	}
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	// The rising series' markers must appear on strictly rising rows (top
	// of output = highest value).
	lines := strings.Split(sb.String(), "\n")
	var rows []int
	for r, line := range lines {
		// Only the plot area (rows containing the axis bar), not the legend.
		bar := strings.Index(line, " |")
		if bar < 0 {
			continue
		}
		if idx := strings.IndexByte(line[bar:], 'o'); idx >= 0 {
			rows = append(rows, r)
		}
	}
	if len(rows) != 3 {
		t.Fatalf("found %d marker rows, want 3", len(rows))
	}
	// Values ascend with x, so rows must descend down the slice? No: the
	// first marker row encountered (top) is the largest value (x2).
	if !(rows[0] < rows[1] && rows[1] < rows[2]) {
		t.Fatalf("marker rows %v not ordered by value", rows)
	}
}

func TestChartErrors(t *testing.T) {
	var sb strings.Builder
	empty := &Chart{}
	if err := empty.Render(&sb); err == nil {
		t.Error("empty chart accepted")
	}
	bad := demoChart()
	bad.Series[0].Values = bad.Series[0].Values[:2]
	if err := bad.Render(&sb); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestChartFlatSeries(t *testing.T) {
	var sb strings.Builder
	c := &Chart{
		XLabels: []string{"a", "b"},
		Series:  []Series{{Name: "flat", Values: []float64{5, 5}}},
	}
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestChartFromTable(t *testing.T) {
	tab := &Table{
		Title:  "fig",
		Header: []string{"app", "180nm", "65nm"},
	}
	if err := tab.AddRow("gzip", "4000", "16000"); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("note", "n/a", "n/a"); err != nil { // skipped
		t.Fatal(err)
	}
	c, err := ChartFromTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Series) != 1 || c.Series[0].Name != "gzip" {
		t.Fatalf("series: %+v", c.Series)
	}
	if c.Series[0].Values[1] != 16000 {
		t.Fatalf("values: %v", c.Series[0].Values)
	}
	narrow := &Table{Header: []string{"only"}}
	if _, err := ChartFromTable(narrow); err == nil {
		t.Error("narrow table accepted")
	}
	textOnly := &Table{Header: []string{"a", "b"}}
	if err := textOnly.AddRow("x", "not-a-number"); err != nil {
		t.Fatal(err)
	}
	if _, err := ChartFromTable(textOnly); err == nil {
		t.Error("non-numeric table accepted")
	}
}
