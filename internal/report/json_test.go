package report

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestBuildDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	res := smallStudy(t)
	doc := BuildDocument(res)
	if doc.Schema != 1 {
		t.Fatalf("schema = %d", doc.Schema)
	}
	if len(doc.Technologies) != len(res.Techs) {
		t.Fatalf("technologies = %d, want %d", len(doc.Technologies), len(res.Techs))
	}
	if len(doc.Applications) != len(res.Apps) {
		t.Fatalf("applications = %d, want %d", len(doc.Applications), len(res.Apps))
	}
	if len(doc.WorstCase) != len(res.Techs) {
		t.Fatalf("worst-case entries = %d, want %d", len(doc.WorstCase), len(res.Techs))
	}
	if len(doc.QualificationConstants) != 4 {
		t.Fatalf("constants = %d, want 4", len(doc.QualificationConstants))
	}
	// Per-app mechanism sums must equal the reported total.
	for _, a := range doc.Applications {
		var sum float64
		for _, v := range a.FITByMechanism {
			sum += v
		}
		if math.Abs(sum-a.TotalFIT) > 1e-6*a.TotalFIT {
			t.Errorf("%s@%s: mechanism sum %v != total %v", a.App, a.Tech, sum, a.TotalFIT)
		}
		var ssum float64
		for _, v := range a.FITByStructure {
			ssum += v
		}
		if math.Abs(ssum-a.TotalFIT) > 1e-6*a.TotalFIT {
			t.Errorf("%s@%s: structure sum %v != total %v", a.App, a.Tech, ssum, a.TotalFIT)
		}
		if a.MTTFYears <= 0 {
			t.Errorf("%s@%s: non-positive MTTF", a.App, a.Tech)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	res := smallStudy(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	want := BuildDocument(res)
	if len(doc.Applications) != len(want.Applications) {
		t.Fatalf("round trip lost applications: %d vs %d",
			len(doc.Applications), len(want.Applications))
	}
	if doc.Applications[0].App != want.Applications[0].App {
		t.Fatal("round trip mangled application records")
	}
}
