package report

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/phys"
	"github.com/ramp-sim/ramp/internal/sim"
)

// Document is the JSON-serialisable form of a study result, for external
// plotting and archival. Figures 2–5 can all be regenerated from it.
type Document struct {
	// Schema versions the document layout.
	Schema int `json:"schema"`
	// Technologies lists the evaluated technology points in order.
	Technologies []TechDoc `json:"technologies"`
	// Applications holds one record per (application × technology).
	Applications []AppDoc `json:"applications"`
	// WorstCase holds the §5.2 worst-case evaluation per technology.
	WorstCase []WorstDoc `json:"worst_case"`
	// QualificationConstants maps mechanism → proportionality constant.
	QualificationConstants map[string]float64 `json:"qualification_constants"`
}

// TechDoc is one technology point.
type TechDoc struct {
	Name           string  `json:"name"`
	FeatureNm      int     `json:"feature_nm"`
	VddV           float64 `json:"vdd_v"`
	FreqGHz        float64 `json:"freq_ghz"`
	RelArea        float64 `json:"rel_area"`
	ToxNm          float64 `json:"tox_nm"`
	JMaxMAum2      float64 `json:"jmax_ma_per_um2"`
	LeakW383PerMm2 float64 `json:"leak_w_per_mm2_383k"`
}

// AppDoc is one application × technology evaluation.
type AppDoc struct {
	App            string             `json:"app"`
	Suite          string             `json:"suite"`
	Tech           string             `json:"tech"`
	IPC            float64            `json:"ipc"`
	AvgTotalW      float64            `json:"avg_total_w"`
	AvgDynamicW    float64            `json:"avg_dynamic_w"`
	AvgLeakageW    float64            `json:"avg_leakage_w"`
	MaxStructTempK float64            `json:"max_struct_temp_k"`
	SinkTempK      float64            `json:"sink_temp_k"`
	DieAvgTempK    float64            `json:"die_avg_temp_k"`
	TotalFIT       float64            `json:"total_fit"`
	MTTFYears      float64            `json:"mttf_years"`
	FITByMechanism map[string]float64 `json:"fit_by_mechanism"`
	FITByStructure map[string]float64 `json:"fit_by_structure"`
}

// WorstDoc is the worst-case evaluation at one technology.
type WorstDoc struct {
	Tech           string             `json:"tech"`
	TotalFIT       float64            `json:"total_fit"`
	FITByMechanism map[string]float64 `json:"fit_by_mechanism"`
}

// BuildDocument converts a study result into its JSON document form.
func BuildDocument(res *sim.StudyResult) Document {
	doc := Document{
		Schema:                 1,
		Technologies:           make([]TechDoc, 0, len(res.Techs)),
		QualificationConstants: make(map[string]float64, core.NumMechanisms),
	}
	for _, t := range res.Techs {
		doc.Technologies = append(doc.Technologies, TechDoc{
			Name:           t.Name,
			FeatureNm:      t.FeatureNm,
			VddV:           t.VddV,
			FreqGHz:        t.FreqGHz,
			RelArea:        t.RelArea,
			ToxNm:          t.ToxNm,
			JMaxMAum2:      t.JMaxMAum2,
			LeakW383PerMm2: t.LeakW383PerMm2,
		})
	}
	for m, k := range res.Constants.K {
		doc.QualificationConstants[core.Mechanism(m).String()] = k
	}
	for ti := range res.Techs {
		for _, a := range res.AppsAt(ti) {
			fit := res.FIT(a)
			doc.Applications = append(doc.Applications, AppDoc{
				App:            a.App,
				Suite:          a.Suite.String(),
				Tech:           a.Tech.Name,
				IPC:            a.IPC,
				AvgTotalW:      a.AvgTotalW,
				AvgDynamicW:    a.AvgDynamicW,
				AvgLeakageW:    a.AvgLeakageW,
				MaxStructTempK: a.MaxStructTempK,
				SinkTempK:      a.SinkTempK,
				DieAvgTempK:    a.DieAvgTempK,
				TotalFIT:       fit.Total(),
				MTTFYears:      fit.MTTFYears(),
				FITByMechanism: mechMap(fit.ByMechanism()),
				FITByStructure: structMap(fit.ByStructure()),
			})
		}
		wfit := res.WorstFIT(ti)
		doc.WorstCase = append(doc.WorstCase, WorstDoc{
			Tech:           res.Techs[ti].Name,
			TotalFIT:       wfit.Total(),
			FITByMechanism: mechMap(wfit.ByMechanism()),
		})
	}
	return doc
}

func mechMap(v [core.NumMechanisms]float64) map[string]float64 {
	out := make(map[string]float64, len(v))
	for m, x := range v {
		out[core.Mechanism(m).String()] = x
	}
	return out
}

func structMap(v [microarch.NumStructures]float64) map[string]float64 {
	out := make(map[string]float64, len(v))
	for s, x := range v {
		out[microarch.StructureID(s).String()] = x
	}
	return out
}

// MTTFSummary is the compact lifetime view of a study — the answer to
// "how long does this part last per technology generation" without the
// full per-run detail of Document. rampd's /v1/mttf endpoint serves it.
type MTTFSummary struct {
	// Schema versions the summary layout.
	Schema int `json:"schema"`
	// Technologies holds one lifetime record per technology, in study order.
	Technologies []MTTFTech `json:"technologies"`
}

// MTTFTech is the lifetime summary at one technology point.
type MTTFTech struct {
	Tech string `json:"tech"`
	// SuiteAvgFIT and SuiteAvgMTTFYears describe the suite-average
	// operating point (the paper's headline quantity).
	SuiteAvgFIT       float64 `json:"suite_avg_fit"`
	SuiteAvgMTTFYears float64 `json:"suite_avg_mttf_years"`
	// WorstCaseFIT and WorstCaseMTTFYears describe the §5.2 worst-case
	// qualification point.
	WorstCaseFIT       float64 `json:"worst_case_fit"`
	WorstCaseMTTFYears float64 `json:"worst_case_mttf_years"`
	// Apps lists each application's calibrated lifetime.
	Apps []MTTFApp `json:"apps"`
}

// MTTFApp is one application's calibrated lifetime at one technology.
type MTTFApp struct {
	App       string  `json:"app"`
	TotalFIT  float64 `json:"total_fit"`
	MTTFYears float64 `json:"mttf_years"`
}

// BuildMTTFSummary converts a study result into its lifetime summary.
func BuildMTTFSummary(res *sim.StudyResult) MTTFSummary {
	sum := MTTFSummary{Schema: 1, Technologies: make([]MTTFTech, 0, len(res.Techs))}
	for ti := range res.Techs {
		wfit := res.WorstFIT(ti)
		tech := MTTFTech{
			Tech:               res.Techs[ti].Name,
			SuiteAvgFIT:        res.SuiteAverageFIT(ti, 0),
			WorstCaseFIT:       wfit.Total(),
			WorstCaseMTTFYears: wfit.MTTFYears(),
		}
		tech.SuiteAvgMTTFYears = phys.MTTFYearsFromFIT(tech.SuiteAvgFIT)
		for _, a := range res.AppsAt(ti) {
			fit := res.FIT(a)
			tech.Apps = append(tech.Apps, MTTFApp{
				App:       a.App,
				TotalFIT:  fit.Total(),
				MTTFYears: fit.MTTFYears(),
			})
		}
		sum.Technologies = append(sum.Technologies, tech)
	}
	return sum
}

// WriteJSON encodes the study result as indented JSON.
func WriteJSON(w io.Writer, res *sim.StudyResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(BuildDocument(res)); err != nil {
		return fmt.Errorf("report: encode json: %w", err)
	}
	return nil
}
