package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ramp-sim/ramp/internal/microarch"
)

var _update = flag.Bool("update", false, "rewrite golden files")

// golden compares rendered output against a checked-in file, regenerating
// it under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *_update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenTable1(t *testing.T) {
	var sb strings.Builder
	if err := Table1().Render(&sb); err != nil {
		t.Fatal(err)
	}
	golden(t, "table1.golden", sb.String())
}

func TestGoldenTable2(t *testing.T) {
	var sb strings.Builder
	if err := Table2(microarch.DefaultConfig()).Render(&sb); err != nil {
		t.Fatal(err)
	}
	golden(t, "table2.golden", sb.String())
}

func TestGoldenTableCSV(t *testing.T) {
	var sb strings.Builder
	if err := Table1().RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	golden(t, "table1.csv.golden", sb.String())
}

func TestGoldenAlignmentWithUnicode(t *testing.T) {
	// Alignment must hold for multi-byte cells (κ², µ, …).
	tab := &Table{Title: "unicode", Header: []string{"name", "value"}}
	for _, row := range [][]string{{"κ²", "1"}, {"plain", "22"}, {"µs", "333"}} {
		if err := tab.AddRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	golden(t, "unicode.golden", sb.String())
	// Every line must have the same rune width.
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	width := len([]rune(lines[1])) // header line
	for _, line := range lines[2:] {
		if len([]rune(line)) != width {
			t.Errorf("misaligned line %q (width %d, want %d)", line, len([]rune(line)), width)
		}
	}
}
