// Package report renders the paper's tables and figures from study
// results: column-aligned text for terminals and CSV for external
// plotting. Figures are emitted as the data series behind them (apps ×
// technologies), which is the form the evaluation compares against.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Table is a rectangular dataset with a title and a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; it must match the header width.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Header) {
		return fmt.Errorf("report: row has %d cells, header has %d", len(cells), len(t.Header))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - utf8.RuneCountInString(c)
			if i == 0 {
				// Left-align the label column.
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	// Rule width: column widths plus the two-space separators.
	total := 2 * (len(widths) - 1)
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (RFC-4180 quoting for cells containing
// separators or quotes).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// Pct formats a ratio as a percentage change string, e.g. 3.16 → "+216%".
func Pct(ratio float64) string {
	return fmt.Sprintf("%+.0f%%", (ratio-1)*100)
}
