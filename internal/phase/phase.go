// Package phase implements SimPoint-style phase compression of activity
// traces. Workload activity is piecewise stationary: long runs of 1µs
// samples whose per-structure activity factors barely move, recurring as
// the program re-enters the same loops. The thermal block time constants
// (~ms) are roughly three orders of magnitude above the 1µs sample step,
// so integrating such a run one sample at a time is pure overhead — a
// single error-bounded coarse step over the run's mean activity produces
// the same trajectory to within the integrator tolerance.
//
// Compress scans a trace once and produces a Plan:
//
//   - consecutive samples whose AF vectors stay within EpsilonAF of the
//     run's anchor coalesce into one Phase carrying the run's exact
//     time-weighted mean AF and duration;
//   - phases with indistinguishable mean activity (the program revisiting
//     the same behaviour) share a Class, with the longest occurrence as
//     the representative window and the class's total occupancy recorded —
//     consumers evaluate per-class work (e.g. the dynamic power vector)
//     once and weight by occupancy, SimPoint-style.
//
// The compression is conservative by construction: total duration is
// preserved exactly (up to float re-association), the global time-weighted
// mean AF is preserved exactly, and per-structure maxima over the raw
// samples are retained for worst-case analysis. What is lost is intra-run
// variation below EpsilonAF — bounded, and far below the thermal filter's
// passband at these run lengths.
package phase

import (
	"fmt"
	"math"

	"github.com/ramp-sim/ramp/internal/microarch"
)

// DefaultEpsilonAF is the per-structure activity-factor deviation within
// which consecutive samples are considered the same stationary behaviour.
const DefaultEpsilonAF = 0.02

// Options parameterises Compress.
type Options struct {
	// EpsilonAF is the maximum per-structure |AF − anchor| for a sample to
	// join the current run; 0 means DefaultEpsilonAF. It also sets the
	// quantisation grid for class matching.
	EpsilonAF float64
	// ExpandStart and ExpandFactor re-expand a systematically sampled
	// trace to its source's time base: durations of samples at index ≥
	// ExpandStart are scaled by ExpandFactor (the sampling period/window
	// ratio), so behaviour observed through periodic windows regains the
	// duration weight it has in the unsampled stream. Samples before
	// ExpandStart — the sampler's contiguous head, which was simulated in
	// full — keep weight 1. ExpandFactor 0 or 1 disables the expansion.
	ExpandStart  int
	ExpandFactor float64
}

// norm fills defaults.
func (o Options) norm() Options {
	if o.EpsilonAF <= 0 {
		o.EpsilonAF = DefaultEpsilonAF
	}
	if o.ExpandFactor == 1 {
		o.ExpandFactor = 0
	}
	return o
}

// Validate rejects non-finite or out-of-range epsilons and expansions.
func (o Options) Validate() error {
	if o.EpsilonAF < 0 || o.EpsilonAF > 1 || o.EpsilonAF != o.EpsilonAF {
		return fmt.Errorf("phase: epsilon %v outside [0,1]", o.EpsilonAF)
	}
	if o.ExpandStart < 0 {
		return fmt.Errorf("phase: expansion start %d must be non-negative", o.ExpandStart)
	}
	if o.ExpandFactor < 0 || math.IsNaN(o.ExpandFactor) || math.IsInf(o.ExpandFactor, 0) {
		return fmt.Errorf("phase: expansion factor %v must be non-negative and finite", o.ExpandFactor)
	}
	return nil
}

// Phase is one stationary run of consecutive samples.
type Phase struct {
	// Start and Len delimit the run's sample index range [Start, Start+Len).
	Start, Len int
	// DurUS is the run's total duration in microseconds.
	DurUS float64
	// AF is the run's exact time-weighted mean activity factor.
	AF [microarch.NumStructures]float64
	// Class indexes Plan.Classes.
	Class int
}

// Class groups recurring phases with indistinguishable mean activity.
type Class struct {
	// Rep is the index (into Plan.Phases) of the representative window:
	// the longest occurrence of the class.
	Rep int
	// Count is the number of member phases.
	Count int
	// DurUS is the class's total occupancy across the trace.
	DurUS float64
	// AF is the occupancy-weighted mean activity of the class.
	AF [microarch.NumStructures]float64
}

// Plan is the compressed form of one activity trace.
type Plan struct {
	// Phases holds the stationary runs in time order; they partition the
	// sample range exactly.
	Phases []Phase
	// Classes holds the recurrence groups, in order of first appearance.
	Classes []Class
	// TotalDurUS is the summed duration of all phases (equals the raw
	// trace duration up to float re-association).
	TotalDurUS float64
	// NumSamples is the raw sample count the plan covers.
	NumSamples int
	// MaxAF is the per-structure maximum over the raw samples — phases
	// carry means, so worst-case analysis reads the true maxima from here.
	MaxAF [microarch.NumStructures]float64
	// ExpandStart and ExpandFactor echo the re-expansion the plan was
	// built with (Options), so Check can reproduce the duration weighting.
	ExpandStart  int
	ExpandFactor float64
}

// CompressionRatio reports raw samples per phase (≥ 1).
func (p *Plan) CompressionRatio() float64 {
	if len(p.Phases) == 0 {
		return 1
	}
	return float64(p.NumSamples) / float64(len(p.Phases))
}

// Compress scans the samples once and builds the phase plan. cyclesPerUS
// converts each sample's cycle count to microseconds. Samples with
// non-positive duration are skipped, matching the transient loop.
func Compress(samples []microarch.ActivitySample, cyclesPerUS int64, opt Options) (*Plan, error) {
	o := opt.norm()
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if cyclesPerUS <= 0 {
		return nil, fmt.Errorf("phase: cyclesPerUS must be positive, got %d", cyclesPerUS)
	}
	eps := o.EpsilonAF
	p := &Plan{NumSamples: len(samples), ExpandStart: o.ExpandStart, ExpandFactor: o.ExpandFactor}

	var cur Phase
	var anchor [microarch.NumStructures]float64
	var afWeighted [microarch.NumStructures]float64 // ∑ af·dur over the open run
	open := false

	flush := func() {
		if !open || cur.Len == 0 {
			return
		}
		for b := range afWeighted {
			if cur.DurUS > 0 {
				cur.AF[b] = afWeighted[b] / cur.DurUS
			}
		}
		p.Phases = append(p.Phases, cur)
		p.TotalDurUS += cur.DurUS
		open = false
	}

	for i := range samples {
		s := &samples[i]
		dur := float64(s.Cycles) / float64(cyclesPerUS)
		if dur <= 0 {
			continue
		}
		if o.ExpandFactor > 0 && i >= o.ExpandStart {
			dur *= o.ExpandFactor
		}
		for b := range s.AF {
			if s.AF[b] > p.MaxAF[b] {
				p.MaxAF[b] = s.AF[b]
			}
		}
		if open {
			join := true
			for b := range s.AF {
				d := s.AF[b] - anchor[b]
				if d < 0 {
					d = -d
				}
				if d > eps {
					join = false
					break
				}
			}
			if !join {
				flush()
			}
		}
		if !open {
			open = true
			cur = Phase{Start: i}
			anchor = s.AF
			afWeighted = [microarch.NumStructures]float64{}
		}
		cur.Len = i - cur.Start + 1
		cur.DurUS += dur
		for b := range s.AF {
			afWeighted[b] += s.AF[b] * dur
		}
	}
	flush()

	p.assignClasses(eps)
	return p, nil
}

// assignClasses groups phases whose mean AF falls in the same epsilon-grid
// cell for every structure, picking each class's longest occurrence as the
// representative window.
func (p *Plan) assignClasses(eps float64) {
	type key [microarch.NumStructures]int32
	index := make(map[key]int)
	for i := range p.Phases {
		ph := &p.Phases[i]
		var k key
		for b, af := range ph.AF {
			// Round (not truncate): recurring phases land on nearly equal
			// means, and truncation would split them at grid boundaries.
			k[b] = int32(math.Round(af / eps))
		}
		ci, ok := index[k]
		if !ok {
			ci = len(p.Classes)
			index[k] = ci
			p.Classes = append(p.Classes, Class{Rep: i})
		}
		ph.Class = ci
		c := &p.Classes[ci]
		c.Count++
		c.DurUS += ph.DurUS
		for b := range c.AF {
			c.AF[b] += ph.AF[b] * ph.DurUS
		}
		if ph.DurUS > p.Phases[c.Rep].DurUS {
			c.Rep = i
		}
	}
	for ci := range p.Classes {
		c := &p.Classes[ci]
		if c.DurUS > 0 {
			for b := range c.AF {
				c.AF[b] /= c.DurUS
			}
		}
	}
}

// MeanAF returns the plan's global time-weighted mean activity factor —
// exactly the raw trace's, since every phase carries its run's exact
// weighted mean.
func (p *Plan) MeanAF() [microarch.NumStructures]float64 {
	var out [microarch.NumStructures]float64
	if p.TotalDurUS <= 0 {
		return out
	}
	for _, ph := range p.Phases {
		for b := range out {
			out[b] += ph.AF[b] * ph.DurUS
		}
	}
	for b := range out {
		out[b] /= p.TotalDurUS
	}
	return out
}

// Check verifies the plan's structural invariants against the samples it
// was compressed from: phases partition the positive-duration samples in
// order, total duration and time-weighted mean AF re-expand to the raw
// trace's (under the plan's recorded duration expansion) within tolerance,
// and classes partition the phases. It is the re-expansion oracle behind
// the fuzz target.
func (p *Plan) Check(samples []microarch.ActivitySample, cyclesPerUS int64) error {
	var rawDur float64
	var rawAF [microarch.NumStructures]float64
	for i := range samples {
		dur := float64(samples[i].Cycles) / float64(cyclesPerUS)
		if dur <= 0 {
			continue
		}
		if p.ExpandFactor > 0 && i >= p.ExpandStart {
			dur *= p.ExpandFactor
		}
		rawDur += dur
		for b := range rawAF {
			rawAF[b] += samples[i].AF[b] * dur
		}
	}
	const rel = 1e-9
	if d := p.TotalDurUS - rawDur; d > rel*rawDur+1e-12 || -d > rel*rawDur+1e-12 {
		return fmt.Errorf("phase: duration %v re-expands to %v", rawDur, p.TotalDurUS)
	}
	mean := p.MeanAF()
	for b := range mean {
		want := 0.0
		if rawDur > 0 {
			want = rawAF[b] / rawDur
		}
		if d := mean[b] - want; d > 1e-9 || -d > 1e-9 {
			return fmt.Errorf("phase: structure %d mean AF %v re-expands to %v", b, want, mean[b])
		}
	}
	next := -1
	var classDur []float64
	classCount := make([]int, len(p.Classes))
	classDur = make([]float64, len(p.Classes))
	for i, ph := range p.Phases {
		if ph.Len <= 0 {
			return fmt.Errorf("phase: empty phase %d", i)
		}
		if ph.Start <= next {
			return fmt.Errorf("phase: phase %d overlaps predecessor", i)
		}
		next = ph.Start + ph.Len - 1
		if next >= len(samples) {
			return fmt.Errorf("phase: phase %d exceeds sample range", i)
		}
		if ph.Class < 0 || ph.Class >= len(p.Classes) {
			return fmt.Errorf("phase: phase %d has unknown class %d", i, ph.Class)
		}
		classCount[ph.Class]++
		classDur[ph.Class] += ph.DurUS
	}
	for ci, c := range p.Classes {
		if c.Count != classCount[ci] {
			return fmt.Errorf("phase: class %d count %d, members %d", ci, c.Count, classCount[ci])
		}
		if d := c.DurUS - classDur[ci]; d > 1e-9 || -d > 1e-9 {
			return fmt.Errorf("phase: class %d occupancy %v, members sum %v", ci, c.DurUS, classDur[ci])
		}
		if c.Rep < 0 || c.Rep >= len(p.Phases) || p.Phases[c.Rep].Class != ci {
			return fmt.Errorf("phase: class %d representative %d not a member", ci, c.Rep)
		}
	}
	return nil
}
