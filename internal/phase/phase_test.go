package phase

import (
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/microarch"
)

// mkSamples builds a trace of 1µs samples (1100 cycles each) from a list
// of (af, count) segments where every structure carries the same af.
func mkSamples(segments ...[2]float64) []microarch.ActivitySample {
	var out []microarch.ActivitySample
	for _, seg := range segments {
		af, n := seg[0], int(seg[1])
		for i := 0; i < n; i++ {
			var s microarch.ActivitySample
			s.Cycles = 1100
			for b := range s.AF {
				s.AF[b] = af
			}
			out = append(out, s)
		}
	}
	return out
}

func TestCompressCoalescesStationaryRuns(t *testing.T) {
	samples := mkSamples([2]float64{0.2, 50}, [2]float64{0.6, 30}, [2]float64{0.2, 20})
	p, err := Compress(samples, 1100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Phases); got != 3 {
		t.Fatalf("got %d phases, want 3", got)
	}
	if got := len(p.Classes); got != 2 {
		t.Fatalf("got %d classes, want 2 (0.2 recurs)", got)
	}
	if p.Phases[0].Class != p.Phases[2].Class {
		t.Fatal("recurring 0.2 phases not classed together")
	}
	c := p.Classes[p.Phases[0].Class]
	if c.Count != 2 {
		t.Fatalf("recurring class count %d, want 2", c.Count)
	}
	if c.Rep != 0 {
		t.Fatalf("representative %d, want the longest occurrence 0", c.Rep)
	}
	if math.Abs(c.DurUS-70) > 1e-9 {
		t.Fatalf("occupancy %v, want 70µs", c.DurUS)
	}
	if err := p.Check(samples, 1100); err != nil {
		t.Fatal(err)
	}
}

func TestCompressWithinEpsilonStaysOneRun(t *testing.T) {
	// AF wanders ±0.01 around 0.5: inside the default 0.02 epsilon.
	var samples []microarch.ActivitySample
	for i := 0; i < 100; i++ {
		var s microarch.ActivitySample
		s.Cycles = 1100
		for b := range s.AF {
			s.AF[b] = 0.5 + 0.01*math.Sin(float64(i))
		}
		samples = append(samples, s)
	}
	p, err := Compress(samples, 1100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Phases) != 1 {
		t.Fatalf("wander within epsilon split into %d phases", len(p.Phases))
	}
	if r := p.CompressionRatio(); r != 100 {
		t.Fatalf("compression ratio %v, want 100", r)
	}
	if err := p.Check(samples, 1100); err != nil {
		t.Fatal(err)
	}
}

func TestCompressPreservesMeanAndMax(t *testing.T) {
	samples := mkSamples([2]float64{0.1, 10}, [2]float64{0.9, 10})
	// Make one sample's single structure spike to 1.0: the max must survive.
	samples[5].AF[microarch.StructFPU] = 1.0
	p, err := Compress(samples, 1100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxAF[microarch.StructFPU] != 1.0 {
		t.Fatalf("per-structure max lost: %v", p.MaxAF[microarch.StructFPU])
	}
	mean := p.MeanAF()
	want := (0.1*10 + 0.9*10) / 20
	if math.Abs(mean[microarch.StructIFU]-want) > 1e-12 {
		t.Fatalf("mean AF %v, want %v", mean[microarch.StructIFU], want)
	}
	if err := p.Check(samples, 1100); err != nil {
		t.Fatal(err)
	}
}

func TestCompressSkipsZeroDurationSamples(t *testing.T) {
	samples := mkSamples([2]float64{0.3, 5})
	samples[2].Cycles = 0 // must be skipped, not crash or count
	p, err := Compress(samples, 1100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.TotalDurUS-4) > 1e-9 {
		t.Fatalf("total duration %v, want 4µs", p.TotalDurUS)
	}
	if err := p.Check(samples, 1100); err != nil {
		t.Fatal(err)
	}
}

func TestCompressEmptyAndValidation(t *testing.T) {
	p, err := Compress(nil, 1100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Phases) != 0 || p.TotalDurUS != 0 {
		t.Fatal("empty trace produced phases")
	}
	if _, err := Compress(nil, 0, Options{}); err == nil {
		t.Fatal("cyclesPerUS 0 accepted")
	}
	if _, err := Compress(nil, 1100, Options{EpsilonAF: math.NaN()}); err == nil {
		t.Fatal("NaN epsilon accepted")
	}
	if _, err := Compress(nil, 1100, Options{EpsilonAF: 2}); err == nil {
		t.Fatal("epsilon above 1 accepted")
	}
}
