package phase

import (
	"encoding/binary"
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/microarch"
)

// decodeTrace deterministically expands fuzz bytes into an activity trace:
// each byte drives one sample's duration bucket and base AF, with a rolling
// per-structure perturbation so traces exercise both coalescing and
// splitting. The decoding is total — every byte string is a valid trace.
func decodeTrace(data []byte) []microarch.ActivitySample {
	if len(data) > 4096 {
		data = data[:4096]
	}
	samples := make([]microarch.ActivitySample, 0, len(data))
	var roll uint32 = 0x9e3779b9
	for i, b := range data {
		var s microarch.ActivitySample
		// Duration: mostly 1µs (1100 cycles), sometimes 0 or longer.
		switch b >> 6 {
		case 0:
			s.Cycles = 1100
		case 1:
			s.Cycles = 550
		case 2:
			s.Cycles = int64(b) * 100
		default:
			if b == 0xff {
				s.Cycles = 0
			} else {
				s.Cycles = 1100 + int64(i%7)*100
			}
		}
		base := float64(b&0x3f) / 63.0
		for st := range s.AF {
			roll = roll*1664525 + 1013904223 + uint32(st)
			jitter := float64(roll%1000)/1000.0*0.05 - 0.025
			af := base + jitter
			if af < 0 {
				af = 0
			}
			if af > 1 {
				af = 1
			}
			s.AF[st] = af
		}
		samples = append(samples, s)
	}
	return samples
}

// FuzzCompress feeds random activity traces to the phase detector: the
// compressed plan must always re-expand to the original total duration and
// time-weighted mean AF within tolerance (Plan.Check), for any epsilon,
// and never panic.
func FuzzCompress(f *testing.F) {
	// Seed corpus: stationary, alternating, ramping, spiky, and degenerate
	// traces, across the epsilon range.
	f.Add([]byte{}, 0.0)
	f.Add([]byte{0x20, 0x20, 0x20, 0x20}, 0.02)
	flat := make([]byte, 256)
	for i := range flat {
		flat[i] = 0x15
	}
	f.Add(flat, 0.02)
	alt := make([]byte, 128)
	for i := range alt {
		if i/16%2 == 0 {
			alt[i] = 0x08
		} else {
			alt[i] = 0x38
		}
	}
	f.Add(alt, 0.05)
	ramp := make([]byte, 64)
	for i := range ramp {
		ramp[i] = byte(i)
	}
	f.Add(ramp, 0.01)
	spiky := make([]byte, 96)
	for i := range spiky {
		spiky[i] = 0x10
		if i%13 == 0 {
			spiky[i] = 0x3f
		}
		if i%29 == 0 {
			spiky[i] = 0xff // zero-duration sample
		}
	}
	f.Add(spiky, 0.02)
	seeded := make([]byte, 8)
	binary.LittleEndian.PutUint64(seeded, 0xdeadbeefcafe)
	f.Add(seeded, 1.0)

	f.Fuzz(func(t *testing.T, data []byte, eps float64) {
		samples := decodeTrace(data)
		opt := Options{EpsilonAF: eps}
		p, err := Compress(samples, 1100, opt)
		if err != nil {
			// Only invalid epsilons may fail, and they must fail cleanly.
			if o := (Options{EpsilonAF: eps}).norm(); o.Validate() == nil {
				t.Fatalf("valid options rejected: %v", err)
			}
			return
		}
		if err := p.Check(samples, 1100); err != nil {
			t.Fatalf("re-expansion failed: %v", err)
		}
		if p.CompressionRatio() < 1 && len(p.Phases) > 0 {
			t.Fatalf("compression ratio %v below 1", p.CompressionRatio())
		}
		for b, m := range p.MaxAF {
			if math.IsNaN(m) || m < 0 || m > 1 {
				t.Fatalf("structure %d max AF %v out of range", b, m)
			}
		}
	})
}
