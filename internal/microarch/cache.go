package microarch

import (
	"fmt"
	"math/bits"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	// SizeBytes is the total capacity. Must be a power of two.
	SizeBytes int
	// LineBytes is the cache-line size. Must be a power of two.
	LineBytes int
	// Assoc is the set associativity. Must divide SizeBytes/LineBytes.
	Assoc int
}

// Validate checks the geometry.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.SizeBytes&(c.SizeBytes-1) != 0 {
		return fmt.Errorf("cache: size %d not a power of two", c.SizeBytes)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines < c.Assoc {
		return fmt.Errorf("cache: %d lines < associativity %d", lines, c.Assoc)
	}
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: %d sets not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / c.LineBytes / c.Assoc }

// Cache is a set-associative cache with true-LRU replacement. It models
// hit/miss behaviour only; latency and bandwidth are imposed by the
// pipeline. The zero value is not usable; create with NewCache.
type Cache struct {
	cfg       CacheConfig
	lineShift uint
	setMask   uint64
	// tags[set*assoc+way]; valid tags are stored +1 so the zero value
	// means "invalid".
	tags []uint64
	// lru[set*assoc+way] holds a per-set logical clock; the smallest value
	// in a set is the LRU way.
	lru      []uint64
	clock    uint64
	accesses int64
	misses   int64
}

// NewCache builds a cache from a validated config.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	return &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(cfg.Sets() - 1),
		tags:      make([]uint64, lines),
		lru:       make([]uint64, lines),
	}, nil
}

// Access looks up addr, allocating on miss, and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line + 1 // +1 so tag 0 is never valid
	base := set * c.cfg.Assoc
	c.clock++

	victim := base
	victimLRU := ^uint64(0)
	for w := 0; w < c.cfg.Assoc; w++ {
		idx := base + w
		if c.tags[idx] == tag {
			c.lru[idx] = c.clock
			return true
		}
		if c.lru[idx] < victimLRU {
			victimLRU = c.lru[idx]
			victim = idx
		}
	}
	c.misses++
	c.tags[victim] = tag
	c.lru[victim] = c.clock
	return false
}

// Prefetch inserts addr's line without counting demand statistics: hits
// refresh LRU, misses allocate. Used by the next-line prefetcher so
// prefetch traffic does not pollute miss-rate accounting.
func (c *Cache) Prefetch(addr uint64) {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line + 1
	base := set * c.cfg.Assoc
	c.clock++
	victim := base
	victimLRU := ^uint64(0)
	for w := 0; w < c.cfg.Assoc; w++ {
		idx := base + w
		if c.tags[idx] == tag {
			c.lru[idx] = c.clock
			return
		}
		if c.lru[idx] < victimLRU {
			victimLRU = c.lru[idx]
			victim = idx
		}
	}
	c.tags[victim] = tag
	c.lru[victim] = c.clock
}

// Warm looks up addr exactly like Access — refreshing recency on a hit,
// allocating over the LRU way on a miss — but counts no demand statistics
// and reports whether it hit. It exists for statistical warming of
// sampled-out trace spans: the cache contents evolve as if the skipped
// accesses had happened, while miss rates keep describing only the
// instructions actually simulated.
func (c *Cache) Warm(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line + 1
	base := set * c.cfg.Assoc
	c.clock++
	victim := base
	victimLRU := ^uint64(0)
	for w := 0; w < c.cfg.Assoc; w++ {
		idx := base + w
		if c.tags[idx] == tag {
			c.lru[idx] = c.clock
			return true
		}
		if c.lru[idx] < victimLRU {
			victimLRU = c.lru[idx]
			victim = idx
		}
	}
	c.tags[victim] = tag
	c.lru[victim] = c.clock
	return false
}

// Contains reports whether addr is present without touching LRU state or
// statistics (useful for tests and warm-up checks).
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line + 1
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Accesses returns the number of lookups performed.
func (c *Cache) Accesses() int64 { return c.accesses }

// Misses returns the number of lookups that missed.
func (c *Cache) Misses() int64 { return c.misses }

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.clock = 0
	c.accesses = 0
	c.misses = 0
}
