package microarch

import (
	"errors"
	"fmt"
	"io"

	"github.com/ramp-sim/ramp/internal/trace"
)

// bwRing is a bandwidth reservation table: it finds, for a requested start
// cycle, the earliest cycle with spare per-cycle capacity. Entries are
// lazily reset by stamping the cycle they describe, so the ring never needs
// clearing. The ring must be longer than the largest spread of in-flight
// reservation cycles (bounded by ROB size × worst-case latency).
type bwRing struct {
	counts []int32
	cycles []int64
	limit  int32
}

const _bwRingSize = 1 << 15

func newBWRing(limit int) bwRing {
	return bwRing{
		counts: make([]int32, _bwRingSize),
		cycles: make([]int64, _bwRingSize),
		limit:  int32(limit),
	}
}

// reserve books one slot at the earliest cycle ≥ t with spare capacity and
// returns that cycle.
func (b *bwRing) reserve(t int64) int64 {
	for {
		i := t & (_bwRingSize - 1)
		if b.cycles[i] != t {
			b.cycles[i] = t
			b.counts[i] = 0
		}
		if b.counts[i] < b.limit {
			b.counts[i]++
			return t
		}
		t++
	}
}

// unitPool models a set of interchangeable functional units. Pipelined
// operations occupy a unit for one cycle; non-pipelined operations (the
// divides) occupy it for their full latency.
type unitPool struct {
	free []int64
}

func newUnitPool(n int) unitPool {
	return unitPool{free: make([]int64, n)}
}

// acquire finds a unit for an operation that becomes ready at cycle t and
// occupies its unit for occ cycles. It returns the issue cycle. It prefers
// a unit already idle at t (avoiding false contention from program-order
// reservation); otherwise it waits for the earliest-free unit.
func (u *unitPool) acquire(t int64, occ int64) int64 {
	best := -1
	var bestFree int64
	for i, f := range u.free {
		if f <= t {
			// Idle at t: prefer the most recently used idle unit so other
			// units remain free for earlier-ready operations.
			if best == -1 || f > bestFree {
				best, bestFree = i, f
			}
		}
	}
	if best == -1 {
		// All busy at t: take the earliest-free unit.
		best, bestFree = 0, u.free[0]
		for i, f := range u.free {
			if f < bestFree {
				best, bestFree = i, f
			}
		}
		t = bestFree
	}
	u.free[best] = t + occ
	return t
}

// occupancyRing tracks the release times of the last N occupants of a
// structural resource (ROB entries, LSQ slots, physical registers). Slot i
// of the resource is reused by the (i+N)-th allocation, so the constraint
// for a new allocation is the stored release time of the entry it replaces.
type occupancyRing struct {
	release []int64
	pos     int
}

func newOccupancyRing(n int) occupancyRing {
	return occupancyRing{release: make([]int64, n)}
}

// constraint returns the earliest cycle the next allocation may proceed.
func (o *occupancyRing) constraint() int64 {
	return o.release[o.pos]
}

// allocate records the release time of the new occupant.
func (o *occupancyRing) allocate(releaseCycle int64) {
	o.release[o.pos] = releaseCycle
	o.pos++
	if o.pos == len(o.release) {
		o.pos = 0
	}
}

// Simulator executes an instruction trace on the modeled machine.
type Simulator struct {
	cfg  Config
	caps [NumStructures]float64

	l1i, l1d, l2 *Cache
	pred         *Predictor

	regReady [trace.NumArchRegs]int64

	fetchBW    bwRing
	dispatchBW bwRing
	issueBW    bwRing
	retireBW   bwRing

	intUnits, fpUnits, lsUnits, brUnits, lcrUnits unitPool

	rob     occupancyRing
	memq    occupancyRing
	intRegs occupancyRing
	fpRegs  occupancyRing

	fetchHead    int64
	lastDispatch int64
	lastRetire   int64
	lastLine     uint64

	cyclesPerUs int64
	samples     []ActivitySample
	totalEvents [NumStructures]float64

	retired     int64
	branches    int64
	mispredicts int64
}

// NewSimulator builds a simulator for the given machine configuration.
func NewSimulator(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1i, err := NewCache(cfg.L1I)
	if err != nil {
		return nil, fmt.Errorf("microarch: L1I: %w", err)
	}
	l1d, err := NewCache(cfg.L1D)
	if err != nil {
		return nil, fmt.Errorf("microarch: L1D: %w", err)
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("microarch: L2: %w", err)
	}
	s := &Simulator{
		cfg:         cfg,
		caps:        cfg.capacity(),
		l1i:         l1i,
		l1d:         l1d,
		l2:          l2,
		pred:        NewPredictorKind(predictorKindOrDefault(cfg.PredictorKind), cfg.PredictorBits, cfg.BTBEntries),
		fetchBW:     newBWRing(cfg.FetchWidth),
		dispatchBW:  newBWRing(cfg.DispatchWidth),
		issueBW:     newBWRing(cfg.IssueWidth),
		retireBW:    newBWRing(cfg.RetireWidth),
		intUnits:    newUnitPool(cfg.IntUnits),
		fpUnits:     newUnitPool(cfg.FPUnits),
		lsUnits:     newUnitPool(cfg.LSUnits),
		brUnits:     newUnitPool(cfg.BranchUnits),
		lcrUnits:    newUnitPool(cfg.LCRUnits),
		rob:         newOccupancyRing(cfg.ROBSize),
		memq:        newOccupancyRing(cfg.MemQueueSize),
		intRegs:     newOccupancyRing(cfg.IntRegs - 32),
		fpRegs:      newOccupancyRing(cfg.FPRegs - 32),
		cyclesPerUs: cfg.CyclesPerMicrosecond(),
		lastLine:    ^uint64(0),
	}
	return s, nil
}

// Run consumes the stream to completion (or the first error) and returns
// the aggregated result.
func (s *Simulator) Run(stream trace.Stream) (Result, error) {
	for {
		in, err := stream.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return Result{}, fmt.Errorf("microarch: trace error after %d instructions: %w", s.retired, err)
		}
		s.step(in)
	}
	return s.result(), nil
}

// WarmAccess replays one sampled-out memory access through the data
// hierarchy, implementing trace.MemWarmer for systematic sampling. It
// mirrors the demand path's cache-content effects — L1D lookup, L2 on an
// L1D miss, the next-line prefetch loads trigger — without touching the
// demand statistics or consuming pipeline time, so the caches evolve as if
// the skipped span had executed while the activity samples keep describing
// only the instructions actually simulated.
func (s *Simulator) WarmAccess(addr uint64, store bool) {
	if s.l1d.Warm(addr) {
		return
	}
	s.l2.Warm(addr)
	if !store && s.cfg.NextLinePrefetch {
		next := addr + uint64(s.cfg.L1D.LineBytes)
		s.l1d.Prefetch(next)
		s.l2.Prefetch(next)
	}
}

// step advances the model by one instruction, computing its fetch,
// dispatch, issue, completion, and retirement cycles under all structural
// constraints, and accumulating activity events.
func (s *Simulator) step(in trace.Instruction) {
	cfg := &s.cfg

	// ---- Fetch: in-order, bandwidth-limited, I-cache latency on new lines.
	fetchT := s.fetchHead
	line := in.PC >> uint(log2(uint64(cfg.L1I.LineBytes)))
	if line != s.lastLine {
		s.lastLine = line
		if !s.l1i.Access(in.PC) {
			if s.l2.Access(in.PC) {
				fetchT += int64(cfg.L2Lat)
			} else {
				fetchT += int64(cfg.MemLat)
			}
		}
	}
	fetchT = s.fetchBW.reserve(fetchT)
	s.fetchHead = fetchT
	s.addEvent(StructIFU, fetchT, 1)

	// ---- Dispatch: in-order, group width, window/queue/register occupancy.
	dispT := fetchT + int64(cfg.FetchToDispatch)
	if dispT < s.lastDispatch {
		dispT = s.lastDispatch
	}
	if c := s.rob.constraint(); c+1 > dispT {
		dispT = c + 1
	}
	if in.Class.IsMem() {
		if c := s.memq.constraint(); c+1 > dispT {
			dispT = c + 1
		}
	}
	destFP := in.Dest != trace.RegNone && in.Dest >= 128
	destInt := in.Dest != trace.RegNone && in.Dest < 128
	if destInt {
		if c := s.intRegs.constraint(); c+1 > dispT {
			dispT = c + 1
		}
	}
	if destFP {
		if c := s.fpRegs.constraint(); c+1 > dispT {
			dispT = c + 1
		}
	}
	dispT = s.dispatchBW.reserve(dispT)
	s.lastDispatch = dispT
	s.addEvent(StructIDU, dispT, 1)

	// ---- Ready: all source operands produced.
	ready := dispT + 1
	if in.Src1 != trace.RegNone && s.regReady[in.Src1] > ready {
		ready = s.regReady[in.Src1]
	}
	if in.Src2 != trace.RegNone && s.regReady[in.Src2] > ready {
		ready = s.regReady[in.Src2]
	}

	// ---- Issue and execute.
	var issueT, completeT int64
	switch in.Class {
	case trace.ClassIntALU:
		issueT = s.intUnits.acquire(ready, 1)
		issueT = s.issueBW.reserve(issueT)
		completeT = issueT + int64(cfg.IntAddLat)
		s.addEvent(StructFXU, issueT, 1)
	case trace.ClassIntMul:
		issueT = s.intUnits.acquire(ready, 1)
		issueT = s.issueBW.reserve(issueT)
		completeT = issueT + int64(cfg.IntMulLat)
		s.addEvent(StructFXU, issueT, 2)
	case trace.ClassIntDiv:
		occ := int64(cfg.IntDivLat)
		issueT = s.intUnits.acquire(ready, occ)
		issueT = s.issueBW.reserve(issueT)
		completeT = issueT + occ
		s.addEvent(StructFXU, issueT, 4)
	case trace.ClassFPOp:
		issueT = s.fpUnits.acquire(ready, 1)
		issueT = s.issueBW.reserve(issueT)
		completeT = issueT + int64(cfg.FPLat)
		s.addEvent(StructFPU, issueT, 1)
	case trace.ClassFPDiv:
		occ := int64(cfg.FPDivLat)
		issueT = s.fpUnits.acquire(ready, occ)
		issueT = s.issueBW.reserve(issueT)
		completeT = issueT + occ
		s.addEvent(StructFPU, issueT, 3)
	case trace.ClassLoad:
		issueT = s.lsUnits.acquire(ready, 1)
		issueT = s.issueBW.reserve(issueT)
		lat := int64(cfg.L1Lat)
		if !s.l1d.Access(in.Addr) {
			if s.l2.Access(in.Addr) {
				lat = int64(cfg.L2Lat)
			} else {
				lat = int64(cfg.MemLat)
			}
			if cfg.NextLinePrefetch {
				next := in.Addr + uint64(cfg.L1D.LineBytes)
				s.l1d.Prefetch(next)
				s.l2.Prefetch(next)
			}
		}
		completeT = issueT + lat
		s.addEvent(StructLSU, issueT, 1)
	case trace.ClassStore:
		issueT = s.lsUnits.acquire(ready, 1)
		issueT = s.issueBW.reserve(issueT)
		// Stores complete into the store queue at L1 latency; the line is
		// allocated (write-allocate) for cache-content fidelity.
		if !s.l1d.Access(in.Addr) {
			s.l2.Access(in.Addr)
		}
		completeT = issueT + int64(cfg.L1Lat)
		s.addEvent(StructLSU, issueT, 1)
	case trace.ClassBranch:
		issueT = s.brUnits.acquire(ready, 1)
		issueT = s.issueBW.reserve(issueT)
		completeT = issueT + 1
		s.addEvent(StructBXU, issueT, 1)
		s.branches++
		if !s.pred.PredictAndUpdate(in.PC, in.Taken, in.Target) {
			s.mispredicts++
			// Redirect: younger instructions fetch after resolution.
			redirect := completeT + int64(cfg.MispredictPenalty)
			if redirect > s.fetchHead {
				s.fetchHead = redirect
			}
		}
	case trace.ClassLCR:
		issueT = s.lcrUnits.acquire(ready, 1)
		issueT = s.issueBW.reserve(issueT)
		completeT = issueT + 1
		s.addEvent(StructBXU, issueT, 1)
	default:
		// Unknown classes execute as single-cycle integer ops.
		issueT = s.intUnits.acquire(ready, 1)
		issueT = s.issueBW.reserve(issueT)
		completeT = issueT + 1
		s.addEvent(StructFXU, issueT, 1)
	}
	s.addEvent(StructISU, issueT, 1)

	if in.Dest != trace.RegNone {
		s.regReady[in.Dest] = completeT
	}

	// ---- Retire: in-order, group width.
	retT := completeT + 1
	if retT < s.lastRetire {
		retT = s.lastRetire
	}
	retT = s.retireBW.reserve(retT)
	s.lastRetire = retT
	s.retired++
	s.addRetired(retT)

	// ---- Release structural resources at retirement.
	s.rob.allocate(retT)
	if in.Class.IsMem() {
		s.memq.allocate(retT)
	}
	if destInt {
		s.intRegs.allocate(retT)
	}
	if destFP {
		s.fpRegs.allocate(retT)
	}
}

// addEvent accumulates weighted activity events into the 1µs interval that
// contains the given cycle.
func (s *Simulator) addEvent(st StructureID, cycle int64, weight float64) {
	idx := int(cycle / s.cyclesPerUs)
	s.ensureSample(idx)
	s.samples[idx].AF[st] += weight
	s.totalEvents[st] += weight
}

func (s *Simulator) addRetired(cycle int64) {
	idx := int(cycle / s.cyclesPerUs)
	s.ensureSample(idx)
	s.samples[idx].Retired++
}

func (s *Simulator) ensureSample(idx int) {
	for len(s.samples) <= idx {
		s.samples = append(s.samples, ActivitySample{Cycles: s.cyclesPerUs})
	}
}

// result finalises interval activity factors and whole-run statistics.
func (s *Simulator) result() Result {
	totalCycles := s.lastRetire + 1
	// Trim trailing intervals beyond the retirement horizon and normalise
	// event counts into activity factors.
	nIntervals := int(totalCycles / s.cyclesPerUs)
	if totalCycles%s.cyclesPerUs != 0 {
		nIntervals++
	}
	if nIntervals > len(s.samples) {
		nIntervals = len(s.samples)
	}
	samples := s.samples[:nIntervals]
	for i := range samples {
		cyc := samples[i].Cycles
		if i == len(samples)-1 {
			if rem := totalCycles - int64(i)*s.cyclesPerUs; rem > 0 && rem < cyc {
				cyc = rem
				samples[i].Cycles = rem
			}
		}
		for st := 0; st < NumStructures; st++ {
			af := samples[i].AF[st] / (s.caps[st] * float64(cyc))
			if af > 1 {
				af = 1
			}
			samples[i].AF[st] = af
		}
	}
	res := Result{
		Instructions: s.retired,
		Cycles:       totalCycles,
		Samples:      samples,
		Branches:     s.branches,
		Mispredicts:  s.mispredicts,
		L1IAccesses:  s.l1i.Accesses(),
		L1IMisses:    s.l1i.Misses(),
		L1DAccesses:  s.l1d.Accesses(),
		L1DMisses:    s.l1d.Misses(),
		L2Accesses:   s.l2.Accesses(),
		L2Misses:     s.l2.Misses(),
	}
	for st := 0; st < NumStructures; st++ {
		af := s.totalEvents[st] / (s.caps[st] * float64(totalCycles))
		if af > 1 {
			af = 1
		}
		res.AvgAF[st] = af
	}
	return res
}

// predictorKindOrDefault maps the zero value to gshare so older configs
// keep working.
func predictorKindOrDefault(k PredictorKind) PredictorKind {
	if k == 0 {
		return PredictorGshare
	}
	return k
}

// log2 returns floor(log2(x)) for x > 0.
func log2(x uint64) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
