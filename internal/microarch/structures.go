// Package microarch implements a trace-driven performance model of the
// paper's base processor: a 180nm out-of-order 8-way superscalar core
// conceptually similar to a single-core POWER4 (Table 2). It plays the role
// Turandot plays in the paper's toolchain (§4.1): it consumes an
// instruction trace and produces cycle counts (IPC) and per-structure
// activity factors at a 1µs granularity, which drive the power, thermal,
// and reliability models downstream.
//
// The model is a one-pass scoreboard-style out-of-order simulator: for each
// instruction it computes fetch, dispatch, issue, completion, and
// retirement cycles subject to the machine's structural constraints (fetch
// and dispatch bandwidth, ROB and memory-queue occupancy, physical-register
// availability, per-class functional-unit counts, issue bandwidth, cache
// hierarchy latencies, and branch-misprediction redirects). This class of
// model captures the activity and IPC dynamics that the reliability study
// needs while remaining fast enough to run hundreds of millions of
// instructions.
package microarch

import "fmt"

// StructureID names one of the 7 microarchitectural structures the paper's
// floorplan tracks (§4.3: "We combine the microarchitectural structures on
// the POWER4-like core into 7 distinct structures"). The grouping mirrors
// the POWER4 unit organisation.
type StructureID int

// The 7 modeled structures.
const (
	// StructIFU: instruction fetch unit — L1 I-cache, fetch logic, and the
	// branch predictor tables.
	StructIFU StructureID = iota
	// StructIDU: instruction decode/dispatch unit.
	StructIDU
	// StructISU: instruction sequencing unit — rename, issue queues, and
	// the reorder buffer.
	StructISU
	// StructFXU: fixed-point execution units and integer register file.
	StructFXU
	// StructFPU: floating-point execution units and FP register file.
	StructFPU
	// StructLSU: load/store units, memory queue, and L1 D-cache.
	StructLSU
	// StructBXU: branch and condition-register execution unit.
	StructBXU

	// NumStructures is the number of modeled structures.
	NumStructures int = iota
)

var _structureNames = [NumStructures]string{
	"IFU", "IDU", "ISU", "FXU", "FPU", "LSU", "BXU",
}

// String returns the POWER4-style unit mnemonic.
func (s StructureID) String() string {
	if s < 0 || int(s) >= NumStructures {
		return fmt.Sprintf("structure(%d)", int(s))
	}
	return _structureNames[s]
}

// Structures returns all structure IDs in floorplan order.
func Structures() []StructureID {
	out := make([]StructureID, NumStructures)
	for i := range out {
		out[i] = StructureID(i)
	}
	return out
}

// ActivitySample carries the per-structure utilisation of one evaluation
// interval (1µs in the paper's methodology, §4.3/§4.4). Activity factors
// are event counts normalised by structure capacity × interval cycles and
// lie in [0, 1].
type ActivitySample struct {
	// Cycles is the number of processor cycles in the interval.
	Cycles int64
	// Retired is the number of instructions retired in the interval.
	Retired int64
	// AF is the activity factor of each structure.
	AF [NumStructures]float64
}

// IPC returns the interval's retired instructions per cycle.
func (a ActivitySample) IPC() float64 {
	if a.Cycles == 0 {
		return 0
	}
	return float64(a.Retired) / float64(a.Cycles)
}

// Result aggregates a full simulation run.
type Result struct {
	// Instructions is the number of instructions retired.
	Instructions int64
	// Cycles is the total execution time in processor cycles.
	Cycles int64
	// Samples holds the per-1µs-interval activity factors in time order.
	Samples []ActivitySample
	// AvgAF is the whole-run average activity factor per structure.
	AvgAF [NumStructures]float64
	// Branch prediction statistics.
	Branches, Mispredicts int64
	// Cache statistics (accesses and misses per level).
	L1IAccesses, L1IMisses int64
	L1DAccesses, L1DMisses int64
	L2Accesses, L2Misses   int64
}

// IPC returns retired instructions per cycle for the whole run.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// MispredictRate returns the branch misprediction ratio.
func (r Result) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

// L1DMissRate returns the L1 D-cache miss ratio.
func (r Result) L1DMissRate() float64 {
	if r.L1DAccesses == 0 {
		return 0
	}
	return float64(r.L1DMisses) / float64(r.L1DAccesses)
}

// L1IMissRate returns the L1 I-cache miss ratio.
func (r Result) L1IMissRate() float64 {
	if r.L1IAccesses == 0 {
		return 0
	}
	return float64(r.L1IMisses) / float64(r.L1IAccesses)
}

// L2MissRate returns the unified L2 miss ratio.
func (r Result) L2MissRate() float64 {
	if r.L2Accesses == 0 {
		return 0
	}
	return float64(r.L2Misses) / float64(r.L2Accesses)
}
