package microarch_test

import (
	"testing"

	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/workload"
)

// TestTable3IPCCalibration checks that every synthetic benchmark reproduces
// its paper Table 3 IPC on the base 180nm machine within a 10% relative
// tolerance. This is the substitution-fidelity contract for the proprietary
// PowerPC traces (DESIGN.md §1).
func TestTable3IPCCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow; skipped with -short")
	}
	// 1M instructions: short runs under-warm the larger working sets and
	// read artificially low (the calibration itself used 1M).
	const n = 1_000_000
	for _, p := range workload.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			g, err := workload.New(p, n)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := microarch.NewSimulator(microarch.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(g)
			if err != nil {
				t.Fatal(err)
			}
			ipc := res.IPC()
			rel := ipc/p.TargetIPC - 1
			if rel < -0.10 || rel > 0.10 {
				t.Errorf("%s: IPC %.3f vs Table 3 target %.2f (%.1f%% off)",
					p.Name, ipc, p.TargetIPC, rel*100)
			}
		})
	}
}

// TestSuiteIPCOrdering checks the paper's suite-level observation (§4.5):
// "SpecInt has a higher average IPC ... than SpecFP".
func TestSuiteIPCOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow; skipped with -short")
	}
	const n = 300_000
	avg := func(suite workload.Suite) float64 {
		var sum float64
		profs := workload.BySuite(suite)
		for _, p := range profs {
			g, err := workload.New(p, n)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := microarch.NewSimulator(microarch.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(g)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.IPC()
		}
		return sum / float64(len(profs))
	}
	fp, intg := avg(workload.SuiteFP), avg(workload.SuiteInt)
	if intg <= fp {
		t.Fatalf("SpecInt avg IPC %.3f must exceed SpecFP avg IPC %.3f", intg, fp)
	}
}
