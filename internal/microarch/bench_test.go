package microarch

import (
	"testing"

	"github.com/ramp-sim/ramp/internal/trace"
	"github.com/ramp-sim/ramp/internal/workload"
)

func BenchmarkCacheAccessHit(b *testing.B) {
	c, err := NewCache(CacheConfig{SizeBytes: 32 << 10, LineBytes: 128, Assoc: 2})
	if err != nil {
		b.Fatal(err)
	}
	c.Access(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000)
	}
}

func BenchmarkCacheAccessStream(b *testing.B) {
	c, err := NewCache(CacheConfig{SizeBytes: 2 << 20, LineBytes: 128, Assoc: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 128)
	}
}

func BenchmarkPredictor(b *testing.B) {
	p := NewPredictor(14, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x1000 + (i%64)*12)
		p.PredictAndUpdate(pc, i%3 != 0, pc+0x40)
	}
}

// BenchmarkPipeline measures end-to-end simulated instructions per second
// on a realistic workload mix.
func BenchmarkPipeline(b *testing.B) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	instrs := make([]trace.Instruction, 0, 200_000)
	gen, err := workload.New(prof, int64(cap(instrs)))
	if err != nil {
		b.Fatal(err)
	}
	instrs, err = trace.Collect(gen, cap(instrs))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulator(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(trace.NewSliceStream(instrs))
		if err != nil {
			b.Fatal(err)
		}
		total += res.Instructions
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
}
