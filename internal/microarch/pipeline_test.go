package microarch

import (
	"testing"

	"github.com/ramp-sim/ramp/internal/trace"
)

// run simulates instrs on cfg and returns the result.
func run(t *testing.T, cfg Config, instrs []trace.Instruction) Result {
	t.Helper()
	sim, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(trace.NewSliceStream(instrs))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// loopPC maps instruction index i onto a looping code footprint so the
// I-cache warms up after the first iteration, as it would for real loop
// code. footprint is in instructions.
func loopPC(i, footprint int) uint64 {
	return uint64(0x1000 + 4*(i%footprint))
}

// aluStream builds n independent single-cycle integer ops, alternating
// destinations so no dependence chains form, on a loop-resident footprint.
func aluStream(n int) []trace.Instruction {
	out := make([]trace.Instruction, n)
	for i := range out {
		out[i] = trace.Instruction{
			PC:    loopPC(i, 256),
			Class: trace.ClassIntALU,
			Dest:  uint16(1 + i%16),
		}
	}
	return out
}

func TestDefaultConfigIsValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejections(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero fetch width", func(c *Config) { c.FetchWidth = 0 }},
		{"zero rob", func(c *Config) { c.ROBSize = 0 }},
		{"negative penalty", func(c *Config) { c.MispredictPenalty = -1 }},
		{"zero frequency", func(c *Config) { c.FrequencyGHz = 0 }},
		{"regs too small", func(c *Config) { c.IntRegs = 32 }},
		{"bad cache", func(c *Config) { c.L1D.SizeBytes = 1000 }},
		{"latency order", func(c *Config) { c.MemLat = 1 }},
		{"zero fetch-to-dispatch", func(c *Config) { c.FetchToDispatch = 0 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestNewSimulatorRejectsInvalidConfig(t *testing.T) {
	var cfg Config
	if _, err := NewSimulator(cfg); err == nil {
		t.Fatal("zero config must be rejected")
	}
}

func TestStructureNames(t *testing.T) {
	if NumStructures != 7 {
		t.Fatalf("NumStructures = %d, want 7 (paper §4.3)", NumStructures)
	}
	if StructIFU.String() != "IFU" || StructBXU.String() != "BXU" {
		t.Fatal("structure names wrong")
	}
	if StructureID(99).String() != "structure(99)" {
		t.Fatal("out-of-range name wrong")
	}
	if len(Structures()) != NumStructures {
		t.Fatal("Structures() length wrong")
	}
}

func TestIndependentALUThroughputBoundedByIntUnits(t *testing.T) {
	// With 2 integer units, an all-ALU trace cannot exceed IPC 2 and a
	// healthy model should get close to it.
	res := run(t, DefaultConfig(), aluStream(20000))
	if ipc := res.IPC(); ipc > 2.01 || ipc < 1.6 {
		t.Fatalf("all-ALU IPC = %.3f, want in (1.6, 2.0]", ipc)
	}
}

func TestDependencyChainSerialises(t *testing.T) {
	// Each op reads the previous op's destination: IPC ≈ 1 with 1-cycle
	// latency ops.
	n := 10000
	instrs := make([]trace.Instruction, n)
	for i := range instrs {
		instrs[i] = trace.Instruction{
			PC:    loopPC(i, 256),
			Class: trace.ClassIntALU,
			Dest:  1,
			Src1:  1,
		}
	}
	res := run(t, DefaultConfig(), instrs)
	if ipc := res.IPC(); ipc > 1.05 || ipc < 0.85 {
		t.Fatalf("chain IPC = %.3f, want ≈ 1", ipc)
	}
}

func TestDivideChainLatency(t *testing.T) {
	// A chain of dependent 35-cycle divides: IPC ≈ 1/35.
	n := 2000
	instrs := make([]trace.Instruction, n)
	for i := range instrs {
		instrs[i] = trace.Instruction{
			PC:    loopPC(i, 256),
			Class: trace.ClassIntDiv,
			Dest:  1,
			Src1:  1,
		}
	}
	res := run(t, DefaultConfig(), instrs)
	want := 1.0 / 35
	if ipc := res.IPC(); ipc > want*1.15 || ipc < want*0.85 {
		t.Fatalf("divide-chain IPC = %.4f, want ≈ %.4f", ipc, want)
	}
}

func TestMixedWorkloadExceedsSingleUnitClassBound(t *testing.T) {
	// Interleaving INT, FP, load, and branch work spreads across unit
	// classes, so IPC should exceed the 2.0 all-ALU bound.
	var instrs []trace.Instruction
	for i := 0; i < 4000; i++ {
		j := 0
		add := func(in trace.Instruction) {
			in.PC = loopPC(i*6+j, 384)
			j++
			instrs = append(instrs, in)
		}
		add(trace.Instruction{Class: trace.ClassIntALU, Dest: uint16(1 + i%8)})
		add(trace.Instruction{Class: trace.ClassIntALU, Dest: uint16(9 + i%8)})
		add(trace.Instruction{Class: trace.ClassFPOp, Dest: uint16(128 + i%8)})
		add(trace.Instruction{Class: trace.ClassFPOp, Dest: uint16(136 + i%8)})
		add(trace.Instruction{Class: trace.ClassLoad, Addr: 0x1000_0000 + uint64(i%64)*8, Dest: uint16(17 + i%8)})
		add(trace.Instruction{Class: trace.ClassLCR, Dest: 30})
	}
	res := run(t, DefaultConfig(), instrs)
	if ipc := res.IPC(); ipc < 2.5 {
		t.Fatalf("mixed IPC = %.3f, want ≥ 2.5", ipc)
	}
}

func TestRetireWidthCapsIPC(t *testing.T) {
	// IPC can never exceed the retirement width.
	var instrs []trace.Instruction
	k := 0
	for i := 0; i < 6000; i++ {
		for _, c := range []trace.Class{
			trace.ClassIntALU, trace.ClassIntALU, trace.ClassFPOp,
			trace.ClassFPOp, trace.ClassLCR, trace.ClassBranch,
		} {
			in := trace.Instruction{PC: loopPC(k, 384), Class: c}
			k++
			if c == trace.ClassBranch {
				in.Taken = false
			} else if c.IsFP() {
				in.Dest = uint16(128 + i%16)
			} else {
				in.Dest = uint16(1 + i%16)
			}
			instrs = append(instrs, in)
		}
	}
	res := run(t, DefaultConfig(), instrs)
	if ipc := res.IPC(); ipc > float64(DefaultConfig().RetireWidth)+0.01 {
		t.Fatalf("IPC %.3f exceeds retire width", ipc)
	}
}

func TestColdMemoryLoadsSlowExecution(t *testing.T) {
	cfg := DefaultConfig()
	mk := func(addr func(i int) uint64) []trace.Instruction {
		instrs := make([]trace.Instruction, 5000)
		for i := range instrs {
			instrs[i] = trace.Instruction{
				PC:    loopPC(i, 256),
				Class: trace.ClassLoad,
				Addr:  addr(i),
				Dest:  uint16(1 + i%16),
				Src1:  uint16(1 + (i+8)%16), // depend on an older load
			}
		}
		return instrs
	}
	// Hot: a 4KB working set that loops, so everything hits the L1 after
	// warm-up. Cold: every access touches a fresh line past the L2.
	hot := run(t, cfg, mk(func(i int) uint64 { return 0x1000_0000 + uint64(i%512)*8 }))
	cold := run(t, cfg, mk(func(i int) uint64 { return 0x4000_0000 + uint64(i)*65536 }))
	if hot.IPC() <= cold.IPC()*2 {
		t.Fatalf("hot IPC %.3f vs cold IPC %.3f: cache misses must hurt", hot.IPC(), cold.IPC())
	}
	if cold.L1DMissRate() < 0.95 {
		t.Fatalf("cold L1D miss rate = %.3f, want ≈ 1", cold.L1DMissRate())
	}
	if cold.L2MissRate() < 0.95 {
		t.Fatalf("cold L2 miss rate = %.3f, want ≈ 1", cold.L2MissRate())
	}
}

func TestMispredictsReduceIPC(t *testing.T) {
	cfg := DefaultConfig()
	mk := func(pattern func(i int) bool) []trace.Instruction {
		// A single static loop: two ALU ops and a backward branch whose
		// direction follows the given pattern. The static branch PC lets
		// the BTB and direction tables train as they would on real code.
		var instrs []trace.Instruction
		const base = uint64(0x1000)
		for i := 0; i < 8000; i++ {
			instrs = append(instrs,
				trace.Instruction{PC: base, Class: trace.ClassIntALU, Dest: uint16(1 + i%8)},
				trace.Instruction{PC: base + 4, Class: trace.ClassIntALU, Dest: uint16(9 + i%8)},
			)
			taken := pattern(i)
			br := trace.Instruction{PC: base + 8, Class: trace.ClassBranch, Taken: taken}
			if taken {
				br.Target = base
			}
			instrs = append(instrs, br)
		}
		return instrs
	}
	predictable := run(t, cfg, mk(func(i int) bool { return true }))
	// An LCG-driven pseudo-random direction defeats the predictor.
	state := uint64(12345)
	hostile := run(t, cfg, mk(func(i int) bool {
		state = state*6364136223846793005 + 1442695040888963407
		return state>>63 == 1
	}))
	if predictable.MispredictRate() > 0.05 {
		t.Fatalf("predictable mispredict rate = %.3f", predictable.MispredictRate())
	}
	if hostile.MispredictRate() < 0.3 {
		t.Fatalf("hostile mispredict rate = %.3f, want ≥ 0.3", hostile.MispredictRate())
	}
	if predictable.IPC() <= hostile.IPC() {
		t.Fatalf("predictable IPC %.3f must exceed hostile IPC %.3f",
			predictable.IPC(), hostile.IPC())
	}
}

func TestActivityFactorsWithinBounds(t *testing.T) {
	res := run(t, DefaultConfig(), aluStream(50000))
	if len(res.Samples) == 0 {
		t.Fatal("no activity samples produced")
	}
	for i, s := range res.Samples {
		if s.Cycles <= 0 {
			t.Fatalf("sample %d has %d cycles", i, s.Cycles)
		}
		for st := 0; st < NumStructures; st++ {
			if s.AF[st] < 0 || s.AF[st] > 1 {
				t.Fatalf("sample %d structure %v AF = %v", i, StructureID(st), s.AF[st])
			}
		}
	}
	for st := 0; st < NumStructures; st++ {
		if res.AvgAF[st] < 0 || res.AvgAF[st] > 1 {
			t.Fatalf("AvgAF[%v] = %v", StructureID(st), res.AvgAF[st])
		}
	}
	// An all-integer workload exercises FXU but not FPU.
	if res.AvgAF[StructFXU] < 0.5 {
		t.Errorf("FXU AvgAF = %v, want high for ALU-only work", res.AvgAF[StructFXU])
	}
	if res.AvgAF[StructFPU] != 0 {
		t.Errorf("FPU AvgAF = %v, want 0 for ALU-only work", res.AvgAF[StructFPU])
	}
}

func TestSampleCyclesSumMatchesTotal(t *testing.T) {
	res := run(t, DefaultConfig(), aluStream(30000))
	var sum int64
	for _, s := range res.Samples {
		sum += s.Cycles
	}
	if sum != res.Cycles {
		t.Fatalf("sample cycles sum %d != total cycles %d", sum, res.Cycles)
	}
}

func TestRetiredSumMatchesInstructionCount(t *testing.T) {
	res := run(t, DefaultConfig(), aluStream(12345))
	var sum int64
	for _, s := range res.Samples {
		sum += s.Retired
	}
	if sum != res.Instructions || res.Instructions != 12345 {
		t.Fatalf("retired sum %d, Instructions %d, want 12345", sum, res.Instructions)
	}
}

func TestEmptyTrace(t *testing.T) {
	res := run(t, DefaultConfig(), nil)
	if res.Instructions != 0 {
		t.Fatalf("Instructions = %d, want 0", res.Instructions)
	}
	if res.IPC() != 0 {
		t.Fatalf("IPC of empty run = %v", res.IPC())
	}
}

func TestROBLimitsInFlightWindow(t *testing.T) {
	// One load that misses to memory followed by dependent-free ALU work:
	// with a small ROB the machine stalls behind the load; with a large
	// ROB it keeps retiring. Compare windows.
	mk := func() []trace.Instruction {
		var instrs []trace.Instruction
		k := 0
		for b := 0; b < 50; b++ {
			instrs = append(instrs, trace.Instruction{
				PC: loopPC(k, 201), Class: trace.ClassLoad,
				Addr: 0x4000_0000 + uint64(b)*131072,
				Dest: 20,
			})
			k++
			for i := 0; i < 200; i++ {
				instrs = append(instrs, trace.Instruction{
					PC: loopPC(k, 201), Class: trace.ClassIntALU, Dest: uint16(1 + i%8),
				})
				k++
			}
		}
		return instrs
	}
	small := DefaultConfig()
	small.ROBSize = 16
	large := DefaultConfig()
	large.ROBSize = 512
	resSmall := run(t, small, mk())
	resLarge := run(t, large, mk())
	if resLarge.IPC() <= resSmall.IPC() {
		t.Fatalf("large ROB IPC %.3f must exceed small ROB IPC %.3f",
			resLarge.IPC(), resSmall.IPC())
	}
}

func TestCyclesPerMicrosecond(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.CyclesPerMicrosecond(); got != 1100 {
		t.Fatalf("CyclesPerMicrosecond = %d, want 1100 at 1.1GHz", got)
	}
}

func TestBWRingRespectsLimit(t *testing.T) {
	r := newBWRing(3)
	times := make(map[int64]int)
	for i := 0; i < 10; i++ {
		times[r.reserve(100)]++
	}
	if times[100] != 3 || times[101] != 3 || times[102] != 3 || times[103] != 1 {
		t.Fatalf("reservation spread wrong: %v", times)
	}
}

func TestUnitPoolNonPipelinedOccupancy(t *testing.T) {
	u := newUnitPool(1)
	t0 := u.acquire(10, 35)
	if t0 != 10 {
		t.Fatalf("first acquire at %d, want 10", t0)
	}
	t1 := u.acquire(12, 35)
	if t1 != 45 {
		t.Fatalf("second acquire at %d, want 45 (unit busy until then)", t1)
	}
}

func TestUnitPoolPrefersIdleUnit(t *testing.T) {
	u := newUnitPool(2)
	if got := u.acquire(5, 1); got != 5 {
		t.Fatalf("acquire = %d, want 5", got)
	}
	if got := u.acquire(5, 1); got != 5 {
		t.Fatalf("second unit acquire = %d, want 5", got)
	}
	if got := u.acquire(5, 1); got != 6 {
		t.Fatalf("third acquire = %d, want 6 (both busy at 5)", got)
	}
}

func TestOccupancyRing(t *testing.T) {
	r := newOccupancyRing(2)
	if r.constraint() != 0 {
		t.Fatal("fresh ring must not constrain")
	}
	r.allocate(100)
	r.allocate(200)
	if r.constraint() != 100 {
		t.Fatalf("constraint = %d, want 100 (oldest entry)", r.constraint())
	}
	r.allocate(300)
	if r.constraint() != 200 {
		t.Fatalf("constraint = %d, want 200", r.constraint())
	}
}
