package microarch

import (
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/ramp-sim/ramp/internal/trace"
)

// failingStream yields n good instructions, then a permanent error.
type failingStream struct {
	n   int
	pos int
	err error
}

var _ trace.Stream = (*failingStream)(nil)

func (s *failingStream) Next() (trace.Instruction, error) {
	if s.pos >= s.n {
		return trace.Instruction{}, s.err
	}
	in := trace.Instruction{PC: uint64(0x1000 + 4*(s.pos%64)), Class: trace.ClassIntALU, Dest: 1}
	s.pos++
	return in, nil
}

func TestRunSurfacesStreamErrors(t *testing.T) {
	sim, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("disk on fire")
	_, err = sim.Run(&failingStream{n: 100, err: wantErr})
	if err == nil {
		t.Fatal("stream error swallowed")
	}
	if !errors.Is(err, wantErr) {
		t.Fatalf("error chain lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "100 instructions") {
		t.Fatalf("error should report progress: %v", err)
	}
}

func TestRunTreatsEOFAsCleanEnd(t *testing.T) {
	sim, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(&failingStream{n: 50, err: io.EOF})
	if err != nil {
		t.Fatalf("EOF must end the run cleanly: %v", err)
	}
	if res.Instructions != 50 {
		t.Fatalf("retired %d instructions, want 50", res.Instructions)
	}
}

// wrappedEOFStream returns an error that wraps io.EOF, as decoders that
// annotate their errors might.
type wrappedEOFStream struct{ done bool }

func (s *wrappedEOFStream) Next() (trace.Instruction, error) {
	if s.done {
		return trace.Instruction{}, errors.New("not eof")
	}
	s.done = true
	return trace.Instruction{}, io.EOF
}

func TestRunHandlesImmediateEOF(t *testing.T) {
	sim, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(&wrappedEOFStream{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 0 || len(res.Samples) != 0 {
		t.Fatalf("empty run produced instructions=%d samples=%d", res.Instructions, len(res.Samples))
	}
}
