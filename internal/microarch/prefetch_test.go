package microarch

import (
	"testing"

	"github.com/ramp-sim/ramp/internal/trace"
)

// streamingLoads builds a sequential streaming-load kernel: every access
// advances by 8 bytes through a cold region, with a dependency to make the
// latency visible.
func streamingLoads(n int) []trace.Instruction {
	out := make([]trace.Instruction, n)
	for i := range out {
		out[i] = trace.Instruction{
			PC:    loopPC(i, 256),
			Class: trace.ClassLoad,
			Addr:  0x4000_0000 + uint64(i)*8,
			Dest:  uint16(1 + i%16),
			Src1:  uint16(1 + (i+8)%16),
		}
	}
	return out
}

func TestPrefetchCacheInsertWithoutStats(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeBytes: 1024, LineBytes: 64, Assoc: 2})
	c.Prefetch(0x400)
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Fatal("Prefetch must not count demand statistics")
	}
	if !c.Contains(0x400) {
		t.Fatal("prefetched line must be resident")
	}
	if !c.Access(0x400) {
		t.Fatal("demand access after prefetch must hit")
	}
	// Prefetching a resident line refreshes it rather than duplicating.
	c.Prefetch(0x400)
	if !c.Contains(0x400) {
		t.Fatal("refresh lost the line")
	}
}

func TestNextLinePrefetchHelpsStreaming(t *testing.T) {
	base := DefaultConfig()
	pf := DefaultConfig()
	pf.NextLinePrefetch = true

	noPf := run(t, base, streamingLoads(20000))
	withPf := run(t, pf, streamingLoads(20000))

	if withPf.L1DMissRate() >= noPf.L1DMissRate() {
		t.Fatalf("prefetcher did not cut the streaming L1D miss rate: %.3f vs %.3f",
			withPf.L1DMissRate(), noPf.L1DMissRate())
	}
	if withPf.IPC() <= noPf.IPC() {
		t.Fatalf("prefetcher did not improve streaming IPC: %.3f vs %.3f",
			withPf.IPC(), noPf.IPC())
	}
	// A sequential stream with next-line prefetch should roughly halve
	// demand misses (every other line arrives early).
	if withPf.L1DMissRate() > 0.7*noPf.L1DMissRate() {
		t.Fatalf("prefetch benefit too small: %.4f vs %.4f",
			withPf.L1DMissRate(), noPf.L1DMissRate())
	}
}

func TestNextLinePrefetchHarmlessOnHotSet(t *testing.T) {
	// An L1-resident working set: the prefetcher must not disturb it.
	mk := func() []trace.Instruction {
		instrs := make([]trace.Instruction, 20000)
		for i := range instrs {
			instrs[i] = trace.Instruction{
				PC:    loopPC(i, 256),
				Class: trace.ClassLoad,
				Addr:  0x1000_0000 + uint64(i%512)*8,
				Dest:  uint16(1 + i%16),
			}
		}
		return instrs
	}
	base := DefaultConfig()
	pf := DefaultConfig()
	pf.NextLinePrefetch = true
	noPf := run(t, base, mk())
	withPf := run(t, pf, mk())
	if withPf.IPC() < 0.95*noPf.IPC() {
		t.Fatalf("prefetcher hurt a cache-resident workload: %.3f vs %.3f",
			withPf.IPC(), noPf.IPC())
	}
}
