package microarch

import (
	"fmt"
	"math/bits"
)

// PredictorKind selects the direction-prediction scheme.
type PredictorKind uint8

// Available predictor schemes.
const (
	// PredictorGshare XORs global history into the counter index — the
	// default, standing in for the POWER4 front-end predictor.
	PredictorGshare PredictorKind = iota + 1
	// PredictorBimodal indexes counters by PC only (no history); provided
	// for predictor-sensitivity studies.
	PredictorBimodal
)

// String names the scheme.
func (k PredictorKind) String() string {
	switch k {
	case PredictorGshare:
		return "gshare"
	case PredictorBimodal:
		return "bimodal"
	default:
		return fmt.Sprintf("predictor(%d)", uint8(k))
	}
}

// Predictor is a branch direction predictor (gshare or bimodal) with a
// direct-mapped branch target buffer. It is updated in trace order with
// resolved outcomes, so prediction accuracy reflects the learnability of
// each workload's branch behaviour.
type Predictor struct {
	kind      PredictorKind
	table     []uint8 // 2-bit saturating counters
	mask      uint64
	history   uint64
	histBits  uint
	btbTags   []uint64
	btbTgts   []uint64
	btbMask   uint64
	predicts  int64
	misses    int64
	btbMisses int64
}

// NewPredictorKind builds a predictor of the given scheme with
// 2^tableBits counters and a direct-mapped BTB with btbEntries slots
// (rounded up to a power of two).
func NewPredictorKind(kind PredictorKind, tableBits, btbEntries int) *Predictor {
	p := NewPredictor(tableBits, btbEntries)
	if kind == PredictorBimodal {
		p.kind = PredictorBimodal
	}
	return p
}

// NewPredictor builds a gshare predictor with 2^tableBits counters and a
// direct-mapped BTB with btbEntries slots (rounded up to a power of two).
func NewPredictor(tableBits int, btbEntries int) *Predictor {
	if tableBits < 1 {
		tableBits = 1
	}
	if btbEntries < 1 {
		btbEntries = 1
	}
	btbSize := 1 << uint(bits.Len(uint(btbEntries-1)))
	size := 1 << uint(tableBits)
	p := &Predictor{
		kind:     PredictorGshare,
		table:    make([]uint8, size),
		mask:     uint64(size - 1),
		histBits: uint(tableBits),
		btbTags:  make([]uint64, btbSize),
		btbTgts:  make([]uint64, btbSize),
		btbMask:  uint64(btbSize - 1),
	}
	// Weakly-taken initial state.
	for i := range p.table {
		p.table[i] = 2
	}
	return p
}

func (p *Predictor) index(pc uint64) uint64 {
	if p.kind == PredictorBimodal {
		return (pc >> 2) & p.mask
	}
	return ((pc >> 2) ^ p.history) & p.mask
}

// PredictAndUpdate predicts the branch at pc, then trains the predictor
// with the resolved outcome. It returns whether the overall prediction
// (direction and, for taken branches, target) was correct.
func (p *Predictor) PredictAndUpdate(pc uint64, taken bool, target uint64) bool {
	p.predicts++
	idx := p.index(pc)
	predTaken := p.table[idx] >= 2

	correct := predTaken == taken
	if taken {
		// A taken branch also needs the target: a BTB miss forces a
		// redirect even when the direction was right.
		bidx := (pc >> 2) & p.btbMask
		if p.btbTags[bidx] != pc+1 || p.btbTgts[bidx] != target {
			if correct {
				p.btbMisses++
				correct = false
			}
			p.btbTags[bidx] = pc + 1
			p.btbTgts[bidx] = target
		}
	}
	if !correct {
		p.misses++
	}

	// Train the 2-bit counter.
	if taken {
		if p.table[idx] < 3 {
			p.table[idx]++
		}
	} else {
		if p.table[idx] > 0 {
			p.table[idx]--
		}
	}
	// Update global history.
	p.history = ((p.history << 1) | boolBit(taken)) & ((1 << p.histBits) - 1)
	return correct
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Predicts returns the number of predictions made.
func (p *Predictor) Predicts() int64 { return p.predicts }

// Mispredicts returns the number of incorrect predictions (direction or
// target).
func (p *Predictor) Mispredicts() int64 { return p.misses }

// Accuracy returns the fraction of correct predictions, or 1 before any
// prediction.
func (p *Predictor) Accuracy() float64 {
	if p.predicts == 0 {
		return 1
	}
	return 1 - float64(p.misses)/float64(p.predicts)
}
