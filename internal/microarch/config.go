package microarch

import "fmt"

// Config describes the simulated machine. DefaultConfig returns the paper's
// Table 2 base processor; tests use smaller variants.
type Config struct {
	// FetchWidth is the fetch rate in instructions per cycle.
	FetchWidth int
	// DispatchWidth is the dispatch-group size (instructions renamed and
	// inserted into the window per cycle).
	DispatchWidth int
	// RetireWidth is the retirement rate in instructions per cycle (one
	// dispatch group, max 5, in the POWER4 scheme).
	RetireWidth int
	// IssueWidth is the total issue bandwidth per cycle across all units.
	IssueWidth int
	// ROBSize is the reorder-buffer capacity.
	ROBSize int
	// IntRegs and FPRegs are the physical register-file sizes.
	IntRegs, FPRegs int
	// MemQueueSize is the load/store queue capacity.
	MemQueueSize int
	// Functional-unit counts.
	IntUnits, FPUnits, LSUnits, BranchUnits, LCRUnits int
	// Integer latencies (add also covers logical ops).
	IntAddLat, IntMulLat, IntDivLat int
	// FP latencies.
	FPLat, FPDivLat int
	// FetchToDispatch is the front-end pipeline depth in cycles.
	FetchToDispatch int
	// MispredictPenalty is the extra redirect delay after a mispredicted
	// branch resolves.
	MispredictPenalty int
	// Cache geometry.
	L1I, L1D, L2 CacheConfig
	// Contentionless latencies (Table 2): L1 hit, L2 hit, main memory.
	L1Lat, L2Lat, MemLat int
	// Branch predictor geometry and scheme.
	PredictorBits int // log2 of counter table size
	BTBEntries    int
	PredictorKind PredictorKind // zero value means gshare
	// NextLinePrefetch enables a next-line data prefetcher: every L1 D
	// miss also pulls the following line into the L1 and L2. The Table 2
	// base machine ships without it (the POWER4 data prefetcher is not
	// part of the paper's model); it is provided for sensitivity studies.
	NextLinePrefetch bool
	// FrequencyGHz is the clock used to convert cycles to wall time (and
	// hence to size the 1µs activity intervals).
	FrequencyGHz float64
}

// DefaultConfig returns the base 180nm POWER4-like configuration of
// Table 2.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        8,
		DispatchWidth:     5,
		RetireWidth:       5,
		IssueWidth:        8,
		ROBSize:           150,
		IntRegs:           120,
		FPRegs:            96,
		MemQueueSize:      32,
		IntUnits:          2,
		FPUnits:           2,
		LSUnits:           2,
		BranchUnits:       1,
		LCRUnits:          1,
		IntAddLat:         1,
		IntMulLat:         7,
		IntDivLat:         35,
		FPLat:             4,
		FPDivLat:          12,
		FetchToDispatch:   5,
		MispredictPenalty: 6,
		L1I:               CacheConfig{SizeBytes: 32 << 10, LineBytes: 128, Assoc: 2},
		L1D:               CacheConfig{SizeBytes: 32 << 10, LineBytes: 128, Assoc: 2},
		L2:                CacheConfig{SizeBytes: 2 << 20, LineBytes: 128, Assoc: 8},
		L1Lat:             2,
		L2Lat:             20,
		MemLat:            102,
		PredictorBits:     14,
		BTBEntries:        2048,
		PredictorKind:     PredictorGshare,
		FrequencyGHz:      1.1,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	positive := []struct {
		name string
		v    int
	}{
		{"FetchWidth", c.FetchWidth},
		{"DispatchWidth", c.DispatchWidth},
		{"RetireWidth", c.RetireWidth},
		{"IssueWidth", c.IssueWidth},
		{"ROBSize", c.ROBSize},
		{"IntRegs", c.IntRegs},
		{"FPRegs", c.FPRegs},
		{"MemQueueSize", c.MemQueueSize},
		{"IntUnits", c.IntUnits},
		{"FPUnits", c.FPUnits},
		{"LSUnits", c.LSUnits},
		{"BranchUnits", c.BranchUnits},
		{"LCRUnits", c.LCRUnits},
		{"IntAddLat", c.IntAddLat},
		{"IntMulLat", c.IntMulLat},
		{"IntDivLat", c.IntDivLat},
		{"FPLat", c.FPLat},
		{"FPDivLat", c.FPDivLat},
		{"L1Lat", c.L1Lat},
		{"L2Lat", c.L2Lat},
		{"MemLat", c.MemLat},
		{"PredictorBits", c.PredictorBits},
		{"BTBEntries", c.BTBEntries},
	}
	for _, p := range positive {
		if p.v <= 0 {
			return fmt.Errorf("microarch: %s must be positive, got %d", p.name, p.v)
		}
	}
	if c.FetchToDispatch < 1 {
		return fmt.Errorf("microarch: FetchToDispatch must be ≥ 1, got %d", c.FetchToDispatch)
	}
	if c.MispredictPenalty < 0 {
		return fmt.Errorf("microarch: MispredictPenalty must be ≥ 0, got %d", c.MispredictPenalty)
	}
	if c.FrequencyGHz <= 0 {
		return fmt.Errorf("microarch: FrequencyGHz must be positive, got %v", c.FrequencyGHz)
	}
	// Register files must cover the architected name space with headroom
	// for in-flight renames.
	if c.IntRegs <= 32 || c.FPRegs <= 32 {
		return fmt.Errorf("microarch: register files must exceed 32 architected registers")
	}
	for _, cc := range []struct {
		name string
		cfg  CacheConfig
	}{{"L1I", c.L1I}, {"L1D", c.L1D}, {"L2", c.L2}} {
		if err := cc.cfg.Validate(); err != nil {
			return fmt.Errorf("microarch: %s: %w", cc.name, err)
		}
	}
	if !(c.L1Lat < c.L2Lat && c.L2Lat < c.MemLat) {
		return fmt.Errorf("microarch: latencies must satisfy L1 < L2 < memory")
	}
	return nil
}

// CyclesPerMicrosecond returns the number of clock cycles in one
// microsecond — the paper's power/temperature/reliability evaluation
// interval.
func (c Config) CyclesPerMicrosecond() int64 {
	return int64(c.FrequencyGHz * 1000)
}

// capacity returns each structure's per-cycle event capacity, used to
// normalise activity factors into [0, 1].
func (c Config) capacity() [NumStructures]float64 {
	var cap [NumStructures]float64
	cap[StructIFU] = float64(c.FetchWidth)
	cap[StructIDU] = float64(c.DispatchWidth)
	cap[StructISU] = float64(c.IssueWidth)
	cap[StructFXU] = float64(c.IntUnits)
	cap[StructFPU] = float64(c.FPUnits)
	cap[StructLSU] = float64(c.LSUnits)
	cap[StructBXU] = float64(c.BranchUnits + c.LCRUnits)
	return cap
}
