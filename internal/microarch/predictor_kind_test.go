package microarch

import (
	"testing"

	"github.com/ramp-sim/ramp/internal/trace"
)

func TestPredictorKindString(t *testing.T) {
	if PredictorGshare.String() != "gshare" || PredictorBimodal.String() != "bimodal" {
		t.Fatal("predictor kind names wrong")
	}
	if PredictorKind(9).String() != "predictor(9)" {
		t.Fatal("unknown kind formatting wrong")
	}
}

func TestBimodalCannotLearnAlternation(t *testing.T) {
	// A strictly alternating branch defeats a history-less predictor (the
	// 2-bit counter oscillates) but is learnable by gshare.
	train := func(p *Predictor) float64 {
		for i := 0; i < 4000; i++ {
			p.PredictAndUpdate(0x400, i%2 == 0, 0x100)
		}
		before := p.Mispredicts()
		for i := 0; i < 1000; i++ {
			p.PredictAndUpdate(0x400, i%2 == 0, 0x100)
		}
		return float64(p.Mispredicts()-before) / 1000
	}
	gshare := train(NewPredictorKind(PredictorGshare, 12, 256))
	bimodal := train(NewPredictorKind(PredictorBimodal, 12, 256))
	if gshare > 0.05 {
		t.Errorf("gshare mispredict rate on alternation = %.3f, want ≈ 0", gshare)
	}
	if bimodal < 0.4 {
		t.Errorf("bimodal mispredict rate on alternation = %.3f, want high", bimodal)
	}
}

func TestBimodalStillLearnsBias(t *testing.T) {
	p := NewPredictorKind(PredictorBimodal, 12, 256)
	for i := 0; i < 1000; i++ {
		p.PredictAndUpdate(0x88, true, 0x40)
	}
	if acc := p.Accuracy(); acc < 0.99 {
		t.Fatalf("bimodal accuracy on biased branch = %.3f", acc)
	}
}

func TestPredictorKindConfigSelectsScheme(t *testing.T) {
	// End-to-end: a patterned branch stream yields higher IPC under
	// gshare than under bimodal.
	mk := func() []trace.Instruction {
		var instrs []trace.Instruction
		const base = uint64(0x1000)
		for i := 0; i < 8000; i++ {
			instrs = append(instrs,
				trace.Instruction{PC: base, Class: trace.ClassIntALU, Dest: uint16(1 + i%8)},
			)
			taken := i%2 == 0
			br := trace.Instruction{PC: base + 4, Class: trace.ClassBranch, Taken: taken}
			if taken {
				br.Target = base
			}
			instrs = append(instrs, br)
		}
		return instrs
	}
	gcfg := DefaultConfig()
	bcfg := DefaultConfig()
	bcfg.PredictorKind = PredictorBimodal
	gres := run(t, gcfg, mk())
	bres := run(t, bcfg, mk())
	if gres.MispredictRate() >= bres.MispredictRate() {
		t.Fatalf("gshare mispredicts (%.3f) not below bimodal (%.3f)",
			gres.MispredictRate(), bres.MispredictRate())
	}
	if gres.IPC() <= bres.IPC() {
		t.Fatalf("gshare IPC %.3f not above bimodal %.3f", gres.IPC(), bres.IPC())
	}
}

func TestZeroPredictorKindDefaultsToGshare(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PredictorKind = 0
	if _, err := NewSimulator(cfg); err != nil {
		t.Fatalf("zero predictor kind must default to gshare: %v", err)
	}
}
