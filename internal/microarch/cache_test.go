package microarch

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{SizeBytes: 1024, LineBytes: 64, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []CacheConfig{
		{SizeBytes: 0, LineBytes: 64, Assoc: 2},
		{SizeBytes: 1000, LineBytes: 64, Assoc: 2},  // size not power of 2
		{SizeBytes: 1024, LineBytes: 48, Assoc: 2},  // line not power of 2
		{SizeBytes: 128, LineBytes: 64, Assoc: 4},   // fewer lines than ways
		{SizeBytes: 1024, LineBytes: 64, Assoc: 3},  // lines not divisible
		{SizeBytes: 1024, LineBytes: 64, Assoc: -1}, // negative
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}

func TestCacheSets(t *testing.T) {
	cfg := CacheConfig{SizeBytes: 32 << 10, LineBytes: 128, Assoc: 2}
	if got := cfg.Sets(); got != 128 {
		t.Fatalf("Sets = %d, want 128", got)
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeBytes: 1024, LineBytes: 64, Assoc: 2})
	if c.Access(0x100) {
		t.Fatal("first access must miss")
	}
	if !c.Access(0x100) {
		t.Fatal("second access must hit")
	}
	if !c.Access(0x13f & ^uint64(0)) && !c.Contains(0x100) {
		t.Fatal("same line must stay resident")
	}
	if c.Accesses() != 3 || c.Misses() < 1 {
		t.Fatalf("stats: accesses=%d misses=%d", c.Accesses(), c.Misses())
	}
}

func TestCacheSameLineDifferentOffsets(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeBytes: 1024, LineBytes: 64, Assoc: 2})
	c.Access(0x200)
	if !c.Access(0x23f) {
		t.Fatal("access within the same 64B line must hit")
	}
	if c.Access(0x240) {
		t.Fatal("next line must miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache with 2 sets of 64B lines: addresses 0, 128, 256 map to
	// set 0. Filling ways with 0 and 128 then touching 0 makes 128 the LRU
	// victim when 256 arrives.
	c := mustCache(t, CacheConfig{SizeBytes: 256, LineBytes: 64, Assoc: 2})
	c.Access(0)
	c.Access(128)
	c.Access(0) // refresh line 0
	c.Access(256)
	if !c.Contains(0) {
		t.Error("line 0 (MRU) must survive")
	}
	if c.Contains(128) {
		t.Error("line 128 (LRU) must be evicted")
	}
	if !c.Contains(256) {
		t.Error("line 256 must be resident")
	}
}

func TestCacheWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeBytes: 8 << 10, LineBytes: 64, Assoc: 4})
	// Touch a 4KB working set twice; the second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 4<<10; addr += 64 {
			c.Access(addr)
		}
	}
	wantMisses := int64(4 << 10 / 64)
	if c.Misses() != wantMisses {
		t.Fatalf("misses = %d, want %d (cold only)", c.Misses(), wantMisses)
	}
}

func TestCacheThrashingWorkingSet(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeBytes: 1 << 10, LineBytes: 64, Assoc: 1})
	// A working set 2× the cache size walked cyclically with a
	// direct-mapped cache misses every time.
	for pass := 0; pass < 4; pass++ {
		for addr := uint64(0); addr < 2<<10; addr += 64 {
			c.Access(addr)
		}
	}
	if c.MissRate() != 1 {
		t.Fatalf("thrashing miss rate = %v, want 1", c.MissRate())
	}
}

func TestCacheReset(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeBytes: 1024, LineBytes: 64, Assoc: 2})
	c.Access(0x40)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Fatal("Reset must clear statistics")
	}
	if c.Contains(0x40) {
		t.Fatal("Reset must invalidate lines")
	}
	if c.Access(0x40) {
		t.Fatal("post-reset access must miss")
	}
}

func TestCacheMissRateZeroBeforeAccess(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeBytes: 1024, LineBytes: 64, Assoc: 2})
	if c.MissRate() != 0 {
		t.Fatal("MissRate before any access must be 0")
	}
}

func TestCacheAccessHitImpliesContains(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeBytes: 4 << 10, LineBytes: 64, Assoc: 2})
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			addr := uint64(a)
			c.Access(addr)
			if !c.Contains(addr) {
				return false // just-accessed line must be resident
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorLearnsBiasedBranch(t *testing.T) {
	p := NewPredictor(12, 256)
	// An always-taken loop branch must become nearly perfectly predicted.
	for i := 0; i < 1000; i++ {
		p.PredictAndUpdate(0x400, true, 0x100)
	}
	if acc := p.Accuracy(); acc < 0.99 {
		t.Fatalf("always-taken accuracy = %v, want ≥ 0.99", acc)
	}
}

func TestPredictorLearnsAlternatingPatternWithHistory(t *testing.T) {
	p := NewPredictor(12, 256)
	// Alternating T/N is learnable through global history correlation.
	for i := 0; i < 4000; i++ {
		p.PredictAndUpdate(0x400, i%2 == 0, 0x100)
	}
	// Discard warm-up by measuring a fresh window.
	before := p.Mispredicts()
	for i := 0; i < 1000; i++ {
		p.PredictAndUpdate(0x400, i%2 == 0, 0x100)
	}
	window := p.Mispredicts() - before
	if window > 50 {
		t.Fatalf("alternating pattern mispredicts = %d/1000, want ≤ 50", window)
	}
}

func TestPredictorBTBMissOnNewTarget(t *testing.T) {
	p := NewPredictor(10, 64)
	// First taken encounter must be counted incorrect (target unknown)
	// even if direction guesses right.
	p.PredictAndUpdate(0x800, true, 0xff00)
	if p.Mispredicts() == 0 {
		t.Fatal("first taken branch must mispredict (BTB cold)")
	}
	before := p.Mispredicts()
	p.PredictAndUpdate(0x800, true, 0xff00)
	if p.Mispredicts() != before {
		t.Fatal("second identical taken branch must predict correctly")
	}
}

func TestPredictorAccuracyBeforeUse(t *testing.T) {
	p := NewPredictor(10, 64)
	if p.Accuracy() != 1 {
		t.Fatal("accuracy before any prediction must be 1")
	}
	if p.Predicts() != 0 {
		t.Fatal("no predictions expected")
	}
}

func TestPredictorTinyGeometry(t *testing.T) {
	// Degenerate sizes must be clamped, not panic.
	p := NewPredictor(0, 0)
	for i := 0; i < 100; i++ {
		p.PredictAndUpdate(uint64(i*4), i%3 == 0, uint64(i))
	}
	if p.Predicts() != 100 {
		t.Fatalf("predicts = %d, want 100", p.Predicts())
	}
}
