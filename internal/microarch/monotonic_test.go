package microarch_test

import (
	"testing"

	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/workload"
)

// ipcWith runs gzip's generator through a mutated machine configuration.
func ipcWith(t *testing.T, mutate func(*microarch.Config)) float64 {
	t.Helper()
	cfg := microarch.DefaultConfig()
	mutate(&cfg)
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.New(prof, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := microarch.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(gen)
	if err != nil {
		t.Fatal(err)
	}
	return res.IPC()
}

// TestMachineMonotonicities checks the directional sanity of the pipeline
// model: making a resource strictly worse must not make the machine
// faster, and vice versa. These are the invariants a structural simulator
// must keep regardless of modeling detail.
func TestMachineMonotonicities(t *testing.T) {
	if testing.Short() {
		t.Skip("monotonicity sweep is slow; skipped with -short")
	}
	base := ipcWith(t, func(c *microarch.Config) {})
	cases := []struct {
		name   string
		mutate func(*microarch.Config)
		faster bool // whether the mutation should not DECREASE IPC
	}{
		{"longer memory latency", func(c *microarch.Config) { c.MemLat = 300 }, false},
		{"longer L2 latency", func(c *microarch.Config) { c.L2Lat = 60 }, false},
		{"tiny ROB", func(c *microarch.Config) { c.ROBSize = 16 }, false},
		{"tiny memory queue", func(c *microarch.Config) { c.MemQueueSize = 4 }, false},
		{"single issue", func(c *microarch.Config) { c.IssueWidth = 1 }, false},
		{"narrow dispatch", func(c *microarch.Config) { c.DispatchWidth = 1 }, false},
		{"tiny L1D", func(c *microarch.Config) {
			c.L1D = microarch.CacheConfig{SizeBytes: 2 << 10, LineBytes: 128, Assoc: 2}
		}, false},
		{"huge mispredict penalty", func(c *microarch.Config) { c.MispredictPenalty = 60 }, false},
		{"double ROB", func(c *microarch.Config) { c.ROBSize = 300 }, true},
		{"more integer units", func(c *microarch.Config) { c.IntUnits = 4 }, true},
		{"faster memory", func(c *microarch.Config) { c.MemLat = 40 }, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got := ipcWith(t, tc.mutate)
			// 1% tolerance: secondary interactions (e.g. interval
			// boundaries) may wiggle an otherwise-neutral change.
			if tc.faster && got < base*0.99 {
				t.Errorf("improvement lowered IPC: %.3f vs base %.3f", got, base)
			}
			if !tc.faster && got > base*1.01 {
				t.Errorf("degradation raised IPC: %.3f vs base %.3f", got, base)
			}
		})
	}
}
