// Package scaling captures the technology-generation parameters of the
// paper's Table 4 and the derived quantities the power, thermal, and
// reliability models need. All scaling is expressed relative to the 180nm
// base point, matching the paper's methodology (§4.6: "All scaling is done
// with respect to 180nm, as the performance and power simulator are
// calibrated for this technology point").
package scaling

import "fmt"

// Technology is one technology generation/operating point from Table 4.
type Technology struct {
	// Name is the label used in the paper's figures, e.g. "65nm (1.0V)".
	Name string
	// FeatureNm is the drawn feature size in nanometres.
	FeatureNm int
	// VddV is the supply voltage in volts.
	VddV float64
	// FreqGHz is the clock frequency in GHz (22% growth per generation).
	FreqGHz float64
	// RelCapacitance is the switched capacitance relative to 180nm.
	RelCapacitance float64
	// RelArea is the die (and per-structure) area relative to 180nm.
	RelArea float64
	// ToxNm is the gate oxide thickness in nanometres (Table 4 lists Å).
	ToxNm float64
	// JMaxMAum2 is the maximum allowed interconnect current density in
	// mA/µm² (reduced 33% per generation until 90nm, then held).
	JMaxMAum2 float64
	// LeakW383PerMm2 is the leakage power density in W/mm² at 383K.
	LeakW383PerMm2 float64
	// WireScale is the cumulative linear interconnect scaling factor κ
	// relative to 180nm (0.7 per generation to 90nm, 0.8 to 65nm); wire
	// width and height both scale by it (paper §3, Figure 1 discussion).
	WireScale float64
}

// Validate checks the parameters for physical plausibility.
func (t Technology) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("scaling: technology needs a name")
	}
	checks := []struct {
		name string
		v    float64
	}{
		{"FeatureNm", float64(t.FeatureNm)},
		{"VddV", t.VddV},
		{"FreqGHz", t.FreqGHz},
		{"RelCapacitance", t.RelCapacitance},
		{"RelArea", t.RelArea},
		{"ToxNm", t.ToxNm},
		{"JMaxMAum2", t.JMaxMAum2},
		{"LeakW383PerMm2", t.LeakW383PerMm2},
		{"WireScale", t.WireScale},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("scaling: %s: %s must be positive", t.Name, c.name)
		}
	}
	if t.RelArea > 1.000001 || t.WireScale > 1.000001 || t.RelCapacitance > 1.000001 {
		return fmt.Errorf("scaling: %s: relative factors cannot exceed the 180nm base", t.Name)
	}
	return nil
}

// Base returns the 180nm reference technology (Tables 2 and 4).
func Base() Technology {
	return Technology{
		Name:           "180nm",
		FeatureNm:      180,
		VddV:           1.3,
		FreqGHz:        1.1,
		RelCapacitance: 1.0,
		RelArea:        1.0,
		ToxNm:          2.5,
		JMaxMAum2:      9.0,
		LeakW383PerMm2: 0.040,
		WireScale:      1.0,
	}
}

// Generations returns the five technology points of Table 4 in order:
// 180nm, 130nm, 90nm, 65nm (0.9V), 65nm (1.0V).
func Generations() []Technology {
	return []Technology{
		Base(),
		{
			Name:           "130nm",
			FeatureNm:      130,
			VddV:           1.1,
			FreqGHz:        1.35,
			RelCapacitance: 0.7,
			RelArea:        0.5,
			ToxNm:          1.7,
			JMaxMAum2:      6.0,
			LeakW383PerMm2: 0.10,
			WireScale:      0.7,
		},
		{
			Name:           "90nm",
			FeatureNm:      90,
			VddV:           1.0,
			FreqGHz:        1.65,
			RelCapacitance: 0.49,
			RelArea:        0.25,
			ToxNm:          1.2,
			JMaxMAum2:      4.0,
			LeakW383PerMm2: 0.25,
			WireScale:      0.49,
		},
		{
			Name:           "65nm (0.9V)",
			FeatureNm:      65,
			VddV:           0.9,
			FreqGHz:        2.0,
			RelCapacitance: 0.4,
			RelArea:        0.16,
			ToxNm:          0.9,
			JMaxMAum2:      4.0,
			LeakW383PerMm2: 0.54,
			WireScale:      0.392,
		},
		{
			Name:           "65nm (1.0V)",
			FeatureNm:      65,
			VddV:           1.0,
			FreqGHz:        2.0,
			RelCapacitance: 0.4,
			RelArea:        0.16,
			ToxNm:          0.9,
			JMaxMAum2:      4.0,
			LeakW383PerMm2: 0.60,
			WireScale:      0.392,
		},
	}
}

// ByName returns the named technology point.
func ByName(name string) (Technology, error) {
	for _, t := range Generations() {
		if t.Name == name {
			return t, nil
		}
	}
	return Technology{}, fmt.Errorf("scaling: unknown technology %q", name)
}

// DynamicPowerScale returns the factor by which a structure's dynamic
// power changes from the 180nm base to this technology: C_rel·(V/V₀)²·(f/f₀).
func (t Technology) DynamicPowerScale() float64 {
	base := Base()
	v := t.VddV / base.VddV
	return t.RelCapacitance * v * v * (t.FreqGHz / base.FreqGHz)
}

// ToxReductionNm returns how much thinner the gate oxide is than at 180nm.
func (t Technology) ToxReductionNm() float64 {
	return Base().ToxNm - t.ToxNm
}
