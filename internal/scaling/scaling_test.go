package scaling

import (
	"math"
	"testing"
)

func TestGenerationsMatchTable4(t *testing.T) {
	gens := Generations()
	if len(gens) != 5 {
		t.Fatalf("got %d generations, want 5", len(gens))
	}
	// Spot-check the exact Table 4 rows.
	tests := []struct {
		idx  int
		name string
		vdd  float64
		freq float64
		cap  float64
		area float64
		tox  float64
		jmax float64
		leak float64
	}{
		{0, "180nm", 1.3, 1.1, 1.0, 1.0, 2.5, 9.0, 0.040},
		{1, "130nm", 1.1, 1.35, 0.7, 0.5, 1.7, 6.0, 0.10},
		{2, "90nm", 1.0, 1.65, 0.49, 0.25, 1.2, 4.0, 0.25},
		{3, "65nm (0.9V)", 0.9, 2.0, 0.4, 0.16, 0.9, 4.0, 0.54},
		{4, "65nm (1.0V)", 1.0, 2.0, 0.4, 0.16, 0.9, 4.0, 0.60},
	}
	for _, tt := range tests {
		g := gens[tt.idx]
		if g.Name != tt.name || g.VddV != tt.vdd || g.FreqGHz != tt.freq ||
			g.RelCapacitance != tt.cap || g.RelArea != tt.area ||
			g.ToxNm != tt.tox || g.JMaxMAum2 != tt.jmax || g.LeakW383PerMm2 != tt.leak {
			t.Errorf("generation %d = %+v, want Table 4 row %+v", tt.idx, g, tt)
		}
	}
}

func TestAllGenerationsValidate(t *testing.T) {
	for _, g := range Generations() {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	g := Base()
	g.Name = ""
	if err := g.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	g = Base()
	g.VddV = 0
	if err := g.Validate(); err == nil {
		t.Error("zero voltage accepted")
	}
	g = Base()
	g.RelArea = 1.5
	if err := g.Validate(); err == nil {
		t.Error("relative area > 1 accepted")
	}
}

func TestByName(t *testing.T) {
	g, err := ByName("90nm")
	if err != nil {
		t.Fatal(err)
	}
	if g.FeatureNm != 90 {
		t.Fatalf("ByName returned %+v", g)
	}
	if _, err := ByName("45nm"); err == nil {
		t.Fatal("unknown technology accepted")
	}
}

func TestWireScaleFollowsKappaSchedule(t *testing.T) {
	// κ = 0.7 per generation to 90nm, then 0.8 (paper §4.6).
	gens := Generations()
	if math.Abs(gens[1].WireScale-0.7) > 1e-12 {
		t.Errorf("130nm wire scale = %v, want 0.7", gens[1].WireScale)
	}
	if math.Abs(gens[2].WireScale-0.49) > 1e-12 {
		t.Errorf("90nm wire scale = %v, want 0.49", gens[2].WireScale)
	}
	if math.Abs(gens[3].WireScale-0.392) > 1e-9 {
		t.Errorf("65nm wire scale = %v, want 0.392", gens[3].WireScale)
	}
}

func TestFrequencyGrowth22Percent(t *testing.T) {
	gens := Generations()
	for i := 1; i < 3; i++ {
		ratio := gens[i].FreqGHz / gens[i-1].FreqGHz
		if ratio < 1.20 || ratio > 1.25 {
			t.Errorf("%s→%s frequency growth %.3f, want ≈1.22",
				gens[i-1].Name, gens[i].Name, ratio)
		}
	}
}

func TestDynamicPowerScale(t *testing.T) {
	if got := Base().DynamicPowerScale(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("base dynamic scale = %v, want 1", got)
	}
	g, err := ByName("130nm")
	if err != nil {
		t.Fatal(err)
	}
	want := 0.7 * (1.1 / 1.3) * (1.1 / 1.3) * (1.35 / 1.1)
	if got := g.DynamicPowerScale(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("130nm dynamic scale = %v, want %v", got, want)
	}
	// Dynamic power per structure must fall monotonically through 90nm.
	gens := Generations()
	for i := 1; i < 3; i++ {
		if gens[i].DynamicPowerScale() >= gens[i-1].DynamicPowerScale() {
			t.Errorf("dynamic power scale not decreasing at %s", gens[i].Name)
		}
	}
}

func TestToxReduction(t *testing.T) {
	g, err := ByName("65nm (1.0V)")
	if err != nil {
		t.Fatal(err)
	}
	if got := g.ToxReductionNm(); math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("tox reduction = %v nm, want 1.6", got)
	}
	if got := Base().ToxReductionNm(); got != 0 {
		t.Fatalf("base tox reduction = %v, want 0", got)
	}
}

func TestPowerDensityRisesWithScaling(t *testing.T) {
	// Table 4's punchline: relative total power density rises steadily.
	// Approximate total power as dynamic-scale × base-dynamic + leakage
	// density × area; density = power/area relative to base.
	gens := Generations()
	const baseDyn = 25.9 // W, suite-average dynamic at 180nm
	density := func(g Technology) float64 {
		total := baseDyn*g.DynamicPowerScale() + g.LeakW383PerMm2*81*g.RelArea
		return total / (81 * g.RelArea)
	}
	base := density(gens[0])
	prev := 1.0
	for _, g := range gens[1:] {
		rel := density(g) / base
		if rel <= prev {
			t.Errorf("%s relative power density %.2f not above previous %.2f",
				g.Name, rel, prev)
		}
		prev = rel
	}
}
