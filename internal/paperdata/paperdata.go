// Package paperdata is the machine-readable record of the numbers
// published in Srinivasan et al., "The Impact of Technology Scaling on
// Lifetime Reliability" (DSN 2004). It is the single source for every
// paper-side value quoted by reports, regression tests, and
// EXPERIMENTS.md, so the reproduction targets live in exactly one place.
package paperdata

import "github.com/ramp-sim/ramp/internal/core"

// Table3Row is one benchmark's published operating point (Table 3).
type Table3Row struct {
	App    string
	Suite  string
	IPC    float64
	PowerW float64
}

// Table3 lists the published per-benchmark IPC and average power for the
// 180nm base processor.
func Table3() []Table3Row {
	return []Table3Row{
		{"ammp", "SpecFP", 1.06, 26.08},
		{"applu", "SpecFP", 1.17, 26.94},
		{"sixtrack", "SpecFP", 1.38, 27.32},
		{"mgrid", "SpecFP", 1.71, 27.78},
		{"mesa", "SpecFP", 1.75, 29.21},
		{"facerec", "SpecFP", 1.79, 29.60},
		{"wupwise", "SpecFP", 1.66, 30.50},
		{"apsi", "SpecFP", 1.64, 30.65},
		{"vpr", "SpecInt", 1.38, 26.93},
		{"bzip2", "SpecInt", 2.31, 27.71},
		{"twolf", "SpecInt", 1.26, 28.44},
		{"gzip", "SpecInt", 1.85, 28.69},
		{"perlbmk", "SpecInt", 2.25, 30.59},
		{"gap", "SpecInt", 1.76, 31.24},
		{"gcc", "SpecInt", 1.24, 31.73},
		{"crafty", "SpecInt", 2.25, 31.95},
	}
}

// SuiteAverages are the published Table 3 suite averages.
const (
	SpecFPAvgIPC     = 1.52
	SpecFPAvgPowerW  = 28.51
	SpecIntAvgIPC    = 1.79
	SpecIntAvgPowerW = 29.66
)

// Table4Power lists the published suite-average total power (W) per
// technology point, in generation order.
func Table4Power() []float64 { return []float64{29.1, 19.0, 14.7, 14.4, 16.9} }

// Table4RelDensity lists the published relative total power density per
// technology point, in generation order.
func Table4RelDensity() []float64 { return []float64{1.0, 1.31, 2.02, 3.09, 3.63} }

// Headline numbers (§1.3, §5).
const (
	// MaxTempRiseK: average rise of the hottest structure, 180nm →
	// 65nm (1.0V).
	MaxTempRiseK = 15.0
	// TotalIncreaseFPPct / TotalIncreaseIntPct / TotalIncreaseAvgPct:
	// total FIT increases 180nm → 65nm (1.0V).
	TotalIncreaseFPPct  = 274.0
	TotalIncreaseIntPct = 357.0
	TotalIncreaseAvgPct = 316.0
	// Total FIT increases 180nm → 65nm (0.9V).
	TotalIncrease09FPPct  = 70.0
	TotalIncrease09IntPct = 86.0
	// Worst-case gaps (§5.2), as a percentage of the compared quantity.
	WorstVsHighest180Pct = 25.0
	WorstVsHighest65Pct  = 90.0
	WorstVsAverage180Pct = 67.0
	WorstVsAverage65Pct  = 206.0
	// QualificationFITPerMechanism and QualificationTotalFIT (§4.4).
	QualificationFITPerMechanism = 1000.0
	QualificationTotalFIT        = 4000.0
	// MTTFTargetYears is the ≈30-year lifetime the qualification encodes.
	MTTFTargetYears = 30.0
)

// MechIncrease holds a mechanism's published FIT increases (percent) from
// 180nm to the two 65nm points, as FP and INT suite averages.
type MechIncrease struct {
	At09FP, At09Int float64
	At10FP, At10Int float64
}

// MechIncreases returns the §5.3 per-mechanism increases.
func MechIncreases() map[core.Mechanism]MechIncrease {
	return map[core.Mechanism]MechIncrease{
		core.EM:   {At09FP: 97, At09Int: 128, At10FP: 303, At10Int: 447},
		core.SM:   {At09FP: 43, At09Int: 52, At10FP: 76, At10Int: 106},
		core.TDDB: {At09FP: 106, At09Int: 127, At10FP: 667, At10Int: 812},
		core.TC:   {At09FP: 32, At09Int: 36, At10FP: 52, At10Int: 66},
	}
}

// FITRange holds the published application-FIT spreads (§5.2).
type FITRange struct {
	// Spread is max−min application FIT.
	Spread float64
	// PctOfAvg expresses the spread as a percentage of the suite average.
	PctOfAvg float64
}

// FITRanges returns the published spreads at 180nm, 65nm (0.9V), and
// 65nm (1.0V).
func FITRanges() [3]FITRange {
	return [3]FITRange{
		{Spread: 2479, PctOfAvg: 62},
		{Spread: 5095, PctOfAvg: 72},
		{Spread: 17272, PctOfAvg: 104},
	}
}
