package paperdata

import (
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/workload"
)

func TestTable3ConsistentWithWorkloadProfiles(t *testing.T) {
	// The workload package embeds the same Table 3 targets; the two
	// records must agree exactly.
	rows := Table3()
	if len(rows) != 16 {
		t.Fatalf("Table 3 has %d rows, want 16", len(rows))
	}
	for _, row := range rows {
		prof, err := workload.ByName(row.App)
		if err != nil {
			t.Fatal(err)
		}
		if prof.TargetIPC != row.IPC {
			t.Errorf("%s: IPC %v vs profile %v", row.App, row.IPC, prof.TargetIPC)
		}
		if prof.TargetPowerW != row.PowerW {
			t.Errorf("%s: power %v vs profile %v", row.App, row.PowerW, prof.TargetPowerW)
		}
		if prof.Suite.String() != row.Suite {
			t.Errorf("%s: suite %v vs profile %v", row.App, row.Suite, prof.Suite)
		}
	}
}

func TestSuiteAveragesMatchRows(t *testing.T) {
	var fpIPC, fpW, intIPC, intW float64
	for _, r := range Table3() {
		if r.Suite == "SpecFP" {
			fpIPC += r.IPC / 8
			fpW += r.PowerW / 8
		} else {
			intIPC += r.IPC / 8
			intW += r.PowerW / 8
		}
	}
	// The paper's printed averages round to two decimals.
	if math.Abs(fpIPC-SpecFPAvgIPC) > 0.005 || math.Abs(fpW-SpecFPAvgPowerW) > 0.005 {
		t.Errorf("SpecFP averages %.3f/%.3f vs published %.2f/%.2f",
			fpIPC, fpW, SpecFPAvgIPC, SpecFPAvgPowerW)
	}
	if math.Abs(intIPC-SpecIntAvgIPC) > 0.005 || math.Abs(intW-SpecIntAvgPowerW) > 0.005 {
		t.Errorf("SpecInt averages %.3f/%.3f vs published %.2f/%.2f",
			intIPC, intW, SpecIntAvgIPC, SpecIntAvgPowerW)
	}
}

func TestTable4VectorsMatchGenerations(t *testing.T) {
	if len(Table4Power()) != len(scaling.Generations()) {
		t.Fatal("Table 4 power vector length mismatch")
	}
	if len(Table4RelDensity()) != len(scaling.Generations()) {
		t.Fatal("Table 4 density vector length mismatch")
	}
	// Density rises monotonically in the published data.
	prev := 0.0
	for _, d := range Table4RelDensity() {
		if d <= prev {
			t.Fatal("published density not monotone")
		}
		prev = d
	}
}

func TestMechIncreasesCoverAllMechanisms(t *testing.T) {
	inc := MechIncreases()
	for _, m := range core.Mechanisms() {
		v, ok := inc[m]
		if !ok {
			t.Fatalf("no published increases for %v", m)
		}
		if v.At10FP <= v.At09FP || v.At10Int <= v.At09Int {
			t.Errorf("%v: 1.0V increases must exceed 0.9V increases: %+v", m, v)
		}
	}
	// TDDB is the steepest at 65nm (1.0V) in the published data.
	if inc[core.TDDB].At10Int <= inc[core.EM].At10Int {
		t.Error("published data has TDDB above EM at 65nm (1.0V)")
	}
}

func TestQualificationArithmetic(t *testing.T) {
	if QualificationFITPerMechanism*float64(core.NumMechanisms) != QualificationTotalFIT {
		t.Fatal("qualification totals inconsistent")
	}
	// 4000 FIT ↔ ~28.5 years; the paper rounds to "around 30 years".
	years := 1e9 / QualificationTotalFIT / (24 * 365.25)
	if math.Abs(years-MTTFTargetYears) > 2 {
		t.Fatalf("4000 FIT ↔ %.1f years, inconsistent with the 30-year target", years)
	}
}

func TestFITRangesOrdered(t *testing.T) {
	r := FITRanges()
	if !(r[0].Spread < r[1].Spread && r[1].Spread < r[2].Spread) {
		t.Fatal("published FIT spreads must widen with scaling")
	}
}
