package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ramp-sim/ramp/internal/floorplan"
	"github.com/ramp-sim/ramp/internal/scaling"
)

func sampleMean(t *testing.T, d Distribution, mean float64, n int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var sum float64
	for i := 0; i < n; i++ {
		x := d.Sample(rng, mean)
		if x < 0 || math.IsNaN(x) {
			t.Fatalf("%s produced invalid lifetime %v", d.Name(), x)
		}
		sum += x
	}
	return sum / float64(n)
}

func TestDistributionsHaveRequestedMean(t *testing.T) {
	dists := []Distribution{
		Exponential{},
		Weibull{Shape: 1.0},
		Weibull{Shape: 2.0},
		Weibull{Shape: 3.5},
		Lognormal{Sigma: 0.3},
		Lognormal{Sigma: 0.7},
	}
	const mean = 250_000.0 // hours, ≈ 28.5 years
	for _, d := range dists {
		got := sampleMean(t, d, mean, 200_000)
		if math.Abs(got/mean-1) > 0.02 {
			t.Errorf("%s sample mean %v, want %v ± 2%%", d.Name(), got, mean)
		}
	}
}

func TestWeibullShape1MatchesExponential(t *testing.T) {
	// β = 1 Weibull IS the exponential; compare variances via second
	// moments of samples.
	const mean = 100.0
	rng := rand.New(rand.NewSource(3))
	var sumsq float64
	const n = 200_000
	w := Weibull{Shape: 1}
	for i := 0; i < n; i++ {
		x := w.Sample(rng, mean)
		sumsq += x * x
	}
	// Exponential second moment = 2·mean².
	if got := sumsq / n; math.Abs(got/(2*mean*mean)-1) > 0.05 {
		t.Fatalf("Weibull(1) second moment %v, want %v", got, 2*mean*mean)
	}
}

func TestWearOutHasLowerSpreadThanExponential(t *testing.T) {
	// A wear-out distribution (β > 1) concentrates lifetimes around the
	// mean: its coefficient of variation is below the exponential's 1.
	rng := rand.New(rand.NewSource(5))
	cv := func(d Distribution) float64 {
		const n = 100_000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			x := d.Sample(rng, 100)
			sum += x
			sumsq += x * x
		}
		m := sum / n
		return math.Sqrt(sumsq/n-m*m) / m
	}
	if w, e := cv(Weibull{Shape: 2.35}), cv(Exponential{}); w >= e {
		t.Fatalf("wear-out CV %v not below exponential CV %v", w, e)
	}
}

func TestDistributionNames(t *testing.T) {
	if (Exponential{}).Name() != "exponential" {
		t.Error("exponential name wrong")
	}
	if (Weibull{Shape: 2}).Name() != "weibull(β=2)" {
		t.Errorf("weibull name = %s", Weibull{Shape: 2}.Name())
	}
	if (Lognormal{Sigma: 0.5}).Name() != "lognormal(σ=0.5)" {
		t.Errorf("lognormal name = %s", Lognormal{Sigma: 0.5}.Name())
	}
}

func TestLifetimeModelValidate(t *testing.T) {
	if err := SOFRLifetimes().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := WearOutLifetimes().Validate(); err != nil {
		t.Fatal(err)
	}
	var empty LifetimeModel
	if err := empty.Validate(); err == nil {
		t.Fatal("empty model accepted")
	}
}

// calibratedTestBreakdown builds a realistic ~4000-FIT breakdown.
func calibratedTestBreakdown(t *testing.T) Breakdown {
	t.Helper()
	e, err := NewEvaluator(DefaultParams(), ReferenceConstants(), scaling.Base(),
		floorplan.POWER4().Areas())
	if err != nil {
		t.Fatal(err)
	}
	af := [7]float64{0.15, 0.24, 0.15, 0.23, 0.13, 0.19, 0.06}
	var temps [7]float64
	for i := range temps {
		temps[i] = 350 + float64(i)
	}
	return e.Instant(af, temps, 1.3, 349)
}

func TestMonteCarloExponentialMatchesSOFR(t *testing.T) {
	// With exponential marginals, min of exponentials is exponential with
	// the summed rate — the Monte Carlo mean must converge to the SOFR
	// analytic MTTF.
	b := calibratedTestBreakdown(t)
	est, err := MonteCarloLifetime(b, SOFRLifetimes(), 100_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.MTTFYears/est.SOFRYears-1) > 0.02 {
		t.Fatalf("exponential MC MTTF %v years vs SOFR %v, want ≤ 2%% apart",
			est.MTTFYears, est.SOFRYears)
	}
	// Exponential: median = ln2 · mean.
	if math.Abs(est.MedianYears/(est.MTTFYears*math.Ln2)-1) > 0.05 {
		t.Errorf("exponential median %v, want ln2·mean %v",
			est.MedianYears, est.MTTFYears*math.Ln2)
	}
}

func TestMonteCarloWearOutExceedsSOFR(t *testing.T) {
	// The paper's point about the SOFR assumption: wear-out mechanisms
	// have low early-life hazard, so the true expected lifetime of the
	// series system exceeds the constant-rate estimate.
	b := calibratedTestBreakdown(t)
	est, err := MonteCarloLifetime(b, WearOutLifetimes(), 50_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if est.MTTFYears <= est.SOFRYears {
		t.Fatalf("wear-out MC MTTF %v years not above SOFR %v",
			est.MTTFYears, est.SOFRYears)
	}
	// And the spread is tighter: the 5th percentile sits further from 0
	// relative to the mean than the exponential's (which is ~5%).
	if est.P5Years/est.MTTFYears < 0.10 {
		t.Errorf("wear-out P5/mean = %v, expected well above the exponential's 0.05",
			est.P5Years/est.MTTFYears)
	}
	if !(est.P5Years < est.MedianYears && est.MedianYears < est.P95Years) {
		t.Errorf("quantiles not ordered: %v %v %v", est.P5Years, est.MedianYears, est.P95Years)
	}
}

func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	b := calibratedTestBreakdown(t)
	a1, err := MonteCarloLifetime(b, WearOutLifetimes(), 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := MonteCarloLifetime(b, WearOutLifetimes(), 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("same seed must reproduce the estimate exactly")
	}
	a3, err := MonteCarloLifetime(b, WearOutLifetimes(), 2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a1.MTTFYears == a3.MTTFYears {
		t.Fatal("different seeds should differ")
	}
}

func TestMonteCarloRejections(t *testing.T) {
	b := calibratedTestBreakdown(t)
	if _, err := MonteCarloLifetime(b, LifetimeModel{}, 100, 1); err == nil {
		t.Error("empty lifetime model accepted")
	}
	if _, err := MonteCarloLifetime(b, SOFRLifetimes(), 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	var zero Breakdown
	if _, err := MonteCarloLifetime(zero, SOFRLifetimes(), 100, 1); err == nil {
		t.Error("all-zero breakdown accepted")
	}
}

func TestMonteCarloScalesInverselyWithFIT(t *testing.T) {
	// Doubling every rate should roughly halve the MC lifetime.
	b := calibratedTestBreakdown(t)
	double := b.scale(2)
	e1, err := MonteCarloLifetime(b, SOFRLifetimes(), 40_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := MonteCarloLifetime(double, SOFRLifetimes(), 40_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e2.MTTFYears*2/e1.MTTFYears-1) > 0.05 {
		t.Fatalf("doubled-rate lifetime %v not half of %v", e2.MTTFYears, e1.MTTFYears)
	}
}

func TestDistributionSamplesAlwaysPositive(t *testing.T) {
	f := func(seed int64, meanRaw float64) bool {
		mean := math.Abs(meanRaw)
		if mean == 0 || math.IsInf(mean, 0) || math.IsNaN(mean) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		for _, d := range []Distribution{Exponential{}, Weibull{Shape: 2}, Lognormal{Sigma: 0.5}} {
			x := d.Sample(rng, mean)
			if x < 0 || math.IsNaN(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
