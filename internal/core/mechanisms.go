// Package core implements RAMP — the microarchitecture-level lifetime
// reliability model of Srinivasan et al. — extended with the technology
// scaling parameters this paper introduces. It models the four intrinsic
// hard-failure mechanisms (§2):
//
//   - Electromigration (EM):      MTTF ∝ J^{-n}·e^{Ea/kT}
//   - Stress migration (SM):      MTTF ∝ |T₀−T|^{-m}·e^{Ea/kT}
//   - Gate-oxide breakdown (TDDB): MTTF ∝ (1/V)^{a−bT}·e^{(X+Y/T+ZT)/kT}
//   - Thermal cycling (TC):       MTTF ∝ (1/(T_avg−T_ambient))^{q}
//
// combined with the sum-of-failure-rates (SOFR) model over all structures,
// and the paper's scaling extensions (§3): the κ² interconnect-geometry
// factor and J_max derating for EM, and the gate-oxide thickness, area,
// and supply-voltage factors for TDDB (Eq. 5).
//
// Rates are expressed as FITs (failures per 10⁹ device-hours) up to the
// per-mechanism proportionality constants, which are obtained by the
// paper's reliability-qualification calibration (§4.4): each mechanism's
// suite-average FIT at the 180nm base point is set to 1000, for a 4000-FIT
// (≈30-year MTTF) processor.
package core

import (
	"fmt"
	"math"

	"github.com/ramp-sim/ramp/internal/cycles"
	"github.com/ramp-sim/ramp/internal/phys"
	"github.com/ramp-sim/ramp/internal/scaling"
)

// Mechanism identifies one intrinsic failure mechanism.
type Mechanism int

// The four modeled mechanisms.
const (
	EM Mechanism = iota
	SM
	TDDB
	TC

	// NumMechanisms is the number of modeled failure mechanisms.
	NumMechanisms int = iota
)

var _mechanismNames = [NumMechanisms]string{"EM", "SM", "TDDB", "TC"}

// String returns the mechanism's acronym as used in the paper.
func (m Mechanism) String() string {
	if m < 0 || int(m) >= NumMechanisms {
		return fmt.Sprintf("mechanism(%d)", int(m))
	}
	return _mechanismNames[m]
}

// Mechanisms returns all mechanisms in paper order.
func Mechanisms() []Mechanism {
	return []Mechanism{EM, SM, TDDB, TC}
}

// EMParams holds the electromigration model constants.
type EMParams struct {
	// N is the current-density exponent (1.1 for copper, §2).
	N float64
	// ActivationEnergyEV is Ea_EM in eV (0.9 for copper).
	ActivationEnergyEV float64
	// GeomExponent is the exponent applied to the cumulative wire scaling
	// factor κ: MTTF scales by κ^GeomExponent (2 in the paper's §3
	// derivation — w and h both scale while the interface thickness δ
	// does not).
	GeomExponent float64
}

// SMParams holds the stress-migration model constants.
type SMParams struct {
	// M is the stress exponent (2.5 for sputtered copper).
	M float64
	// ActivationEnergyEV is Ea_SM in eV (0.9).
	ActivationEnergyEV float64
	// T0K is the stress-free (deposition) temperature (500K, sputtering).
	T0K float64
}

// TDDBParams holds the gate-oxide breakdown constants from Wu et al. [17]
// plus this paper's scaling extension parameters.
type TDDBParams struct {
	// A, B are the voltage-acceleration fitting parameters: the voltage
	// exponent is (A − B·T). The paper lists a=78, b=−0.081/K.
	A, B float64
	// XEV, YEVK, ZEVPerK are the temperature fitting parameters X (eV),
	// Y (eV·K), and Z (eV/K).
	XEV, YEVK, ZEVPerK float64
	// ToxDecadeNm is the gate-oxide thinning (nm) that costs one decade of
	// lifetime in the scaling relation MTTF ∝ 10^{-Δtox/ToxDecadeNm}.
	// The paper quotes 0.22nm/decade from Stathis [10]; applied literally
	// together with the printed voltage term this collapses TDDB lifetime
	// by >10⁵ by 65nm, contradicting the paper's own Figure 5, so the
	// default is an effective value calibrated to reproduce the paper's
	// reported TDDB trajectory (see DESIGN.md).
	ToxDecadeNm float64
	// VoltExponent is the effective cross-technology voltage-acceleration
	// exponent used in the Eq. 5 scaling factor (see DESIGN.md: the
	// printed (a−bT) ≈ 108 cannot reproduce the paper's reported 65nm
	// FIT ratios; ≈9 can). The printed exponent is retained for
	// within-technology voltage excursions (DVS).
	VoltExponent float64
	// AreaExponent is the exponent on the relative gate-oxide area in the
	// Eq. 5 scaling factor: FIT × RelArea^AreaExponent. The paper's
	// printed Eq. 5 corresponds to −1 (total FIT grows as area shrinks).
	AreaExponent float64
}

// TCParams holds the thermal-cycling (Coffin-Manson) constants.
type TCParams struct {
	// Q is the Coffin-Manson exponent (2.35 for the package).
	Q float64
	// AmbientK is the ambient temperature against which the average large
	// thermal cycle is measured.
	AmbientK float64
}

// NBTIParams holds the negative-bias temperature instability constants:
// the RAMP-style four-constant temperature term with a time-slope
// exponent, plus an oxide-field acceleration and an activity-recovery
// weight. NBTI postdates the paper (§2 models only EM/SM/TDDB/TC); the
// model is selectable through the mechanism registry.
type NBTIParams struct {
	// A, B, C, D are the fitting constants of the RAMP NBTI temperature
	// term MTTF ∝ [(ln(A/(1+2e^{B/kT})) − ln(A/(1+2e^{B/kT}) − C)) ·
	// T/e^{D/kT}]^{1/β}.
	A, B, C, D float64
	// Beta is the time-slope exponent β of the degradation power law.
	Beta float64
	// FieldExponent is the oxide-field acceleration exponent: rate scales
	// by ((V/tox)/(V_base/tox_base))^FieldExponent across technologies —
	// thinner oxides at comparable voltage stress the PMOS gate harder.
	FieldExponent float64
	// RecoveryWeight weights dynamic-recovery relief: the stress duty
	// factor is 1 − RecoveryWeight·AF (NBTI stresses a PMOS while its
	// gate is low; switching activity interleaves recovery phases).
	RecoveryWeight float64
}

// DefaultNBTIParams returns the RAMP-project NBTI fitting constants with
// a γ=6 field acceleration.
func DefaultNBTIParams() NBTIParams {
	return NBTIParams{
		A: 1.6328, B: 0.07377, C: 0.01, D: -0.06852,
		Beta:           0.3,
		FieldExponent:  6,
		RecoveryWeight: 0.5,
	}
}

// HCIParams holds the hot-carrier injection constants.
type HCIParams struct {
	// ActivationEnergyEV is the apparent activation energy; classic HCI
	// is worse at low temperature (impact ionisation), so the default is
	// negative.
	ActivationEnergyEV float64
	// FieldExponent is the lateral-field acceleration exponent: rate
	// scales by ((V/L)/(V_base/L_base))^FieldExponent across technologies
	// — channel length shrinks faster than supply voltage, so hot-carrier
	// stress grows with scaling.
	FieldExponent float64
}

// DefaultHCIParams returns the hot-carrier defaults.
func DefaultHCIParams() HCIParams {
	return HCIParams{ActivationEnergyEV: -0.15, FieldExponent: 3}
}

// TCRainflowParams holds the rainflow-counted thermal-cycling constants:
// Coffin-Manson with an Arrhenius term per counted cycle, after the SDTA
// Lifetime model — Ntc = Atc·(ΔT)^(−q)·e^{Eatc/(k·Tmax)} cycles to
// failure (Atc is absorbed by the qualification calibration).
type TCRainflowParams struct {
	// Q is the Coffin-Manson exponent; 6–9 for brittle fracture (the
	// paper's package TC model uses 2.35 for ductile solder).
	Q float64
	// ActivationEnergyEV is the Arrhenius activation energy Eatc
	// (typically 0.3–1.5 eV).
	ActivationEnergyEV float64
	// MinRangeK is the peak-detection threshold: cycles with a smaller
	// swing are ignored. The default is 0 — count everything — because
	// the §4.4 qualification rescales the mechanism to the FIT budget, so
	// sub-Kelvin die-average swings (all a steady workload produces) must
	// still register damage; raise it (SDTA uses 2K) to ablate
	// elastic-only cycles away.
	MinRangeK float64
}

// DefaultTCRainflowParams returns the SDTA-flavoured exponents with no
// cycle-range floor (see MinRangeK).
func DefaultTCRainflowParams() TCRainflowParams {
	return TCRainflowParams{Q: 6, ActivationEnergyEV: 0.7}
}

// Params bundles all mechanism constants. The paper's four are value
// fields; constants of registry mechanisms outside the default set are
// optional pointers with omitempty so a configuration that never names
// them marshals — and therefore content-addresses — byte-identically to
// releases that predate them. Use the *OrDefault accessors to read them.
type Params struct {
	EM   EMParams
	SM   SMParams
	TDDB TDDBParams
	TC   TCParams

	NBTI       *NBTIParams       `json:"NBTI,omitempty"`
	HCI        *HCIParams        `json:"HCI,omitempty"`
	TCRainflow *TCRainflowParams `json:"TCRainflow,omitempty"`
}

// NBTIOrDefault returns the NBTI constants, falling back to the defaults
// when the optional override is absent.
func (p Params) NBTIOrDefault() NBTIParams {
	if p.NBTI != nil {
		return *p.NBTI
	}
	return DefaultNBTIParams()
}

// HCIOrDefault returns the HCI constants or their defaults.
func (p Params) HCIOrDefault() HCIParams {
	if p.HCI != nil {
		return *p.HCI
	}
	return DefaultHCIParams()
}

// TCRainflowOrDefault returns the rainflow-TC constants or their defaults.
func (p Params) TCRainflowOrDefault() TCRainflowParams {
	if p.TCRainflow != nil {
		return *p.TCRainflow
	}
	return DefaultTCRainflowParams()
}

// DefaultParams returns the RAMP constants used throughout the paper.
func DefaultParams() Params {
	return Params{
		EM: EMParams{
			N:                  1.1,
			ActivationEnergyEV: 0.9,
			// The paper's §3 derivation gives κ²; an effective 1.7
			// reproduces the paper's reported EM trajectory (Fig. 5)
			// together with this model's simulated temperatures
			// (see EXPERIMENTS.md).
			GeomExponent: 1.7,
		},
		SM: SMParams{
			M:                  2.5,
			ActivationEnergyEV: 0.9,
			T0K:                500,
		},
		TDDB: TDDBParams{
			A:            78,
			B:            -0.081,
			XEV:          0.759,
			YEVK:         -66.8,
			ZEVPerK:      -8.37e-4,
			ToxDecadeNm:  1.45,
			VoltExponent: 10.5,
			AreaExponent: -1,
		},
		TC: TCParams{
			Q:        2.35,
			AmbientK: phys.CelsiusToKelvin(45),
		},
	}
}

// Validate checks the constants for plausibility.
func (p Params) Validate() error {
	if p.EM.N <= 0 || p.EM.ActivationEnergyEV <= 0 || p.EM.GeomExponent < 0 {
		return fmt.Errorf("core: invalid EM params %+v", p.EM)
	}
	if p.SM.M <= 0 || p.SM.ActivationEnergyEV <= 0 || p.SM.T0K <= 0 {
		return fmt.Errorf("core: invalid SM params %+v", p.SM)
	}
	if p.TDDB.A <= 0 || p.TDDB.XEV == 0 || p.TDDB.ToxDecadeNm <= 0 || p.TDDB.VoltExponent < 0 {
		return fmt.Errorf("core: invalid TDDB params %+v", p.TDDB)
	}
	if p.TC.Q <= 0 || p.TC.AmbientK <= 0 {
		return fmt.Errorf("core: invalid TC params %+v", p.TC)
	}
	if n := p.NBTI; n != nil {
		if n.A <= 0 || n.Beta <= 0 || n.FieldExponent < 0 ||
			n.RecoveryWeight < 0 || n.RecoveryWeight > 1 {
			return fmt.Errorf("core: invalid NBTI params %+v", *n)
		}
	}
	if h := p.HCI; h != nil {
		if h.FieldExponent < 0 || math.IsNaN(h.ActivationEnergyEV) {
			return fmt.Errorf("core: invalid HCI params %+v", *h)
		}
	}
	if r := p.TCRainflow; r != nil {
		if r.Q <= 0 || r.MinRangeK < 0 || math.IsNaN(r.ActivationEnergyEV) {
			return fmt.Errorf("core: invalid TCRainflow params %+v", *r)
		}
	}
	return nil
}

// EMRate returns the electromigration failure rate (up to the calibration
// constant) of a structure with activity factor af at temperature tK on
// technology tech: FIT ∝ (p·J_max)^n · e^{−Ea/kT} · κ^{−GeomExponent}.
func (p Params) EMRate(af, tK float64, tech scaling.Technology) float64 {
	if af < 0 {
		af = 0
	}
	j := af * tech.JMaxMAum2
	if j == 0 || tK <= 0 {
		return 0
	}
	geom := math.Pow(tech.WireScale, -p.EM.GeomExponent)
	return math.Pow(j, p.EM.N) *
		math.Exp(-p.EM.ActivationEnergyEV/(phys.BoltzmannEV*tK)) *
		geom
}

// SMRate returns the stress-migration failure rate (up to calibration) at
// temperature tK: FIT ∝ |T₀−T|^{m} · e^{−Ea/kT}.
func (p Params) SMRate(tK float64) float64 {
	if tK <= 0 {
		return 0
	}
	dT := math.Abs(p.SM.T0K - tK)
	return math.Pow(dT, p.SM.M) *
		math.Exp(-p.SM.ActivationEnergyEV/(phys.BoltzmannEV*tK))
}

// tddbTempTerm returns e^{−(X + Y/T + Z·T)/kT}, the FIT-side temperature
// acceleration of Eq. 3.
func (p Params) tddbTempTerm(tK float64) float64 {
	g := (p.TDDB.XEV + p.TDDB.YEVK/tK + p.TDDB.ZEVPerK*tK) / (phys.BoltzmannEV * tK)
	return math.Exp(-g)
}

// TDDBTechFactor returns the Eq. 5 technology-scaling multiplier on TDDB
// FIT relative to the 180nm base: the gate-oxide thinning decade factor,
// the effective cross-technology voltage factor, and the oxide-area
// factor. Temperature enters separately through TDDBRate.
func (p Params) TDDBTechFactor(tech scaling.Technology) float64 {
	base := scaling.Base()
	tox := math.Pow(10, tech.ToxReductionNm()/p.TDDB.ToxDecadeNm)
	volt := math.Pow(tech.VddV/base.VddV, p.TDDB.VoltExponent)
	area := math.Pow(tech.RelArea, p.TDDB.AreaExponent)
	return tox * volt * area
}

// TDDBRate returns the gate-oxide breakdown failure rate (up to
// calibration) at temperature tK and supply voltage vddV on technology
// tech. Within-technology voltage excursions (e.g. DVS) are accelerated by
// the printed Wu et al. exponent (V/Vnom)^{a−bT}; cross-technology scaling
// uses TDDBTechFactor.
func (p Params) TDDBRate(vddV, tK float64, tech scaling.Technology) float64 {
	if tK <= 0 || vddV <= 0 {
		return 0
	}
	exponent := p.TDDB.A - p.TDDB.B*tK
	dvs := math.Pow(vddV/tech.VddV, exponent)
	return dvs * p.tddbTempTerm(tK) * p.TDDBTechFactor(tech)
}

// TCRate returns the package thermal-cycling failure rate (up to
// calibration) for an average die temperature dieAvgK:
// FIT ∝ (T_avg − T_ambient)^{q}.
func (p Params) TCRate(dieAvgK float64) float64 {
	dT := dieAvgK - p.TC.AmbientK
	if dT <= 0 {
		return 0
	}
	return math.Pow(dT, p.TC.Q)
}

// NBTIRate returns the negative-bias temperature instability failure rate
// (up to calibration) of a structure at temperature tK and supply vddV on
// technology tech: the inverse of the RAMP NBTI MTTF term, accelerated by
// the oxide field relative to the 180nm base and relieved by dynamic
// recovery in proportion to the activity factor.
func (p Params) NBTIRate(af, tK, vddV float64, tech scaling.Technology) float64 {
	if tK <= 0 || vddV <= 0 {
		return 0
	}
	np := p.NBTIOrDefault()
	kT := phys.BoltzmannEV * tK
	inner := np.A / (1 + 2*math.Exp(np.B/kT))
	if inner <= np.C {
		return 0 // below the fit's validity range (sub-200K)
	}
	term := (math.Log(inner) - math.Log(inner-np.C)) * (tK / math.Exp(np.D/kT))
	if term <= 0 {
		return 0
	}
	rate := math.Pow(term, -1/np.Beta)
	base := scaling.Base()
	field := (vddV / tech.ToxNm) / (base.VddV / base.ToxNm)
	rate *= math.Pow(field, np.FieldExponent)
	if af < 0 {
		af = 0
	} else if af > 1 {
		af = 1
	}
	return rate * (1 - np.RecoveryWeight*af)
}

// HCIRate returns the hot-carrier injection failure rate (up to
// calibration) of a structure with activity factor af at temperature tK
// and supply vddV on technology tech: switching-driven (∝ af), with
// lateral-field acceleration relative to the 180nm base and an Arrhenius
// term whose default activation energy is negative (HCI is classically
// worse at low temperature).
func (p Params) HCIRate(af, tK, vddV float64, tech scaling.Technology) float64 {
	if tK <= 0 || vddV <= 0 || af <= 0 {
		return 0
	}
	hp := p.HCIOrDefault()
	base := scaling.Base()
	field := (vddV / float64(tech.FeatureNm)) / (base.VddV / float64(base.FeatureNm))
	return af * math.Pow(field, hp.FieldExponent) *
		math.Exp(-hp.ActivationEnergyEV/(phys.BoltzmannEV*tK))
}

// TCRainflowRate returns the rainflow-counted thermal-cycling failure
// rate (up to calibration) over a whole thermal series: rainflow cycle
// counting (ASTM E1049, internal/cycles) over the die-average temperature
// trace, each counted cycle contributing Coffin-Manson-with-Arrhenius
// damage 1/Ntc, Ntc = Atc·(ΔT)^{−q}·e^{Eatc/(k·Tmax)} — per second of
// simulated time. The rate is constant over the run by construction, so
// its time average is exact.
func (p Params) TCRainflowRate(dieAvgTempK, durUS []float64) float64 {
	rp := p.TCRainflowOrDefault()
	var durS float64
	for _, d := range durUS {
		durS += d
	}
	durS *= 1e-6
	if durS <= 0 {
		return 0
	}
	var damage float64
	for _, c := range cycles.Rainflow(dieAvgTempK) {
		if c.RangeK < rp.MinRangeK {
			continue
		}
		tmax := c.MeanK + c.RangeK/2
		if tmax <= 0 {
			continue
		}
		damage += c.Count * math.Pow(c.RangeK, rp.Q) *
			math.Exp(-rp.ActivationEnergyEV/(phys.BoltzmannEV*tmax))
	}
	return damage / durS
}
