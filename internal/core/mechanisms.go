// Package core implements RAMP — the microarchitecture-level lifetime
// reliability model of Srinivasan et al. — extended with the technology
// scaling parameters this paper introduces. It models the four intrinsic
// hard-failure mechanisms (§2):
//
//   - Electromigration (EM):      MTTF ∝ J^{-n}·e^{Ea/kT}
//   - Stress migration (SM):      MTTF ∝ |T₀−T|^{-m}·e^{Ea/kT}
//   - Gate-oxide breakdown (TDDB): MTTF ∝ (1/V)^{a−bT}·e^{(X+Y/T+ZT)/kT}
//   - Thermal cycling (TC):       MTTF ∝ (1/(T_avg−T_ambient))^{q}
//
// combined with the sum-of-failure-rates (SOFR) model over all structures,
// and the paper's scaling extensions (§3): the κ² interconnect-geometry
// factor and J_max derating for EM, and the gate-oxide thickness, area,
// and supply-voltage factors for TDDB (Eq. 5).
//
// Rates are expressed as FITs (failures per 10⁹ device-hours) up to the
// per-mechanism proportionality constants, which are obtained by the
// paper's reliability-qualification calibration (§4.4): each mechanism's
// suite-average FIT at the 180nm base point is set to 1000, for a 4000-FIT
// (≈30-year MTTF) processor.
package core

import (
	"fmt"
	"math"

	"github.com/ramp-sim/ramp/internal/phys"
	"github.com/ramp-sim/ramp/internal/scaling"
)

// Mechanism identifies one intrinsic failure mechanism.
type Mechanism int

// The four modeled mechanisms.
const (
	EM Mechanism = iota
	SM
	TDDB
	TC

	// NumMechanisms is the number of modeled failure mechanisms.
	NumMechanisms int = iota
)

var _mechanismNames = [NumMechanisms]string{"EM", "SM", "TDDB", "TC"}

// String returns the mechanism's acronym as used in the paper.
func (m Mechanism) String() string {
	if m < 0 || int(m) >= NumMechanisms {
		return fmt.Sprintf("mechanism(%d)", int(m))
	}
	return _mechanismNames[m]
}

// Mechanisms returns all mechanisms in paper order.
func Mechanisms() []Mechanism {
	return []Mechanism{EM, SM, TDDB, TC}
}

// EMParams holds the electromigration model constants.
type EMParams struct {
	// N is the current-density exponent (1.1 for copper, §2).
	N float64
	// ActivationEnergyEV is Ea_EM in eV (0.9 for copper).
	ActivationEnergyEV float64
	// GeomExponent is the exponent applied to the cumulative wire scaling
	// factor κ: MTTF scales by κ^GeomExponent (2 in the paper's §3
	// derivation — w and h both scale while the interface thickness δ
	// does not).
	GeomExponent float64
}

// SMParams holds the stress-migration model constants.
type SMParams struct {
	// M is the stress exponent (2.5 for sputtered copper).
	M float64
	// ActivationEnergyEV is Ea_SM in eV (0.9).
	ActivationEnergyEV float64
	// T0K is the stress-free (deposition) temperature (500K, sputtering).
	T0K float64
}

// TDDBParams holds the gate-oxide breakdown constants from Wu et al. [17]
// plus this paper's scaling extension parameters.
type TDDBParams struct {
	// A, B are the voltage-acceleration fitting parameters: the voltage
	// exponent is (A − B·T). The paper lists a=78, b=−0.081/K.
	A, B float64
	// XEV, YEVK, ZEVPerK are the temperature fitting parameters X (eV),
	// Y (eV·K), and Z (eV/K).
	XEV, YEVK, ZEVPerK float64
	// ToxDecadeNm is the gate-oxide thinning (nm) that costs one decade of
	// lifetime in the scaling relation MTTF ∝ 10^{-Δtox/ToxDecadeNm}.
	// The paper quotes 0.22nm/decade from Stathis [10]; applied literally
	// together with the printed voltage term this collapses TDDB lifetime
	// by >10⁵ by 65nm, contradicting the paper's own Figure 5, so the
	// default is an effective value calibrated to reproduce the paper's
	// reported TDDB trajectory (see DESIGN.md).
	ToxDecadeNm float64
	// VoltExponent is the effective cross-technology voltage-acceleration
	// exponent used in the Eq. 5 scaling factor (see DESIGN.md: the
	// printed (a−bT) ≈ 108 cannot reproduce the paper's reported 65nm
	// FIT ratios; ≈9 can). The printed exponent is retained for
	// within-technology voltage excursions (DVS).
	VoltExponent float64
	// AreaExponent is the exponent on the relative gate-oxide area in the
	// Eq. 5 scaling factor: FIT × RelArea^AreaExponent. The paper's
	// printed Eq. 5 corresponds to −1 (total FIT grows as area shrinks).
	AreaExponent float64
}

// TCParams holds the thermal-cycling (Coffin-Manson) constants.
type TCParams struct {
	// Q is the Coffin-Manson exponent (2.35 for the package).
	Q float64
	// AmbientK is the ambient temperature against which the average large
	// thermal cycle is measured.
	AmbientK float64
}

// Params bundles all mechanism constants.
type Params struct {
	EM   EMParams
	SM   SMParams
	TDDB TDDBParams
	TC   TCParams
}

// DefaultParams returns the RAMP constants used throughout the paper.
func DefaultParams() Params {
	return Params{
		EM: EMParams{
			N:                  1.1,
			ActivationEnergyEV: 0.9,
			// The paper's §3 derivation gives κ²; an effective 1.7
			// reproduces the paper's reported EM trajectory (Fig. 5)
			// together with this model's simulated temperatures
			// (see EXPERIMENTS.md).
			GeomExponent: 1.7,
		},
		SM: SMParams{
			M:                  2.5,
			ActivationEnergyEV: 0.9,
			T0K:                500,
		},
		TDDB: TDDBParams{
			A:            78,
			B:            -0.081,
			XEV:          0.759,
			YEVK:         -66.8,
			ZEVPerK:      -8.37e-4,
			ToxDecadeNm:  1.45,
			VoltExponent: 10.5,
			AreaExponent: -1,
		},
		TC: TCParams{
			Q:        2.35,
			AmbientK: phys.CelsiusToKelvin(45),
		},
	}
}

// Validate checks the constants for plausibility.
func (p Params) Validate() error {
	if p.EM.N <= 0 || p.EM.ActivationEnergyEV <= 0 || p.EM.GeomExponent < 0 {
		return fmt.Errorf("core: invalid EM params %+v", p.EM)
	}
	if p.SM.M <= 0 || p.SM.ActivationEnergyEV <= 0 || p.SM.T0K <= 0 {
		return fmt.Errorf("core: invalid SM params %+v", p.SM)
	}
	if p.TDDB.A <= 0 || p.TDDB.XEV == 0 || p.TDDB.ToxDecadeNm <= 0 || p.TDDB.VoltExponent < 0 {
		return fmt.Errorf("core: invalid TDDB params %+v", p.TDDB)
	}
	if p.TC.Q <= 0 || p.TC.AmbientK <= 0 {
		return fmt.Errorf("core: invalid TC params %+v", p.TC)
	}
	return nil
}

// EMRate returns the electromigration failure rate (up to the calibration
// constant) of a structure with activity factor af at temperature tK on
// technology tech: FIT ∝ (p·J_max)^n · e^{−Ea/kT} · κ^{−GeomExponent}.
func (p Params) EMRate(af, tK float64, tech scaling.Technology) float64 {
	if af < 0 {
		af = 0
	}
	j := af * tech.JMaxMAum2
	if j == 0 || tK <= 0 {
		return 0
	}
	geom := math.Pow(tech.WireScale, -p.EM.GeomExponent)
	return math.Pow(j, p.EM.N) *
		math.Exp(-p.EM.ActivationEnergyEV/(phys.BoltzmannEV*tK)) *
		geom
}

// SMRate returns the stress-migration failure rate (up to calibration) at
// temperature tK: FIT ∝ |T₀−T|^{m} · e^{−Ea/kT}.
func (p Params) SMRate(tK float64) float64 {
	if tK <= 0 {
		return 0
	}
	dT := math.Abs(p.SM.T0K - tK)
	return math.Pow(dT, p.SM.M) *
		math.Exp(-p.SM.ActivationEnergyEV/(phys.BoltzmannEV*tK))
}

// tddbTempTerm returns e^{−(X + Y/T + Z·T)/kT}, the FIT-side temperature
// acceleration of Eq. 3.
func (p Params) tddbTempTerm(tK float64) float64 {
	g := (p.TDDB.XEV + p.TDDB.YEVK/tK + p.TDDB.ZEVPerK*tK) / (phys.BoltzmannEV * tK)
	return math.Exp(-g)
}

// TDDBTechFactor returns the Eq. 5 technology-scaling multiplier on TDDB
// FIT relative to the 180nm base: the gate-oxide thinning decade factor,
// the effective cross-technology voltage factor, and the oxide-area
// factor. Temperature enters separately through TDDBRate.
func (p Params) TDDBTechFactor(tech scaling.Technology) float64 {
	base := scaling.Base()
	tox := math.Pow(10, tech.ToxReductionNm()/p.TDDB.ToxDecadeNm)
	volt := math.Pow(tech.VddV/base.VddV, p.TDDB.VoltExponent)
	area := math.Pow(tech.RelArea, p.TDDB.AreaExponent)
	return tox * volt * area
}

// TDDBRate returns the gate-oxide breakdown failure rate (up to
// calibration) at temperature tK and supply voltage vddV on technology
// tech. Within-technology voltage excursions (e.g. DVS) are accelerated by
// the printed Wu et al. exponent (V/Vnom)^{a−bT}; cross-technology scaling
// uses TDDBTechFactor.
func (p Params) TDDBRate(vddV, tK float64, tech scaling.Technology) float64 {
	if tK <= 0 || vddV <= 0 {
		return 0
	}
	exponent := p.TDDB.A - p.TDDB.B*tK
	dvs := math.Pow(vddV/tech.VddV, exponent)
	return dvs * p.tddbTempTerm(tK) * p.TDDBTechFactor(tech)
}

// TCRate returns the package thermal-cycling failure rate (up to
// calibration) for an average die temperature dieAvgK:
// FIT ∝ (T_avg − T_ambient)^{q}.
func (p Params) TCRate(dieAvgK float64) float64 {
	dT := dieAvgK - p.TC.AmbientK
	if dT <= 0 {
		return 0
	}
	return math.Pow(dT, p.TC.Q)
}
