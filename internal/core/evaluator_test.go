package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ramp-sim/ramp/internal/floorplan"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/scaling"
)

func newBaseEvaluator(t *testing.T, consts Constants) *Evaluator {
	t.Helper()
	e, err := NewEvaluator(DefaultParams(), consts, scaling.Base(), floorplan.POWER4().Areas())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func typicalOperatingPoint() (af, temps [microarch.NumStructures]float64, vdd, dieAvg float64) {
	af = [microarch.NumStructures]float64{0.15, 0.24, 0.15, 0.23, 0.13, 0.19, 0.06}
	for i := range temps {
		temps[i] = 350 + float64(i)
	}
	return af, temps, 1.3, 349
}

func TestUnitConstantsValidate(t *testing.T) {
	if err := UnitConstants().Validate(); err != nil {
		t.Fatal(err)
	}
	var zero Constants
	if err := zero.Validate(); err == nil {
		t.Fatal("zero constants accepted")
	}
}

func TestCalibrate(t *testing.T) {
	raw := [NumMechanisms]float64{2e-9, 5e4, 1e-3, 2.5e3}
	c, err := Calibrate(raw, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for m, k := range c.K {
		if got := k * raw[m]; math.Abs(got-1000) > 1e-9 {
			t.Errorf("mechanism %v: K·raw = %v, want 1000", Mechanism(m), got)
		}
	}
}

func TestCalibrateRejections(t *testing.T) {
	raw := [NumMechanisms]float64{1, 1, 1, 1}
	if _, err := Calibrate(raw, 0); err == nil {
		t.Error("zero target accepted")
	}
	raw[2] = 0
	if _, err := Calibrate(raw, 1000); err == nil {
		t.Error("zero raw average accepted")
	}
}

func TestNewEvaluatorRejections(t *testing.T) {
	if _, err := NewEvaluator(DefaultParams(), UnitConstants(), scaling.Base(), []float64{1}); err == nil {
		t.Error("wrong area count accepted")
	}
	areas := floorplan.POWER4().Areas()
	areas[0] = -1
	if _, err := NewEvaluator(DefaultParams(), UnitConstants(), scaling.Base(), areas); err == nil {
		t.Error("negative area accepted")
	}
	var badTech scaling.Technology
	if _, err := NewEvaluator(DefaultParams(), UnitConstants(), badTech, floorplan.POWER4().Areas()); err == nil {
		t.Error("invalid tech accepted")
	}
	var zeroConsts Constants
	if _, err := NewEvaluator(DefaultParams(), zeroConsts, scaling.Base(), floorplan.POWER4().Areas()); err == nil {
		t.Error("zero constants accepted")
	}
}

func TestBreakdownViewsAgree(t *testing.T) {
	e := newBaseEvaluator(t, UnitConstants())
	af, temps, vdd, dieAvg := typicalOperatingPoint()
	b := e.Instant(af, temps, vdd, dieAvg)

	total := b.Total()
	var byMech, byStruct float64
	for _, v := range b.ByMechanism() {
		byMech += v
	}
	for _, v := range b.ByStructure() {
		byStruct += v
	}
	if math.Abs(byMech-total) > 1e-9*total || math.Abs(byStruct-total) > 1e-9*total {
		t.Fatalf("views disagree: total %v, Σmech %v, Σstruct %v", total, byMech, byStruct)
	}
	if total <= 0 {
		t.Fatal("typical operating point must have a positive failure rate")
	}
}

func TestTCDistributedByArea(t *testing.T) {
	e := newBaseEvaluator(t, UnitConstants())
	af, temps, vdd, dieAvg := typicalOperatingPoint()
	b := e.Instant(af, temps, vdd, dieAvg)
	wantTotal := DefaultParams().TCRate(dieAvg)
	if got := b.ByMechanism()[TC]; math.Abs(got-wantTotal) > 1e-9*wantTotal {
		t.Fatalf("TC total = %v, want %v (single package-level rate)", got, wantTotal)
	}
	// Per-structure TC shares follow area fractions.
	areas := floorplan.POWER4().Areas()
	lsuShare := b.ByStructMech[microarch.StructLSU][TC] / wantTotal
	wantShare := areas[microarch.StructLSU] / 81.0
	if math.Abs(lsuShare-wantShare) > 1e-9 {
		t.Fatalf("LSU TC share = %v, want area fraction %v", lsuShare, wantShare)
	}
}

func TestConstantsScaleLinearly(t *testing.T) {
	af, temps, vdd, dieAvg := typicalOperatingPoint()
	unit := newBaseEvaluator(t, UnitConstants())
	scaledConsts := UnitConstants()
	scaledConsts.K[EM] = 10
	scaledConsts.K[TDDB] = 3
	scaled := newBaseEvaluator(t, scaledConsts)
	bu := unit.Instant(af, temps, vdd, dieAvg)
	bs := scaled.Instant(af, temps, vdd, dieAvg)
	mu, ms := bu.ByMechanism(), bs.ByMechanism()
	if math.Abs(ms[EM]/mu[EM]-10) > 1e-9 {
		t.Errorf("EM constant not linear: ratio %v", ms[EM]/mu[EM])
	}
	if math.Abs(ms[TDDB]/mu[TDDB]-3) > 1e-9 {
		t.Errorf("TDDB constant not linear: ratio %v", ms[TDDB]/mu[TDDB])
	}
	if math.Abs(ms[SM]/mu[SM]-1) > 1e-9 {
		t.Errorf("SM changed without constant change")
	}
}

func TestAccumulateAveraging(t *testing.T) {
	e := newBaseEvaluator(t, UnitConstants())
	af, temps, vdd, dieAvg := typicalOperatingPoint()
	b1 := e.Instant(af, temps, vdd, dieAvg)
	for i := range temps {
		temps[i] += 20
	}
	b2 := e.Instant(af, temps, vdd, dieAvg+20)
	// 1 unit of b1, 3 units of b2.
	e.Accumulate(b1, 1)
	e.Accumulate(b2, 3)
	avg := e.Average()
	wantTotal := (b1.Total() + 3*b2.Total()) / 4
	if math.Abs(avg.Total()-wantTotal) > 1e-9*wantTotal {
		t.Fatalf("average total = %v, want %v", avg.Total(), wantTotal)
	}
	if e.AccumulatedTime() != 4 {
		t.Fatalf("accumulated time = %v, want 4", e.AccumulatedTime())
	}
	e.Reset()
	if e.Average().Total() != 0 || e.AccumulatedTime() != 0 {
		t.Fatal("Reset must clear the accumulator")
	}
}

func TestAccumulateIgnoresNonPositiveDurations(t *testing.T) {
	e := newBaseEvaluator(t, UnitConstants())
	af, temps, vdd, dieAvg := typicalOperatingPoint()
	b := e.Instant(af, temps, vdd, dieAvg)
	e.Accumulate(b, 0)
	e.Accumulate(b, -5)
	if e.AccumulatedTime() != 0 {
		t.Fatal("non-positive durations must be ignored")
	}
}

func TestEmptyAverageIsZero(t *testing.T) {
	e := newBaseEvaluator(t, UnitConstants())
	if got := e.Average().Total(); got != 0 {
		t.Fatalf("empty average total = %v, want 0", got)
	}
}

func TestHotterRunHasHigherFIT(t *testing.T) {
	// The core workload-dependence property (§5.2): at the same activity,
	// a hotter application sees a strictly higher total FIT.
	e := newBaseEvaluator(t, UnitConstants())
	af, temps, vdd, dieAvg := typicalOperatingPoint()
	f := func(deltaRaw float64) bool {
		delta := math.Mod(math.Abs(deltaRaw), 25) + 0.1
		var hot [microarch.NumStructures]float64
		for i := range hot {
			hot[i] = temps[i] + delta
		}
		cold := e.Instant(af, temps, vdd, dieAvg)
		warm := e.Instant(af, hot, vdd, dieAvg+delta)
		return warm.Total() > cold.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHigherActivityHasHigherFIT(t *testing.T) {
	e := newBaseEvaluator(t, UnitConstants())
	af, temps, vdd, dieAvg := typicalOperatingPoint()
	var busy [microarch.NumStructures]float64
	for i := range busy {
		busy[i] = af[i] * 2
	}
	idle := e.Instant(af, temps, vdd, dieAvg)
	loaded := e.Instant(busy, temps, vdd, dieAvg)
	// Only EM depends on activity. (Compare mechanisms directly: with unit
	// constants the raw EM magnitude is far below TC's, so the total is
	// not a numerically meaningful comparison.)
	mi, ml := idle.ByMechanism(), loaded.ByMechanism()
	if ml[EM] <= mi[EM] {
		t.Fatal("doubling activity must raise the EM FIT")
	}
	for _, m := range []Mechanism{SM, TDDB, TC} {
		if math.Abs(mi[m]-ml[m]) > 1e-12*mi[m] {
			t.Errorf("%v changed with activity", m)
		}
	}
}

func TestSOFRAdditivityAcrossTechnologies(t *testing.T) {
	// MTTF = 10⁹/ΣFIT: doubling every rate must halve MTTF.
	e := newBaseEvaluator(t, UnitConstants())
	af, temps, vdd, dieAvg := typicalOperatingPoint()
	b := e.Instant(af, temps, vdd, dieAvg)
	doubled := b.scale(2)
	if math.Abs(doubled.MTTFYears()*2-b.MTTFYears()) > 1e-9*b.MTTFYears() {
		t.Fatal("MTTF must be inversely proportional to total FIT")
	}
}

func TestScaledTechnologyRaisesFITAtSameTemperature(t *testing.T) {
	// Even with temperature held fixed, the 65nm (1.0V) point carries the
	// EM geometry and TDDB tox/area penalties and must exceed the base
	// total FIT.
	af, temps, _, dieAvg := typicalOperatingPoint()
	tech65, err := scaling.ByName("65nm (1.0V)")
	if err != nil {
		t.Fatal(err)
	}
	fp65, err := floorplan.POWER4().Scaled(tech65.RelArea)
	if err != nil {
		t.Fatal(err)
	}
	base := newBaseEvaluator(t, UnitConstants())
	e65, err := NewEvaluator(DefaultParams(), UnitConstants(), tech65, fp65.Areas())
	if err != nil {
		t.Fatal(err)
	}
	b0 := base.Instant(af, temps, 1.3, dieAvg)
	b65 := e65.Instant(af, temps, 1.0, dieAvg)
	m0, m65 := b0.ByMechanism(), b65.ByMechanism()
	if m65[EM] <= m0[EM] {
		t.Errorf("EM at 65nm (%v) not above base (%v) at equal T", m65[EM], m0[EM])
	}
	if m65[TDDB] <= m0[TDDB] {
		t.Errorf("TDDB at 65nm (%v) not above base (%v) at equal T", m65[TDDB], m0[TDDB])
	}
	// SM and TC depend only on temperature, which we held fixed.
	if math.Abs(m65[SM]-m0[SM]) > 1e-9*m0[SM] {
		t.Errorf("SM changed across tech at fixed T")
	}
	if math.Abs(m65[TC]-m0[TC]) > 1e-9*m0[TC] {
		t.Errorf("TC changed across tech at fixed T")
	}
}
