package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/ramp-sim/ramp/internal/stats"
)

// This file relaxes the SOFR model's second assumption. SOFR (§2) treats
// every mechanism as having a constant failure rate — an exponential
// lifetime distribution — which the paper itself calls "clearly
// inaccurate: a typical wear-out failure mechanism will have a low failure
// rate at the beginning of the component's lifetime and the value will
// grow as the component ages". The Monte Carlo machinery here keeps
// RAMP's per-structure, per-mechanism average rates but lets each
// (structure, mechanism) lifetime follow a wear-out distribution with the
// same mean, and estimates the processor lifetime as the minimum across
// the series-failure system. With exponential marginals it converges to
// the SOFR analytic MTTF, quantifying exactly how much the constant-rate
// assumption distorts lifetime estimates.

// Distribution models a lifetime distribution parameterised by its mean.
type Distribution interface {
	// Sample draws one lifetime with the given mean from rng.
	Sample(rng *rand.Rand, mean float64) float64
	// Name identifies the distribution for reports.
	Name() string
}

// Exponential is the SOFR assumption: constant failure rate.
type Exponential struct{}

var _ Distribution = Exponential{}

// Sample draws an exponential lifetime with the given mean.
func (Exponential) Sample(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// Name returns "exponential".
func (Exponential) Name() string { return "exponential" }

// Quantile returns the analytic p-th quantile (0 < p < 1) of the
// exponential lifetime with the given mean: −mean·ln(1−p).
func (Exponential) Quantile(mean, p float64) float64 {
	return -mean * math.Log(1-p)
}

// Weibull models wear-out: with Shape > 1 the hazard rate grows with age,
// the qualitative behaviour the paper says real mechanisms have. Shape = 1
// degenerates to the exponential.
type Weibull struct {
	// Shape is the Weibull slope β (>1 for wear-out; JEDEC-style analyses
	// of EM and TDDB typically fit slopes between 1.5 and 3).
	Shape float64
}

var _ Distribution = Weibull{}

// Sample draws a Weibull lifetime with the given mean via inverse-CDF.
func (w Weibull) Sample(rng *rand.Rand, mean float64) float64 {
	if w.Shape <= 0 {
		return math.NaN()
	}
	// Scale so the mean equals the requested mean: mean = λ·Γ(1+1/β).
	scale := mean / math.Gamma(1+1/w.Shape)
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/w.Shape)
}

// Name returns a slope-qualified label.
func (w Weibull) Name() string { return fmt.Sprintf("weibull(β=%.2g)", w.Shape) }

// Validate rejects non-positive or non-finite shapes.
func (w Weibull) Validate() error {
	if !(w.Shape > 0) || math.IsInf(w.Shape, 1) {
		return fmt.Errorf("core: weibull shape must be a positive finite number, got %v", w.Shape)
	}
	return nil
}

// Quantile returns the analytic p-th quantile (0 < p < 1) of the Weibull
// lifetime with the given mean: λ·(−ln(1−p))^(1/β), λ = mean/Γ(1+1/β).
func (w Weibull) Quantile(mean, p float64) float64 {
	scale := mean / math.Gamma(1+1/w.Shape)
	return scale * math.Pow(-math.Log(1-p), 1/w.Shape)
}

// Lognormal is the classical electromigration lifetime distribution
// (JEDEC JEP122): log-lifetimes are normal with shape parameter Sigma.
type Lognormal struct {
	// Sigma is the log-standard deviation (typically 0.3–0.7 for EM).
	Sigma float64
}

var _ Distribution = Lognormal{}

// Sample draws a lognormal lifetime with the given mean.
func (l Lognormal) Sample(rng *rand.Rand, mean float64) float64 {
	if l.Sigma < 0 {
		return math.NaN()
	}
	// mean = exp(µ + σ²/2) → µ = ln(mean) − σ²/2.
	mu := math.Log(mean) - l.Sigma*l.Sigma/2
	return math.Exp(mu + l.Sigma*rng.NormFloat64())
}

// Name returns a sigma-qualified label.
func (l Lognormal) Name() string { return fmt.Sprintf("lognormal(σ=%.2g)", l.Sigma) }

// Validate rejects non-positive or non-finite sigmas.
func (l Lognormal) Validate() error {
	if !(l.Sigma > 0) || math.IsInf(l.Sigma, 1) {
		return fmt.Errorf("core: lognormal sigma must be a positive finite number, got %v", l.Sigma)
	}
	return nil
}

// Quantile returns the analytic p-th quantile (0 < p < 1) of the lognormal
// lifetime with the given mean: exp(µ + σ·Φ⁻¹(p)), µ = ln(mean) − σ²/2.
func (l Lognormal) Quantile(mean, p float64) float64 {
	mu := math.Log(mean) - l.Sigma*l.Sigma/2
	return math.Exp(mu + l.Sigma*stats.NormalQuantile(p))
}

// LifetimeModel assigns a lifetime distribution to each failure
// mechanism: the paper's four through the fixed Dist array, registry
// mechanisms beyond them through the name-keyed Extra map, and any
// mechanism neither covers through Fallback.
type LifetimeModel struct {
	Dist [NumMechanisms]Distribution
	// Extra assigns distributions to registry mechanisms outside the
	// paper's four, keyed by canonical mechanism name.
	Extra map[string]Distribution
	// Fallback covers mechanisms with no explicit assignment (future
	// registry additions), keeping name resolution total.
	Fallback Distribution
}

// DistFor resolves the distribution for one mechanism by canonical name.
func (m LifetimeModel) DistFor(name string) Distribution {
	if slot, ok := LegacySlot(name); ok && m.Dist[slot] != nil {
		return m.Dist[slot]
	}
	if d, ok := m.Extra[name]; ok {
		return d
	}
	return m.Fallback
}

// SOFRLifetimes returns the SOFR assumption: exponential everywhere
// (registry mechanisms included, through the fallback).
func SOFRLifetimes() LifetimeModel {
	var m LifetimeModel
	for i := range m.Dist {
		m.Dist[i] = Exponential{}
	}
	m.Fallback = Exponential{}
	return m
}

// WearOutLifetimes returns a JEDEC-flavoured wear-out assignment:
// lognormal EM, Weibull SM and TC (fatigue), a steep Weibull for TDDB
// (thin oxides have slopes well above 1 at end of life), and Weibull
// slopes for the registry mechanisms (β=2 aging for NBTI/HCI and for
// rainflow-counted cycling fatigue, after SDTA's Weibull β).
func WearOutLifetimes() LifetimeModel {
	var m LifetimeModel
	m.Dist[EM] = Lognormal{Sigma: 0.5}
	m.Dist[SM] = Weibull{Shape: 2.0}
	m.Dist[TDDB] = Weibull{Shape: 1.8}
	m.Dist[TC] = Weibull{Shape: 2.35}
	m.Extra = map[string]Distribution{
		MechNBTI:       Weibull{Shape: 2.0},
		MechHCI:        Weibull{Shape: 2.0},
		MechTCRainflow: Weibull{Shape: 2.0},
	}
	m.Fallback = Weibull{Shape: 2.0}
	return m
}

// Validate checks that every mechanism has a distribution with valid
// parameters. Distributions that implement Validate() error (Weibull,
// Lognormal) are checked for non-positive shapes/sigmas; the error names
// the offending mechanism.
func (m LifetimeModel) Validate() error {
	for i, d := range m.Dist {
		if d == nil {
			return fmt.Errorf("core: no lifetime distribution for %v", Mechanism(i))
		}
		if err := validateDist(d, Mechanism(i).String()); err != nil {
			return err
		}
	}
	for name, d := range m.Extra {
		if d == nil {
			return fmt.Errorf("core: nil lifetime distribution for %s", name)
		}
		if err := validateDist(d, name); err != nil {
			return err
		}
	}
	if m.Fallback != nil {
		if err := validateDist(m.Fallback, "fallback"); err != nil {
			return err
		}
	}
	return nil
}

// validateDist applies a distribution's own Validate when it has one.
func validateDist(d Distribution, owner string) error {
	if v, ok := d.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("core: invalid %s distribution for %s: %w", d.Name(), owner, err)
		}
	}
	return nil
}

// Canonical lifetime-model names accepted by LifetimeModelByName and by
// the MC study API.
const (
	ModelSOFR    = "sofr"
	ModelWearOut = "wearout"
)

// LifetimeModelByName resolves a model name to its LifetimeModel:
// "sofr" (alias "exponential") → SOFRLifetimes, "wearout" (alias
// "wear-out") → WearOutLifetimes.
func LifetimeModelByName(name string) (LifetimeModel, error) {
	switch name {
	case ModelSOFR, "exponential":
		return SOFRLifetimes(), nil
	case ModelWearOut, "wear-out":
		return WearOutLifetimes(), nil
	default:
		return LifetimeModel{}, fmt.Errorf("core: unknown lifetime model %q (want %q or %q)", name, ModelSOFR, ModelWearOut)
	}
}

// CanonicalModelName maps model aliases onto the canonical names used in
// cache keys and reports; unknown names pass through for Validate to
// reject.
func CanonicalModelName(name string) string {
	switch name {
	case "exponential":
		return ModelSOFR
	case "wear-out":
		return ModelWearOut
	default:
		return name
	}
}

// LifetimeEstimate summarises a Monte Carlo lifetime experiment.
type LifetimeEstimate struct {
	// MTTFYears is the Monte Carlo mean processor lifetime.
	MTTFYears float64
	// MedianYears and P5Years, P95Years describe the lifetime spread —
	// quantities SOFR cannot produce.
	MedianYears, P5Years, P95Years float64
	// SOFRYears is the analytic SOFR MTTF of the same breakdown, for
	// comparison.
	SOFRYears float64
	// Samples is the number of Monte Carlo trials.
	Samples int
}

// MonteCarloLifetime estimates the processor lifetime distribution for a
// calibrated FIT breakdown under the given per-mechanism lifetime
// distributions. Each trial draws one lifetime per (structure, mechanism)
// with mean 10⁹/FIT hours and takes the minimum (series failure system).
func MonteCarloLifetime(b Breakdown, model LifetimeModel, samples int, seed int64) (LifetimeEstimate, error) {
	if samples < 1 {
		return LifetimeEstimate{}, fmt.Errorf("core: need at least 1 sample, got %d", samples)
	}
	sampler, err := NewLifetimeSampler(b, model)
	if err != nil {
		return LifetimeEstimate{}, err
	}
	// One shared stream across all trials preserves the historical draw
	// sequence of this entry point exactly; the batch-parallel MC study in
	// internal/sim uses per-replica splittable streams instead.
	rng := rand.New(rand.NewSource(seed))
	lifetimes := make([]float64, samples)
	var sum float64
	for i := range lifetimes {
		years := sampler.Sample(rng)
		lifetimes[i] = years
		sum += years
	}
	sort.Float64s(lifetimes)
	q := func(p float64) float64 {
		idx := int(p * float64(samples-1))
		return lifetimes[idx]
	}
	return LifetimeEstimate{
		MTTFYears:   sum / float64(samples),
		MedianYears: q(0.5),
		P5Years:     q(0.05),
		P95Years:    q(0.95),
		SOFRYears:   b.MTTFYears(),
		Samples:     samples,
	}, nil
}
