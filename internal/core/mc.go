package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/phys"
)

// Splittable replica streams. A Monte Carlo study draws one lifetime per
// (structure, mechanism) cell per replica; to make the result independent
// of how replicas are batched across workers, every (root seed, cell,
// replica) triple deterministically derives its own RNG stream. Workers
// can then evaluate any subset of replicas in any order and still produce
// byte-identical per-replica draws.

// SplitMix64 advances the SplitMix64 generator one step from state x and
// returns the mixed output. It is the standard finalizer from Steele,
// Lea & Flood, "Fast Splittable Pseudorandom Number Generators" (OOPSLA
// 2014), also used to seed xoshiro-family generators.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ReplicaSeed derives the RNG state for one (cell, replica) stream from a
// root seed. Distinct (root, cell, replica) triples map to well-separated
// states: each component is folded in through a full SplitMix64 round, so
// adjacent replicas share no low-bit structure.
func ReplicaSeed(root int64, cell, replica uint64) uint64 {
	s := SplitMix64(uint64(root))
	s = SplitMix64(s ^ cell)
	s = SplitMix64(s ^ replica)
	return s
}

// replicaSource is a SplitMix64-backed rand.Source64. It is reseeded once
// per replica via Reseed, giving each replica an independent stream while
// letting a worker reuse one *rand.Rand allocation across its whole batch.
type replicaSource struct {
	state uint64
}

var _ rand.Source64 = (*replicaSource)(nil)

func (s *replicaSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *replicaSource) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

func (s *replicaSource) Seed(seed int64) {
	s.state = uint64(seed)
}

// ReplicaRand is a reusable per-worker RNG. Seed positions it at the start
// of the (root, cell, replica) stream; Rand exposes the *rand.Rand view
// for Distribution.Sample. The standard library's Float64, ExpFloat64 and
// NormFloat64 keep no state beyond the source, so reseeding the source is
// equivalent to building a fresh rand.New per replica — without the
// allocation.
type ReplicaRand struct {
	src replicaSource
	rng *rand.Rand
}

// NewReplicaRand returns a ReplicaRand ready for Seed.
func NewReplicaRand() *ReplicaRand {
	r := &ReplicaRand{}
	r.rng = rand.New(&r.src)
	return r
}

// Seed positions the generator at the start of the (root, cell, replica)
// stream.
func (r *ReplicaRand) Seed(root int64, cell, replica uint64) {
	r.src.state = ReplicaSeed(root, cell, replica)
}

// Rand returns the *rand.Rand view over the current stream.
func (r *ReplicaRand) Rand() *rand.Rand { return r.rng }

// samplerCell is one positive-rate (structure, mechanism) entry of a
// breakdown: its resolved lifetime distribution and per-cell mean
// lifetime in hours.
type samplerCell struct {
	dist      Distribution
	meanHours float64
}

// LifetimeSampler draws series-system processor lifetimes for one
// calibrated FIT breakdown under a per-mechanism lifetime model. It
// precomputes the positive-rate cells once so each replica pays only the
// per-cell sampling cost. A LifetimeSampler is immutable after
// NewLifetimeSampler and safe for concurrent use; callers supply the rng.
type LifetimeSampler struct {
	cells []samplerCell
	model LifetimeModel
}

// NewLifetimeSampler validates the model and collects the positive-rate
// cells of b in deterministic order: the fixed-slot (structure, mechanism)
// cells first — preserving the historical draw sequence for the default
// mechanism set exactly — then any name-keyed Extra cells in sorted
// mechanism-name, structure order.
func NewLifetimeSampler(b Breakdown, model LifetimeModel) (*LifetimeSampler, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	var cells []samplerCell
	for s := 0; s < microarch.NumStructures; s++ {
		for m := 0; m < NumMechanisms; m++ {
			fit := b.ByStructMech[s][m]
			if fit <= 0 {
				continue
			}
			cells = append(cells, samplerCell{model.Dist[m], phys.MTTFHoursFromFIT(fit)})
		}
	}
	extraNames := make([]string, 0, len(b.Extra))
	for name := range b.Extra {
		extraNames = append(extraNames, name)
	}
	sort.Strings(extraNames)
	for _, name := range extraNames {
		d := model.DistFor(name)
		if d == nil {
			return nil, fmt.Errorf("core: no lifetime distribution for mechanism %s (model has no fallback)", name)
		}
		arr := b.Extra[name]
		for s := 0; s < microarch.NumStructures; s++ {
			fit := arr[s]
			if fit <= 0 {
				continue
			}
			cells = append(cells, samplerCell{d, phys.MTTFHoursFromFIT(fit)})
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("core: breakdown has no positive failure rates")
	}
	return &LifetimeSampler{cells: cells, model: model}, nil
}

// Cells returns the number of positive-rate (structure, mechanism) cells.
func (ls *LifetimeSampler) Cells() int { return len(ls.cells) }

// Sample draws one processor lifetime in years: one draw per positive-rate
// cell with the cell's mean, minimum across the series system.
func (ls *LifetimeSampler) Sample(rng *rand.Rand) float64 {
	minLife := math.Inf(1)
	for _, c := range ls.cells {
		l := c.dist.Sample(rng, c.meanHours)
		if l < minLife {
			minLife = l
		}
	}
	return minLife / phys.HoursPerYear
}
