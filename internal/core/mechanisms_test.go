package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ramp-sim/ramp/internal/scaling"
)

// operating range used by the property tests: the temperatures the modeled
// processor actually reaches (Figure 2).
func opTemp(raw float64) float64 {
	return 330 + math.Mod(math.Abs(raw), 60) // 330..390 K
}

func TestMechanismString(t *testing.T) {
	if EM.String() != "EM" || SM.String() != "SM" || TDDB.String() != "TDDB" || TC.String() != "TC" {
		t.Fatal("mechanism names wrong")
	}
	if Mechanism(9).String() != "mechanism(9)" {
		t.Fatal("out-of-range mechanism name wrong")
	}
	if len(Mechanisms()) != NumMechanisms || NumMechanisms != 4 {
		t.Fatal("mechanism enumeration wrong")
	}
}

func TestDefaultParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidateRejections(t *testing.T) {
	p := DefaultParams()
	p.EM.N = 0
	if err := p.Validate(); err == nil {
		t.Error("zero EM exponent accepted")
	}
	p = DefaultParams()
	p.SM.T0K = -1
	if err := p.Validate(); err == nil {
		t.Error("negative T0 accepted")
	}
	p = DefaultParams()
	p.TDDB.ToxDecadeNm = 0
	if err := p.Validate(); err == nil {
		t.Error("zero tox decade accepted")
	}
	p = DefaultParams()
	p.TC.Q = 0
	if err := p.Validate(); err == nil {
		t.Error("zero Coffin-Manson exponent accepted")
	}
}

func TestEMRateIncreasesWithTemperature(t *testing.T) {
	p := DefaultParams()
	base := scaling.Base()
	f := func(raw1, raw2 float64) bool {
		t1, t2 := opTemp(raw1), opTemp(raw2)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return p.EMRate(0.5, t1, base) <= p.EMRate(0.5, t2, base)+1e-30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEMRateIncreasesWithActivity(t *testing.T) {
	// J = p·J_max: higher activity means higher current density and a
	// higher failure rate (Eq. 1).
	p := DefaultParams()
	base := scaling.Base()
	f := func(a1, a2 float64) bool {
		a1, a2 = math.Abs(math.Mod(a1, 1)), math.Abs(math.Mod(a2, 1))
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		return p.EMRate(a1, 360, base) <= p.EMRate(a2, 360, base)+1e-30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEMRateZeroWhenIdle(t *testing.T) {
	p := DefaultParams()
	if got := p.EMRate(0, 360, scaling.Base()); got != 0 {
		t.Fatalf("idle EM rate = %v, want 0", got)
	}
	if got := p.EMRate(-0.5, 360, scaling.Base()); got != 0 {
		t.Fatalf("negative-AF EM rate = %v, want 0", got)
	}
}

func TestEMGeometryFactorAcrossGenerations(t *testing.T) {
	// κ² wire-geometry degradation: at equal temperature and activity, and
	// ignoring the J_max derate, EM FIT grows by 1/κ² (paper §3, Fig. 1).
	p := DefaultParams()
	base := scaling.Base()
	tech65, err := scaling.ByName("65nm (1.0V)")
	if err != nil {
		t.Fatal(err)
	}
	// Neutralise the J_max difference by comparing at equal J: pick
	// activities with af·Jmax equal.
	af65 := 0.4
	afBase := af65 * tech65.JMaxMAum2 / base.JMaxMAum2
	ratio := p.EMRate(af65, 360, tech65) / p.EMRate(afBase, 360, base)
	want := math.Pow(tech65.WireScale, -p.EM.GeomExponent)
	if math.Abs(ratio/want-1) > 1e-9 {
		t.Fatalf("EM geometry ratio = %v, want κ^-GeomExponent = %v", ratio, want)
	}
	if want <= 1 {
		t.Fatalf("geometry factor %v must degrade EM lifetime with scaling", want)
	}
}

func TestEMJmaxDerateLowersRate(t *testing.T) {
	// The 33%-per-generation J_max reduction (Table 4) lowers EM FIT at
	// equal activity, temperature, and geometry.
	p := DefaultParams()
	p.EM.GeomExponent = 0 // isolate the J effect
	base := scaling.Base()
	tech130, err := scaling.ByName("130nm")
	if err != nil {
		t.Fatal(err)
	}
	r180 := p.EMRate(0.5, 360, base)
	r130 := p.EMRate(0.5, 360, tech130)
	want := math.Pow(6.0/9.0, 1.1)
	if math.Abs(r130/r180-want) > 1e-9 {
		t.Fatalf("J_max derate ratio = %v, want %v", r130/r180, want)
	}
}

func TestSMRateIncreasesWithTemperatureInOperatingRange(t *testing.T) {
	// Table 1: the exponential dominates the |T−T₀|^-m term below T₀.
	p := DefaultParams()
	f := func(raw1, raw2 float64) bool {
		t1, t2 := opTemp(raw1), opTemp(raw2)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return p.SMRate(t1) <= p.SMRate(t2)+1e-30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSMRateVanishesAtStressFreeTemperature(t *testing.T) {
	p := DefaultParams()
	if got := p.SMRate(p.SM.T0K); got != 0 {
		t.Fatalf("SM rate at T0 = %v, want 0 (no thermo-mechanical stress)", got)
	}
}

func TestTDDBRateIncreasesWithTemperature(t *testing.T) {
	p := DefaultParams()
	base := scaling.Base()
	f := func(raw1, raw2 float64) bool {
		t1, t2 := opTemp(raw1), opTemp(raw2)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return p.TDDBRate(base.VddV, t1, base) <= p.TDDBRate(base.VddV, t2, base)*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTDDBRateIncreasesWithVoltage(t *testing.T) {
	// Within a technology, overdrive (DVS) accelerates breakdown; the
	// voltage exponent (a − bT) is large, so even small excursions matter.
	p := DefaultParams()
	base := scaling.Base()
	lo := p.TDDBRate(base.VddV*0.95, 360, base)
	mid := p.TDDBRate(base.VddV, 360, base)
	hi := p.TDDBRate(base.VddV*1.05, 360, base)
	if !(lo < mid && mid < hi) {
		t.Fatalf("TDDB not monotonic in V: %v, %v, %v", lo, mid, hi)
	}
	if hi/mid < 50 {
		t.Fatalf("5%% overdrive accelerates TDDB by %vx; expected a strong (a−bT)-power dependence", hi/mid)
	}
}

func TestTDDBTechFactorDirections(t *testing.T) {
	p := DefaultParams()
	if got := p.TDDBTechFactor(scaling.Base()); math.Abs(got-1) > 1e-12 {
		t.Fatalf("base TDDB tech factor = %v, want 1", got)
	}
	// Oxide thinning alone must increase FIT: compare 65nm at the base
	// voltage and area.
	thin := scaling.Base()
	thin.ToxNm = 0.9
	if got := p.TDDBTechFactor(thin); got <= 1 {
		t.Fatalf("tox thinning factor = %v, want > 1", got)
	}
	// Voltage reduction alone must decrease FIT.
	lowV := scaling.Base()
	lowV.VddV = 1.0
	if got := p.TDDBTechFactor(lowV); got >= 1 {
		t.Fatalf("voltage reduction factor = %v, want < 1", got)
	}
	// Smaller area raises the Eq. 5 factor (AreaExponent = −1).
	small := scaling.Base()
	small.RelArea = 0.16
	if got := p.TDDBTechFactor(small); math.Abs(got-6.25) > 1e-9 {
		t.Fatalf("area factor = %v, want 6.25", got)
	}
}

func TestTCRateFollowsCoffinManson(t *testing.T) {
	p := DefaultParams()
	amb := p.TC.AmbientK
	r1 := p.TCRate(amb + 20)
	r2 := p.TCRate(amb + 40)
	want := math.Pow(2, p.TC.Q)
	if math.Abs(r2/r1-want) > 1e-9 {
		t.Fatalf("doubling ΔT scales TC by %v, want 2^q = %v", r2/r1, want)
	}
}

func TestTCRateZeroAtOrBelowAmbient(t *testing.T) {
	p := DefaultParams()
	if p.TCRate(p.TC.AmbientK) != 0 || p.TCRate(p.TC.AmbientK-10) != 0 {
		t.Fatal("TC rate must be 0 without a thermal cycle above ambient")
	}
}

func TestRatesNonNegativeEverywhere(t *testing.T) {
	p := DefaultParams()
	base := scaling.Base()
	f := func(af, tRaw, v float64) bool {
		tK := opTemp(tRaw)
		af = math.Mod(math.Abs(af), 1.5)
		v = 0.5 + math.Mod(math.Abs(v), 1.5)
		return p.EMRate(af, tK, base) >= 0 &&
			p.SMRate(tK) >= 0 &&
			p.TDDBRate(v, tK, base) >= 0 &&
			p.TCRate(tK) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTable1TemperatureSensitivityOrdering(t *testing.T) {
	// Table 1 summary: over the operating range, TDDB has the strongest
	// relative temperature sensitivity ("more than exponential"), then
	// EM/SM (exponential with Ea=0.9), then TC (power law).
	p := DefaultParams()
	base := scaling.Base()
	t1, t2 := 350.0, 370.0
	grow := func(m Mechanism) float64 {
		switch m {
		case EM:
			return p.EMRate(0.5, t2, base) / p.EMRate(0.5, t1, base)
		case SM:
			return p.SMRate(t2) / p.SMRate(t1)
		case TDDB:
			return p.TDDBRate(base.VddV, t2, base) / p.TDDBRate(base.VddV, t1, base)
		case TC:
			return p.TCRate(t2) / p.TCRate(t1)
		default:
			t.Fatalf("unknown mechanism %v", m)
			return 0
		}
	}
	em, sm, tddb, tc := grow(EM), grow(SM), grow(TDDB), grow(TC)
	for m, g := range map[string]float64{"EM": em, "SM": sm, "TDDB": tddb, "TC": tc} {
		if g <= 1 {
			t.Errorf("%s must grow with temperature, got ratio %v", m, g)
		}
	}
	// EM has the steepest temperature slope of the four with the printed
	// constants (Ea = 0.9eV Arrhenius); the |T−T₀| term damps SM below it
	// (§5.3), and TC's power law is mildest. TDDB's printed temperature
	// term is "more than exponential" in form (the 1/T exponent is itself
	// temperature dependent) but of smaller magnitude at nominal voltage —
	// its scaling threat comes from the tox/area/voltage factors (§5.3).
	if !(em > sm) {
		t.Errorf("EM growth %v not above SM growth %v", em, sm)
	}
	if !(sm > tc) {
		t.Errorf("SM growth %v not above TC growth %v", sm, tc)
	}
	if tddb < 1.5 {
		t.Errorf("TDDB temperature growth %v implausibly weak", tddb)
	}
}
