package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/ramp-sim/ramp/internal/scaling"
)

// This file is the pluggable mechanism registry: the paper's four failure
// models and any post-2004 additions live behind one interface, registered
// by canonical name and resolved into a MechanismSet per study request.
// The fixed [NumMechanisms] arrays remain the storage for the paper's
// four (so every existing artifact, cache key, and golden number is
// preserved bit-for-bit); mechanisms outside that set land in the
// name-keyed Extra maps of Breakdown and Constants.

// MechanismScope says how a mechanism's rate maps onto structures.
type MechanismScope int

const (
	// ScopeStructure mechanisms have a per-structure rate driven by that
	// structure's activity and temperature (EM, SM, TDDB, NBTI, HCI).
	ScopeStructure MechanismScope = iota
	// ScopePackage mechanisms have a single die-level rate (driven by the
	// area-weighted average die temperature) that is distributed across
	// structures by area fraction so both views sum to the same SOFR
	// total (TC, tc-rainflow).
	ScopePackage
)

// String names the scope for discovery endpoints.
func (s MechanismScope) String() string {
	if s == ScopePackage {
		return "package"
	}
	return "structure"
}

// Sample is one per-µs operating-point observation, the input of an
// instantaneous mechanism rate. Structure-scope mechanisms read AF and
// TempK (their structure's values); package-scope mechanisms read
// DieAvgTempK; either may read VddV.
type Sample struct {
	// AF is the structure's activity factor in [0, 1].
	AF float64
	// TempK is the structure temperature.
	TempK float64
	// VddV is the instantaneous supply voltage.
	VddV float64
	// DieAvgTempK is the area-weighted average die temperature.
	DieAvgTempK float64
}

// MechanismModel is one pluggable failure mechanism: a raw (uncalibrated)
// instantaneous failure rate as a function of the per-µs sample, with the
// technology point supplying the scaling hooks (§3) and Params the
// tunable constants. Rates are relative — the reliability-qualification
// calibration (§4.4) anchors each registered mechanism to absolute FITs,
// exactly as it does the paper's four.
//
// Implementations must be stateless and safe for concurrent use: one
// model instance serves every evaluator in the process.
type MechanismModel interface {
	// Name returns the canonical (lower-case) registry name.
	Name() string
	// Description is a one-line summary for discovery endpoints.
	Description() string
	// ParamsDescription documents the tunable constants and their
	// defaults for discovery endpoints.
	ParamsDescription() string
	// Scope says whether Rate is per structure or per package.
	Scope() MechanismScope
	// Rate returns the raw instantaneous failure rate at one sample.
	// Mechanisms defined only over a whole series (SeriesMechanism)
	// return 0 here and are excluded from instantaneous analyses such as
	// the §5.2 worst case.
	Rate(s Sample, p Params, tech scaling.Technology) float64
}

// SeriesMechanism is implemented by mechanisms whose rate is defined over
// the whole thermal series rather than one sample — e.g. rainflow-counted
// thermal cycling, which needs every peak and valley of the run.
// SeriesRate returns the raw failure rate, constant over the run, from
// the interval die-average temperatures and durations; the time average
// of a constant is exact, so the reliability stage folds it straight into
// the run's averaged breakdown.
type SeriesMechanism interface {
	MechanismModel
	SeriesRate(dieAvgTempK, durUS []float64, p Params) float64
}

// MechanismInfo describes one registered mechanism for the discovery API.
type MechanismInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Params      string `json:"params"`
	Scope       string `json:"scope"`
	// Series is true for mechanisms evaluated over the whole thermal
	// series (excluded from instantaneous worst-case analysis).
	Series bool `json:"series"`
	// Default is true for the paper's four, evaluated when a request
	// names no mechanism set.
	Default bool `json:"default"`
}

// registry is the process-wide name → model table. Reads (per-request set
// resolution) vastly outnumber writes (init-time registration), so an
// RWMutex keeps concurrent resolution contention-free.
var registry = struct {
	sync.RWMutex
	models map[string]MechanismModel
}{models: make(map[string]MechanismModel)}

// RegisterMechanism adds a model under its canonical name. Registering a
// name twice is an error: silently replacing a model would change
// numbers behind the content-addressed keys.
func RegisterMechanism(m MechanismModel) error {
	name := m.Name()
	if name != strings.ToLower(name) || name == "" {
		return fmt.Errorf("core: mechanism name %q must be non-empty lower-case", name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, ok := registry.models[name]; ok {
		return fmt.Errorf("core: mechanism %q already registered", name)
	}
	registry.models[name] = m
	return nil
}

// mustRegister is RegisterMechanism for the built-ins.
func mustRegister(m MechanismModel) {
	if err := RegisterMechanism(m); err != nil {
		panic(err)
	}
}

// MechanismByName resolves one canonical or aliased name.
func MechanismByName(name string) (MechanismModel, error) {
	canon, err := canonicalName(name)
	if err != nil {
		return nil, err
	}
	registry.RLock()
	defer registry.RUnlock()
	return registry.models[canon], nil
}

// RegisteredMechanisms returns discovery metadata for every registered
// mechanism, sorted by name.
func RegisteredMechanisms() []MechanismInfo {
	registry.RLock()
	names := make([]string, 0, len(registry.models))
	for n := range registry.models {
		names = append(names, n)
	}
	registry.RUnlock()
	sort.Strings(names)
	out := make([]MechanismInfo, 0, len(names))
	for _, n := range names {
		registry.RLock()
		m := registry.models[n]
		registry.RUnlock()
		_, series := m.(SeriesMechanism)
		_, def := legacySlots[n]
		out = append(out, MechanismInfo{
			Name:        n,
			Description: m.Description(),
			Params:      m.ParamsDescription(),
			Scope:       m.Scope().String(),
			Series:      series,
			Default:     def,
		})
	}
	return out
}

// Canonical names of the built-in mechanisms. The paper's four keep their
// fixed Breakdown slots; the post-2004 additions live in the Extra maps.
const (
	MechEM         = "em"
	MechSM         = "sm"
	MechTDDB       = "tddb"
	MechTC         = "tc"
	MechNBTI       = "nbti"
	MechHCI        = "hci"
	MechTCRainflow = "tc-rainflow"
)

// legacySlots maps canonical names of the paper's four onto their fixed
// Breakdown array indices.
var legacySlots = map[string]Mechanism{
	MechEM:   EM,
	MechSM:   SM,
	MechTDDB: TDDB,
	MechTC:   TC,
}

// LegacySlot returns the fixed Breakdown array index of one of the
// paper's four mechanisms, or false for name-keyed (Extra) mechanisms.
func LegacySlot(name string) (Mechanism, bool) {
	m, ok := legacySlots[name]
	return m, ok
}

// aliases maps accepted spellings onto canonical names (after
// lower-casing).
var aliases = map[string]string{
	"rainflow":    MechTCRainflow,
	"tc_rainflow": MechTCRainflow,
	"tcrainflow":  MechTCRainflow,
}

// canonicalName lower-cases and de-aliases one mechanism name.
func canonicalName(name string) (string, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if a, ok := aliases[n]; ok {
		n = a
	}
	if n == "" {
		return "", fmt.Errorf("core: empty mechanism name")
	}
	return n, nil
}

// DefaultMechanismNames returns the canonical names of the paper's four
// mechanisms in sorted order — the set evaluated when a request names
// none.
func DefaultMechanismNames() []string {
	return []string{MechEM, MechSM, MechTC, MechTDDB}
}

// CanonicalMechanismNames resolves aliases, lower-cases, sorts, and
// de-duplicates a mechanism-name list, returning nil when the result is
// the default set (or the input is empty). The nil-for-default rule is
// what keeps content-addressed keys of unspecified requests byte-identical
// to releases that predate mechanism selection, and the sort makes
// differently-ordered spellings of one set hash identically. Unknown
// names are rejected here so a typo fails before any simulation work.
func CanonicalMechanismNames(names []string) ([]string, error) {
	if len(names) == 0 {
		return nil, nil
	}
	seen := make(map[string]bool, len(names))
	out := make([]string, 0, len(names))
	registry.RLock()
	defer registry.RUnlock()
	for _, raw := range names {
		n, err := canonicalName(raw)
		if err != nil {
			return nil, err
		}
		if _, ok := registry.models[n]; !ok {
			return nil, fmt.Errorf("core: unknown mechanism %q", raw)
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	if isDefaultNames(out) {
		return nil, nil
	}
	return out, nil
}

// isDefaultNames reports whether a sorted, de-duplicated name list equals
// the default set.
func isDefaultNames(sorted []string) bool {
	def := DefaultMechanismNames()
	if len(sorted) != len(def) {
		return false
	}
	for i := range def {
		if sorted[i] != def[i] {
			return false
		}
	}
	return true
}

// setEntry is one resolved member of a MechanismSet: the model plus its
// fixed Breakdown slot (−1 for name-keyed Extra mechanisms).
type setEntry struct {
	model MechanismModel
	slot  int
}

// MechanismSet is an ordered, resolved selection of failure mechanisms —
// the unit the evaluator, qualification, and lifetime models operate
// over. Resolve it once per study from the canonical name list; the zero
// value is invalid (use DefaultMechanismSet).
type MechanismSet struct {
	entries []setEntry
	names   []string
	series  []SeriesMechanism
}

// ResolveMechanismSet resolves a name list against the registry. A nil or
// empty list resolves to the paper's four. The evaluation order is the
// canonical (sorted) name order; per-mechanism rates are independent, so
// order never affects numbers, only deterministic iteration.
func ResolveMechanismSet(names []string) (MechanismSet, error) {
	canon, err := CanonicalMechanismNames(names)
	if err != nil {
		return MechanismSet{}, err
	}
	if canon == nil {
		canon = DefaultMechanismNames()
	}
	set := MechanismSet{
		entries: make([]setEntry, 0, len(canon)),
		names:   canon,
	}
	registry.RLock()
	defer registry.RUnlock()
	for _, n := range canon {
		m, ok := registry.models[n]
		if !ok {
			return MechanismSet{}, fmt.Errorf("core: unknown mechanism %q", n)
		}
		slot := -1
		if s, ok := legacySlots[n]; ok {
			slot = int(s)
		}
		set.entries = append(set.entries, setEntry{model: m, slot: slot})
		if sm, ok := m.(SeriesMechanism); ok {
			set.series = append(set.series, sm)
		}
	}
	return set, nil
}

// DefaultMechanismSet returns the paper's four mechanisms resolved.
func DefaultMechanismSet() MechanismSet {
	set, err := ResolveMechanismSet(nil)
	if err != nil {
		panic(err) // built-ins are always registered
	}
	return set
}

// Names returns the canonical names in evaluation order. The returned
// slice is shared; callers must not mutate it.
func (s MechanismSet) Names() []string { return s.names }

// IsDefault reports whether the set is exactly the paper's four.
func (s MechanismSet) IsDefault() bool { return isDefaultNames(s.names) }

// Series returns the members that need whole-series evaluation.
func (s MechanismSet) Series() []SeriesMechanism { return s.series }

// Contains reports membership by canonical name.
func (s MechanismSet) Contains(name string) bool {
	for _, n := range s.names {
		if n == name {
			return true
		}
	}
	return false
}
