package core

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/ramp-sim/ramp/internal/stats"
)

// drawSorted draws n samples from d with the given mean and returns them
// sorted, plus the sample mean.
func drawSorted(t *testing.T, d Distribution, mean float64, n int, seed int64) ([]float64, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	var sum float64
	for i := range xs {
		xs[i] = d.Sample(rng, mean)
		sum += xs[i]
	}
	sort.Float64s(xs)
	return xs, sum / float64(n)
}

type quantiler interface {
	Quantile(mean, p float64) float64
}

// checkSampler bounds the seeded sample mean and P10/P50/P90 against the
// distribution's closed-form values.
func checkSampler(t *testing.T, d Distribution, mean float64, seed int64) {
	t.Helper()
	const n = 200_000
	xs, sampleMean := drawSorted(t, d, mean, n, seed)
	if relErr := math.Abs(sampleMean-mean) / mean; relErr > 0.01 {
		t.Errorf("%s: sample mean %v vs requested mean %v (rel err %.4f > 1%%)",
			d.Name(), sampleMean, mean, relErr)
	}
	q := d.(quantiler)
	for _, p := range []float64{0.10, 0.50, 0.90} {
		want := q.Quantile(mean, p)
		got, err := stats.PercentileSorted(xs, p*100)
		if err != nil {
			t.Fatal(err)
		}
		if relErr := math.Abs(got-want) / want; relErr > 0.02 {
			t.Errorf("%s: P%.0f sample %v vs analytic %v (rel err %.4f > 2%%)",
				d.Name(), p*100, got, want, relErr)
		}
	}
}

func TestWeibullSamplesMatchAnalytic(t *testing.T) {
	checkSampler(t, Weibull{Shape: 1.8}, 1000, 101)
	checkSampler(t, Weibull{Shape: 2.35}, 7e5, 102)
}

func TestLognormalSamplesMatchAnalytic(t *testing.T) {
	checkSampler(t, Lognormal{Sigma: 0.5}, 1000, 103)
	checkSampler(t, Lognormal{Sigma: 0.3}, 4e4, 104)
}

func TestExponentialSamplesMatchAnalytic(t *testing.T) {
	checkSampler(t, Exponential{}, 1000, 105)
}

func TestExponentialIsShapeOneWeibull(t *testing.T) {
	// Closed form: the β=1 Weibull quantile function equals the
	// exponential's at every p (Γ(2)=1 so scale=mean).
	w := Weibull{Shape: 1}
	e := Exponential{}
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		we := w.Quantile(1234.5, p)
		ee := e.Quantile(1234.5, p)
		if math.Abs(we-ee)/ee > 1e-12 {
			t.Errorf("p=%v: weibull(1) quantile %v != exponential quantile %v", p, we, ee)
		}
	}
	// Sampled: both samplers reproduce the same distribution (the draw
	// paths differ — ExpFloat64 ziggurat vs inverse CDF — so compare
	// quantile estimates, not streams).
	const mean = 500.0
	ws, _ := drawSorted(t, w, mean, 200_000, 201)
	es, _ := drawSorted(t, e, mean, 200_000, 202)
	for _, p := range []float64{10, 50, 90} {
		wq, _ := stats.PercentileSorted(ws, p)
		eq, _ := stats.PercentileSorted(es, p)
		if relErr := math.Abs(wq-eq) / eq; relErr > 0.02 {
			t.Errorf("P%v: weibull(1) %v vs exponential %v (rel err %.4f)", p, wq, eq, relErr)
		}
	}
}

func TestLifetimeModelValidateRejectsBadParameters(t *testing.T) {
	cases := []struct {
		name string
		dist Distribution
		frag string
	}{
		{"weibull zero shape", Weibull{Shape: 0}, "weibull shape must be a positive finite number"},
		{"weibull negative shape", Weibull{Shape: -2}, "weibull shape must be a positive finite number"},
		{"weibull NaN shape", Weibull{Shape: math.NaN()}, "weibull shape"},
		{"lognormal zero sigma", Lognormal{Sigma: 0}, "lognormal sigma must be a positive finite number"},
		{"lognormal negative sigma", Lognormal{Sigma: -0.5}, "lognormal sigma must be a positive finite number"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := SOFRLifetimes()
			m.Dist[TDDB] = c.dist
			err := m.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %#v", c.dist)
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not mention %q", err, c.frag)
			}
			if !strings.Contains(err.Error(), TDDB.String()) {
				t.Errorf("error %q does not name the mechanism %v", err, TDDB)
			}
		})
	}
	var empty LifetimeModel
	if err := empty.Validate(); err == nil {
		t.Error("Validate accepted nil distributions")
	}
	if err := SOFRLifetimes().Validate(); err != nil {
		t.Errorf("SOFR model invalid: %v", err)
	}
	if err := WearOutLifetimes().Validate(); err != nil {
		t.Errorf("wear-out model invalid: %v", err)
	}
}

func TestLifetimeModelByName(t *testing.T) {
	for _, name := range []string{"sofr", "exponential"} {
		m, err := LifetimeModelByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if _, ok := m.Dist[EM].(Exponential); !ok {
			t.Errorf("%q: EM dist = %T, want Exponential", name, m.Dist[EM])
		}
	}
	for _, name := range []string{"wearout", "wear-out"} {
		m, err := LifetimeModelByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if _, ok := m.Dist[EM].(Lognormal); !ok {
			t.Errorf("%q: EM dist = %T, want Lognormal", name, m.Dist[EM])
		}
	}
	if _, err := LifetimeModelByName("gamma"); err == nil {
		t.Error("unknown model accepted")
	}
	if got := CanonicalModelName("exponential"); got != ModelSOFR {
		t.Errorf("CanonicalModelName(exponential) = %q", got)
	}
	if got := CanonicalModelName("wear-out"); got != ModelWearOut {
		t.Errorf("CanonicalModelName(wear-out) = %q", got)
	}
	if got := CanonicalModelName("custom"); got != "custom" {
		t.Errorf("CanonicalModelName(custom) = %q", got)
	}
}

func TestReplicaSeedProperties(t *testing.T) {
	// Determinism.
	if ReplicaSeed(42, 3, 7) != ReplicaSeed(42, 3, 7) {
		t.Fatal("ReplicaSeed not deterministic")
	}
	// Distinctness across a grid of (root, cell, replica) triples.
	seen := map[uint64][3]uint64{}
	for _, root := range []int64{0, 1, 42, -1} {
		for cell := uint64(0); cell < 8; cell++ {
			for rep := uint64(0); rep < 64; rep++ {
				s := ReplicaSeed(root, cell, rep)
				key := [3]uint64{uint64(root), cell, rep}
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %v and %v both map to %#x", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

func TestReplicaRandStreamsAreIndependentAndReproducible(t *testing.T) {
	a, b := NewReplicaRand(), NewReplicaRand()
	// Same stream → identical draws, regardless of what the generator was
	// used for before reseeding.
	a.Seed(1, 2, 3)
	want := []float64{a.Rand().Float64(), a.Rand().NormFloat64(), a.Rand().ExpFloat64()}
	b.Seed(9, 9, 9)
	b.Rand().Float64()
	b.Seed(1, 2, 3)
	got := []float64{b.Rand().Float64(), b.Rand().NormFloat64(), b.Rand().ExpFloat64()}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("draw %d: %v != %v after reseed", i, got[i], want[i])
		}
	}
	// Adjacent replicas decorrelate.
	a.Seed(1, 2, 4)
	if x := a.Rand().Float64(); x == want[0] {
		t.Error("adjacent replica produced identical first draw")
	}
}

func TestLifetimeSamplerMatchesSerialMonteCarlo(t *testing.T) {
	// The serial entry point is now a thin loop over LifetimeSampler with a
	// shared stream; a sampler driven by the same stream must reproduce it.
	var b Breakdown
	b.ByStructMech[0][EM] = 1000
	b.ByStructMech[1][TDDB] = 500
	b.ByStructMech[2][TC] = 250
	model := WearOutLifetimes()
	const samples, seed = 512, 77

	est, err := MonteCarloLifetime(b, model, samples, seed)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := NewLifetimeSampler(b, model)
	if err != nil {
		t.Fatal(err)
	}
	if sampler.Cells() != 3 {
		t.Fatalf("Cells() = %d, want 3", sampler.Cells())
	}
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < samples; i++ {
		sum += sampler.Sample(rng)
	}
	if mean := sum / samples; math.Abs(mean-est.MTTFYears) > 1e-12 {
		t.Errorf("sampler mean %v != MonteCarloLifetime mean %v", mean, est.MTTFYears)
	}
}

func TestNewLifetimeSamplerErrors(t *testing.T) {
	var empty Breakdown
	if _, err := NewLifetimeSampler(empty, SOFRLifetimes()); err == nil {
		t.Error("all-zero breakdown accepted")
	}
	var b Breakdown
	b.ByStructMech[0][EM] = 10
	bad := SOFRLifetimes()
	bad.Dist[SM] = Weibull{Shape: -1}
	if _, err := NewLifetimeSampler(b, bad); err == nil {
		t.Error("invalid model accepted")
	}
}
