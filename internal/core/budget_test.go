package core

import (
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/floorplan"
	"github.com/ramp-sim/ramp/internal/scaling"
)

func budgetEvaluator(t *testing.T, techName string) *Evaluator {
	t.Helper()
	tech, err := scaling.ByName(techName)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.POWER4().Scaled(tech.RelArea)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(DefaultParams(), ReferenceConstants(), tech, fp.Areas())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTempForBudgetRoundTrips(t *testing.T) {
	e := budgetEvaluator(t, "180nm")
	af := [7]float64{0.15, 0.24, 0.15, 0.23, 0.13, 0.19, 0.06}
	tK, err := e.TempForBudget(af, 1.3, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if tK < 330 || tK > 380 {
		t.Fatalf("4000-FIT envelope at %v K, implausible for 180nm", tK)
	}
	// Round trip: evaluating at the solved temperature reproduces the
	// budget.
	var temps [7]float64
	for i := range temps {
		temps[i] = tK
	}
	fit := e.Instant(af, temps, 1.3, tK).Total()
	if math.Abs(fit/4000-1) > 1e-6 {
		t.Fatalf("FIT at envelope = %v, want 4000", fit)
	}
}

func TestTempForBudgetMonotoneInBudget(t *testing.T) {
	e := budgetEvaluator(t, "65nm (1.0V)")
	af := [7]float64{0.15, 0.24, 0.15, 0.23, 0.13, 0.19, 0.06}
	tight, err := e.TempForBudget(af, 1.0, 8000)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := e.TempForBudget(af, 1.0, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if loose <= tight {
		t.Fatalf("larger budget must allow a hotter envelope: %v vs %v", loose, tight)
	}
}

func TestScaledNodeHasTighterEnvelope(t *testing.T) {
	// The same FIT budget buys less temperature headroom at 65nm than at
	// 180nm — the scaling penalty expressed as a thermal envelope.
	af := [7]float64{0.15, 0.24, 0.15, 0.23, 0.13, 0.19, 0.06}
	t180, err := budgetEvaluator(t, "180nm").TempForBudget(af, 1.3, 6000)
	if err != nil {
		t.Fatal(err)
	}
	t65, err := budgetEvaluator(t, "65nm (1.0V)").TempForBudget(af, 1.0, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if t65 >= t180 {
		t.Fatalf("65nm envelope %v K not tighter than 180nm %v K", t65, t180)
	}
}

func TestTempForBudgetErrors(t *testing.T) {
	e := budgetEvaluator(t, "180nm")
	af := [7]float64{0.15, 0.24, 0.15, 0.23, 0.13, 0.19, 0.06}
	if _, err := e.TempForBudget(af, 1.3, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := e.TempForBudget(af, 1.3, 1); err == nil {
		t.Error("unreachably tight budget accepted")
	}
	if _, err := e.TempForBudget(af, 1.3, 1e12); err == nil {
		t.Error("non-binding budget accepted")
	}
}
