package core

import (
	"fmt"

	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/phys"
	"github.com/ramp-sim/ramp/internal/scaling"
)

// Constants holds the per-mechanism proportionality constants that anchor
// the relative rates of the mechanism models to absolute FIT values. They
// come out of the reliability-qualification calibration (§4.4) and are
// reused unchanged at every technology point.
type Constants struct {
	K [NumMechanisms]float64
}

// UnitConstants returns all-ones constants, used during calibration.
func UnitConstants() Constants {
	var c Constants
	for i := range c.K {
		c.K[i] = 1
	}
	return c
}

// ReferenceConstants returns the qualification constants solved by the
// §4.4 calibration with the default configuration (Table 2 machine, all 16
// benchmarks, 2M instructions each): suite-average 1000 FIT per mechanism
// at 180nm. Use these for absolute FIT values when evaluating single
// applications without re-running the full study; any change to the
// machine, power, thermal, or mechanism parameters requires re-calibration
// through RunStudy.
func ReferenceConstants() Constants {
	return Constants{K: [NumMechanisms]float64{
		EM:   4.055501e+15,
		SM:   3.621072e+10,
		TDDB: 9.648252e+06,
		TC:   3.268192e-01,
	}}
}

// Validate checks that all constants are positive.
func (c Constants) Validate() error {
	for i, k := range c.K {
		if k <= 0 {
			return fmt.Errorf("core: constant for %v must be positive, got %v", Mechanism(i), k)
		}
	}
	return nil
}

// Calibrate solves the proportionality constants from the suite-average
// raw (unit-constant) FIT of each mechanism at the 180nm base point, such
// that each mechanism contributes perMechanismFIT on average — the paper
// uses 1000 FIT per mechanism for a 4000-FIT, ≈30-year processor (§4.4).
func Calibrate(rawSuiteAvg [NumMechanisms]float64, perMechanismFIT float64) (Constants, error) {
	if perMechanismFIT <= 0 {
		return Constants{}, fmt.Errorf("core: target FIT must be positive, got %v", perMechanismFIT)
	}
	var c Constants
	for i, raw := range rawSuiteAvg {
		if raw <= 0 {
			return Constants{}, fmt.Errorf("core: raw suite-average FIT for %v is %v; cannot calibrate",
				Mechanism(i), raw)
		}
		c.K[i] = perMechanismFIT / raw
	}
	return c, nil
}

// Breakdown is a full FIT decomposition: one rate per structure per
// mechanism. The package-level thermal-cycling FIT is distributed across
// structures by die-area fraction so that both views sum to the same
// processor total (SOFR).
type Breakdown struct {
	ByStructMech [microarch.NumStructures][NumMechanisms]float64
}

// Total returns the processor FIT: the SOFR sum over all structures and
// mechanisms.
func (b Breakdown) Total() float64 {
	var sum float64
	for s := range b.ByStructMech {
		for m := range b.ByStructMech[s] {
			sum += b.ByStructMech[s][m]
		}
	}
	return sum
}

// ByMechanism returns per-mechanism FIT summed over structures.
func (b Breakdown) ByMechanism() [NumMechanisms]float64 {
	var out [NumMechanisms]float64
	for s := range b.ByStructMech {
		for m := range b.ByStructMech[s] {
			out[m] += b.ByStructMech[s][m]
		}
	}
	return out
}

// ByStructure returns per-structure FIT summed over mechanisms.
func (b Breakdown) ByStructure() [microarch.NumStructures]float64 {
	var out [microarch.NumStructures]float64
	for s := range b.ByStructMech {
		for m := range b.ByStructMech[s] {
			out[s] += b.ByStructMech[s][m]
		}
	}
	return out
}

// MTTFYears returns the processor mean time to failure implied by the
// SOFR total.
func (b Breakdown) MTTFYears() float64 {
	return phys.MTTFYearsFromFIT(b.Total())
}

// Calibrated returns the breakdown with each mechanism's rates multiplied
// by its proportionality constant — converting raw model output into
// absolute FIT values.
func (b Breakdown) Calibrated(c Constants) Breakdown {
	var out Breakdown
	for s := range b.ByStructMech {
		for m := range b.ByStructMech[s] {
			out.ByStructMech[s][m] = b.ByStructMech[s][m] * c.K[m]
		}
	}
	return out
}

// scale returns the breakdown multiplied by a scalar.
func (b Breakdown) scale(f float64) Breakdown {
	var out Breakdown
	for s := range b.ByStructMech {
		for m := range b.ByStructMech[s] {
			out.ByStructMech[s][m] = b.ByStructMech[s][m] * f
		}
	}
	return out
}

// add accumulates o (weighted by w) into b.
func (b *Breakdown) add(o Breakdown, w float64) {
	for s := range b.ByStructMech {
		for m := range b.ByStructMech[s] {
			b.ByStructMech[s][m] += o.ByStructMech[s][m] * w
		}
	}
}

// Evaluator computes instantaneous failure rates for one technology point
// and accumulates their time average over an application run, implementing
// the paper's 1µs-interval running-average methodology (§2, §4.4).
type Evaluator struct {
	params   Params
	consts   Constants
	tech     scaling.Technology
	areaFrac [microarch.NumStructures]float64

	accTime float64
	accSum  Breakdown
}

// NewEvaluator builds an evaluator. areasMm2 are the per-structure areas
// (any consistent scale; only the fractions matter).
func NewEvaluator(params Params, consts Constants, tech scaling.Technology, areasMm2 []float64) (*Evaluator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := consts.Validate(); err != nil {
		return nil, err
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if len(areasMm2) != microarch.NumStructures {
		return nil, fmt.Errorf("core: got %d areas, want %d", len(areasMm2), microarch.NumStructures)
	}
	var total float64
	for _, a := range areasMm2 {
		if a <= 0 {
			return nil, fmt.Errorf("core: structure areas must be positive")
		}
		total += a
	}
	e := &Evaluator{params: params, consts: consts, tech: tech}
	for i, a := range areasMm2 {
		e.areaFrac[i] = a / total
	}
	return e, nil
}

// Instant evaluates the failure-rate breakdown at one operating point:
// per-structure activity factors and temperatures, the instantaneous
// supply voltage, and the area-weighted average die temperature (for the
// package thermal-cycling model).
func (e *Evaluator) Instant(af, tempK [microarch.NumStructures]float64, vddV, dieAvgK float64) Breakdown {
	var b Breakdown
	tcTotal := e.consts.K[TC] * e.params.TCRate(dieAvgK)
	for s := 0; s < microarch.NumStructures; s++ {
		frac := e.areaFrac[s]
		b.ByStructMech[s][EM] = e.consts.K[EM] * frac * e.params.EMRate(af[s], tempK[s], e.tech)
		b.ByStructMech[s][SM] = e.consts.K[SM] * frac * e.params.SMRate(tempK[s])
		b.ByStructMech[s][TDDB] = e.consts.K[TDDB] * frac * e.params.TDDBRate(vddV, tempK[s], e.tech)
		// The TC FIT is a single package-level rate; distribute it by die
		// area so per-structure and per-mechanism views stay consistent.
		b.ByStructMech[s][TC] = tcTotal * frac
	}
	return b
}

// Accumulate folds an instantaneous breakdown held for the given duration
// into the running average. Duration units are arbitrary but must be
// consistent across calls.
func (e *Evaluator) Accumulate(b Breakdown, duration float64) {
	if duration <= 0 {
		return
	}
	e.accSum.add(b, duration)
	e.accTime += duration
}

// Average returns the time-weighted average breakdown accumulated so far —
// the application's effective failure-rate decomposition.
func (e *Evaluator) Average() Breakdown {
	if e.accTime == 0 {
		return Breakdown{}
	}
	return e.accSum.scale(1 / e.accTime)
}

// AccumulatedTime returns the total duration accumulated.
func (e *Evaluator) AccumulatedTime() float64 { return e.accTime }

// Reset clears the running average.
func (e *Evaluator) Reset() {
	e.accSum = Breakdown{}
	e.accTime = 0
}

// TempForBudget solves the inverse qualification question: the uniform
// structure temperature at which this evaluator's total FIT (for the given
// activity factors and supply voltage) reaches budgetFIT. Because every
// mechanism's rate grows with temperature in the operating range, the
// answer is found by bisection; it is the thermal envelope a runtime
// manager must keep the chip under to honour the budget. Returns an error
// if the budget is unreachable within [min, max] Kelvin.
func (e *Evaluator) TempForBudget(af [microarch.NumStructures]float64, vddV, budgetFIT float64) (float64, error) {
	if budgetFIT <= 0 {
		return 0, fmt.Errorf("core: budget must be positive, got %v", budgetFIT)
	}
	const minK, maxK = 320.0, 480.0
	fitAt := func(tK float64) float64 {
		var temps [microarch.NumStructures]float64
		for i := range temps {
			temps[i] = tK
		}
		return e.Instant(af, temps, vddV, tK).Total()
	}
	lo, hi := minK, maxK
	if fitAt(lo) > budgetFIT {
		return 0, fmt.Errorf("core: budget %v FIT unreachable: already %v FIT at %vK",
			budgetFIT, fitAt(lo), lo)
	}
	if fitAt(hi) < budgetFIT {
		return 0, fmt.Errorf("core: budget %v FIT not binding below %vK", budgetFIT, hi)
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if fitAt(mid) < budgetFIT {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Tech returns the evaluator's technology point.
func (e *Evaluator) Tech() scaling.Technology { return e.tech }

// Params returns the evaluator's mechanism constants.
func (e *Evaluator) Params() Params { return e.params }
