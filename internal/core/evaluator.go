package core

import (
	"fmt"
	"sort"

	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/phys"
	"github.com/ramp-sim/ramp/internal/scaling"
)

// Constants holds the per-mechanism proportionality constants that anchor
// the relative rates of the mechanism models to absolute FIT values. They
// come out of the reliability-qualification calibration (§4.4) and are
// reused unchanged at every technology point. The paper's four live in
// the fixed K array; mechanisms selected from the registry beyond them
// land in the name-keyed Extra map (omitted when empty, so default-set
// constants marshal byte-identically to pre-registry releases).
type Constants struct {
	K [NumMechanisms]float64
	// Extra holds constants of registry mechanisms outside the paper's
	// four, keyed by canonical mechanism name.
	Extra map[string]float64 `json:"Extra,omitempty"`
}

// UnitConstants returns all-ones constants, used during calibration.
func UnitConstants() Constants {
	var c Constants
	for i := range c.K {
		c.K[i] = 1
	}
	return c
}

// ExtraK returns the constant for a name-keyed mechanism, defaulting to 1
// (unit constant) when the mechanism was never calibrated.
func (c Constants) ExtraK(name string) float64 {
	if k, ok := c.Extra[name]; ok {
		return k
	}
	return 1
}

// ReferenceConstants returns the qualification constants solved by the
// §4.4 calibration with the default configuration (Table 2 machine, all 16
// benchmarks, 2M instructions each): suite-average 1000 FIT per mechanism
// at 180nm. Use these for absolute FIT values when evaluating single
// applications without re-running the full study; any change to the
// machine, power, thermal, or mechanism parameters requires re-calibration
// through RunStudy.
func ReferenceConstants() Constants {
	return Constants{K: [NumMechanisms]float64{
		EM:   4.055501e+15,
		SM:   3.621072e+10,
		TDDB: 9.648252e+06,
		TC:   3.268192e-01,
	}}
}

// Validate checks that all constants are positive.
func (c Constants) Validate() error {
	for i, k := range c.K {
		if k <= 0 {
			return fmt.Errorf("core: constant for %v must be positive, got %v", Mechanism(i), k)
		}
	}
	for name, k := range c.Extra {
		if k <= 0 {
			return fmt.Errorf("core: constant for %s must be positive, got %v", name, k)
		}
	}
	return nil
}

// Calibrate solves the proportionality constants from the suite-average
// raw (unit-constant) FIT of each mechanism at the 180nm base point, such
// that each mechanism contributes perMechanismFIT on average — the paper
// uses 1000 FIT per mechanism for a 4000-FIT, ≈30-year processor (§4.4).
//
// Calibrate covers only the paper's four fixed-slot mechanisms; studies
// over registry-selected sets use CalibrateSet.
func Calibrate(rawSuiteAvg [NumMechanisms]float64, perMechanismFIT float64) (Constants, error) {
	if perMechanismFIT <= 0 {
		return Constants{}, fmt.Errorf("core: target FIT must be positive, got %v", perMechanismFIT)
	}
	var c Constants
	for i, raw := range rawSuiteAvg {
		if raw <= 0 {
			return Constants{}, fmt.Errorf("core: raw suite-average FIT for %v is %v; cannot calibrate",
				Mechanism(i), raw)
		}
		c.K[i] = perMechanismFIT / raw
	}
	return c, nil
}

// CalibrateSet solves the proportionality constants for an arbitrary
// mechanism set: each named mechanism's suite-average raw FIT is anchored
// to perMechanismFIT. Fixed-slot mechanisms land in K (unselected slots
// keep the neutral unit constant — their raw rates are zero everywhere,
// so the value never reaches a number); name-keyed mechanisms land in
// Extra. For the default four-mechanism set the arithmetic — one division
// per mechanism — is identical to Calibrate, so the solved constants are
// bit-identical to pre-registry releases.
func CalibrateSet(names []string, rawSuiteAvg map[string]float64, perMechanismFIT float64) (Constants, error) {
	if perMechanismFIT <= 0 {
		return Constants{}, fmt.Errorf("core: target FIT must be positive, got %v", perMechanismFIT)
	}
	c := UnitConstants()
	for _, name := range names {
		raw := rawSuiteAvg[name]
		if raw <= 0 {
			return Constants{}, fmt.Errorf("core: raw suite-average FIT for %s is %v; cannot calibrate",
				name, raw)
		}
		k := perMechanismFIT / raw
		if slot, ok := LegacySlot(name); ok {
			c.K[slot] = k
		} else {
			if c.Extra == nil {
				c.Extra = make(map[string]float64)
			}
			c.Extra[name] = k
		}
	}
	return c, nil
}

// Breakdown is a full FIT decomposition: one rate per structure per
// mechanism. The package-level thermal-cycling FIT is distributed across
// structures by die-area fraction so that both views sum to the same
// processor total (SOFR).
//
// The paper's four mechanisms occupy the fixed ByStructMech array;
// registry mechanisms beyond them occupy the name-keyed Extra map. A
// default-set breakdown has a nil Extra and marshals byte-identically to
// pre-registry releases (cached artifacts included). The name-keyed
// FITByName view is the primary result shape; ByMechanism remains as the
// fixed-array compatibility accessor for the default four.
type Breakdown struct {
	ByStructMech [microarch.NumStructures][NumMechanisms]float64
	// Extra holds per-structure rates of registry mechanisms outside the
	// paper's four, keyed by canonical mechanism name.
	Extra map[string][microarch.NumStructures]float64 `json:"Extra,omitempty"`
}

// Total returns the processor FIT: the SOFR sum over all structures and
// mechanisms (name-keyed mechanisms included). Extra entries accumulate
// in sorted-name order — float addition is order-sensitive, and map
// iteration order would otherwise make totals vary between runs.
func (b Breakdown) Total() float64 {
	var sum float64
	for s := range b.ByStructMech {
		for m := range b.ByStructMech[s] {
			sum += b.ByStructMech[s][m]
		}
	}
	for _, name := range b.sortedExtraNames() {
		for _, v := range b.Extra[name] {
			sum += v
		}
	}
	return sum
}

// sortedExtraNames returns the Extra keys in sorted order, the canonical
// iteration order for any float accumulation over name-keyed mechanisms.
func (b Breakdown) sortedExtraNames() []string {
	if len(b.Extra) == 0 {
		return nil
	}
	names := make([]string, 0, len(b.Extra))
	for name := range b.Extra {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ByMechanism returns per-mechanism FIT summed over structures.
//
// Deprecated: ByMechanism covers only the paper's four fixed-slot
// mechanisms; name-keyed mechanisms are invisible to it. Use FITByName
// for the complete decomposition.
func (b Breakdown) ByMechanism() [NumMechanisms]float64 {
	var out [NumMechanisms]float64
	for s := range b.ByStructMech {
		for m := range b.ByStructMech[s] {
			out[m] += b.ByStructMech[s][m]
		}
	}
	return out
}

// FITByName returns the per-mechanism FIT summed over structures, keyed
// by canonical mechanism name — the primary decomposition view, covering
// fixed-slot and name-keyed mechanisms alike. Zero-rate default
// mechanisms are included (so the default view always lists the paper's
// four); zero-valued Extra entries are preserved as reported.
func (b Breakdown) FITByName() map[string]float64 {
	mech := b.ByMechanism()
	out := make(map[string]float64, NumMechanisms+len(b.Extra))
	for m := 0; m < NumMechanisms; m++ {
		out[mechanismKeyName(Mechanism(m))] = mech[m]
	}
	for name, arr := range b.Extra {
		var sum float64
		for _, v := range arr {
			sum += v
		}
		out[name] = sum
	}
	return out
}

// MechanismFIT returns one mechanism's FIT summed over structures, by
// canonical name; unknown names return 0.
func (b Breakdown) MechanismFIT(name string) float64 {
	if slot, ok := LegacySlot(name); ok {
		var sum float64
		for s := range b.ByStructMech {
			sum += b.ByStructMech[s][slot]
		}
		return sum
	}
	var sum float64
	for _, v := range b.Extra[name] {
		sum += v
	}
	return sum
}

// mechanismKeyName maps a fixed slot onto its canonical registry name.
func mechanismKeyName(m Mechanism) string {
	switch m {
	case EM:
		return MechEM
	case SM:
		return MechSM
	case TDDB:
		return MechTDDB
	case TC:
		return MechTC
	}
	return m.String()
}

// ByStructure returns per-structure FIT summed over mechanisms
// (name-keyed mechanisms included, accumulated in sorted-name order for
// run-to-run bit identity).
func (b Breakdown) ByStructure() [microarch.NumStructures]float64 {
	var out [microarch.NumStructures]float64
	for s := range b.ByStructMech {
		for m := range b.ByStructMech[s] {
			out[s] += b.ByStructMech[s][m]
		}
	}
	for _, name := range b.sortedExtraNames() {
		for s, v := range b.Extra[name] {
			out[s] += v
		}
	}
	return out
}

// MTTFYears returns the processor mean time to failure implied by the
// SOFR total.
func (b Breakdown) MTTFYears() float64 {
	return phys.MTTFYearsFromFIT(b.Total())
}

// Equal reports exact (bitwise) equality of two breakdowns, treating nil
// and empty Extra maps alike. Breakdown stopped being ==-comparable when
// it gained the Extra map; use this instead.
func (b Breakdown) Equal(o Breakdown) bool {
	if b.ByStructMech != o.ByStructMech {
		return false
	}
	if len(b.Extra) != len(o.Extra) {
		return false
	}
	for name, arr := range b.Extra {
		oarr, ok := o.Extra[name]
		if !ok || arr != oarr {
			return false
		}
	}
	return true
}

// Calibrated returns the breakdown with each mechanism's rates multiplied
// by its proportionality constant — converting raw model output into
// absolute FIT values.
func (b Breakdown) Calibrated(c Constants) Breakdown {
	var out Breakdown
	for s := range b.ByStructMech {
		for m := range b.ByStructMech[s] {
			out.ByStructMech[s][m] = b.ByStructMech[s][m] * c.K[m]
		}
	}
	for name, arr := range b.Extra {
		k := c.ExtraK(name)
		var scaled [microarch.NumStructures]float64
		for s, v := range arr {
			scaled[s] = v * k
		}
		out.setExtra(name, scaled)
	}
	return out
}

// scale returns the breakdown multiplied by a scalar.
func (b Breakdown) scale(f float64) Breakdown {
	var out Breakdown
	for s := range b.ByStructMech {
		for m := range b.ByStructMech[s] {
			out.ByStructMech[s][m] = b.ByStructMech[s][m] * f
		}
	}
	for name, arr := range b.Extra {
		var scaled [microarch.NumStructures]float64
		for s, v := range arr {
			scaled[s] = v * f
		}
		out.setExtra(name, scaled)
	}
	return out
}

// add accumulates o (weighted by w) into b.
func (b *Breakdown) add(o Breakdown, w float64) {
	for s := range b.ByStructMech {
		for m := range b.ByStructMech[s] {
			b.ByStructMech[s][m] += o.ByStructMech[s][m] * w
		}
	}
	for name, arr := range o.Extra {
		acc := b.Extra[name]
		for s, v := range arr {
			acc[s] += v * w
		}
		b.setExtra(name, acc)
	}
}

// setExtra stores one name-keyed mechanism's per-structure rates,
// allocating the map on first use.
func (b *Breakdown) setExtra(name string, arr [microarch.NumStructures]float64) {
	if b.Extra == nil {
		b.Extra = make(map[string][microarch.NumStructures]float64)
	}
	b.Extra[name] = arr
}

// Evaluator computes instantaneous failure rates for one technology point
// and accumulates their time average over an application run, implementing
// the paper's 1µs-interval running-average methodology (§2, §4.4). The
// mechanism set it evaluates comes from the registry; NewEvaluator uses
// the paper's four, NewEvaluatorForSet any resolved selection.
type Evaluator struct {
	params   Params
	consts   Constants
	tech     scaling.Technology
	areaFrac [microarch.NumStructures]float64
	set      MechanismSet

	accTime float64
	accSum  Breakdown
	// constRates holds series-mechanism rates (constant over the run,
	// already multiplied by their calibration constants) folded into
	// Average by area fraction.
	constRates map[string]float64
}

// NewEvaluator builds an evaluator over the paper's four mechanisms.
// areasMm2 are the per-structure areas (any consistent scale; only the
// fractions matter).
func NewEvaluator(params Params, consts Constants, tech scaling.Technology, areasMm2 []float64) (*Evaluator, error) {
	return NewEvaluatorForSet(params, consts, tech, areasMm2, DefaultMechanismSet())
}

// NewEvaluatorForSet builds an evaluator over a resolved mechanism set.
func NewEvaluatorForSet(params Params, consts Constants, tech scaling.Technology,
	areasMm2 []float64, set MechanismSet) (*Evaluator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := consts.Validate(); err != nil {
		return nil, err
	}
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if len(set.entries) == 0 {
		return nil, fmt.Errorf("core: empty mechanism set")
	}
	if len(areasMm2) != microarch.NumStructures {
		return nil, fmt.Errorf("core: got %d areas, want %d", len(areasMm2), microarch.NumStructures)
	}
	var total float64
	for _, a := range areasMm2 {
		if a <= 0 {
			return nil, fmt.Errorf("core: structure areas must be positive")
		}
		total += a
	}
	e := &Evaluator{params: params, consts: consts, tech: tech, set: set}
	for i, a := range areasMm2 {
		e.areaFrac[i] = a / total
	}
	return e, nil
}

// kFor returns the calibration constant of one set entry.
func (e *Evaluator) kFor(en setEntry) float64 {
	if en.slot >= 0 {
		return e.consts.K[en.slot]
	}
	return e.consts.ExtraK(en.model.Name())
}

// Instant evaluates the failure-rate breakdown at one operating point:
// per-structure activity factors and temperatures, the instantaneous
// supply voltage, and the area-weighted average die temperature (for
// package-scope mechanisms). Each selected mechanism contributes through
// its registered model; for the default set the per-cell arithmetic —
// (K·frac)·rate for structure scope, (K·rate)·frac for package scope —
// is exactly the pre-registry expression, so results are bit-identical.
// Series-only mechanisms (tc-rainflow) contribute 0 here.
func (e *Evaluator) Instant(af, tempK [microarch.NumStructures]float64, vddV, dieAvgK float64) Breakdown {
	var b Breakdown
	for _, en := range e.set.entries {
		switch en.model.Scope() {
		case ScopePackage:
			// A package-scope FIT is a single die-level rate; distribute
			// it by area so per-structure and per-mechanism views stay
			// consistent.
			total := e.kFor(en) * en.model.Rate(Sample{VddV: vddV, DieAvgTempK: dieAvgK}, e.params, e.tech)
			if en.slot >= 0 {
				for s := 0; s < microarch.NumStructures; s++ {
					b.ByStructMech[s][en.slot] = total * e.areaFrac[s]
				}
			} else if total != 0 {
				var arr [microarch.NumStructures]float64
				for s := 0; s < microarch.NumStructures; s++ {
					arr[s] = total * e.areaFrac[s]
				}
				b.setExtra(en.model.Name(), arr)
			}
		default:
			k := e.kFor(en)
			if en.slot >= 0 {
				for s := 0; s < microarch.NumStructures; s++ {
					b.ByStructMech[s][en.slot] = k * e.areaFrac[s] *
						en.model.Rate(Sample{AF: af[s], TempK: tempK[s], VddV: vddV, DieAvgTempK: dieAvgK}, e.params, e.tech)
				}
			} else {
				var arr [microarch.NumStructures]float64
				for s := 0; s < microarch.NumStructures; s++ {
					arr[s] = k * e.areaFrac[s] *
						en.model.Rate(Sample{AF: af[s], TempK: tempK[s], VddV: vddV, DieAvgTempK: dieAvgK}, e.params, e.tech)
				}
				b.setExtra(en.model.Name(), arr)
			}
		}
	}
	return b
}

// Accumulate folds an instantaneous breakdown held for the given duration
// into the running average. Duration units are arbitrary but must be
// consistent across calls.
func (e *Evaluator) Accumulate(b Breakdown, duration float64) {
	if duration <= 0 {
		return
	}
	e.accSum.add(b, duration)
	e.accTime += duration
}

// AddConstantRate folds a series-level mechanism's rate — constant over
// the run, e.g. the rainflow-counted thermal-cycling damage rate — into
// the breakdown Average returns. rate is the raw model output; it is
// multiplied by the mechanism's calibration constant and distributed
// across structures by area fraction (the time average of a constant is
// the constant, so this is exact, not an approximation).
func (e *Evaluator) AddConstantRate(name string, rate float64) {
	if e.constRates == nil {
		e.constRates = make(map[string]float64)
	}
	e.constRates[name] = e.consts.ExtraK(name) * rate
}

// Average returns the time-weighted average breakdown accumulated so far —
// the application's effective failure-rate decomposition, including any
// series-mechanism constant rates.
func (e *Evaluator) Average() Breakdown {
	var avg Breakdown
	if e.accTime != 0 {
		avg = e.accSum.scale(1 / e.accTime)
	}
	for name, rate := range e.constRates {
		var arr [microarch.NumStructures]float64
		for s := 0; s < microarch.NumStructures; s++ {
			arr[s] = rate * e.areaFrac[s]
		}
		if slot, ok := LegacySlot(name); ok {
			for s := 0; s < microarch.NumStructures; s++ {
				avg.ByStructMech[s][slot] += arr[s]
			}
		} else {
			avg.setExtra(name, arr)
		}
	}
	return avg
}

// AccumulatedTime returns the total duration accumulated.
func (e *Evaluator) AccumulatedTime() float64 { return e.accTime }

// Reset clears the running average.
func (e *Evaluator) Reset() {
	e.accSum = Breakdown{}
	e.accTime = 0
	e.constRates = nil
}

// TempForBudget solves the inverse qualification question: the uniform
// structure temperature at which this evaluator's total FIT (for the given
// activity factors and supply voltage) reaches budgetFIT. Because every
// mechanism's rate grows with temperature in the operating range, the
// answer is found by bisection; it is the thermal envelope a runtime
// manager must keep the chip under to honour the budget. Returns an error
// if the budget is unreachable within [min, max] Kelvin.
func (e *Evaluator) TempForBudget(af [microarch.NumStructures]float64, vddV, budgetFIT float64) (float64, error) {
	if budgetFIT <= 0 {
		return 0, fmt.Errorf("core: budget must be positive, got %v", budgetFIT)
	}
	const minK, maxK = 320.0, 480.0
	fitAt := func(tK float64) float64 {
		var temps [microarch.NumStructures]float64
		for i := range temps {
			temps[i] = tK
		}
		return e.Instant(af, temps, vddV, tK).Total()
	}
	lo, hi := minK, maxK
	if fitAt(lo) > budgetFIT {
		return 0, fmt.Errorf("core: budget %v FIT unreachable: already %v FIT at %vK",
			budgetFIT, fitAt(lo), lo)
	}
	if fitAt(hi) < budgetFIT {
		return 0, fmt.Errorf("core: budget %v FIT not binding below %vK", budgetFIT, hi)
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if fitAt(mid) < budgetFIT {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Tech returns the evaluator's technology point.
func (e *Evaluator) Tech() scaling.Technology { return e.tech }

// Params returns the evaluator's mechanism constants.
func (e *Evaluator) Params() Params { return e.params }

// Set returns the evaluator's resolved mechanism set.
func (e *Evaluator) Set() MechanismSet { return e.set }
