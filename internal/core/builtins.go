package core

import "github.com/ramp-sim/ramp/internal/scaling"

// The built-in mechanism models. The paper's four (em/sm/tddb/tc) wrap
// the Params rate functions the seed shipped with — the registry adds
// selection, not new numerics, and an unspecified request still evaluates
// exactly these four. nbti, hci, and tc-rainflow are the post-2004
// additions (see PAPERS.md and SNIPPETS.md snippets 2–3).

func init() {
	mustRegister(emModel{})
	mustRegister(smModel{})
	mustRegister(tddbModel{})
	mustRegister(tcModel{})
	mustRegister(nbtiModel{})
	mustRegister(hciModel{})
	mustRegister(tcRainflowModel{})
}

type emModel struct{}

func (emModel) Name() string { return MechEM }
func (emModel) Description() string {
	return "Electromigration: MTTF ∝ J^{-n}·e^{Ea/kT} with κ-geometry and J_max derating (§2, §3)"
}
func (emModel) ParamsDescription() string {
	return "EM.N current-density exponent (1.1), EM.ActivationEnergyEV (0.9), EM.GeomExponent wire-geometry exponent (1.7)"
}
func (emModel) Scope() MechanismScope { return ScopeStructure }
func (emModel) Rate(s Sample, p Params, tech scaling.Technology) float64 {
	return p.EMRate(s.AF, s.TempK, tech)
}

type smModel struct{}

func (smModel) Name() string { return MechSM }
func (smModel) Description() string {
	return "Stress migration: MTTF ∝ |T₀−T|^{-m}·e^{Ea/kT} (§2)"
}
func (smModel) ParamsDescription() string {
	return "SM.M stress exponent (2.5), SM.ActivationEnergyEV (0.9), SM.T0K deposition temperature (500)"
}
func (smModel) Scope() MechanismScope { return ScopeStructure }
func (smModel) Rate(s Sample, p Params, tech scaling.Technology) float64 {
	return p.SMRate(s.TempK)
}

type tddbModel struct{}

func (tddbModel) Name() string { return MechTDDB }
func (tddbModel) Description() string {
	return "Gate-oxide breakdown: Wu et al. voltage/temperature model with Eq. 5 technology scaling (§2, §3)"
}
func (tddbModel) ParamsDescription() string {
	return "TDDB.A/B voltage-acceleration fit (78, −0.081), TDDB.XEV/YEVK/ZEVPerK temperature fit, TDDB.ToxDecadeNm oxide-thinning decade (1.45), TDDB.VoltExponent (10.5), TDDB.AreaExponent (−1)"
}
func (tddbModel) Scope() MechanismScope { return ScopeStructure }
func (tddbModel) Rate(s Sample, p Params, tech scaling.Technology) float64 {
	return p.TDDBRate(s.VddV, s.TempK, tech)
}

type tcModel struct{}

func (tcModel) Name() string { return MechTC }
func (tcModel) Description() string {
	return "Thermal cycling (package): MTTF ∝ (T_avg−T_ambient)^{-q}, large power-on/off cycles (§2)"
}
func (tcModel) ParamsDescription() string {
	return "TC.Q Coffin-Manson exponent (2.35), TC.AmbientK ambient reference (318.15)"
}
func (tcModel) Scope() MechanismScope { return ScopePackage }
func (tcModel) Rate(s Sample, p Params, tech scaling.Technology) float64 {
	return p.TCRate(s.DieAvgTempK)
}

type nbtiModel struct{}

func (nbtiModel) Name() string { return MechNBTI }
func (nbtiModel) Description() string {
	return "NBTI aging: RAMP four-constant temperature term with oxide-field acceleration and activity recovery (post-2004)"
}
func (nbtiModel) ParamsDescription() string {
	return "NBTI.A/B/C/D temperature fit (1.6328, 0.07377, 0.01, −0.06852), NBTI.Beta time slope (0.3), NBTI.FieldExponent oxide-field acceleration (6), NBTI.RecoveryWeight dynamic-recovery relief (0.5)"
}
func (nbtiModel) Scope() MechanismScope { return ScopeStructure }
func (nbtiModel) Rate(s Sample, p Params, tech scaling.Technology) float64 {
	return p.NBTIRate(s.AF, s.TempK, s.VddV, tech)
}

type hciModel struct{}

func (hciModel) Name() string { return MechHCI }
func (hciModel) Description() string {
	return "Hot-carrier injection: switching-driven with lateral-field acceleration across technology nodes (post-2004)"
}
func (hciModel) ParamsDescription() string {
	return "HCI.ActivationEnergyEV apparent activation energy (−0.15; HCI worsens when cold), HCI.FieldExponent lateral-field acceleration (3)"
}
func (hciModel) Scope() MechanismScope { return ScopeStructure }
func (hciModel) Rate(s Sample, p Params, tech scaling.Technology) float64 {
	return p.HCIRate(s.AF, s.TempK, s.VddV, tech)
}

type tcRainflowModel struct{}

func (tcRainflowModel) Name() string { return MechTCRainflow }
func (tcRainflowModel) Description() string {
	return "Rainflow-counted thermal cycling: ASTM E1049 cycle counting over the die-average temperature series with Coffin-Manson + Arrhenius damage per cycle (SDTA-style); higher-fidelity alternative to tc"
}
func (tcRainflowModel) ParamsDescription() string {
	return "TCRainflow.Q Coffin-Manson exponent (6, brittle fracture), TCRainflow.ActivationEnergyEV Arrhenius Eatc (0.7), TCRainflow.MinRangeK peak threshold (2)"
}
func (tcRainflowModel) Scope() MechanismScope { return ScopePackage }

// Rate returns 0: the rainflow model is defined only over a whole series
// (SeriesRate), so it contributes nothing to instantaneous analyses such
// as the §5.2 worst-case operating point.
func (tcRainflowModel) Rate(s Sample, p Params, tech scaling.Technology) float64 { return 0 }

func (tcRainflowModel) SeriesRate(dieAvgTempK, durUS []float64, p Params) float64 {
	return p.TCRainflowRate(dieAvgTempK, durUS)
}

var _ SeriesMechanism = tcRainflowModel{}
