package core

import (
	"testing"

	"github.com/ramp-sim/ramp/internal/floorplan"
	"github.com/ramp-sim/ramp/internal/scaling"
)

// BenchmarkInstant measures one full failure-rate evaluation — called once
// per structure set per 1µs interval, this is the reliability pipeline's
// inner loop.
func BenchmarkInstant(b *testing.B) {
	e, err := NewEvaluator(DefaultParams(), ReferenceConstants(), scaling.Base(),
		floorplan.POWER4().Areas())
	if err != nil {
		b.Fatal(err)
	}
	af := [7]float64{0.15, 0.24, 0.15, 0.23, 0.13, 0.19, 0.06}
	var temps [7]float64
	for i := range temps {
		temps[i] = 350 + float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		bd := e.Instant(af, temps, 1.3, 349)
		sink += bd.ByStructMech[0][0]
	}
	if sink == 0 {
		b.Fatal("rates were zero")
	}
}

// BenchmarkMonteCarloSample measures the lifetime-sampling inner loop.
func BenchmarkMonteCarloSample(b *testing.B) {
	e, err := NewEvaluator(DefaultParams(), ReferenceConstants(), scaling.Base(),
		floorplan.POWER4().Areas())
	if err != nil {
		b.Fatal(err)
	}
	af := [7]float64{0.15, 0.24, 0.15, 0.23, 0.13, 0.19, 0.06}
	var temps [7]float64
	for i := range temps {
		temps[i] = 350 + float64(i)
	}
	bd := e.Instant(af, temps, 1.3, 349)
	model := WearOutLifetimes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MonteCarloLifetime(bd, model, 100, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
