package core

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/ramp-sim/ramp/internal/scaling"
)

// nominalSample is a representative operating point: a moderately busy
// structure on a warm die at the base technology's nominal supply.
func nominalSample() Sample {
	return Sample{AF: 0.4, TempK: 345, VddV: scaling.Base().VddV, DieAvgTempK: 342}
}

// TestRegistryConformance is the contract every registered mechanism must
// honour: canonical naming, documentation for the discovery endpoint, and a
// finite, non-negative, deterministic rate at a nominal sample on every
// technology node. Series-only mechanisms must return Rate()==0 (they are
// excluded from instantaneous analyses) and a finite series rate.
func TestRegistryConformance(t *testing.T) {
	infos := RegisteredMechanisms()
	if len(infos) < 7 {
		t.Fatalf("registry has %d mechanisms; want at least the 4 paper + 3 extension models", len(infos))
	}
	p := DefaultParams()
	for _, info := range infos {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			m, err := MechanismByName(info.Name)
			if err != nil {
				t.Fatal(err)
			}
			if m.Name() != info.Name {
				t.Errorf("Name() = %q; registry lists %q", m.Name(), info.Name)
			}
			if m.Name() != strings.ToLower(m.Name()) {
				t.Errorf("Name() = %q; canonical names are lower-case", m.Name())
			}
			if canon, err := CanonicalMechanismNames([]string{m.Name()}); err != nil ||
				len(canon) != 1 || canon[0] != m.Name() {
				t.Errorf("canonical name round-trip failed: %v, %v", canon, err)
			}
			if m.Description() == "" || m.ParamsDescription() == "" {
				t.Error("empty Description or ParamsDescription (discovery endpoint contract)")
			}
			_, isSeries := m.(SeriesMechanism)
			if isSeries != info.Series {
				t.Errorf("Series flag %v does not match SeriesMechanism implementation %v", info.Series, isSeries)
			}
			s := nominalSample()
			for _, tech := range scaling.Generations() {
				r := m.Rate(s, p, tech)
				if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
					t.Fatalf("Rate @ %s = %g; want finite and >= 0", tech.Name, r)
				}
				if r2 := m.Rate(s, p, tech); r2 != r {
					t.Fatalf("Rate @ %s not deterministic: %g then %g", tech.Name, r, r2)
				}
				if isSeries {
					if r != 0 {
						t.Fatalf("series-only mechanism returned instantaneous Rate %g @ %s; want 0", r, tech.Name)
					}
					continue
				}
				if r == 0 {
					t.Fatalf("Rate @ %s = 0 at a nominal busy sample; mechanism can never calibrate", tech.Name)
				}
			}
			if isSeries {
				sm := m.(SeriesMechanism)
				// A visible thermal cycle must register damage.
				rate := sm.SeriesRate([]float64{340, 355, 341, 356, 340}, []float64{100, 100, 100, 100, 100}, p)
				if math.IsNaN(rate) || math.IsInf(rate, 0) || rate <= 0 {
					t.Errorf("SeriesRate over a cycling trace = %g; want finite and > 0", rate)
				}
				// A constant trace carries no cycles and no damage.
				if flat := sm.SeriesRate([]float64{350, 350, 350}, []float64{100, 100, 100}, p); flat != 0 {
					t.Errorf("SeriesRate over a flat trace = %g; want 0", flat)
				}
			}
		})
	}
}

// TestMechanismMonotonicity pins the physical direction of every built-in
// model: which way the rate moves when temperature, activity, or voltage
// rises. These are the properties ablation conclusions rest on, so a
// refactor that flips a sign must fail loudly.
func TestMechanismMonotonicity(t *testing.T) {
	p := DefaultParams()
	tech := scaling.Base()
	rate := func(name string, s Sample) float64 {
		t.Helper()
		m, err := MechanismByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return m.Rate(s, p, tech)
	}
	bump := func(s Sample, field string) Sample {
		switch field {
		case "temp":
			s.TempK += 15
			s.DieAvgTempK += 15
		case "af":
			s.AF = math.Min(1, s.AF+0.3)
		case "vdd":
			s.VddV += 0.3
		}
		return s
	}
	cases := []struct {
		mech, field string
		up          bool // true: rate must rise with the field
	}{
		{MechEM, "temp", true},   // Arrhenius wear
		{MechEM, "af", true},     // current density
		{MechSM, "temp", true},   // Arrhenius wear
		{MechTDDB, "temp", true}, // thermally accelerated breakdown
		{MechTDDB, "vdd", true},  // field-driven breakdown
		{MechTC, "temp", true},   // larger die-to-ambient excursion
		{MechNBTI, "temp", true}, // trap generation accelerates
		{MechNBTI, "vdd", true},  // oxide field
		{MechNBTI, "af", false},  // dynamic recovery during switching
		{MechHCI, "af", true},    // injection scales with switching
		{MechHCI, "vdd", true},   // lateral field
		{MechHCI, "temp", false}, // hot-carrier damage is worse cold
	}
	for _, c := range cases {
		s := nominalSample()
		lo, hi := rate(c.mech, s), rate(c.mech, bump(s, c.field))
		if c.up && hi <= lo {
			t.Errorf("%s: rate must rise with %s; got %g -> %g", c.mech, c.field, lo, hi)
		}
		if !c.up && hi >= lo {
			t.Errorf("%s: rate must fall with %s; got %g -> %g", c.mech, c.field, lo, hi)
		}
	}
}

// TestMechanismScalingHooks: the field-driven mechanisms must see the
// technology point — the same sample on a scaled node yields a different
// rate, which is the paper's whole subject.
func TestMechanismScalingHooks(t *testing.T) {
	p := DefaultParams()
	gens := scaling.Generations()
	base, scaled := gens[0], gens[len(gens)-1]
	s := nominalSample()
	for _, name := range []string{MechEM, MechTDDB, MechNBTI, MechHCI} {
		m, err := MechanismByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if rb, rs := m.Rate(s, p, base), m.Rate(s, p, scaled); rb == rs {
			t.Errorf("%s: rate identical at %s and %s; scaling hook lost", name, base.Name, scaled.Name)
		}
	}
}

// testMechanism is a registrable stub for registry-behaviour tests.
type testMechanism struct{ name string }

func (m testMechanism) Name() string              { return m.name }
func (m testMechanism) Description() string       { return "test stub" }
func (m testMechanism) ParamsDescription() string { return "none" }
func (m testMechanism) Scope() MechanismScope     { return ScopeStructure }
func (m testMechanism) Rate(Sample, Params, scaling.Technology) float64 {
	return 1
}

// TestRegisterMechanismRejectsDuplicates: the registry is a process-wide
// namespace; silently replacing a model would change results under the
// same cache key.
func TestRegisterMechanismRejectsDuplicates(t *testing.T) {
	if err := RegisterMechanism(testMechanism{name: MechEM}); err == nil {
		t.Fatal("re-registering em succeeded; duplicates must be rejected")
	}
	if err := RegisterMechanism(testMechanism{name: ""}); err == nil {
		t.Fatal("registering an unnamed mechanism succeeded")
	}
}

// TestRegistryConcurrentResolution hammers the registry's read paths from
// many goroutines (run under -race in CI) while one goroutine performs a
// registration — the production shape: init-time writes, per-request reads.
func TestRegistryConcurrentResolution(t *testing.T) {
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				if _, err := ResolveMechanismSet([]string{"EM", "nbti", "tddb"}); err != nil {
					t.Error(err)
					return
				}
				if infos := RegisteredMechanisms(); len(infos) < 7 {
					t.Errorf("goroutine %d: registry shrank to %d", g, len(infos))
					return
				}
				if _, err := CanonicalMechanismNames([]string{"tc_rainflow", "hci"}); err != nil {
					t.Error(err)
					return
				}
				set := DefaultMechanismSet()
				if !set.IsDefault() {
					t.Error("default set lost its identity")
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 50; i++ {
			// Unique names so repeated `go test -count` runs do not collide;
			// registration failure is fine (previous run), data races are not.
			_ = RegisterMechanism(testMechanism{name: fmt.Sprintf("race-probe-%d", i)})
		}
	}()
	close(start)
	wg.Wait()
}
