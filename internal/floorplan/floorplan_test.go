package floorplan

import (
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/microarch"
)

func TestPOWER4Validates(t *testing.T) {
	fp := POWER4()
	if err := fp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPOWER4DieIs81mm2(t *testing.T) {
	fp := POWER4()
	if got := fp.DieArea(); math.Abs(got-81) > 1e-9 {
		t.Fatalf("die area = %v mm², want 81 (Table 2)", got)
	}
	if fp.DieW != 9 || fp.DieH != 9 {
		t.Fatalf("die = %vx%v, want 9x9", fp.DieW, fp.DieH)
	}
}

func TestAreasSumToDie(t *testing.T) {
	fp := POWER4()
	var sum float64
	for _, a := range fp.Areas() {
		if a <= 0 {
			t.Fatal("non-positive block area")
		}
		sum += a
	}
	if math.Abs(sum-81) > 1e-9 {
		t.Fatalf("areas sum to %v, want 81", sum)
	}
}

func TestLSUIsLargestBlock(t *testing.T) {
	areas := POWER4().Areas()
	lsu := areas[microarch.StructLSU]
	for id, a := range areas {
		if microarch.StructureID(id) != microarch.StructLSU && a >= lsu {
			t.Fatalf("block %v area %v ≥ LSU area %v", microarch.StructureID(id), a, lsu)
		}
	}
}

func TestScaledPreservesProportions(t *testing.T) {
	fp := POWER4()
	for _, rel := range []float64{0.5, 0.25, 0.16} {
		scaled, err := fp.Scaled(rel)
		if err != nil {
			t.Fatal(err)
		}
		if err := scaled.Validate(); err != nil {
			t.Fatalf("relArea %v: %v", rel, err)
		}
		if math.Abs(scaled.DieArea()-81*rel) > 1e-9 {
			t.Fatalf("relArea %v: die area %v, want %v", rel, scaled.DieArea(), 81*rel)
		}
		origAreas, newAreas := fp.Areas(), scaled.Areas()
		for i := range origAreas {
			ratio := newAreas[i] / origAreas[i]
			if math.Abs(ratio-rel) > 1e-9 {
				t.Fatalf("block %d area ratio %v, want %v", i, ratio, rel)
			}
		}
	}
}

func TestScaledRejectsNonPositive(t *testing.T) {
	if _, err := POWER4().Scaled(0); err == nil {
		t.Fatal("Scaled(0) must fail")
	}
	if _, err := POWER4().Scaled(-1); err == nil {
		t.Fatal("Scaled(-1) must fail")
	}
}

func TestSharedEdgeSymmetricAndSane(t *testing.T) {
	fp := POWER4()
	n := len(fp.Blocks)
	var anyAdjacent bool
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a, b := i, j
			eij, eji := fp.SharedEdge(a, b), fp.SharedEdge(b, a)
			if math.Abs(eij-eji) > 1e-12 {
				t.Fatalf("SharedEdge not symmetric for %v,%v: %v vs %v", a, b, eij, eji)
			}
			if eij < 0 {
				t.Fatalf("negative shared edge for %v,%v", a, b)
			}
			if i != j && eij > 0 {
				anyAdjacent = true
			}
		}
	}
	if !anyAdjacent {
		t.Fatal("no adjacent blocks found")
	}
}

func TestKnownAdjacencies(t *testing.T) {
	fp := POWER4()
	// IFU and IDU share the full row height.
	if got := fp.SharedEdge(int(microarch.StructIFU), int(microarch.StructIDU)); math.Abs(got-4.5) > 1e-9 {
		t.Errorf("IFU-IDU shared edge = %v, want 4.5", got)
	}
	// IFU (top row) and BXU (top-right) are not adjacent.
	if got := fp.SharedEdge(int(microarch.StructIFU), int(microarch.StructBXU)); got != 0 {
		t.Errorf("IFU-BXU shared edge = %v, want 0", got)
	}
	// IFU sits above FXU: horizontal contact of width min(3.0, 2.2).
	if got := fp.SharedEdge(int(microarch.StructIFU), int(microarch.StructFXU)); math.Abs(got-2.2) > 1e-9 {
		t.Errorf("IFU-FXU shared edge = %v, want 2.2", got)
	}
}

func TestCenterDistance(t *testing.T) {
	fp := POWER4()
	if d := fp.CenterDistance(int(microarch.StructIFU), int(microarch.StructIFU)); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	d1 := fp.CenterDistance(int(microarch.StructIFU), int(microarch.StructIDU))
	d2 := fp.CenterDistance(int(microarch.StructIFU), int(microarch.StructBXU))
	if d1 <= 0 || d2 <= d1 {
		t.Fatalf("distances not increasing: near %v, far %v", d1, d2)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	fp := POWER4()
	fp.Blocks[0].W += 1 // now overlaps its right neighbour
	if err := fp.Validate(); err == nil {
		t.Fatal("overlap must fail validation")
	}
}

func TestValidateCatchesOverhang(t *testing.T) {
	fp := POWER4()
	fp.Blocks[0].X = 8.5 // pushes block past the die edge
	if err := fp.Validate(); err == nil {
		t.Fatal("overhang must fail validation")
	}
}

func TestValidateCatchesGaps(t *testing.T) {
	fp := POWER4()
	fp.Blocks[0].W -= 1 // leaves uncovered die area
	if err := fp.Validate(); err == nil {
		t.Fatal("coverage gap must fail validation")
	}
}
