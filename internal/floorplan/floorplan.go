// Package floorplan describes the physical layout of the modeled core: the
// 7-structure POWER4-like floorplan fed to the thermal model (paper §4.3,
// "The chip floorplan fed to HotSpot resembles a single core of a 180nm
// POWER4-like processor, of size 81mm² (9mm × 9mm)"). Geometry scales with
// technology via the relative-area column of Table 4.
package floorplan

import (
	"fmt"
	"math"

	"github.com/ramp-sim/ramp/internal/microarch"
)

// Block is one rectangular structure on the die. Coordinates and sizes are
// in millimetres; the origin is the die's top-left corner.
type Block struct {
	// ID is the microarchitectural structure occupying the block.
	ID microarch.StructureID
	// Core is the core index the block belongs to (0 for a single-core
	// die; 0..N-1 on a tiled CMP floorplan).
	Core int
	// X, Y locate the block's top-left corner.
	X, Y float64
	// W, H are the block's width and height.
	W, H float64
}

// Area returns the block area in mm².
func (b Block) Area() float64 { return b.W * b.H }

// Floorplan is a complete die layout.
type Floorplan struct {
	// Blocks holds one entry per structure, indexed by StructureID.
	Blocks []Block
	// DieW, DieH are the die dimensions in mm.
	DieW, DieH float64
}

// POWER4 returns the base 180nm single-core floorplan: a 9mm × 9mm die
// with the 7 structures arranged in two rows. Areas reflect the POWER4
// unit organisation: the LSU (with its L1 D-cache) is the largest block,
// the IFU (with the L1 I-cache and predictor tables) next, and the
// decode and branch/CR units smallest.
func POWER4() Floorplan {
	const rowH = 4.5
	blocks := make([]Block, microarch.NumStructures)
	// Top row: front end and sequencing.
	blocks[microarch.StructIFU] = Block{ID: microarch.StructIFU, X: 0, Y: 0, W: 3.0, H: rowH}
	blocks[microarch.StructIDU] = Block{ID: microarch.StructIDU, X: 3.0, Y: 0, W: 1.5, H: rowH}
	blocks[microarch.StructISU] = Block{ID: microarch.StructISU, X: 4.5, Y: 0, W: 2.5, H: rowH}
	blocks[microarch.StructBXU] = Block{ID: microarch.StructBXU, X: 7.0, Y: 0, W: 2.0, H: rowH}
	// Bottom row: execution and memory.
	blocks[microarch.StructFXU] = Block{ID: microarch.StructFXU, X: 0, Y: rowH, W: 2.2, H: rowH}
	blocks[microarch.StructFPU] = Block{ID: microarch.StructFPU, X: 2.2, Y: rowH, W: 2.6, H: rowH}
	blocks[microarch.StructLSU] = Block{ID: microarch.StructLSU, X: 4.8, Y: rowH, W: 4.2, H: rowH}
	return Floorplan{Blocks: blocks, DieW: 9, DieH: 9}
}

// Validate checks that blocks tile the die without overlap or overhang.
func (f Floorplan) Validate() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("floorplan: no blocks")
	}
	if f.DieW <= 0 || f.DieH <= 0 {
		return fmt.Errorf("floorplan: non-positive die size %vx%v", f.DieW, f.DieH)
	}
	var total float64
	const eps = 1e-9
	for i, b := range f.Blocks {
		if b.W <= 0 || b.H <= 0 {
			return fmt.Errorf("floorplan: block %v has non-positive size", b.ID)
		}
		if b.X < -eps || b.Y < -eps || b.X+b.W > f.DieW+eps || b.Y+b.H > f.DieH+eps {
			return fmt.Errorf("floorplan: block %v overhangs the die", b.ID)
		}
		total += b.Area()
		for j := i + 1; j < len(f.Blocks); j++ {
			o := &f.Blocks[j]
			ox := math.Min(b.X+b.W, o.X+o.W) - math.Max(b.X, o.X)
			oy := math.Min(b.Y+b.H, o.Y+o.H) - math.Max(b.Y, o.Y)
			if ox > eps && oy > eps {
				return fmt.Errorf("floorplan: blocks %v and %v overlap", b.ID, o.ID)
			}
		}
	}
	if math.Abs(total-f.DieW*f.DieH) > 1e-6*f.DieW*f.DieH {
		return fmt.Errorf("floorplan: blocks cover %.4f mm² of a %.4f mm² die",
			total, f.DieW*f.DieH)
	}
	return nil
}

// DieArea returns the die area in mm².
func (f Floorplan) DieArea() float64 { return f.DieW * f.DieH }

// Areas returns per-block areas in mm² in block order. For the single-core
// POWER4 floorplan, block order equals StructureID order, so the result is
// also indexed by StructureID.
func (f Floorplan) Areas() []float64 {
	out := make([]float64, len(f.Blocks))
	for i, b := range f.Blocks {
		out[i] = b.Area()
	}
	return out
}

// Tiled returns a CMP floorplan with n copies of this die laid out side by
// side: core i occupies the x-range [i·DieW, (i+1)·DieW). Each tile's
// blocks keep their StructureID and record their core index.
func (f Floorplan) Tiled(n int) (Floorplan, error) {
	return f.TiledGrid(n, 1)
}

// TiledGrid returns a CMP floorplan with cols×rows copies of this die in a
// grid; core index c = row·cols + col. Cores couple thermally along both
// shared edges, matching real quad-core layouts better than a single row.
func (f Floorplan) TiledGrid(cols, rows int) (Floorplan, error) {
	if cols < 1 || rows < 1 {
		return Floorplan{}, fmt.Errorf("floorplan: grid must be at least 1x1, got %dx%d", cols, rows)
	}
	out := Floorplan{
		Blocks: make([]Block, 0, cols*rows*len(f.Blocks)),
		DieW:   f.DieW * float64(cols),
		DieH:   f.DieH * float64(rows),
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			dx := float64(c) * f.DieW
			dy := float64(r) * f.DieH
			for _, b := range f.Blocks {
				b.Core = r*cols + c
				b.X += dx
				b.Y += dy
				out.Blocks = append(out.Blocks, b)
			}
		}
	}
	return out, nil
}

// Scaled returns the floorplan shrunk to relArea times the original area
// (all linear dimensions scale by √relArea), modelling a technology remap
// of the same layout (Table 4's relative-area column).
func (f Floorplan) Scaled(relArea float64) (Floorplan, error) {
	if relArea <= 0 {
		return Floorplan{}, fmt.Errorf("floorplan: relative area must be positive, got %v", relArea)
	}
	s := math.Sqrt(relArea)
	out := Floorplan{
		Blocks: make([]Block, len(f.Blocks)),
		DieW:   f.DieW * s,
		DieH:   f.DieH * s,
	}
	for i, b := range f.Blocks {
		out.Blocks[i] = Block{ID: b.ID, X: b.X * s, Y: b.Y * s, W: b.W * s, H: b.H * s}
	}
	return out, nil
}

// SharedEdge returns the length (mm) of the boundary shared by the blocks
// at positions a and b, or 0 if they are not adjacent. On the single-core
// floorplan, positions coincide with StructureID values.
func (f Floorplan) SharedEdge(a, b int) float64 {
	ba, bb := f.Blocks[a], f.Blocks[b]
	const eps = 1e-9
	// Vertical contact (side by side).
	if math.Abs(ba.X+ba.W-bb.X) < eps || math.Abs(bb.X+bb.W-ba.X) < eps {
		lo := math.Max(ba.Y, bb.Y)
		hi := math.Min(ba.Y+ba.H, bb.Y+bb.H)
		if hi > lo {
			return hi - lo
		}
	}
	// Horizontal contact (stacked).
	if math.Abs(ba.Y+ba.H-bb.Y) < eps || math.Abs(bb.Y+bb.H-ba.Y) < eps {
		lo := math.Max(ba.X, bb.X)
		hi := math.Min(ba.X+ba.W, bb.X+bb.W)
		if hi > lo {
			return hi - lo
		}
	}
	return 0
}

// CenterDistance returns the distance between the centres of the blocks
// at positions a and b, in mm.
func (f Floorplan) CenterDistance(a, b int) float64 {
	ba, bb := f.Blocks[a], f.Blocks[b]
	dx := (ba.X + ba.W/2) - (bb.X + bb.W/2)
	dy := (ba.Y + ba.H/2) - (bb.Y + bb.H/2)
	return math.Hypot(dx, dy)
}
