package floorplan

import (
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/microarch"
)

func TestTiledValidatesAndScalesArea(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		fp, err := POWER4().Tiled(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := fp.Validate(); err != nil {
			t.Fatalf("%d cores: %v", n, err)
		}
		if got := fp.DieArea(); math.Abs(got-81*float64(n)) > 1e-9 {
			t.Fatalf("%d cores: die area %v, want %v", n, got, 81*float64(n))
		}
		if len(fp.Blocks) != n*microarch.NumStructures {
			t.Fatalf("%d cores: %d blocks", n, len(fp.Blocks))
		}
	}
}

func TestTiledRejectsNonPositive(t *testing.T) {
	if _, err := POWER4().Tiled(0); err == nil {
		t.Fatal("Tiled(0) must fail")
	}
	if _, err := POWER4().Tiled(-2); err == nil {
		t.Fatal("Tiled(-2) must fail")
	}
}

func TestTiledCoreIndices(t *testing.T) {
	fp, err := POWER4().Tiled(3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, b := range fp.Blocks {
		counts[b.Core]++
	}
	for c := 0; c < 3; c++ {
		if counts[c] != microarch.NumStructures {
			t.Fatalf("core %d has %d blocks", c, counts[c])
		}
	}
}

func TestTiledPreservesPerCoreGeometry(t *testing.T) {
	single := POWER4()
	fp, err := single.Tiled(2)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range fp.Blocks {
		orig := single.Blocks[i%microarch.NumStructures]
		if b.ID != orig.ID || b.W != orig.W || b.H != orig.H {
			t.Fatalf("block %d geometry changed: %+v vs %+v", i, b, orig)
		}
		wantX := orig.X + float64(b.Core)*single.DieW
		if math.Abs(b.X-wantX) > 1e-12 || b.Y != orig.Y {
			t.Fatalf("block %d position wrong: %+v", i, b)
		}
	}
}

func TestTiledCoresAreThermallyAdjacent(t *testing.T) {
	// The right edge of core 0 must touch the left edge of core 1 so heat
	// couples between neighbouring cores: at least one cross-core pair
	// shares an edge.
	fp, err := POWER4().Tiled(2)
	if err != nil {
		t.Fatal(err)
	}
	var crossEdge float64
	for i := range fp.Blocks {
		for j := range fp.Blocks {
			if fp.Blocks[i].Core != fp.Blocks[j].Core {
				crossEdge += fp.SharedEdge(i, j)
			}
		}
	}
	if crossEdge <= 0 {
		t.Fatal("tiled cores share no thermal boundary")
	}
}

func TestTiledGrid2x2(t *testing.T) {
	fp, err := POWER4().TiledGrid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fp.Validate(); err != nil {
		t.Fatal(err)
	}
	if fp.DieW != 18 || fp.DieH != 18 {
		t.Fatalf("2x2 die = %vx%v, want 18x18", fp.DieW, fp.DieH)
	}
	if len(fp.Blocks) != 4*microarch.NumStructures {
		t.Fatalf("2x2 grid has %d blocks", len(fp.Blocks))
	}
	// Cores must be adjacent both horizontally (0-1) and vertically (0-2).
	coreEdge := func(a, b int) float64 {
		var sum float64
		for i := range fp.Blocks {
			for j := range fp.Blocks {
				if fp.Blocks[i].Core == a && fp.Blocks[j].Core == b {
					sum += fp.SharedEdge(i, j)
				}
			}
		}
		return sum
	}
	if coreEdge(0, 1) <= 0 {
		t.Error("cores 0 and 1 not horizontally adjacent")
	}
	if coreEdge(0, 2) <= 0 {
		t.Error("cores 0 and 2 not vertically adjacent")
	}
	if coreEdge(0, 3) != 0 {
		t.Error("diagonal cores 0 and 3 should share no edge")
	}
}

func TestTiledGridRejectsBadDims(t *testing.T) {
	if _, err := POWER4().TiledGrid(0, 2); err == nil {
		t.Fatal("0 columns accepted")
	}
	if _, err := POWER4().TiledGrid(2, -1); err == nil {
		t.Fatal("negative rows accepted")
	}
}

func TestTiledThenScaled(t *testing.T) {
	fp, err := POWER4().Tiled(2)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := fp.Scaled(0.16)
	if err != nil {
		t.Fatal(err)
	}
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(scaled.DieArea()-2*81*0.16) > 1e-9 {
		t.Fatalf("scaled tiled area = %v", scaled.DieArea())
	}
}
