// Package scenario defines reproducible experiment specifications: a JSON
// document selecting workloads, technology points, trace length, and model
// overrides (the ablation knobs DESIGN.md lists), which resolves into the
// inputs of sim.RunStudy. Scenarios make every experiment in EXPERIMENTS.md
// a shareable artifact instead of a command line.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

// Spec is the JSON experiment specification.
type Spec struct {
	// Name identifies the scenario in reports.
	Name string `json:"name"`
	// Description says what the scenario studies.
	Description string `json:"description,omitempty"`
	// Apps selects benchmarks by name; empty means all 16.
	Apps []string `json:"apps,omitempty"`
	// Techs selects technology points by name; empty means all five.
	// The 180nm anchor is prepended automatically if missing.
	Techs []string `json:"techs,omitempty"`
	// Instructions is the per-application trace length (default 2M).
	Instructions int64 `json:"instructions,omitempty"`
	// Mechanisms selects the failure mechanisms by registry name; empty
	// means the paper's four (em, sm, tc, tddb). Names are canonicalised
	// on resolve, so aliases and ordering do not affect cache keys.
	Mechanisms []string `json:"mechanisms,omitempty"`
	// Overrides tweak the model (ablation knobs).
	Overrides *Overrides `json:"overrides,omitempty"`
}

// Overrides are the supported model modifications. Pointer fields are
// applied only when present in the JSON document.
type Overrides struct {
	// EMGeomExponent replaces the EM wire-geometry exponent.
	EMGeomExponent *float64 `json:"em_geom_exponent,omitempty"`
	// TDDBToxDecadeNm replaces the oxide-thinning decade constant.
	TDDBToxDecadeNm *float64 `json:"tddb_tox_decade_nm,omitempty"`
	// TDDBVoltExponent replaces the cross-technology voltage exponent.
	TDDBVoltExponent *float64 `json:"tddb_volt_exponent,omitempty"`
	// GatingFloor replaces the clock-gating idle fraction.
	GatingFloor *float64 `json:"gating_floor,omitempty"`
	// SinkR replaces the base heat-sink resistance (K/W).
	SinkR *float64 `json:"sink_r,omitempty"`
	// NextLinePrefetch toggles the data prefetcher.
	NextLinePrefetch *bool `json:"next_line_prefetch,omitempty"`
	// BimodalPredictor switches the branch predictor from gshare.
	BimodalPredictor *bool `json:"bimodal_predictor,omitempty"`
	// QualFITPerMechanism replaces the §4.4 qualification target.
	QualFITPerMechanism *float64 `json:"qual_fit_per_mechanism,omitempty"`
}

// Load parses a scenario from JSON, rejecting unknown fields so typos in
// experiment files fail loudly.
func Load(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadFile loads a scenario from a file path.
func LoadFile(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Validate checks the specification against the available workloads and
// technologies.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: needs a name")
	}
	for _, a := range s.Apps {
		if _, err := workload.ByName(a); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	for _, t := range s.Techs {
		if _, err := scaling.ByName(t); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	if s.Instructions < 0 {
		return fmt.Errorf("scenario %q: negative instruction count", s.Name)
	}
	if _, err := core.CanonicalMechanismNames(s.Mechanisms); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if o := s.Overrides; o != nil {
		check := func(name string, v *float64, min, max float64) error {
			if v != nil && (*v < min || *v > max) {
				return fmt.Errorf("scenario %q: %s %v outside [%v, %v]", s.Name, name, *v, min, max)
			}
			return nil
		}
		if err := check("em_geom_exponent", o.EMGeomExponent, 0, 4); err != nil {
			return err
		}
		if err := check("tddb_tox_decade_nm", o.TDDBToxDecadeNm, 0.01, 1e9); err != nil {
			return err
		}
		if err := check("tddb_volt_exponent", o.TDDBVoltExponent, 0, 200); err != nil {
			return err
		}
		if err := check("gating_floor", o.GatingFloor, 0, 0.99); err != nil {
			return err
		}
		if err := check("sink_r", o.SinkR, 0.01, 100); err != nil {
			return err
		}
		if err := check("qual_fit_per_mechanism", o.QualFITPerMechanism, 1, 1e9); err != nil {
			return err
		}
	}
	return nil
}

// Resolve turns the specification into study inputs, applying overrides to
// a copy of the base configuration.
func (s Spec) Resolve(base sim.Config) (sim.Config, []workload.Profile, []scaling.Technology, error) {
	if err := s.Validate(); err != nil {
		return sim.Config{}, nil, nil, err
	}
	cfg := base
	if s.Instructions > 0 {
		cfg.Instructions = s.Instructions
	}
	if len(s.Mechanisms) > 0 {
		canon, err := core.CanonicalMechanismNames(s.Mechanisms)
		if err != nil {
			return sim.Config{}, nil, nil, err
		}
		cfg.Mechanisms = canon
	}
	if o := s.Overrides; o != nil {
		if o.EMGeomExponent != nil {
			cfg.RAMP.EM.GeomExponent = *o.EMGeomExponent
		}
		if o.TDDBToxDecadeNm != nil {
			cfg.RAMP.TDDB.ToxDecadeNm = *o.TDDBToxDecadeNm
		}
		if o.TDDBVoltExponent != nil {
			cfg.RAMP.TDDB.VoltExponent = *o.TDDBVoltExponent
		}
		if o.GatingFloor != nil {
			cfg.Power.GatingFloor = *o.GatingFloor
		}
		if o.SinkR != nil {
			cfg.Thermal.SinkR = *o.SinkR
		}
		if o.NextLinePrefetch != nil {
			cfg.Machine.NextLinePrefetch = *o.NextLinePrefetch
		}
		if o.BimodalPredictor != nil && *o.BimodalPredictor {
			cfg.Machine.PredictorKind = microarch.PredictorBimodal
		}
		if o.QualFITPerMechanism != nil {
			cfg.QualFITPerMechanism = *o.QualFITPerMechanism
		}
	}

	var profiles []workload.Profile
	if len(s.Apps) == 0 {
		profiles = workload.Profiles()
	} else {
		profiles = make([]workload.Profile, 0, len(s.Apps))
		for _, a := range s.Apps {
			p, err := workload.ByName(a)
			if err != nil {
				return sim.Config{}, nil, nil, err
			}
			profiles = append(profiles, p)
		}
	}

	var techs []scaling.Technology
	if len(s.Techs) == 0 {
		techs = scaling.Generations()
	} else {
		techs = make([]scaling.Technology, 0, len(s.Techs)+1)
		for _, name := range s.Techs {
			t, err := scaling.ByName(name)
			if err != nil {
				return sim.Config{}, nil, nil, err
			}
			techs = append(techs, t)
		}
		// The study needs the 180nm calibration anchor first.
		if techs[0].Name != scaling.Base().Name {
			withBase := make([]scaling.Technology, 0, len(techs)+1)
			withBase = append(withBase, scaling.Base())
			for _, t := range techs {
				if t.Name != scaling.Base().Name {
					withBase = append(withBase, t)
				}
			}
			techs = withBase
		}
	}
	return cfg, profiles, techs, nil
}
