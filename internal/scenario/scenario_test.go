package scenario

import (
	"strings"
	"testing"

	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/sim"
)

func TestLoadMinimal(t *testing.T) {
	s, err := Load(strings.NewReader(`{"name": "smoke"}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, profiles, techs, err := s.Resolve(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 16 || len(techs) != 5 {
		t.Fatalf("defaults: %d profiles, %d techs", len(profiles), len(techs))
	}
	if cfg.Instructions != sim.DefaultConfig().Instructions {
		t.Fatal("instructions changed without override")
	}
}

func TestLoadFull(t *testing.T) {
	doc := `{
		"name": "tddb-ablation",
		"description": "TDDB without the tox factor",
		"apps": ["ammp", "crafty"],
		"techs": ["65nm (1.0V)"],
		"instructions": 300000,
		"overrides": {
			"tddb_tox_decade_nm": 1e9,
			"em_geom_exponent": 0,
			"gating_floor": 0.3,
			"next_line_prefetch": true,
			"bimodal_predictor": true,
			"qual_fit_per_mechanism": 500
		}
	}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	cfg, profiles, techs, err := s.Resolve(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 || profiles[0].Name != "ammp" {
		t.Fatalf("profiles: %+v", profiles)
	}
	// The 180nm anchor is prepended automatically.
	if len(techs) != 2 || techs[0].Name != "180nm" || techs[1].Name != "65nm (1.0V)" {
		t.Fatalf("techs: %+v", techs)
	}
	if cfg.Instructions != 300000 {
		t.Fatalf("instructions = %d", cfg.Instructions)
	}
	if cfg.RAMP.TDDB.ToxDecadeNm != 1e9 || cfg.RAMP.EM.GeomExponent != 0 {
		t.Fatal("RAMP overrides not applied")
	}
	if cfg.Power.GatingFloor != 0.3 {
		t.Fatal("power override not applied")
	}
	if !cfg.Machine.NextLinePrefetch || cfg.Machine.PredictorKind != microarch.PredictorBimodal {
		t.Fatal("machine overrides not applied")
	}
	if cfg.QualFITPerMechanism != 500 {
		t.Fatal("qualification override not applied")
	}
	// The base configuration must be untouched (value semantics).
	if sim.DefaultConfig().RAMP.EM.GeomExponent == 0 {
		t.Fatal("base config mutated")
	}
}

func TestLoadRejections(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"name": "x", "bogus": 1}`,
		"missing name":    `{"apps": ["gzip"]}`,
		"unknown app":     `{"name": "x", "apps": ["nonexistent"]}`,
		"unknown tech":    `{"name": "x", "techs": ["42nm"]}`,
		"negative instrs": `{"name": "x", "instructions": -5}`,
		"bad exponent":    `{"name": "x", "overrides": {"em_geom_exponent": 99}}`,
		"bad floor":       `{"name": "x", "overrides": {"gating_floor": 1.5}}`,
		"not json":        `{`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestTechsKeepBaseFirstWithoutDuplication(t *testing.T) {
	s, err := Load(strings.NewReader(`{"name": "x", "techs": ["90nm", "180nm"]}`))
	if err != nil {
		t.Fatal(err)
	}
	_, _, techs, err := s.Resolve(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(techs) != 2 || techs[0].Name != "180nm" || techs[1].Name != "90nm" {
		t.Fatalf("techs = %+v", techs)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/scenario.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestScenarioRunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("study run is slow; skipped with -short")
	}
	doc := `{
		"name": "mini",
		"apps": ["gzip", "ammp"],
		"techs": ["65nm (1.0V)"],
		"instructions": 120000
	}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	cfg, profiles, techs, err := s.Resolve(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunStudy(cfg, profiles, techs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 4 {
		t.Fatalf("study produced %d app runs, want 4", len(res.Apps))
	}
}
