package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
)

// requestIDKey carries the per-request correlation ID through a request's
// context, into the sim stages it runs, and back out through error
// envelopes and stream meta events.
type requestIDKey struct{}

// WithRequestID returns ctx carrying id (unchanged when id is empty).
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// idFallback seeds deterministic-but-unique IDs if crypto/rand ever
// fails (it effectively cannot on supported platforms).
var idFallback atomic.Uint64

// NewRequestID returns a 16-hex-character random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("fallback-%08x", idFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// SanitizeRequestID validates a client-supplied X-Request-ID: at most 64
// characters of [A-Za-z0-9._-]; anything else is rejected (returns "") so
// callers fall back to a generated ID rather than echoing junk into logs.
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// lockedWriter serialises whole Write calls so concurrent log records —
// and anything else routed through the same writer, like progress lines —
// never interleave mid-line on a shared stderr.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// LockedWriter wraps w so each Write is atomic with respect to every
// other writer sharing the returned value.
func LockedWriter(w io.Writer) io.Writer {
	if _, ok := w.(*lockedWriter); ok {
		return w
	}
	return &lockedWriter{w: w}
}

// ParseLogLevel maps the -log-level flag values onto slog levels.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds the stack's standard *slog.Logger: text or json
// records at the given level, written through a LockedWriter so records
// from concurrent goroutines never interleave. format is "text" or
// "json" ("" = text).
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	lw := LockedWriter(w)
	ho := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(lw, ho)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(lw, ho)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// NopLogger returns a logger that discards every record — the default for
// library callers and tests that install no logger.
func NopLogger() *slog.Logger {
	return slog.New(discardHandler{})
}

// discardHandler drops all records (slog.DiscardHandler needs go1.24;
// the module targets go1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
