// Package obs is the zero-dependency observability layer of the ramp
// stack: context-propagated spans (trace.go), a Prometheus-expositable
// metrics registry (metrics.go), Chrome trace-event export
// (chrometrace.go), and structured-logging / request-ID plumbing
// (log.go). Everything here is allocation-light by design — in particular
// the span API is a strict no-op costing zero allocations when no tracer
// is installed in the context, so the simulation hot path can stay
// instrumented unconditionally.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Span names used across the stack. The "sim." spans wrap the three
// content-addressed pipeline stages; MetricsSink maps them onto the
// stage-latency histogram (label values "timing", "thermal", "fit").
const (
	// SpanStudy wraps one whole study execution.
	SpanStudy = "sim.study"
	// SpanCell wraps one (profile × technology) cell, whatever its
	// provenance; the "source" attribute records fit-cache / thermal-cache
	// / computed.
	SpanCell = "sim.cell"
	// SpanTiming wraps one profile's timing simulation.
	SpanTiming = "sim.timing"
	// SpanThermal wraps one cell's power+thermal transient.
	SpanThermal = "sim.thermal"
	// SpanFIT wraps one cell's reliability accumulation.
	SpanFIT = "sim.fit"
	// SpanMC wraps one Monte Carlo lifetime study over a finished grid.
	SpanMC = "sim.mc"
	// SpanMCBatch wraps one replica batch of a Monte Carlo study ("cell"
	// and "replicas" attributes).
	SpanMCBatch = "sim.mc.batch"
	// SpanCacheGet wraps one stage-cache lookup ("stage" and "result"
	// attributes).
	SpanCacheGet = "store.get"
	// SpanCachePut wraps one stage-cache insert.
	SpanCachePut = "store.put"
	// SpanRequest wraps one HTTP request in rampd.
	SpanRequest = "server.request"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Value string
}

// SpanSink receives completed spans. SpanEnded is called synchronously
// from Span.End on whatever goroutine ended the span, so implementations
// must be safe for concurrent use and should return quickly. The span is
// immutable once delivered.
type SpanSink interface {
	SpanEnded(*Span)
}

// Tracer mints spans and hands them to its sink. A nil *Tracer is valid
// everywhere and disables tracing. Create with NewTracer; a Tracer is
// safe for concurrent use by any number of goroutines.
type Tracer struct {
	sink SpanSink
	now  func() time.Time
	ids  atomic.Uint64 // span IDs, unique per tracer
	tids atomic.Uint64 // track IDs, one per span tree root
}

// TracerOption configures NewTracer.
type TracerOption func(*Tracer)

// WithClock overrides the tracer's time source (tests, deterministic
// trace rendering).
func WithClock(now func() time.Time) TracerOption {
	return func(t *Tracer) { t.now = now }
}

// NewTracer returns a tracer delivering completed spans to sink. A nil
// sink yields a tracer that still times spans (useful for tests) but
// delivers nothing.
func NewTracer(sink SpanSink, opts ...TracerOption) *Tracer {
	t := &Tracer{sink: sink, now: time.Now}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Sink returns the tracer's sink (nil for a nil or sink-less tracer), so
// callers can compose it into a MultiSink with additional per-run sinks.
func (t *Tracer) Sink() SpanSink {
	if t == nil {
		return nil
	}
	return t.sink
}

// Span is one timed operation. Spans are created by StartSpan, annotated
// with SetAttr by the single goroutine that owns them, and completed with
// Finish, after which they are immutable. A nil *Span is valid and turns
// every method into a no-op — the uninstrumented fast path.
type Span struct {
	tracer *Tracer
	// Name is the span's operation name (one of the Span* constants).
	Name string
	// ID and Parent identify the span within its tracer; Parent is 0 for
	// roots.
	ID, Parent uint64
	// Track groups a root span and its descendants onto one timeline row
	// (the Chrome trace "tid").
	Track uint64
	// Start and End bound the operation.
	Start, End time.Time

	attrs   []Attr
	attrBuf [4]Attr
}

type (
	tracerKey struct{}
	spanKey   struct{}
)

// WithTracer installs t in the context; a nil t returns ctx unchanged so
// callers can thread an optional tracer without branching.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer installed in ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan begins a span named name under the current span of ctx (or as
// a new root when there is none), returning a derived context carrying it.
// When no tracer is installed the call is free: it returns ctx unchanged
// and a nil span, with zero allocations — the property the nil-tracer
// benchmark pins down.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	var t *Tracer
	if parent != nil {
		t = parent.tracer
	} else if t = TracerFrom(ctx); t == nil {
		return ctx, nil
	}
	sp := &Span{
		tracer: t,
		Name:   name,
		ID:     t.ids.Add(1),
		Start:  t.now(),
	}
	if parent != nil {
		sp.Parent = parent.ID
		sp.Track = parent.Track
	} else {
		sp.Track = t.tids.Add(1)
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartTrackSpan is StartSpan on a fresh timeline track: the span keeps
// its parent link but starts a new Chrome-trace row, as do its
// descendants. Concurrent subtrees (one per study cell, say) use it so
// overlapping siblings don't render stacked on the parent's row.
func StartTrackSpan(ctx context.Context, name string) (context.Context, *Span) {
	ctx, sp := StartSpan(ctx, name)
	if sp != nil {
		sp.Track = sp.tracer.tids.Add(1)
	}
	return ctx, sp
}

// SpanFrom returns the current span of ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// SetAttr annotates the span; a no-op on a nil span. Attrs set after
// Finish are not delivered.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = s.attrBuf[:0]
	}
	s.attrs = append(s.attrs, Attr{key, value})
}

// Attrs returns the span's annotations in insertion order. The returned
// slice is owned by the span; do not mutate it.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// Duration returns End-Start (zero before End).
func (s *Span) Duration() time.Duration {
	if s == nil || s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Finish stamps the end time and delivers the span to the tracer's sink.
// A no-op on a nil span. Finish must be called exactly once, by the
// goroutine that owns the span; the span is immutable afterwards.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.End = s.tracer.now()
	if s.tracer.sink != nil {
		s.tracer.sink.SpanEnded(s)
	}
}

// MultiSink fans completed spans out to every non-nil sink. It returns
// nil when no usable sink remains, a single sink unwrapped, or a fan-out.
func MultiSink(sinks ...SpanSink) SpanSink {
	var live []SpanSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []SpanSink

func (m multiSink) SpanEnded(sp *Span) {
	for _, s := range m {
		s.SpanEnded(sp)
	}
}

// Collector is a SpanSink that retains every completed span in completion
// order, bounded by max (0 = unbounded). It backs both rampsim's
// -trace-out file and rampd's per-study trace retention.
type Collector struct {
	mu      sync.Mutex
	max     int
	spans   []*Span
	dropped int64
}

// NewCollector returns a collector retaining at most max spans
// (0 = unbounded).
func NewCollector(max int) *Collector {
	return &Collector{max: max}
}

// SpanEnded implements SpanSink.
func (c *Collector) SpanEnded(sp *Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 && len(c.spans) >= c.max {
		c.dropped++
		return
	}
	c.spans = append(c.spans, sp)
}

// Spans returns a snapshot of the collected spans in completion order.
func (c *Collector) Spans() []*Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// Dropped reports how many spans were discarded by the bound.
func (c *Collector) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// MetricsSink bridges spans into the metrics registry: each completed
// pipeline-stage span (sim.timing / sim.thermal / sim.fit) is observed in
// a stage-latency histogram, so one instrumentation feeds both the trace
// export and the Prometheus exposition.
type MetricsSink struct {
	hist *HistogramVec
}

// NewMetricsSink observes pipeline-stage span durations into hist, which
// must have exactly one label (the stage).
func NewMetricsSink(hist *HistogramVec) *MetricsSink {
	return &MetricsSink{hist: hist}
}

// SpanEnded implements SpanSink.
func (m *MetricsSink) SpanEnded(sp *Span) {
	var stage string
	switch sp.Name {
	case SpanTiming:
		stage = "timing"
	case SpanThermal:
		stage = "thermal"
	case SpanFIT:
		stage = "fit"
	default:
		return
	}
	m.hist.With(stage).Observe(sp.End.Sub(sp.Start).Seconds())
}
