package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestLedgerRingEviction pins the ring semantics: dense sequence IDs,
// oldest-first eviction, O(1) Get by ID, and newest-first Runs.
func TestLedgerRingEviction(t *testing.T) {
	l := NewLedger(4)
	for i := 0; i < 10; i++ {
		rec := l.Append(RunRecord{Kind: "study", Outcome: RunOK})
		if rec.ID != uint64(i+1) {
			t.Fatalf("append %d assigned ID %d, want %d", i, rec.ID, i+1)
		}
	}
	st := l.Stats()
	if st.Appended != 10 || st.Retained != 4 || st.Capacity != 4 {
		t.Fatalf("stats = %+v, want appended 10, retained 4, capacity 4", st)
	}

	// Evicted IDs are gone; retained IDs resolve to themselves.
	if _, ok := l.Get(6); ok {
		t.Error("Get(6) found an evicted record")
	}
	if _, ok := l.Get(11); ok {
		t.Error("Get(11) found a never-appended record")
	}
	for id := uint64(7); id <= 10; id++ {
		rec, ok := l.Get(id)
		if !ok || rec.ID != id {
			t.Errorf("Get(%d) = (%v, %v), want the record itself", id, rec.ID, ok)
		}
	}

	// Runs returns newest first.
	runs := l.Runs(RunFilter{})
	if len(runs) != 4 {
		t.Fatalf("runs = %d records, want 4", len(runs))
	}
	for i, want := range []uint64{10, 9, 8, 7} {
		if runs[i].ID != want {
			t.Errorf("runs[%d].ID = %d, want %d", i, runs[i].ID, want)
		}
	}
}

func TestLedgerGetOnEmpty(t *testing.T) {
	l := NewLedger(2)
	if _, ok := l.Get(1); ok {
		t.Fatal("Get on an empty ledger reported a record")
	}
}

// TestLedgerFilters covers every RunFilter axis plus the limit.
func TestLedgerFilters(t *testing.T) {
	l := NewLedger(16)
	l.Append(RunRecord{Kind: "study", Key: "k1", Tenant: "acme", Outcome: RunOK})
	l.Append(RunRecord{Kind: "mc", Key: "k2", Tenant: "acme", Outcome: RunError})
	l.Append(RunRecord{Kind: "study", Key: "k1", Tenant: "umbrella", Outcome: RunOK})
	l.Append(RunRecord{Kind: "job.study", Key: "k3", Tenant: "acme", Outcome: RunOK})

	for _, tc := range []struct {
		name   string
		filter RunFilter
		want   []uint64 // expected IDs, newest first
	}{
		{"all", RunFilter{}, []uint64{4, 3, 2, 1}},
		{"tenant", RunFilter{Tenant: "acme"}, []uint64{4, 2, 1}},
		{"key", RunFilter{Key: "k1"}, []uint64{3, 1}},
		{"outcome", RunFilter{Outcome: RunError}, []uint64{2}},
		{"kind", RunFilter{Kind: "study"}, []uint64{3, 1}},
		{"combined", RunFilter{Tenant: "acme", Kind: "study"}, []uint64{1}},
		{"limit", RunFilter{Limit: 2}, []uint64{4, 3}},
		{"none", RunFilter{Tenant: "nobody"}, nil},
	} {
		got := l.Runs(tc.filter)
		if len(got) != len(tc.want) {
			t.Errorf("%s: %d records, want %d", tc.name, len(got), len(tc.want))
			continue
		}
		for i, id := range tc.want {
			if got[i].ID != id {
				t.Errorf("%s: runs[%d].ID = %d, want %d", tc.name, i, got[i].ID, id)
			}
		}
	}
}

// TestLedgerConcurrentAppendAndSubscribe drives concurrent appenders
// against a draining subscriber and concurrent readers — the shape
// /v1/ops/tail exercises — under the race detector.
func TestLedgerConcurrentAppendAndSubscribe(t *testing.T) {
	l := NewLedger(32)
	const writers, perWriter = 8, 50

	live, cancel := l.Subscribe(writers * perWriter)
	defer cancel()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Append(RunRecord{Kind: "study", Key: fmt.Sprintf("w%d-%d", w, i), Outcome: RunOK})
			}
		}(w)
	}
	// Concurrent readers exercise Get/Runs/Stats against the appends.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Runs(RunFilter{Limit: 5})
				l.Get(uint64(i))
				l.Stats()
			}
		}()
	}
	wg.Wait()

	st := l.Stats()
	if st.Appended != writers*perWriter {
		t.Fatalf("appended = %d, want %d", st.Appended, writers*perWriter)
	}
	if st.Retained != 32 {
		t.Fatalf("retained = %d, want capacity 32", st.Retained)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped = %d with a buffer sized for every append", st.Dropped)
	}
	// Every append was delivered exactly once, IDs strictly increasing
	// per the append order observed by the subscriber channel.
	cancel()
	var last uint64
	delivered := 0
	for rec := range live {
		if rec.ID <= last {
			t.Fatalf("subscription delivered ID %d after %d", rec.ID, last)
		}
		last = rec.ID
		delivered++
	}
	if delivered != writers*perWriter {
		t.Fatalf("delivered = %d, want %d", delivered, writers*perWriter)
	}
}

// TestLedgerSlowSubscriberDropsNotBlocks: a full subscriber buffer must
// never stall Append — records are dropped for that subscriber and
// counted.
func TestLedgerSlowSubscriberDropsNotBlocks(t *testing.T) {
	l := NewLedger(8)
	_, cancel := l.Subscribe(1) // never drained
	defer cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			l.Append(RunRecord{Kind: "study", Outcome: RunOK})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Append blocked on a slow subscriber")
	}
	if st := l.Stats(); st.Dropped != 19 {
		t.Fatalf("dropped = %d, want 19 (buffer of 1 absorbed one record)", st.Dropped)
	}
}

// TestLedgerSubscribeCancelIdempotent: double-cancel must not panic on a
// double close.
func TestLedgerSubscribeCancelIdempotent(t *testing.T) {
	l := NewLedger(2)
	_, cancel := l.Subscribe(1)
	cancel()
	cancel()
}

// TestRunRecordEncodingGolden pins the byte-exact JSON encoding of a
// fully-populated RunRecord. The field order and the sorted map keys are
// the /v1/ops wire schema — this encoding may only ever grow new fields,
// never reorder or rename existing ones.
func TestRunRecordEncodingGolden(t *testing.T) {
	rec := RunRecord{
		ID:            42,
		Kind:          "job.study",
		Key:           "sha256:abc",
		Tenant:        "acme",
		RequestID:     "req-1",
		TraceID:       "0af7651916cd43dd8448eb211c80319c",
		JobID:         "job-7",
		Attempt:       2,
		Fidelity:      "fast",
		Mechanisms:    []string{"EM", "TC"},
		Outcome:       RunError,
		Error:         "boom",
		ResultCache:   ResultMiss,
		Start:         time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		WallMS:        12.5,
		QueueMS:       3.25,
		CPUMS:         40,
		Instructions:  200000,
		Cells:         4,
		CellsComputed: 3,
		Replicas:      100,
		Stages: map[string]StageCost{
			"timing":  {Count: 2, WallMS: 5, CPUMS: 9},
			"thermal": {Count: 2, WallMS: 7, CPUMS: 31},
		},
		Cache: map[string]CacheCost{
			"fit": {Hits: 1, Misses: 2, Puts: 2, Spills: 1},
		},
	}
	const golden = `{"id":42,"kind":"job.study","key":"sha256:abc",` +
		`"tenant":"acme","request_id":"req-1",` +
		`"trace_id":"0af7651916cd43dd8448eb211c80319c","job_id":"job-7",` +
		`"attempt":2,"fidelity":"fast","mechanisms":["EM","TC"],` +
		`"outcome":"error","error":"boom","result_cache":"miss",` +
		`"start":"2026-08-08T12:00:00Z","wall_ms":12.5,"queue_ms":3.25,` +
		`"cpu_ms":40,"instructions":200000,"cells":4,"cells_computed":3,` +
		`"replicas":100,` +
		`"stages":{"thermal":{"count":2,"wall_ms":7,"cpu_ms":31},` +
		`"timing":{"count":2,"wall_ms":5,"cpu_ms":9}},` +
		`"cache":{"fit":{"hits":1,"misses":2,"puts":2,"spills":1}}}`
	got, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != golden {
		t.Errorf("encoding drifted:\n got %s\nwant %s", got, golden)
	}

	// The minimal record omits every optional field.
	minimal := RunRecord{ID: 1, Kind: "study", Outcome: RunOK,
		Start: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC), WallMS: 1}
	const goldenMin = `{"id":1,"kind":"study","outcome":"ok",` +
		`"start":"2026-08-08T12:00:00Z","wall_ms":1}`
	got, err = json.Marshal(minimal)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != goldenMin {
		t.Errorf("minimal encoding drifted:\n got %s\nwant %s", got, goldenMin)
	}
}

func TestOutcomeFor(t *testing.T) {
	wrapped := fmt.Errorf("study: %w", context.Canceled)
	for _, tc := range []struct {
		err  error
		want string
	}{
		{nil, RunOK},
		{errors.New("boom"), RunError},
		{context.Canceled, RunCancelled},
		{wrapped, RunCancelled},
		{context.DeadlineExceeded, RunDeadline},
	} {
		if got := OutcomeFor(tc.err); got != tc.want {
			t.Errorf("OutcomeFor(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

// TestRunStatsAggregation feeds real tracer spans through a RunStats sink
// and checks the per-stage, per-cache, cell, and replica aggregation, plus
// the additive Fill contract that lets a handler merge flight-level and
// handler-level stats into one record.
func TestRunStatsAggregation(t *testing.T) {
	stats := NewRunStats()
	ctx := WithTracer(context.Background(), NewTracer(stats))

	finish := func(name string, attrs ...Attr) {
		_, sp := StartSpan(ctx, name)
		for _, a := range attrs {
			sp.SetAttr(a.Key, a.Value)
		}
		sp.Finish()
	}
	finish(SpanTiming)
	finish(SpanThermal)
	finish(SpanThermal)
	finish(SpanFIT)
	finish(SpanMCBatch, Attr{"replicas", "250"})
	finish(SpanCell, Attr{"source", "computed"})
	finish(SpanCell, Attr{"source", "cached"})
	finish(SpanCacheGet, Attr{"stage", "fit"}, Attr{"result", "hit"})
	finish(SpanCacheGet, Attr{"stage", "fit"}, Attr{"result", "miss"})
	finish(SpanCachePut, Attr{"stage", "fit"}, Attr{"spilled", "true"})

	var rec RunRecord
	stats.Fill(&rec)
	if rec.Stages["timing"].Count != 1 || rec.Stages["thermal"].Count != 2 ||
		rec.Stages["fit"].Count != 1 || rec.Stages["mc"].Count != 1 {
		t.Fatalf("stage counts = %+v", rec.Stages)
	}
	if rec.Replicas != 250 {
		t.Errorf("replicas = %d, want 250", rec.Replicas)
	}
	if rec.Cells != 2 || rec.CellsComputed != 1 {
		t.Errorf("cells = %d computed %d, want 2/1", rec.Cells, rec.CellsComputed)
	}
	if c := rec.Cache["fit"]; c.Hits != 1 || c.Misses != 1 || c.Puts != 1 || c.Spills != 1 {
		t.Errorf("cache cost = %+v", c)
	}

	// Fill is additive: a second Fill doubles the counts.
	stats.Fill(&rec)
	if rec.Stages["thermal"].Count != 4 || rec.Cells != 4 || rec.Replicas != 500 {
		t.Errorf("second Fill did not add: %+v cells=%d replicas=%d",
			rec.Stages, rec.Cells, rec.Replicas)
	}
}
