package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DurationBuckets are the default latency-histogram upper bounds in
// seconds, spanning sub-millisecond stage replays to multi-minute cold
// studies. p50/p90/p99 are derivable from any exposition scrape.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Registry is a process-local metrics registry with Prometheus text
// exposition. It supports counters, gauges, fixed-bucket histograms, and
// scrape-time bridges (CounterFunc/GaugeFunc) over pre-existing stat
// sources. All instruments are safe for concurrent use; registration
// methods are idempotent per (name, kind) and panic on a kind conflict,
// which — like expvar.Publish — indicates a programming error.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Label is one exposition label pair.
type Label struct {
	Name, Value string
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one exposition family: a name, a type, and its series.
type family struct {
	name, help string
	kind       metricKind
	labels     []string // label names for Vec-created series
	buckets    []float64

	mu     sync.Mutex
	series map[string]*series // keyed by rendered label string
	order  []string           // insertion order, sorted at exposition
}

// series is one labelled instrument within a family.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64 // scrape-time bridge (counter or gauge)
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat is a CAS-loop float64 accumulator.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// Exemplar is one traced observation attached to a histogram bucket —
// typically a trace_id label pointing at the distributed trace of a
// request that landed in that bucket, rendered OpenMetrics-style in the
// exposition so a dashboard can jump from a latency spike to the exact
// trace that caused it.
type Exemplar struct {
	// Labels identify the traced observation (e.g. trace_id).
	Labels []Label
	// Value is the observed sample.
	Value float64
	// Ts is when the observation happened.
	Ts time.Time
}

// Histogram is a fixed-bucket histogram: per-bucket counters plus a total
// sum and count, rendered as the Prometheus _bucket/_sum/_count triple.
// Buckets may additionally carry the most recent traced observation as an
// OpenMetrics exemplar (see ObserveExemplar).
type Histogram struct {
	bounds    []float64
	counts    []atomic.Uint64 // len(bounds)+1; last is +Inf overflow
	exemplars []atomic.Pointer[Exemplar]
	sum       atomicFloat
	count     atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveExemplar records one sample and, when labels are given, replaces
// the containing bucket's exemplar with this observation (last write
// wins — recency is the useful property for "what just got slow").
func (h *Histogram) ObserveExemplar(v float64, labels ...Label) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if len(labels) > 0 {
		h.exemplars[i].Store(&Exemplar{Labels: labels, Value: v, Ts: time.Now()})
	}
}

// Exemplars returns the current per-bucket exemplars, aligned with
// Bounds() plus the +Inf bucket; entries are nil where no traced
// observation has landed.
func (h *Histogram) Exemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Snapshot returns cumulative bucket counts aligned with Bounds()
// followed by the +Inf bucket, plus sum and count. The counts are read
// individually (each atomically); under concurrent observation the
// cumulative property still holds per read order.
func (h *Histogram) Snapshot() (cumulative []uint64, sum float64, count uint64) {
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return cumulative, h.sum.Value(), h.count.Load()
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Quantile returns an estimate of quantile q (0..1) by linear
// interpolation within the containing bucket — good enough for p50/p90/p99
// reporting without a client-side PromQL engine.
func (h *Histogram) Quantile(q float64) float64 {
	cum, _, count := h.Snapshot()
	if count == 0 {
		return 0
	}
	rank := q * float64(count)
	lower := 0.0
	for i, c := range cum {
		if float64(c) >= rank {
			upper := math.Inf(1)
			if i < len(h.bounds) {
				upper = h.bounds[i]
			}
			if math.IsInf(upper, 1) {
				return lower
			}
			prev := uint64(0)
			if i > 0 {
				prev = cum[i-1]
			}
			width := float64(c - prev)
			if width == 0 {
				return upper
			}
			return lower + (upper-lower)*(rank-float64(prev))/width
		}
		if i < len(h.bounds) {
			lower = h.bounds[i]
		}
	}
	return lower
}

// family registration -------------------------------------------------------

func (r *Registry) familyFor(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind,
			labels: labels, buckets: buckets,
			series: make(map[string]*series),
		}
		r.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

func (f *family) seriesFor(labels []Label) *series {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: labels}
		switch f.kind {
		case kindCounter:
			s.ctr = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = newHistogram(f.buckets)
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.familyFor(name, help, kindCounter, nil, nil).seriesFor(nil).ctr
}

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.familyFor(name, help, kindGauge, nil, nil).seriesFor(nil).gauge
}

// Histogram registers (or returns) an unlabelled histogram with the given
// bucket upper bounds (nil = DurationBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DurationBuckets
	}
	return r.familyFor(name, help, kindHistogram, nil, buckets).seriesFor(nil).hist
}

// CounterFunc registers a scrape-time counter bridge: fn is read at every
// exposition and must be monotonically non-decreasing (it typically wraps
// an existing Stats snapshot).
func (r *Registry) CounterFunc(name, help string, labels []Label, fn func() float64) {
	f := r.familyFor(name, help, kindCounter, labelNames(labels), nil)
	s := f.seriesFor(labels)
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers a scrape-time gauge bridge.
func (r *Registry) GaugeFunc(name, help string, labels []Label, fn func() float64) {
	f := r.familyFor(name, help, kindGauge, labelNames(labels), nil)
	s := f.seriesFor(labels)
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// CounterVec is a counter family with a fixed label-name set.
type CounterVec struct {
	f      *family
	labels []string
}

// CounterVec registers (or returns) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.familyFor(name, help, kindCounter, labelNames, nil), labels: labelNames}
}

// With returns the counter for the given label values (one per label
// name, in order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.seriesFor(zipLabels(v.labels, values)).ctr
}

// GaugeVec is a gauge family with a fixed label-name set.
type GaugeVec struct {
	f      *family
	labels []string
}

// GaugeVec registers (or returns) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.familyFor(name, help, kindGauge, labelNames, nil), labels: labelNames}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.seriesFor(zipLabels(v.labels, values)).gauge
}

// HistogramVec is a histogram family with a fixed label-name set.
type HistogramVec struct {
	f      *family
	labels []string
}

// HistogramVec registers (or returns) a labelled histogram family
// (nil buckets = DurationBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DurationBuckets
	}
	return &HistogramVec{f: r.familyFor(name, help, kindHistogram, labelNames, buckets), labels: labelNames}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.seriesFor(zipLabels(v.labels, values)).hist
}

func zipLabels(names, values []string) []Label {
	if len(names) != len(values) {
		panic(fmt.Sprintf("obs: %d label values for %d label names", len(values), len(names)))
	}
	out := make([]Label, len(names))
	for i := range names {
		out[i] = Label{names[i], values[i]}
	}
	return out
}

func labelNames(labels []Label) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = l.Name
	}
	return out
}

// exposition ----------------------------------------------------------------

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, a # HELP / # TYPE pair
// per family, histograms as cumulative _bucket{le=...} series plus _sum
// and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, len(f.order))
	copy(keys, f.order)
	sort.Strings(keys)
	rows := make([]*series, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, f.series[k])
	}
	f.mu.Unlock()
	if len(rows) == 0 {
		return
	}

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range rows {
		ls := renderLabels(s.labels)
		switch {
		case s.fn != nil:
			fmt.Fprintf(b, "%s%s %s\n", f.name, braced(ls), formatFloat(s.fn()))
		case s.ctr != nil:
			fmt.Fprintf(b, "%s%s %d\n", f.name, braced(ls), s.ctr.Value())
		case s.gauge != nil:
			fmt.Fprintf(b, "%s%s %d\n", f.name, braced(ls), s.gauge.Value())
		case s.hist != nil:
			cum, sum, count := s.hist.Snapshot()
			for i, bound := range s.hist.bounds {
				fmt.Fprintf(b, "%s_bucket%s %d%s\n", f.name,
					braced(joinLabels(ls, fmt.Sprintf(`le="%s"`, formatFloat(bound)))), cum[i],
					renderExemplar(s.hist.exemplars[i].Load()))
			}
			fmt.Fprintf(b, "%s_bucket%s %d%s\n", f.name,
				braced(joinLabels(ls, `le="+Inf"`)), cum[len(cum)-1],
				renderExemplar(s.hist.exemplars[len(cum)-1].Load()))
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, braced(ls), formatFloat(sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, braced(ls), count)
		}
	}
}

// renderExemplar renders an OpenMetrics exemplar suffix for a bucket
// line — ` # {trace_id="..."} value timestamp` — or "" when e is nil.
func renderExemplar(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {%s} %s %.3f", renderLabels(e.Labels), formatFloat(e.Value),
		float64(e.Ts.UnixMilli())/1000)
}

// renderLabels renders label pairs as `a="x",b="y"` (no braces).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf(`%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	return strings.Join(parts, ",")
}

func joinLabels(existing, extra string) string {
	if existing == "" {
		return extra
	}
	return existing + "," + extra
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}
