package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// chromeEvent is one Chrome trace-event ("ph":"X" complete event). The
// format is the trace-event JSON that chrome://tracing and Perfetto load:
// timestamps and durations in microseconds, one row per (pid, tid).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTraceDoc is the object form of the trace file; Perfetto also
// accepts a bare array, but the object form lets us carry displayTimeUnit.
type chromeTraceDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders completed spans as Chrome trace-event JSON.
// Each span becomes one complete ("X") event: its Track is the tid (one
// row per span tree, i.e. one row per cell/request), the portion of the
// span name before the first dot is the category, and attributes become
// args. Events are emitted sorted by start time, then track, then name,
// so the output is deterministic for a deterministic clock — the property
// the golden-file test pins down.
func WriteChromeTrace(w io.Writer, spans []*Span) error {
	doc := chromeTraceDoc{TraceEvents: buildChromeEvents(spans), DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

func buildChromeEvents(spans []*Span) []chromeEvent {
	live := make([]*Span, 0, len(spans))
	var base time.Time
	for _, sp := range spans {
		if sp == nil || sp.End.IsZero() {
			continue
		}
		if base.IsZero() || sp.Start.Before(base) {
			base = sp.Start
		}
		live = append(live, sp)
	}
	events := make([]chromeEvent, 0, len(live))
	for _, sp := range live {
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  spanCategory(sp.Name),
			Ph:   "X",
			TS:   float64(sp.Start.Sub(base)) / float64(time.Microsecond),
			Dur:  float64(sp.End.Sub(sp.Start)) / float64(time.Microsecond),
			PID:  1,
			TID:  sp.Track,
		}
		if attrs := sp.Attrs(); len(attrs) > 0 {
			ev.Args = make(map[string]string, len(attrs))
			for _, a := range attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		if events[i].TID != events[j].TID {
			return events[i].TID < events[j].TID
		}
		return events[i].Name < events[j].Name
	})
	return events
}

func spanCategory(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}

// TraceEntry is one retained study trace: identity plus its spans.
type TraceEntry struct {
	// Key is the study's content-addressed cache key.
	Key string
	// RequestID is the request that led the study's flight.
	RequestID string
	// CapturedAt stamps the study's completion.
	CapturedAt time.Time
	// Spans are the study's completed spans.
	Spans []*Span
}

// TraceRing retains the last N study traces. All methods are safe for
// concurrent use.
type TraceRing struct {
	mu      sync.Mutex
	max     int
	entries []TraceEntry // oldest first
}

// NewTraceRing returns a ring retaining at most max entries (min 1).
func NewTraceRing(max int) *TraceRing {
	if max < 1 {
		max = 1
	}
	return &TraceRing{max: max}
}

// Add retains a trace, evicting the oldest entry beyond the bound.
func (r *TraceRing) Add(e TraceEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, e)
	if len(r.entries) > r.max {
		// Shift rather than reslice so the evicted spans become
		// collectable immediately.
		copy(r.entries, r.entries[1:])
		r.entries[len(r.entries)-1] = TraceEntry{}
		r.entries = r.entries[:len(r.entries)-1]
	}
}

// Latest returns the most recently added entry.
func (r *TraceRing) Latest() (TraceEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) == 0 {
		return TraceEntry{}, false
	}
	return r.entries[len(r.entries)-1], true
}

// ByKey returns the most recent entry whose study key matches.
func (r *TraceRing) ByKey(key string) (TraceEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.entries) - 1; i >= 0; i-- {
		if r.entries[i].Key == key {
			return r.entries[i], true
		}
	}
	return TraceEntry{}, false
}

// List returns a newest-first snapshot of the retained entries' identities
// (spans omitted) with per-entry span counts.
func (r *TraceRing) List() []TraceSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSummary, 0, len(r.entries))
	for i := len(r.entries) - 1; i >= 0; i-- {
		e := r.entries[i]
		out = append(out, TraceSummary{
			Key:        e.Key,
			RequestID:  e.RequestID,
			CapturedAt: e.CapturedAt,
			Spans:      len(e.Spans),
		})
	}
	return out
}

// Len returns the number of retained entries.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// TraceSummary is the spanless identity of a retained trace.
type TraceSummary struct {
	Key        string    `json:"key"`
	RequestID  string    `json:"request_id"`
	CapturedAt time.Time `json:"captured_at"`
	Spans      int       `json:"spans"`
}

// String renders a short human identity for logs.
func (s TraceSummary) String() string {
	return fmt.Sprintf("%s (%d spans, request %s)", s.Key, s.Spans, s.RequestID)
}
