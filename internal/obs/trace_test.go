package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// testClock is a deterministic clock advancing a fixed step per call.
type testClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newTestClock(step time.Duration) *testClock {
	return &testClock{t: time.Unix(1000, 0).UTC(), step: step}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.t
	c.t = c.t.Add(c.step)
	return t
}

func TestSpanHierarchyAndTracks(t *testing.T) {
	col := NewCollector(0)
	tr := NewTracer(col, WithClock(newTestClock(time.Millisecond).Now))
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, SpanCell)
	root.SetAttr("app", "gzip")
	_, child := StartSpan(ctx1, SpanThermal)
	child.Finish()
	root.Finish()

	// A second root gets its own track.
	_, root2 := StartSpan(ctx, SpanCell)
	root2.Finish()

	spans := col.Spans()
	if len(spans) != 3 {
		t.Fatalf("collected %d spans, want 3", len(spans))
	}
	if spans[0].Name != SpanThermal || spans[1].Name != SpanCell {
		t.Fatalf("completion order = %s, %s; want child first", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent = %d, want root ID %d", spans[0].Parent, spans[1].ID)
	}
	if spans[0].Track != spans[1].Track {
		t.Fatalf("child track %d != root track %d", spans[0].Track, spans[1].Track)
	}
	if spans[2].Track == spans[1].Track {
		t.Fatalf("second root shares track %d with first", spans[2].Track)
	}
	if got := spans[1].Attrs(); len(got) != 1 || got[0] != (Attr{"app", "gzip"}) {
		t.Fatalf("root attrs = %v", got)
	}
	if d := spans[0].Duration(); d != time.Millisecond {
		t.Fatalf("child duration = %v, want 1ms", d)
	}
}

func TestNilTracerFastPath(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, SpanTiming)
	if sp != nil {
		t.Fatal("expected nil span without a tracer")
	}
	if ctx2 != ctx {
		t.Fatal("expected unchanged context without a tracer")
	}
	// All methods are no-ops on nil.
	sp.SetAttr("k", "v")
	sp.Finish()
	if sp.Attrs() != nil || sp.Duration() != 0 {
		t.Fatal("nil span leaked state")
	}
	if WithTracer(ctx, nil) != ctx {
		t.Fatal("WithTracer(nil) must return ctx unchanged")
	}
}

// TestNilTracerZeroAllocs is the hard gate on the uninstrumented hot
// path: starting and finishing a span with no tracer installed must not
// allocate. CI runs this test (and the benchmark below) on every push.
func TestNilTracerZeroAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := StartSpan(ctx, SpanThermal)
		sp.SetAttr("stage", "thermal")
		sp.Finish()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer span start/finish allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestNilTracerZeroAllocsNested covers the deeper-context case: the span
// lookup walks parent contexts but still must not allocate.
func TestNilTracerZeroAllocsNested(t *testing.T) {
	type k struct{}
	ctx := context.WithValue(context.WithValue(context.Background(), k{}, 1), requestIDKey{}, "abc")
	allocs := testing.AllocsPerRun(1000, func() {
		_, sp := StartSpan(ctx, SpanFIT)
		sp.Finish()
	})
	if allocs != 0 {
		t.Fatalf("nested nil-tracer span allocated %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkSpanStartFinishNilTracer(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, SpanThermal)
		sp.SetAttr("stage", "thermal")
		sp.Finish()
	}
}

func BenchmarkSpanStartFinishActiveTracer(b *testing.B) {
	tr := NewTracer(nil)
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, SpanThermal)
		sp.SetAttr("stage", "thermal")
		sp.Finish()
	}
}

func TestCollectorBound(t *testing.T) {
	col := NewCollector(2)
	tr := NewTracer(col)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, SpanCell)
		sp.Finish()
	}
	if n := len(col.Spans()); n != 2 {
		t.Fatalf("bounded collector kept %d spans, want 2", n)
	}
	if d := col.Dropped(); d != 3 {
		t.Fatalf("dropped = %d, want 3", d)
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewCollector(0), NewCollector(0)
	if MultiSink(nil, nil) != nil {
		t.Fatal("MultiSink of nils must be nil")
	}
	if MultiSink(a) != SpanSink(a) {
		t.Fatal("single sink must be returned unwrapped")
	}
	tr := NewTracer(MultiSink(a, nil, b))
	_, sp := StartSpan(WithTracer(context.Background(), tr), SpanStudy)
	sp.Finish()
	if len(a.Spans()) != 1 || len(b.Spans()) != 1 {
		t.Fatalf("fan-out delivered %d/%d, want 1/1", len(a.Spans()), len(b.Spans()))
	}
}

func TestMetricsSinkObservesStageSpans(t *testing.T) {
	reg := NewRegistry()
	hist := reg.HistogramVec("ramp_stage_duration_seconds", "per-stage latency", nil, "stage")
	sink := NewMetricsSink(hist)
	tr := NewTracer(sink, WithClock(newTestClock(10*time.Millisecond).Now))
	ctx := WithTracer(context.Background(), tr)

	for _, name := range []string{SpanTiming, SpanThermal, SpanFIT, SpanCell, SpanStudy} {
		_, sp := StartSpan(ctx, name)
		sp.Finish()
	}
	for _, stage := range []string{"timing", "thermal", "fit"} {
		if n := hist.With(stage).Count(); n != 1 {
			t.Fatalf("stage %s observed %d times, want 1", stage, n)
		}
	}
	// Non-stage spans must not land in any stage bucket.
	total := hist.With("timing").Count() + hist.With("thermal").Count() + hist.With("fit").Count()
	if total != 3 {
		t.Fatalf("total stage observations = %d, want 3", total)
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	col := NewCollector(0)
	tr := NewTracer(col)
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c, sp := StartSpan(ctx, SpanCell)
				_, child := StartSpan(c, SpanFIT)
				child.Finish()
				sp.Finish()
			}
		}()
	}
	wg.Wait()
	spans := col.Spans()
	if len(spans) != 1600 {
		t.Fatalf("collected %d spans, want 1600", len(spans))
	}
	seen := make(map[uint64]bool, len(spans))
	for _, sp := range spans {
		if seen[sp.ID] {
			t.Fatalf("duplicate span ID %d", sp.ID)
		}
		seen[sp.ID] = true
	}
}
