package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ramp_things_total", "things")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := reg.Gauge("ramp_level", "level")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	// Re-registration returns the same instrument.
	if reg.Counter("ramp_things_total", "things") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ramp_x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	reg.Gauge("ramp_x_total", "")
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ramp_dur_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	cum, sum, count := h.Snapshot()
	// 0.01 lands in the le=0.01 bucket (boundary inclusive).
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, cum[i], w, cum)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if math.Abs(sum-5.565) > 1e-9 {
		t.Fatalf("sum = %v, want 5.565", sum)
	}
	if q := h.Quantile(0.5); q < 0.01 || q > 0.1 {
		t.Fatalf("p50 = %v, want within (0.01, 0.1]", q)
	}
	if q := h.Quantile(0.99); q != 1 {
		// Rank 4.95 falls in the overflow bucket, whose estimate clamps to
		// the last finite bound.
		t.Fatalf("p99 = %v, want clamp to 1", q)
	}
	if empty := reg.Histogram("ramp_empty_seconds", "", nil).Quantile(0.9); empty != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", empty)
	}
}

// TestPrometheusExposition pins the text-format conventions promtool
// checks: HELP/TYPE pairs, sorted families, _total counters,
// _bucket/_sum/_count histogram triples with a trailing +Inf bucket, and
// escaped label values.
func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("ramp_requests_total", "requests per endpoint", "endpoint").With("/v1/study").Add(3)
	reg.Counter("ramp_shed_total", "shed requests").Inc()
	reg.Gauge("ramp_inflight", "in flight").Set(2)
	reg.GaugeFunc("ramp_queue_depth", "queue", nil, func() float64 { return 4 })
	reg.CounterFunc("ramp_cache_hits_total", "hits", []Label{{"stage", "fit"}}, func() float64 { return 9 })
	h := reg.HistogramVec("ramp_stage_duration_seconds", "stage latency", []float64{0.5, 1}, "stage")
	h.With("timing").Observe(0.25)
	h.With("timing").Observe(2)
	reg.CounterVec("ramp_escape_total", "odd labels", "v").With(`a"b\c` + "\n").Inc()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP ramp_requests_total requests per endpoint\n# TYPE ramp_requests_total counter\n" +
			`ramp_requests_total{endpoint="/v1/study"} 3`,
		"# TYPE ramp_shed_total counter\nramp_shed_total 1",
		"# TYPE ramp_inflight gauge\nramp_inflight 2",
		"ramp_queue_depth 4",
		`ramp_cache_hits_total{stage="fit"} 9`,
		`ramp_stage_duration_seconds_bucket{stage="timing",le="0.5"} 1`,
		`ramp_stage_duration_seconds_bucket{stage="timing",le="1"} 1`,
		`ramp_stage_duration_seconds_bucket{stage="timing",le="+Inf"} 2`,
		`ramp_stage_duration_seconds_sum{stage="timing"} 2.25`,
		`ramp_stage_duration_seconds_count{stage="timing"} 2`,
		`ramp_escape_total{v="a\"b\\c\n"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// Families are sorted by name, and every sample line belongs to the
	// most recent HELP/TYPE family prefix (promtool's grouping rule).
	var families []string
	current := ""
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			current = strings.Fields(line)[2]
			families = append(families, current)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			if name := strings.Fields(line)[2]; name != current {
				t.Fatalf("TYPE %s outside its HELP family %s", name, current)
			}
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if base != current && name != current {
			t.Fatalf("sample %q outside family %q", line, current)
		}
	}
	if !sortStringsIsSorted(families) {
		t.Fatalf("families not sorted: %v", families)
	}
}

func sortStringsIsSorted(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

func TestVecConcurrency(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("ramp_ops_total", "", "op")
	hist := reg.HistogramVec("ramp_lat_seconds", "", nil, "op")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ops := []string{"get", "put", "evict"}
			for i := 0; i < 500; i++ {
				op := ops[i%3]
				vec.With(op).Inc()
				hist.With(op).Observe(float64(i) / 1000)
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, op := range []string{"get", "put", "evict"} {
		total += vec.With(op).Value()
	}
	if total != 4000 {
		t.Fatalf("total = %d, want 4000", total)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `ramp_ops_total{op="evict"}`) {
		t.Fatalf("missing evict series:\n%s", b.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0.5:          "0.5",
		4:            "4",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}

// TestHistogramExemplarRendering pins the OpenMetrics exemplar suffix:
// ObserveExemplar attaches the traced observation to the containing
// bucket (last write wins), including the +Inf overflow bucket, and the
// exposition renders it as ` # {labels} value timestamp` without breaking
// any other line.
func TestHistogramExemplarRendering(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ramp_req_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05) // untraced: no exemplar on this bucket
	h.ObserveExemplar(0.5, Label{"trace_id", "aaaa"})
	h.ObserveExemplar(0.6, Label{"trace_id", "bbbb"}) // replaces aaaa
	h.ObserveExemplar(5, Label{"trace_id", "cccc"})   // +Inf bucket

	ex := h.Exemplars()
	if len(ex) != 3 {
		t.Fatalf("exemplar slots = %d, want bounds+1 = 3", len(ex))
	}
	if ex[0] != nil {
		t.Errorf("untraced bucket grew an exemplar: %+v", ex[0])
	}
	if ex[1] == nil || ex[1].Labels[0].Value != "bbbb" || ex[1].Value != 0.6 {
		t.Errorf("bucket exemplar = %+v, want last-write bbbb @ 0.6", ex[1])
	}
	if ex[2] == nil || ex[2].Labels[0].Value != "cccc" {
		t.Errorf("+Inf exemplar = %+v, want cccc", ex[2])
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		switch {
		case strings.HasPrefix(line, `ramp_req_seconds_bucket{le="0.1"}`):
			if strings.Contains(line, " # ") {
				t.Errorf("untraced bucket rendered an exemplar: %q", line)
			}
		case strings.HasPrefix(line, `ramp_req_seconds_bucket{le="1"}`):
			if !strings.Contains(line, `# {trace_id="bbbb"} 0.6 `) {
				t.Errorf("bucket line lacks the exemplar: %q", line)
			}
		case strings.HasPrefix(line, `ramp_req_seconds_bucket{le="+Inf"}`):
			if !strings.Contains(line, `# {trace_id="cccc"} 5 `) {
				t.Errorf("+Inf line lacks the exemplar: %q", line)
			}
		}
	}
	// _sum and _count never carry exemplars.
	if strings.Contains(out, "_sum{") || strings.Contains(strings.Split(out, "_sum ")[1][:20], " # ") {
		t.Errorf("sum line corrupted:\n%s", out)
	}
}

// TestPrometheusEscaping is the table-driven audit of the text-format
// escaping rules: label values escape backslash, double-quote, and
// newline; HELP text escapes backslash and newline but NOT quotes (per
// the exposition-format spec, quotes are legal in HELP).
func TestPrometheusEscaping(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   string
		want string
	}{
		{"plain", "plain", "plain"},
		{"backslash", `a\b`, `a\\b`},
		{"quote", `say "hi"`, `say \"hi\"`},
		{"newline", "two\nlines", `two\nlines`},
		{"all three", "\\\"\n", `\\\"\n`},
		{"windows path", `C:\temp\new`, `C:\\temp\\new`},
	} {
		if got := escapeLabel(tc.in); got != tc.want {
			t.Errorf("escapeLabel(%s): %q, want %q", tc.name, got, tc.want)
		}
	}
	for _, tc := range []struct {
		name string
		in   string
		want string
	}{
		{"plain", "latency seconds", "latency seconds"},
		{"backslash", `back\slash`, `back\\slash`},
		{"newline", "help\ntext", `help\ntext`},
		{"quote untouched", `a "quoted" help`, `a "quoted" help`},
	} {
		if got := escapeHelp(tc.in); got != tc.want {
			t.Errorf("escapeHelp(%s): %q, want %q", tc.name, got, tc.want)
		}
	}

	// End to end: a hostile label value and HELP survive a full exposition
	// as parseable single lines.
	reg := NewRegistry()
	reg.CounterVec("ramp_hostile_total", "help with \\ and\nnewline", "v").
		With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`# HELP ramp_hostile_total help with \\ and\nnewline` + "\n",
		`ramp_hostile_total{v="a\"b\\c\nd"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.ContainsRune(line, '\r') {
			t.Errorf("raw control byte leaked into line %q", line)
		}
	}
}
