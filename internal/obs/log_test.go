package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestRequestIDRoundTrip(t *testing.T) {
	ctx := context.Background()
	if RequestIDFrom(ctx) != "" {
		t.Fatal("empty ctx must carry no request ID")
	}
	if WithRequestID(ctx, "") != ctx {
		t.Fatal("empty ID must not derive a context")
	}
	ctx = WithRequestID(ctx, "abc123")
	if got := RequestIDFrom(ctx); got != "abc123" {
		t.Fatalf("RequestIDFrom = %q", got)
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("ids %q, %q: want 16 hex chars, distinct", a, b)
	}
	if SanitizeRequestID(a) != a {
		t.Fatalf("generated id %q did not survive sanitisation", a)
	}
}

func TestSanitizeRequestID(t *testing.T) {
	for in, want := range map[string]string{
		"abc-DEF_1.2":             "abc-DEF_1.2",
		"":                        "",
		"has space":               "",
		"inject\"quote":           "",
		"newline\n":               "",
		strings.Repeat("a", 64):   strings.Repeat("a", 64),
		strings.Repeat("a", 65):   "",
		"unicode-é":               "",
		"ok-client-id-0123456789": "ok-client-id-0123456789",
	} {
		if got := SanitizeRequestID(in); got != want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"":        slog.LevelInfo,
		"info":    slog.LevelInfo,
		"DEBUG":   slog.LevelDebug,
		"warn":    slog.LevelWarn,
		" error ": slog.LevelError,
	} {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Fatal("expected error for unknown level")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "request_id", "deadbeef")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log record is not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["request_id"] != "deadbeef" {
		t.Fatalf("record = %v", rec)
	}

	buf.Reset()
	l, err = NewLogger(&buf, slog.LevelWarn, "text")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept")
	if strings.Contains(buf.String(), "dropped") || !strings.Contains(buf.String(), "kept") {
		t.Fatalf("level filtering failed: %q", buf.String())
	}

	if _, err := NewLogger(&buf, slog.LevelInfo, "yaml"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}

// chunkWriter records the byte chunks it receives, so the test can prove
// whole-record writes arrive unsplit and uninterleaved.
type chunkWriter struct {
	mu     sync.Mutex
	chunks []string
}

func (c *chunkWriter) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.chunks = append(c.chunks, string(p))
	return len(p), nil
}

func TestLockedWriterSerialisesRecords(t *testing.T) {
	cw := &chunkWriter{}
	l, err := NewLogger(cw, slog.LevelInfo, "text")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info("progress", "worker", g, "step", i)
			}
		}(g)
	}
	wg.Wait()
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if len(cw.chunks) != 400 {
		t.Fatalf("chunks = %d, want 400 whole-record writes", len(cw.chunks))
	}
	for _, ch := range cw.chunks {
		if !strings.HasSuffix(ch, "\n") || strings.Count(ch, "\n") != 1 {
			t.Fatalf("chunk is not exactly one line: %q", ch)
		}
	}
	// Idempotent wrapping: LockedWriter of a lockedWriter is itself.
	lw := LockedWriter(cw)
	if LockedWriter(lw) != lw {
		t.Fatal("LockedWriter must not double-wrap")
	}
}

func TestNopLogger(t *testing.T) {
	l := NopLogger()
	// Must not panic and must report disabled at every level.
	l.Debug("x")
	l.Error("y")
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("nop logger claims to be enabled")
	}
	if l.Handler().WithAttrs(nil) == nil || l.Handler().WithGroup("g") == nil {
		t.Fatal("nop handler derivations must be usable")
	}
}
