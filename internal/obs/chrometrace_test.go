package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// buildSampleTrace reproduces a miniature study trace with a
// deterministic clock: two cells on separate tracks, each with nested
// stage spans and cache-provenance attributes.
func buildSampleTrace() []*Span {
	col := NewCollector(0)
	tr := NewTracer(col, WithClock(newTestClock(time.Millisecond).Now))
	ctx := WithTracer(context.Background(), tr)

	cell1Ctx, cell1 := StartSpan(ctx, SpanCell)
	cell1.SetAttr("app", "gzip")
	cell1.SetAttr("tech", "180nm")
	tctx, timing := StartSpan(cell1Ctx, SpanTiming)
	timing.SetAttr("app", "gzip")
	_, get := StartSpan(tctx, SpanCacheGet)
	get.SetAttr("stage", "timing")
	get.SetAttr("result", "miss")
	get.Finish()
	timing.Finish()
	_, thermal := StartSpan(cell1Ctx, SpanThermal)
	thermal.Finish()
	_, fit := StartSpan(cell1Ctx, SpanFIT)
	fit.Finish()
	cell1.SetAttr("source", "computed")
	cell1.Finish()

	cell2Ctx, cell2 := StartSpan(ctx, SpanCell)
	cell2.SetAttr("app", "gzip")
	cell2.SetAttr("tech", "65nm (1.0V)")
	_, fit2 := StartSpan(cell2Ctx, SpanFIT)
	fit2.Finish()
	cell2.SetAttr("source", "thermal-cache")
	cell2.Finish()

	return col.Spans()
}

// TestChromeTraceGolden pins the exact trace-event JSON rendering —
// ordering, field set, microsecond timestamps — against a checked-in
// golden file. Run with -update-golden after an intentional format
// change.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, buildSampleTrace()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrometrace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run go test ./internal/obs -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceShape checks the structural invariants any Perfetto
// loader relies on, independent of the golden bytes.
func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, buildSampleTrace()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("%d events, want 7", len(doc.TraceEvents))
	}
	tracks := map[uint64]bool{}
	cells := 0
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 {
			t.Fatalf("event %d: ph=%q pid=%d", i, ev.Ph, ev.PID)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("event %d: negative ts/dur", i)
		}
		if i > 0 && ev.TS < doc.TraceEvents[i-1].TS {
			t.Fatalf("events not sorted by ts at %d", i)
		}
		tracks[ev.TID] = true
		if ev.Name == SpanCell {
			cells++
			if ev.Args["source"] == "" {
				t.Fatalf("cell event missing source attr: %v", ev.Args)
			}
			if ev.Cat != "sim" {
				t.Fatalf("cell category = %q", ev.Cat)
			}
		}
	}
	if cells != 2 {
		t.Fatalf("cell events = %d, want 2", cells)
	}
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d, want 2 (one per cell)", len(tracks))
	}
}

func TestChromeTraceSkipsUnfinishedSpans(t *testing.T) {
	tr := NewTracer(nil, WithClock(newTestClock(time.Millisecond).Now))
	ctx := WithTracer(context.Background(), tr)
	_, open := StartSpan(ctx, SpanStudy)
	_, done := StartSpan(ctx, SpanCell)
	done.Finish()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Span{open, done, nil}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("%d events, want 1 (unfinished and nil spans skipped)", len(doc.TraceEvents))
	}
}

func TestTraceRing(t *testing.T) {
	ring := NewTraceRing(2)
	at := time.Unix(2000, 0).UTC()
	for i, key := range []string{"aaa", "bbb", "ccc"} {
		ring.Add(TraceEntry{Key: key, RequestID: "r" + key, CapturedAt: at.Add(time.Duration(i) * time.Second)})
	}
	if ring.Len() != 2 {
		t.Fatalf("ring len = %d, want 2", ring.Len())
	}
	if _, ok := ring.ByKey("aaa"); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	last, ok := ring.Latest()
	if !ok || last.Key != "ccc" {
		t.Fatalf("latest = %+v, %v", last, ok)
	}
	byKey, ok := ring.ByKey("bbb")
	if !ok || byKey.RequestID != "rbbb" {
		t.Fatalf("ByKey(bbb) = %+v, %v", byKey, ok)
	}
	list := ring.List()
	if len(list) != 2 || list[0].Key != "ccc" || list[1].Key != "bbb" {
		t.Fatalf("list = %+v", list)
	}
	if list[0].String() == "" {
		t.Fatal("empty summary string")
	}
}
