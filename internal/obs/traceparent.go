package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// W3C Trace Context propagation (the traceparent header). rampd parses
// the inbound header into a TraceContext, carries it alongside the
// request ID through study contexts and batch jobs, echoes it on
// responses, and stamps its trace ID on span attributes, run-ledger
// records, and histogram exemplars — so one identifier correlates a
// client's distributed trace with everything the server recorded about
// the run. The groundwork for cross-peer traces when studies fan out
// across a rampd cluster.

// TraceContext is one parsed W3C traceparent: a 16-byte trace ID and an
// 8-byte span (parent) ID, both lowercase hex, plus the trace flags. The
// zero value is invalid; test with Valid.
type TraceContext struct {
	// TraceID is 32 lowercase hex digits identifying the whole trace.
	TraceID string
	// SpanID is 16 lowercase hex digits identifying the parent span.
	SpanID string
	// Flags is the trace-flags byte; bit 0 (0x01) is "sampled".
	Flags byte
}

// traceparentVersion is the only version this implementation emits. Per
// the spec, higher inbound versions are parsed leniently as version 00.
const traceparentVersion = "00"

// Valid reports whether the context carries a usable trace: well-formed,
// non-zero trace and span IDs.
func (tc TraceContext) Valid() bool {
	return isHex(tc.TraceID, 32) && !allZero(tc.TraceID) &&
		isHex(tc.SpanID, 16) && !allZero(tc.SpanID)
}

// String renders the context as a traceparent header value
// (00-<trace-id>-<span-id>-<flags>), or "" when invalid.
func (tc TraceContext) String() string {
	if !tc.Valid() {
		return ""
	}
	var flags [1]byte
	flags[0] = tc.Flags
	return traceparentVersion + "-" + tc.TraceID + "-" + tc.SpanID + "-" + hex.EncodeToString(flags[:])
}

// Child returns the context with a fresh span ID: the same trace, one
// hop deeper. Servers respond with (and propagate into jobs) a child, so
// the inbound parent ID is never re-used for work the server did.
func (tc TraceContext) Child() TraceContext {
	tc.SpanID = randHex(8)
	return tc
}

// NewTraceContext starts a fresh sampled trace with random IDs, for
// requests that arrive without a traceparent.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: randHex(16), SpanID: randHex(8), Flags: 0x01}
}

// ParseTraceparent parses a traceparent header value. It accepts the
// version 00 wire form — version "-" trace-id "-" parent-id "-" flags,
// all lowercase hex — and, per the W3C forward-compatibility rule,
// any higher version whose value starts with the same four fields.
// ok is false for anything malformed, for version "ff", and for all-zero
// trace or parent IDs.
func ParseTraceparent(h string) (tc TraceContext, ok bool) {
	// Fixed layout: 2+1+32+1+16+1+2 = 55 bytes minimum.
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	version, traceID, spanID, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if !isHex(version, 2) || version == "ff" {
		return TraceContext{}, false
	}
	// Version 00 is exactly 55 bytes; future versions may append
	// "-extra" but never change the leading fields.
	if version == "00" && len(h) != 55 {
		return TraceContext{}, false
	}
	if len(h) > 55 && h[55] != '-' {
		return TraceContext{}, false
	}
	if !isHex(traceID, 32) || allZero(traceID) || !isHex(spanID, 16) || allZero(spanID) || !isHex(flags, 2) {
		return TraceContext{}, false
	}
	b, _ := hex.DecodeString(flags)
	return TraceContext{TraceID: traceID, SpanID: spanID, Flags: b[0]}, true
}

// isHex reports whether s is exactly n lowercase hex digits.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// allZero reports whether s is all '0' — the invalid ID per the spec.
func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// randHex returns 2n lowercase hex digits of cryptographic randomness,
// falling back to the deterministic counter NewRequestID also uses if
// crypto/rand ever fails.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		for i := range b {
			b[i] = byte(idFallback.Add(1))
		}
	}
	return hex.EncodeToString(b)
}

// traceContextKey carries the TraceContext through a request's context,
// the same way requestIDKey carries the request ID.
type traceContextKey struct{}

// WithTraceContext returns ctx carrying tc (unchanged when tc is invalid).
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceContextKey{}, tc)
}

// TraceContextFrom returns the trace context carried by ctx, or the
// invalid zero value.
func TraceContextFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceContextKey{}).(TraceContext)
	return tc
}
