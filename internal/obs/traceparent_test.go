package obs

import (
	"context"
	"strings"
	"testing"
)

const (
	sampleTrace = "0af7651916cd43dd8448eb211c80319c"
	sampleSpan  = "b7ad6b7169203331"
)

// TestParseTraceparent is the table audit of the W3C grammar: the fixed
// version-00 layout, the forward-compatibility rule for higher versions,
// and every malformed shape that must be rejected.
func TestParseTraceparent(t *testing.T) {
	valid := "00-" + sampleTrace + "-" + sampleSpan + "-01"
	for _, tc := range []struct {
		name string
		in   string
		ok   bool
	}{
		{"canonical", valid, true},
		{"not sampled", "00-" + sampleTrace + "-" + sampleSpan + "-00", true},
		{"future version", "cc-" + sampleTrace + "-" + sampleSpan + "-01", true},
		{"future version with suffix", "cc-" + sampleTrace + "-" + sampleSpan + "-01-extra", true},
		{"empty", "", false},
		{"truncated", valid[:54], false},
		{"version ff reserved", "ff-" + sampleTrace + "-" + sampleSpan + "-01", false},
		{"uppercase hex", "00-" + strings.ToUpper(sampleTrace) + "-" + sampleSpan + "-01", false},
		{"non-hex version", "zz-" + sampleTrace + "-" + sampleSpan + "-01", false},
		{"all-zero trace id", "00-" + strings.Repeat("0", 32) + "-" + sampleSpan + "-01", false},
		{"all-zero span id", "00-" + sampleTrace + "-" + strings.Repeat("0", 16) + "-01", false},
		{"bad separator", strings.Replace(valid, "-", "_", 1), false},
		{"version 00 with trailing data", valid + "-extra", false},
		{"future version bad suffix separator", "cc-" + sampleTrace + "-" + sampleSpan + "-01x", false},
		{"non-hex flags", "00-" + sampleTrace + "-" + sampleSpan + "-0g", false},
	} {
		tcx, ok := ParseTraceparent(tc.in)
		if ok != tc.ok {
			t.Errorf("%s: ParseTraceparent(%q) ok = %v, want %v", tc.name, tc.in, ok, tc.ok)
			continue
		}
		if ok && (tcx.TraceID != sampleTrace || tcx.SpanID != sampleSpan) {
			t.Errorf("%s: parsed %+v, want trace %s span %s", tc.name, tcx, sampleTrace, sampleSpan)
		}
	}
}

func TestTraceContextStringRoundTrip(t *testing.T) {
	in := "00-" + sampleTrace + "-" + sampleSpan + "-01"
	tc, ok := ParseTraceparent(in)
	if !ok {
		t.Fatal("canonical header did not parse")
	}
	if tc.Flags != 0x01 {
		t.Fatalf("flags = %#02x, want 0x01", tc.Flags)
	}
	if got := tc.String(); got != in {
		t.Fatalf("String() = %q, want %q", got, in)
	}
	if got := (TraceContext{}).String(); got != "" {
		t.Fatalf("zero value String() = %q, want empty", got)
	}
}

// TestTraceContextChild: a child shares the trace but never the parent's
// span ID — the server must not re-use the caller's span for its own work.
func TestTraceContextChild(t *testing.T) {
	parent := TraceContext{TraceID: sampleTrace, SpanID: sampleSpan, Flags: 0x01}
	child := parent.Child()
	if !child.Valid() {
		t.Fatal("child is invalid")
	}
	if child.TraceID != parent.TraceID || child.Flags != parent.Flags {
		t.Errorf("child changed trace identity: %+v", child)
	}
	if child.SpanID == parent.SpanID {
		t.Error("child re-used the parent span ID")
	}
}

func TestNewTraceContext(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("fresh context invalid: %+v", tc)
	}
	if tc.Flags&0x01 == 0 {
		t.Error("fresh context not sampled")
	}
	if other := NewTraceContext(); other.TraceID == tc.TraceID {
		t.Error("two fresh contexts share a trace ID")
	}
}

func TestTraceContextPropagation(t *testing.T) {
	ctx := context.Background()
	if got := TraceContextFrom(ctx); got.Valid() {
		t.Fatalf("empty context carries a trace: %+v", got)
	}
	tc := NewTraceContext()
	ctx = WithTraceContext(ctx, tc)
	if got := TraceContextFrom(ctx); got != tc {
		t.Fatalf("round trip = %+v, want %+v", got, tc)
	}
	// Invalid contexts are not stored — they would poison the chain.
	ctx2 := WithTraceContext(context.Background(), TraceContext{})
	if got := TraceContextFrom(ctx2); got.Valid() {
		t.Fatalf("invalid context was stored: %+v", got)
	}
}
