package obs

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"
)

// The run ledger: one structured record per study, Monte Carlo run, or
// batch-job execution, retained in a bounded ring. Counters answer "how
// is the service doing"; the ledger answers "what did THIS study cost,
// which stage dominated, and which cache saved it" — the per-run
// attribution the sharded fan-out and the DRM scenario matrix both need.
// Records are assembled by the serving layer from a RunStats span sink
// (riding the tracers the handlers already install) and appended to a
// Ledger, which serves /v1/ops/runs, /v1/ops/tail, and Runner.Runs.

// RunRecord outcome values.
const (
	// RunOK: the run completed successfully.
	RunOK = "ok"
	// RunError: the run failed with a non-cancellation error.
	RunError = "error"
	// RunCancelled: the run was cancelled (client gone, job cancelled).
	RunCancelled = "cancelled"
	// RunDeadline: the run exceeded its compute deadline.
	RunDeadline = "deadline"
)

// OutcomeFor classifies an execution error into a run outcome.
func OutcomeFor(err error) string {
	switch {
	case err == nil:
		return RunOK
	case errors.Is(err, context.DeadlineExceeded):
		return RunDeadline
	case errors.Is(err, context.Canceled):
		return RunCancelled
	default:
		return RunError
	}
}

// RunRecord result-cache provenance values.
const (
	// ResultHit: the finished result was served from the result cache.
	ResultHit = "hit"
	// ResultMiss: this run led the computation.
	ResultMiss = "miss"
	// ResultCoalesced: the run piggybacked on an identical in-flight
	// computation (singleflight follower).
	ResultCoalesced = "coalesced"
)

// StageCost aggregates one pipeline stage's cost within a run.
//
// Field order is part of the record's byte-stable JSON encoding — append
// only.
type StageCost struct {
	// Count is the number of completed spans for the stage.
	Count int `json:"count"`
	// WallMS is the stage's wall-clock footprint: latest span end minus
	// earliest span start, so parallel cells are not double-counted.
	WallMS float64 `json:"wall_ms"`
	// CPUMS is the summed duration of every span — the compute the stage
	// actually burned across workers.
	CPUMS float64 `json:"cpu_ms"`
}

// CacheCost aggregates one stage cache's traffic within a run.
//
// Field order is part of the record's byte-stable JSON encoding — append
// only.
type CacheCost struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	Puts   int `json:"puts"`
	Spills int `json:"spills"`
}

// RunRecord is one completed run as the ledger records it: identity
// (what ran, for whom, under which trace), configuration (fidelity,
// mechanisms), and cost (wall, queue, CPU, per-stage and per-cache
// breakdowns). It is also the wire schema of /v1/ops/runs — the struct
// field order plus encoding/json's sorted map keys make the encoding
// byte-stable, which the golden test pins. Extend by appending fields
// only.
type RunRecord struct {
	// ID is the ledger-assigned sequence number, monotonically increasing
	// per ledger; it doubles as the eviction order of the ring.
	ID uint64 `json:"id"`
	// Kind classifies the run: "study", "study.stream", "mc", or
	// "job.<kind>" for batch-job executions.
	Kind string `json:"kind"`
	// Key is the content-addressed study (or MC study) key.
	Key string `json:"key,omitempty"`
	// Tenant is the submitting tenant ("default" when none was named).
	Tenant string `json:"tenant,omitempty"`
	// RequestID is the X-Request-ID of the originating HTTP request.
	RequestID string `json:"request_id,omitempty"`
	// TraceID is the W3C trace ID that accompanied (or was minted for)
	// the originating request — the join key against distributed traces
	// and histogram exemplars.
	TraceID string `json:"trace_id,omitempty"`
	// JobID is set for batch-job executions.
	JobID string `json:"job_id,omitempty"`
	// Attempt is the 1-based execution attempt for batch jobs.
	Attempt int `json:"attempt,omitempty"`
	// Fidelity is the effective fidelity mode ("exact" when unset).
	Fidelity string `json:"fidelity,omitempty"`
	// Mechanisms is the canonical failure-mechanism set (empty = default).
	Mechanisms []string `json:"mechanisms,omitempty"`
	// Outcome is one of the Run* constants.
	Outcome string `json:"outcome"`
	// Error is the failure message when Outcome != RunOK.
	Error string `json:"error,omitempty"`
	// ResultCache is the result-cache provenance (Result* constants).
	ResultCache string `json:"result_cache,omitempty"`
	// Start is when serving began, UTC.
	Start time.Time `json:"start"`
	// WallMS is the end-to-end serving time.
	WallMS float64 `json:"wall_ms"`
	// QueueMS is time spent waiting before execution (admission or job
	// queue).
	QueueMS float64 `json:"queue_ms,omitempty"`
	// CPUMS is the total span-timed compute across all stages.
	CPUMS float64 `json:"cpu_ms,omitempty"`
	// Instructions is the simulated instruction count the run represents
	// (per-profile instructions × profiles), 0 when unknown.
	Instructions int64 `json:"instructions,omitempty"`
	// Cells and CellsComputed count finished (app × tech) cells and the
	// subset that actually ran the thermal transient.
	Cells         int `json:"cells,omitempty"`
	CellsComputed int `json:"cells_computed,omitempty"`
	// Replicas is the Monte Carlo replica count executed by the run.
	Replicas int `json:"replicas,omitempty"`
	// Stages breaks compute down per pipeline stage ("timing", "thermal",
	// "fit", "mc").
	Stages map[string]StageCost `json:"stages,omitempty"`
	// Cache breaks stage-cache traffic down per stage cache.
	Cache map[string]CacheCost `json:"cache,omitempty"`
}

// RunStats is a SpanSink that aggregates one run's spans into the cost
// fields of a RunRecord: stage spans into StageCost, store.get/put spans
// into CacheCost, cell spans into cell counts, MC batches into replica
// counts. Add it to the MultiSink of the tracer serving the run, then
// Fill the assembled record. Safe for concurrent use.
type RunStats struct {
	mu       sync.Mutex
	stages   map[string]*stageAgg
	cache    map[string]*CacheCost
	cells    int
	computed int
	replicas int
}

type stageAgg struct {
	count    int
	earliest time.Time
	latest   time.Time
	cpu      time.Duration
}

// NewRunStats returns an empty per-run aggregator.
func NewRunStats() *RunStats {
	return &RunStats{
		stages: make(map[string]*stageAgg),
		cache:  make(map[string]*CacheCost),
	}
}

// SpanEnded implements SpanSink.
func (r *RunStats) SpanEnded(sp *Span) {
	switch sp.Name {
	case SpanTiming:
		r.observeStage("timing", sp)
	case SpanThermal:
		r.observeStage("thermal", sp)
	case SpanFIT:
		r.observeStage("fit", sp)
	case SpanMCBatch:
		r.observeStage("mc", sp)
		n := 0
		for _, a := range sp.Attrs() {
			if a.Key == "replicas" {
				n, _ = strconv.Atoi(a.Value)
			}
		}
		r.mu.Lock()
		r.replicas += n
		r.mu.Unlock()
	case SpanCell:
		computed := false
		for _, a := range sp.Attrs() {
			if a.Key == "source" && a.Value == "computed" {
				computed = true
			}
		}
		r.mu.Lock()
		r.cells++
		if computed {
			r.computed++
		}
		r.mu.Unlock()
	case SpanCacheGet, SpanCachePut:
		var stage, result string
		spilled := false
		for _, a := range sp.Attrs() {
			switch a.Key {
			case "stage":
				stage = a.Value
			case "result":
				result = a.Value
			case "spilled":
				spilled = a.Value == "true"
			}
		}
		if stage == "" {
			return
		}
		r.mu.Lock()
		c := r.cache[stage]
		if c == nil {
			c = &CacheCost{}
			r.cache[stage] = c
		}
		if sp.Name == SpanCacheGet {
			switch result {
			case "hit":
				c.Hits++
			case "miss":
				c.Misses++
			}
		} else {
			c.Puts++
			if spilled {
				c.Spills++
			}
		}
		r.mu.Unlock()
	}
}

func (r *RunStats) observeStage(stage string, sp *Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.stages[stage]
	if a == nil {
		a = &stageAgg{earliest: sp.Start, latest: sp.End}
		r.stages[stage] = a
	}
	if sp.Start.Before(a.earliest) {
		a.earliest = sp.Start
	}
	if sp.End.After(a.latest) {
		a.latest = sp.End
	}
	a.count++
	a.cpu += sp.End.Sub(sp.Start)
}

// Fill merges the aggregated costs into rec, adding to (never replacing)
// anything already present — so a handler can combine the stats of a
// coalesced flight with its own handler-level stats in one record.
func (r *RunStats) Fill(rec *RunRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for stage, a := range r.stages {
		if rec.Stages == nil {
			rec.Stages = make(map[string]StageCost)
		}
		sc := rec.Stages[stage]
		sc.Count += a.count
		sc.WallMS += float64(a.latest.Sub(a.earliest)) / float64(time.Millisecond)
		sc.CPUMS += float64(a.cpu) / float64(time.Millisecond)
		rec.Stages[stage] = sc
		rec.CPUMS += float64(a.cpu) / float64(time.Millisecond)
	}
	for stage, c := range r.cache {
		if rec.Cache == nil {
			rec.Cache = make(map[string]CacheCost)
		}
		cc := rec.Cache[stage]
		cc.Hits += c.Hits
		cc.Misses += c.Misses
		cc.Puts += c.Puts
		cc.Spills += c.Spills
		rec.Cache[stage] = cc
	}
	rec.Cells += r.cells
	rec.CellsComputed += r.computed
	rec.Replicas += r.replicas
}

// RunFilter selects records from a Ledger. Zero fields match everything.
type RunFilter struct {
	// Tenant, Key, Outcome, and Kind match the corresponding record
	// fields exactly when non-empty.
	Tenant, Key, Outcome, Kind string
	// Limit caps the number of returned records (newest first);
	// 0 means no cap beyond the ledger's own bound.
	Limit int
}

func (f RunFilter) matches(rec *RunRecord) bool {
	if f.Tenant != "" && rec.Tenant != f.Tenant {
		return false
	}
	if f.Key != "" && rec.Key != f.Key {
		return false
	}
	if f.Outcome != "" && rec.Outcome != f.Outcome {
		return false
	}
	if f.Kind != "" && rec.Kind != f.Kind {
		return false
	}
	return true
}

// LedgerStats snapshots a Ledger's occupancy.
type LedgerStats struct {
	// Appended counts every record ever appended.
	Appended uint64 `json:"appended"`
	// Retained is the number of records currently in the ring.
	Retained int `json:"retained"`
	// Capacity is the ring size.
	Capacity int `json:"capacity"`
	// Dropped counts tail-subscription deliveries discarded because a
	// subscriber's buffer was full.
	Dropped uint64 `json:"dropped"`
}

// DefaultLedgerCapacity is the ring size NewLedger applies when asked
// for a non-positive capacity.
const DefaultLedgerCapacity = 512

// Ledger is a bounded, concurrency-safe ring of RunRecords. Append
// assigns IDs and evicts oldest-first once the ring is full; Runs and
// Get serve queries; Subscribe feeds live tails without ever blocking
// appenders (slow subscribers drop records rather than stall runs).
type Ledger struct {
	mu      sync.Mutex
	ring    []RunRecord
	start   int // index of the oldest record
	count   int
	nextID  uint64
	dropped uint64
	nextSub int
	subs    map[int]chan RunRecord
}

// NewLedger returns a ledger retaining the last capacity records
// (DefaultLedgerCapacity when capacity <= 0).
func NewLedger(capacity int) *Ledger {
	if capacity <= 0 {
		capacity = DefaultLedgerCapacity
	}
	return &Ledger{
		ring: make([]RunRecord, capacity),
		subs: make(map[int]chan RunRecord),
	}
}

// Append assigns the record's ID, stores it (evicting the oldest record
// when full), fans it out to subscribers, and returns the stored copy.
func (l *Ledger) Append(rec RunRecord) RunRecord {
	l.mu.Lock()
	l.nextID++
	rec.ID = l.nextID
	rec.Start = rec.Start.UTC()
	i := (l.start + l.count) % len(l.ring)
	if l.count == len(l.ring) {
		l.start = (l.start + 1) % len(l.ring)
	} else {
		l.count++
	}
	l.ring[i] = rec
	for _, ch := range l.subs {
		select {
		case ch <- rec:
		default:
			l.dropped++
		}
	}
	l.mu.Unlock()
	return rec
}

// Get returns the record with the given ID, or ok=false when it was
// never appended or has been evicted.
func (l *Ledger) Get(id uint64) (RunRecord, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return RunRecord{}, false
	}
	oldest := l.ring[l.start].ID
	if id < oldest || id > l.nextID {
		return RunRecord{}, false
	}
	// IDs are dense, so the offset from the oldest record locates it.
	i := (l.start + int(id-oldest)) % len(l.ring)
	return l.ring[i], true
}

// Runs returns records matching f, newest first.
func (l *Ledger) Runs(f RunFilter) []RunRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []RunRecord
	for k := l.count - 1; k >= 0; k-- {
		rec := l.ring[(l.start+k)%len(l.ring)]
		if !f.matches(&rec) {
			continue
		}
		out = append(out, rec)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Stats snapshots the ledger's occupancy.
func (l *Ledger) Stats() LedgerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LedgerStats{
		Appended: l.nextID,
		Retained: l.count,
		Capacity: len(l.ring),
		Dropped:  l.dropped,
	}
}

// Subscribe registers a live feed of appended records with the given
// channel buffer (minimum 1). Appends never block on a subscriber: when
// the buffer is full the record is dropped for that subscriber (counted
// in Stats.Dropped). cancel unregisters and closes the channel; it is
// idempotent.
func (l *Ledger) Subscribe(buf int) (<-chan RunRecord, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan RunRecord, buf)
	l.mu.Lock()
	id := l.nextSub
	l.nextSub++
	l.subs[id] = ch
	l.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			l.mu.Lock()
			delete(l.subs, id)
			l.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}
