package multicore

import (
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

func testTraces(t *testing.T, n int64, names ...string) ([]*sim.ActivityTrace, sim.Config) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Instructions = n
	traces := make([]*sim.ActivityTrace, 0, len(names))
	for _, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sim.RunTiming(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	return traces, cfg
}

func dualConfig(cfg sim.Config) Config {
	return Config{Base: cfg, Cores: 2}
}

func TestConfigValidate(t *testing.T) {
	_, cfg := testTraces(t, 10_000, "gzip")
	good := dualConfig(cfg)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cores accepted")
	}
	bad = good
	bad.MigrateIntervals = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative migration interval accepted")
	}
}

func TestEvaluateRejections(t *testing.T) {
	traces, cfg := testTraces(t, 20_000, "gzip", "ammp")
	mc := dualConfig(cfg)
	base := scaling.Base()
	if _, err := Evaluate(mc, traces[:1], base, 0, nil); err == nil {
		t.Error("trace/core count mismatch accepted")
	}
	if _, err := Evaluate(mc, []*sim.ActivityTrace{nil, nil}, base, 0, nil); err == nil {
		t.Error("nil traces accepted")
	}
	if _, err := Evaluate(mc, traces, base, 0, []float64{1}); err == nil {
		t.Error("power-scale count mismatch accepted")
	}
}

func TestDualCoreBasics(t *testing.T) {
	traces, cfg := testTraces(t, 200_000, "ammp", "crafty")
	mc := dualConfig(cfg)
	res, err := Evaluate(mc, traces, scaling.Base(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 2 {
		t.Fatalf("per-core results = %d", len(res.PerCore))
	}
	// Chip power is roughly the sum of two cores (both near 26-32 W).
	if res.AvgPowerW < 45 || res.AvgPowerW > 75 {
		t.Errorf("dual-core power = %.1f W, implausible", res.AvgPowerW)
	}
	// The hot workload's core runs hotter.
	if res.PerCore[1].MaxTempK <= res.PerCore[0].MaxTempK {
		t.Errorf("crafty core (%.1fK) not hotter than ammp core (%.1fK)",
			res.PerCore[1].MaxTempK, res.PerCore[0].MaxTempK)
	}
	// Chip FIT is positive and the TC component is counted once.
	fit := res.ChipFIT(core.ReferenceConstants())
	if fit <= 0 {
		t.Fatal("chip FIT must be positive")
	}
	for c := range res.PerCore {
		if tc := res.PerCore[c].RawFIT.ByMechanism()[core.TC]; tc != 0 {
			t.Errorf("core %d carries TC %v; TC must be chip-level only", c, tc)
		}
	}
	if res.RawTCFIT <= 0 {
		t.Error("chip-level TC rate must be positive")
	}
}

func TestDualCoreHotterThanSingleCoreApp(t *testing.T) {
	// Two busy cores share the die and the package: each core's hottest
	// structure must be at least as hot as when the same app runs alone on
	// a single-core die with the same per-core sink behaviour.
	traces, cfg := testTraces(t, 200_000, "crafty", "crafty")
	single, err := sim.EvaluateTech(cfg, traces[0], scaling.Base(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	mc := dualConfig(cfg)
	res, err := Evaluate(mc, traces, scaling.Base(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTempK <= single.MaxStructTempK {
		t.Fatalf("dual-core max temp %.1fK not above single-core %.1fK (shared sink)",
			res.MaxTempK, single.MaxStructTempK)
	}
}

func TestPlacementSymmetry(t *testing.T) {
	// Swapping the two workloads mirrors the per-core results (the tiled
	// floorplan is symmetric) and leaves the chip FIT nearly unchanged.
	traces, cfg := testTraces(t, 150_000, "ammp", "crafty")
	mc := dualConfig(cfg)
	ab, err := Evaluate(mc, traces, scaling.Base(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Evaluate(mc, []*sim.ActivityTrace{traces[1], traces[0]}, scaling.Base(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	consts := core.ReferenceConstants()
	fitAB, fitBA := ab.ChipFIT(consts), ba.ChipFIT(consts)
	if math.Abs(fitAB/fitBA-1) > 0.02 {
		t.Fatalf("placement swap changed chip FIT: %v vs %v", fitAB, fitBA)
	}
	if math.Abs(ab.PerCore[0].MaxTempK-ba.PerCore[1].MaxTempK) > 0.5 {
		t.Fatalf("mirrored core temps differ: %.2f vs %.2f",
			ab.PerCore[0].MaxTempK, ba.PerCore[1].MaxTempK)
	}
}

func TestActivityMigrationEvensTemperatures(t *testing.T) {
	// Rotating a hot and a cool workload between cores narrows the
	// per-core temperature spread and lowers the whole-chip FIT versus a
	// static placement (Heo et al.'s activity-migration effect).
	traces, cfg := testTraces(t, 400_000, "ammp", "crafty")
	static := dualConfig(cfg)
	migrating := dualConfig(cfg)
	migrating.MigrateIntervals = 25

	sres, err := Evaluate(static, traces, scaling.Base(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := Evaluate(migrating, traces, scaling.Base(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Migrations == 0 {
		t.Fatal("no migrations happened")
	}
	spread := func(r Result) float64 {
		return math.Abs(r.PerCore[0].MaxTempK - r.PerCore[1].MaxTempK)
	}
	if spread(mres) >= spread(sres) {
		t.Fatalf("migration did not narrow the temp spread: %.2fK vs %.2fK",
			spread(mres), spread(sres))
	}
	consts := core.ReferenceConstants()
	if mfit, sfit := mres.ChipFIT(consts), sres.ChipFIT(consts); mfit >= sfit {
		t.Fatalf("migration did not lower chip FIT: %v vs %v", mfit, sfit)
	}
	// Each core saw both workloads.
	for c, pc := range mres.PerCore {
		if len(pc.Apps) != 2 {
			t.Errorf("core %d saw %d apps under migration, want 2", c, len(pc.Apps))
		}
	}
}

func TestThermalRunawayIsReportedNotSilent(t *testing.T) {
	// Four busy cores on the single-core 0.8 K/W sink genuinely run away
	// thermally (leakage-temperature feedback diverges). The solver must
	// say so rather than returning NaN temperatures.
	traces, cfg := testTraces(t, 50_000, "crafty", "crafty", "crafty", "crafty")
	mc := Config{Base: cfg, Cores: 4}
	tech, err := scaling.ByName("65nm (1.0V)")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Evaluate(mc, traces, tech, 0, nil)
	if err == nil {
		t.Fatal("thermal runaway went unreported")
	}
}

func TestSinkTargetHoldsOnCMP(t *testing.T) {
	traces, cfg := testTraces(t, 150_000, "gzip", "mesa")
	mc := dualConfig(cfg)
	free, err := Evaluate(mc, traces, scaling.Base(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	held, err := Evaluate(mc, traces, scaling.Base(), free.SinkTempK, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(held.SinkTempK-free.SinkTempK) > 0.5 {
		t.Fatalf("sink target not held: %.2f vs %.2f", held.SinkTempK, free.SinkTempK)
	}
}

func TestQuadCoreGridLayout(t *testing.T) {
	traces, cfg := testTraces(t, 100_000, "ammp", "gzip", "mesa", "crafty")
	mc := Config{Base: cfg, Cores: 4, GridCols: 2}
	res, err := Evaluate(mc, traces, scaling.Base(), 341, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 4 {
		t.Fatalf("per-core results = %d", len(res.PerCore))
	}
	// A 2×2 grid couples cores more tightly than a 1×4 row: the hottest
	// core in the grid should not exceed the row layout's by much, and
	// both must be plausible. (Exact comparison depends on placement, so
	// just check both evaluate cleanly and agree on total power.)
	row, err := Evaluate(Config{Base: cfg, Cores: 4}, traces, scaling.Base(), 341, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AvgPowerW-row.AvgPowerW) > 0.5 {
		t.Fatalf("grid power %.1f vs row power %.1f: layout must not change power",
			res.AvgPowerW, row.AvgPowerW)
	}
	bad := Config{Base: cfg, Cores: 4, GridCols: 3}
	if err := bad.Validate(); err == nil {
		t.Fatal("indivisible grid accepted")
	}
}

func TestQuadCoreScaledTechnology(t *testing.T) {
	traces, cfg := testTraces(t, 100_000, "ammp", "gzip", "mesa", "crafty")
	mc := Config{Base: cfg, Cores: 4}
	tech, err := scaling.ByName("65nm (1.0V)")
	if err != nil {
		t.Fatal(err)
	}
	// A quad-core die needs a CMP-class cooling solution: hold the sink at
	// the usual ~341K, which sizes the sink resistance for the chip power.
	res, err := Evaluate(mc, traces, tech, 341, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 4 {
		t.Fatalf("per-core results = %d", len(res.PerCore))
	}
	if res.MaxTempK < 330 || res.MaxTempK > 420 {
		t.Fatalf("implausible 65nm quad-core max temp %.1fK", res.MaxTempK)
	}
}
