// Package multicore extends the paper's single-core analysis to a
// chip-multiprocessor die: N copies of the POWER4-like core tiled side by
// side, thermally coupled through the shared silicon and package, each
// running its own workload. It supports the two CMP-era questions the
// paper's conclusions point toward: how workload *placement* affects
// whole-chip lifetime, and how much activity migration — periodically
// swapping hot and cool workloads between cores (Heo et al. [7], which the
// paper cites for its leakage model) — recovers reliability.
//
// The failure model composes per the SOFR assumption: the chip is a series
// failure system over every structure of every core (EM, SM, TDDB), plus a
// single package-level thermal-cycling component driven by the
// whole-die average temperature.
package multicore

import (
	"context"
	"fmt"
	"sort"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/drm"
	"github.com/ramp-sim/ramp/internal/floorplan"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/power"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/thermal"
)

// Config parameterises a CMP evaluation.
type Config struct {
	// Base carries the per-core machine, power, thermal, and RAMP models.
	Base sim.Config
	// Cores is the number of tiled cores.
	Cores int
	// MigrateIntervals, when positive, rotates the workload→core
	// assignment every MigrateIntervals 1µs intervals (activity
	// migration). Zero disables migration.
	MigrateIntervals int
	// GridCols, when positive, arranges the cores in a grid with this
	// many columns (Cores must be divisible by it); zero lays every core
	// in a single row.
	GridCols int
	// DRM, when non-nil, runs an independent dynamic-reliability
	// controller on every core: each walks the DVS ladder so its own
	// cumulative (non-TC) failure rate tracks Policy.BudgetFIT. Composes
	// with activity migration.
	DRM *DRMConfig
}

// DRMConfig attaches per-core dynamic reliability management to a CMP
// evaluation.
type DRMConfig struct {
	// Policy is the per-core controller configuration; BudgetFIT is
	// interpreted per core, excluding the chip-level TC component.
	Policy drm.Policy
	// Constants convert raw rates to absolute FITs for the controller.
	Constants core.Constants
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.Cores < 1 {
		return fmt.Errorf("multicore: need at least 1 core, got %d", c.Cores)
	}
	if c.MigrateIntervals < 0 {
		return fmt.Errorf("multicore: negative migration interval")
	}
	if c.GridCols < 0 {
		return fmt.Errorf("multicore: negative grid columns")
	}
	if c.GridCols > 0 && c.Cores%c.GridCols != 0 {
		return fmt.Errorf("multicore: %d cores not divisible into %d columns", c.Cores, c.GridCols)
	}
	if c.DRM != nil {
		if err := c.DRM.Policy.Validate(); err != nil {
			return err
		}
		if err := c.DRM.Constants.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CoreResult summarises one core of the evaluation.
type CoreResult struct {
	// Apps lists the workloads that ran on this core (more than one under
	// migration).
	Apps []string
	// AvgPowerW is the core's time-averaged power.
	AvgPowerW float64
	// MaxTempK is the core's hottest structure temperature over the run.
	MaxTempK float64
	// AvgHotTempK is the time-averaged temperature of the core's hottest
	// structure — the quantity activity migration evens out.
	AvgHotTempK float64
	// RawFIT is the core's accumulated EM/SM/TDDB breakdown with unit
	// constants (TC is chip-level; see Result.RawTCFIT).
	RawFIT core.Breakdown
	// AvgFreqGHz is the core's time-averaged frequency (the technology
	// nominal without DRM).
	AvgFreqGHz float64
	// DRMSwitches counts the core's ladder transitions (0 without DRM).
	DRMSwitches int
}

// Result is a whole-chip evaluation.
type Result struct {
	// Tech is the technology point evaluated.
	Tech scaling.Technology
	// PerCore holds per-core results, indexed by core.
	PerCore []CoreResult
	// RawTCFIT is the single package-level thermal-cycling rate (unit
	// constants), computed from the whole-die average temperature.
	RawTCFIT float64
	// MaxTempK is the hottest structure temperature anywhere on the die.
	MaxTempK float64
	// SinkTempK is the time-averaged heat-sink temperature.
	SinkTempK float64
	// AvgPowerW is the whole-chip average power.
	AvgPowerW float64
	// Migrations counts workload rotations performed.
	Migrations int
}

// ChipFIT returns the calibrated whole-chip failure rate: the SOFR sum of
// every core's EM/SM/TDDB rates plus the package TC rate.
func (r *Result) ChipFIT(consts core.Constants) float64 {
	var sum float64
	for i := range r.PerCore {
		mech := r.PerCore[i].RawFIT.ByMechanism()
		sum += mech[core.EM]*consts.K[core.EM] +
			mech[core.SM]*consts.K[core.SM] +
			mech[core.TDDB]*consts.K[core.TDDB]
	}
	return sum + r.RawTCFIT*consts.K[core.TC]
}

// Evaluate runs a CMP simulation: traces[i] initially runs on core i; under
// activity migration the assignment rotates periodically. All traces must
// come from the same timing configuration. sinkTempTargetK and
// appPowerScales mirror sim.EvaluateTech (scales may be nil for 1.0).
func Evaluate(cfg Config, traces []*sim.ActivityTrace, tech scaling.Technology,
	sinkTempTargetK float64, appPowerScales []float64) (Result, error) {
	return EvaluateContext(context.Background(), cfg, traces, tech, sinkTempTargetK, appPowerScales)
}

// EvaluateContext is Evaluate with cancellation: the interval loop polls
// ctx every few hundred intervals and aborts with ctx.Err(), so long CMP
// runs started from a study scheduler or a CLI unwind promptly.
func EvaluateContext(ctx context.Context, cfg Config, traces []*sim.ActivityTrace, tech scaling.Technology,
	sinkTempTargetK float64, appPowerScales []float64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := tech.Validate(); err != nil {
		return Result{}, err
	}
	if len(traces) != cfg.Cores {
		return Result{}, fmt.Errorf("multicore: %d traces for %d cores", len(traces), cfg.Cores)
	}
	nIntervals := -1
	for i, tr := range traces {
		if tr == nil || len(tr.Timing.Samples) == 0 {
			return Result{}, fmt.Errorf("multicore: empty trace for core %d", i)
		}
		if nIntervals < 0 || len(tr.Timing.Samples) < nIntervals {
			nIntervals = len(tr.Timing.Samples)
		}
	}
	if appPowerScales == nil {
		appPowerScales = make([]float64, cfg.Cores)
		for i := range appPowerScales {
			appPowerScales[i] = 1
		}
	}
	if len(appPowerScales) != cfg.Cores {
		return Result{}, fmt.Errorf("multicore: %d power scales for %d cores", len(appPowerScales), cfg.Cores)
	}

	// Build the tiled die at the target technology.
	single, err := floorplan.POWER4().Scaled(tech.RelArea)
	if err != nil {
		return Result{}, err
	}
	cols := cfg.Cores
	rows := 1
	if cfg.GridCols > 0 {
		cols = cfg.GridCols
		rows = cfg.Cores / cfg.GridCols
	}
	fp, err := single.TiledGrid(cols, rows)
	if err != nil {
		return Result{}, err
	}
	net, err := thermal.NewNetwork(fp, cfg.Base.Thermal)
	if err != nil {
		return Result{}, err
	}
	// One power model per *workload* (the per-app calibration factor
	// follows the app when it migrates) and one evaluator per core.
	models := make([]*power.Model, len(traces))
	evals := make([]*core.Evaluator, cfg.Cores)
	coreAreas := single.Areas()
	for i := range traces {
		pm, err := power.NewModel(cfg.Base.Power, tech, coreAreas)
		if err != nil {
			return Result{}, err
		}
		if appPowerScales[i] > 0 && appPowerScales[i] != 1 {
			if err := pm.SetAppScale(appPowerScales[i]); err != nil {
				return Result{}, err
			}
		}
		models[i] = pm
	}
	for i := 0; i < cfg.Cores; i++ {
		ev, err := core.NewEvaluator(cfg.Base.RAMP, core.UnitConstants(), tech, coreAreas)
		if err != nil {
			return Result{}, err
		}
		evals[i] = ev
	}

	// assignment[c] = index of the trace currently running on core c.
	assignment := make([]int, cfg.Cores)
	for i := range assignment {
		assignment[i] = i
	}

	// Per-core DRM controller state.
	var ladder []drm.OperatingPoint
	level := make([]int, cfg.Cores)
	drmFit := make([]float64, cfg.Cores) // calibrated non-TC FIT·time
	sinceEpoch := make([]int, cfg.Cores)
	if cfg.DRM != nil {
		ladder = make([]drm.OperatingPoint, len(cfg.DRM.Policy.Ladder))
		copy(ladder, cfg.DRM.Policy.Ladder)
		sort.Slice(ladder, func(i, j int) bool { return ladder[i].FreqGHz < ladder[j].FreqGHz })
		for c := range level {
			level[c] = cfg.DRM.Policy.StartLevel
		}
	}
	opFor := func(c int) (vdd, freq float64) {
		if cfg.DRM == nil {
			return tech.VddV, tech.FreqGHz
		}
		op := ladder[level[c]]
		return op.VddV, op.FreqGHz
	}

	// Pass 1: steady state under average activity for sink initialisation.
	// Under migration every core sees every workload in rotation, so the
	// long-run per-core power is the cross-workload average; initialise
	// the thermal state accordingly (runs are typically shorter than the
	// block RC constants, so the initial state carries the result).
	steady, err := solveChipOperatingPoint(cfg, models, net, traces, assignment,
		cfg.MigrateIntervals > 0, sinkTempTargetK)
	if err != nil {
		return Result{}, err
	}
	net.Init(steady)

	res := Result{
		Tech:    tech,
		PerCore: make([]CoreResult, cfg.Cores),
	}
	appsSeen := make([]map[string]bool, cfg.Cores)
	for i := range appsSeen {
		appsSeen[i] = make(map[string]bool, 2)
	}
	nBlocks := cfg.Cores * microarch.NumStructures
	blockP := make([]float64, nBlocks)
	var (
		sumPower, sumSink, totalT float64
		sumCoreP                  = make([]float64, cfg.Cores)
		sumCoreHot                = make([]float64, cfg.Cores)
		sumCoreFreq               = make([]float64, cfg.Cores)
	)
	params := cfg.Base.RAMP
	cyclesPerUs := float64(cfg.Base.Machine.CyclesPerMicrosecond())
	for iv := 0; iv < nIntervals; iv++ {
		if iv&255 == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		// Activity migration: rotate the assignment.
		if cfg.MigrateIntervals > 0 && iv > 0 && iv%cfg.MigrateIntervals == 0 {
			first := assignment[0]
			copy(assignment, assignment[1:])
			assignment[cfg.Cores-1] = first
			res.Migrations++
		}
		cur := net.Current()
		// Duration: use the shortest sample of the interval across cores
		// (they differ only in the final partial interval).
		dur := 1.0
		for c := 0; c < cfg.Cores; c++ {
			s := &traces[assignment[c]].Timing.Samples[iv]
			if d := float64(s.Cycles) / cyclesPerUs; d < dur {
				dur = d
			}
		}
		if dur <= 0 {
			continue
		}
		for c := 0; c < cfg.Cores; c++ {
			pm := models[assignment[c]]
			s := &traces[assignment[c]].Timing.Samples[iv]
			vdd, freq := opFor(c)
			dyn := pm.DynamicAt(s.AF, vdd, freq)
			var coreP float64
			for b := 0; b < microarch.NumStructures; b++ {
				leak := pm.LeakageAtV(microarch.StructureID(b), cur.Blocks[c*microarch.NumStructures+b], vdd)
				blockP[c*microarch.NumStructures+b] = dyn[b] + leak
				coreP += dyn[b] + leak
			}
			sumCoreP[c] += coreP * dur
			sumPower += coreP * dur
			sumCoreFreq[c] += freq * dur
			appsSeen[c][traces[assignment[c]].Profile.Name] = true
		}
		net.Step(blockP, dur*1e-6)
		cur = net.Current()
		dieAvg := net.DieAverage(cur)
		res.RawTCFIT += params.TCRate(dieAvg) * dur
		for c := 0; c < cfg.Cores; c++ {
			s := &traces[assignment[c]].Timing.Samples[iv]
			vdd, _ := opFor(c)
			var blockT [microarch.NumStructures]float64
			copy(blockT[:], cur.Blocks[c*microarch.NumStructures:(c+1)*microarch.NumStructures])
			fit := evals[c].Instant(s.AF, blockT, vdd, dieAvg)
			// Zero the TC rows: TC is accounted once at chip level.
			for b := range fit.ByStructMech {
				fit.ByStructMech[b][core.TC] = 0
			}
			evals[c].Accumulate(fit, dur)
			// Per-core DRM: compare the cumulative calibrated non-TC FIT
			// against the per-core budget at each epoch boundary.
			if cfg.DRM != nil {
				drmFit[c] += fit.Calibrated(cfg.DRM.Constants).Total() * dur
				sinceEpoch[c]++
				if sinceEpoch[c] >= cfg.DRM.Policy.EpochIntervals {
					sinceEpoch[c] = 0
					cum := drmFit[c] / (totalT + dur)
					switch {
					case cum > cfg.DRM.Policy.BudgetFIT && level[c] > 0:
						level[c]--
						res.PerCore[c].DRMSwitches++
					case cum < cfg.DRM.Policy.Headroom*cfg.DRM.Policy.BudgetFIT && level[c] < len(ladder)-1:
						level[c]++
						res.PerCore[c].DRMSwitches++
					}
				}
			}
			coreHot := blockT[0]
			for b := 0; b < microarch.NumStructures; b++ {
				if t := blockT[b]; t > res.PerCore[c].MaxTempK {
					res.PerCore[c].MaxTempK = t
				}
				if blockT[b] > coreHot {
					coreHot = blockT[b]
				}
			}
			sumCoreHot[c] += coreHot * dur
		}
		if t := cur.MaxBlock(); t > res.MaxTempK {
			res.MaxTempK = t
		}
		sumSink += cur.Sink * dur
		totalT += dur
	}
	if totalT == 0 {
		return Result{}, fmt.Errorf("multicore: no evaluable intervals")
	}
	res.RawTCFIT /= totalT
	res.AvgPowerW = sumPower / totalT
	res.SinkTempK = sumSink / totalT
	for c := 0; c < cfg.Cores; c++ {
		res.PerCore[c].RawFIT = evals[c].Average()
		res.PerCore[c].AvgPowerW = sumCoreP[c] / totalT
		res.PerCore[c].AvgHotTempK = sumCoreHot[c] / totalT
		res.PerCore[c].AvgFreqGHz = sumCoreFreq[c] / totalT
		for app := range appsSeen[c] {
			res.PerCore[c].Apps = append(res.PerCore[c].Apps, app)
		}
	}
	return res, nil
}

// solveChipOperatingPoint iterates the leakage-temperature fixed point for
// the whole chip. With averaged set, each core's dynamic power is the mean
// across all workloads (the migration steady state); otherwise it is the
// assigned workload's average power.
func solveChipOperatingPoint(cfg Config, models []*power.Model, net *thermal.Network,
	traces []*sim.ActivityTrace, assignment []int, averaged bool, sinkTempTargetK float64) (thermal.State, error) {
	nBlocks := cfg.Cores * microarch.NumStructures
	temps := make([]float64, nBlocks)
	for i := range temps {
		temps[i] = 355
	}
	// Per-core average dynamic power.
	coreDyn := make([][microarch.NumStructures]float64, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		if averaged {
			for t := range traces {
				dyn := models[t].Dynamic(traces[t].Timing.AvgAF)
				for b := range coreDyn[c] {
					coreDyn[c][b] += dyn[b] / float64(len(traces))
				}
			}
		} else {
			coreDyn[c] = models[assignment[c]].Dynamic(traces[assignment[c]].Timing.AvgAF)
		}
	}
	blockP := make([]float64, nBlocks)
	var steady thermal.State
	for iter := 0; iter < 60; iter++ {
		var total float64
		for c := 0; c < cfg.Cores; c++ {
			pm := models[assignment[c]]
			for b := 0; b < microarch.NumStructures; b++ {
				leak := pm.LeakageAt(microarch.StructureID(b), temps[c*microarch.NumStructures+b])
				blockP[c*microarch.NumStructures+b] = coreDyn[c][b] + leak
				total += coreDyn[c][b] + leak
			}
		}
		if sinkTempTargetK > 0 {
			r := (sinkTempTargetK - net.Ambient()) / total
			if r <= 0 {
				return thermal.State{}, fmt.Errorf("multicore: sink target %vK at/below ambient", sinkTempTargetK)
			}
			if err := net.SetSinkR(r); err != nil {
				return thermal.State{}, err
			}
		}
		next, err := net.SteadyState(blockP)
		if err != nil {
			return thermal.State{}, err
		}
		var maxDelta float64
		for i := range temps {
			if !sim.IsReasonableTemp(next.Blocks[i]) {
				return thermal.State{}, fmt.Errorf(
					"multicore: thermal runaway at %.0fW across %d cores: cooling "+
						"insufficient (provide a sink-temperature target or a lower SinkR)",
					total, cfg.Cores)
			}
			d := next.Blocks[i] - temps[i]
			if d < 0 {
				d = -d
			}
			if d > maxDelta {
				maxDelta = d
			}
			temps[i] = 0.5*temps[i] + 0.5*next.Blocks[i]
		}
		steady = next
		if maxDelta < 1e-4 {
			return steady, nil
		}
	}
	return steady, fmt.Errorf("multicore: operating point did not converge")
}
