package multicore

import (
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/drm"
	"github.com/ramp-sim/ramp/internal/scaling"
)

func drmConfig(base Config, budget float64, tech scaling.Technology) Config {
	base.DRM = &DRMConfig{
		Policy: drm.Policy{
			Ladder:         drm.DefaultLadder(tech),
			BudgetFIT:      budget,
			EpochIntervals: 25,
			Headroom:       0.9,
			StartLevel:     2,
		},
		Constants: core.ReferenceConstants(),
	}
	return base
}

func TestCMPDRMValidation(t *testing.T) {
	traces, cfg := testTraces(t, 20_000, "gzip", "ammp")
	tech, err := scaling.ByName("65nm (1.0V)")
	if err != nil {
		t.Fatal(err)
	}
	mc := drmConfig(dualConfig(cfg), 16000, tech)
	if err := mc.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := mc
	badDRM := *mc.DRM
	badDRM.Policy.BudgetFIT = -1
	bad.DRM = &badDRM
	if err := bad.Validate(); err == nil {
		t.Error("invalid per-core DRM policy accepted")
	}
	_ = traces
}

func TestCMPDRMGenerousBudgetReachesTop(t *testing.T) {
	traces, cfg := testTraces(t, 300_000, "ammp", "gzip")
	tech, err := scaling.ByName("65nm (1.0V)")
	if err != nil {
		t.Fatal(err)
	}
	mc := drmConfig(dualConfig(cfg), 1e9, tech)
	res, err := Evaluate(mc, traces, tech, 341, nil)
	if err != nil {
		t.Fatal(err)
	}
	for c, pc := range res.PerCore {
		if pc.AvgFreqGHz < 0.9*tech.FreqGHz {
			t.Errorf("core %d avg freq %.2f under an unlimited budget (nominal %.2f)",
				c, pc.AvgFreqGHz, tech.FreqGHz)
		}
		if pc.DRMSwitches == 0 {
			t.Errorf("core %d never climbed the ladder", c)
		}
	}
}

func TestCMPDRMThrottlesHotCoreMore(t *testing.T) {
	// A shared per-core budget throttles the hot workload's core harder
	// than the cool one's — per-core DRM on a CMP.
	traces, cfg := testTraces(t, 400_000, "ammp", "crafty")
	tech, err := scaling.ByName("65nm (1.0V)")
	if err != nil {
		t.Fatal(err)
	}
	mc := drmConfig(dualConfig(cfg), 8000, tech)
	res, err := Evaluate(mc, traces, tech, 341, nil)
	if err != nil {
		t.Fatal(err)
	}
	cool, hot := res.PerCore[0], res.PerCore[1]
	if cool.AvgFreqGHz <= hot.AvgFreqGHz {
		t.Fatalf("cool core %.3f GHz not above hot core %.3f GHz",
			cool.AvgFreqGHz, hot.AvgFreqGHz)
	}
}

func TestCMPDRMComposesWithMigration(t *testing.T) {
	traces, cfg := testTraces(t, 300_000, "ammp", "crafty")
	tech, err := scaling.ByName("65nm (1.0V)")
	if err != nil {
		t.Fatal(err)
	}
	mc := drmConfig(dualConfig(cfg), 12000, tech)
	mc.MigrateIntervals = 50
	res, err := Evaluate(mc, traces, tech, 341, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Fatal("migration did not run alongside DRM")
	}
	for c, pc := range res.PerCore {
		if len(pc.Apps) != 2 {
			t.Errorf("core %d saw %d apps under migration", c, len(pc.Apps))
		}
		if pc.AvgFreqGHz <= 0 {
			t.Errorf("core %d has no frequency accounting", c)
		}
	}
}

func TestCMPWithoutDRMReportsNominalFrequency(t *testing.T) {
	traces, cfg := testTraces(t, 100_000, "gzip", "ammp")
	res, err := Evaluate(dualConfig(cfg), traces, scaling.Base(), 341, nil)
	if err != nil {
		t.Fatal(err)
	}
	for c, pc := range res.PerCore {
		if math.Abs(pc.AvgFreqGHz-scaling.Base().FreqGHz) > 1e-9 {
			t.Errorf("core %d freq %.3f, want nominal %.3f",
				c, pc.AvgFreqGHz, scaling.Base().FreqGHz)
		}
		if pc.DRMSwitches != 0 {
			t.Errorf("core %d has DRM switches without DRM", c)
		}
	}
}
