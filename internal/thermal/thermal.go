// Package thermal implements a HotSpot-class lumped-RC thermal model of
// the modeled die (paper §4.3). Each floorplan block is one silicon node
// with a vertical conduction path (die bulk + thermal interface material +
// spreading resistance) into a copper heat-spreader node, lateral coupling
// to adjacent blocks through the silicon, and a heat-sink node that
// convects to ambient through a configurable sink resistance (0.8 K/W for
// the base 180nm machine, per [14]).
//
// The network size follows the floorplan: the single-core 7-block die of
// the paper, or an N-core tiled CMP floorplan (floorplan.Tiled) whose
// cores couple laterally through the shared silicon and package.
//
// Like HotSpot, the model distinguishes the fast block time constants
// (milliseconds) from the very slow sink time constant (tens of seconds):
// simulations must initialise the sink with its steady-state temperature,
// which the paper does with a two-pass methodology (§4.3) implemented in
// internal/sim.
package thermal

import (
	"fmt"
	"math"

	"github.com/ramp-sim/ramp/internal/floorplan"
	"github.com/ramp-sim/ramp/internal/phys"
)

// Params holds the physical constants of the package stack.
type Params struct {
	// DieThicknessM is the silicon die thickness in metres.
	DieThicknessM float64
	// SiliconK and CopperK are thermal conductivities in W/(m·K).
	SiliconK, CopperK float64
	// TIMThicknessM and TIMK describe the thermal interface material
	// between die and spreader.
	TIMThicknessM, TIMK float64
	// SpreadCoeff is the dimensionless constriction/spreading coefficient
	// of the block→spreader path: R_spread = SpreadCoeff/(CopperK·√A).
	SpreadCoeff float64
	// SpreaderSinkR is the spreader→sink conduction resistance in K/W.
	SpreaderSinkR float64
	// SinkR is the sink→ambient convection resistance in K/W (0.8 at the
	// 180nm base point; scaled per application and technology to hold the
	// sink temperature constant, §4.3).
	SinkR float64
	// SpreaderC and SinkC are lumped heat capacities in J/K.
	SpreaderC, SinkC float64
	// AmbientK is the ambient temperature in Kelvin.
	AmbientK float64
}

// DefaultParams returns the package stack used for all experiments:
// HotSpot-like silicon/copper constants with the paper's 0.8 K/W sink.
func DefaultParams() Params {
	return Params{
		DieThicknessM: 0.5e-3,
		SiliconK:      phys.SiliconConductivity,
		CopperK:       phys.CopperConductivity,
		TIMThicknessM: 2.8e-5,
		TIMK:          5.0,
		SpreadCoeff:   0.75,
		SpreaderSinkR: 0.05,
		SinkR:         0.8,
		SpreaderC:     3.0,
		SinkC:         140.0,
		AmbientK:      phys.CelsiusToKelvin(45),
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"DieThicknessM", p.DieThicknessM},
		{"SiliconK", p.SiliconK},
		{"CopperK", p.CopperK},
		{"TIMThicknessM", p.TIMThicknessM},
		{"TIMK", p.TIMK},
		{"SpreadCoeff", p.SpreadCoeff},
		{"SpreaderSinkR", p.SpreaderSinkR},
		{"SinkR", p.SinkR},
		{"SpreaderC", p.SpreaderC},
		{"SinkC", p.SinkC},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("thermal: %s must be positive", c.name)
		}
	}
	if p.AmbientK < 200 || p.AmbientK > 400 {
		return fmt.Errorf("thermal: implausible ambient %v K", p.AmbientK)
	}
	return nil
}

// State is a snapshot of all node temperatures in Kelvin.
type State struct {
	// Blocks holds silicon block temperatures in floorplan block order
	// (StructureID order for the single-core floorplan).
	Blocks []float64
	// Spreader and Sink are the package node temperatures.
	Spreader, Sink float64
}

// MaxBlock returns the hottest block temperature (0 for an empty state).
func (s State) MaxBlock() float64 {
	if len(s.Blocks) == 0 {
		return 0
	}
	maxT := s.Blocks[0]
	for _, t := range s.Blocks[1:] {
		if t > maxT {
			maxT = t
		}
	}
	return maxT
}

// clone deep-copies the state.
func (s State) clone() State {
	out := State{Spreader: s.Spreader, Sink: s.Sink, Blocks: make([]float64, len(s.Blocks))}
	copy(out.Blocks, s.Blocks)
	return out
}

// Network is the RC model for one floorplan instance.
type Network struct {
	params   Params
	nBlocks  int
	spreader int // node index
	sink     int // node index
	nNodes   int
	// g[i][j] is the thermal conductance (W/K) between nodes i and j.
	g [][]float64
	// gAmb is the sink→ambient conductance.
	gAmb float64
	// c[i] is the node heat capacity in J/K.
	c []float64
	// temps are current node temperatures (transient state).
	temps []float64
	// scratch buffers reused across Step calls.
	next []float64
	// k1, mid, k2 are Heun-stage scratch buffers reused across StepHeun
	// calls so coarse-step integration stays allocation-free.
	k1, mid, k2 []float64
	// areaFrac is each block's fraction of die area (for averages).
	areaFrac []float64
}

// NewNetwork builds the RC network for a floorplan. The floorplan must
// already be scaled to the target technology; it may have any number of
// blocks (a single core's 7, or an N-core tiling).
func NewNetwork(fp floorplan.Floorplan, params Params) (*Network, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	nBlocks := len(fp.Blocks)
	n := &Network{
		params:   params,
		nBlocks:  nBlocks,
		spreader: nBlocks,
		sink:     nBlocks + 1,
		nNodes:   nBlocks + 2,
	}
	n.g = make([][]float64, n.nNodes)
	for i := range n.g {
		n.g[i] = make([]float64, n.nNodes)
	}
	n.c = make([]float64, n.nNodes)
	n.temps = make([]float64, n.nNodes)
	n.next = make([]float64, n.nNodes)
	n.k1 = make([]float64, n.nNodes)
	n.mid = make([]float64, n.nNodes)
	n.k2 = make([]float64, n.nNodes)
	n.areaFrac = make([]float64, nBlocks)

	dieArea := fp.DieArea()
	for i, b := range fp.Blocks {
		areaM2 := b.Area() * 1e-6 // mm² → m²
		// Vertical path: die conduction + TIM + spreading constriction.
		rCond := params.DieThicknessM / (params.SiliconK * areaM2)
		rTIM := params.TIMThicknessM / (params.TIMK * areaM2)
		rSpread := params.SpreadCoeff / (params.CopperK * math.Sqrt(areaM2))
		n.g[i][n.spreader] = 1 / (rCond + rTIM + rSpread)
		n.g[n.spreader][i] = n.g[i][n.spreader]
		n.c[i] = phys.SiliconVolumetricHeat * areaM2 * params.DieThicknessM
		n.areaFrac[i] = b.Area() / dieArea
	}
	// Lateral coupling between adjacent blocks (including across core
	// boundaries on tiled floorplans).
	for i := 0; i < nBlocks; i++ {
		for j := i + 1; j < nBlocks; j++ {
			edgeMm := fp.SharedEdge(i, j)
			if edgeMm <= 0 {
				continue
			}
			distM := fp.CenterDistance(i, j) * 1e-3
			edgeM := edgeMm * 1e-3
			r := distM / (params.SiliconK * params.DieThicknessM * edgeM)
			n.g[i][j] = 1 / r
			n.g[j][i] = n.g[i][j]
		}
	}
	// Package stack: the spreader and sink grow with die size implicitly
	// through the per-block couplings; their lumped capacities stay fixed.
	n.g[n.spreader][n.sink] = 1 / params.SpreaderSinkR
	n.g[n.sink][n.spreader] = n.g[n.spreader][n.sink]
	n.gAmb = 1 / params.SinkR
	n.c[n.spreader] = params.SpreaderC
	n.c[n.sink] = params.SinkC
	for i := range n.temps {
		n.temps[i] = params.AmbientK
	}
	return n, nil
}

// NumBlocks returns the number of silicon nodes.
func (n *Network) NumBlocks() int { return n.nBlocks }

// SetSinkR changes the sink→ambient resistance (used to hold the sink
// temperature constant across technologies, §4.3/§4.6).
func (n *Network) SetSinkR(r float64) error {
	if r <= 0 {
		return fmt.Errorf("thermal: sink resistance must be positive, got %v", r)
	}
	n.gAmb = 1 / r
	return nil
}

// SinkR returns the current sink→ambient resistance.
func (n *Network) SinkR() float64 { return 1 / n.gAmb }

// SteadyState solves the network for constant block powers (watts) and
// returns the equilibrium temperatures. It does not modify the transient
// state.
func (n *Network) SteadyState(blockPowerW []float64) (State, error) {
	if len(blockPowerW) != n.nBlocks {
		return State{}, fmt.Errorf("thermal: got %d powers, want %d", len(blockPowerW), n.nBlocks)
	}
	// Assemble G·T = P with the ambient folded into the sink row.
	a := make([][]float64, n.nNodes)
	for i := range a {
		a[i] = make([]float64, n.nNodes+1)
	}
	for i := 0; i < n.nNodes; i++ {
		var diag float64
		for j := 0; j < n.nNodes; j++ {
			if i == j {
				continue
			}
			diag += n.g[i][j]
			a[i][j] = -n.g[i][j]
		}
		if i == n.sink {
			diag += n.gAmb
			a[i][n.nNodes] += n.gAmb * n.params.AmbientK
		}
		a[i][i] = diag
		if i < n.nBlocks {
			a[i][n.nNodes] += blockPowerW[i]
		}
	}
	temps, err := solve(a)
	if err != nil {
		return State{}, err
	}
	s := State{Blocks: make([]float64, n.nBlocks)}
	copy(s.Blocks, temps[:n.nBlocks])
	s.Spreader = temps[n.spreader]
	s.Sink = temps[n.sink]
	return s, nil
}

// solve performs Gaussian elimination with partial pivoting on the
// augmented system a·x = b (last column of each row is b).
func solve(a [][]float64) ([]float64, error) {
	nn := len(a)
	for col := 0; col < nn; col++ {
		pivot := col
		for r := col + 1; r < nn; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-15 {
			return nil, fmt.Errorf("thermal: singular conductance matrix at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < nn; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for k := col; k <= nn; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	x := make([]float64, nn)
	for i := nn - 1; i >= 0; i-- {
		sum := a[i][nn]
		for j := i + 1; j < nn; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}

// Init sets the transient state. The state's block count must match.
func (n *Network) Init(s State) {
	copy(n.temps[:n.nBlocks], s.Blocks)
	n.temps[n.spreader] = s.Spreader
	n.temps[n.sink] = s.Sink
}

// Step advances the transient solution by dt seconds under the given block
// powers using forward Euler (dt must be far below the smallest node time
// constant; the paper's 1µs interval is ~1000× below it).
func (n *Network) Step(blockPowerW []float64, dt float64) {
	for i := 0; i < n.nNodes; i++ {
		var flow float64
		gi := n.g[i]
		ti := n.temps[i]
		for j := 0; j < n.nNodes; j++ {
			if gij := gi[j]; gij != 0 {
				flow += gij * (n.temps[j] - ti)
			}
		}
		if i == n.sink {
			flow += n.gAmb * (n.params.AmbientK - ti)
		}
		if i < n.nBlocks {
			flow += blockPowerW[i]
		}
		n.next[i] = ti + dt*flow/n.c[i]
	}
	n.temps, n.next = n.next, n.temps
}

// derivatives fills dst with dT/dt for every node under the given block
// powers and the current temperatures in src.
func (n *Network) derivatives(src, dst []float64, blockPowerW []float64) {
	for i := 0; i < n.nNodes; i++ {
		var flow float64
		gi := n.g[i]
		ti := src[i]
		for j := 0; j < n.nNodes; j++ {
			if gij := gi[j]; gij != 0 {
				flow += gij * (src[j] - ti)
			}
		}
		if i == n.sink {
			flow += n.gAmb * (n.params.AmbientK - ti)
		}
		if i < n.nBlocks {
			flow += blockPowerW[i]
		}
		dst[i] = flow / n.c[i]
	}
}

// StepHeun advances the transient solution by dt seconds using Heun's
// method (second-order Runge-Kutta). At the paper's 1µs interval the
// forward-Euler Step is ~1000× below the smallest node time constant and
// already accurate; StepHeun exists to verify that claim
// (TestHeunAgreesWithEuler) and for coarse-step uses.
func (n *Network) StepHeun(blockPowerW []float64, dt float64) {
	n.StepHeunErr(blockPowerW, dt, 0)
}

// StepHeunErr is the error-controlled Heun step behind coarse-grained
// integration: it computes one Heun step of dt seconds and the embedded
// local error estimate max_i |dt·(k2_i−k1_i)/2| — the difference between
// the second-order (Heun) and first-order (Euler) solutions, the standard
// embedded-pair estimate. When tolK > 0 and the estimate exceeds it, the
// step is rejected: the transient state is left untouched so the caller
// can retry with a smaller dt. tolK <= 0 always applies the step. The
// Heun stages use network-owned scratch, so the call never allocates.
func (n *Network) StepHeunErr(blockPowerW []float64, dt, tolK float64) (errK float64, applied bool) {
	n.derivatives(n.temps, n.k1, blockPowerW)
	for i := range n.mid {
		n.mid[i] = n.temps[i] + dt*n.k1[i]
	}
	n.derivatives(n.mid, n.k2, blockPowerW)
	for i := range n.k1 {
		if e := math.Abs(dt * (n.k2[i] - n.k1[i]) / 2); e > errK {
			errK = e
		}
	}
	if tolK > 0 && errK > tolK {
		return errK, false
	}
	for i := range n.temps {
		n.temps[i] += dt * (n.k1[i] + n.k2[i]) / 2
	}
	return errK, true
}

// Current returns the transient temperatures.
func (n *Network) Current() State {
	s := State{Blocks: make([]float64, n.nBlocks)}
	copy(s.Blocks, n.temps[:n.nBlocks])
	s.Spreader = n.temps[n.spreader]
	s.Sink = n.temps[n.sink]
	return s
}

// CurrentInto fills a caller-provided state in place, avoiding the
// allocation of Current on hot paths. The state's Blocks slice must have
// the network's block count.
func (n *Network) CurrentInto(s *State) {
	copy(s.Blocks, n.temps[:n.nBlocks])
	s.Spreader = n.temps[n.spreader]
	s.Sink = n.temps[n.sink]
}

// DieAverage returns the area-weighted average block temperature of a
// state (used for the package-level thermal-cycling model).
func (n *Network) DieAverage(s State) float64 {
	var sum float64
	for i, t := range s.Blocks {
		sum += t * n.areaFrac[i]
	}
	return sum
}

// Ambient returns the ambient temperature in Kelvin.
func (n *Network) Ambient() float64 { return n.params.AmbientK }
