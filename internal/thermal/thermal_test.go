package thermal

import (
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/floorplan"
	"github.com/ramp-sim/ramp/internal/microarch"
)

func newBaseNetwork(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork(floorplan.POWER4(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// uniformPower spreads total watts across blocks in proportion to area.
func uniformPower(t *testing.T, total float64) []float64 {
	t.Helper()
	p := make([]float64, microarch.NumStructures)
	areas := floorplan.POWER4().Areas()
	for i := range p {
		p[i] = total * areas[i] / 81.0
	}
	return p
}

func TestDefaultParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidateRejections(t *testing.T) {
	p := DefaultParams()
	p.SinkR = 0
	if err := p.Validate(); err == nil {
		t.Error("zero sink resistance accepted")
	}
	p = DefaultParams()
	p.AmbientK = 100
	if err := p.Validate(); err == nil {
		t.Error("implausible ambient accepted")
	}
	p = DefaultParams()
	p.SpreadCoeff = -1
	if err := p.Validate(); err == nil {
		t.Error("negative spreading coefficient accepted")
	}
}

func TestZeroPowerEquilibratesAtAmbient(t *testing.T) {
	n := newBaseNetwork(t)
	zero := make([]float64, microarch.NumStructures)
	s, err := n.SteadyState(zero)
	if err != nil {
		t.Fatal(err)
	}
	amb := n.Ambient()
	for i, temp := range s.Blocks {
		if math.Abs(temp-amb) > 1e-6 {
			t.Errorf("block %v at %v K with zero power, want ambient %v",
				microarch.StructureID(i), temp, amb)
		}
	}
	if math.Abs(s.Sink-amb) > 1e-6 {
		t.Errorf("sink at %v, want ambient", s.Sink)
	}
}

func TestSinkTemperatureFollowsTotalPower(t *testing.T) {
	// In steady state all heat leaves through the sink: T_sink = T_amb +
	// R_sink × P_total, independent of how power is distributed.
	n := newBaseNetwork(t)
	const total = 29.1
	s, err := n.SteadyState(uniformPower(t, total))
	if err != nil {
		t.Fatal(err)
	}
	want := n.Ambient() + DefaultParams().SinkR*total
	if math.Abs(s.Sink-want) > 1e-6 {
		t.Fatalf("sink temp = %v, want %v", s.Sink, want)
	}
	// Concentrated power: same sink temperature.
	conc := make([]float64, microarch.NumStructures)
	conc[microarch.StructFXU] = total
	s2, err := n.SteadyState(conc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2.Sink-want) > 1e-6 {
		t.Fatalf("concentrated sink temp = %v, want %v", s2.Sink, want)
	}
}

func TestBlocksAreHotterThanSpreaderAndSink(t *testing.T) {
	n := newBaseNetwork(t)
	s, err := n.SteadyState(uniformPower(t, 29.1))
	if err != nil {
		t.Fatal(err)
	}
	for i, temp := range s.Blocks {
		if temp <= s.Spreader {
			t.Errorf("block %v (%v K) not hotter than spreader (%v K)",
				microarch.StructureID(i), temp, s.Spreader)
		}
	}
	if s.Spreader <= s.Sink || s.Sink <= n.Ambient() {
		t.Fatalf("temperature ordering violated: spreader %v sink %v ambient %v",
			s.Spreader, s.Sink, n.Ambient())
	}
}

func TestPoweredBlockIsHottest(t *testing.T) {
	n := newBaseNetwork(t)
	p := make([]float64, microarch.NumStructures)
	p[microarch.StructFPU] = 10
	s, err := n.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, temp := range s.Blocks {
		if microarch.StructureID(i) != microarch.StructFPU && temp >= s.Blocks[microarch.StructFPU] {
			t.Errorf("unpowered block %v (%v K) at least as hot as the powered FPU (%v K)",
				microarch.StructureID(i), temp, s.Blocks[microarch.StructFPU])
		}
	}
}

func TestBase180nmTemperaturesAreInPaperRange(t *testing.T) {
	// With ~29W distributed like a busy core, the hottest structure should
	// sit near 350K and the sink near 341K (Figure 2's 180nm points).
	n := newBaseNetwork(t)
	p := make([]float64, microarch.NumStructures)
	p[microarch.StructIFU] = 3.8
	p[microarch.StructIDU] = 2.4
	p[microarch.StructISU] = 4.6
	p[microarch.StructFXU] = 5.4
	p[microarch.StructFPU] = 4.4
	p[microarch.StructLSU] = 5.7
	p[microarch.StructBXU] = 1.4
	s, err := n.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	maxT := s.MaxBlock()
	if maxT < 343 || maxT > 362 {
		t.Fatalf("180nm max structure temp = %.1f K, want ≈ 345-360 (Fig 2)", maxT)
	}
	if s.Sink < 335 || s.Sink > 345 {
		t.Fatalf("sink temp = %.1f K, want ≈ 341", s.Sink)
	}
}

func TestScaledDieRunsHotterAtSameSinkTemp(t *testing.T) {
	// The scaling effect at the heart of the paper: a smaller die with the
	// sink temperature held constant develops larger junction-to-sink
	// deltas even at lower total power.
	base := newBaseNetwork(t)
	fp65, err := floorplan.POWER4().Scaled(0.16)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := NewNetwork(fp65, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p180 := uniformPower(t, 29.1)
	p65 := make([]float64, microarch.NumStructures)
	for i := range p65 {
		p65[i] = p180[i] * 16.9 / 29.1 // 65nm(1.0V) total power, same shape
	}
	// Hold the sink temperature constant by scaling the sink resistance.
	if err := scaled.SetSinkR(0.8 * 29.1 / 16.9); err != nil {
		t.Fatal(err)
	}
	s180, err := base.SteadyState(p180)
	if err != nil {
		t.Fatal(err)
	}
	s65, err := scaled.SteadyState(p65)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s65.Sink-s180.Sink) > 0.5 {
		t.Fatalf("sink temps differ: 180nm %v vs 65nm %v", s180.Sink, s65.Sink)
	}
	d180 := s180.MaxBlock() - s180.Sink
	d65 := s65.MaxBlock() - s65.Sink
	if d65 <= d180 {
		t.Fatalf("junction-to-sink delta must grow with scaling: 180nm %.1fK vs 65nm %.1fK", d180, d65)
	}
	rise := s65.MaxBlock() - s180.MaxBlock()
	if rise < 5 || rise > 30 {
		t.Fatalf("max-temp rise 180→65nm = %.1f K, want ≈ 15 (paper §5.1)", rise)
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	n := newBaseNetwork(t)
	p := uniformPower(t, 29.1)
	want, err := n.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	// Initialise at the steady state of the slow nodes but ambient blocks:
	// blocks must relax to the steady solution within a few milliseconds.
	// (clone: State carries a slice, so plain assignment would alias.)
	init := want.clone()
	for i := range init.Blocks {
		init.Blocks[i] = n.Ambient()
	}
	n.Init(init)
	const dt = 1e-6
	for i := 0; i < 200000; i++ { // 200 ms — several block time constants
		n.Step(p, dt)
	}
	// 0.5K tolerance: the spreader was dragged below its steady value by
	// the artificially cold blocks and recovers on its own ~0.1s constant.
	got := n.Current()
	for i := range got.Blocks {
		if math.Abs(got.Blocks[i]-want.Blocks[i]) > 0.5 {
			t.Errorf("block %v transient %v K vs steady %v K",
				microarch.StructureID(i), got.Blocks[i], want.Blocks[i])
		}
	}
}

func TestTransientStabilityAtMicrosecondStep(t *testing.T) {
	// Forward Euler at 1µs must not oscillate or blow up even with a power
	// square wave.
	n := newBaseNetwork(t)
	s0, err := n.SteadyState(uniformPower(t, 25))
	if err != nil {
		t.Fatal(err)
	}
	n.Init(s0)
	hi, lo := uniformPower(t, 60), uniformPower(t, 5)
	for i := 0; i < 50000; i++ {
		p := hi
		if (i/500)%2 == 1 {
			p = lo
		}
		n.Step(p, 1e-6)
		cur := n.Current()
		if cur.MaxBlock() > 500 || cur.MaxBlock() < n.Ambient()-1 {
			t.Fatalf("step %d: implausible temperature %v", i, cur.MaxBlock())
		}
	}
}

func TestSinkTimeConstantIsMuchSlowerThanBlocks(t *testing.T) {
	// Paper §4.3: the sink RC constant is far larger than block constants,
	// which is why the two-pass initialisation exists. Blocks settle in
	// ~10ms; the sink barely moves from ambient in that time under power.
	n := newBaseNetwork(t)
	p := uniformPower(t, 29.1)
	amb := State{Blocks: make([]float64, microarch.NumStructures)}
	for i := range amb.Blocks {
		amb.Blocks[i] = n.Ambient()
	}
	amb.Spreader, amb.Sink = n.Ambient(), n.Ambient()
	n.Init(amb)
	for i := 0; i < 15000; i++ { // 15 ms — a few block time constants
		n.Step(p, 1e-6)
	}
	cur := n.Current()
	steady, err := n.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	sinkProgress := (cur.Sink - n.Ambient()) / (steady.Sink - n.Ambient())
	if sinkProgress > 0.1 {
		t.Fatalf("sink reached %.0f%% of steady rise in 10ms; its RC constant is too small",
			sinkProgress*100)
	}
	// Blocks ride on the slow spreader, so measure the fast local
	// junction-to-spreader delta rather than the absolute temperature.
	blockDelta := cur.Blocks[0] - cur.Spreader
	steadyDelta := steady.Blocks[0] - steady.Spreader
	if blockDelta < 0.5*steadyDelta {
		t.Fatalf("block-to-spreader delta reached only %.0f%% of steady value in 10ms",
			blockDelta/steadyDelta*100)
	}
}

func TestSetSinkRChangesEquilibrium(t *testing.T) {
	n := newBaseNetwork(t)
	p := uniformPower(t, 29.1)
	s1, err := n.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetSinkR(1.6); err != nil {
		t.Fatal(err)
	}
	s2, err := n.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Sink <= s1.Sink {
		t.Fatal("doubling sink resistance must raise the sink temperature")
	}
	if err := n.SetSinkR(0); err == nil {
		t.Fatal("zero sink resistance accepted")
	}
	if got := n.SinkR(); math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("SinkR = %v, want 1.6", got)
	}
}

func TestDieAverageIsAreaWeighted(t *testing.T) {
	n := newBaseNetwork(t)
	s := State{Blocks: make([]float64, microarch.NumStructures)}
	for i := range s.Blocks {
		s.Blocks[i] = 350
	}
	if got := n.DieAverage(s); math.Abs(got-350) > 1e-9 {
		t.Fatalf("uniform die average = %v, want 350", got)
	}
	// Heating only the largest block (LSU) moves the average by its area
	// fraction.
	s.Blocks[microarch.StructLSU] = 360
	lsuFrac := floorplan.POWER4().Areas()[microarch.StructLSU] / 81.0
	want := 350 + 10*lsuFrac
	if got := n.DieAverage(s); math.Abs(got-want) > 1e-9 {
		t.Fatalf("die average = %v, want %v", got, want)
	}
}

func TestEnergyConservationInSteadyState(t *testing.T) {
	// All injected power must flow out through the sink: P = (T_sink −
	// T_amb)/R_sink.
	n := newBaseNetwork(t)
	p := uniformPower(t, 42.0)
	s, err := n.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	out := (s.Sink - n.Ambient()) / n.SinkR()
	if math.Abs(out-42.0) > 1e-6 {
		t.Fatalf("outflow %v W, want 42 (energy conservation)", out)
	}
}

func TestNewNetworkRejectsBadInputs(t *testing.T) {
	if _, err := NewNetwork(floorplan.Floorplan{}, DefaultParams()); err == nil {
		t.Fatal("empty floorplan accepted")
	}
	p := DefaultParams()
	p.SinkR = -1
	if _, err := NewNetwork(floorplan.POWER4(), p); err == nil {
		t.Fatal("invalid params accepted")
	}
}
