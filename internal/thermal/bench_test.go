package thermal

import (
	"testing"

	"github.com/ramp-sim/ramp/internal/floorplan"
)

func benchNetwork(b *testing.B) *Network {
	b.Helper()
	n, err := NewNetwork(floorplan.POWER4(), DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return n
}

func benchPower() []float64 {
	return []float64{3.8, 2.4, 4.6, 5.4, 4.4, 5.7, 1.4}
}

// BenchmarkTransientStep measures the cost of one 1µs RC step — executed
// once per evaluation interval, this dominates the thermal pipeline.
func BenchmarkTransientStep(b *testing.B) {
	n := benchNetwork(b)
	p := benchPower()
	s, err := n.SteadyState(p)
	if err != nil {
		b.Fatal(err)
	}
	n.Init(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(p, 1e-6)
	}
}

// BenchmarkSteadyState measures the 9×9 linear solve used by pass 1 of the
// §4.3 methodology.
func BenchmarkSteadyState(b *testing.B) {
	n := benchNetwork(b)
	p := benchPower()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.SteadyState(p); err != nil {
			b.Fatal(err)
		}
	}
}
