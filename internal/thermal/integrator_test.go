package thermal

import (
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/floorplan"
)

// TestHeunAgreesWithEuler validates the evaluation pipeline's integrator
// choice: at the paper's 1µs step, forward Euler and second-order Heun
// produce indistinguishable trajectories (the step is ~1000× below the
// smallest node time constant).
func TestHeunAgreesWithEuler(t *testing.T) {
	mkNet := func() *Network {
		n, err := NewNetwork(floorplan.POWER4(), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	p := uniformPower(t, 35)
	start, err := mkNet().SteadyState(uniformPower(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	euler, heun := mkNet(), mkNet()
	euler.Init(start)
	heun.Init(start)
	const dt = 1e-6
	for i := 0; i < 20000; i++ { // 20 ms of a power step response
		euler.Step(p, dt)
		heun.StepHeun(p, dt)
	}
	e, h := euler.Current(), heun.Current()
	for i := range e.Blocks {
		if d := math.Abs(e.Blocks[i] - h.Blocks[i]); d > 0.01 {
			t.Errorf("block %d: Euler and Heun differ by %.4f K after 20ms", i, d)
		}
	}
	if math.Abs(e.Spreader-h.Spreader) > 0.01 || math.Abs(e.Sink-h.Sink) > 0.01 {
		t.Error("package nodes diverge between integrators")
	}
}

// TestHeunMoreAccurateAtCoarseStep shows why StepHeun exists: at a step
// 100× coarser, Heun tracks the fine-step reference better than Euler.
func TestHeunMoreAccurateAtCoarseStep(t *testing.T) {
	mkNet := func() *Network {
		n, err := NewNetwork(floorplan.POWER4(), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	p := uniformPower(t, 35)
	start, err := mkNet().SteadyState(uniformPower(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	// Reference: fine-step Euler.
	ref := mkNet()
	ref.Init(start)
	for i := 0; i < 100000; i++ {
		ref.Step(p, 1e-6)
	}
	// Coarse integrators: 100µs steps.
	euler, heun := mkNet(), mkNet()
	euler.Init(start)
	heun.Init(start)
	for i := 0; i < 1000; i++ {
		euler.Step(p, 1e-4)
		heun.StepHeun(p, 1e-4)
	}
	r, e, h := ref.Current(), euler.Current(), heun.Current()
	var eErr, hErr float64
	for i := range r.Blocks {
		eErr += math.Abs(e.Blocks[i] - r.Blocks[i])
		hErr += math.Abs(h.Blocks[i] - r.Blocks[i])
	}
	if hErr >= eErr {
		t.Fatalf("Heun error %.5f K not below Euler error %.5f K at coarse steps", hErr, eErr)
	}
}
