package drm

import (
	"testing"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/scaling"
)

func TestAdviseRemapDeratingGrowsWithScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("remap sweep is slow; skipped with -short")
	}
	tr, cfg := traceFor(t, "gzip", 200_000)
	consts := core.ReferenceConstants()
	techs := scaling.Generations()
	// Budget: the 180nm qualification total with modest slack.
	const budget = 6000
	advice, err := AdviseRemap(cfg, tr, techs, consts, budget, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(advice) != len(techs) {
		t.Fatalf("advice for %d techs, want %d", len(advice), len(techs))
	}
	// 180nm must be feasible at nominal; the 65nm (1.0V) point must not be.
	if !advice[0].FeasibleAtNominal || advice[0].DeratePct != 0 {
		t.Errorf("180nm should need no derating: %+v", advice[0])
	}
	last := advice[len(advice)-1]
	if last.FeasibleAtNominal {
		t.Errorf("65nm (1.0V) nominal unexpectedly within a %v-FIT budget: %+v", budget, last)
	}
	// Derating requirements grow (weakly) with scaling.
	for i := 1; i < len(advice); i++ {
		if advice[i].DeratePct < advice[i-1].DeratePct {
			t.Errorf("derating shrank from %s (%v%%) to %s (%v%%)",
				advice[i-1].Tech.Name, advice[i-1].DeratePct,
				advice[i].Tech.Name, advice[i].DeratePct)
		}
	}
	// Every feasible rung actually meets budget.
	for _, a := range advice {
		if a.BestFreqGHz > 0 && a.BestFIT > budget {
			t.Errorf("%s: chosen rung busts budget: %+v", a.Tech.Name, a)
		}
	}
}

func TestAdviseRemapRejections(t *testing.T) {
	tr, cfg := traceFor(t, "gzip", 50_000)
	if _, err := AdviseRemap(cfg, tr, scaling.Generations()[:1], core.ReferenceConstants(), 0, 0, 1); err == nil {
		t.Error("zero budget accepted")
	}
	var zero core.Constants
	if _, err := AdviseRemap(cfg, tr, scaling.Generations()[:1], zero, 4000, 0, 1); err == nil {
		t.Error("zero constants accepted")
	}
}
