package drm

import (
	"fmt"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
)

// RemapAdvice is the static qualification answer for one technology point:
// the highest DVS operating point at which the workload stays within the
// FIT budget. It operationalises the paper's headline implication —
// "leveraging a single design for multiple remaps across a few technology
// generations will become increasingly difficult" — as a derating
// schedule.
type RemapAdvice struct {
	// Tech is the technology point examined.
	Tech scaling.Technology
	// NominalFIT is the calibrated FIT at the nominal operating point.
	NominalFIT float64
	// FeasibleAtNominal reports whether the nominal point meets budget.
	FeasibleAtNominal bool
	// BestFreqGHz and BestVddV give the fastest in-budget rung; both zero
	// when even the lowest rung busts the budget.
	BestFreqGHz, BestVddV float64
	// BestFIT is the calibrated FIT at the chosen rung.
	BestFIT float64
	// DeratePct is the frequency loss versus nominal, in percent (0 when
	// the nominal point is feasible, 100 when nothing fits).
	DeratePct float64
}

// AdviseRemap evaluates each technology's derating requirement: for every
// point it walks a below-nominal DVS ladder (95%, 90%, …, 60% of nominal
// voltage and frequency) from fastest to slowest and reports the first
// rung whose steady-state calibrated FIT meets the budget. sinkTempTargetK
// and appPowerScale follow sim.EvaluateTech conventions.
func AdviseRemap(cfg sim.Config, tr *sim.ActivityTrace, techs []scaling.Technology,
	consts core.Constants, budgetFIT, sinkTempTargetK, appPowerScale float64) ([]RemapAdvice, error) {
	if budgetFIT <= 0 {
		return nil, fmt.Errorf("drm: budget must be positive, got %v", budgetFIT)
	}
	if err := consts.Validate(); err != nil {
		return nil, err
	}
	// The paper's §4.3 methodology holds each application's heat-sink
	// temperature constant across technologies; without it, lower-power
	// scaled nodes look artificially cool. Derive the target from the
	// 180nm nominal point when the caller does not supply one.
	if sinkTempTargetK <= 0 {
		baseRun, err := sim.EvaluateTech(cfg, tr, scaling.Base(), 0, appPowerScale)
		if err != nil {
			return nil, fmt.Errorf("drm: advise base point: %w", err)
		}
		sinkTempTargetK = baseRun.SinkTempK
	}
	steps := []float64{1.00, 0.95, 0.90, 0.85, 0.80, 0.75, 0.70, 0.65, 0.60}
	out := make([]RemapAdvice, 0, len(techs))
	for _, tech := range techs {
		advice := RemapAdvice{Tech: tech, DeratePct: 100}
		for i, s := range steps {
			variant := tech
			variant.Name = fmt.Sprintf("%s @ %.0f%%", tech.Name, s*100)
			variant.VddV = tech.VddV * s
			variant.FreqGHz = tech.FreqGHz * s
			run, err := sim.EvaluateTech(cfg, tr, variant, sinkTempTargetK, appPowerScale)
			if err != nil {
				return nil, fmt.Errorf("drm: advise %s: %w", variant.Name, err)
			}
			fit := run.RawFIT.Calibrated(consts).Total()
			if i == 0 {
				advice.NominalFIT = fit
				advice.FeasibleAtNominal = fit <= budgetFIT
			}
			if fit <= budgetFIT {
				advice.BestFreqGHz = variant.FreqGHz
				advice.BestVddV = variant.VddV
				advice.BestFIT = fit
				advice.DeratePct = (1 - s) * 100
				break
			}
		}
		out = append(out, advice)
	}
	return out, nil
}
