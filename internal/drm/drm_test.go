package drm

import (
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/workload"
)

func tech65(t *testing.T) scaling.Technology {
	t.Helper()
	tech, err := scaling.ByName("65nm (1.0V)")
	if err != nil {
		t.Fatal(err)
	}
	return tech
}

func traceFor(t *testing.T, app string, n int64) (*sim.ActivityTrace, sim.Config) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Instructions = n
	prof, err := workload.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.RunTiming(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	return tr, cfg
}

func basePolicy(t *testing.T, budget float64) Policy {
	t.Helper()
	return Policy{
		Ladder:         DefaultLadder(tech65(t)),
		BudgetFIT:      budget,
		EpochIntervals: 50,
		Headroom:       0.9,
		StartLevel:     2, // nominal
	}
}

func TestPolicyValidate(t *testing.T) {
	good := basePolicy(t, 16000)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Policy)
	}{
		{"empty ladder", func(p *Policy) { p.Ladder = nil }},
		{"bad op", func(p *Policy) { p.Ladder[0].VddV = 0 }},
		{"zero budget", func(p *Policy) { p.BudgetFIT = 0 }},
		{"zero epoch", func(p *Policy) { p.EpochIntervals = 0 }},
		{"headroom above 1", func(p *Policy) { p.Headroom = 1.5 }},
		{"start level out of range", func(p *Policy) { p.StartLevel = 99 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := basePolicy(t, 16000)
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("invalid policy accepted")
			}
		})
	}
}

func TestDefaultLadderSpansNominal(t *testing.T) {
	tech := tech65(t)
	ladder := DefaultLadder(tech)
	if len(ladder) != 5 {
		t.Fatalf("ladder has %d rungs, want 5", len(ladder))
	}
	var hasNominal bool
	for _, op := range ladder {
		if math.Abs(op.VddV-tech.VddV) < 1e-9 && math.Abs(op.FreqGHz-tech.FreqGHz) < 1e-9 {
			hasNominal = true
		}
	}
	if !hasNominal {
		t.Fatal("ladder must include the nominal point")
	}
}

func TestRunRejections(t *testing.T) {
	tr, cfg := traceFor(t, "gzip", 50_000)
	pol := basePolicy(t, 16000)
	consts := core.ReferenceConstants()
	if _, err := Run(cfg, nil, tech65(t), consts, pol, 0, 1); err == nil {
		t.Error("nil trace accepted")
	}
	bad := pol
	bad.BudgetFIT = -1
	if _, err := Run(cfg, tr, tech65(t), consts, bad, 0, 1); err == nil {
		t.Error("invalid policy accepted")
	}
	var zeroConsts core.Constants
	if _, err := Run(cfg, tr, tech65(t), zeroConsts, pol, 0, 1); err == nil {
		t.Error("zero constants accepted")
	}
}

func TestGenerousBudgetRunsAtTopOfLadder(t *testing.T) {
	tr, cfg := traceFor(t, "ammp", 300_000)
	pol := basePolicy(t, 1e9) // effectively unlimited
	res, err := Run(cfg, tr, tech65(t), core.ReferenceConstants(), pol, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	top := pol.Ladder[len(pol.Ladder)-1].FreqGHz
	if res.FinalLevel != len(pol.Ladder)-1 {
		t.Fatalf("final level %d, want top rung", res.FinalLevel)
	}
	if res.AvgFreqGHz < 0.9*top {
		t.Fatalf("avg frequency %.2f, want near top %.2f", res.AvgFreqGHz, top)
	}
	if !res.MetBudget {
		t.Fatal("unlimited budget must be met")
	}
}

func TestTightBudgetThrottlesToBottom(t *testing.T) {
	tr, cfg := traceFor(t, "crafty", 300_000)
	pol := basePolicy(t, 1) // impossible budget
	res, err := Run(cfg, tr, tech65(t), core.ReferenceConstants(), pol, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLevel != 0 {
		t.Fatalf("final level %d, want bottom rung", res.FinalLevel)
	}
	if res.MetBudget {
		t.Fatal("impossible budget cannot be met")
	}
	bottom := pol.Ladder[0].FreqGHz
	if res.AvgFreqGHz > 1.1*bottom {
		t.Fatalf("avg frequency %.2f, want near bottom %.2f", res.AvgFreqGHz, bottom)
	}
}

func TestControllerTradesFrequencyForReliability(t *testing.T) {
	// Under the same realistic budget, the cool application must sustain a
	// higher average frequency than the hot one — the DRM value
	// proposition (§5.2).
	const budget = 16000
	coolTr, cfg := traceFor(t, "ammp", 300_000)
	hotTr, _ := traceFor(t, "crafty", 300_000)
	pol := basePolicy(t, budget)
	consts := core.ReferenceConstants()
	cool, err := Run(cfg, coolTr, tech65(t), consts, pol, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Run(cfg, hotTr, tech65(t), consts, pol, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cool.AvgFreqGHz <= hot.AvgFreqGHz {
		t.Fatalf("cool app frequency %.3f not above hot app %.3f",
			cool.AvgFreqGHz, hot.AvgFreqGHz)
	}
}

func TestTimeShareSumsToOne(t *testing.T) {
	tr, cfg := traceFor(t, "gzip", 200_000)
	pol := basePolicy(t, 16000)
	res, err := Run(cfg, tr, tech65(t), core.ReferenceConstants(), pol, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range res.TimeShare {
		if s < 0 {
			t.Fatalf("negative time share %v", s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("time shares sum to %v, want 1", sum)
	}
	if res.MaxStructTempK < 330 || res.MaxStructTempK > 400 {
		t.Fatalf("implausible max temperature %v", res.MaxStructTempK)
	}
}

func TestControllerIsDeterministic(t *testing.T) {
	tr, cfg := traceFor(t, "mesa", 150_000)
	pol := basePolicy(t, 16000)
	a, err := Run(cfg, tr, tech65(t), core.ReferenceConstants(), pol, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tr, tech65(t), core.ReferenceConstants(), pol, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgFIT != b.AvgFIT || a.AvgFreqGHz != b.AvgFreqGHz || a.Switches != b.Switches {
		t.Fatal("identical managed runs must match exactly")
	}
}

func TestUnsortedLadderIsSorted(t *testing.T) {
	tr, cfg := traceFor(t, "gzip", 300_000)
	tech := tech65(t)
	pol := basePolicy(t, 1e9)
	pol.EpochIntervals = 20
	// Reverse the ladder; Run must sort it and still end at the fastest.
	for i, j := 0, len(pol.Ladder)-1; i < j; i, j = i+1, j-1 {
		pol.Ladder[i], pol.Ladder[j] = pol.Ladder[j], pol.Ladder[i]
	}
	pol.StartLevel = 2
	res, err := Run(cfg, tr, tech, core.ReferenceConstants(), pol, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLevel != len(pol.Ladder)-1 {
		t.Fatalf("final level %d, want top after sorting", res.FinalLevel)
	}
}
