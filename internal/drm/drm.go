// Package drm implements dynamic reliability management — the
// application-aware response the paper's conclusions call for (§5.2,
// citing Srinivasan et al.'s DRM proposal [15]). Instead of qualifying the
// processor for worst-case operating conditions, the chip is qualified for
// expected conditions and a runtime controller adapts the voltage/
// frequency operating point so the accumulated failure rate stays within
// the qualified budget: cool applications harvest performance headroom,
// hot applications are throttled back.
//
// The controller here is the ladder design from the DRM literature: a
// sorted list of DVS operating points, a control epoch, and a cumulative
// FIT comparison against the budget with hysteresis.
package drm

import (
	"fmt"
	"sort"

	"github.com/ramp-sim/ramp/internal/core"
	"github.com/ramp-sim/ramp/internal/floorplan"
	"github.com/ramp-sim/ramp/internal/microarch"
	"github.com/ramp-sim/ramp/internal/power"
	"github.com/ramp-sim/ramp/internal/scaling"
	"github.com/ramp-sim/ramp/internal/sim"
	"github.com/ramp-sim/ramp/internal/thermal"
)

// OperatingPoint is one rung of the DVS ladder.
type OperatingPoint struct {
	// VddV is the supply voltage.
	VddV float64
	// FreqGHz is the clock frequency at that voltage.
	FreqGHz float64
}

// Policy configures the controller.
type Policy struct {
	// Ladder is the list of available operating points; Run sorts it by
	// frequency ascending.
	Ladder []OperatingPoint
	// BudgetFIT is the qualified failure-rate budget the cumulative
	// average FIT must not exceed.
	BudgetFIT float64
	// EpochIntervals is the control period in 1µs evaluation intervals.
	EpochIntervals int
	// Headroom in (0, 1]: the controller steps up only when the
	// cumulative FIT is below Headroom × BudgetFIT, providing hysteresis.
	Headroom float64
	// StartLevel indexes the initial ladder rung (after sorting).
	StartLevel int
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if len(p.Ladder) == 0 {
		return fmt.Errorf("drm: empty operating-point ladder")
	}
	for _, op := range p.Ladder {
		if op.VddV <= 0 || op.FreqGHz <= 0 {
			return fmt.Errorf("drm: invalid operating point %+v", op)
		}
	}
	if p.BudgetFIT <= 0 {
		return fmt.Errorf("drm: budget must be positive, got %v", p.BudgetFIT)
	}
	if p.EpochIntervals < 1 {
		return fmt.Errorf("drm: epoch must be at least 1 interval, got %d", p.EpochIntervals)
	}
	if p.Headroom <= 0 || p.Headroom > 1 {
		return fmt.Errorf("drm: headroom %v outside (0, 1]", p.Headroom)
	}
	if p.StartLevel < 0 || p.StartLevel >= len(p.Ladder) {
		return fmt.Errorf("drm: start level %d outside ladder", p.StartLevel)
	}
	return nil
}

// DefaultLadder returns a five-rung DVS ladder topping out at the
// technology's nominal (qualification) point: 80–100% voltage in 5% steps
// with frequency tracking voltage. The ladder deliberately has no
// above-nominal rung: with the published Wu et al. voltage-acceleration
// exponent (a−bT ≈ 108) even a 5% overdrive costs two orders of magnitude
// of TDDB lifetime, so practical DRM recovers performance by *not
// throttling* cool workloads rather than by overclocking them.
func DefaultLadder(tech scaling.Technology) []OperatingPoint {
	steps := []float64{0.80, 0.85, 0.90, 0.95, 1.00}
	out := make([]OperatingPoint, 0, len(steps))
	for _, s := range steps {
		out = append(out, OperatingPoint{
			VddV:    tech.VddV * s,
			FreqGHz: tech.FreqGHz * s,
		})
	}
	return out
}

// Result summarises a managed run.
type Result struct {
	// AvgFreqGHz is the time-averaged frequency — the throughput proxy the
	// controller trades against reliability.
	AvgFreqGHz float64
	// AvgFIT is the cumulative calibrated failure rate of the managed run.
	AvgFIT float64
	// MetBudget reports whether AvgFIT ended at or below the budget.
	MetBudget bool
	// Switches counts ladder transitions.
	Switches int
	// TimeShare is the fraction of run time spent at each ladder level.
	TimeShare []float64
	// MaxStructTempK is the hottest instantaneous structure temperature.
	MaxStructTempK float64
	// FinalLevel is the rung occupied at the end of the run.
	FinalLevel int
}

// Run executes a DRM-managed evaluation of an activity trace at one
// technology point. consts must come from a study's qualification (or
// core.ReferenceConstants). sinkTempTargetK and appPowerScale have the
// same meaning as in sim.EvaluateTech.
func Run(cfg sim.Config, tr *sim.ActivityTrace, tech scaling.Technology,
	consts core.Constants, pol Policy, sinkTempTargetK, appPowerScale float64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := pol.Validate(); err != nil {
		return Result{}, err
	}
	if err := consts.Validate(); err != nil {
		return Result{}, err
	}
	if tr == nil || len(tr.Timing.Samples) == 0 {
		return Result{}, fmt.Errorf("drm: empty activity trace")
	}
	ladder := make([]OperatingPoint, len(pol.Ladder))
	copy(ladder, pol.Ladder)
	sort.Slice(ladder, func(i, j int) bool { return ladder[i].FreqGHz < ladder[j].FreqGHz })

	fp, err := floorplan.POWER4().Scaled(tech.RelArea)
	if err != nil {
		return Result{}, err
	}
	pm, err := power.NewModel(cfg.Power, tech, fp.Areas())
	if err != nil {
		return Result{}, err
	}
	if appPowerScale > 0 && appPowerScale != 1 {
		if err := pm.SetAppScale(appPowerScale); err != nil {
			return Result{}, err
		}
	}
	net, err := thermal.NewNetwork(fp, cfg.Thermal)
	if err != nil {
		return Result{}, err
	}
	eval, err := core.NewEvaluator(cfg.RAMP, consts, tech, fp.Areas())
	if err != nil {
		return Result{}, err
	}

	// Initialise the thermal state at the nominal-point steady state (the
	// qualification condition), using the same fixed-point solve as the
	// unmanaged pipeline.
	steady, err := sim.SolveOperatingPoint(pm, net, tr.Timing.AvgAF, sinkTempTargetK)
	if err != nil {
		return Result{}, err
	}
	net.Init(steady)

	level := pol.StartLevel
	res := Result{TimeShare: make([]float64, len(ladder))}
	var (
		fitSum, freqSum, totalT float64
		sinceEpoch              int
	)
	for i := range tr.Timing.Samples {
		s := &tr.Timing.Samples[i]
		dur := float64(s.Cycles) / float64(cfg.Machine.CyclesPerMicrosecond())
		if dur <= 0 {
			continue
		}
		op := ladder[level]
		cur := net.Current()
		dyn := pm.DynamicAt(s.AF, op.VddV, op.FreqGHz)
		var blockP [microarch.NumStructures]float64
		for b := range blockP {
			blockP[b] = dyn[b] + pm.LeakageAtV(microarch.StructureID(b), cur.Blocks[b], op.VddV)
		}
		net.Step(blockP[:], dur*1e-6)
		cur = net.Current()
		dieAvg := net.DieAverage(cur)
		var blockT [microarch.NumStructures]float64
		copy(blockT[:], cur.Blocks)
		fit := eval.Instant(s.AF, blockT, op.VddV, dieAvg)
		fitSum += fit.Total() * dur
		freqSum += op.FreqGHz * dur
		totalT += dur
		res.TimeShare[level] += dur
		if t := cur.MaxBlock(); t > res.MaxStructTempK {
			res.MaxStructTempK = t
		}

		// Controller: at each epoch boundary compare the cumulative
		// average FIT against the budget.
		sinceEpoch++
		if sinceEpoch < pol.EpochIntervals {
			continue
		}
		sinceEpoch = 0
		cum := fitSum / totalT
		switch {
		case cum > pol.BudgetFIT && level > 0:
			level--
			res.Switches++
		case cum < pol.Headroom*pol.BudgetFIT && level < len(ladder)-1:
			level++
			res.Switches++
		}
	}
	if totalT == 0 {
		return Result{}, fmt.Errorf("drm: no evaluable intervals")
	}
	res.AvgFreqGHz = freqSum / totalT
	res.AvgFIT = fitSum / totalT
	res.MetBudget = res.AvgFIT <= pol.BudgetFIT*1.001
	res.FinalLevel = level
	for i := range res.TimeShare {
		res.TimeShare[i] /= totalT
	}
	return res, nil
}
