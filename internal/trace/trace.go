// Package trace defines the instruction-trace representation consumed by the
// timing simulator (internal/microarch), mirroring the role of the PowerPC
// trace files that feed Turandot in the paper (§4.1, §4.5).
//
// A trace is a stream of decoded instructions carrying the fields a
// trace-driven performance model needs: instruction class, register
// dependences, effective address for memory operations, and the resolved
// outcome for branches. Traces can be generated synthetically
// (internal/workload), held in memory, or serialised to a compact binary
// file format.
package trace

import (
	"errors"
	"fmt"
	"io"
)

// Class identifies the functional class of an instruction. The taxonomy
// matches the functional-unit mix of the modeled POWER4-like core (Table 2):
// integer, floating-point, load/store, branch, and logical-condition-register
// operations.
type Class uint8

// Instruction classes.
const (
	ClassIntALU   Class = iota + 1 // single-cycle integer op
	ClassIntMul                    // integer multiply (7 cycles)
	ClassIntDiv                    // integer divide (35 cycles)
	ClassFPOp                      // generic FP op (4 cycles)
	ClassFPDiv                     // FP divide (12 cycles)
	ClassLoad                      // memory load
	ClassStore                     // memory store
	ClassBranch                    // conditional or unconditional branch
	ClassLCR                       // logical condition-register op
	classSentinel                  // one past the last valid class
)

// NumClasses is the number of valid instruction classes.
const NumClasses = int(classSentinel) - 1

var _classNames = [...]string{
	ClassIntALU: "int-alu",
	ClassIntMul: "int-mul",
	ClassIntDiv: "int-div",
	ClassFPOp:   "fp-op",
	ClassFPDiv:  "fp-div",
	ClassLoad:   "load",
	ClassStore:  "store",
	ClassBranch: "branch",
	ClassLCR:    "lcr",
}

// String returns a short lower-case name for the class.
func (c Class) String() string {
	if !c.Valid() {
		return fmt.Sprintf("class(%d)", uint8(c))
	}
	return _classNames[c]
}

// Valid reports whether c is a defined instruction class.
func (c Class) Valid() bool { return c >= ClassIntALU && c < classSentinel }

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == ClassLoad || c == ClassStore }

// IsFP reports whether the class executes on the floating-point units.
func (c Class) IsFP() bool { return c == ClassFPOp || c == ClassFPDiv }

// IsInt reports whether the class executes on the fixed-point units.
func (c Class) IsInt() bool {
	return c == ClassIntALU || c == ClassIntMul || c == ClassIntDiv
}

// RegNone marks an absent register operand.
const RegNone uint16 = 0

// NumArchRegs is the size of the architected register name space used by
// traces. Registers 1..127 name integer registers and 128..255 name FP
// registers; 0 is RegNone. The rename stage in the simulator maps these to
// the physical register files of Table 2 (120 integer, 96 FP).
const NumArchRegs = 256

// Instruction is one decoded instruction in a trace.
type Instruction struct {
	// PC is the instruction address (used by the I-cache and branch
	// predictor models).
	PC uint64
	// Addr is the effective data address for loads and stores; zero
	// otherwise.
	Addr uint64
	// Dest is the architected destination register, or RegNone.
	Dest uint16
	// Src1 and Src2 are architected source registers, or RegNone.
	Src1, Src2 uint16
	// Class is the functional class.
	Class Class
	// Taken is the resolved direction for branches; false otherwise.
	Taken bool
	// Target is the branch target PC for taken branches; zero otherwise.
	Target uint64
}

// Validate reports whether the instruction is internally consistent.
func (in Instruction) Validate() error {
	if !in.Class.Valid() {
		return fmt.Errorf("trace: invalid class %d", in.Class)
	}
	if in.Class.IsMem() && in.Addr == 0 {
		return errors.New("trace: memory instruction with zero address")
	}
	if !in.Class.IsMem() && in.Addr != 0 {
		return fmt.Errorf("trace: %v instruction carries a data address", in.Class)
	}
	if in.Class != ClassBranch && (in.Taken || in.Target != 0) {
		return fmt.Errorf("trace: %v instruction carries branch outcome", in.Class)
	}
	if in.Dest >= NumArchRegs || in.Src1 >= NumArchRegs || in.Src2 >= NumArchRegs {
		return errors.New("trace: register id out of range")
	}
	return nil
}

// Stream produces instructions one at a time. Next returns io.EOF after the
// final instruction. Implementations are not safe for concurrent use.
type Stream interface {
	Next() (Instruction, error)
}

// SliceStream adapts an in-memory instruction slice to the Stream interface.
type SliceStream struct {
	instrs []Instruction
	pos    int
}

var _ Stream = (*SliceStream)(nil)

// NewSliceStream returns a Stream over instrs. The slice is not copied; the
// caller must not mutate it while streaming.
func NewSliceStream(instrs []Instruction) *SliceStream {
	return &SliceStream{instrs: instrs}
}

// Next returns the next instruction or io.EOF.
func (s *SliceStream) Next() (Instruction, error) {
	if s.pos >= len(s.instrs) {
		return Instruction{}, io.EOF
	}
	in := s.instrs[s.pos]
	s.pos++
	return in, nil
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len returns the total number of instructions in the underlying slice.
func (s *SliceStream) Len() int { return len(s.instrs) }

// Collect drains up to limit instructions from a stream into a slice.
// limit <= 0 collects the whole stream.
func Collect(s Stream, limit int) ([]Instruction, error) {
	var out []Instruction
	if limit > 0 {
		out = make([]Instruction, 0, limit)
	}
	for limit <= 0 || len(out) < limit {
		in, err := s.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("trace: collect: %w", err)
		}
		out = append(out, in)
	}
	return out, nil
}
