package trace

import (
	"errors"
	"fmt"
	"io"
)

// Sampling support. The paper's traces are sampled: "Sampling was used to
// limit the trace length to 100 million instructions per program. The
// sampled traces have been validated with the original full traces for
// accuracy and correct representation" (§4.5, citing Iyengar et al. [9]).
// SystematicSampler reproduces that methodology: it passes through one
// window of W instructions out of every period of P, discarding the rest,
// turning a long trace into a representative short one.

// SamplerConfig parameterises systematic trace sampling.
type SamplerConfig struct {
	// WindowInstrs is the number of consecutive instructions kept per
	// period.
	WindowInstrs int64
	// PeriodInstrs is the sampling period; PeriodInstrs − WindowInstrs
	// instructions are skipped after each window. PeriodInstrs ==
	// WindowInstrs passes the trace through unchanged.
	PeriodInstrs int64
}

// Validate checks the sampling geometry.
func (c SamplerConfig) Validate() error {
	if c.WindowInstrs <= 0 {
		return fmt.Errorf("trace: sampling window must be positive, got %d", c.WindowInstrs)
	}
	if c.PeriodInstrs < c.WindowInstrs {
		return fmt.Errorf("trace: sampling period %d below window %d", c.PeriodInstrs, c.WindowInstrs)
	}
	return nil
}

// Ratio returns the fraction of instructions kept.
func (c SamplerConfig) Ratio() float64 {
	return float64(c.WindowInstrs) / float64(c.PeriodInstrs)
}

// SystematicSampler filters a Stream down to periodic windows.
type SystematicSampler struct {
	src     Stream
	cfg     SamplerConfig
	pos     int64 // position within the current period
	kept    int64
	dropped int64
}

var _ Stream = (*SystematicSampler)(nil)

// NewSystematicSampler wraps src with systematic sampling.
func NewSystematicSampler(src Stream, cfg SamplerConfig) (*SystematicSampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("trace: nil source stream")
	}
	return &SystematicSampler{src: src, cfg: cfg}, nil
}

// Next returns the next sampled instruction, skipping out-of-window
// instructions from the source.
func (s *SystematicSampler) Next() (Instruction, error) {
	for {
		in, err := s.src.Next()
		if err != nil {
			return Instruction{}, err
		}
		inWindow := s.pos < s.cfg.WindowInstrs
		s.pos++
		if s.pos == s.cfg.PeriodInstrs {
			s.pos = 0
		}
		if inWindow {
			s.kept++
			return in, nil
		}
		s.dropped++
	}
}

// Kept returns the number of instructions passed through.
func (s *SystematicSampler) Kept() int64 { return s.kept }

// Dropped returns the number of instructions skipped.
func (s *SystematicSampler) Dropped() int64 { return s.dropped }

// ClassMix tallies the dynamic class distribution of up to limit
// instructions from a stream (limit <= 0 drains it), for sampling-fidelity
// validation.
func ClassMix(s Stream, limit int64) (map[Class]float64, int64, error) {
	counts := make(map[Class]int64, NumClasses)
	var total int64
	for limit <= 0 || total < limit {
		in, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, total, err
		}
		counts[in.Class]++
		total++
	}
	mix := make(map[Class]float64, len(counts))
	if total > 0 {
		for c, k := range counts {
			mix[c] = float64(k) / float64(total)
		}
	}
	return mix, total, nil
}
