package trace

import (
	"errors"
	"fmt"
	"io"
)

// Sampling support. The paper's traces are sampled: "Sampling was used to
// limit the trace length to 100 million instructions per program. The
// sampled traces have been validated with the original full traces for
// accuracy and correct representation" (§4.5, citing Iyengar et al. [9]).
// SystematicSampler reproduces that methodology: it passes through one
// window of W instructions out of every period of P, discarding the rest,
// turning a long trace into a representative short one.

// SamplerConfig parameterises systematic trace sampling.
type SamplerConfig struct {
	// WindowInstrs is the number of consecutive instructions kept per
	// period.
	WindowInstrs int64
	// PeriodInstrs is the sampling period; PeriodInstrs − WindowInstrs
	// instructions are skipped after each window. PeriodInstrs ==
	// WindowInstrs passes the trace through unchanged.
	PeriodInstrs int64
	// HeadInstrs is a contiguous prefix passed through before the
	// window/period cadence starts. Execution out of cold structures
	// (compulsory cache misses, untrained predictors) is transient, not
	// stationary — sampling it periodically would replay fragments of it
	// at the sampled stream's inflated weight. Keeping the head whole
	// confines the transient to a region consumers can weight exactly
	// once.
	HeadInstrs int64
}

// Validate checks the sampling geometry.
func (c SamplerConfig) Validate() error {
	if c.WindowInstrs <= 0 {
		return fmt.Errorf("trace: sampling window must be positive, got %d", c.WindowInstrs)
	}
	if c.PeriodInstrs < c.WindowInstrs {
		return fmt.Errorf("trace: sampling period %d below window %d", c.PeriodInstrs, c.WindowInstrs)
	}
	if c.HeadInstrs < 0 {
		return fmt.Errorf("trace: sampling head must be non-negative, got %d", c.HeadInstrs)
	}
	return nil
}

// Ratio returns the fraction of instructions kept.
func (c SamplerConfig) Ratio() float64 {
	return float64(c.WindowInstrs) / float64(c.PeriodInstrs)
}

// Skipper is an optional Stream extension for sources that can discard
// upcoming instructions cheaply (a synthetic generator reseeding past the
// gap, a trace reader seeking). Skip discards up to n instructions and
// returns how many were discarded; it must either make progress (skipped >
// 0) or return an error (io.EOF at end of stream), so callers can loop
// without livelock.
type Skipper interface {
	Skip(n int64) (skipped int64, err error)
}

// MemWarmer absorbs the expected memory traffic of a skipped span — the
// cache-content side effects of instructions that are never simulated.
// Long-lived microarchitectural state (an L2 being churned by streaming
// accesses) evolves over millions of instructions; a sampler that discards
// spans without this replay freezes that evolution and biases every
// window behind it. Implementations update cache contents only, never
// demand statistics. store distinguishes write traffic (no prefetch on
// the demand path).
type MemWarmer interface {
	WarmAccess(addr uint64, store bool)
}

// WarmSkipper is a Skipper that can also replay the skipped span's
// expected memory traffic into a MemWarmer. The replay must be a
// deterministic function of the span's absolute trace positions, so that
// skipping a span in chunks and in one call leave identical state.
type WarmSkipper interface {
	Skipper
	SkipWarm(n int64, w MemWarmer) (skipped int64, err error)
}

// SystematicSampler filters a Stream down to an optional contiguous head
// followed by periodic windows.
type SystematicSampler struct {
	src      Stream
	cfg      SamplerConfig
	warmer   MemWarmer
	headLeft int64 // head instructions still to pass through
	pos      int64 // position within the current period
	kept     int64
	dropped  int64
}

var _ Stream = (*SystematicSampler)(nil)

// NewSystematicSampler wraps src with systematic sampling.
func NewSystematicSampler(src Stream, cfg SamplerConfig) (*SystematicSampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, errors.New("trace: nil source stream")
	}
	return &SystematicSampler{src: src, cfg: cfg, headLeft: cfg.HeadInstrs}, nil
}

// SetWarmer registers the consumer's memory hierarchy for statistical
// warming of skipped spans: when the source implements WarmSkipper, each
// inter-window gap replays its expected memory traffic into w instead of
// being discarded outright. A nil warmer (the default) falls back to the
// plain Skip path.
func (s *SystematicSampler) SetWarmer(w MemWarmer) { s.warmer = w }

// Next returns the next sampled instruction, skipping out-of-window
// instructions from the source. Sources implementing Skipper discard each
// inter-window gap in one cheap jump instead of generating and dropping
// every instruction in it.
func (s *SystematicSampler) Next() (Instruction, error) {
	if s.headLeft > 0 {
		in, err := s.src.Next()
		if err != nil {
			return Instruction{}, err
		}
		s.headLeft--
		s.kept++
		return in, nil
	}
	for {
		if s.pos >= s.cfg.WindowInstrs {
			if ws, ok := s.src.(WarmSkipper); ok && s.warmer != nil {
				n, err := ws.SkipWarm(s.cfg.PeriodInstrs-s.pos, s.warmer)
				s.dropped += n
				s.pos += n
				if s.pos >= s.cfg.PeriodInstrs {
					s.pos = 0
				}
				if err != nil {
					return Instruction{}, err
				}
				continue
			}
			if sk, ok := s.src.(Skipper); ok {
				n, err := sk.Skip(s.cfg.PeriodInstrs - s.pos)
				s.dropped += n
				s.pos += n
				if s.pos >= s.cfg.PeriodInstrs {
					s.pos = 0
				}
				if err != nil {
					return Instruction{}, err
				}
				continue
			}
		}
		in, err := s.src.Next()
		if err != nil {
			return Instruction{}, err
		}
		inWindow := s.pos < s.cfg.WindowInstrs
		s.pos++
		if s.pos == s.cfg.PeriodInstrs {
			s.pos = 0
		}
		if inWindow {
			s.kept++
			return in, nil
		}
		s.dropped++
	}
}

// Kept returns the number of instructions passed through.
func (s *SystematicSampler) Kept() int64 { return s.kept }

// Dropped returns the number of instructions skipped.
func (s *SystematicSampler) Dropped() int64 { return s.dropped }

// ClassMix tallies the dynamic class distribution of up to limit
// instructions from a stream (limit <= 0 drains it), for sampling-fidelity
// validation.
func ClassMix(s Stream, limit int64) (map[Class]float64, int64, error) {
	counts := make(map[Class]int64, NumClasses)
	var total int64
	for limit <= 0 || total < limit {
		in, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, total, err
		}
		counts[in.Class]++
		total++
	}
	mix := make(map[Class]float64, len(counts))
	if total > 0 {
		for c, k := range counts {
			mix[c] = float64(k) / float64(total)
		}
	}
	return mix, total, nil
}
