package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format (version 1):
//
//	magic   [8]byte  "RAMPTRC1"
//	records …        one varint-encoded record per instruction
//
// Each record packs the class and flags into one byte, followed by
// varint-encoded deltas for PC (instruction addresses are mostly
// sequential) and absolute values for the remaining fields. The format
// favours compactness for the synthetic SPEC-like traces, which run to
// hundreds of millions of instructions.

// Magic identifies a version-1 binary trace file.
const Magic = "RAMPTRC1"

// ErrBadMagic is returned when a trace file does not start with Magic.
var ErrBadMagic = errors.New("trace: bad magic (not a RAMP trace file)")

const (
	_flagTaken    = 1 << 0
	_flagHasAddr  = 1 << 1
	_flagHasTgt   = 1 << 2
	_flagHasDest  = 1 << 3
	_flagHasSrc1  = 1 << 4
	_flagHasSrc2  = 1 << 5
	_classShift   = 0 // class is stored in its own byte
	_maxVarintLen = binary.MaxVarintLen64
)

// Writer serialises instructions to the binary trace format.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	buf    [_maxVarintLen]byte
	count  int64
}

// NewWriter creates a Writer and emits the file header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, fmt.Errorf("trace: write magic: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one instruction to the trace.
func (w *Writer) Write(in Instruction) error {
	if err := in.Validate(); err != nil {
		return err
	}
	var flags byte
	if in.Taken {
		flags |= _flagTaken
	}
	if in.Addr != 0 {
		flags |= _flagHasAddr
	}
	if in.Target != 0 {
		flags |= _flagHasTgt
	}
	if in.Dest != RegNone {
		flags |= _flagHasDest
	}
	if in.Src1 != RegNone {
		flags |= _flagHasSrc1
	}
	if in.Src2 != RegNone {
		flags |= _flagHasSrc2
	}
	if err := w.w.WriteByte(byte(in.Class)); err != nil {
		return fmt.Errorf("trace: write class: %w", err)
	}
	if err := w.w.WriteByte(flags); err != nil {
		return fmt.Errorf("trace: write flags: %w", err)
	}
	// PC is stored as a zig-zag delta from the previous record.
	if err := w.putVarint(int64(in.PC) - int64(w.lastPC)); err != nil {
		return err
	}
	w.lastPC = in.PC
	if flags&_flagHasAddr != 0 {
		if err := w.putUvarint(in.Addr); err != nil {
			return err
		}
	}
	if flags&_flagHasTgt != 0 {
		if err := w.putUvarint(in.Target); err != nil {
			return err
		}
	}
	if flags&_flagHasDest != 0 {
		if err := w.putUvarint(uint64(in.Dest)); err != nil {
			return err
		}
	}
	if flags&_flagHasSrc1 != 0 {
		if err := w.putUvarint(uint64(in.Src1)); err != nil {
			return err
		}
	}
	if flags&_flagHasSrc2 != 0 {
		if err := w.putUvarint(uint64(in.Src2)); err != nil {
			return err
		}
	}
	w.count++
	return nil
}

// Count returns the number of instructions written so far.
func (w *Writer) Count() int64 { return w.count }

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

func (w *Writer) putVarint(v int64) error {
	n := binary.PutVarint(w.buf[:], v)
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return fmt.Errorf("trace: write varint: %w", err)
	}
	return nil
}

func (w *Writer) putUvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return fmt.Errorf("trace: write uvarint: %w", err)
	}
	return nil
}

// Reader decodes a binary trace file as a Stream.
type Reader struct {
	r      *bufio.Reader
	lastPC uint64
}

var _ Stream = (*Reader)(nil)

// NewReader validates the header and returns a streaming decoder.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next decodes the next instruction, returning io.EOF at end of file.
func (r *Reader) Next() (Instruction, error) {
	classByte, err := r.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Instruction{}, io.EOF
		}
		return Instruction{}, fmt.Errorf("trace: read class: %w", err)
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		return Instruction{}, fmt.Errorf("trace: read flags: %w", eofToUnexpected(err))
	}
	var in Instruction
	in.Class = Class(classByte)
	in.Taken = flags&_flagTaken != 0
	delta, err := binary.ReadVarint(r.r)
	if err != nil {
		return Instruction{}, fmt.Errorf("trace: read pc delta: %w", eofToUnexpected(err))
	}
	r.lastPC = uint64(int64(r.lastPC) + delta)
	in.PC = r.lastPC
	if flags&_flagHasAddr != 0 {
		if in.Addr, err = binary.ReadUvarint(r.r); err != nil {
			return Instruction{}, fmt.Errorf("trace: read addr: %w", eofToUnexpected(err))
		}
	}
	if flags&_flagHasTgt != 0 {
		if in.Target, err = binary.ReadUvarint(r.r); err != nil {
			return Instruction{}, fmt.Errorf("trace: read target: %w", eofToUnexpected(err))
		}
	}
	if flags&_flagHasDest != 0 {
		v, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Instruction{}, fmt.Errorf("trace: read dest: %w", eofToUnexpected(err))
		}
		in.Dest = uint16(v)
	}
	if flags&_flagHasSrc1 != 0 {
		v, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Instruction{}, fmt.Errorf("trace: read src1: %w", eofToUnexpected(err))
		}
		in.Src1 = uint16(v)
	}
	if flags&_flagHasSrc2 != 0 {
		v, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Instruction{}, fmt.Errorf("trace: read src2: %w", eofToUnexpected(err))
		}
		in.Src2 = uint16(v)
	}
	if err := in.Validate(); err != nil {
		return Instruction{}, fmt.Errorf("trace: corrupt record: %w", err)
	}
	return in, nil
}

// eofToUnexpected converts a bare io.EOF in mid-record to
// io.ErrUnexpectedEOF so truncated files are distinguishable from clean
// ends of stream.
func eofToUnexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
