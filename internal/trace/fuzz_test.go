package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace decoder: it must always
// terminate with a clean EOF or an error, never panic, and every decoded
// instruction must validate.
func FuzzReader(f *testing.F) {
	// Seed with a valid two-record trace and some corruptions of it.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	seedInstrs := []Instruction{
		{PC: 0x1000, Class: ClassIntALU, Dest: 3, Src1: 1, Src2: 2},
		{PC: 0x1004, Class: ClassLoad, Addr: 0xdead00, Dest: 7},
		{PC: 0x1008, Class: ClassBranch, Taken: true, Target: 0x1000},
	}
	for _, in := range seedInstrs {
		if err := w.Write(in); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // bad magic or short header: fine
		}
		for i := 0; i < 10000; i++ {
			in, err := r.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return // corrupt record reported as an error: fine
			}
			if verr := in.Validate(); verr != nil {
				t.Fatalf("decoder returned invalid instruction %+v: %v", in, verr)
			}
		}
	})
}

// FuzzRoundTrip checks that any instruction the validator accepts survives
// encode/decode byte-for-byte.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint64(0x2000), uint16(1), uint16(2), uint16(3), byte(1), true, uint64(0))
	f.Add(uint64(4), uint64(0), uint16(0), uint16(0), uint16(0), byte(8), true, uint64(0x44))
	f.Fuzz(func(t *testing.T, pc, addr uint64, dest, src1, src2 uint16, class byte, taken bool, target uint64) {
		in := Instruction{
			PC: pc, Addr: addr, Dest: dest, Src1: src1, Src2: src2,
			Class: Class(class), Taken: taken, Target: target,
		}
		if in.Validate() != nil {
			return // not a representable instruction
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(in); err != nil {
			t.Fatalf("validated instruction rejected by writer: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Next()
		if err != nil {
			t.Fatalf("decode failed: %v", err)
		}
		if got != in {
			t.Fatalf("round trip changed instruction: %+v vs %+v", got, in)
		}
	})
}
