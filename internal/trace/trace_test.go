package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{ClassIntALU, "int-alu"},
		{ClassFPDiv, "fp-div"},
		{ClassLCR, "lcr"},
		{Class(0), "class(0)"},
		{Class(200), "class(200)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("Class(%d).String() = %q, want %q", tt.c, got, tt.want)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	for c := ClassIntALU; c.Valid(); c++ {
		wantMem := c == ClassLoad || c == ClassStore
		if c.IsMem() != wantMem {
			t.Errorf("%v.IsMem() = %v", c, c.IsMem())
		}
		wantFP := c == ClassFPOp || c == ClassFPDiv
		if c.IsFP() != wantFP {
			t.Errorf("%v.IsFP() = %v", c, c.IsFP())
		}
		wantInt := c == ClassIntALU || c == ClassIntMul || c == ClassIntDiv
		if c.IsInt() != wantInt {
			t.Errorf("%v.IsInt() = %v", c, c.IsInt())
		}
	}
	if Class(0).Valid() || Class(100).Valid() {
		t.Error("invalid classes must not be Valid")
	}
}

func TestNumClasses(t *testing.T) {
	if NumClasses != 9 {
		t.Fatalf("NumClasses = %d, want 9", NumClasses)
	}
}

func TestInstructionValidate(t *testing.T) {
	tests := []struct {
		name    string
		in      Instruction
		wantErr bool
	}{
		{"valid alu", Instruction{PC: 4, Class: ClassIntALU, Dest: 3, Src1: 1, Src2: 2}, false},
		{"valid load", Instruction{PC: 8, Class: ClassLoad, Addr: 0x1000, Dest: 5}, false},
		{"valid taken branch", Instruction{PC: 12, Class: ClassBranch, Taken: true, Target: 0x40}, false},
		{"invalid class", Instruction{Class: Class(0)}, true},
		{"load without addr", Instruction{Class: ClassLoad}, true},
		{"alu with addr", Instruction{Class: ClassIntALU, Addr: 8}, true},
		{"alu with branch outcome", Instruction{Class: ClassIntALU, Taken: true}, true},
		{"reg out of range", Instruction{Class: ClassIntALU, Dest: NumArchRegs}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.in.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSliceStream(t *testing.T) {
	instrs := []Instruction{
		{PC: 0, Class: ClassIntALU},
		{PC: 4, Class: ClassLoad, Addr: 64},
	}
	s := NewSliceStream(instrs)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	got, err := Collect(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, instrs) {
		t.Fatalf("Collect = %+v, want %+v", got, instrs)
	}
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after drain, Next err = %v, want EOF", err)
	}
	s.Reset()
	if in, err := s.Next(); err != nil || in.PC != 0 {
		t.Fatalf("after Reset, Next = %+v, %v", in, err)
	}
}

func TestCollectLimit(t *testing.T) {
	instrs := make([]Instruction, 10)
	for i := range instrs {
		instrs[i] = Instruction{PC: uint64(4 * i), Class: ClassIntALU}
	}
	got, err := Collect(NewSliceStream(instrs), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("Collect(limit=3) returned %d instructions", len(got))
	}
}

func randomInstruction(rng *rand.Rand) Instruction {
	classes := []Class{
		ClassIntALU, ClassIntMul, ClassIntDiv, ClassFPOp, ClassFPDiv,
		ClassLoad, ClassStore, ClassBranch, ClassLCR,
	}
	in := Instruction{
		PC:    uint64(rng.Intn(1<<20)) * 4,
		Class: classes[rng.Intn(len(classes))],
		Dest:  uint16(rng.Intn(NumArchRegs)),
		Src1:  uint16(rng.Intn(NumArchRegs)),
		Src2:  uint16(rng.Intn(NumArchRegs)),
	}
	switch {
	case in.Class.IsMem():
		in.Addr = uint64(rng.Intn(1<<30) + 1)
	case in.Class == ClassBranch:
		in.Taken = rng.Intn(2) == 0
		if in.Taken {
			in.Target = uint64(rng.Intn(1<<20)) * 4
		}
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	instrs := make([]Instruction, 5000)
	for i := range instrs {
		instrs[i] = randomInstruction(rng)
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range instrs {
		if err := w.Write(in); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if w.Count() != int64(len(instrs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(instrs))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(instrs) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(instrs))
	}
	for i := range instrs {
		if got[i] != instrs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], instrs[i])
		}
	}
}

func TestEncodingIsCompact(t *testing.T) {
	// Sequential-PC integer code should encode in only a few bytes per
	// instruction thanks to PC delta encoding.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	for i := 0; i < n; i++ {
		in := Instruction{PC: uint64(4 * i), Class: ClassIntALU, Dest: 1, Src1: 2, Src2: 3}
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	perInstr := float64(buf.Len()) / n
	if perInstr > 8 {
		t.Fatalf("encoding uses %.1f bytes/instr, want ≤ 8", perInstr)
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	w, err := NewWriter(&bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Instruction{Class: Class(0)}); err == nil {
		t.Fatal("Write must reject invalid instructions")
	}
	if w.Count() != 0 {
		t.Fatal("rejected writes must not count")
	}
}

func TestReaderBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("NOTATRACE")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderShortHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("RAM")))
	if err == nil {
		t.Fatal("short header must error")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Instruction{PC: 4, Class: ClassLoad, Addr: 1 << 28, Dest: 9}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Chop off the record's tail: decoding must fail loudly, not return EOF.
	data := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated record: err = %v, want unexpected-EOF error", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated record: err = %v, want io.ErrUnexpectedEOF in chain", err)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%64) + 1
		instrs := make([]Instruction, n)
		for i := range instrs {
			instrs[i] = randomInstruction(rng)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, in := range instrs {
			if err := w.Write(in); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := Collect(r, 0)
		if err != nil || len(got) != n {
			return false
		}
		for i := range instrs {
			if got[i] != instrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
