package trace

import (
	"errors"
	"io"
	"math"
	"testing"
)

func countingStream(n int) Stream {
	instrs := make([]Instruction, n)
	for i := range instrs {
		c := ClassIntALU
		if i%5 == 4 {
			c = ClassBranch
		}
		instrs[i] = Instruction{PC: uint64(4 * i), Class: c}
	}
	return NewSliceStream(instrs)
}

func TestSamplerConfigValidate(t *testing.T) {
	good := SamplerConfig{WindowInstrs: 100, PeriodInstrs: 1000}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := good.Ratio(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Ratio = %v, want 0.1", got)
	}
	bad := []SamplerConfig{
		{WindowInstrs: 0, PeriodInstrs: 10},
		{WindowInstrs: -5, PeriodInstrs: 10},
		{WindowInstrs: 20, PeriodInstrs: 10},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestSamplerKeepsExactWindows(t *testing.T) {
	s, err := NewSystematicSampler(countingStream(100), SamplerConfig{WindowInstrs: 3, PeriodInstrs: 10})
	if err != nil {
		t.Fatal(err)
	}
	var pcs []uint64
	for {
		in, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pcs = append(pcs, in.PC)
	}
	// 10 periods × 3 kept: indices 0,1,2, 10,11,12, 20,21,22, …
	if len(pcs) != 30 {
		t.Fatalf("kept %d instructions, want 30", len(pcs))
	}
	for i, pc := range pcs {
		period, off := i/3, i%3
		want := uint64(4 * (period*10 + off))
		if pc != want {
			t.Fatalf("sample %d: PC %#x, want %#x", i, pc, want)
		}
	}
	if s.Kept() != 30 || s.Dropped() != 70 {
		t.Fatalf("kept/dropped = %d/%d, want 30/70", s.Kept(), s.Dropped())
	}
}

func TestSamplerPassThrough(t *testing.T) {
	s, err := NewSystematicSampler(countingStream(50), SamplerConfig{WindowInstrs: 7, PeriodInstrs: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 || s.Dropped() != 0 {
		t.Fatalf("pass-through kept %d dropped %d", len(got), s.Dropped())
	}
}

func TestSamplerRejectsBadInputs(t *testing.T) {
	if _, err := NewSystematicSampler(nil, SamplerConfig{WindowInstrs: 1, PeriodInstrs: 1}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewSystematicSampler(countingStream(1), SamplerConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestSamplerPreservesClassMix(t *testing.T) {
	// The §4.5 validation property: a systematic sample of a stationary
	// trace preserves the dynamic instruction mix.
	full, _, err := ClassMix(countingStream(100000), 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystematicSampler(countingStream(100000), SamplerConfig{WindowInstrs: 100, PeriodInstrs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	sampled, n, err := ClassMix(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10000 {
		t.Fatalf("sampled %d instructions, want 10000", n)
	}
	for c, f := range full {
		if math.Abs(sampled[c]-f) > 0.01 {
			t.Errorf("class %v: sampled fraction %.4f vs full %.4f", c, sampled[c], f)
		}
	}
}

func TestClassMixEmptyStream(t *testing.T) {
	mix, n, err := ClassMix(NewSliceStream(nil), 0)
	if err != nil || n != 0 || len(mix) != 0 {
		t.Fatalf("empty stream: mix=%v n=%d err=%v", mix, n, err)
	}
}

func TestClassMixLimit(t *testing.T) {
	_, n, err := ClassMix(countingStream(100), 25)
	if err != nil || n != 25 {
		t.Fatalf("limited mix consumed %d, err %v", n, err)
	}
}
