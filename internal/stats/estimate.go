package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Width returns Hi-Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// NormalQuantile returns the p-th quantile of the standard normal
// distribution (the inverse CDF Φ⁻¹), 0 < p < 1, using Acklam's rational
// approximation (relative error < 1.15e-9 across the whole domain). It
// panics only on NaN; out-of-range p returns ±Inf.
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p):
		return math.NaN()
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}
	// Coefficients for the central and tail rational approximations.
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// PercentileSorted returns the p-th percentile (0 ≤ p ≤ 100) of an
// already-sorted slice using linear interpolation between closest ranks.
// It is the allocation-free counterpart of Percentile for callers that
// already hold sorted data (e.g. Monte Carlo estimators).
func PercentileSorted(sorted []float64, p float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// PercentileCISorted returns a distribution-free confidence interval for
// the p-th percentile (0 < p < 100) of the population underlying the
// already-sorted sample, at confidence level conf (0 < conf < 1). It uses
// the order-statistic method with the normal approximation to the
// binomial: the interval endpoints are the sample values at ranks
// n·q ± z·√(n·q·(1−q)), clamped to the sample range. For small n the
// interval degrades gracefully to the full sample range.
func PercentileCISorted(sorted []float64, p, conf float64) (Interval, error) {
	n := len(sorted)
	if n == 0 {
		return Interval{}, ErrEmpty
	}
	if p <= 0 || p >= 100 {
		return Interval{}, fmt.Errorf("stats: percentile %v outside (0,100)", p)
	}
	if conf <= 0 || conf >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %v outside (0,1)", conf)
	}
	q := p / 100
	z := NormalQuantile(0.5 + conf/2)
	mean := float64(n) * q
	half := z * math.Sqrt(float64(n)*q*(1-q))
	lo := int(math.Floor(mean - half))
	hi := int(math.Ceil(mean + half))
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	return Interval{Lo: sorted[lo], Hi: sorted[hi]}, nil
}

// MeanCI returns the normal-approximation confidence interval
// mean ± z·sd/√n for the population mean, at confidence level conf
// (0 < conf < 1). sd is the sample standard deviation; n must be ≥ 1.
func MeanCI(mean, sd float64, n int64, conf float64) (Interval, error) {
	if n < 1 {
		return Interval{}, ErrEmpty
	}
	if conf <= 0 || conf >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %v outside (0,1)", conf)
	}
	if sd < 0 {
		return Interval{}, fmt.Errorf("stats: negative standard deviation %v", sd)
	}
	z := NormalQuantile(0.5 + conf/2)
	half := z * sd / math.Sqrt(float64(n))
	return Interval{Lo: mean - half, Hi: mean + half}, nil
}

// SortedCopy returns a sorted copy of xs, leaving xs untouched.
func SortedCopy(xs []float64) []float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return sorted
}
