package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want, tol float64
	}{
		{0.5, 0, 1e-12},
		{0.975, 1.959963985, 1e-7},
		{0.025, -1.959963985, 1e-7},
		{0.95, 1.644853627, 1e-7},
		{0.05, -1.644853627, 1e-7},
		{0.8413447461, 1.0, 1e-6}, // Φ(1)
		{0.9986501020, 3.0, 1e-6}, // Φ(3)
		{0.001, -3.090232306, 1e-6},
		{0.999, 3.090232306, 1e-6},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("NormalQuantile(%v) = %v, want %v ± %v", c.p, got, c.want, c.tol)
		}
	}
}

func TestNormalQuantileSymmetryAndEdges(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.4} {
		if got := NormalQuantile(p) + NormalQuantile(1-p); math.Abs(got) > 1e-9 {
			t.Errorf("asymmetry at p=%v: sum %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("edges should be ±Inf")
	}
	if !math.IsNaN(NormalQuantile(math.NaN())) {
		t.Error("NaN should propagate")
	}
}

func TestPercentileSortedMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 501)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	sorted := SortedCopy(xs)
	for _, p := range []float64{0, 1, 5, 25, 50, 75, 95, 99, 100} {
		want, err := Percentile(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PercentileSorted(sorted, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("p=%v: PercentileSorted %v != Percentile %v", p, got, want)
		}
	}
}

func TestPercentileSortedErrors(t *testing.T) {
	if _, err := PercentileSorted(nil, 50); err == nil {
		t.Error("empty slice should error")
	}
	if _, err := PercentileSorted([]float64{1}, -1); err == nil {
		t.Error("p<0 should error")
	}
	if _, err := PercentileSorted([]float64{1}, 101); err == nil {
		t.Error("p>100 should error")
	}
}

func TestPercentileCISortedBracketsTruth(t *testing.T) {
	// Uniform(0,1) sample: the true median is 0.5 and the true P90 is 0.9;
	// with n=20k the order-statistic CI must bracket them.
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	sort.Float64s(xs)
	for _, c := range []struct{ p, truth float64 }{{50, 0.5}, {90, 0.9}, {10, 0.1}} {
		iv, err := PercentileCISorted(xs, c.p, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		if c.truth < iv.Lo || c.truth > iv.Hi {
			t.Errorf("p=%v: CI [%v,%v] misses truth %v", c.p, iv.Lo, iv.Hi, c.truth)
		}
		if iv.Width() <= 0 {
			t.Errorf("p=%v: degenerate CI width %v", c.p, iv.Width())
		}
		if iv.Width() > 0.05 {
			t.Errorf("p=%v: CI suspiciously wide: %v", c.p, iv.Width())
		}
	}
}

func TestPercentileCIWidthShrinksRootN(t *testing.T) {
	// Quadrupling n should roughly halve the CI width (1/√n scaling).
	rng := rand.New(rand.NewSource(3))
	width := func(n int) float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		sort.Float64s(xs)
		iv, err := PercentileCISorted(xs, 50, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		return iv.Width()
	}
	w1 := width(4000)
	w2 := width(64000) // 16× samples → ~4× narrower
	ratio := w1 / w2
	if ratio < 2.2 || ratio > 7.5 {
		t.Errorf("CI width ratio %v outside [2.2,7.5] for 16× samples (w1=%v w2=%v)", ratio, w1, w2)
	}
}

func TestPercentileCISortedErrors(t *testing.T) {
	xs := []float64{1, 2, 3}
	if _, err := PercentileCISorted(nil, 50, 0.95); err == nil {
		t.Error("empty should error")
	}
	if _, err := PercentileCISorted(xs, 0, 0.95); err == nil {
		t.Error("p=0 should error")
	}
	if _, err := PercentileCISorted(xs, 100, 0.95); err == nil {
		t.Error("p=100 should error")
	}
	if _, err := PercentileCISorted(xs, 50, 0); err == nil {
		t.Error("conf=0 should error")
	}
	if _, err := PercentileCISorted(xs, 50, 1); err == nil {
		t.Error("conf=1 should error")
	}
}

func TestMeanCI(t *testing.T) {
	iv, err := MeanCI(10, 2, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// 10 ± 1.96·2/10 = 10 ± 0.392
	if math.Abs(iv.Lo-9.608) > 1e-3 || math.Abs(iv.Hi-10.392) > 1e-3 {
		t.Errorf("MeanCI = [%v,%v], want ~[9.608,10.392]", iv.Lo, iv.Hi)
	}
	if _, err := MeanCI(1, 1, 0, 0.95); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := MeanCI(1, -1, 10, 0.95); err == nil {
		t.Error("negative sd should error")
	}
	if _, err := MeanCI(1, 1, 10, 1.5); err == nil {
		t.Error("conf outside (0,1) should error")
	}
}
