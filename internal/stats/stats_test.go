package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d, want 8", r.N())
	}
	if !almostEqual(r.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	if !almostEqual(r.Variance(), 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", r.Variance())
	}
	if !almostEqual(r.StdDev(), 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", r.StdDev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Fatal("zero-value Running must report zeros")
	}
}

func TestRunningSingleSample(t *testing.T) {
	var r Running
	r.Add(42)
	if r.Mean() != 42 || r.Min() != 42 || r.Max() != 42 || r.Variance() != 0 {
		t.Fatalf("single sample: mean=%v min=%v max=%v var=%v", r.Mean(), r.Min(), r.Max(), r.Variance())
	}
}

func TestRunningAddNMatchesRepeatedAdd(t *testing.T) {
	f := func(x float64, nRaw uint8) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
			return true
		}
		n := int64(nRaw%20) + 1
		var a, b Running
		a.Add(1.5)
		b.Add(1.5)
		a.AddN(x, n)
		for i := int64(0); i < n; i++ {
			b.Add(x)
		}
		return a.N() == b.N() &&
			almostEqual(a.Mean(), b.Mean(), 1e-9) &&
			almostEqual(a.Variance(), b.Variance(), 1e-6) &&
			a.Min() == b.Min() && a.Max() == b.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunningAddNIgnoresNonPositive(t *testing.T) {
	var r Running
	r.AddN(10, 0)
	r.AddN(10, -3)
	if r.N() != 0 {
		t.Fatalf("AddN with non-positive n must be a no-op, got N=%d", r.N())
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, a, b Running
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEqual(a.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("merged mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if !almostEqual(a.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged variance = %v, want %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged min/max = %v/%v, want %v/%v", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
}

func TestRunningMergeEmptyCases(t *testing.T) {
	var a, b Running
	a.Merge(&b) // empty into empty
	if a.N() != 0 {
		t.Fatal("empty merge should stay empty")
	}
	b.Add(3)
	a.Merge(&b) // non-empty into empty
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatalf("merge into empty: N=%d mean=%v", a.N(), a.Mean())
	}
	var c Running
	a.Merge(&c) // empty into non-empty
	if a.N() != 1 {
		t.Fatal("merging empty must not change the receiver")
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	tw.Add(10, 1)
	tw.Add(20, 3)
	want := (10.0*1 + 20.0*3) / 4.0
	if !almostEqual(tw.Mean(), want, 1e-12) {
		t.Errorf("Mean = %v, want %v", tw.Mean(), want)
	}
	if tw.TotalTime() != 4 {
		t.Errorf("TotalTime = %v, want 4", tw.TotalTime())
	}
	if tw.Min() != 10 || tw.Max() != 20 {
		t.Errorf("Min/Max = %v/%v, want 10/20", tw.Min(), tw.Max())
	}
	if tw.N() != 2 {
		t.Errorf("N = %d, want 2", tw.N())
	}
}

func TestTimeWeightedIgnoresNonPositiveDurations(t *testing.T) {
	var tw TimeWeighted
	tw.Add(100, 0)
	tw.Add(100, -1)
	if tw.N() != 0 || tw.Mean() != 0 {
		t.Fatal("non-positive durations must be ignored")
	}
}

func TestTimeWeightedEqualWeightsMatchArithmeticMean(t *testing.T) {
	f := func(raw []float64) bool {
		var tw TimeWeighted
		var xs []float64
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			xs = append(xs, x)
			tw.Add(x, 2.5)
		}
		if len(xs) == 0 {
			return tw.Mean() == 0
		}
		m, err := Mean(xs)
		return err == nil && almostEqual(tw.Mean(), m, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndMinMaxErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v/%v, want -1/7", lo, hi)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty percentile err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("p < 0 must error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("p > 100 must error")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileSingleElement(t *testing.T) {
	got, err := Percentile([]float64{42}, 99)
	if err != nil || got != 42 {
		t.Fatalf("single-element percentile = %v, %v", got, err)
	}
}
