// Package stats provides small streaming-statistics primitives used across
// the simulator: running moments, min/max tracking, and time-weighted
// averages for the 1µs-interval reliability accounting the paper describes
// (§2, "a running average of these instantaneous FIT values is maintained").
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested from an accumulator
// that has seen no samples.
var ErrEmpty = errors.New("stats: no samples")

// Running accumulates count, mean, variance (Welford), min, and max of a
// stream of float64 samples. The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddN incorporates the same sample value n times (used when an interval
// repeats a steady value). n must be positive; non-positive n is ignored.
func (r *Running) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	// Merge a degenerate distribution (mean x, variance 0, count n).
	total := r.n + n
	delta := x - r.mean
	r.m2 += delta * delta * float64(r.n) * float64(n) / float64(total)
	r.mean += delta * float64(n) / float64(total)
	r.n = total
}

// N returns the number of samples seen.
func (r *Running) N() int64 { return r.n }

// Mean returns the arithmetic mean, or 0 if no samples were seen.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population variance, or 0 with fewer than 2 samples.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest sample, or 0 if no samples were seen.
func (r *Running) Min() float64 {
	if r.n == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest sample, or 0 if no samples were seen.
func (r *Running) Max() float64 {
	if r.n == 0 {
		return 0
	}
	return r.max
}

// Merge folds another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	total := r.n + o.n
	delta := o.mean - r.mean
	r.m2 += o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(total)
	r.mean += delta * float64(o.n) / float64(total)
	r.n = total
}

// TimeWeighted accumulates a time-weighted average of a piecewise-constant
// signal: each Add contributes value×duration. Durations are dimensionless
// weights (the caller picks the unit, e.g. microseconds).
type TimeWeighted struct {
	weightedSum float64
	totalTime   float64
	min, max    float64
	n           int64
}

// Add incorporates a value held for the given duration. Non-positive
// durations are ignored.
func (t *TimeWeighted) Add(value, duration float64) {
	if duration <= 0 {
		return
	}
	if t.n == 0 {
		t.min, t.max = value, value
	} else {
		if value < t.min {
			t.min = value
		}
		if value > t.max {
			t.max = value
		}
	}
	t.n++
	t.weightedSum += value * duration
	t.totalTime += duration
}

// Mean returns the time-weighted mean, or 0 if nothing was added.
func (t *TimeWeighted) Mean() float64 {
	if t.totalTime == 0 {
		return 0
	}
	return t.weightedSum / t.totalTime
}

// TotalTime returns the accumulated duration.
func (t *TimeWeighted) TotalTime() float64 { return t.totalTime }

// Min returns the smallest value added, or 0 if nothing was added.
func (t *TimeWeighted) Min() float64 {
	if t.n == 0 {
		return 0
	}
	return t.min
}

// Max returns the largest value added, or 0 if nothing was added.
func (t *TimeWeighted) Max() float64 {
	if t.n == 0 {
		return 0
	}
	return t.max
}

// N returns the number of (value, duration) pairs added.
func (t *TimeWeighted) N() int64 { return t.n }

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (minV, maxV float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV, nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}
