package workload

import (
	"fmt"
	"sync"
)

// Registry is a concurrency-safe named-profile lookup table. The serving
// layer resolves request benchmark names through one of these instead of
// re-scanning Profiles() per request, and embedders can register custom
// profiles alongside the paper's sixteen.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Profile
	order  []string
}

// NewRegistry returns a registry seeded with the given profiles, which
// must validate and carry distinct names.
func NewRegistry(profiles ...Profile) (*Registry, error) {
	r := &Registry{byName: make(map[string]Profile, len(profiles))}
	for _, p := range profiles {
		if err := r.Register(p); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// DefaultRegistry returns a registry holding the paper's Table 3 profiles
// in suite order.
func DefaultRegistry() *Registry {
	r, err := NewRegistry(Profiles()...)
	if err != nil {
		// Profiles() is the package's own calibrated table; it cannot fail
		// validation without a programming error.
		panic(err)
	}
	return r
}

// Register adds a profile, rejecting invalid profiles and duplicate names.
func (r *Registry) Register(p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[p.Name]; dup {
		return fmt.Errorf("workload: profile %q already registered", p.Name)
	}
	r.byName[p.Name] = p
	r.order = append(r.order, p.Name)
	return nil
}

// Lookup returns the profile registered under name.
func (r *Registry) Lookup(name string) (Profile, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.byName[name]
	return p, ok
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// All returns every registered profile in registration order.
func (r *Registry) All() []Profile {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Profile, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byName[name])
	}
	return out
}

// Resolve maps benchmark names to profiles, preserving request order. An
// empty name list resolves to every registered profile; an unknown name
// fails the whole resolution with an error naming it.
func (r *Registry) Resolve(names []string) ([]Profile, error) {
	if len(names) == 0 {
		return r.All(), nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Profile, 0, len(names))
	for _, name := range names {
		p, ok := r.byName[name]
		if !ok {
			return nil, fmt.Errorf("workload: unknown benchmark %q", name)
		}
		out = append(out, p)
	}
	return out, nil
}
