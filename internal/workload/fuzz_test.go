package workload

import (
	"io"
	"math"
	"testing"
)

// FuzzProfileValidate drives Profile.Validate and, for accepted profiles,
// the generator itself: any profile that passes validation must generate a
// short trace without panicking. Rejections must come back as errors, never
// as panics — malformed numeric fields (NaN, Inf, wrapping sizes) included.
func FuzzProfileValidate(f *testing.F) {
	// A valid, gzip-like profile.
	f.Add(1, 0.40, 0.10, 0.25, 0.10, 0.15, 6.0, 0.7,
		uint64(48<<10), uint64(640<<10), 0.05, 0.01, 400, 0.93, 0.6, int64(0), 0.0)
	// Phased variant.
	f.Add(2, 0.20, 0.30, 0.25, 0.10, 0.15, 8.0, 0.6,
		uint64(32<<10), uint64(1<<20), 0.10, 0.02, 300, 0.96, 0.7, int64(50_000), 3.0)
	// Hostile numerics: NaN distance, Inf probability, wrapping sizes.
	f.Add(1, 0.40, 0.10, 0.25, 0.10, 0.15, math.NaN(), 0.7,
		uint64(48<<10), uint64(640<<10), 0.05, 0.01, 400, 0.93, 0.6, int64(0), 0.0)
	f.Add(1, 0.40, 0.10, 0.25, 0.10, 0.15, 6.0, math.Inf(1),
		uint64(math.MaxUint64), uint64(math.MaxUint64), 0.05, 0.01, 400, 0.93, 0.6, int64(0), 0.0)
	f.Add(1, math.NaN(), 0.10, 0.25, 0.10, 0.15, 6.0, 0.7,
		uint64(0), uint64(640<<10), -0.05, 0.01, 1<<30, 0.93, 0.6, int64(-1), math.NaN())

	f.Fuzz(func(t *testing.T, suite int,
		intALU, fpOp, load, store, branch, depDist, nearDep float64,
		hotBytes, warmBytes uint64, warmProb, coldProb float64,
		codeBlocks int, branchPred, loopProb float64,
		phaseInstrs int64, phaseMemScale float64) {
		p := Profile{
			Name:  "fuzz",
			Suite: Suite(suite),
			Mix: Mix{
				IntALU: intALU, FPOp: fpOp, Load: load, Store: store, Branch: branch,
			},
			DepDist:              depDist,
			NearDepProb:          nearDep,
			HotBytes:             hotBytes,
			WarmBytes:            warmBytes,
			WarmProb:             warmProb,
			ColdProb:             coldProb,
			CodeBlocks:           codeBlocks,
			BranchPredictability: branchPred,
			LoopProb:             loopProb,
			PhaseInstrs:          phaseInstrs,
			PhaseMemScale:        phaseMemScale,
			Seed:                 42,
		}
		if err := p.Validate(); err != nil {
			return // rejected cleanly — exactly what malformed input should do
		}
		const n = 1000
		gen, err := New(p, n)
		if err != nil {
			t.Fatalf("validated profile rejected by New: %v", err)
		}
		for i := 0; i <= n; i++ {
			_, err := gen.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatalf("generator error on validated profile: %v", err)
			}
		}
		t.Fatalf("generator produced more than %d instructions", n)
	})
}
