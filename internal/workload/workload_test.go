package workload

import (
	"errors"
	"io"
	"math"
	"testing"

	"github.com/ramp-sim/ramp/internal/trace"
)

func TestSuiteString(t *testing.T) {
	if SuiteInt.String() != "SpecInt" || SuiteFP.String() != "SpecFP" {
		t.Fatal("suite names wrong")
	}
	if Suite(9).String() != "suite(9)" {
		t.Fatal("unknown suite formatting wrong")
	}
}

func TestAllProfilesValidate(t *testing.T) {
	profs := Profiles()
	if len(profs) != 16 {
		t.Fatalf("got %d profiles, want 16", len(profs))
	}
	var nInt, nFP int
	for _, p := range profs {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s: %v", p.Name, err)
		}
		switch p.Suite {
		case SuiteInt:
			nInt++
		case SuiteFP:
			nFP++
		}
	}
	if nInt != 8 || nFP != 8 {
		t.Fatalf("suite split %d INT / %d FP, want 8/8", nInt, nFP)
	}
}

func TestProfileSeedsAreDistinct(t *testing.T) {
	seen := make(map[int64]string)
	for _, p := range Profiles() {
		if prev, ok := seen[p.Seed]; ok {
			t.Errorf("profiles %s and %s share seed %d", prev, p.Name, p.Seed)
		}
		seen[p.Seed] = p.Name
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	if p.Suite != SuiteInt || p.TargetIPC != 1.24 {
		t.Fatalf("gcc profile wrong: %+v", p)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("ByName must fail for unknown benchmarks")
	}
}

func TestNamesAndBySuite(t *testing.T) {
	if len(Names()) != 16 {
		t.Fatalf("Names() returned %d entries", len(Names()))
	}
	fp := BySuite(SuiteFP)
	if len(fp) != 8 {
		t.Fatalf("BySuite(FP) returned %d", len(fp))
	}
	for _, p := range fp {
		if p.Suite != SuiteFP {
			t.Errorf("BySuite(FP) contains %s (%v)", p.Name, p.Suite)
		}
	}
}

func TestMixValidate(t *testing.T) {
	good := Mix{IntALU: 0.5, Load: 0.2, Store: 0.1, Branch: 0.15, LCR: 0.05}
	if err := good.Validate(); err != nil {
		t.Fatalf("good mix rejected: %v", err)
	}
	tests := []struct {
		name string
		mix  Mix
	}{
		{"negative", Mix{IntALU: -0.1, Load: 0.95, Branch: 0.15}},
		{"sum below one", Mix{IntALU: 0.5, Branch: 0.1}},
		{"sum above one", Mix{IntALU: 0.9, Load: 0.2, Branch: 0.1}},
		{"no branches", Mix{IntALU: 0.8, Load: 0.2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.mix.Validate(); err == nil {
				t.Errorf("mix %+v accepted, want error", tt.mix)
			}
		})
	}
}

func TestProfileValidateRejections(t *testing.T) {
	base, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"empty name", func(p *Profile) { p.Name = "" }},
		{"bad suite", func(p *Profile) { p.Suite = 0 }},
		{"dep dist below 1", func(p *Profile) { p.DepDist = 0.5 }},
		{"near dep prob above 1", func(p *Profile) { p.NearDepProb = 1.5 }},
		{"warm+cold above 1", func(p *Profile) { p.WarmProb = 0.8; p.ColdProb = 0.4 }},
		{"zero hot bytes", func(p *Profile) { p.HotBytes = 0 }},
		{"one code block", func(p *Profile) { p.CodeBlocks = 1 }},
		{"predictability below 0.5", func(p *Profile) { p.BranchPredictability = 0.4 }},
		{"loop prob above 1", func(p *Profile) { p.LoopProb = 1.2 }},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("mutation accepted, want error")
			}
		})
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, err := ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []trace.Instruction {
		g, err := New(p, 2000)
		if err != nil {
			t.Fatal(err)
		}
		out, err := trace.Collect(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != 2000 {
		t.Fatalf("generated %d instructions, want 2000", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs between identical runs", i)
		}
	}
}

func TestGeneratorEOFAndProduced(t *testing.T) {
	p, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := g.Next(); err != nil {
			t.Fatalf("instruction %d: %v", i, err)
		}
	}
	if _, err := g.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after limit, err = %v, want EOF", err)
	}
	if g.Produced() != 10 {
		t.Fatalf("Produced = %d, want 10", g.Produced())
	}
}

func TestGeneratorRejectsInvalidProfile(t *testing.T) {
	var p Profile
	if _, err := New(p, 10); err == nil {
		t.Fatal("New must reject an invalid profile")
	}
}

func TestGeneratedInstructionsAreValid(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g, err := New(p, 5000)
			if err != nil {
				t.Fatal(err)
			}
			for {
				in, err := g.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				if err := in.Validate(); err != nil {
					t.Fatalf("invalid generated instruction %+v: %v", in, err)
				}
			}
		})
	}
}

// classFractions tallies the dynamic class distribution of n instructions.
func classFractions(t *testing.T, p Profile, n int64) map[trace.Class]float64 {
	t.Helper()
	g, err := New(p, n)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[trace.Class]int64, trace.NumClasses)
	total := int64(0)
	for {
		in, err := g.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		counts[in.Class]++
		total++
	}
	fr := make(map[trace.Class]float64, len(counts))
	for c, k := range counts {
		fr[c] = float64(k) / float64(total)
	}
	return fr
}

func TestGeneratedMixMatchesProfile(t *testing.T) {
	// The dynamic mix should track the profile mix within a small absolute
	// tolerance (block-length quantisation perturbs the branch fraction).
	for _, name := range []string{"gcc", "wupwise"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		fr := classFractions(t, p, 200000)
		checks := []struct {
			class trace.Class
			want  float64
		}{
			{trace.ClassBranch, p.Mix.Branch},
			{trace.ClassLoad, p.Mix.Load},
			{trace.ClassStore, p.Mix.Store},
			{trace.ClassIntALU, p.Mix.IntALU},
			{trace.ClassFPOp, p.Mix.FPOp},
		}
		for _, c := range checks {
			got := fr[c.class]
			if math.Abs(got-c.want) > 0.03 {
				t.Errorf("%s: class %v fraction = %.3f, want %.3f ± 0.03",
					name, c.class, got, c.want)
			}
		}
	}
}

func TestBranchBiasControlsTakenRate(t *testing.T) {
	// A loop-heavy FP benchmark should have a clearly non-trivial taken rate.
	p, err := ByName("mgrid")
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	var branches, taken int
	for {
		in, err := g.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if in.Class == trace.ClassBranch {
			branches++
			if in.Taken {
				taken++
			}
		}
	}
	if branches == 0 {
		t.Fatal("no branches generated")
	}
	rate := float64(taken) / float64(branches)
	if rate < 0.2 || rate > 0.95 {
		t.Fatalf("taken rate %.2f outside plausible range", rate)
	}
}

func TestMemoryRegionsAreDisjoint(t *testing.T) {
	p, err := ByName("ammp")
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	var hot, warm, cold, mem int
	for {
		in, err := g.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !in.Class.IsMem() {
			continue
		}
		mem++
		switch {
		case in.Addr >= 0x4000_0000:
			cold++
		case in.Addr >= 0x2000_0000:
			warm++
		case in.Addr >= 0x1000_0000:
			hot++
		default:
			t.Fatalf("address %#x outside all regions", in.Addr)
		}
	}
	if mem == 0 {
		t.Fatal("no memory operations generated")
	}
	warmFrac := float64(warm) / float64(mem)
	coldFrac := float64(cold) / float64(mem)
	if math.Abs(warmFrac-p.WarmProb) > 0.02 {
		t.Errorf("warm fraction %.3f, want %.3f ± 0.02", warmFrac, p.WarmProb)
	}
	if math.Abs(coldFrac-p.ColdProb) > 0.01 {
		t.Errorf("cold fraction %.3f, want %.3f ± 0.01", coldFrac, p.ColdProb)
	}
	if hot == 0 {
		t.Error("no hot-set accesses generated")
	}
}

func TestUnboundedGenerator(t *testing.T) {
	p, err := ByName("mesa")
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(p, -1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := g.Next(); err != nil {
			t.Fatalf("unbounded generator stopped at %d: %v", i, err)
		}
	}
}
