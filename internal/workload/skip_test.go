package workload

import (
	"io"
	"testing"

	"github.com/ramp-sim/ramp/internal/trace"
)

// TestSkipIsChunkingInvariant pins the Skip contract: the generator state
// after discarding N instructions depends only on the absolute stream
// position, never on how the discard was chunked, so sampled runs are
// bit-reproducible regardless of sampler geometry bookkeeping.
func TestSkipIsChunkingInvariant(t *testing.T) {
	prof := Profiles()[0]
	mk := func() *Generator {
		g, err := New(prof, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	drive := func(g *Generator, skips []int64) []trace.Instruction {
		var out []trace.Instruction
		for _, n := range skips {
			if n < 0 {
				for i := int64(0); i < -n; i++ {
					in, err := g.Next()
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, in)
				}
				continue
			}
			if _, err := g.Skip(n); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	// Generate 50, skip 1000 (one way vs three chunks), generate 50.
	a := drive(mk(), []int64{-50, 1000, -50})
	b := drive(mk(), []int64{-50, 400, 300, 300, -50})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs after re-chunked skip: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSkipAdvancesPositionAndEOF pins the bookkeeping: produced counts
// skipped instructions (the phase schedule is driven by it), the bounded
// stream still ends after exactly its budget, and skipping at EOF errors.
func TestSkipAdvancesPositionAndEOF(t *testing.T) {
	prof := Profiles()[0]
	g, err := New(prof, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Next(); err != nil {
		t.Fatal(err)
	}
	n, err := g.Skip(400)
	if err != nil || n != 400 {
		t.Fatalf("Skip(400) = %d, %v", n, err)
	}
	if got := g.Produced(); got != 401 {
		t.Fatalf("produced %d, want 401", got)
	}
	// Short skip at the tail: only the remaining budget is discarded.
	n, err = g.Skip(10_000)
	if err != nil || n != 599 {
		t.Fatalf("Skip past end = %d, %v; want 599, nil", n, err)
	}
	if _, err := g.Next(); err != io.EOF {
		t.Fatalf("Next after exhaustion = %v, want EOF", err)
	}
	if _, err := g.Skip(1); err != io.EOF {
		t.Fatalf("Skip after exhaustion = %v, want EOF", err)
	}
}

// TestSamplerSkipFastPath pins the sampler/skipper integration: sampling
// a skippable generator yields the configured keep ratio, is
// deterministic run to run, and terminates at the stream budget.
func TestSamplerSkipFastPath(t *testing.T) {
	prof := Profiles()[0]
	run := func() ([]trace.Instruction, int64, int64) {
		g, err := New(prof, 50_000)
		if err != nil {
			t.Fatal(err)
		}
		s, err := trace.NewSystematicSampler(g, trace.SamplerConfig{WindowInstrs: 1000, PeriodInstrs: 5000})
		if err != nil {
			t.Fatal(err)
		}
		var out []trace.Instruction
		for {
			in, err := s.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, in)
		}
		return out, s.Kept(), s.Dropped()
	}
	a, kept, dropped := run()
	if kept != 10_000 {
		t.Fatalf("kept %d instructions, want 10000 (1/5 of 50k)", kept)
	}
	if kept+dropped != 50_000 {
		t.Fatalf("kept %d + dropped %d != stream budget", kept, dropped)
	}
	b, _, _ := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampled stream not deterministic at instruction %d", i)
		}
	}
}

// recordWarmer captures the replayed warming traffic for comparison.
type recordWarmer struct {
	addrs  []uint64
	stores []bool
}

func (r *recordWarmer) WarmAccess(addr uint64, store bool) {
	r.addrs = append(r.addrs, addr)
	r.stores = append(r.stores, store)
}

// TestSkipWarmIsChunkingInvariant extends the chunking contract to warmed
// skips: both the generated instructions around the gap and the replayed
// warming traffic inside it are pure functions of absolute stream
// position — the draws are keyed on position hashes, not shared RNG state
// — so a gap skipped in chunks and in one call is indistinguishable.
func TestSkipWarmIsChunkingInvariant(t *testing.T) {
	prof := Profiles()[0]
	drive := func(skips []int64) ([]trace.Instruction, *recordWarmer) {
		g, err := New(prof, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		w := &recordWarmer{}
		var out []trace.Instruction
		for _, n := range skips {
			if n < 0 {
				for i := int64(0); i < -n; i++ {
					in, err := g.Next()
					if err != nil {
						t.Fatal(err)
					}
					out = append(out, in)
				}
				continue
			}
			if _, err := g.SkipWarm(n, w); err != nil {
				t.Fatal(err)
			}
		}
		return out, w
	}
	a, wa := drive([]int64{-5000, 20_000, -50})
	b, wb := drive([]int64{-5000, 7000, 6000, 7000, -50})
	if len(a) != len(b) {
		t.Fatalf("instruction counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs after re-chunked warm skip", i)
		}
	}
	if len(wa.addrs) == 0 {
		t.Fatal("warming replayed no accesses across a 20k-instruction gap")
	}
	if len(wa.addrs) != len(wb.addrs) {
		t.Fatalf("warming access counts differ: %d vs %d", len(wa.addrs), len(wb.addrs))
	}
	for i := range wa.addrs {
		if wa.addrs[i] != wb.addrs[i] || wa.stores[i] != wb.stores[i] {
			t.Fatalf("warming access %d differs after re-chunked skip", i)
		}
	}
}

// TestSkipWarmMatchesDemandRate pins the replay's statistical fidelity:
// over a long gap, the warming traffic volume tracks the generator's
// dynamic memory-access rate and its store fraction tracks the mix.
func TestSkipWarmMatchesDemandRate(t *testing.T) {
	prof := Profiles()[0]
	g, err := New(prof, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Generate a long prefix so the dynamic-rate estimate is armed, and
	// count its memory instructions as the reference rate.
	const prefix = 200_000
	var mem int64
	for i := 0; i < prefix; i++ {
		in, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if in.Class == trace.ClassLoad || in.Class == trace.ClassStore {
			mem++
		}
	}
	w := &recordWarmer{}
	const gap = 1_000_000
	if _, err := g.SkipWarm(gap, w); err != nil {
		t.Fatal(err)
	}
	demandRate := float64(mem) / float64(prefix)
	warmRate := float64(len(w.addrs)) / float64(gap)
	if rel := warmRate/demandRate - 1; rel > 0.02 || rel < -0.02 {
		t.Errorf("warming rate %.4f vs demand rate %.4f (%.1f%% off, want ≤ 2%%)",
			warmRate, demandRate, rel*100)
	}
	var stores int
	for _, s := range w.stores {
		if s {
			stores++
		}
	}
	wantStore := prof.Mix.Store / (prof.Mix.Load + prof.Mix.Store)
	gotStore := float64(stores) / float64(len(w.stores))
	if rel := gotStore/wantStore - 1; rel > 0.05 || rel < -0.05 {
		t.Errorf("store fraction %.4f vs mix %.4f (%.1f%% off, want ≤ 5%%)",
			gotStore, wantStore, rel*100)
	}
}
