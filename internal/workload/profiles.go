package workload

import "fmt"

// Profiles returns the 16 SPEC2K benchmark profiles (8 SpecFP + 8 SpecInt)
// used throughout the paper's evaluation (Table 3). Parameters are chosen
// from the known characteristics of each benchmark (instruction mix,
// memory-boundedness, code footprint, branch behaviour) and then tuned so
// the 180nm base machine reproduces the Table 3 IPC and power operating
// points. TargetIPC/TargetPowerW record the paper's values verbatim.
//
// The returned slice is freshly allocated; callers may reorder or modify it.
func Profiles() []Profile {
	intMix := func(alu, mul, div, load, store, branch, lcr float64) Mix {
		return Mix{IntALU: alu, IntMul: mul, IntDiv: div, Load: load,
			Store: store, Branch: branch, LCR: lcr}
	}
	fpMix := func(alu, fp, fpdiv, load, store, branch, lcr float64) Mix {
		return Mix{IntALU: alu, FPOp: fp, FPDiv: fpdiv, Load: load,
			Store: store, Branch: branch, LCR: lcr}
	}
	profiles := []Profile{
		// ---- SpecFP (Table 3 order: coolest to hottest) ----
		{
			Name: "ammp", Suite: SuiteFP, TargetIPC: 1.06, TargetPowerW: 26.08,
			// Molecular dynamics: pointer-heavy neighbour lists, poor
			// locality, long FP dependence chains.
			Mix:     fpMix(0.24, 0.32, 0.010, 0.26, 0.09, 0.06, 0.02),
			DepDist: 2.66, NearDepProb: 0.71,
			HotBytes: 16 << 10, WarmBytes: 1 << 20, WarmProb: 0.124, ColdProb: 0.0113,
			CodeBlocks: 220, BranchPredictability: 0.972, LoopProb: 0.75,
		},
		{
			Name: "applu", Suite: SuiteFP, TargetIPC: 1.17, TargetPowerW: 26.94,
			// SSOR PDE solver: streaming sweeps with recurrence chains.
			Mix:     fpMix(0.23, 0.36, 0.014, 0.25, 0.09, 0.045, 0.011),
			DepDist: 4.59, NearDepProb: 0.59,
			HotBytes: 24 << 10, WarmBytes: 1536 << 10, WarmProb: 0.0438, ColdProb: 0.006,
			CodeBlocks: 160, BranchPredictability: 0.991, LoopProb: 0.85,
		},
		{
			Name: "sixtrack", Suite: SuiteFP, TargetIPC: 1.38, TargetPowerW: 27.32,
			// Particle tracking: compute-dense, small data footprint.
			Mix:     fpMix(0.21, 0.42, 0.012, 0.22, 0.08, 0.05, 0.008),
			DepDist: 4.8, NearDepProb: 0.59,
			HotBytes: 28 << 10, WarmBytes: 512 << 10, WarmProb: 0.0234, ColdProb: 0.0012,
			CodeBlocks: 260, BranchPredictability: 0.988, LoopProb: 0.8,
		},
		{
			Name: "mgrid", Suite: SuiteFP, TargetIPC: 1.71, TargetPowerW: 27.78,
			// Multigrid: regular stencils, high ILP, some cold streaming.
			Mix:     fpMix(0.22, 0.40, 0.004, 0.25, 0.07, 0.035, 0.021),
			DepDist: 9.97, NearDepProb: 0.47,
			HotBytes: 28 << 10, WarmBytes: 1 << 20, WarmProb: 0.0183, ColdProb: 0.002,
			CodeBlocks: 120, BranchPredictability: 0.993, LoopProb: 0.9,
		},
		{
			Name: "mesa", Suite: SuiteFP, TargetIPC: 1.75, TargetPowerW: 29.21,
			// Software rendering: integer/FP blend with good locality.
			Mix:     fpMix(0.34, 0.28, 0.006, 0.22, 0.09, 0.055, 0.009),
			DepDist: 4.71, NearDepProb: 0.62,
			HotBytes: 30 << 10, WarmBytes: 384 << 10, WarmProb: 0.0279, ColdProb: 0.0016,
			CodeBlocks: 420, BranchPredictability: 0.982, LoopProb: 0.7,
		},
		{
			Name: "facerec", Suite: SuiteFP, TargetIPC: 1.79, TargetPowerW: 29.60,
			// Image correlation: wide independent FP work.
			Mix:     fpMix(0.23, 0.38, 0.006, 0.24, 0.07, 0.045, 0.029),
			DepDist: 8.76, NearDepProb: 0.48,
			HotBytes: 30 << 10, WarmBytes: 768 << 10, WarmProb: 0.0146, ColdProb: 0.0013,
			CodeBlocks: 180, BranchPredictability: 0.991, LoopProb: 0.85,
		},
		{
			Name: "wupwise", Suite: SuiteFP, TargetIPC: 1.66, TargetPowerW: 30.50,
			// Lattice QCD: dense matrix kernels, high FP density.
			Mix:     fpMix(0.19, 0.44, 0.004, 0.24, 0.07, 0.04, 0.016),
			DepDist: 8.91, NearDepProb: 0.49,
			HotBytes: 30 << 10, WarmBytes: 1 << 20, WarmProb: 0.0146, ColdProb: 0.0015,
			CodeBlocks: 140, BranchPredictability: 0.992, LoopProb: 0.88,
		},
		{
			Name: "apsi", Suite: SuiteFP, TargetIPC: 1.64, TargetPowerW: 30.65,
			// Mesoscale weather: mixed stencil/transcendental work.
			Mix:     fpMix(0.24, 0.38, 0.009, 0.23, 0.08, 0.045, 0.016),
			DepDist: 7.27, NearDepProb: 0.53,
			HotBytes: 28 << 10, WarmBytes: 896 << 10, WarmProb: 0.0183, ColdProb: 0.0017,
			CodeBlocks: 300, BranchPredictability: 0.99, LoopProb: 0.82,
		},

		// ---- SpecInt (Table 3 order: coolest to hottest) ----
		{
			Name: "vpr", Suite: SuiteInt, TargetIPC: 1.38, TargetPowerW: 26.93,
			// FPGA place & route: pointer chasing, data-dependent branches.
			Mix:     intMix(0.47, 0.012, 0.002, 0.25, 0.10, 0.135, 0.031),
			DepDist: 4.9, NearDepProb: 0.59,
			HotBytes: 24 << 10, WarmBytes: 512 << 10, WarmProb: 0.0211, ColdProb: 0.0011,
			CodeBlocks: 380, BranchPredictability: 0.969, LoopProb: 0.6,
		},
		{
			Name: "bzip2", Suite: SuiteInt, TargetIPC: 2.31, TargetPowerW: 27.71,
			// Compression: tight loops, cache-resident working set.
			Mix:     intMix(0.52, 0.006, 0.001, 0.24, 0.09, 0.115, 0.028),
			DepDist: 14.0, NearDepProb: 0.4,
			HotBytes: 30 << 10, WarmBytes: 640 << 10, WarmProb: 0.0038, ColdProb: 0.0002,
			CodeBlocks: 200, BranchPredictability: 0.993, LoopProb: 0.75,
		},
		{
			Name: "twolf", Suite: SuiteInt, TargetIPC: 1.26, TargetPowerW: 28.44,
			// Standard-cell place & route: poor locality, hard branches.
			Mix:     intMix(0.46, 0.016, 0.003, 0.25, 0.09, 0.145, 0.036),
			DepDist: 4.07, NearDepProb: 0.65,
			HotBytes: 20 << 10, WarmBytes: 768 << 10, WarmProb: 0.0295, ColdProb: 0.0014,
			CodeBlocks: 420, BranchPredictability: 0.949, LoopProb: 0.6,
		},
		{
			Name: "gzip", Suite: SuiteInt, TargetIPC: 1.85, TargetPowerW: 28.69,
			// LZ77 compression: predictable loops, L1-resident data.
			Mix:     intMix(0.50, 0.004, 0.001, 0.25, 0.10, 0.12, 0.025),
			DepDist: 6.87, NearDepProb: 0.52,
			HotBytes: 30 << 10, WarmBytes: 384 << 10, WarmProb: 0.0092, ColdProb: 0.0003,
			CodeBlocks: 240, BranchPredictability: 0.983, LoopProb: 0.72,
		},
		{
			Name: "perlbmk", Suite: SuiteInt, TargetIPC: 2.25, TargetPowerW: 30.59,
			// Perl interpreter: big code, but highly predictable dispatch.
			Mix:     intMix(0.53, 0.005, 0.001, 0.24, 0.10, 0.10, 0.024),
			DepDist: 11.34, NearDepProb: 0.41,
			HotBytes: 30 << 10, WarmBytes: 512 << 10, WarmProb: 0.0049, ColdProb: 0.0002,
			CodeBlocks: 900, BranchPredictability: 0.99, LoopProb: 0.55,
		},
		{
			Name: "gap", Suite: SuiteInt, TargetIPC: 1.76, TargetPowerW: 31.24,
			// Group-theory interpreter: arithmetic-dense, medium locality.
			Mix:     intMix(0.52, 0.020, 0.003, 0.24, 0.09, 0.105, 0.022),
			DepDist: 8.87, NearDepProb: 0.46,
			HotBytes: 28 << 10, WarmBytes: 768 << 10, WarmProb: 0.0074, ColdProb: 0.0003,
			CodeBlocks: 520, BranchPredictability: 0.988, LoopProb: 0.65,
		},
		{
			Name: "gcc", Suite: SuiteInt, TargetIPC: 1.24, TargetPowerW: 31.73,
			// Compiler: huge code footprint, irregular data, hard branches.
			Mix:     intMix(0.45, 0.008, 0.002, 0.26, 0.11, 0.135, 0.035),
			DepDist: 4.49, NearDepProb: 0.61,
			HotBytes: 22 << 10, WarmBytes: 1 << 20, WarmProb: 0.0233, ColdProb: 0.0009,
			CodeBlocks: 2600, BranchPredictability: 0.969, LoopProb: 0.45,
		},
		{
			Name: "crafty", Suite: SuiteInt, TargetIPC: 2.25, TargetPowerW: 31.95,
			// Chess search: bit-board logic, high ILP, cache-resident.
			Mix:     intMix(0.55, 0.010, 0.001, 0.23, 0.07, 0.11, 0.029),
			DepDist: 13.8, NearDepProb: 0.4,
			HotBytes: 30 << 10, WarmBytes: 640 << 10, WarmProb: 0.0046, ColdProb: 0.0002,
			CodeBlocks: 360, BranchPredictability: 0.991, LoopProb: 0.6,
		},
	}
	for i := range profiles {
		profiles[i].Seed = int64(1000 + 37*i)
	}
	return profiles
}

// ByName returns the profile for a benchmark name.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns all benchmark names in Table 3 order (SpecFP then SpecInt).
func Names() []string {
	profs := Profiles()
	names := make([]string, len(profs))
	for i, p := range profs {
		names[i] = p.Name
	}
	return names
}

// BySuite filters profiles by suite, preserving order.
func BySuite(s Suite) []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Suite == s {
			out = append(out, p)
		}
	}
	return out
}
